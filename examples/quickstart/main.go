// Quickstart: build a small imbalanced LRP instance, rebalance it with a
// classical baseline and with the paper's hybrid classical-quantum CQM
// formulation through the library's public API (package repro), and
// compare the paper's metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's Appendix-A illustration: 4 processes, 5 tasks each,
	// per-task loads 1.87, 1.97, 3.12, 2.81 ms -> process loads 9.35,
	// 9.85, 15.6, 14.05 ms, so P3 is the straggler every BSP iteration
	// waits for.
	in, err := repro.NewInstance(
		[]int{5, 5, 5, 5},
		[]float64{1.87, 1.97, 3.12, 2.81},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", in)
	fmt.Printf("baseline: L_max %.2f ms, R_imb %.4f\n\n", in.MaxLoad(), in.Imbalance())

	// Classical: ProactLB moves only the overload excess.
	ctx := context.Background()
	proact, err := repro.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	report("ProactLB", in, proact)

	// Quantum-hybrid: the reduced CQM formulation (Q_CQM1) with the
	// migration budget k set to ProactLB's count — the paper's
	// Q_CQM1_k1 protocol. SolveCQM seeds the sampler with the classical
	// plans automatically.
	k := proact.Migrated()
	plan, stats, err := repro.SolveCQM(ctx, in, repro.CQMOptions{
		Form: repro.QCQM1,
		K:    k,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("Q_CQM1_k1 (k=%d)", k), in, plan)
	fmt.Printf("  CQM: %d logical qubits, %d constraints (all inequalities: %v)\n",
		stats.Qubits, stats.Constraints, stats.EqConstraints == 0)
	fmt.Printf("  simulated hybrid runtime: CPU %v, QPU %v\n",
		stats.Solver.SimulatedCPU.Round(1e6), stats.Solver.SimulatedQPU)

	// Replay both schedules on the runtime simulator: end-to-end
	// makespan including migration overhead.
	cfg := repro.SimulationConfig{Workers: 2, LatencyMs: 0.1, PerTaskMs: 0.05}
	base, err := repro.RunSimulation(cfg, in, nil)
	if err != nil {
		log.Fatal(err)
	}
	after, err := repro.RunSimulation(cfg, in, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nruntime replay (2 workers/process): makespan %.2f -> %.2f ms\n",
		base.MakespanMs, after.MakespanMs)
}

func report(name string, in *repro.Instance, p *repro.Plan) {
	m := repro.Evaluate(in, p)
	fmt.Printf("%s:\n  R_imb %.4f, speedup %.4f, migrated %d tasks\n  plan (rows = destinations, cols = sources):\n", name, m.Imbalance, m.Speedup, m.Migrated)
	fmt.Println(indent(p.String(), "    "))
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}

// MxM sweep: reproduce the paper's synthetic workload end to end. A
// real matrix-multiplication kernel is timed to calibrate the cost
// model, the five Imb.0-Imb.4 cases are generated, every method is
// applied, and the resulting imbalance/speedup figures are rendered as
// ASCII charts.
//
// Run with:
//
//	go run ./examples/mxm_sweep
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/mxm"
)

func main() {
	// Execute one real MxM task (A = B x C at size 256) so the example
	// demonstrates the actual compute kernel behind the load values.
	size := 256
	b := mxm.NewRandomMatrix(size, 1)
	c := mxm.NewRandomMatrix(size, 2)
	start := time.Now()
	a := mxm.Multiply(b, c)
	elapsed := time.Since(start)
	fmt.Printf("one MxM task at size %d: %.1f ms measured (checksum %.3f)\n",
		size, float64(elapsed.Microseconds())/1000, a.At(0, 0))
	fmt.Printf("default cost model predicts %.1f ms\n\n", mxm.DefaultCostModel().Cost(size))

	// The paper's experiment group V-B.1 with a reduced solver budget
	// (this is an example; cmd/experiments runs the full protocol).
	cfg := experiments.FastConfig()
	g, err := experiments.RunVaryImbalance(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.ImbalanceFigure("imbalance ratio after rebalancing").Chart(10))
	fmt.Println(g.SpeedupFigure("speedup over baseline").Chart(10))
	fmt.Println(g.AveragesTable("migrated tasks and runtime (avg over the five cases)").Render())

	// The paper's headline contrast, in numbers.
	last := g.Cases[len(g.Cases)-1]
	fmt.Printf("on %s: Greedy migrates %d tasks, ProactLB %d, Q_CQM1_k1 %d\n",
		last.Case,
		last.Method("Greedy").Metrics.Migrated,
		last.Method("ProactLB").Metrics.Migrated,
		last.Method("Q_CQM1_k1").Metrics.Migrated)
}

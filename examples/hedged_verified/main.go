// Trust-but-verify solving: a hedged race over three simulated cloud
// backends, each of which corrupts replies or crashes outright at a 30%
// combined rate, feeding a BSP rebalancing loop that refuses to apply
// any plan the independent verifier has not re-checked from scratch.
//
// Three defensive layers cooperate here:
//
//  1. Panic isolation (solve.Protected, applied by the hedge): a backend
//     that crashes mid-solve becomes an errors.Is-able ErrPanic with the
//     offending backend's name and stack — it loses the race instead of
//     taking the process down.
//  2. Hedged racing (internal/hedge): backends start staggered; the
//     first reply that PASSES INDEPENDENT VERIFICATION wins and the
//     losers are cancelled. A corrupted reply — wrong objective, false
//     feasibility claim — is rejected and simply loses.
//  3. The driver's verify gate (internal/dlb + internal/verify): even
//     the winning plan is re-verified against the instance and the
//     migration budget before it touches the runtime. No unverified
//     plan ever reaches dlb's simulated machine.
//
// Everything is seeded: rerunning prints the identical fault schedule
// and round log.
//
// Run with:
//
//	go run ./examples/hedged_verified
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/chameleon"
	"repro/internal/dlb"
	"repro/internal/faults"
	"repro/internal/hedge"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/solve"
)

func main() {
	const (
		seed       = 12
		iterations = 8
		budget     = 6
		chaosRate  = 0.3
	)

	// Every backend gets its own seeded chaos injector: 15% corrupted
	// replies + 15% in-solver crashes. The primary's schedule is what
	// the BSP loop sees first each round, so print it.
	fcfg := faults.Chaos(seed, chaosRate)
	fmt.Print("primary backend fault schedule: ")
	for i, k := range fcfg.Schedule(iterations) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(k)
	}
	fmt.Println()

	primary := faults.NewInjector(fcfg)
	backups := []*faults.Injector{
		faults.NewInjector(faults.Chaos(seed+88, chaosRate)),
		faults.NewInjector(faults.Chaos(seed+188, chaosRate)),
	}
	engine := func(inj *faults.Injector, s int64) hybrid.Options {
		return hybrid.Options{
			Reads: 6, Sweeps: 400, Seed: s,
			Presolve: true, Penalty: 5, PenaltyGrowth: 4,
			Faults: inj,
		}
	}

	reg := obs.NewRegistry()
	// qlrb builds a fresh engine (and hence a fresh hedge) per round;
	// keep every round's race so the tallies can be summed at the end.
	var races []*hedge.Solver
	method := &qlrb.Quantum{
		Label: "Q_CQM1_hedged",
		Opts: qlrb.SolveOptions{
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: budget},
			Hybrid: engine(primary, seed),
			Obs:    reg,
			// The hedge races the configured engine against two backup
			// backends with independent fault schedules; the first
			// verified plan wins.
			Wrap: func(inner solve.Solver) solve.Solver {
				s, err := hedge.New(hedge.Options{Delay: 5 * time.Millisecond},
					inner,
					hybrid.New(engine(backups[0], seed+1)),
					hybrid.New(engine(backups[1], seed+2)),
				)
				if err != nil {
					log.Fatal(err)
				}
				races = append(races, s)
				return s
			},
		},
	}

	base, err := lrp.NewInstance([]int{12, 12, 12, 12}, []float64{1, 1, 1, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d BSP iterations, 3-way hedged race, %d%% chaos per backend:\n",
		iterations, int(chaosRate*100))
	res, err := dlb.Run(context.Background(),
		dlb.DriftingWorkload{Base: base, Drift: 1}, method,
		dlb.Config{
			Runtime:         chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1},
			Iterations:      iterations,
			MigrationBudget: budget,
			Obs:             reg,
		})
	if err != nil {
		log.Fatal(err)
	}
	for it, ir := range res.Iterations {
		note := ""
		if ir.Degraded {
			note = "  [degraded: all backends failed this round]"
		}
		fmt.Printf("  iter %d: R_imb %.4f, migrated %2d/%d, makespan %.2f ms (baseline %.2f)%s\n",
			it, ir.Imbalance, ir.Migrated, budget, ir.MakespanMs, ir.BaselineMakespanMs, note)
	}

	fmt.Printf("\nall %d rounds completed; speedup %.3f, %d tasks migrated\n",
		len(res.Iterations), res.Speedup, res.TotalMigrated)
	pc := primary.Counts()
	fmt.Printf("primary faults: %d corrupt, %d panic over %d draws\n",
		pc[faults.Corrupt], pc[faults.Panic], primary.Attempts())
	var total []hedge.Tally
	for _, race := range races {
		for i, tl := range race.Tallies() {
			if i == len(total) {
				total = append(total, hedge.Tally{Backend: tl.Backend})
			}
			total[i].Starts += tl.Starts
			total[i].Wins += tl.Wins
			total[i].Rejects += tl.Rejects
			total[i].Panics += tl.Panics
			total[i].Errors += tl.Errors
		}
	}
	for i, tl := range total {
		role := "backup"
		if i == 0 {
			role = "primary"
		}
		fmt.Printf("  backend %d (%s, %-7s): starts %d, wins %d, rejects %d, panics %d, errors %d\n",
			i, tl.Backend, role, tl.Starts, tl.Wins, tl.Rejects, tl.Panics, tl.Errors)
	}
	fmt.Printf("verifier: %d hedge rejections, %d plans rejected at the dlb gate\n",
		reg.Counter("hedge.backend.hybrid.rejects").Value(),
		reg.Counter("dlb.rejected_plans").Value())
	fmt.Println("\na backend may lie about its objective or crash mid-solve; the race")
	fmt.Println("absorbs both, and the independent verifier re-proves every plan —")
	fmt.Println("one-hot assignment, migration budget, recomputed objective — before")
	fmt.Println("the BSP loop applies it. no unverified plan ever reaches dlb.")
}

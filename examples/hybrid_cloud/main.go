// Hybrid cloud workflow: use the asynchronous job client (the stand-in
// for D-Wave's Leap cloud service) to submit several CQM jobs
// concurrently, and demonstrate the CQM -> QUBO conversions the paper
// discusses (Glover-style slack penalties vs slack-free unbalanced
// penalization) by solving both QUBOs and checking feasibility against
// the original CQM.
//
// Run with:
//
//	go run ./examples/hybrid_cloud
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/sa"
)

func main() {
	// A batch of LRP instances of growing size, as a cloud user would
	// submit them.
	instances := []*lrp.Instance{
		lrp.MustInstance([]int{8, 8}, []float64{1, 4}),
		lrp.MustInstance([]int{8, 8, 8}, []float64{1, 2, 6}),
		lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 2, 8}),
	}

	client := hybrid.NewClient(hybrid.Options{
		Reads: 6, Sweeps: 400, Seed: 3,
		Presolve: true, Penalty: 5, PenaltyGrowth: 4,
		Timing: hybrid.DefaultTimingModel(),
	})
	defer client.Close()

	type pending struct {
		id  hybrid.JobID
		enc *qlrb.Encoded
		in  *lrp.Instance
	}
	var jobs []pending
	for _, in := range instances {
		enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: -1})
		if err != nil {
			log.Fatal(err)
		}
		id, err := client.Submit(enc.Model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted job %d: %v (%d qubits)\n", id, in, enc.NumLogicalQubits())
		jobs = append(jobs, pending{id, enc, in})
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, j := range jobs {
		res, err := client.Wait(ctx, j.id)
		if err != nil {
			log.Fatal(err)
		}
		plan, _, err := j.enc.DecodeRepaired(res.Sample)
		if err != nil {
			log.Fatal(err)
		}
		m := lrp.Evaluate(j.in, plan)
		fmt.Printf("job %d done: feasible=%v objective=%.5f -> R_imb %.4f speedup %.4f (sim CPU %v, QPU %v)\n",
			j.id, res.Feasible, res.Objective, m.Imbalance, m.Speedup,
			res.Stats.SimulatedCPU.Round(time.Millisecond), res.Stats.SimulatedQPU)
	}

	// QUBO conversion ablation (Section IV's discussion): both penalty
	// methods must steer an unconstrained sampler to CQM-feasible
	// minima; unbalanced penalization does it without slack qubits.
	fmt.Println("\nQUBO conversion of the 3-process CQM:")
	enc, err := qlrb.Build(instances[1], qlrb.BuildOptions{Form: qlrb.QCQM1, K: 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, method := range []struct {
		name string
		m    cqm.PenaltyMethod
	}{{"slack penalties", cqm.SlackPenalty}, {"unbalanced penalization", cqm.UnbalancedPenalty}} {
		opts := cqm.DefaultQUBOOptions()
		opts.Method = method.m
		opts.EqPenalty = 50
		opts.UnbalancedL2 = 50
		q, err := cqm.ToQUBO(enc.Model, opts)
		if err != nil {
			log.Fatal(err)
		}
		res := sa.Anneal(q.ToModel(), sa.Options{Sweeps: 800, Seed: 9})
		feasible := enc.Model.Feasible(res.Best[:q.BaseVars], 1e-6)
		fmt.Printf("  %-24s %4d qubits (%d slacks)  sampler minimum CQM-feasible: %v\n",
			method.name, q.NumVars, q.NumVars-q.BaseVars, feasible)
	}
}

// Samoa tsunami/oscillating-lake walkthrough: run the adaptive
// shallow-water simulation, watch the limiter and AMR develop, extract
// the paper's LRP imbalance input, rebalance it, and replay both the
// baseline and the rebalanced schedules on the Chameleon-style runtime
// simulator to see the end-to-end makespan effect including migration
// overhead.
//
// Run with:
//
//	go run ./examples/samoa_tsunami
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/samoa"
)

func main() {
	// 1. Simulate the oscillating lake on an adaptive Sierpinski mesh.
	cfg := samoa.DefaultConfig()
	cfg.MaxDepth = 12
	sim := samoa.NewOscillatingLake(cfg, 10)
	fmt.Printf("initial mesh: %d cells, water volume %.4f\n", sim.Mesh.NumLeaves(), sim.TotalVolume())
	fmt.Println(samoa.RenderWater(sim.Mesh, 48, 16))
	for i := 0; i < 8; i++ {
		st := sim.Step()
		fmt.Printf("step %2d: dt=%.5f cells=%5d limited=%4d refined=%3d\n",
			i+1, st.Dt, st.Cells, st.LimitedCells, st.Refined)
	}

	fmt.Println("\nafter 8 steps ('!' marks the limited wet/dry front):")
	fmt.Println(samoa.RenderWater(sim.Mesh, 48, 16))

	// 2. Extract the LRP input: 8 processes x 32 section-traversal
	// tasks, costs from the (wrong) uniform predictor vs the real
	// limiter-aware cost model, calibrated to the paper's baseline
	// imbalance.
	in, err := samoa.ImbalanceInput(sim.Mesh, 8, 32, samoa.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	in = samoa.CalibrateImbalance(in, 4.1994)
	fmt.Printf("\nLRP input: %v\n", in)

	// 3. Rebalance with ProactLB and with Q_CQM1 under the k1 budget.
	ctx := context.Background()
	proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	k1 := proact.Migrated()
	qplan, _, err := qlrb.Solve(ctx, in, qlrb.SolveOptions{
		Build: qlrb.BuildOptions{Form: qlrb.QCQM1, K: k1},
		Hybrid: hybrid.Options{
			Reads: 8, Sweeps: 500, Seed: 7,
			Presolve: true, Penalty: 5, PenaltyGrowth: 4,
			Timing: hybrid.DefaultTimingModel(),
		},
		WarmPlans: []*lrp.Plan{proact},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Replay on the runtime simulator: one BSP iteration each.
	runCfg := chameleon.Config{Workers: 4, LatencyMs: 0.5, PerTaskMs: 0.2}
	replay := func(name string, plan *lrp.Plan) {
		rt, err := chameleon.New(runCfg, in)
		if err != nil {
			log.Fatal(err)
		}
		var mig chameleon.MigrationStats
		if plan != nil {
			if mig, err = rt.ApplyPlan(plan); err != nil {
				log.Fatal(err)
			}
		}
		st := rt.RunIteration()
		metrics := "baseline"
		if plan != nil {
			m := lrp.Evaluate(in, plan)
			metrics = fmt.Sprintf("R_imb %.4f, %d tasks in %d messages (%.2f ms comm)",
				m.Imbalance, mig.Tasks, mig.Messages, mig.CommTimeMs)
		}
		fmt.Printf("%-12s makespan %8.2f ms  busy-imbalance %.4f  (%s)\n",
			name, st.MakespanMs, st.Imbalance, metrics)
	}
	fmt.Println("\nruntime replay (one BSP iteration, 4 workers per process):")
	replay("baseline", nil)
	replay("ProactLB", proact)
	replay("Q_CQM1_k1", qplan)
}

// Gate-based QAOA walkthrough (the paper's Section VI extension): a
// small LRP instance is lowered CQM -> QUBO -> Ising, solved with QAOA
// on the exact state-vector simulator, and then re-sampled under
// increasing device noise to show why the paper flags "noise and error
// mitigation models" as the obstacle at scale.
//
// Run with:
//
//	go run ./examples/gate_qaoa
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/quantum"
)

func main() {
	// 2 processes x 8 tasks, weights 1 and 3: loads 8 vs 24.
	in := lrp.MustInstance([]int{8, 8}, []float64{1, 3})
	fmt.Printf("instance: %v\n", in)

	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 4})
	if err != nil {
		log.Fatal(err)
	}
	opts := cqm.DefaultQUBOOptions()
	opts.Method = cqm.UnbalancedPenalty // no slack qubits
	opts.EqPenalty, opts.UnbalancedL2 = 20, 20
	qubo, err := cqm.ToQUBO(enc.Model, opts)
	if err != nil {
		log.Fatal(err)
	}
	ising := qubo.ToIsing()
	fmt.Printf("lowering: %d CQM vars -> %d QUBO qubits -> Ising with %d couplers\n",
		enc.Model.NumVars(), qubo.NumVars, len(ising.J))
	if res, err := quantum.EstimateResources(qubo, 2); err == nil {
		fmt.Printf("device cost: %v\n\n", res)
	}

	qa, err := quantum.NewQAOA(qubo, 2)
	if err != nil {
		log.Fatal(err)
	}
	params, err := qa.Optimize(quantum.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAOA p=2 optimized in %d circuit evaluations, expectation %.4f (ground %.4f)\n\n",
		params.Evals, params.F, qa.Emin)

	fmt.Println("device-noise study (1024 shots each):")
	fmt.Printf("%-28s %-14s %-12s\n", "noise model", "P(ground)", "best ratio")
	for _, nm := range []struct {
		label string
		model quantum.NoiseModel
	}{
		{"noiseless", quantum.NoiseModel{}},
		{"readout 1%", quantum.NoiseModel{Readout: 0.01}},
		{"readout 5%", quantum.NoiseModel{Readout: 0.05}},
		{"depolarizing 20%", quantum.NoiseModel{Depolarizing: 0.2}},
		{"depolarizing 50%", quantum.NoiseModel{Depolarizing: 0.5}},
	} {
		sr, err := qa.SampleNoisy(params.X, 1024, rand.New(rand.NewSource(7)), nm.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-14.4f %-12.4f\n", nm.label, sr.GroundProbability, sr.ApproxRatio)
	}

	// End to end through the library path.
	plan, stats, err := qlrb.SolveGateBased(context.Background(), in, qlrb.GateOptions{
		Build: qlrb.BuildOptions{Form: qlrb.QCQM1, K: 4}, Layers: 2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := lrp.Evaluate(in, plan)
	fmt.Printf("\nend-to-end gate solve: R_imb %.4f -> %.4f with %d migrations on %d qubits\n",
		in.Imbalance(), m.Imbalance, m.Migrated, stats.Qubits)
}

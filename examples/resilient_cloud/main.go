// Resilient cloud workflow: the paper's rebalancing CQMs are solved on
// a cloud hybrid service from inside an HPC job — a network hop that
// fails, throttles, and times out in practice. This example injects a
// deterministic fault schedule into the simulated cloud path and shows
// the resilience layer absorbing it: retry with exponential backoff and
// jitter, a circuit breaker that stops hammering a down service, and
// graceful degradation to a local simulated-annealing solve so the BSP
// loop always gets a feasible plan.
//
// Everything is seeded: rerunning prints the identical fault schedule,
// retry log, and final plans.
//
// Run with:
//
//	go run ./examples/resilient_cloud
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/dlb"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/resilient"
	"repro/internal/sa"
	"repro/internal/solve"
)

// tickingWorkload advances a fake clock before each round after the
// first, standing in for the BSP compute phase between rebalances.
// With the resilience policy on the same fake clock, backoff waits and
// breaker cooldowns are exact and machine-independent.
type tickingWorkload struct {
	inner dlb.Workload
	clk   *solve.Fake
	step  time.Duration
}

func (w tickingWorkload) Iteration(it int) (*lrp.Instance, error) {
	if it > 0 {
		w.clk.Advance(w.step)
	}
	return w.inner.Iteration(it)
}

func main() {
	const seed = 11

	// A heavy fault mix: half of all cloud attempts fail somehow.
	fcfg := faults.Uniform(seed, 0.5)
	fmt.Print("injected fault schedule (first 12 attempts): ")
	for i, k := range fcfg.Schedule(12) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(k)
	}
	fmt.Println()

	injector := faults.NewInjector(fcfg)
	clk := solve.NewFake(time.Unix(0, 0))
	policy := resilient.NewPolicy(resilient.Options{
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Jitter:      0.2,
		Seed:        seed,
		Breaker:     resilient.BreakerConfig{Threshold: 4, Cooldown: 20 * time.Millisecond},
		Fallback:    &sa.Engine{Base: sa.Options{Sweeps: 400, Penalty: 5, PenaltyGrowth: 4, Seed: seed + 1}},
		Clock:       clk,
		OnRetry: func(attempt int, wait time.Duration, err error) {
			fmt.Printf("  retry: attempt %d failed (%v); backing off %v\n", attempt, err, wait.Round(time.Millisecond))
		},
		OnFallback: func(err error) {
			fmt.Printf("  fallback: cloud path unavailable (%v); serving locally\n", err)
		},
	})

	// A drifting hot spot, rebalanced every iteration by the resilient
	// quantum-hybrid method — the Figure-1 BSP loop under cloud faults.
	base, err := lrp.NewInstance([]int{12, 12, 12, 12}, []float64{1, 1, 1, 5})
	if err != nil {
		log.Fatal(err)
	}
	proact, err := balancer.ProactLB{}.Rebalance(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	h := hybrid.Options{
		Reads: 6, Sweeps: 400, Seed: seed,
		Presolve: true, Penalty: 5, PenaltyGrowth: 4,
		Timing: hybrid.DefaultTimingModel(),
		Faults: injector,
	}
	method := &qlrb.Quantum{
		Label: "Q_CQM1_resilient",
		Opts: qlrb.SolveOptions{
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: proact.Migrated()},
			Hybrid: h,
			Wrap:   policy.Wrap,
		},
	}

	fmt.Println("\n8 BSP iterations at 50% injected fault rate:")
	workload := tickingWorkload{
		inner: dlb.DriftingWorkload{Base: base, Drift: 1},
		clk:   clk,
		step:  10 * time.Millisecond,
	}
	res, err := dlb.Run(context.Background(), workload, method, dlb.Config{
		Runtime:    chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1},
		Iterations: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	for it, ir := range res.Iterations {
		note := ""
		if ir.Degraded {
			note = "  [degraded]"
		}
		fmt.Printf("  iter %d: R_imb %.4f, migrated %2d, makespan %.2f ms (baseline %.2f)%s\n",
			it, ir.Imbalance, ir.Migrated, ir.MakespanMs, ir.BaselineMakespanMs, note)
	}

	tot := policy.Totals()
	counts := injector.Counts()
	fmt.Printf("\nall %d rounds completed; speedup %.3f, %d tasks migrated\n",
		len(res.Iterations), res.Speedup, res.TotalMigrated)
	fmt.Printf("faults injected: %d of %d attempts (%d transient, %d timeout, %d throttle, %d corrupt)\n",
		injector.Injected(), injector.Attempts(),
		counts[faults.Transient], counts[faults.Timeout], counts[faults.Throttle], counts[faults.Corrupt])
	fmt.Printf("resilience: %d attempts, %d retries, %d fallbacks, %d breaker skips (%d trips, now %v)\n",
		tot.Attempts, tot.Retries, tot.Fallbacks, tot.BreakerSkips, policy.Breaker().Trips(), policy.Breaker().State())
	fmt.Println("\nthe cloud hop can fail half the time and the BSP loop still gets a")
	fmt.Println("feasible plan every round — the classical floor the hybrid portfolio")
	fmt.Println("guarantees, now enforced end to end.")
}

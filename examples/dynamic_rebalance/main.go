// Dynamic rebalancing: the BSP loop of the paper's Figure 1, driven end
// to end. A hot spot drifts across the machine between iterations (as
// AMR workloads do); each method rebalances every iteration and pays
// real migration costs on the runtime simulator. Work stealing — the
// classic dynamic alternative from the paper's related work — is run on
// the same inputs for contrast.
//
// Run with:
//
//	go run ./examples/dynamic_rebalance
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/dlb"
	"repro/internal/lrp"
)

func main() {
	base, err := lrp.NewInstance(
		[]int{32, 32, 32, 32, 32, 32},
		[]float64{0.5, 0.5, 0.5, 0.5, 0.5, 4.0}, // P6 is hot
	)
	if err != nil {
		log.Fatal(err)
	}
	workload := dlb.DriftingWorkload{Base: base, Drift: 1}
	cfg := dlb.Config{
		Runtime:    chameleon.Config{Workers: 4, LatencyMs: 0.3, PerTaskMs: 0.15},
		Iterations: 6,
	}

	fmt.Println("6 BSP iterations, hot spot drifting one process per iteration")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %10s %10s\n", "method", "total ms", "baseline ms", "speedup", "migrated")
	for _, method := range []balancer.Rebalancer{
		balancer.Baseline{},
		balancer.Greedy{},
		balancer.ProactLB{},
	} {
		res, err := dlb.Run(context.Background(), workload, method, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %12.2f %10.3f %10d\n",
			method.Name(), res.TotalMakespanMs, res.TotalBaselineMs, res.Speedup, res.TotalMigrated)
	}

	// Work stealing on the same sequence of inputs.
	ws := dlb.WorkStealing{Workers: 4, StealLatencyMs: 0.3}
	totalMs, steals := 0.0, 0
	for it := 0; it < cfg.Iterations; it++ {
		in, err := workload.Iteration(it)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ws.Simulate(in)
		if err != nil {
			log.Fatal(err)
		}
		totalMs += res.MakespanMs
		steals += res.Steals
	}
	fmt.Printf("%-10s %12.2f %12s %10s %10d   (steals happen on the critical path)\n",
		"worksteal", totalMs, "-", "-", steals)

	fmt.Println()
	fmt.Println("ProactLB-style budgeted migration pays far less communication than")
	fmt.Println("full repartitioning while reaching comparable makespans — the")
	fmt.Println("trade-off the paper's k-constrained CQM formulations optimize.")
}

// General per-task rebalancing: the paper's formulations assume every
// task of a process has the same load; real workloads rarely do. This
// example extracts genuinely heterogeneous per-task loads from an
// execution trace and rebalances them with the general per-task CQM
// (one qubit per task-destination pair), comparing against what the
// count-encoded Q_CQM1 sees after per-process uniformization.
//
// Run with:
//
//	go run ./examples/general_tasks
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/chameleon"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
)

func main() {
	// A machine where per-task loads differ WITHIN processes: process 0
	// holds a few giants, process 1 a mix, process 2 almost nothing.
	tasks := []lrp.Task{
		{ID: 0, Origin: 0, Load: 12}, {ID: 1, Origin: 0, Load: 9},
		{ID: 2, Origin: 0, Load: 7}, {ID: 3, Origin: 0, Load: 5},
		{ID: 4, Origin: 1, Load: 4}, {ID: 5, Origin: 1, Load: 3},
		{ID: 6, Origin: 1, Load: 2}, {ID: 7, Origin: 1, Load: 1},
		{ID: 8, Origin: 2, Load: 1}, {ID: 9, Origin: 2, Load: 1},
	}
	loads := make([]float64, 3)
	for _, t := range tasks {
		loads[t.Origin] += t.Load
	}
	fmt.Printf("initial loads: %v (total 45, ideal 15 per process)\n\n", loads)

	h := hybrid.Options{
		Reads: 8, Sweeps: 500, Seed: 11,
		Presolve: true, Penalty: 5, PenaltyGrowth: 4,
		Timing: hybrid.DefaultTimingModel(),
	}
	res, err := qlrb.SolveGeneral(context.Background(), tasks, qlrb.GeneralBuildOptions{Procs: 3, K: 4}, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general per-task CQM (%d qubits, k=4): loads %v, %d migrations\n",
		res.Qubits, res.Loads, res.Migrated)
	for t, dst := range res.Assign {
		if dst != tasks[t].Origin {
			fmt.Printf("  move task %d (load %g) P%d -> P%d\n", tasks[t].ID, tasks[t].Load, tasks[t].Origin+1, dst+1)
		}
	}

	// The same tasks through the paper's pipeline: an execution trace is
	// uniformized per process (each task gets the mean load), which is
	// exactly the information loss the general model avoids.
	var events []chameleon.TraceEvent
	clock := 0.0
	for _, task := range tasks {
		events = append(events, chameleon.TraceEvent{
			Proc: task.Origin, Origin: task.Origin,
			StartMs: clock, EndMs: clock + task.Load,
		})
		clock += task.Load
	}
	uniform, err := chameleon.InstanceFromTrace(events, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniformized view (paper's input model): weights %.2f\n", uniform.Weight)
	fmt.Println("with per-process means, moving one 'average' task cannot express")
	fmt.Println("\"move the 12ms giant\" — the general formulation can.")
}

// Package repro is the public API of qulrb-go, a Go implementation of
// hybrid classical-quantum load rebalancing for HPC (Zawalska, Chung et
// al., SC 2024; see README.md and DESIGN.md).
//
// The package re-exports the library's stable surface from the internal
// implementation packages:
//
//   - problem modelling: Instance, Plan, Metrics, Evaluate;
//   - classical rebalancers: Greedy, KK, ProactLB, Baseline (all
//     implementing Rebalancer);
//   - the paper's contribution: the QCQM1/QCQM2 formulations, solved via
//     SolveCQM (annealing-based hybrid solver) or SolveGateBased (QAOA
//     on a simulated gate-model device);
//   - the runtime simulator (RunSimulation) for end-to-end makespan
//     evaluation including migration overhead.
//
// A minimal session:
//
//	in, _ := repro.UniformInstance(50, []float64{1, 1, 1, 5})
//	plan, stats, _ := repro.SolveCQM(context.Background(), in, repro.CQMOptions{
//		Form: repro.QCQM1,
//		K:    20,
//		Seed: 1,
//	})
//	m := repro.Evaluate(in, plan)
//	fmt.Println(m.Imbalance, m.Speedup, m.Migrated, stats.Qubits)
package repro

import (
	"context"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
)

// Instance is a uniform-load LRP instance (see internal/lrp).
type Instance = lrp.Instance

// Plan is a migration plan: X[i][j] tasks end on process i from j.
type Plan = lrp.Plan

// Metrics carries the paper's evaluation metrics for a plan.
type Metrics = lrp.Metrics

// Task is one task of the expanded per-task view.
type Task = lrp.Task

// NewInstance builds an instance from per-process task counts and
// per-task weights.
func NewInstance(tasks []int, weights []float64) (*Instance, error) {
	return lrp.NewInstance(tasks, weights)
}

// UniformInstance builds an instance with n tasks on every process.
func UniformInstance(n int, weights []float64) (*Instance, error) {
	return lrp.UniformInstance(n, weights)
}

// Evaluate computes the paper's metrics for a plan.
func Evaluate(in *Instance, p *Plan) Metrics { return lrp.Evaluate(in, p) }

// Rebalancer is the common interface of all rebalancing methods.
type Rebalancer = balancer.Rebalancer

// Classical baselines (Section III of the paper).
type (
	// Greedy is Graham's LPT multiway partitioner.
	Greedy = balancer.Greedy
	// KK is the Karmarkar-Karp multiway differencing method.
	KK = balancer.KK
	// ProactLB is the proactive rebalancer of Chung et al.
	ProactLB = balancer.ProactLB
	// Baseline performs no rebalancing.
	Baseline = balancer.Baseline
	// Optimal is the exact branch-and-bound multiway partitioner
	// (small instances only).
	Optimal = balancer.Optimal
)

// ImprovePlan hill-climbs a plan under a migration budget; see
// balancer.ImprovePlan.
func ImprovePlan(in *Instance, p *Plan, k int) *Plan {
	return balancer.ImprovePlan(in, p, k)
}

// Formulation selects between the paper's CQM variants.
type Formulation = qlrb.Formulation

// The two CQM formulations of Section IV.
const (
	// QCQM1 is the reduced formulation (inequality constraints only).
	QCQM1 = qlrb.QCQM1
	// QCQM2 is the full formulation (M equality + M+1 inequality).
	QCQM2 = qlrb.QCQM2
)

// CQMOptions configures SolveCQM.
type CQMOptions struct {
	// Form selects QCQM1 or QCQM2.
	Form Formulation
	// K caps total migrations (< 0 disables the cap).
	K int
	// Seed makes the solve reproducible.
	Seed int64
	// Reads and Sweeps budget the sampler (0 = library defaults).
	Reads, Sweeps int
	// WarmPlans seed the sampler with known plans. When nil, the
	// classical methods (ProactLB, Greedy) are run first and their
	// plans used — the paper's protocol. Pass an empty non-nil slice to
	// force a cold start.
	WarmPlans []*Plan
	// PinHeaviest applies the extra QCQM1 qubit reduction (the paper's
	// (M-1)^2 count; see DESIGN.md).
	PinHeaviest bool
	// MigrationWeight adds a soft per-migration objective cost, the
	// Lagrangian alternative to the hard K cap.
	MigrationWeight float64
}

// CQMStats reports a hybrid solve (see qlrb.SolveStats).
type CQMStats = qlrb.SolveStats

// SolveCQM builds the paper's CQM for the instance and solves it with
// the annealing-based hybrid solver, returning a feasible migration
// plan. Cancelling ctx stops the sampler at the next sweep boundary;
// the best sample collected so far is still decoded into a feasible
// plan (Stats.Solver.Interrupted reports the cut).
func SolveCQM(ctx context.Context, in *Instance, opt CQMOptions) (*Plan, CQMStats, error) {
	h := hybrid.DefaultOptions()
	h.Seed = opt.Seed
	if opt.Reads > 0 {
		h.Reads = opt.Reads
	}
	if opt.Sweeps > 0 {
		h.Sweeps = opt.Sweeps
	}
	h.Penalty = 5
	h.PenaltyGrowth = 4
	warm := opt.WarmPlans
	if warm == nil {
		if p, err := (balancer.ProactLB{}).Rebalance(ctx, in); err == nil {
			warm = append(warm, p)
		}
		if p, err := (balancer.Greedy{}).Rebalance(ctx, in); err == nil {
			warm = append(warm, p)
		}
	}
	return qlrb.Solve(ctx, in, qlrb.SolveOptions{
		Build: qlrb.BuildOptions{
			Form:            opt.Form,
			K:               opt.K,
			PinHeaviest:     opt.PinHeaviest,
			MigrationWeight: opt.MigrationWeight,
		},
		Hybrid:    h,
		WarmPlans: warm,
	})
}

// CQMBuildOptions selects formulation and migration cap when building a
// CQM directly (used by GateOptions).
type CQMBuildOptions = qlrb.BuildOptions

// GateOptions configures the QAOA path (Section VI extension).
type GateOptions = qlrb.GateOptions

// GateStats reports a gate-based solve.
type GateStats = qlrb.GateStats

// SolveGateBased solves a small instance on the simulated gate-model
// path (CQM -> QUBO -> QAOA).
func SolveGateBased(ctx context.Context, in *Instance, opt GateOptions) (*Plan, GateStats, error) {
	return qlrb.SolveGateBased(ctx, in, opt)
}

// NewQuantumRebalancer wraps a CQM configuration as a Rebalancer so it
// can be used interchangeably with the classical methods.
func NewQuantumRebalancer(label string, form Formulation, k int, seed int64) Rebalancer {
	h := hybrid.DefaultOptions()
	h.Seed = seed
	h.Penalty = 5
	h.PenaltyGrowth = 4
	return qlrb.NewQuantum(label, form, k, h)
}

// SimulationConfig shapes the Chameleon-style runtime simulator.
type SimulationConfig = chameleon.Config

// SimulationResult is one simulated BSP iteration.
type SimulationResult = chameleon.IterStats

// RunSimulation executes a plan on the runtime simulator and runs one
// BSP iteration, returning the iteration statistics (makespan includes
// in-flight migration delays).
func RunSimulation(cfg SimulationConfig, in *Instance, p *Plan) (SimulationResult, error) {
	rt, err := chameleon.New(cfg, in)
	if err != nil {
		return SimulationResult{}, err
	}
	if p != nil {
		if _, err := rt.ApplyPlan(p); err != nil {
			return SimulationResult{}, err
		}
	}
	return rt.RunIteration(), nil
}

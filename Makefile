GO ?= go

# Packages whose concurrent paths (portfolio goroutines, shared Stop,
# SerialProgress, the job client, the resilience policy) must stay
# race-clean.
RACE_PKGS = ./internal/solve ./internal/hybrid ./internal/sa ./internal/resilient ./internal/faults

.PHONY: check build vet fmt test race bench fault-demo

# check is the CI gate: vet + formatting + full tests + race detector on
# the concurrent solver paths.
check: vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fault-demo runs the degradation-curve experiment: the resilient cloud
# path (retry + breaker + classical fallback) swept over injected fault
# rates. See DESIGN.md's "Failure model".
fault-demo:
	$(GO) run ./cmd/experiments -exp faults -fast

GO ?= go
FUZZTIME ?= 10s
BENCH_JSON ?= BENCH_10.json
# bench-diff / perf-gate knobs: the committed baseline to diff against,
# and the relative tolerance applied to allocs/op (work counters and
# qubit counts always compare exactly; see cmd/benchdiff).
BASE ?= BENCH_10.json
TOL ?= 0.1

.PHONY: check build vet fmt test race bench bench-json bench-diff perf-gate fault-demo fuzz-smoke daemon-smoke

# check is the CI gate: vet + formatting + full shuffled tests + the
# race detector over every package.
check: vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -shuffle=on randomizes test order so hidden inter-test state cannot
# hide; the shuffle seed is printed on failure for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json runs the paper-metric benchmarks and converts the text
# output into a machine-readable $(BENCH_JSON) artifact — custom
# metrics like the annealer's flips/s survive verbatim. The root
# tables/figures are full experiments, so they run once; the hot-path
# packages (sa, tabu, cqm, serve) run 100 warm iterations with -benchmem
# so their per-op timings and allocs/op are measurements, not cold
# single-shot noise. The intermediate text file is truncated up front
# and removed even when a bench run fails, so an aborted run cannot
# leave a stale $(BENCH_JSON).txt behind or feed it to a later convert.
bench-json:
	@rm -f $(BENCH_JSON).txt
	$(GO) test -run=^$$ -bench=. -benchtime=1x . > $(BENCH_JSON).txt || { rm -f $(BENCH_JSON).txt; exit 1; }
	$(GO) test -run=^$$ -bench=. -benchtime=100x -benchmem ./internal/sa ./internal/tabu ./internal/cqm ./internal/serve ./internal/batch ./internal/plancache ./internal/wal >> $(BENCH_JSON).txt || { rm -f $(BENCH_JSON).txt; exit 1; }
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < $(BENCH_JSON).txt
	@rm -f $(BENCH_JSON).txt

# bench-diff re-runs the benchmarks and diffs them against the
# committed $(BASE) report: deterministic metrics (flips, moves,
# allocs/op, qubit counts) gate with a non-zero exit, wall-clock
# metrics are advisory. The delta table lands in bench_delta.md.
bench-diff:
	$(MAKE) bench-json BENCH_JSON=bench_current.json
	$(GO) run ./cmd/benchdiff -base $(BASE) -new bench_current.json -table bench_delta.md -tol $(TOL)

# perf-gate is the merge-blocking performance check: the TestPerfGate*
# unit gates (zero-alloc inner loops, exact deterministic flip counts)
# plus a benchdiff against the committed baseline. Everything it gates
# on is machine-independent, so it cannot flake on runner timing noise.
perf-gate:
	$(GO) test -run='^TestPerfGate' -count=1 ./internal/sa ./internal/tabu ./internal/cqm ./internal/plancache ./internal/wal
	$(MAKE) bench-diff

# fuzz-smoke gives every fuzz target a short randomized shake
# (FUZZTIME per corpus, ~10s default) — enough to catch shallow
# regressions in the parsers, the encode/decode round-trip, and the
# independent verifier on every CI run without a dedicated fuzz farm.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPlan -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzSample -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode -fuzztime=$(FUZZTIME) ./internal/qlrb
	$(GO) test -run='^$$' -fuzz=FuzzParseTraceLog -fuzztime=$(FUZZTIME) ./internal/chameleon
	$(GO) test -run='^$$' -fuzz=FuzzReadInput -fuzztime=$(FUZZTIME) ./internal/csvio
	$(GO) test -run='^$$' -fuzz=FuzzReadModel -fuzztime=$(FUZZTIME) ./internal/cqm
	$(GO) test -run='^$$' -fuzz=FuzzEvaluator -fuzztime=$(FUZZTIME) ./internal/cqm
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzFingerprint -fuzztime=$(FUZZTIME) ./internal/plancache
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/wal

# daemon-smoke exercises the serving daemon end to end from the
# outside: build qulrbd, start it, POST a real instance over HTTP, poll
# the job to completion, check /metrics is populated, SIGTERM, and
# require a clean drain and exit. See scripts/daemon_smoke.sh.
daemon-smoke:
	./scripts/daemon_smoke.sh

# fault-demo runs the degradation-curve experiment: the resilient cloud
# path (retry + breaker + classical fallback) swept over injected fault
# rates. See DESIGN.md's "Failure model".
fault-demo:
	$(GO) run ./cmd/experiments -exp faults -fast

GO ?= go

.PHONY: check build vet fmt test race bench fault-demo

# check is the CI gate: vet + formatting + full shuffled tests + the
# race detector over every package.
check: vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -shuffle=on randomizes test order so hidden inter-test state cannot
# hide; the shuffle seed is printed on failure for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fault-demo runs the degradation-curve experiment: the resilient cloud
# path (retry + breaker + classical fallback) swept over injected fault
# rates. See DESIGN.md's "Failure model".
fault-demo:
	$(GO) run ./cmd/experiments -exp faults -fast

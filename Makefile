GO ?= go
FUZZTIME ?= 10s
BENCH_JSON ?= BENCH_7.json

.PHONY: check build vet fmt test race bench bench-json fault-demo fuzz-smoke daemon-smoke

# check is the CI gate: vet + formatting + full shuffled tests + the
# race detector over every package.
check: vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -shuffle=on randomizes test order so hidden inter-test state cannot
# hide; the shuffle seed is printed on failure for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json runs the paper-metric benchmarks (root tables/figures,
# annealer flips/s, CQM evaluator hot path) once each and converts the
# text output into a machine-readable $(BENCH_JSON) artifact — custom
# metrics like flips/s survive verbatim. The intermediate text file
# keeps the pipeline failure-honest: a failing bench run stops make
# before anything is converted.
bench-json:
	$(GO) test -run=^$$ -bench=. -benchtime=1x . ./internal/sa ./internal/cqm ./internal/serve > $(BENCH_JSON).txt
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < $(BENCH_JSON).txt
	@rm -f $(BENCH_JSON).txt

# fuzz-smoke gives every fuzz target a short randomized shake
# (FUZZTIME per corpus, ~10s default) — enough to catch shallow
# regressions in the parsers, the encode/decode round-trip, and the
# independent verifier on every CI run without a dedicated fuzz farm.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPlan -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzSample -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode -fuzztime=$(FUZZTIME) ./internal/qlrb
	$(GO) test -run='^$$' -fuzz=FuzzParseTraceLog -fuzztime=$(FUZZTIME) ./internal/chameleon
	$(GO) test -run='^$$' -fuzz=FuzzReadInput -fuzztime=$(FUZZTIME) ./internal/csvio
	$(GO) test -run='^$$' -fuzz=FuzzReadModel -fuzztime=$(FUZZTIME) ./internal/cqm
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/serve

# daemon-smoke exercises the serving daemon end to end from the
# outside: build qulrbd, start it, POST a real instance over HTTP, poll
# the job to completion, check /metrics is populated, SIGTERM, and
# require a clean drain and exit. See scripts/daemon_smoke.sh.
daemon-smoke:
	./scripts/daemon_smoke.sh

# fault-demo runs the degradation-curve experiment: the resilient cloud
# path (retry + breaker + classical fallback) swept over injected fault
# rates. See DESIGN.md's "Failure model".
fault-demo:
	$(GO) run ./cmd/experiments -exp faults -fast

package repro

import (
	"context"
	"testing"
)

func TestPublicAPISolveCQM(t *testing.T) {
	in, err := UniformInstance(10, []float64{1, 1, 1, 6})
	if err != nil {
		t.Fatal(err)
	}
	proact, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := SolveCQM(context.Background(), in, CQMOptions{
		Form:      QCQM1,
		K:         proact.Migrated(),
		Seed:      1,
		Reads:     4,
		Sweeps:    200,
		WarmPlans: []*Plan{proact},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	m := Evaluate(in, plan)
	if m.Imbalance >= in.Imbalance() {
		t.Fatalf("no improvement: %v", m.Imbalance)
	}
	if stats.Qubits == 0 {
		t.Fatal("stats empty")
	}
}

func TestPublicAPIClassicalMethods(t *testing.T) {
	in, err := NewInstance([]int{5, 5}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Rebalancer{Greedy{}, KK{}, ProactLB{}, Baseline{}} {
		plan, err := r.Rebalance(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := plan.Validate(in); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestPublicAPIQuantumRebalancerInterface(t *testing.T) {
	in, err := UniformInstance(8, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantumRebalancer("Q_CQM1", QCQM1, 3, 7)
	plan, err := q.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() > 3 {
		t.Fatalf("migrated %d > 3", plan.Migrated())
	}
}

func TestPublicAPIGatePath(t *testing.T) {
	in, err := UniformInstance(8, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := SolveGateBased(context.Background(), in, GateOptions{
		Build: CQMBuildOptions{Form: QCQM1, K: 3},
		Seed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if stats.Qubits == 0 {
		t.Fatal("gate stats empty")
	}
}

func TestPublicAPISimulation(t *testing.T) {
	in, err := UniformInstance(6, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimulationConfig{Workers: 2, LatencyMs: 0.1, PerTaskMs: 0.05}
	base, err := RunSimulation(cfg, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	after, err := RunSimulation(cfg, in, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after.MakespanMs >= base.MakespanMs {
		t.Fatalf("rebalanced run not faster: %v vs %v", after.MakespanMs, base.MakespanMs)
	}
}

func TestPublicAPIOptimalAndImprove(t *testing.T) {
	in, err := UniformInstance(3, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimal{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(in, plan).MaxLoad > Evaluate(in, greedy).MaxLoad+1e-9 {
		t.Fatal("optimal worse than greedy")
	}
	improved := ImprovePlan(in, greedy, greedy.Migrated())
	if improved.Validate(in) != nil {
		t.Fatal("improved plan invalid")
	}
}

func TestPublicAPICQMOptionsVariants(t *testing.T) {
	in, err := UniformInstance(8, []float64{1, 1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Soft migration cost without a hard cap.
	plan, _, err := SolveCQM(context.Background(), in, CQMOptions{
		Form: QCQM1, K: -1, Seed: 2, Reads: 4, Sweeps: 200,
		MigrationWeight: 100,
		WarmPlans:       []*Plan{}, // cold start: test the soft cost alone
	})
	if err != nil {
		t.Fatal(err)
	}
	free, _, err := SolveCQM(context.Background(), in, CQMOptions{Form: QCQM1, K: -1, Seed: 2, Reads: 4, Sweeps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() > free.Migrated() && free.Migrated() > 0 {
		t.Fatalf("soft cost did not restrain migrations: %d vs %d", plan.Migrated(), free.Migrated())
	}
	// Pinned reduction still produces valid plans.
	pinned, stats, err := SolveCQM(context.Background(), in, CQMOptions{Form: QCQM1, K: 6, Seed: 3, Reads: 4, Sweeps: 200, PinHeaviest: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := pinned.Validate(in); err != nil {
		t.Fatal(err)
	}
	if stats.Qubits != (4-1)*(4-1)*4 { // (M-1)^2 * |C| with n=8 -> |C|=4
		t.Fatalf("pinned qubits = %d", stats.Qubits)
	}
}

func TestPublicAPISimulationErrors(t *testing.T) {
	in, err := UniformInstance(4, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid machine config.
	if _, err := RunSimulation(SimulationConfig{Workers: 0}, in, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
	// Plan of the wrong dimension.
	wrong, err := UniformInstance(4, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	badPlan, err := Baseline{}.Rebalance(context.Background(), wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimulation(SimulationConfig{Workers: 1}, in, badPlan); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (see DESIGN.md's per-experiment index) and
// run the ablations it motivates. Each benchmark executes the full
// pipeline for its artifact — workload generation, classical baselines,
// CQM construction, hybrid solving, metric extraction — and reports the
// headline quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. Budgets are reduced relative to
// cmd/experiments (benchmarks run many iterations); the shapes are the
// same.
package repro

import (
	"context"
	"testing"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/cqm"
	"repro/internal/dlb"
	"repro/internal/experiments"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/mxm"
	"repro/internal/qlrb"
	"repro/internal/sa"
)

func benchConfig() experiments.Config {
	cfg := experiments.FastConfig()
	cfg.Seed = 2024
	return cfg
}

// BenchmarkTable1Qubits regenerates Table I: CQM construction and
// logical-qubit counts for the paper's machine shapes.
func BenchmarkTable1Qubits(b *testing.B) {
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(i%7 + 1)
	}
	in, err := lrp.UniformInstance(208, weights)
	if err != nil {
		b.Fatal(err)
	}
	var q1, q2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc1, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 100, PinHeaviest: true})
		if err != nil {
			b.Fatal(err)
		}
		enc2, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM2, K: 100})
		if err != nil {
			b.Fatal(err)
		}
		q1, q2 = enc1.NumLogicalQubits(), enc2.NumLogicalQubits()
	}
	b.ReportMetric(float64(q1), "qubits_qcqm1")
	b.ReportMetric(float64(q2), "qubits_qcqm2")
}

// BenchmarkFig3VaryImbalance regenerates Figure 3: imbalance ratio and
// speedup across the five Imb.0-Imb.4 cases for all seven methods.
func BenchmarkFig3VaryImbalance(b *testing.B) {
	cfg := benchConfig()
	var g experiments.GroupResult
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.RunVaryImbalance(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := g.Cases[len(g.Cases)-1]
	b.ReportMetric(worst.Method("Q_CQM1_k2").Metrics.Speedup, "q1k2_speedup_imb4")
	b.ReportMetric(worst.Method("Greedy").Metrics.Speedup, "greedy_speedup_imb4")
}

// BenchmarkTable2Migrations regenerates Table II: average migrated tasks
// and runtime over the Imb.0-Imb.4 cases.
func BenchmarkTable2Migrations(b *testing.B) {
	cfg := benchConfig()
	var g experiments.GroupResult
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.RunVaryImbalance(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := func(method string) float64 {
		total := 0.0
		for _, c := range g.Cases {
			total += float64(c.Method(method).Metrics.Migrated)
		}
		return total / float64(len(g.Cases))
	}
	b.ReportMetric(avg("Greedy"), "greedy_mig_avg")
	b.ReportMetric(avg("ProactLB"), "proactlb_mig_avg")
	b.ReportMetric(avg("Q_CQM1_k1"), "q1k1_mig_avg")
}

// BenchmarkFig4VaryNodes regenerates Figure 4 (and its companion Table
// III via migration counts): scaling the node count at 100 tasks/node.
func BenchmarkFig4VaryNodes(b *testing.B) {
	cfg := benchConfig()
	scales := []int{4, 8, 16, 32}
	var g experiments.GroupResult
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.RunVaryProcs(context.Background(), cfg, scales)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := g.Cases[len(g.Cases)-1]
	b.ReportMetric(last.Method("Q_CQM1_k2").Metrics.Speedup, "q1k2_speedup_32n")
	b.ReportMetric(float64(last.Method("Q_CQM1_k1").Metrics.Migrated), "q1k1_mig_32n")
}

// BenchmarkTable3Migrations regenerates Table III's headline contrast at
// one scale: total migrated tasks of partitioners vs budgeted methods.
func BenchmarkTable3Migrations(b *testing.B) {
	cfg := benchConfig()
	var g experiments.GroupResult
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.RunVaryProcs(context.Background(), cfg, []int{16})
		if err != nil {
			b.Fatal(err)
		}
	}
	c := g.Cases[0]
	b.ReportMetric(float64(c.Method("Greedy").Metrics.Migrated), "greedy_mig_16n")
	b.ReportMetric(float64(c.Method("Q_CQM1_k1").Metrics.Migrated), "q1k1_mig_16n")
}

// BenchmarkFig5VaryTasks regenerates Figure 5 / Table IV: scaling tasks
// per node on 8 nodes.
func BenchmarkFig5VaryTasks(b *testing.B) {
	cfg := benchConfig()
	scales := []int{8, 64, 512}
	var g experiments.GroupResult
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.RunVaryTasks(context.Background(), cfg, scales)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := g.Cases[len(g.Cases)-1]
	b.ReportMetric(float64(last.Method("Greedy").Metrics.Migrated), "greedy_mig_512t")
	b.ReportMetric(float64(last.Method("Q_CQM2_k2").Metrics.Migrated), "q2k2_mig_512t")
}

// BenchmarkTable4TaskScaling regenerates Table IV's N(M-1)/M migration
// law for the partitioners at the 2048-task point.
func BenchmarkTable4TaskScaling(b *testing.B) {
	var mig int
	for i := 0; i < b.N; i++ {
		c := mxm.VaryTasksCase(2048, mxm.DefaultCostModel(), 2024)
		plan, err := balancer.Greedy{}.Rebalance(context.Background(), c.Instance)
		if err != nil {
			b.Fatal(err)
		}
		mig = plan.Migrated()
	}
	b.ReportMetric(float64(mig), "greedy_mig_2048t")
}

// BenchmarkTable5Samoa regenerates Table V: the sam(oa)^2 oscillating
// lake use case (reduced mesh for benchmark iteration counts).
func BenchmarkTable5Samoa(b *testing.B) {
	cfg := benchConfig()
	params := experiments.SamoaParams{
		Procs: 16, TasksPerProc: 64, MeshDepth: 10, WarmupSteps: 8, TargetImbalance: 4.1994,
	}
	var cr experiments.CaseResult
	var err error
	for i := 0; i < b.N; i++ {
		cr, err = experiments.RunSamoa(context.Background(), cfg, params)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cr.BaselineImb, "baseline_rimb")
	b.ReportMetric(cr.Method("Q_CQM1_k1").Metrics.Speedup, "q1k1_speedup")
	b.ReportMetric(float64(cr.Method("Q_CQM1_k1").Metrics.Migrated), "q1k1_mig")
	b.ReportMetric(float64(cr.Method("Greedy").Metrics.Migrated), "greedy_mig")
}

// BenchmarkAblationQubitReduction (A1) contrasts the three formulation
// sizes the Discussion analyses: full, diagonal-reduced, and pinned.
func BenchmarkAblationQubitReduction(b *testing.B) {
	in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[3].Instance
	h := hybrid.Options{Reads: 4, Sweeps: 250, Seed: 5, Presolve: true, Penalty: 5, PenaltyGrowth: 4}
	variants := []struct {
		name string
		opt  qlrb.BuildOptions
	}{
		{"full", qlrb.BuildOptions{Form: qlrb.QCQM2, K: 200}},
		{"reduced", qlrb.BuildOptions{Form: qlrb.QCQM1, K: 200}},
		{"pinned", qlrb.BuildOptions{Form: qlrb.QCQM1, K: 200, PinHeaviest: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var qubits int
			var imb float64
			for i := 0; i < b.N; i++ {
				plan, stats, err := qlrb.Solve(context.Background(), in, qlrb.SolveOptions{Build: v.opt, Hybrid: h})
				if err != nil {
					b.Fatal(err)
				}
				qubits = stats.Qubits
				imb = lrp.Evaluate(in, plan).Imbalance
			}
			b.ReportMetric(float64(qubits), "qubits")
			b.ReportMetric(imb, "rimb")
		})
	}
}

// BenchmarkAblationQUBOPenalty (A2) contrasts the two CQM->QUBO
// constraint encodings: slack penalties vs unbalanced penalization.
func BenchmarkAblationQUBOPenalty(b *testing.B) {
	in := lrp.MustInstance([]int{8, 8, 8}, []float64{1, 2, 6})
	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	methods := []struct {
		name string
		m    cqm.PenaltyMethod
	}{
		{"slack", cqm.SlackPenalty},
		{"unbalanced", cqm.UnbalancedPenalty},
	}
	for _, pm := range methods {
		b.Run(pm.name, func(b *testing.B) {
			opts := cqm.DefaultQUBOOptions()
			opts.Method = pm.m
			opts.EqPenalty = 50
			opts.UnbalancedL2 = 50
			feasible := 0
			var qubits int
			for i := 0; i < b.N; i++ {
				q, err := cqm.ToQUBO(enc.Model, opts)
				if err != nil {
					b.Fatal(err)
				}
				qubits = q.NumVars
				res := sa.Anneal(q.ToModel(), sa.Options{Sweeps: 400, Seed: int64(i)})
				if enc.Model.Feasible(res.Best[:q.BaseVars], 1e-6) {
					feasible++
				}
			}
			b.ReportMetric(float64(qubits), "qubits")
			b.ReportMetric(float64(feasible)/float64(b.N), "feasible_rate")
		})
	}
}

// BenchmarkMigrationOverhead (A3) replays plans on the Chameleon-style
// runtime simulator, exposing the migration overhead that motivates the
// paper's k constraint: Greedy's full repartition vs ProactLB's excess-
// only migration on the same imbalanced input.
func BenchmarkMigrationOverhead(b *testing.B) {
	c := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[4]
	in := c.Instance
	cfg := chameleon.Config{Workers: 27, LatencyMs: 0.5, PerTaskMs: 0.25}
	methods := []balancer.Rebalancer{balancer.Baseline{}, balancer.Greedy{}, balancer.ProactLB{}}
	for _, m := range methods {
		b.Run(m.Name(), func(b *testing.B) {
			var makespan, comm float64
			for i := 0; i < b.N; i++ {
				plan, err := m.Rebalance(context.Background(), in)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := chameleon.New(cfg, in)
				if err != nil {
					b.Fatal(err)
				}
				ms, err := rt.ApplyPlan(plan)
				if err != nil {
					b.Fatal(err)
				}
				st := rt.RunIteration()
				makespan, comm = st.MakespanMs, ms.CommTimeMs
			}
			b.ReportMetric(makespan, "makespan_ms")
			b.ReportMetric(comm, "comm_ms")
		})
	}
}

// BenchmarkAblationRelabel quantifies how much of Greedy's migration
// count is a labeling artifact: optimal partition-to-process relabeling
// (Hungarian) vs the paper's arbitrary labels.
func BenchmarkAblationRelabel(b *testing.B) {
	in := mxm.VaryProcsCase(16, mxm.DefaultCostModel(), 2024).Instance
	var before, after int
	for i := 0; i < b.N; i++ {
		plan, err := balancer.Greedy{}.Rebalance(context.Background(), in)
		if err != nil {
			b.Fatal(err)
		}
		relabeled := balancer.RelabelMinMigrations(plan)
		before, after = plan.Migrated(), relabeled.Migrated()
	}
	b.ReportMetric(float64(before), "mig_arbitrary_labels")
	b.ReportMetric(float64(after), "mig_optimal_labels")
}

// BenchmarkKSweep (A5) runs the k parameter study the paper lists as
// future work: the balance-vs-budget frontier on the Imb.3 case.
func BenchmarkKSweep(b *testing.B) {
	in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[3].Instance
	ks, err := experiments.DefaultKGrid(context.Background(), in)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	var points []experiments.KSweepPoint
	for i := 0; i < b.N; i++ {
		points, err = experiments.RunKSweep(context.Background(), in, qlrb.QCQM1, ks, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := points[0], points[len(points)-1]
	b.ReportMetric(first.Metrics.Imbalance, "rimb_k0")
	b.ReportMetric(last.Metrics.Imbalance, "rimb_kmax")
}

// BenchmarkGateBasedQAOA (A4) solves a small instance on the simulated
// gate-model path (Section VI's extension).
func BenchmarkGateBasedQAOA(b *testing.B) {
	in := lrp.MustInstance([]int{8, 8}, []float64{1, 3})
	var stats qlrb.GateStats
	var plan *lrp.Plan
	var err error
	for i := 0; i < b.N; i++ {
		plan, stats, err = qlrb.SolveGateBased(context.Background(), in, qlrb.GateOptions{
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 4},
			Layers: 2,
			Seed:   int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Qubits), "qubits")
	b.ReportMetric(lrp.Evaluate(in, plan).Imbalance, "rimb")
}

// BenchmarkDynamicLoop drives the multi-iteration BSP loop with
// per-iteration rebalancing (Figure 1's scenario) and contrasts it with
// work stealing.
func BenchmarkDynamicLoop(b *testing.B) {
	base := lrp.MustInstance(
		[]int{32, 32, 32, 32, 32, 32},
		[]float64{0.5, 0.5, 0.5, 0.5, 0.5, 4.0},
	)
	workload := dlb.DriftingWorkload{Base: base, Drift: 1}
	cfg := dlb.Config{
		Runtime:    chameleon.Config{Workers: 4, LatencyMs: 0.3, PerTaskMs: 0.15},
		Iterations: 6,
	}
	b.Run("proactlb", func(b *testing.B) {
		var res dlb.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = dlb.Run(context.Background(), workload, balancer.ProactLB{}, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Speedup, "speedup")
		b.ReportMetric(float64(res.TotalMigrated), "migrated")
	})
	b.Run("worksteal", func(b *testing.B) {
		ws := dlb.WorkStealing{Workers: 4, StealLatencyMs: 0.3}
		var total float64
		var steals int
		for i := 0; i < b.N; i++ {
			total, steals = 0, 0
			for it := 0; it < cfg.Iterations; it++ {
				in, err := workload.Iteration(it)
				if err != nil {
					b.Fatal(err)
				}
				res, err := ws.Simulate(in)
				if err != nil {
					b.Fatal(err)
				}
				total += res.MakespanMs
				steals += res.Steals
			}
		}
		b.ReportMetric(total, "total_ms")
		b.ReportMetric(float64(steals), "steals")
	})
}

// BenchmarkVariability measures the run-to-run spread of the hybrid
// solver (the paper's nondeterminism note, Appendix C).
func BenchmarkVariability(b *testing.B) {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 6})
	cfg := benchConfig()
	var v experiments.Variability
	var err error
	for i := 0; i < b.N; i++ {
		v, err = experiments.MeasureVariability(context.Background(), in, qlrb.QCQM1, 12, 5, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v.ImbMedian, "rimb_median")
	b.ReportMetric(v.ImbMax-v.ImbMin, "rimb_spread")
}

// BenchmarkAblationFormulations (A6) contrasts the paper's count-encoded
// CQMs with the general per-task formulation on the same instance.
func BenchmarkAblationFormulations(b *testing.B) {
	in := lrp.MustInstance([]int{12, 12, 12, 12}, []float64{1, 1, 2, 6})
	cfg := benchConfig()
	var rows []experiments.FormulationComparison
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunFormulationComparison(context.Background(), in, 12, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Qubits), "qubits_qcqm1")
	b.ReportMetric(float64(rows[2].Qubits), "qubits_pertask")
	b.ReportMetric(rows[2].Imbalance, "rimb_pertask")
}

// BenchmarkAblationTuning runs the solver design-choice panel.
func BenchmarkAblationTuning(b *testing.B) {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 6})
	cfg := benchConfig()
	var points []experiments.TuningPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.RunSolverTuning(context.Background(), in, qlrb.QCQM2, 12, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Label == "default" {
			b.ReportMetric(p.Imbalance, "rimb_default")
		}
		if p.Label == "cold-start" {
			b.ReportMetric(p.Imbalance, "rimb_cold")
		}
	}
}

#!/bin/sh
# daemon_smoke.sh — black-box smoke test of the qulrbd serving daemon.
#
# Builds qulrbd, starts it on an ephemeral-ish port, submits a real LRP
# instance over HTTP, polls the job to completion, asserts the plan
# verified and /metrics is populated, then sends SIGTERM and requires a
# clean graceful drain (exit 0). Fails loudly at the first broken step.
#
# POSIX sh + curl only; no jq dependency (grep-based JSON probing).
set -eu

ADDR="${QULRBD_ADDR:-127.0.0.1:18321}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/qulrbd"
LOG="$(mktemp)"

fail() {
    echo "daemon-smoke: FAIL: $*" >&2
    echo "--- qulrbd log ---" >&2
    cat "$LOG" >&2 || true
    kill "$PID" 2>/dev/null || true
    exit 1
}

echo "daemon-smoke: building qulrbd"
go build -o "$BIN" ./cmd/qulrbd

"$BIN" -addr "$ADDR" -workers 2 -timeout 2s >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the daemon prints its address when ready).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "daemon did not come up within 5s"
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
grep -q "listening on" "$LOG" || fail "startup banner missing"
echo "daemon-smoke: up at $BASE"

# Submit a real instance: uniform task counts, imbalance in the weights.
RESP="$(curl -fsS -X POST "$BASE/solve" \
    -H 'Content-Type: application/json' \
    -d '{"tasks":[4,4,4],"weights":[8,2,2],"budget_ms":2000}')" \
    || fail "POST /solve rejected"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in response: $RESP"
echo "daemon-smoke: submitted $JOB"

# Poll to completion.
i=0
while :; do
    BODY="$(curl -fsS "$BASE/jobs/$JOB")" || fail "GET /jobs/$JOB"
    case "$BODY" in
    *'"status":"done"'*) break ;;
    *'"status":"failed"'* | *'"status":"rejected"'*) fail "job failed: $BODY" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "job did not finish within 10s: $BODY"
    sleep 0.1
done
printf '%s' "$BODY" | grep -q '"plan"' || fail "done job has no plan: $BODY"
printf '%s' "$BODY" | grep -q '"imbalance_after"' || fail "done job has no metrics: $BODY"
echo "daemon-smoke: job done"

# Overload admission must answer with 429, not hang or 500: exhaust the
# default token bucket (rate 10/s, burst 20) and expect a rejection.
CODE=200
i=0
while [ "$i" -lt 40 ] && [ "$CODE" != 429 ]; do
    CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/solve" \
        -d '{"tasks":[2,2],"budget_ms":100}')"
    i=$((i + 1))
done
[ "$CODE" = 429 ] || fail "no 429 under burst (last code $CODE)"
echo "daemon-smoke: overload answered 429"

# Metrics must be non-empty and carry the serving counters.
METRICS="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics"
printf '%s' "$METRICS" | grep -q 'serve.accepted' || fail "/metrics missing serve counters"
printf '%s' "$METRICS" | grep -q 'route.backend' || fail "/metrics missing route gauges"

# Graceful shutdown: SIGTERM → drain → exit 0.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
set +e
wait "$PID"
STATUS=$?
set -e
[ "$STATUS" = 0 ] || fail "daemon exit status $STATUS after SIGTERM"
grep -q "drained cleanly" "$LOG" || fail "drain banner missing"
trap - EXIT

# Crash-safe durability: run with -state-dir, finish a job, SIGKILL the
# daemon (no drain, no dying gasp), restart on the same directory. The
# finished job must still be queryable with its plan intact and carry
# the recovered flag — the journal, not the process, owns the record.
STATE="$(mktemp -d)"
echo "daemon-smoke: durability phase (state dir $STATE)"
"$BIN" -addr "$ADDR" -workers 2 -timeout 2s -state-dir "$STATE" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "durable daemon did not come up within 5s"
    kill -0 "$PID" 2>/dev/null || fail "durable daemon exited during startup"
    sleep 0.1
done

RESP="$(curl -fsS -X POST "$BASE/solve" \
    -H 'Content-Type: application/json' \
    -d '{"tasks":[4,4,4],"weights":[8,2,2],"budget_ms":2000}')" \
    || fail "POST /solve (durable) rejected"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in durable response: $RESP"
i=0
while :; do
    BODY="$(curl -fsS "$BASE/jobs/$JOB")" || fail "GET /jobs/$JOB (durable)"
    case "$BODY" in
    *'"status":"done"'*) break ;;
    *'"status":"failed"'* | *'"status":"rejected"'*) fail "durable job failed: $BODY" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "durable job did not finish within 10s: $BODY"
    sleep 0.1
done
echo "daemon-smoke: job $JOB done; kill -9"

kill -9 "$PID"
set +e
wait "$PID" 2>/dev/null
set -e

"$BIN" -addr "$ADDR" -workers 2 -timeout 2s -state-dir "$STATE" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "daemon did not restart on the state dir within 5s"
    kill -0 "$PID" 2>/dev/null || fail "daemon crashed replaying its own journal"
    sleep 0.1
done
grep -q "recovered" "$LOG" || fail "recovery banner missing after restart"

BODY="$(curl -fsS "$BASE/jobs/$JOB")" || fail "job $JOB lost across kill -9"
printf '%s' "$BODY" | grep -q '"status":"done"' || fail "recovered job not done: $BODY"
printf '%s' "$BODY" | grep -q '"plan"' || fail "recovered job has no plan: $BODY"
printf '%s' "$BODY" | grep -q '"recovered":true' || fail "recovered job not flagged: $BODY"
echo "daemon-smoke: job survived kill -9"

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "durable daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
set +e
wait "$PID"
STATUS=$?
set -e
[ "$STATUS" = 0 ] || fail "durable daemon exit status $STATUS after SIGTERM"
trap - EXIT

echo "daemon-smoke: PASS"

package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// buildImage frames records into a valid generation-gen segment image.
func buildImage(gen uint64, records [][]byte) []byte {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	for _, r := range records {
		buf = appendFrame(buf, r)
	}
	return buf
}

// splitRecords derives a deterministic record set from fuzz bytes: the
// first byte of each chunk is a length selector, the rest is payload.
func splitRecords(data []byte) [][]byte {
	var recs [][]byte
	for len(data) > 0 {
		n := int(data[0])%32 + 1
		if n > len(data) {
			n = len(data)
		}
		recs = append(recs, data[:n])
		data = data[n:]
		if len(recs) >= 64 {
			break
		}
	}
	return recs
}

// FuzzWALReplay drives the torn-tail rule: any single mutation
// (truncation and/or a byte XOR) of a valid log must recover a strict
// prefix of the original records — never panic, never resynchronize
// past damage, and never yield a record that differs from what was
// appended (a record surviving Replay has, by construction, passed its
// CRC). The raw fuzz bytes are also fed to Replay directly to shake
// the parser on arbitrary garbage.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("hello world, this is a record stream"), uint32(7), byte(0x40), uint16(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint32(0), byte(0), uint16(0))
	f.Add(bytes.Repeat([]byte{0xaa}, 300), uint32(120), byte(0xff), uint16(250))
	f.Fuzz(func(t *testing.T, data []byte, flipPos uint32, flipMask byte, cut uint16) {
		// Arbitrary bytes must never panic the parser.
		Replay(data, 1)

		records := splitRecords(data)
		img := buildImage(3, records)

		// Sanity: the unmutated image replays in full.
		got, clean := Replay(img, 3)
		if !clean || len(got) != len(records) {
			t.Fatalf("clean image replayed %d/%d records (clean=%v)", len(got), len(records), clean)
		}

		// Mutate: truncate to cut bytes (if shorter), then flip bits at
		// flipPos (if in range).
		mut := append([]byte(nil), img...)
		if int(cut) < len(mut) {
			mut = mut[:cut]
		}
		if len(mut) > 0 {
			mut[int(flipPos)%len(mut)] ^= flipMask
		}

		rec, _ := Replay(mut, 3)
		if len(rec) > len(records) {
			t.Fatalf("mutated image yielded %d records from %d", len(rec), len(records))
		}
		for i := range rec {
			if !bytes.Equal(rec[i], records[i]) {
				t.Fatalf("record %d mutated in place: %x != %x (prefix rule violated)", i, rec[i], records[i])
			}
		}
	})
}

package wal

import (
	"fmt"
	"testing"
)

// benchRecord is a realistic journal payload size: a serve job-accept
// record with a small instance is ~200 bytes of JSON.
var benchRecord = []byte(fmt.Sprintf(`{"op":"accept","id":"j00001234","tenant":"bench","req":{"tasks":[4,4,4,4,4,4,4,4],"weights":[8,2,2,2,2,2,2,2],"budget_ms":2000},"pad":%q}`, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))

// BenchmarkWALAppend measures the framed append path without fsync
// (SyncNone), the cost every journaled job transition pays. allocs/op
// is deterministic (0 once the frame scratch is warm) and gated in CI.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir(), Policy: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchRecord)) + frameHeaderSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(l.Stats().Appends)/float64(b.N), "records/op")
}

// BenchmarkWALReplay measures recovery speed over a 1024-record
// segment image held in memory (parse + CRC + copy per record).
// records/op is exact and machine-independent.
func BenchmarkWALReplay(b *testing.B) {
	const n = 1024
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("%s-%04d", benchRecord, i))
	}
	img := buildImage(1, records)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, clean := Replay(img, 1)
		if !clean || len(recs) != n {
			b.Fatalf("replay %d/%d clean=%v", len(recs), n, clean)
		}
	}
	b.ReportMetric(n, "records/op")
}

// Package wal is an append-only, CRC32C-framed write-ahead log: the
// durability layer under the serving tier's job journal, the plan
// cache's persistence hook, and the dlb driver's round journal. A crash
// loses at most the unsynced suffix of the log; it never yields a
// record that fails its checksum, and it never "fails open" past a
// damaged frame.
//
// On-disk format (all integers little-endian):
//
//	segment  = header frame*
//	header   = magic "QWAL" | uint32 version | uint64 generation
//	frame    = uint32 len | uint32 crc32c(len || payload) | payload
//
// Segments are generation-stamped: the live segment is the highest
// generation in the directory, and compaction writes generation g+1 as
// a temp file, fsyncs it, renames it into place, fsyncs the directory,
// and only then removes generation g — so a crash at any point leaves
// either the old or the new generation fully intact. Stale generations
// and orphaned temp files found at Open are removed.
//
// Torn-tail rule: replay accepts the longest clean prefix of frames and
// truncates at the first bad one (short header, short payload, absurd
// length, CRC mismatch, or a header whose generation does not match its
// file name). Anything after the first bad frame is discarded even if
// it looks intact — a mid-log flip means the disk lied, and a log that
// "resynchronizes" past damage can resurrect records the writer never
// acknowledged. Recovery rewrites the surviving prefix as a fresh
// generation so the on-disk state is clean again after Open.
//
// The file layer is pluggable (FS): production uses the real
// filesystem, tests wrap it with Faulty over a seeded
// faults.Injector — ShortWrite, SyncErr, ReadCorrupt and CrashPoint
// schedules make recovery property-testable deterministically, the same
// pattern the simulated cloud path uses for network faults.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/solve"
)

// Frame and segment geometry.
const (
	headerSize      = 16 // magic(4) version(4) generation(8)
	frameHeaderSize = 8  // len(4) crc(4)
	version         = 1

	// MaxRecord bounds one payload (64 MiB). Replay treats a larger
	// length field as a corrupt frame instead of allocating for it.
	MaxRecord = 1 << 26
)

var magic = [4]byte{'Q', 'W', 'A', 'L'}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed marks operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrTooLarge marks an Append whose payload exceeds MaxRecord.
	ErrTooLarge = errors.New("wal: record exceeds MaxRecord")
	// ErrWedged marks appends after a failed write: the segment tail is
	// in an unknown state, so the log refuses to stack frames on top of
	// a possible torn one. Restarting (re-Open) repairs the tail and
	// clears the condition; already-acknowledged records are unaffected.
	ErrWedged = errors.New("wal: wedged after failed append (reopen to repair)")
)

// SyncPolicy selects when Append data becomes durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a crash loses nothing that
	// was acknowledged. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed on the
	// injected clock since the last sync: a crash loses at most the
	// last interval's appends.
	SyncInterval
	// SyncNone never fsyncs on append (Close and Compact still do): the
	// OS decides durability. For tests and throwaway state.
	SyncNone
)

// ParseSyncPolicy maps the qulrbd -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (required; created if missing).
	Dir string
	// Name tags the log's obs metrics (wal.<name>.*) so several logs
	// can share one registry; default "log".
	Name string
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period on the injected clock
	// (default 100ms).
	Interval time.Duration
	// CompactBytes is the live-segment size past which CompactDue
	// reports true (default 4 MiB).
	CompactBytes int64
	// CompactEvery rate-limits compactions on the injected clock:
	// CompactDue stays false until this much clock time has passed
	// since the last compaction (0 = no time gate).
	CompactEvery time.Duration
	// FS is the file layer (default the real filesystem). Tests inject
	// Faulty(OS(), injector).
	FS FS
	// Clock is the time source for sync batching and compaction pacing
	// (default solve.Real()).
	Clock solve.Clock
	// Obs receives wal.<name>.* counters and gauges (nil is fine).
	Obs *obs.Registry
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: Options.Dir is required")
	}
	if o.Name == "" {
		o.Name = "log"
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 4 << 20
	}
	if o.FS == nil {
		o.FS = OS()
	}
	if o.Clock == nil {
		o.Clock = solve.Real()
	}
	return o, nil
}

// Stats is a point-in-time snapshot of one log's accounting.
type Stats struct {
	Generation  uint64 // live segment generation
	SegmentSize int64  // live segment bytes (header included)
	Appends     int64  // accepted appends since Open
	Replayed    int    // records recovered by Open
	Truncated   bool   // Open found and cut a bad frame / torn tail
	Compactions int64  // compactions since Open
}

// Log is a single-writer append log. All methods are safe for
// concurrent use; appends are serialized internally.
type Log struct {
	opt Options

	mu          sync.Mutex
	f           File
	gen         uint64
	size        int64
	lastSync    time.Time
	lastCompact time.Time
	wedged      error // non-nil after a failed append write
	closed      bool
	buf         []byte // frame scratch, reused across appends
	stats       Stats

	cAppend, cAppendErr, cSync, cSyncErr  *obs.Counter
	cReplayed, cCorrupt, cTrunc, cCompact *obs.Counter
	gGen, gBytes                          *obs.Gauge
}

// Open replays the log directory and returns the live log plus every
// recovered record, in append order. A missing directory is created
// (empty log); a damaged tail or mid-log frame is truncated per the
// torn-tail rule, and the surviving prefix is rewritten as a fresh
// generation so the segment on disk is clean. The returned payload
// slices are the caller's to keep.
func Open(opt Options) (*Log, [][]byte, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	pre := "wal." + opt.Name + "."
	r := opt.Obs
	l := &Log{
		opt:        opt,
		cAppend:    r.Counter(pre + "appends"),
		cAppendErr: r.Counter(pre + "append_errors"),
		cSync:      r.Counter(pre + "syncs"),
		cSyncErr:   r.Counter(pre + "sync_errors"),
		cReplayed:  r.Counter(pre + "replayed"),
		cCorrupt:   r.Counter(pre + "corrupt_frames"),
		cTrunc:     r.Counter(pre + "truncations"),
		cCompact:   r.Counter(pre + "compactions"),
		gGen:       r.Gauge(pre + "generation"),
		gBytes:     r.Gauge(pre + "segment_bytes"),
	}
	if err := opt.FS.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := opt.FS.ReadDir(opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	live, stale := pickSegments(names)
	// Compaction leftovers and superseded generations are garbage by
	// construction (the rename committed, or never happened); removing
	// them is best-effort.
	for _, n := range stale {
		_ = opt.FS.Remove(filepath.Join(opt.Dir, n))
	}

	now := opt.Clock.Now()
	l.lastSync, l.lastCompact = now, now
	if live == "" {
		if err := l.startSegment(1, nil); err != nil {
			return nil, nil, err
		}
		return l, nil, nil
	}

	gen, ok := segmentGen(live)
	if !ok { // unreachable: pickSegments only returns parseable names
		return nil, nil, fmt.Errorf("wal: bad segment name %q", live)
	}
	data, err := readAll(opt.FS, filepath.Join(opt.Dir, live))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read segment: %w", err)
	}
	records, clean := Replay(data, gen)
	l.stats.Replayed = len(records)
	l.cReplayed.Add(int64(len(records)))
	if clean {
		// Intact segment: keep appending to it.
		l.gen = gen
		l.size = int64(len(data))
		f, err := opt.FS.OpenFile(filepath.Join(opt.Dir, live), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.f = f
		l.gGen.Set(float64(l.gen))
		l.gBytes.Set(float64(l.size))
		return l, records, nil
	}
	// Torn tail or mid-log damage: never fail open, never append on top
	// of a bad frame. Rewrite the clean prefix as the next generation.
	l.stats.Truncated = true
	l.cCorrupt.Inc()
	l.cTrunc.Inc()
	if err := l.startSegment(gen+1, records); err != nil {
		return nil, nil, fmt.Errorf("wal: recovery rewrite: %w", err)
	}
	return l, records, nil
}

// segPrefix and segSuffix frame the segment file naming scheme
// wal-<generation, 16 hex digits>.log.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
	tmpSuffix = ".tmp"
)

func segmentName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, gen, segSuffix)
}

// segmentGen parses a segment file name back into its generation.
func segmentGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// pickSegments splits a directory listing into the live segment (the
// highest parseable generation, "" if none) and everything else the log
// owns and should clear out (older generations, temp files).
func pickSegments(names []string) (live string, stale []string) {
	var bestGen uint64
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			stale = append(stale, n)
			continue
		}
		gen, ok := segmentGen(n)
		if !ok {
			continue // not ours; leave it alone
		}
		if live == "" || gen > bestGen {
			if live != "" {
				stale = append(stale, live)
			}
			live, bestGen = n, gen
		} else {
			stale = append(stale, n)
		}
	}
	return live, stale
}

func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Replay parses one segment image and returns the longest clean prefix
// of record payloads (copies — they do not alias data). clean reports
// that every byte of data was accounted for by valid frames under the
// expected generation; !clean means replay stopped at a bad header,
// bad frame or torn tail, per the torn-tail rule. It is exported for
// the fuzz harness; Open applies it to the live segment.
func Replay(data []byte, wantGen uint64) (records [][]byte, clean bool) {
	if len(data) < headerSize {
		return nil, false
	}
	if [4]byte(data[:4]) != magic ||
		binary.LittleEndian.Uint32(data[4:8]) != version ||
		binary.LittleEndian.Uint64(data[8:16]) != wantGen {
		return nil, false
	}
	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return records, false // torn frame header
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > MaxRecord || int(n) > len(rest)-frameHeaderSize {
			return records, false // absurd length or torn payload
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		sum := crc32.Update(crc32.Checksum(rest[:4], castagnoli), castagnoli, payload)
		if sum != binary.LittleEndian.Uint32(rest[4:8]) {
			return records, false // damaged frame
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderSize + int(n)
	}
	return records, true
}

// appendFrame appends one framed payload to buf and returns it. The
// header is built in place inside buf so a warm append allocates
// nothing (a stack header array would escape through crc32.Checksum).
func appendFrame(buf, payload []byte) []byte {
	off := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(payload)))
	sum := crc32.Update(crc32.Checksum(buf[off:off+4], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[off+4:off+8], sum)
	return append(buf, payload...)
}

// startSegment writes a fresh generation seeded with records, commits
// it via rename + directory sync, removes the previous segment and
// makes it the live append target. Caller holds l.mu (or owns l
// exclusively, as Open does).
func (l *Log) startSegment(gen uint64, records [][]byte) error {
	dir := l.opt.Dir
	tmp := filepath.Join(dir, segmentName(gen)+tmpSuffix)
	final := filepath.Join(dir, segmentName(gen))

	buf := make([]byte, 0, headerSize)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	for _, rec := range records {
		if len(rec) > MaxRecord {
			return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(rec))
		}
		buf = appendFrame(buf, rec)
	}

	f, err := l.opt.FS.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		_ = l.opt.FS.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = l.opt.FS.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = l.opt.FS.Remove(tmp)
		return err
	}
	// The commit point: after this rename the new generation is the
	// highest on disk and wins every future Open.
	if err := l.opt.FS.Rename(tmp, final); err != nil {
		_ = l.opt.FS.Remove(tmp)
		return err
	}
	if err := l.opt.FS.SyncDir(dir); err != nil {
		return err
	}
	if l.f != nil {
		_ = l.f.Close()
	}
	if l.gen != 0 && l.gen != gen {
		_ = l.opt.FS.Remove(filepath.Join(dir, segmentName(l.gen)))
	}
	af, err := l.opt.FS.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen new segment: %w", err)
	}
	l.f = af
	l.gen = gen
	l.size = int64(len(buf))
	l.wedged = nil
	l.lastCompact = l.opt.Clock.Now()
	l.gGen.Set(float64(gen))
	l.gBytes.Set(float64(l.size))
	return nil
}

// Append journals one record. The payload is framed and written in a
// single write; durability follows the sync policy. The caller may
// reuse payload after Append returns. An error means the record is not
// guaranteed durable; after a failed write the log wedges (ErrWedged)
// until reopened, so a torn tail is never built upon.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		l.cAppendErr.Inc()
		return fmt.Errorf("%w: %w", ErrWedged, l.wedged)
	}
	l.buf = appendFrame(l.buf[:0], payload)
	if _, err := l.f.Write(l.buf); err != nil {
		// The tail may hold a torn frame now; refuse to append past it.
		l.wedged = err
		l.cAppendErr.Inc()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(l.buf))
	l.stats.Appends++
	l.cAppend.Inc()
	l.gBytes.Set(float64(l.size))
	switch l.opt.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if now := l.opt.Clock.Now(); now.Sub(l.lastSync) >= l.opt.Interval {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync forces an fsync of the live segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		l.cSyncErr.Inc()
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = l.opt.Clock.Now()
	l.cSync.Inc()
	return nil
}

// CompactDue reports whether the compaction policy (segment size plus
// clock spacing) says the consumer should snapshot its state and call
// Compact. It never mutates anything, so callers may poll it after
// every append.
func (l *Log) CompactDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.size < l.opt.CompactBytes {
		return false
	}
	if l.opt.CompactEvery > 0 &&
		l.opt.Clock.Now().Sub(l.lastCompact) < l.opt.CompactEvery {
		return false
	}
	return true
}

// Compact replaces the log's contents with the given snapshot records:
// they are written as generation g+1, committed by rename, and the old
// segment is removed. On error the old generation stays live and
// intact. Compact also clears a wedged tail (the snapshot supersedes
// it).
func (l *Log) Compact(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.startSegment(l.gen+1, records); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	l.stats.Compactions++
	l.cCompact.Inc()
	return nil
}

// Stats snapshots the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Generation = l.gen
	s.SegmentSize = l.size
	return s
}

// Dir returns the segment directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Close syncs (best-effort when wedged) and closes the live segment.
// Further operations return ErrClosed. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.wedged == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/faults"
)

// FS abstracts the file operations the log performs, so the same code
// runs over the real filesystem in production and over a seeded
// fault-injecting wrapper in tests. Implementations must be safe for
// the log's own serialized use; they are not required to be safe for
// arbitrary concurrent callers.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the compaction
	// commit point).
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the log writes through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Faulty wraps inner so every data operation — file reads, writes and
// syncs, plus the metadata operations a crash can interrupt — consults
// the seeded hook first, exactly like the simulated cloud consults its
// injector once per solve attempt:
//
//   - a ShortWrite fault persists only a deterministic prefix of a
//     Write before surfacing faults.ErrShortWrite — the torn tail;
//   - a SyncErr fault fails the Sync without flushing;
//   - a ReadCorrupt fault flips bits in the bytes a Read returns,
//     silently — only the frame CRCs stand between it and the caller;
//   - a CrashPoint fault (or an injector put into the crashed state via
//     Crash) fails this and every later operation with
//     faults.ErrCrashed until the injector is Reset, modelling the
//     machine going down.
//
// A fault kind that does not apply to the operation that drew it (e.g.
// SyncErr on a Write) injects nothing; the schedule slot is simply
// consumed. A nil hook is the reliable disk.
func Faulty(inner FS, hook faults.Hook) FS {
	if hook == nil {
		return inner
	}
	return &faultFS{inner: inner, hook: hook}
}

type faultFS struct {
	inner FS
	hook  faults.Hook
}

// meta consults the hook for a metadata operation: only CrashPoint
// applies.
func (f *faultFS) meta() error {
	if ft := f.hook.Next(); ft.Kind == faults.CrashPoint {
		return faults.ErrCrashed
	}
	return nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.meta(); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", name, err)
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, hook: f.hook}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.meta(); err != nil {
		return fmt.Errorf("wal: rename %s: %w", oldpath, err)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.meta(); err != nil {
		return fmt.Errorf("wal: remove %s: %w", name, err)
	}
	return f.inner.Remove(name)
}

func (f *faultFS) ReadDir(dir string) ([]string, error) {
	if err := f.meta(); err != nil {
		return nil, fmt.Errorf("wal: readdir %s: %w", dir, err)
	}
	return f.inner.ReadDir(dir)
}

func (f *faultFS) MkdirAll(dir string, perm os.FileMode) error {
	if err := f.meta(); err != nil {
		return fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *faultFS) SyncDir(dir string) error {
	if ft := f.hook.Next(); ft.Kind == faults.CrashPoint {
		return fmt.Errorf("wal: syncdir %s: %w", dir, faults.ErrCrashed)
	} else if ft.Kind == faults.SyncErr {
		return fmt.Errorf("wal: syncdir %s: %w", dir, faults.ErrSync)
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	inner File
	hook  faults.Hook
}

func (f *faultFile) Read(p []byte) (int, error) {
	ft := f.hook.Next()
	if ft.Kind == faults.CrashPoint {
		return 0, faults.ErrCrashed
	}
	n, err := f.inner.Read(p)
	// A latent sector error damages what was read, in place, silently.
	ft.CorruptBytes(p[:n])
	return n, err
}

func (f *faultFile) Write(p []byte) (int, error) {
	ft := f.hook.Next()
	switch ft.Kind {
	case faults.CrashPoint:
		return 0, faults.ErrCrashed
	case faults.ShortWrite:
		// The torn tail: a strict prefix reaches the disk, then the
		// error surfaces (power loss mid-write).
		n := ft.ShortLen(len(p))
		if n > 0 {
			if m, err := f.inner.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, faults.ErrShortWrite
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	ft := f.hook.Next()
	switch ft.Kind {
	case faults.CrashPoint:
		return faults.ErrCrashed
	case faults.SyncErr:
		return faults.ErrSync
	}
	return f.inner.Sync()
}

// Close never consults the hook: releasing a descriptor works even on a
// dying machine, and recovery paths must always be able to clean up.
func (f *faultFile) Close() error { return f.inner.Close() }

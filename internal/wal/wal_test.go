package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/solve"
)

func fakeClock() *solve.Fake {
	return solve.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

func mustOpen(t *testing.T, opt Options) (*Log, [][]byte) {
	t.Helper()
	l, recs, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, recs
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func asStrings(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, Options{Dir: dir})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []string{"alpha", "", "gamma with spaces", string(bytes.Repeat([]byte{0xff}, 1024))}
	appendAll(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, recs2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	got := asStrings(recs2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l2.Stats().Truncated {
		t.Fatal("clean log reported a truncation")
	}
	// Appends continue on the same generation after a clean reopen.
	appendAll(t, l2, "delta")
	l2.Close()
	_, recs3 := mustOpen(t, Options{Dir: dir})
	if len(recs3) != len(want)+1 || string(recs3[len(want)]) != "delta" {
		t.Fatalf("post-reopen append lost: %v", asStrings(recs3))
	}
}

// liveSegment returns the path of the highest-generation segment.
func liveSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := OS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := pickSegments(names)
	if live == "" {
		t.Fatal("no live segment")
	}
	return filepath.Join(dir, live)
}

func TestTornTailTruncatesToPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, l, "one", "two", "three")
	l.Close()

	seg := liveSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: cut 2 bytes off the tail.
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if got := asStrings(recs); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("torn tail replay = %v, want the two clean records", got)
	}
	if !l2.Stats().Truncated {
		t.Fatal("truncation not reported")
	}
	// Recovery rewrote a clean higher generation; the next open is clean.
	appendAll(t, l2, "four")
	l2.Close()
	l3, recs3 := mustOpen(t, Options{Dir: dir})
	defer l3.Close()
	if got := asStrings(recs3); len(got) != 3 || got[2] != "four" {
		t.Fatalf("post-recovery state = %v", got)
	}
	if l3.Stats().Truncated {
		t.Fatal("recovery did not leave a clean segment")
	}
}

func TestMidLogFlipNeverFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, l, "aaaa", "bbbb", "cccc", "dddd")
	l.Close()

	seg := liveSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload: replay must stop
	// there and keep only the first record, even though records three
	// and four are intact bytes further on (no resynchronization).
	off := headerSize + frameHeaderSize + 4 + frameHeaderSize + 1
	data[off] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if got := asStrings(recs); len(got) != 1 || got[0] != "aaaa" {
		t.Fatalf("mid-log flip replay = %v, want just the first record", got)
	}
	if !l2.Stats().Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestHeaderDamageMeansEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, l, "payload")
	l.Close()

	seg := liveSegment(t, dir)
	data, _ := os.ReadFile(seg)
	data[0] ^= 0xff // break the magic
	os.WriteFile(seg, data, 0o644)

	l2, recs := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("damaged header replayed %v", asStrings(recs))
	}
	if !l2.Stats().Truncated {
		t.Fatal("header damage must count as truncation")
	}
}

func TestCompactionGenerationsAndStaleCleanup(t *testing.T) {
	dir := t.TempDir()
	clk := fakeClock()
	l, _ := mustOpen(t, Options{Dir: dir, Clock: clk})
	appendAll(t, l, "old-1", "old-2", "old-3")
	if err := l.Compact([][]byte{[]byte("snap-1"), []byte("snap-2")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if g := l.Stats().Generation; g != 2 {
		t.Fatalf("generation after compact = %d, want 2", g)
	}
	appendAll(t, l, "new-1")
	l.Close()

	// Only one segment file remains.
	names, _ := OS().ReadDir(dir)
	if len(names) != 1 {
		t.Fatalf("directory holds %v, want exactly the live segment", names)
	}

	l2, recs := mustOpen(t, Options{Dir: dir, Clock: clk})
	defer l2.Close()
	want := []string{"snap-1", "snap-2", "new-1"}
	got := asStrings(recs)
	if len(got) != len(want) {
		t.Fatalf("replay after compact = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay after compact = %v, want %v", got, want)
		}
	}

	// A stale lower generation and an orphan tmp file left by a crash
	// between rename and remove are cleared by Open.
	stale := filepath.Join(dir, segmentName(1))
	os.WriteFile(stale, []byte("garbage"), 0o644)
	os.WriteFile(filepath.Join(dir, segmentName(9)+tmpSuffix), []byte("tmp"), 0o644)
	l2.Close()
	l3, recs3 := mustOpen(t, Options{Dir: dir, Clock: clk})
	defer l3.Close()
	if len(recs3) != len(want) {
		t.Fatalf("stale cleanup replay = %v", asStrings(recs3))
	}
	names, _ = OS().ReadDir(dir)
	if len(names) != 1 {
		t.Fatalf("stale files survived Open: %v", names)
	}
}

// replayCompactEquivalence is the compaction property the dlb/serve
// consumers rely on: compacting a log to a snapshot that equals its
// replayed records changes nothing about what a future Open sees.
func TestReplayCompactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		clk := fakeClock()
		l, _ := mustOpen(t, Options{Dir: dir, Clock: clk})
		n := 1 + rng.Intn(30)
		var want []string
		for i := 0; i < n; i++ {
			rec := make([]byte, rng.Intn(200))
			rng.Read(rec)
			want = append(want, string(rec))
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		// Arm A: plain reopen. Arm B: reopen, compact to the replayed
		// records, reopen again. Both must replay identically.
		a, recsA := mustOpen(t, Options{Dir: dir, Clock: clk})
		snapshot := make([][]byte, len(recsA))
		for i, r := range recsA {
			snapshot[i] = append([]byte(nil), r...)
		}
		if err := a.Compact(snapshot); err != nil {
			t.Fatal(err)
		}
		a.Close()
		b, recsB := mustOpen(t, Options{Dir: dir, Clock: clk})
		b.Close()

		gotA, gotB := asStrings(recsA), asStrings(recsB)
		if len(gotA) != len(want) || len(gotB) != len(want) {
			t.Fatalf("trial %d: lens %d/%d, want %d", trial, len(gotA), len(gotB), len(want))
		}
		for i := range want {
			if gotA[i] != want[i] || gotB[i] != want[i] {
				t.Fatalf("trial %d record %d: replay(compact(log)) != replay(log)", trial, i)
			}
		}
	}
}

func TestSyncIntervalOnFakeClock(t *testing.T) {
	dir := t.TempDir()
	clk := fakeClock()
	reg := obs.NewRegistry()
	l, _ := mustOpen(t, Options{
		Dir: dir, Policy: SyncInterval, Interval: time.Second, Clock: clk, Obs: reg, Name: "t",
	})
	defer l.Close()
	syncs := func() int64 { return reg.Counter("wal.t.syncs").Value() }

	appendAll(t, l, "a", "b", "c")
	if got := syncs(); got != 0 {
		t.Fatalf("%d syncs before the interval elapsed", got)
	}
	clk.Advance(time.Second)
	appendAll(t, l, "d")
	if got := syncs(); got != 1 {
		t.Fatalf("syncs after interval = %d, want 1", got)
	}
	appendAll(t, l, "e")
	if got := syncs(); got != 1 {
		t.Fatalf("interval timer did not reset: %d syncs", got)
	}
}

func TestCompactDuePolicy(t *testing.T) {
	dir := t.TempDir()
	clk := fakeClock()
	l, _ := mustOpen(t, Options{
		Dir: dir, Clock: clk, CompactBytes: 64, CompactEvery: time.Minute, Policy: SyncNone,
	})
	defer l.Close()
	if l.CompactDue() {
		t.Fatal("empty log reports CompactDue")
	}
	appendAll(t, l, string(bytes.Repeat([]byte("x"), 128)))
	if l.CompactDue() {
		t.Fatal("CompactDue ignored the clock spacing gate")
	}
	clk.Advance(time.Minute)
	if !l.CompactDue() {
		t.Fatal("CompactDue false with size and clock both past threshold")
	}
	if err := l.Compact([][]byte{[]byte("s")}); err != nil {
		t.Fatal(err)
	}
	if l.CompactDue() {
		t.Fatal("CompactDue true immediately after compaction")
	}
}

func TestAppendWedgesAfterWriteFault(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector(faults.Config{Seed: 9}) // clean schedule; manual crash
	l, _ := mustOpen(t, Options{Dir: dir, FS: Faulty(OS(), inj), Policy: SyncNone})
	appendAll(t, l, "good-1", "good-2")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	inj.Crash()
	if err := l.Append([]byte("lost")); !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("append on crashed disk = %v, want ErrCrashed", err)
	}
	if err := l.Append([]byte("also-lost")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failed write = %v, want ErrWedged", err)
	}
	l.Close()

	// Restart: the synced records survive.
	inj.Reset()
	l2, recs := mustOpen(t, Options{Dir: dir, FS: Faulty(OS(), inj)})
	defer l2.Close()
	if got := asStrings(recs); len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
		t.Fatalf("post-crash replay = %v", got)
	}
}

// TestShortWriteTornTailRecovery is the property the issue names: a
// seeded short-write (torn tail) schedule must recover a prefix of the
// acknowledged records, never panic, and never yield a record that
// fails its CRC (Replay re-checks by construction).
func TestShortWriteTornTailRecovery(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		dir := t.TempDir()
		inj := faults.NewInjector(faults.Config{Seed: seed, ShortWrite: 0.3})
		l, _, err := Open(Options{Dir: dir, FS: Faulty(OS(), inj), Policy: SyncNone})
		if err != nil {
			// The injector can tear the segment-creation write itself;
			// that is a failed bootstrap, not a recovery case.
			continue
		}
		var acked []string
		for i := 0; i < 40; i++ {
			rec := fmt.Sprintf("seed%02d-rec%02d", seed, i)
			if err := l.Append([]byte(rec)); err != nil {
				break // torn tail: the log wedges; stop like a crashed writer
			}
			acked = append(acked, rec)
		}
		l.Close()

		l2, recs := mustOpen(t, Options{Dir: dir}) // clean disk after restart
		got := asStrings(recs)
		if len(got) > len(acked) {
			t.Fatalf("seed %d: recovered %d records, only %d were acknowledged", seed, len(got), len(acked))
		}
		for i := range got {
			if got[i] != acked[i] {
				t.Fatalf("seed %d: record %d = %q, want prefix of acknowledged %q", seed, i, got[i], acked[i])
			}
		}
		l2.Close()
	}
}

// TestReadCorruptSchedulePrefixOnly: seeded read corruption during
// replay must degrade to a (possibly empty) prefix of the true records
// — never a record that differs from what was written.
func TestReadCorruptSchedulePrefixOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	var want []string
	for i := 0; i < 25; i++ {
		rec := fmt.Sprintf("record-%02d-%s", i, string(bytes.Repeat([]byte{byte(i)}, 16)))
		want = append(want, rec)
		appendAll(t, l, rec)
	}
	l.Close()

	for seed := int64(1); seed <= 30; seed++ {
		inj := faults.NewInjector(faults.Config{Seed: seed, ReadCorrupt: 0.5})
		l2, recs, err := Open(Options{Dir: dir, FS: Faulty(OS(), inj)})
		if err != nil {
			continue // the read itself can fail; nothing surfaced
		}
		got := asStrings(recs)
		if len(got) > len(want) {
			t.Fatalf("seed %d: %d records from a %d-record log", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: corrupt record %d surfaced: %q != %q", seed, i, got[i], want[i])
			}
		}
		l2.Close()
		// The recovery rewrite may have persisted only the prefix; restore
		// the full log for the next seed.
		if len(got) != len(want) {
			l3, _ := mustOpen(t, Options{Dir: dir})
			for _, rec := range want[len(got):] {
				appendAll(t, l3, rec)
			}
			l3.Close()
			// Paranoia: confirm the restore round-tripped.
			l4, recs4 := mustOpen(t, Options{Dir: dir})
			if len(recs4) != len(want) {
				t.Fatalf("seed %d: restore failed: %d/%d", seed, len(recs4), len(want))
			}
			l4.Close()
		}
	}
}

// scriptHook plays a fixed fault script, then runs clean — for pinning
// a fault to one exact operation.
type scriptHook struct {
	script []faults.Kind
	seq    int
}

func (h *scriptHook) Next() faults.Fault {
	f := faults.Fault{Seq: h.seq}
	if h.seq < len(h.script) {
		f.Kind = h.script[h.seq]
	}
	h.seq++
	return f
}

func TestSyncErrSurfacesButLogContinues(t *testing.T) {
	dir := t.TempDir()
	hook := &scriptHook{}
	reg := obs.NewRegistry()
	l, _, err := Open(Options{Dir: dir, FS: Faulty(OS(), hook), Policy: SyncNone, Obs: reg, Name: "t"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	appendAll(t, l, "rec")
	// Pin SyncErr to the very next operation (the explicit Sync below).
	hook.script = append(make([]faults.Kind, hook.seq), faults.SyncErr)
	if err := l.Sync(); !errors.Is(err, faults.ErrSync) {
		t.Fatalf("Sync = %v, want ErrSync", err)
	}
	if got := reg.Counter("wal.t.sync_errors").Value(); got != 1 {
		t.Fatalf("sync_errors = %d, want 1", got)
	}
	// The data itself is fine; a later append and sync still work.
	appendAll(t, l, "rec2")
	if err := l.Sync(); err != nil {
		t.Fatalf("clean Sync after fault = %v", err)
	}
}

func TestTooLargeAndClosed(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	if err := l.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v, want ErrTooLarge", err)
	}
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Interval": SyncInterval, " none ": SyncNone,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() == "unknown" {
			t.Fatalf("%v.String() unknown", got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir accepted")
	}
}

package wal

import "testing"

// TestPerfGateAppendZeroAlloc pins the journaled hot path: once the
// frame scratch is warm, Append allocates nothing — a job transition
// costs one buffer build and one write, not garbage. Run by make
// perf-gate; machine-independent, so it cannot flake on runner noise.
func TestPerfGateAppendZeroAlloc(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := benchRecord
	// Warm the frame scratch.
	for i := 0; i < 4; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Append allocs/op = %v, want 0", avg)
	}
}

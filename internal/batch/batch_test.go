package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/sa"
	"repro/internal/solve"
)

// gateClock holds every flush timer until the test releases the gate —
// deterministic control over the MaxWait trigger without real time.
type gateClock struct{ release chan struct{} }

func newGateClock() *gateClock { return &gateClock{release: make(chan struct{})} }

func (g *gateClock) Now() time.Time                { return time.Unix(0, 0) }
func (g *gateClock) Since(time.Time) time.Duration { return 0 }
func (g *gateClock) Sleep(ctx context.Context, _ time.Duration) error {
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pickOne builds a tiny model with a unique optimum: exactly one of n
// variables is set (constraint), and variable `best` has the lowest
// cost, so a correct solve returns the one-hot vector at `best`. The
// per-caller cost pattern makes cross-block mix-ups detectable.
func pickOne(n, best int) *cqm.Model {
	m := cqm.New()
	var sum cqm.LinExpr
	for v := 0; v < n; v++ {
		id := m.AddBinary(fmt.Sprintf("x%d", v))
		cost := 10.0 + float64(v)
		if v == best {
			cost = 1
		}
		m.AddObjectiveLinear(id, cost)
		sum.Add(id, 1)
	}
	m.AddConstraint("one", sum, cqm.Eq, 1)
	return m
}

func newTestClient(t *testing.T) *hybrid.Client {
	t.Helper()
	c := hybrid.NewClient(hybrid.Options{Reads: 4, Sweeps: 200, Seed: 7, Presolve: true})
	t.Cleanup(c.Close)
	return c
}

// TestSizeFlushCoalesces: MaxBatch concurrent requests become exactly
// one cloud submission, and every caller gets its own block's optimum
// back (objective and sample recomputed against its own model).
func TestSizeFlushCoalesces(t *testing.T) {
	const n = 4
	client := newTestClient(t)
	reg := obs.NewRegistry()
	co := New(Config{Client: client, MaxBatch: n, MaxWait: time.Hour, Clock: newGateClock(), Obs: reg})
	defer co.Close()

	var wg sync.WaitGroup
	results := make([]*solve.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = co.Solve(context.Background(), pickOne(3+i, i%3))
		}(i)
	}
	wg.Wait()

	if got := client.Jobs(); got != 1 {
		t.Fatalf("client saw %d submissions, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		res := results[i]
		if res == nil || len(res.Sample) != 3+i {
			t.Fatalf("caller %d: wrong sample size %d, want %d", i, len(res.Sample), 3+i)
		}
		if !res.Feasible {
			t.Fatalf("caller %d: infeasible batched result", i)
		}
		for v, set := range res.Sample {
			if want := v == i%3; set != want {
				t.Fatalf("caller %d: sample[%d]=%v, want %v (objective %g)", i, v, set, want, res.Objective)
			}
		}
		if res.Objective != 1 {
			t.Fatalf("caller %d: objective %g, want 1", i, res.Objective)
		}
	}
	if v := reg.Counter("batch.submissions").Value(); v != 1 {
		t.Fatalf("batch.submissions = %d, want 1", v)
	}
	if v := reg.Counter("batch.flush_size").Value(); v != 1 {
		t.Fatalf("batch.flush_size = %d, want 1", v)
	}
	if v := reg.Counter("batch.requests").Value(); v != int64(n) {
		t.Fatalf("batch.requests = %d, want %d", v, n)
	}
}

// TestTimerFlush: a lone request is flushed by the MaxWait timer, not
// stranded waiting for a full batch.
func TestTimerFlush(t *testing.T) {
	client := newTestClient(t)
	reg := obs.NewRegistry()
	gate := newGateClock()
	co := New(Config{Client: client, MaxBatch: 64, MaxWait: time.Hour, Clock: gate, Obs: reg})
	defer co.Close()

	done := make(chan struct{})
	var res *solve.Result
	var err error
	go func() {
		defer close(done)
		res, err = co.Solve(context.Background(), pickOne(4, 2))
	}()
	close(gate.release) // fire the flush timer
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 1 {
		t.Fatalf("timer-flushed solve: feasible=%v objective=%g", res.Feasible, res.Objective)
	}
	if v := reg.Counter("batch.flush_timeout").Value(); v != 1 {
		t.Fatalf("batch.flush_timeout = %d, want 1", v)
	}
	if got := client.Jobs(); got != 1 {
		t.Fatalf("client saw %d submissions, want 1", got)
	}
}

// TestFakeClockFlushesImmediately: under solve.Fake, the flush timer's
// Sleep advances fake time instead of blocking, so a generation drains
// without any real waiting — the documented fake-clock semantics.
func TestFakeClockFlushesImmediately(t *testing.T) {
	client := newTestClient(t)
	co := New(Config{Client: client, MaxBatch: 64, MaxWait: time.Hour, Clock: solve.NewFake(time.Unix(0, 0))})
	defer co.Close()
	res, err := co.Solve(context.Background(), pickOne(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
}

// TestWaiterCancellation: one caller abandoning its context neither
// blocks nor poisons the rest of the generation.
func TestWaiterCancellation(t *testing.T) {
	client := newTestClient(t)
	gate := newGateClock()
	co := New(Config{Client: client, MaxBatch: 64, MaxWait: time.Hour, Clock: gate})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := co.Solve(ctx, pickOne(3, 0))
		abandoned <- err
	}()
	// Make sure the doomed waiter joined a generation, then abandon it;
	// the emptied generation is retired, so the survivor starts fresh.
	waitPending(t, co, 1)
	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter got %v, want context.Canceled", err)
	}

	survived := make(chan struct{})
	var res *solve.Result
	var err error
	go func() {
		defer close(survived)
		res, err = co.Solve(context.Background(), pickOne(4, 2))
	}()
	waitPending(t, co, 1)
	close(gate.release)
	<-survived
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 1 {
		t.Fatalf("survivor: feasible=%v objective=%g", res.Feasible, res.Objective)
	}
}

// TestFullyAbandonedGenerationSubmitsNothing: when every waiter leaves
// before the flush, no cloud job is spent on the empty generation.
func TestFullyAbandonedGenerationSubmitsNothing(t *testing.T) {
	client := newTestClient(t)
	reg := obs.NewRegistry()
	co := New(Config{Client: client, MaxBatch: 64, MaxWait: time.Hour, Clock: newGateClock(), Obs: reg})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := co.Solve(ctx, pickOne(3, 0))
		errc <- err
	}()
	waitPending(t, co, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The abandonment cancels the flight context, which wakes the
	// timer; give it a bounded moment to observe and account for it.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("batch.abandoned").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for batch.abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	if got := client.Jobs(); got != 0 {
		t.Fatalf("client saw %d submissions for an abandoned batch, want 0", got)
	}
}

// waitPending spins until the coalescer's pending generation holds n
// waiters — synchronization on the batcher's own state, not real time.
func waitPending(t *testing.T, co *Coalescer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		co.mu.Lock()
		got := 0
		if co.pending != nil {
			got = len(co.pending.waiters)
		}
		co.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending waiters (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClosedClientSurfacesSentinel is the ISSUE's satellite assertion:
// a flush against a closed client, and a Solve against a closed
// coalescer, both fail with an error wrapping hybrid.ErrClientClosed.
func TestClosedClientSurfacesSentinel(t *testing.T) {
	client := hybrid.NewClient(hybrid.Options{Reads: 1, Sweeps: 10})
	client.Close()
	co := New(Config{Client: client, MaxBatch: 1, MaxWait: time.Hour, Clock: newGateClock()})
	_, err := co.Solve(context.Background(), pickOne(3, 0))
	if !errors.Is(err, hybrid.ErrClientClosed) {
		t.Fatalf("flush against closed client: %v, want hybrid.ErrClientClosed", err)
	}

	co.Close()
	_, err = co.Solve(context.Background(), pickOne(3, 0))
	if !errors.Is(err, hybrid.ErrClientClosed) {
		t.Fatalf("solve on closed coalescer: %v, want hybrid.ErrClientClosed", err)
	}
}

// TestResilientTreatsClosedClientAsRetryable: wrapped in the resilience
// layer, a batcher whose client has shut down degrades to the classical
// fallback instead of failing the round.
func TestResilientTreatsClosedClientAsRetryable(t *testing.T) {
	client := hybrid.NewClient(hybrid.Options{Reads: 1, Sweeps: 10})
	client.Close()
	co := New(Config{Client: client, MaxBatch: 1, MaxWait: time.Hour, Clock: newGateClock()})
	defer co.Close()

	wrapped := resilient.New(co, resilient.Options{
		MaxAttempts: 2,
		BaseBackoff: time.Nanosecond,
		Clock:       solve.NewFake(time.Unix(0, 0)),
		Fallback:    sa.NewEngine(),
	})
	res, err := wrapped.Solve(context.Background(), pickOne(4, 1), solve.WithSeed(3))
	if err != nil {
		t.Fatalf("resilient wrapper failed instead of falling back: %v", err)
	}
	if res.Stats.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cloud path should be exhausted)", res.Stats.Fallbacks)
	}
	if !res.Feasible {
		t.Fatal("fallback result infeasible")
	}
}

// TestCloseFlushesPending: accepted requests are not stranded by Close.
func TestCloseFlushesPending(t *testing.T) {
	client := newTestClient(t)
	reg := obs.NewRegistry()
	co := New(Config{Client: client, MaxBatch: 64, MaxWait: time.Hour, Clock: newGateClock(), Obs: reg})

	done := make(chan struct{})
	var res *solve.Result
	var err error
	go func() {
		defer close(done)
		res, err = co.Solve(context.Background(), pickOne(5, 3))
	}()
	waitPending(t, co, 1)
	co.Close()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 1 {
		t.Fatalf("close-flushed solve: feasible=%v objective=%g", res.Feasible, res.Objective)
	}
	if v := reg.Counter("batch.flush_close").Value(); v != 1 {
		t.Fatalf("batch.flush_close = %d, want 1", v)
	}
}

// Package batch coalesces concurrent solve requests into single cloud
// submissions, amortizing the hybrid path's constant service latency.
//
// Table V's shape is a large fixed cloud overhead (submission +
// hybrid-solver floor, ~seconds) dwarfing per-instance algorithm time.
// Under traffic the win is therefore never per-request — it is sharing
// that constant across requests. The Coalescer implements solve.Solver:
// concurrent Solve calls are collected into a generation, and a
// generation flushes when it holds MaxBatch instances or when MaxWait
// has elapsed on the injected solve.Clock since its first request,
// whichever comes first. A flush merges the pending CQMs into one
// block-diagonal model, submits ONE job on the shared hybrid.Client
// queue (one cloud round-trip for the whole batch), splits the merged
// sample back per sub-model, and fans each caller's slice back out on
// its own buffered channel.
//
// Per-caller context cancellation is honored at every stage: an
// abandoned waiter never blocks the batch (delivery channels are
// buffered), and when every waiter of a generation has abandoned, the
// generation's flight context is cancelled so a queued cloud job is
// withdrawn instead of solved for nobody.
//
// Clock semantics: the flush timer sleeps on the injected clock. Under
// solve.Fake, Sleep returns as soon as fake time covers MaxWait — so a
// generation flushes almost immediately and batches form only from
// requests that are already concurrent. That is the correct reading of
// "T ms elapsed"; tests that want to hold a generation open use a clock
// whose Sleep blocks until released.
//
// When the underlying client has been closed, a flush's Submit fails
// with hybrid.ErrClientClosed; the Coalescer surfaces that to every
// waiter wrapped (errors.Is-able), and internal/resilient classifies it
// as retryable, so a resilient wrapper falls back to its classical
// solver instead of failing the round.
//
// Exported metrics (nil-safe via a nil obs.Registry):
//
//	batch.requests / batch.submissions         (counters)
//	batch.flush_size / batch.flush_timeout /
//	batch.flush_close / batch.abandoned        (counters: flush causes)
//	batch.errors                               (counter)
//	batch.size / batch.merged_vars             (histograms per flush)
package batch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/verify"
)

// DefaultMaxBatch is the generation size cap when Config.MaxBatch is 0.
const DefaultMaxBatch = 8

// DefaultMaxWait is the generation age cap when Config.MaxWait is 0:
// well under the cloud overhead it amortizes, so batching never costs
// more latency than one submission saves.
const DefaultMaxWait = 5 * time.Millisecond

// Config tunes a Coalescer.
type Config struct {
	// Client is the shared hybrid job queue flushes submit to. Required.
	// The Coalescer does not own it: closing the Coalescer leaves the
	// client running.
	Client *hybrid.Client
	// MaxBatch flushes a generation when it holds this many instances
	// (DefaultMaxBatch when <= 0; 1 disables coalescing).
	MaxBatch int
	// MaxWait flushes a generation this long after its first request,
	// measured on Clock (DefaultMaxWait when <= 0).
	MaxWait time.Duration
	// Clock drives the flush timer (solve.Real when nil).
	Clock solve.Clock
	// Obs receives batch.* metrics (nil is fine).
	Obs *obs.Registry
}

// outcome is one waiter's delivered result.
type outcome struct {
	res *solve.Result
	err error
}

// waiter is one pending Solve call.
type waiter struct {
	model *cqm.Model
	off   int          // variable offset in the merged model (set at flush)
	ch    chan outcome // buffered(1): delivery never blocks on an abandoned caller
}

// generation is one batch being collected, then flushed as one job.
type generation struct {
	waiters []*waiter
	taken   bool // claimed by exactly one flusher (size, timer, close, or abandon)

	// active counts waiters still listening, guarded by the coalescer
	// mutex. When it reaches zero the generation is retired: if still
	// pending it is taken so no new arrival joins a dead batch, and its
	// flight context is cancelled so a sleeping timer or queued cloud
	// job is withdrawn instead of serving nobody.
	active       int
	flight       context.Context
	cancelFlight context.CancelFunc
}

// Coalescer is the batching front of the cloud path. It implements
// solve.Solver and is safe for concurrent use.
type Coalescer struct {
	cfg Config

	mu      sync.Mutex
	pending *generation
	closed  bool

	cReq, cSub, cFlushSize, cFlushTimeout, cFlushClose, cAbandoned, cErr *obs.Counter
	hSize, hVars                                                         *obs.Histogram
}

// New builds a Coalescer over the given client.
func New(cfg Config) *Coalescer {
	if cfg.Client == nil {
		panic("batch: Config.Client is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.Clock == nil {
		cfg.Clock = solve.Real()
	}
	r := cfg.Obs
	return &Coalescer{
		cfg:           cfg,
		cReq:          r.Counter("batch.requests"),
		cSub:          r.Counter("batch.submissions"),
		cFlushSize:    r.Counter("batch.flush_size"),
		cFlushTimeout: r.Counter("batch.flush_timeout"),
		cFlushClose:   r.Counter("batch.flush_close"),
		cAbandoned:    r.Counter("batch.abandoned"),
		cErr:          r.Counter("batch.errors"),
		hSize:         r.Histogram("batch.size", 1, 2, 4, 8, 16, 32, 64),
		hVars:         r.Histogram("batch.merged_vars"),
	}
}

// Name labels the batching layer in logs and result tables.
func (c *Coalescer) Name() string { return "batch(hybrid)" }

// Solve enqueues m into the current generation and blocks until the
// batched cloud job delivers this caller's slice, or ctx is cancelled.
func (c *Coalescer) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	w := &waiter{model: m, ch: make(chan outcome, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		// The sentinel keeps post-close submissions errors.Is-able and
		// retryable, exactly like a flush hitting a closed client.
		return nil, fmt.Errorf("batch: coalescer closed: %w", hybrid.ErrClientClosed)
	}
	g := c.pending
	if g == nil {
		g = &generation{}
		g.flight, g.cancelFlight = context.WithCancel(context.Background())
		c.pending = g
		// First request arms the flush timer on the injected clock.
		go c.timer(g)
	}
	g.waiters = append(g.waiters, w)
	g.active++
	full := len(g.waiters) >= c.cfg.MaxBatch
	if full {
		g.taken = true
		c.pending = nil
	}
	c.mu.Unlock()
	c.cReq.Inc()

	if full {
		go c.flush(g, c.cFlushSize)
	}

	select {
	case out := <-w.ch:
		return out.res, out.err
	case <-ctx.Done():
		c.abandon(g)
		return nil, ctx.Err()
	}
}

// abandon records one waiter leaving g. The last one out retires the
// generation: a still-pending batch is taken (counted abandoned) so no
// new arrival joins it, and the flight context is cancelled to recall
// a sleeping timer or an in-flight cloud wait.
func (c *Coalescer) abandon(g *generation) {
	c.mu.Lock()
	g.active--
	last := g.active == 0
	if last && !g.taken {
		g.taken = true
		if c.pending == g {
			c.pending = nil
		}
		c.cAbandoned.Inc()
	}
	c.mu.Unlock()
	if last {
		g.cancelFlight()
	}
}

// activeOf reads g's live waiter count under the coalescer mutex.
func (c *Coalescer) activeOf(g *generation) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return g.active
}

// timer flushes g after MaxWait on the clock unless a size or close
// flush claimed it first, or every waiter abandoned it (abandon retires
// the generation before cancelling the flight, so a Sleep error always
// means there is nothing left to flush).
func (c *Coalescer) timer(g *generation) {
	if err := c.cfg.Clock.Sleep(g.flight, c.cfg.MaxWait); err != nil {
		return
	}
	if !c.take(g) {
		return
	}
	c.flush(g, c.cFlushTimeout)
}

// take claims g for one flusher; exactly one claimant wins.
func (c *Coalescer) take(g *generation) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g.taken {
		return false
	}
	g.taken = true
	if c.pending == g {
		c.pending = nil
	}
	return true
}

// Close stops accepting requests and flushes the pending generation so
// no accepted caller is stranded. It does not close the client.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	g := c.pending
	c.pending = nil
	if g != nil {
		g.taken = true
	}
	c.mu.Unlock()
	if g != nil {
		c.flush(g, c.cFlushClose)
	}
}

// flush merges g's models block-diagonally, submits one client job,
// splits the result, and delivers every waiter's slice. cause is the
// flush-cause counter to credit.
func (c *Coalescer) flush(g *generation, cause *obs.Counter) {
	if c.activeOf(g) == 0 {
		// Everyone left before the flush ran: spend no cloud time.
		c.cAbandoned.Inc()
		return
	}
	cause.Inc()
	merged := c.merge(g)
	c.hSize.Observe(float64(len(g.waiters)))
	c.hVars.Observe(float64(merged.NumVars()))

	id, err := c.cfg.Client.Submit(merged)
	if err != nil {
		// Typically hybrid.ErrClientClosed; keep it unwrappable so
		// resilient classifies the failure as retryable.
		c.fail(g, fmt.Errorf("batch: submitting %d-instance batch: %w", len(g.waiters), err))
		return
	}
	c.cSub.Inc()
	res, err := c.cfg.Client.Wait(g.flight, id)
	if err != nil {
		if c.activeOf(g) == 0 {
			// Abandoned mid-flight; best effort withdraw, nobody listens.
			c.cfg.Client.Cancel(id)
			c.cAbandoned.Inc()
			return
		}
		c.fail(g, fmt.Errorf("batch: waiting for batched job %d: %w", id, err))
		return
	}
	c.split(g, res)
}

// fail delivers err to every waiter.
func (c *Coalescer) fail(g *generation, err error) {
	c.cErr.Inc()
	for _, w := range g.waiters {
		w.ch <- outcome{err: err}
	}
}

// merge builds the block-diagonal union model: each sub-model's
// variables are appended at its recorded offset; objectives add, and
// constraints are carried over with a per-block name prefix so a
// violation report still names its source instance.
func (c *Coalescer) merge(g *generation) *cqm.Model {
	merged := cqm.New()
	for bi, w := range g.waiters {
		w.off = merged.NumVars()
		off := cqm.VarID(w.off)
		n := w.model.NumVars()
		for v := 0; v < n; v++ {
			merged.AddBinary(fmt.Sprintf("b%d.%s", bi, w.model.VarName(cqm.VarID(v))))
		}
		linear, quad, squares, offset := w.model.ObjectiveParts()
		for _, t := range linear {
			merged.AddObjectiveLinear(t.Var+off, t.Coef)
		}
		for _, q := range quad {
			merged.AddObjectiveQuad(q.A+off, q.B+off, q.Coef)
		}
		for i := range squares {
			merged.AddObjectiveSquared(shift(&squares[i], off))
		}
		merged.AddObjectiveOffset(offset)
		cs := w.model.Constraints()
		for i := range cs {
			merged.AddConstraint(fmt.Sprintf("b%d.%s", bi, cs[i].Name), shift(&cs[i].Expr, off), cs[i].Sense, cs[i].RHS)
		}
	}
	return merged
}

// shift clones a linear expression with every variable offset.
func shift(e *cqm.LinExpr, off cqm.VarID) cqm.LinExpr {
	s := cqm.LinExpr{Offset: e.Offset, Terms: make([]cqm.Term, len(e.Terms))}
	for i, t := range e.Terms {
		s.Terms[i] = cqm.Term{Var: t.Var + off, Coef: t.Coef}
	}
	return s
}

// split carves the merged sample back into per-waiter results. Each
// waiter's objective and feasibility are recomputed against its own
// sub-model — never inferred from the merged job's aggregate — and its
// Stats are the shared batch's stats (the cloud overhead each caller
// would otherwise have paid alone).
func (c *Coalescer) split(g *generation, res *solve.Result) {
	for _, w := range g.waiters {
		n := w.model.NumVars()
		out := outcome{}
		if res == nil || len(res.Sample) < w.off+n {
			out.err = fmt.Errorf("batch: merged sample too short for block at %d+%d", w.off, n)
			c.cErr.Inc()
		} else {
			sub := make([]bool, n)
			copy(sub, res.Sample[w.off:w.off+n])
			out.res = &solve.Result{
				Sample:    sub,
				Objective: w.model.Objective(sub),
				Feasible:  w.model.Feasible(sub, verify.DefaultTol),
				Stats:     res.Stats,
			}
		}
		w.ch <- out
	}
}

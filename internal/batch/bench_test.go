package batch

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/hybrid"
)

// BenchmarkBatchThroughput measures the coalescer end to end: each
// iteration fires MaxBatch concurrent solves that form exactly one
// size-triggered batch (the gate clock never fires the timer), ride one
// cloud submission, and fan back out. The deterministic batch shape
// keeps allocs/op a gateable measurement rather than scheduling noise.
func BenchmarkBatchThroughput(b *testing.B) {
	const width = 8
	client := hybrid.NewClient(hybrid.Options{Reads: 1, Sweeps: 50, Seed: 1, Presolve: true})
	defer client.Close()
	co := New(Config{Client: client, MaxBatch: width, MaxWait: time.Hour, Clock: newGateClock()})
	defer co.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < width; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				if _, err := co.Solve(context.Background(), pickOne(4, j%4)); err != nil {
					b.Error(err)
				}
			}(j)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(width*b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(client.Jobs())/float64(b.N), "submissions/op")
}

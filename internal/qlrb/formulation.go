package qlrb

import (
	"fmt"

	"repro/internal/cqm"
	"repro/internal/lrp"
)

// Formulation selects between the paper's two CQM variants.
type Formulation int

const (
	// QCQM1 is the reduced formulation: retained-task (diagonal)
	// variables are inferred from the migrated ones, and every
	// constraint is an inequality.
	QCQM1 Formulation = iota
	// QCQM2 is the full formulation with variables for every
	// (destination, source) pair, M equality constraints and M+1
	// inequality constraints.
	QCQM2
)

// String names the formulation as the paper does.
func (f Formulation) String() string {
	switch f {
	case QCQM1:
		return "Q_CQM1"
	case QCQM2:
		return "Q_CQM2"
	}
	return fmt.Sprintf("Formulation(%d)", int(f))
}

// BuildOptions configures the CQM construction.
type BuildOptions struct {
	// Form selects the formulation variant.
	Form Formulation
	// K caps the total number of migrated tasks (the paper's relocation
	// cost bound; k1/k2 in the experiments). K < 0 disables the cap.
	K int
	// PinHeaviest additionally removes the incoming variables of the
	// maximally loaded process in QCQM1 (it may send but not receive).
	// With this reduction the variable count is exactly the paper's
	// (M-1)^2 * (floor(log2 n)+1); without it, eliminating only the
	// diagonal leaves M(M-1) pairs. See DESIGN.md "Faithfulness notes".
	PinHeaviest bool
	// PerSourceK additionally caps how many tasks each single process
	// may give away (ProactLB's per-process search-space bound K from
	// the paper's Table I; the global K bounds the total instead).
	// Zero or negative disables the per-source caps.
	PerSourceK int
	// MigrationWeight adds a soft migration cost to the objective:
	// MigrationWeight * (migrated tasks) / n, in the same normalized
	// units as the squared load deviations. It is the Lagrangian
	// alternative to the hard K constraint (set K < 0 to study it in
	// isolation) — one of the "different problem formulations" the
	// paper's future work proposes. Zero disables it.
	MigrationWeight float64
}

// Encoded is a built CQM for an LRP instance together with the metadata
// needed to decode solver samples back into migration plans.
type Encoded struct {
	// Model is the constrained quadratic model to hand to a solver.
	Model *cqm.Model

	in    *lrp.Instance
	n     int   // tasks per process (uniform)
	coefs []int // coefficient set C
	form  Formulation
	k     int
	// vars[i][j] is the VarID of bit 0 for pair (dest i, src j); bits
	// l=0..|C|-1 are consecutive. -1 marks an eliminated pair.
	vars [][]cqm.VarID
}

// Build constructs the CQM of opt.Form for a uniform instance. It
// returns an error for non-uniform instances (the paper's formulations
// assume each process starts with the same number n of tasks).
func Build(in *lrp.Instance, opt BuildOptions) (*Encoded, error) {
	n, uniform := in.Uniform()
	if !uniform {
		return nil, fmt.Errorf("qlrb: instance is not uniform (per-process task counts %v)", in.Tasks)
	}
	if n < 1 {
		return nil, fmt.Errorf("qlrb: need at least one task per process, got %d", n)
	}
	mProcs := in.NumProcs()
	if mProcs < 2 {
		return nil, fmt.Errorf("qlrb: need at least two processes, got %d", mProcs)
	}

	coefs := Coefficients(n)
	nc := len(coefs)
	model := cqm.New()
	enc := &Encoded{
		Model: model,
		in:    in.Clone(),
		n:     n,
		coefs: coefs,
		form:  opt.Form,
		k:     opt.K,
		vars:  make([][]cqm.VarID, mProcs),
	}

	heaviest := -1
	if opt.Form == QCQM1 && opt.PinHeaviest {
		heaviest = 0
		for j := 1; j < mProcs; j++ {
			if in.Load(j) > in.Load(heaviest) {
				heaviest = j
			}
		}
	}

	// Allocate variables.
	for i := 0; i < mProcs; i++ {
		enc.vars[i] = make([]cqm.VarID, mProcs)
		for j := 0; j < mProcs; j++ {
			if opt.Form == QCQM1 && (i == j || i == heaviest) {
				enc.vars[i][j] = -1
				continue
			}
			first := cqm.VarID(-1)
			for l := 0; l < nc; l++ {
				v := model.AddBinary(fmt.Sprintf("x[%d,%d,%d]", i, j, l))
				if l == 0 {
					first = v
				}
			}
			enc.vars[i][j] = first
		}
	}

	lavg := in.AvgLoad()
	lmax := in.MaxLoad()
	// Normalize load-dimension expressions by L_avg so the objective is
	// O(1) per process regardless of the instance's absolute scale;
	// this keeps annealing penalty weights instance-independent.
	scale := 1.0
	if lavg > 0 {
		scale = 1 / lavg
	}

	// Objective: sum_i (L'_i - L_avg)^2, in normalized units.
	for i := 0; i < mProcs; i++ {
		var e cqm.LinExpr
		switch opt.Form {
		case QCQM2:
			// L'_i = sum_j w_j * count(i,j).
			e.Offset = -lavg * scale
			for j := 0; j < mProcs; j++ {
				enc.addCount(&e, i, j, in.Weight[j]*scale)
			}
		case QCQM1:
			// L'_i = w_i*n - w_i*out_i + sum_{j != i} w_j*in_{ij}.
			e.Offset = (in.Load(i) - lavg) * scale
			for dst := 0; dst < mProcs; dst++ {
				if dst == i {
					continue
				}
				enc.addCount(&e, dst, i, -in.Weight[i]*scale) // tasks leaving i
			}
			for j := 0; j < mProcs; j++ {
				if j == i {
					continue
				}
				enc.addCount(&e, i, j, in.Weight[j]*scale) // tasks arriving at i
			}
		}
		model.AddObjectiveSquared(e)
	}

	// Constraint group 1 — conservation ("no task is lost").
	for j := 0; j < mProcs; j++ {
		var e cqm.LinExpr
		switch opt.Form {
		case QCQM2:
			// sum_i count(i,j) == n.
			for i := 0; i < mProcs; i++ {
				enc.addCount(&e, i, j, 1)
			}
			model.AddConstraint(fmt.Sprintf("conserve[%d]", j), e, cqm.Eq, float64(n))
		case QCQM1:
			// out_j <= n keeps the inferred diagonal non-negative.
			for i := 0; i < mProcs; i++ {
				if i != j {
					enc.addCount(&e, i, j, 1)
				}
			}
			model.AddConstraint(fmt.Sprintf("outcap[%d]", j), e, cqm.Le, float64(n))
		}
	}

	// Constraint group 2 — no process may exceed the original L_max.
	for i := 0; i < mProcs; i++ {
		var e cqm.LinExpr
		switch opt.Form {
		case QCQM2:
			for j := 0; j < mProcs; j++ {
				enc.addCount(&e, i, j, in.Weight[j]*scale)
			}
		case QCQM1:
			e.Offset = in.Load(i) * scale
			for dst := 0; dst < mProcs; dst++ {
				if dst != i {
					enc.addCount(&e, dst, i, -in.Weight[i]*scale)
				}
			}
			for j := 0; j < mProcs; j++ {
				if j != i {
					enc.addCount(&e, i, j, in.Weight[j]*scale)
				}
			}
		}
		model.AddConstraint(fmt.Sprintf("loadcap[%d]", i), e, cqm.Le, lmax*scale)
	}

	// Constraint group 3 — at most K migrated tasks in total.
	if opt.K >= 0 {
		var e cqm.LinExpr
		for i := 0; i < mProcs; i++ {
			for j := 0; j < mProcs; j++ {
				if i != j {
					enc.addCount(&e, i, j, 1)
				}
			}
		}
		model.AddConstraint("migcap", e, cqm.Le, float64(opt.K))
	}

	// Optional per-source caps: out_j <= PerSourceK for every process.
	if opt.PerSourceK > 0 {
		for j := 0; j < mProcs; j++ {
			var e cqm.LinExpr
			for i := 0; i < mProcs; i++ {
				if i != j {
					enc.addCount(&e, i, j, 1)
				}
			}
			model.AddConstraint(fmt.Sprintf("srccap[%d]", j), e, cqm.Le, float64(opt.PerSourceK))
		}
	}

	// Soft migration cost — the Lagrangian alternative to the hard cap:
	// each migrated task adds MigrationWeight/n to the objective.
	if opt.MigrationWeight > 0 {
		per := opt.MigrationWeight / float64(n)
		for i := 0; i < mProcs; i++ {
			for j := 0; j < mProcs; j++ {
				if i == j {
					continue
				}
				base := enc.vars[i][j]
				if base < 0 {
					continue
				}
				for l, c := range coefs {
					model.AddObjectiveLinear(base+cqm.VarID(l), per*float64(c))
				}
			}
		}
	}

	return enc, nil
}

// addCount appends weight * (task count of pair (i,j)) to e; eliminated
// pairs contribute nothing (their count is handled by inference).
func (enc *Encoded) addCount(e *cqm.LinExpr, i, j int, weight float64) {
	base := enc.vars[i][j]
	if base < 0 {
		return
	}
	for l, c := range enc.coefs {
		e.Add(base+cqm.VarID(l), weight*float64(c))
	}
}

// Instance returns (a copy of) the encoded instance.
func (enc *Encoded) Instance() *lrp.Instance { return enc.in.Clone() }

// Form returns the formulation variant.
func (enc *Encoded) Form() Formulation { return enc.form }

// K returns the migration cap (negative when disabled).
func (enc *Encoded) K() int { return enc.k }

// NumLogicalQubits returns the number of binary variables of the built
// model — the logical-qubit requirement the paper tabulates in Table I.
func (enc *Encoded) NumLogicalQubits() int { return enc.Model.NumVars() }

// VariableCount predicts the number of binary variables a formulation
// needs for M processes with n tasks each, without building the model.
// For QCQM1, pinHeaviest selects between the diagonal-only reduction
// (M(M-1)|C|) and the paper's reported count ((M-1)^2 |C|).
func VariableCount(mProcs, n int, form Formulation, pinHeaviest bool) int {
	nc := NumCoefficients(n)
	switch form {
	case QCQM2:
		return mProcs * mProcs * nc
	case QCQM1:
		if pinHeaviest {
			return (mProcs - 1) * (mProcs - 1) * nc
		}
		return mProcs * (mProcs - 1) * nc
	}
	return 0
}

// PaperVariableCount returns the qubit counts exactly as printed in the
// paper's Table I: (M-1)^2 (log2(n)+1) for Q_CQM1 and M^2 (log2(n)+1)
// for Q_CQM2.
func PaperVariableCount(mProcs, n int, form Formulation) int {
	nc := NumCoefficients(n)
	if form == QCQM1 {
		return (mProcs - 1) * (mProcs - 1) * nc
	}
	return mProcs * mProcs * nc
}

package qlrb

import (
	"testing"
	"testing/quick"
)

func TestCoefficientsPaperExample(t *testing.T) {
	// The paper's example: n = 13 -> C = {1, 2, 4, 6} ("to express
	// 13_10, the coefficients are {2^0, 2^1, 2^2, 6}").
	got := Coefficients(13)
	want := []int{1, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("Coefficients(13) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coefficients(13) = %v, want %v", got, want)
		}
	}
}

func TestCoefficientsSmallValues(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 1},
		3: {1, 2},
		4: {1, 2, 1},
		7: {1, 2, 4},
		8: {1, 2, 4, 1},
	}
	for n, want := range cases {
		got := Coefficients(n)
		if len(got) != len(want) {
			t.Errorf("Coefficients(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Coefficients(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestCoefficientsPanicOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coefficients(0) did not panic")
		}
	}()
	Coefficients(0)
}

func TestCoefficientsSumToN(t *testing.T) {
	for n := 1; n <= 5000; n++ {
		total := 0
		for _, c := range Coefficients(n) {
			total += c
			if c <= 0 {
				t.Fatalf("n=%d: non-positive coefficient %d", n, c)
			}
		}
		if total != n {
			t.Fatalf("n=%d: coefficients sum to %d", n, total)
		}
		if got, want := len(Coefficients(n)), NumCoefficients(n); got != want {
			t.Fatalf("n=%d: |C| = %d but NumCoefficients = %d", n, got, want)
		}
	}
}

func TestNumCoefficientsMatchesPaperFormula(t *testing.T) {
	// |C| = floor(log2 n) + 1 at the power-of-two boundaries.
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 50: 6, 100: 7, 208: 8, 2048: 12}
	for n, want := range cases {
		if got := NumCoefficients(n); got != want {
			t.Errorf("NumCoefficients(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEncodeDecodeRoundTripExhaustive(t *testing.T) {
	// Every value in [0, n] must round-trip, for a range of n that
	// includes the experiment sizes.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 50, 100, 208, 255, 256} {
		coefs := Coefficients(n)
		for v := 0; v <= n; v++ {
			bits, err := Encode(v, coefs)
			if err != nil {
				t.Fatalf("n=%d v=%d: %v", n, v, err)
			}
			if got := Decode(bits, coefs); got != v {
				t.Fatalf("n=%d: Encode/Decode %d -> %d", n, v, got)
			}
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	coefs := Coefficients(10)
	if _, err := Encode(-1, coefs); err == nil {
		t.Fatal("Encode(-1) succeeded")
	}
	if _, err := Encode(11, coefs); err == nil {
		t.Fatal("Encode(n+1) succeeded")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(nRaw uint16, vRaw uint16) bool {
		n := int(nRaw%4000) + 1
		v := int(vRaw) % (n + 1)
		coefs := Coefficients(n)
		bits, err := Encode(v, coefs)
		if err != nil {
			return false
		}
		return Decode(bits, coefs) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAllOnesEqualsN(t *testing.T) {
	// "if all coefficients are used ... adds up to exactly n" — the
	// property the paper relies on for solution correctness.
	for n := 1; n <= 300; n++ {
		coefs := Coefficients(n)
		bits := make([]bool, len(coefs))
		for i := range bits {
			bits[i] = true
		}
		if got := Decode(bits, coefs); got != n {
			t.Fatalf("n=%d: all-ones decodes to %d", n, got)
		}
	}
}

package qlrb

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hybrid"
	"repro/internal/lrp"
)

// nonUniformTasks builds a task list with genuinely heterogeneous loads
// that the paper's count-based formulations cannot express.
func nonUniformTasks() []lrp.Task {
	return []lrp.Task{
		{ID: 0, Origin: 0, Load: 9},
		{ID: 1, Origin: 0, Load: 7},
		{ID: 2, Origin: 0, Load: 5},
		{ID: 3, Origin: 0, Load: 4},
		{ID: 4, Origin: 0, Load: 2},
		{ID: 5, Origin: 1, Load: 1},
		{ID: 6, Origin: 1, Load: 1},
		{ID: 7, Origin: 2, Load: 1},
	}
}

func TestBuildGeneralValidation(t *testing.T) {
	if _, err := BuildGeneral(nonUniformTasks(), GeneralBuildOptions{Procs: 1}); err == nil {
		t.Fatal("accepted single process")
	}
	if _, err := BuildGeneral(nil, GeneralBuildOptions{Procs: 3}); err == nil {
		t.Fatal("accepted empty task list")
	}
	bad := []lrp.Task{{ID: 0, Origin: 9, Load: 1}}
	if _, err := BuildGeneral(bad, GeneralBuildOptions{Procs: 3}); err == nil {
		t.Fatal("accepted out-of-range origin")
	}
	neg := []lrp.Task{{ID: 0, Origin: 0, Load: -1}}
	if _, err := BuildGeneral(neg, GeneralBuildOptions{Procs: 3}); err == nil {
		t.Fatal("accepted negative load")
	}
}

func TestGeneralModelShape(t *testing.T) {
	tasks := nonUniformTasks()
	enc, err := BuildGeneral(tasks, GeneralBuildOptions{Procs: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := enc.Model.NumVars(), len(tasks)*3; got != want {
		t.Fatalf("vars = %d, want N*M = %d", got, want)
	}
	eq, ineq := enc.Model.CountConstraintSenses()
	if eq != len(tasks) || ineq != 1 {
		t.Fatalf("constraints = (%d eq, %d ineq), want (%d, 1)", eq, ineq, len(tasks))
	}
}

func TestGeneralEncodeDecodeRoundTrip(t *testing.T) {
	tasks := nonUniformTasks()
	enc, err := BuildGeneral(tasks, GeneralBuildOptions{Procs: 3, K: -1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assign := make([]int, len(tasks))
		for t := range assign {
			assign[t] = rng.Intn(3)
		}
		sample, err := enc.EncodeAssignment(assign)
		if err != nil {
			return false
		}
		if !enc.Model.Feasible(sample, 1e-9) {
			return false // every proper assignment satisfies the CQM
		}
		back, repaired, err := enc.DecodeAssignment(sample)
		if err != nil || repaired {
			return false
		}
		for t := range assign {
			if back[t] != assign[t] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralDecodeRepairsGarbage(t *testing.T) {
	tasks := nonUniformTasks()
	enc, err := BuildGeneral(tasks, GeneralBuildOptions{Procs: 3, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sample := make([]bool, enc.Model.NumVars())
		for i := range sample {
			sample[i] = rng.Intn(3) == 0
		}
		assign, _, err := enc.DecodeAssignment(sample)
		if err != nil {
			return false
		}
		migrated := 0
		for t, task := range tasks {
			if assign[t] < 0 || assign[t] >= 3 {
				return false
			}
			if assign[t] != task.Origin {
				migrated++
			}
		}
		return migrated <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveGeneralBalancesNonUniform(t *testing.T) {
	tasks := nonUniformTasks() // loads 27, 2, 1 across procs; total 30, avg 10
	res, err := SolveGeneral(context.Background(), tasks, GeneralBuildOptions{Procs: 3, K: -1}, hybrid.Options{
		Reads: 6, Sweeps: 400, Seed: 3, Presolve: true, Penalty: 5, PenaltyGrowth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SampleFeasible {
		t.Fatal("no feasible sample")
	}
	maxLoad := 0.0
	for _, l := range res.Loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	// Optimum here is 10/10/10 (e.g. {9,1},{7,2,1},{5,4,1}); allow a
	// small margin.
	if maxLoad > 12 {
		t.Fatalf("max load %v, want near 10", maxLoad)
	}
	if res.Qubits != 24 {
		t.Fatalf("qubits = %d, want 24", res.Qubits)
	}
}

func TestSolveGeneralRespectsBudget(t *testing.T) {
	tasks := nonUniformTasks()
	res, err := SolveGeneral(context.Background(), tasks, GeneralBuildOptions{Procs: 3, K: 2}, hybrid.Options{
		Reads: 4, Sweeps: 250, Seed: 9, Presolve: true, Penalty: 5, PenaltyGrowth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated > 2 {
		t.Fatalf("migrated %d > 2", res.Migrated)
	}
}

func TestGeneralQubitRatio(t *testing.T) {
	// 8 procs x 50 tasks: general = 8*50*8 = 3200, paper = 8*8*6 = 384.
	got := GeneralQubitRatio(8, 50)
	want := 3200.0 / 384.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
	// The compression advantage grows with n — the paper's scalability
	// point about millions of tasks.
	if GeneralQubitRatio(8, 2048) <= GeneralQubitRatio(8, 50) {
		t.Fatal("qubit ratio should grow with task count")
	}
}

func TestPerSourceKConstraint(t *testing.T) {
	in := lrp.MustInstance([]int{8, 8, 8}, []float64{1, 1, 6})
	enc, err := Build(in, BuildOptions{Form: QCQM2, K: -1, PerSourceK: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Q_CQM2 without a global cap: 3 conservation equalities plus 3
	// load-cap inequalities; PerSourceK adds 3 source-cap inequalities.
	eq, ineq := enc.Model.CountConstraintSenses()
	if eq != 3 || ineq != 6 {
		t.Fatalf("constraints = (%d eq, %d ineq), want (3, 6)", eq, ineq)
	}
	// A plan moving 3 tasks out of one source violates the cap.
	p := lrp.NewPlan(in)
	p.Move(0, 2, 3)
	sample, err := enc.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Model.Feasible(sample, 1e-6) {
		t.Fatal("per-source cap not binding")
	}
	// Two out of each source is fine.
	p = lrp.NewPlan(in)
	p.Move(0, 2, 2)
	p.Move(1, 2, 0)
	sample, err = enc.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Model.Feasible(sample, 1e-6) {
		t.Fatal("compliant plan rejected")
	}
}

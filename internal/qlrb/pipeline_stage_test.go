package qlrb

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/verify"
)

func pipelineInstance() *lrp.Instance {
	return lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 6})
}

// TestPipelineMatchesSolve pins the refactor: the monolithic Solve and
// an explicitly staged Pipeline run must produce the identical plan and
// stats for the same seed — Solve is the pipeline, not a sibling.
func TestPipelineMatchesSolve(t *testing.T) {
	in := pipelineInstance()
	opt := SolveOptions{
		Build:  BuildOptions{Form: QCQM1, K: 8},
		Hybrid: hybrid.Options{Reads: 3, Sweeps: 120, Seed: 42},
	}

	planA, statsA, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	p := opt.Pipeline()
	enc, err := p.BuildStage(in)
	if err != nil {
		t.Fatalf("BuildStage: %v", err)
	}
	res, err := p.SampleStage(context.Background(), enc)
	if err != nil {
		t.Fatalf("SampleStage: %v", err)
	}
	planB, _, err := p.DecodeStage(enc, res)
	if err != nil {
		t.Fatalf("DecodeStage: %v", err)
	}
	if err := p.VerifyStage(in, planB); err != nil {
		t.Fatalf("VerifyStage: %v", err)
	}

	if planA.String() != planB.String() {
		t.Fatalf("staged run diverged from Solve:\nSolve:\n%v\nstaged:\n%v", planA, planB)
	}
	if statsA.Qubits != enc.NumLogicalQubits() {
		t.Fatalf("qubits %d, staged build has %d", statsA.Qubits, enc.NumLogicalQubits())
	}
}

// stubSolver returns a canned sample for any model.
type stubSolver struct{ sample []bool }

func (s stubSolver) Name() string { return "stub" }

func (s stubSolver) Solve(_ context.Context, m *cqm.Model, _ ...solve.Option) (*solve.Result, error) {
	return &solve.Result{
		Sample:    s.sample,
		Objective: m.Objective(s.sample),
		Feasible:  m.Feasible(s.sample, 1e-6),
	}, nil
}

// TestPipelineSolverFactory proves the Solver hook swaps the backend:
// a stub solver returning a fixed feasible sample flows through
// decode+verify and its result, not the hybrid default, is returned.
func TestPipelineSolverFactory(t *testing.T) {
	in := pipelineInstance()
	var sawModel *cqm.Model
	p := &Pipeline{
		Build: BuildOptions{Form: QCQM1, K: 0},
		Solver: func(enc *Encoded) solve.Solver {
			sawModel = enc.Model
			// The identity plan encodes to the all-zero sample under
			// QCQM1 (no off-diagonal migration bits set).
			bits, err := enc.EncodePlan(lrp.NewPlan(in))
			if err != nil {
				t.Fatalf("EncodePlan(identity): %v", err)
			}
			return stubSolver{sample: bits}
		},
	}
	plan, stats, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawModel == nil {
		t.Fatal("Solver factory never invoked")
	}
	if plan.Migrated() != 0 {
		t.Fatalf("stub identity sample decoded to %d migrations", plan.Migrated())
	}
	if !stats.SampleFeasible {
		t.Fatal("identity sample should be feasible for K=0")
	}
}

// TestPipelineWrapDecoratesSolver proves Wrap still decorates whatever
// the factory produced (middleware ordering: Solver then Wrap).
func TestPipelineWrapDecoratesSolver(t *testing.T) {
	in := pipelineInstance()
	wrapped := false
	p := &Pipeline{
		Build:  BuildOptions{Form: QCQM1, K: 4},
		Hybrid: hybrid.Options{Reads: 2, Sweeps: 60, Seed: 1},
		Wrap: func(s solve.Solver) solve.Solver {
			wrapped = true
			return s
		},
	}
	if _, _, err := p.Run(context.Background(), in); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !wrapped {
		t.Fatal("Wrap hook never invoked")
	}
}

// TestPipelineVerifyGateRejects proves the verify stage is a real gate:
// a solver handing back a sample that decodes over budget after repair
// is impossible by construction, so the gate is exercised directly with
// a corrupt plan.
func TestPipelineVerifyGateRejects(t *testing.T) {
	in := pipelineInstance()
	p := &Pipeline{Build: BuildOptions{Form: QCQM1, K: 2}}
	bad := lrp.NewPlan(in)
	bad.X[0][0]++ // conservation broken
	err := p.VerifyStage(in, bad)
	if err == nil || !errors.Is(err, verify.ErrRejected) {
		t.Fatalf("VerifyStage = %v, want verify.ErrRejected", err)
	}
}

// TestPipelineObsSpans pins the per-stage span names the observability
// consumers rely on.
func TestPipelineObsSpans(t *testing.T) {
	in := pipelineInstance()
	reg := obs.NewRegistry()
	p := &Pipeline{
		Build:  BuildOptions{Form: QCQM1, K: 8},
		Hybrid: hybrid.Options{Reads: 2, Sweeps: 60, Seed: 3},
		Obs:    reg,
	}
	if _, _, err := p.Run(context.Background(), in); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := reg.Snapshot()
	want := map[string]bool{"qlrb.build": false, "qlrb.solve": false, "qlrb.decode": false, "qlrb.verify": false}
	for _, sp := range snap.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from trace (got %d spans)", name, len(snap.Spans))
		}
	}
}

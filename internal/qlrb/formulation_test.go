package qlrb

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cqm"
	"repro/internal/lrp"
)

func mustBuild(t *testing.T, in *lrp.Instance, opt BuildOptions) *Encoded {
	t.Helper()
	enc, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func testInstance() *lrp.Instance {
	// 4 processes, 8 tasks each, visible imbalance.
	return lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 2, 3, 10})
}

func TestBuildRejectsBadInstances(t *testing.T) {
	if _, err := Build(lrp.MustInstance([]int{3, 4}, []float64{1, 1}), BuildOptions{K: -1}); err == nil {
		t.Fatal("Build accepted a non-uniform instance")
	}
	if _, err := Build(lrp.MustInstance([]int{5}, []float64{1}), BuildOptions{K: -1}); err == nil {
		t.Fatal("Build accepted a single-process instance")
	}
	if _, err := Build(lrp.MustInstance([]int{0, 0}, []float64{1, 1}), BuildOptions{K: -1}); err == nil {
		t.Fatal("Build accepted zero tasks per process")
	}
}

func TestVariableCountsMatchTableI(t *testing.T) {
	// Table I: Q_CQM1 uses (M-1)^2 (floor(log2 n)+1) qubits (which our
	// PinHeaviest reduction realizes) and Q_CQM2 uses M^2 (floor(log2 n)+1).
	for _, tc := range []struct{ m, n int }{{4, 100}, {8, 50}, {8, 2048}, {32, 208}, {64, 100}} {
		nc := NumCoefficients(tc.n)
		weights := make([]float64, tc.m)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		in, err := lrp.UniformInstance(tc.n, weights)
		if err != nil {
			t.Fatal(err)
		}

		enc2 := mustBuild(t, in, BuildOptions{Form: QCQM2, K: 10})
		if got, want := enc2.NumLogicalQubits(), tc.m*tc.m*nc; got != want {
			t.Errorf("M=%d n=%d QCQM2 qubits = %d, want %d", tc.m, tc.n, got, want)
		}
		if got, want := enc2.NumLogicalQubits(), PaperVariableCount(tc.m, tc.n, QCQM2); got != want {
			t.Errorf("QCQM2 differs from paper formula: %d vs %d", got, want)
		}

		enc1 := mustBuild(t, in, BuildOptions{Form: QCQM1, K: 10})
		if got, want := enc1.NumLogicalQubits(), tc.m*(tc.m-1)*nc; got != want {
			t.Errorf("M=%d n=%d QCQM1 qubits = %d, want %d", tc.m, tc.n, got, want)
		}

		enc1p := mustBuild(t, in, BuildOptions{Form: QCQM1, K: 10, PinHeaviest: true})
		if got, want := enc1p.NumLogicalQubits(), PaperVariableCount(tc.m, tc.n, QCQM1); got != want {
			t.Errorf("M=%d n=%d QCQM1+pin qubits = %d, want paper's %d", tc.m, tc.n, got, want)
		}

		if got, want := VariableCount(tc.m, tc.n, QCQM2, false), enc2.NumLogicalQubits(); got != want {
			t.Errorf("VariableCount(QCQM2) = %d, want %d", got, want)
		}
		if got, want := VariableCount(tc.m, tc.n, QCQM1, false), enc1.NumLogicalQubits(); got != want {
			t.Errorf("VariableCount(QCQM1) = %d, want %d", got, want)
		}
		if got, want := VariableCount(tc.m, tc.n, QCQM1, true), enc1p.NumLogicalQubits(); got != want {
			t.Errorf("VariableCount(QCQM1,pin) = %d, want %d", got, want)
		}
	}
}

func TestConstraintStructureMatchesPaper(t *testing.T) {
	in := testInstance()
	// Q_CQM2: M equality + (M+1) inequality constraints.
	enc2 := mustBuild(t, in, BuildOptions{Form: QCQM2, K: 5})
	eq, ineq := enc2.Model.CountConstraintSenses()
	if eq != 4 || ineq != 5 {
		t.Errorf("QCQM2 constraints = (%d eq, %d ineq), want (4, 5)", eq, ineq)
	}
	// Q_CQM1: same total, all inequalities ("all of the constraints
	// will be the inequality constraints").
	enc1 := mustBuild(t, in, BuildOptions{Form: QCQM1, K: 5})
	eq, ineq = enc1.Model.CountConstraintSenses()
	if eq != 0 || ineq != 9 {
		t.Errorf("QCQM1 constraints = (%d eq, %d ineq), want (0, 9)", eq, ineq)
	}
	// Without the migration cap there is one constraint fewer.
	encNoK := mustBuild(t, in, BuildOptions{Form: QCQM2, K: -1})
	if got := encNoK.Model.NumConstraints(); got != 8 {
		t.Errorf("QCQM2 without K has %d constraints, want 8", got)
	}
}

func TestFormulationString(t *testing.T) {
	if QCQM1.String() != "Q_CQM1" || QCQM2.String() != "Q_CQM2" {
		t.Fatal("Formulation.String mismatch")
	}
	if !strings.Contains(Formulation(9).String(), "9") {
		t.Fatal("unknown formulation string")
	}
}

// feasiblePlansAgree checks that a plan's CQM encoding is feasible and
// its objective equals the normalized sum of squared load deviations.
func checkPlanEnergy(t *testing.T, enc *Encoded, p *lrp.Plan) {
	t.Helper()
	in := enc.Instance()
	sample, err := enc.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Model.Feasible(sample, 1e-6) {
		t.Fatalf("feasible plan encodes to infeasible sample (form %v)", enc.Form())
	}
	lavg := in.AvgLoad()
	want := 0.0
	for _, l := range p.Loads(in) {
		d := (l - lavg) / lavg
		want += d * d
	}
	got := enc.Model.Objective(sample)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("objective = %v, want %v (form %v)", got, want, enc.Form())
	}
}

func TestIdentityPlanEncodesFeasibly(t *testing.T) {
	in := testInstance()
	for _, form := range []Formulation{QCQM1, QCQM2} {
		enc := mustBuild(t, in, BuildOptions{Form: form, K: 0})
		checkPlanEnergy(t, enc, lrp.NewPlan(in))
	}
}

func TestObjectiveMatchesLoadDeviation(t *testing.T) {
	in := testInstance()
	// A hand-built plan: P3 (weight 10) sends 3 tasks to P0, 2 to P1.
	p := lrp.NewPlan(in)
	p.Move(0, 3, 3)
	p.Move(1, 3, 2)
	for _, form := range []Formulation{QCQM1, QCQM2} {
		enc := mustBuild(t, in, BuildOptions{Form: form, K: 5})
		checkPlanEnergy(t, enc, p)
	}
}

func TestMigrationCapConstraintBinds(t *testing.T) {
	in := testInstance()
	p := lrp.NewPlan(in)
	p.Move(0, 3, 3) // 3 migrations
	for _, form := range []Formulation{QCQM1, QCQM2} {
		enc := mustBuild(t, in, BuildOptions{Form: form, K: 2})
		sample, err := enc.EncodePlan(p)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Model.Feasible(sample, 1e-6) {
			t.Fatalf("form %v: plan with 3 migrations feasible under K=2", form)
		}
	}
}

func TestLoadCapConstraintBinds(t *testing.T) {
	in := testInstance()
	// Moving a heavy task ONTO the heaviest process exceeds L_max.
	p := lrp.NewPlan(in)
	p.Move(3, 2, 4)
	for _, form := range []Formulation{QCQM1, QCQM2} {
		enc := mustBuild(t, in, BuildOptions{Form: form, K: 10})
		sample, err := enc.EncodePlan(p)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Model.Feasible(sample, 1e-6) {
			t.Fatalf("form %v: overloading plan reported feasible", form)
		}
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	in := testInstance()
	f := func(seed int64, formBit bool) bool {
		form := QCQM1
		if formBit {
			form = QCQM2
		}
		enc, err := Build(in, BuildOptions{Form: form, K: -1})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Random feasible plan.
		p := lrp.NewPlan(in)
		for j := 0; j < in.NumProcs(); j++ {
			avail := in.Tasks[j]
			for i := 0; i < in.NumProcs(); i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		sample, err := enc.EncodePlan(p)
		if err != nil {
			return false
		}
		back, err := enc.Decode(sample)
		if err != nil {
			return false
		}
		for i := range p.X {
			for j := range p.X[i] {
				if p.X[i][j] != back.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	enc := mustBuild(t, testInstance(), BuildOptions{Form: QCQM2, K: -1})
	if _, err := enc.Decode([]bool{true}); err == nil {
		t.Fatal("Decode accepted wrong-length sample")
	}
}

func TestDecodeRepairedAlwaysValid(t *testing.T) {
	in := testInstance()
	for _, form := range []Formulation{QCQM1, QCQM2} {
		enc := mustBuild(t, in, BuildOptions{Form: form, K: 4})
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			sample := make([]bool, enc.Model.NumVars())
			for i := range sample {
				sample[i] = rng.Intn(2) == 0
			}
			p, _, err := enc.DecodeRepaired(sample)
			if err != nil {
				return false
			}
			return p.Validate(in) == nil && p.Migrated() <= 4
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("form %v: %v", form, err)
		}
	}
}

func TestEncodePlanPinHeaviestRejectsInflow(t *testing.T) {
	in := testInstance() // heaviest is P3 (load 80)
	enc := mustBuild(t, in, BuildOptions{Form: QCQM1, K: 10, PinHeaviest: true})
	p := lrp.NewPlan(in)
	p.Move(3, 0, 1) // move a task INTO the heaviest process
	if _, err := enc.EncodePlan(p); err == nil {
		t.Fatal("EncodePlan accepted inflow into pinned process")
	}
	// Outflow from the heaviest is still representable.
	p = lrp.NewPlan(in)
	p.Move(0, 3, 2)
	if _, err := enc.EncodePlan(p); err != nil {
		t.Fatalf("outflow from pinned process rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	in := testInstance()
	enc := mustBuild(t, in, BuildOptions{Form: QCQM1, K: 7})
	if enc.Form() != QCQM1 || enc.K() != 7 {
		t.Fatal("accessor mismatch")
	}
	cp := enc.Instance()
	cp.Tasks[0] = 999
	if enc.in.Tasks[0] == 999 {
		t.Fatal("Instance() returned shared storage")
	}
	// Eliminated pairs contribute nothing via addCount.
	var e cqm.LinExpr
	enc.addCount(&e, 0, 0, 1)
	if len(e.Terms) != 0 {
		t.Fatal("addCount added terms for an eliminated pair")
	}
}

func TestMigrationWeightSoftCost(t *testing.T) {
	in := testInstance()
	plain := mustBuild(t, in, BuildOptions{Form: QCQM2, K: -1})
	soft := mustBuild(t, in, BuildOptions{Form: QCQM2, K: -1, MigrationWeight: 2})
	// Same constraint structure; the soft cost lives in the objective.
	if soft.Model.NumConstraints() != plain.Model.NumConstraints() {
		t.Fatal("soft cost changed the constraint count")
	}
	// A migrating plan pays the soft cost; identity does not.
	p := lrp.NewPlan(in)
	p.Move(0, 3, 2)
	sPlain, err := plain.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	sSoft, err := soft.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// n = 8, weight 2: each migrated task costs 2/8 = 0.25; 2 tasks -> 0.5.
	diff := soft.Model.Objective(sSoft) - plain.Model.Objective(sPlain)
	if diff < 0.5-1e-9 || diff > 0.5+1e-9 {
		t.Fatalf("soft cost = %v, want 0.5", diff)
	}
	idPlain, _ := plain.EncodePlan(lrp.NewPlan(in))
	idSoft, _ := soft.EncodePlan(lrp.NewPlan(in))
	if d := soft.Model.Objective(idSoft) - plain.Model.Objective(idPlain); d > 1e-12 || d < -1e-12 {
		t.Fatalf("identity pays soft cost %v", d)
	}
}

func TestMigrationWeightShrinksMigrations(t *testing.T) {
	// With a large soft weight the solver should move (almost) nothing;
	// with zero weight it should balance freely.
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	solve := func(w float64) int {
		plan, _, err := Solve(context.Background(), in, SolveOptions{
			Build:  BuildOptions{Form: QCQM1, K: -1, MigrationWeight: w},
			Hybrid: fastHybrid(13),
		})
		if err != nil {
			t.Fatal(err)
		}
		return plan.Migrated()
	}
	free := solve(0)
	heavy := solve(100)
	if heavy >= free && free > 0 {
		t.Fatalf("soft cost did not reduce migrations: %d (w=100) vs %d (w=0)", heavy, free)
	}
}

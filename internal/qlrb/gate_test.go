package qlrb

import (
	"context"
	"testing"

	"repro/internal/lrp"
	"repro/internal/quantum"
)

func TestSolveGateBasedBalancesTwoProcs(t *testing.T) {
	// 2 procs x 8 tasks, weights 1 and 3: loads 8 vs 24, avg 16.
	// Moving 2 or 3 heavy tasks over balances well. QCQM1 here needs
	// 2*1*4 = 8 qubits (unbalanced penalties add none).
	in := lrp.MustInstance([]int{8, 8}, []float64{1, 3})
	plan, stats, err := SolveGateBased(context.Background(), in, GateOptions{
		Build:  BuildOptions{Form: QCQM1, K: 4},
		Layers: 2,
		Shots:  512,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Qubits != 8 {
		t.Fatalf("qubits = %d, want 8 (no slack qubits with unbalanced penalties)", stats.Qubits)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() > 4 {
		t.Fatalf("migrated %d > k=4", plan.Migrated())
	}
	m := lrp.Evaluate(in, plan)
	if m.Imbalance >= in.Imbalance() {
		t.Fatalf("gate-based solve did not improve imbalance: %v >= %v", m.Imbalance, in.Imbalance())
	}
	if stats.OptimizerEvals == 0 || stats.Expectation == 0 && !stats.SampleFeasible {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestSolveGateBasedRespectsQubitLimit(t *testing.T) {
	// 8 procs x 2048 tasks would need thousands of qubits.
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	in, err := lrp.UniformInstance(2048, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveGateBased(context.Background(), in, GateOptions{Build: BuildOptions{Form: QCQM2, K: 10}}); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestSolveGateBasedDefaults(t *testing.T) {
	in := lrp.MustInstance([]int{4, 4}, []float64{1, 2})
	plan, stats, err := SolveGateBased(context.Background(), in, GateOptions{Build: BuildOptions{Form: QCQM1, K: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Layers != 2 {
		t.Fatalf("default layers = %d", stats.Layers)
	}
	if plan.Migrated() > 2 {
		t.Fatalf("migrated %d > 2", plan.Migrated())
	}
	if stats.Qubits > quantum.MaxQubits {
		t.Fatalf("qubits %d over limit", stats.Qubits)
	}
}

func TestSolveGateBasedPropagatesBuildErrors(t *testing.T) {
	bad := lrp.MustInstance([]int{3, 4}, []float64{1, 1})
	if _, _, err := SolveGateBased(context.Background(), bad, GateOptions{Build: BuildOptions{Form: QCQM1, K: 1}}); err == nil {
		t.Fatal("non-uniform instance accepted")
	}
}

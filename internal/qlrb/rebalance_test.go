package qlrb

import (
	"context"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/lrp"
)

func fastHybrid(seed int64) hybrid.Options {
	return hybrid.Options{
		Reads:         6,
		Sweeps:        400,
		Seed:          seed,
		Presolve:      true,
		Penalty:       5,
		PenaltyGrowth: 4,
		Timing:        hybrid.DefaultTimingModel(),
	}
}

func TestSolveBalancesSmallInstance(t *testing.T) {
	// 4 procs x 8 tasks, weights 1,1,1,5: loads 8,8,8,40, avg 16.
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	before := in.Imbalance()
	for _, form := range []Formulation{QCQM1, QCQM2} {
		plan, stats, err := Solve(context.Background(), in, SolveOptions{
			Build:  BuildOptions{Form: form, K: -1},
			Hybrid: fastHybrid(11),
		})
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		if err := plan.Validate(in); err != nil {
			t.Fatalf("%v: invalid plan: %v", form, err)
		}
		m := lrp.Evaluate(in, plan)
		if m.Imbalance >= before/2 {
			t.Errorf("%v: imbalance %v not reduced from %v", form, m.Imbalance, before)
		}
		if m.Speedup <= 1 {
			t.Errorf("%v: speedup %v <= 1", form, m.Speedup)
		}
		if stats.Qubits == 0 || stats.Constraints == 0 {
			t.Errorf("%v: stats not populated: %+v", form, stats)
		}
	}
}

func TestSolveRespectsMigrationCap(t *testing.T) {
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	for _, k := range []int{0, 2, 5} {
		plan, _, err := Solve(context.Background(), in, SolveOptions{
			Build:  BuildOptions{Form: QCQM1, K: k},
			Hybrid: fastHybrid(7),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.Migrated(); got > k {
			t.Errorf("K=%d: plan migrates %d tasks", k, got)
		}
	}
}

func TestSolveZeroKeepsEverythingHome(t *testing.T) {
	in := lrp.MustInstance([]int{4, 4}, []float64{1, 3})
	plan, _, err := Solve(context.Background(), in, SolveOptions{
		Build:  BuildOptions{Form: QCQM2, K: 0},
		Hybrid: fastHybrid(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() != 0 {
		t.Fatalf("K=0 plan migrated %d tasks", plan.Migrated())
	}
}

func TestSolveBalancedInstanceStaysPut(t *testing.T) {
	// Imb.0-style case: already balanced; the solver should find that
	// no migration is needed (or at least not worsen anything).
	in := lrp.MustInstance([]int{10, 10, 10}, []float64{2, 2, 2})
	plan, _, err := Solve(context.Background(), in, SolveOptions{
		Build:  BuildOptions{Form: QCQM1, K: 50},
		Hybrid: fastHybrid(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := lrp.Evaluate(in, plan)
	if m.Imbalance > 1e-9 {
		t.Fatalf("balanced instance got imbalance %v", m.Imbalance)
	}
	if m.Speedup < 1-1e-9 {
		t.Fatalf("balanced instance got speedup %v < 1", m.Speedup)
	}
}

func TestQuantumRebalancerInterface(t *testing.T) {
	q := NewQuantum("Q_CQM1_test", QCQM1, 20, fastHybrid(5))
	if q.Name() != "Q_CQM1_test" {
		t.Fatal("Name mismatch")
	}
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 2, 3, 6})
	plan, err := q.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if q.LastStats.Qubits == 0 {
		t.Fatal("LastStats not recorded")
	}
	// Errors propagate with the label attached.
	bad := lrp.MustInstance([]int{3, 4}, []float64{1, 1})
	if _, err := q.Rebalance(context.Background(), bad); err == nil {
		t.Fatal("Rebalance accepted non-uniform instance")
	}
}

func TestSolvePropagatesBuildError(t *testing.T) {
	in := lrp.MustInstance([]int{3, 4}, []float64{1, 1})
	if _, _, err := Solve(context.Background(), in, SolveOptions{Build: BuildOptions{Form: QCQM1, K: -1}}); err == nil {
		t.Fatal("Solve accepted a non-uniform instance")
	}
}

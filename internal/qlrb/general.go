package qlrb

import (
	"context"
	"fmt"

	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/solve"
)

// GeneralEncoded is the per-task CQM formulation — the "different
// problem formulations" direction of the paper's future work. The
// paper's Q_CQM1/Q_CQM2 exploit the uniform-load assumption (all tasks
// of a process share one weight) to encode task *counts* in
// O(log n) bits per process pair; when task loads are arbitrary that
// compression is unavailable and the natural model is one binary
// variable per (task, destination):
//
//	x[t,i] = 1  <=>  task t runs on process i
//
// with per-task assignment constraints (sum_i x[t,i] = 1), the same
// squared-deviation objective, and the migration budget
// sum_{t, i != origin(t)} x[t,i] <= k.
//
// Qubit cost is N*M — for uniform instances exponentially more than the
// paper's M^2(log2 n + 1); GeneralQubitRatio quantifies the gap.
type GeneralEncoded struct {
	// Model is the CQM to solve.
	Model *cqm.Model

	tasks  []lrp.Task
	mProcs int
	k      int
	// vars[t] is the VarID of x[t,0]; destinations are consecutive.
	vars []cqm.VarID
}

// GeneralBuildOptions configures the per-task formulation.
type GeneralBuildOptions struct {
	// Procs is the machine size M.
	Procs int
	// K caps the number of migrated tasks (< 0 disables).
	K int
}

// BuildGeneral constructs the per-task CQM for an arbitrary task list.
func BuildGeneral(tasks []lrp.Task, opt GeneralBuildOptions) (*GeneralEncoded, error) {
	if opt.Procs < 2 {
		return nil, fmt.Errorf("qlrb: general formulation needs at least 2 processes, got %d", opt.Procs)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("qlrb: no tasks")
	}
	total := 0.0
	for _, t := range tasks {
		if t.Origin < 0 || t.Origin >= opt.Procs {
			return nil, fmt.Errorf("qlrb: task %d origin %d outside machine of %d", t.ID, t.Origin, opt.Procs)
		}
		if t.Load < 0 {
			return nil, fmt.Errorf("qlrb: task %d has negative load", t.ID)
		}
		total += t.Load
	}
	avg := total / float64(opt.Procs)
	scale := 1.0
	if avg > 0 {
		scale = 1 / avg
	}

	model := cqm.New()
	enc := &GeneralEncoded{
		Model:  model,
		tasks:  append([]lrp.Task(nil), tasks...),
		mProcs: opt.Procs,
		k:      opt.K,
		vars:   make([]cqm.VarID, len(tasks)),
	}
	for t := range tasks {
		first := cqm.VarID(-1)
		for i := 0; i < opt.Procs; i++ {
			v := model.AddBinary(fmt.Sprintf("x[t%d,%d]", tasks[t].ID, i))
			if i == 0 {
				first = v
			}
		}
		enc.vars[t] = first
	}

	// Objective: sum_i (L'_i - L_avg)^2, normalized by L_avg.
	for i := 0; i < opt.Procs; i++ {
		e := cqm.LinExpr{Offset: -avg * scale}
		for t, task := range tasks {
			e.Add(enc.vars[t]+cqm.VarID(i), task.Load*scale)
		}
		model.AddObjectiveSquared(e)
	}
	// Assignment: each task runs exactly once.
	for t, task := range tasks {
		var e cqm.LinExpr
		for i := 0; i < opt.Procs; i++ {
			e.Add(enc.vars[t]+cqm.VarID(i), 1)
		}
		model.AddConstraint(fmt.Sprintf("assign[t%d]", task.ID), e, cqm.Eq, 1)
	}
	// Migration budget.
	if opt.K >= 0 {
		var e cqm.LinExpr
		for t, task := range tasks {
			for i := 0; i < opt.Procs; i++ {
				if i != task.Origin {
					e.Add(enc.vars[t]+cqm.VarID(i), 1)
				}
			}
		}
		model.AddConstraint("migcap", e, cqm.Le, float64(opt.K))
	}
	return enc, nil
}

// AssignmentPairs returns variable pairs whose co-flip preserves the
// per-task assignment constraints: the two destination bits of one task
// (moving a task = one co-flip).
func (enc *GeneralEncoded) AssignmentPairs() [][2]cqm.VarID {
	pairs := make([][2]cqm.VarID, 0, len(enc.tasks)*enc.mProcs)
	for t := range enc.tasks {
		for i := 0; i < enc.mProcs; i++ {
			for j := i + 1; j < enc.mProcs; j++ {
				pairs = append(pairs, [2]cqm.VarID{
					enc.vars[t] + cqm.VarID(i),
					enc.vars[t] + cqm.VarID(j),
				})
			}
		}
	}
	return pairs
}

// EncodeAssignment produces the sample for a per-task destination
// vector (assign[t] = destination process).
func (enc *GeneralEncoded) EncodeAssignment(assign []int) ([]bool, error) {
	if len(assign) != len(enc.tasks) {
		return nil, fmt.Errorf("qlrb: %d assignments for %d tasks", len(assign), len(enc.tasks))
	}
	sample := make([]bool, enc.Model.NumVars())
	for t, dst := range assign {
		if dst < 0 || dst >= enc.mProcs {
			return nil, fmt.Errorf("qlrb: task %d assigned to invalid process %d", enc.tasks[t].ID, dst)
		}
		sample[int(enc.vars[t])+dst] = true
	}
	return sample, nil
}

// DecodeAssignment converts a sample to a per-task destination vector.
// Infeasible samples (a task on zero or several processes) are repaired:
// the task keeps its origin when unassigned and its lowest-index
// destination when multiply assigned; the migration budget is then
// enforced by returning excess tasks home, cheapest-first by load.
func (enc *GeneralEncoded) DecodeAssignment(sample []bool) ([]int, bool, error) {
	if len(sample) != enc.Model.NumVars() {
		return nil, false, fmt.Errorf("qlrb: sample has %d bits, model has %d variables", len(sample), enc.Model.NumVars())
	}
	assign := make([]int, len(enc.tasks))
	repaired := false
	for t, task := range enc.tasks {
		dst := -1
		count := 0
		for i := 0; i < enc.mProcs; i++ {
			if sample[int(enc.vars[t])+i] {
				count++
				if dst < 0 {
					dst = i
				}
			}
		}
		if count != 1 {
			repaired = true
			if dst < 0 {
				dst = task.Origin
			}
		}
		assign[t] = dst
	}
	if enc.k >= 0 {
		// Count migrations; undo lightest migrations beyond the budget
		// (they contribute least balance per unit of budget).
		type mig struct {
			t    int
			load float64
		}
		var migs []mig
		for t, task := range enc.tasks {
			if assign[t] != task.Origin {
				migs = append(migs, mig{t, task.Load})
			}
		}
		if len(migs) > enc.k {
			repaired = true
			// Selection: keep the heaviest migrations (most balancing
			// power per budget unit); return the rest home.
			for i := 0; i < len(migs); i++ {
				for j := i + 1; j < len(migs); j++ {
					if migs[j].load > migs[i].load {
						migs[i], migs[j] = migs[j], migs[i]
					}
				}
			}
			for _, mg := range migs[enc.k:] {
				assign[mg.t] = enc.tasks[mg.t].Origin
			}
		}
	}
	return assign, repaired, nil
}

// GeneralResult reports a general-formulation solve.
type GeneralResult struct {
	// Assign is the per-task destination vector.
	Assign []int
	// Loads is the resulting per-process load vector.
	Loads []float64
	// Migrated counts tasks whose destination differs from origin.
	Migrated int
	// Qubits is the model's variable count (N*M).
	Qubits int
	// SampleFeasible reports whether the raw sample satisfied the CQM.
	SampleFeasible bool
	// Solver carries engine statistics.
	Solver solve.Stats
}

// SolveGeneral builds and solves the per-task formulation, warm-started
// from the current placement.
func SolveGeneral(ctx context.Context, tasks []lrp.Task, opt GeneralBuildOptions, h hybrid.Options, opts ...solve.Option) (GeneralResult, error) {
	enc, err := BuildGeneral(tasks, opt)
	if err != nil {
		return GeneralResult{}, err
	}
	identity := make([]int, len(tasks))
	for t, task := range tasks {
		identity[t] = task.Origin
	}
	if warm, werr := enc.EncodeAssignment(identity); werr == nil {
		h.Initials = append(h.Initials, warm)
	}
	if h.PairProb == 0 {
		h.Pairs = enc.AssignmentPairs()
		h.PairProb = 0.5
	}
	res, err := hybrid.New(h).Solve(ctx, enc.Model, opts...)
	if err != nil {
		return GeneralResult{}, err
	}
	assign, _, err := enc.DecodeAssignment(res.Sample)
	if err != nil {
		return GeneralResult{}, err
	}
	out := GeneralResult{
		Assign:         assign,
		Loads:          make([]float64, opt.Procs),
		Qubits:         enc.Model.NumVars(),
		SampleFeasible: res.Feasible,
		Solver:         res.Stats,
	}
	for t, task := range tasks {
		out.Loads[assign[t]] += task.Load
		if assign[t] != task.Origin {
			out.Migrated++
		}
	}
	return out, nil
}

// GeneralQubitRatio returns how many times more qubits the per-task
// formulation needs than the paper's count-encoded Q_CQM2 on a uniform
// M-process, n-tasks-per-process machine: (N*M) / (M^2 (log2 n + 1)).
func GeneralQubitRatio(mProcs, tasksPerProc int) float64 {
	general := float64(mProcs * tasksPerProc * mProcs)
	paper := float64(VariableCount(mProcs, tasksPerProc, QCQM2, false))
	return general / paper
}

// Property tests for the EncodePlan ⇄ Decode round-trip on exactly the
// sub-instances the hierarchical solver produces: shard.Partition groups
// extracted from random uniform instances. The hierarchy's correctness
// leans on this inverse pair — warm starts are injected with EncodePlan
// and solver samples come back through Decode — so the round-trip must
// hold on every group shape the partitioner can emit, including pinned
// (heaviest-process) encodings at shard boundaries.
package qlrb_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/shard"
)

// randUniform draws a uniform instance: m processes, n tasks each,
// lumpy weights so partition groups have genuinely distinct loads.
func randUniform(rng *rand.Rand) *lrp.Instance {
	m := 4 + rng.Intn(9)  // 4..12 processes
	n := 1 + rng.Intn(33) // 1..33 tasks per process, covers n=1 and non-powers of two
	tasks := make([]int, m)
	weight := make([]float64, m)
	for j := range tasks {
		tasks[j] = n
		weight[j] = 0.25 + rng.Float64()*4
		if rng.Intn(4) == 0 {
			weight[j] *= 5
		}
	}
	return lrp.MustInstance(tasks, weight)
}

// randPlan draws a feasible plan by scattering random unit moves.
// Column sums are preserved by construction, so the plan is valid for
// any K >= Migrated(). avoidRecv >= 0 forbids moves into that process
// (to respect pinned-heaviest encodings).
func randPlan(rng *rand.Rand, in *lrp.Instance, avoidRecv int) *lrp.Plan {
	m := in.NumProcs()
	p := lrp.NewPlan(in)
	n, _ := in.Uniform()
	for moves := rng.Intn(2*n + 1); moves > 0; moves-- {
		j := rng.Intn(m) // origin column
		var holders []int
		for i := 0; i < m; i++ {
			if p.X[i][j] > 0 {
				holders = append(holders, i)
			}
		}
		if len(holders) == 0 {
			continue
		}
		a := holders[rng.Intn(len(holders))]
		b := rng.Intn(m)
		if b == a || b == avoidRecv {
			continue
		}
		p.X[a][j]--
		p.X[b][j]++
	}
	return p
}

// heaviestProc mirrors Build's PinHeaviest tie-break: the first process
// with maximal load.
func heaviestProc(in *lrp.Instance) int {
	h := 0
	for j := 1; j < in.NumProcs(); j++ {
		if in.Load(j) > in.Load(h) {
			h = j
		}
	}
	return h
}

func roundTrip(t *testing.T, enc *qlrb.Encoded, p *lrp.Plan, label string) {
	t.Helper()
	sample, err := enc.EncodePlan(p)
	if err != nil {
		t.Fatalf("%s: EncodePlan: %v", label, err)
	}
	back, err := enc.Decode(sample)
	if err != nil {
		t.Fatalf("%s: Decode: %v", label, err)
	}
	if back.String() != p.String() {
		t.Fatalf("%s: round-trip changed the plan:\nin:\n%v\nout:\n%v", label, p, back)
	}
}

// TestPropShardSubInstanceRoundTrip: for every group the partitioner
// deals from a random instance, both formulations must round-trip
// random feasible plans through EncodePlan → Decode unchanged.
func TestPropShardSubInstanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		in := randUniform(rng)
		size := 2 + rng.Intn(5)
		for gi, procs := range shard.Partition(in, size) {
			if len(procs) < 2 {
				continue
			}
			sub, err := in.Extract(procs)
			if err != nil {
				t.Fatalf("trial %d: Extract(%v): %v", trial, procs, err)
			}
			p := randPlan(rng, sub, -1)
			for _, form := range []qlrb.Formulation{qlrb.QCQM1, qlrb.QCQM2} {
				enc, err := qlrb.Build(sub, qlrb.BuildOptions{Form: form, K: -1})
				if err != nil {
					t.Fatalf("trial %d group %d: Build(%v): %v", trial, gi, form, err)
				}
				roundTrip(t, enc, p, fmt.Sprintf("trial %d group %d %v", trial, gi, form))
				// The identity must round-trip too: it is the hierarchy's
				// default warm start for every sub-solve.
				roundTrip(t, enc, lrp.NewPlan(sub), fmt.Sprintf("trial %d group %d %v identity", trial, gi, form))
			}
		}
	}
}

// TestPropPinnedHeaviestRoundTrip: pinned encodings at shard boundaries
// eliminate the heaviest process's incoming variables. Plans that never
// send into it must round-trip; plans that do must be rejected by
// EncodePlan rather than silently dropped.
func TestPropPinnedHeaviestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 60; trial++ {
		in := randUniform(rng)
		for gi, procs := range shard.Partition(in, 2+rng.Intn(5)) {
			if len(procs) < 3 {
				continue // need a sender, the pinned receiver, and a third party
			}
			sub, err := in.Extract(procs)
			if err != nil {
				t.Fatalf("trial %d: Extract: %v", trial, err)
			}
			enc, err := qlrb.Build(sub, qlrb.BuildOptions{Form: qlrb.QCQM1, K: -1, PinHeaviest: true})
			if err != nil {
				t.Fatalf("trial %d group %d: Build pinned: %v", trial, gi, err)
			}
			h := heaviestProc(sub)
			p := randPlan(rng, sub, h)
			roundTrip(t, enc, p, fmt.Sprintf("trial %d group %d pinned", trial, gi))

			// One unit into the pinned process makes the plan unencodable.
			bad := p.Clone()
			src := (h + 1) % sub.NumProcs()
			bad.Move(h, src, 1)
			if bad.Validate(sub) != nil {
				continue // the random plan had already drained src's diagonal
			}
			if _, err := enc.EncodePlan(bad); err == nil {
				t.Fatalf("trial %d group %d: EncodePlan accepted a move into pinned process %d", trial, gi, h)
			}
		}
	}
}

// TestPropDecodeRepairedIdempotent: any bit pattern, once through
// DecodeRepaired, is a feasible plan — and feasible plans are fixed
// points of the encode/decode pair.
func TestPropDecodeRepairedIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 60; trial++ {
		in := randUniform(rng)
		for gi, procs := range shard.Partition(in, 2+rng.Intn(5)) {
			if len(procs) < 2 {
				continue
			}
			sub, err := in.Extract(procs)
			if err != nil {
				t.Fatalf("trial %d: Extract: %v", trial, err)
			}
			enc, err := qlrb.Build(sub, qlrb.BuildOptions{Form: qlrb.QCQM1, K: -1})
			if err != nil {
				t.Fatalf("trial %d group %d: Build: %v", trial, gi, err)
			}
			bits := make([]bool, enc.Model.NumVars())
			for b := range bits {
				bits[b] = rng.Intn(2) == 1
			}
			p, _, err := enc.DecodeRepaired(bits)
			if err != nil {
				t.Fatalf("trial %d group %d: DecodeRepaired: %v", trial, gi, err)
			}
			if err := p.Validate(sub); err != nil {
				t.Fatalf("trial %d group %d: repaired plan invalid: %v", trial, gi, err)
			}
			roundTrip(t, enc, p, fmt.Sprintf("trial %d group %d repaired", trial, gi))
		}
	}
}

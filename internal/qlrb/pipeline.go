package qlrb

import (
	"context"
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/verify"
)

// Pipeline is the staged quantum-hybrid solve path. Every way this
// repository turns an LRP instance into a verified migration plan — the
// monolithic qlrb.Solve, the hedged race (via Wrap/Solver), and the
// hierarchical sharded solver (internal/shard, one Pipeline per shard)
// — runs through these four stages, in order:
//
//	BuildStage   instance  -> Encoded CQM        ("qlrb.build" span)
//	SampleStage  Encoded   -> solve.Result       ("qlrb.solve" span)
//	DecodeStage  Result    -> repaired lrp.Plan  ("qlrb.decode" span)
//	VerifyStage  Plan      -> accepted/rejected  ("qlrb.verify" span)
//
// The stages are individually callable (a caller holding a prebuilt
// Encoded can start at SampleStage; a caller with an external sample
// can start at DecodeStage) and Run composes all four. Sharing one
// implementation is the point: warm starts, pair moves, repair,
// observability, and the mandatory trust-but-verify gate behave
// identically on every path, and a fix lands everywhere at once.
type Pipeline struct {
	// Build configures the CQM construction (formulation, migration
	// cap, reductions).
	Build BuildOptions
	// Hybrid configures the default sampling backend. Warm starts and
	// conservation pair moves are resolved into a copy per solve; the
	// caller's options are never mutated.
	Hybrid hybrid.Options
	// Solver, when non-nil, supplies the sampling backend for the
	// encoded model instead of hybrid.New(Hybrid) — the attachment
	// point for alternative backends (a hedged race over several
	// solvers, a sharded solver bound to the same encoding, a test
	// stub). The factory receives the built encoding so backends that
	// need decode metadata (e.g. internal/shard's solver adapter) can
	// bind to it.
	Solver func(*Encoded) solve.Solver
	// Wrap, when non-nil, decorates the solver built for this solve —
	// the attachment point for middleware (resilient.Policy.Wrap,
	// hedge wrapping, or any other solve.Solver decorator). It runs
	// after Solver.
	Wrap func(solve.Solver) solve.Solver
	// NoWarmStart disables seeding the sampler with the identity plan
	// (every task stays home), which is feasible for every K >= 0 and
	// is the natural warm start for a REbalancing problem.
	NoWarmStart bool
	// WarmPlans are additional warm starts, typically the plans of
	// classical algorithms — the paper runs the classical methods first
	// to guide the hybrid experiments. Plans exceeding the migration
	// cap are projected onto it before encoding; unencodable plans
	// (e.g. inflow into a pinned process) are skipped.
	WarmPlans []*lrp.Plan
	// Verify tunes the mandatory plan verification gate (zero value =
	// defaults: conservation, non-negativity and the migration budget;
	// set Verify.MaxLoad to additionally enforce the load cap).
	Verify verify.Options
	// Obs, when non-nil, receives the full workflow trace: one span per
	// stage plus every solver-internal counter (passed down via
	// solve.WithObs). Nil disables instrumentation.
	Obs *obs.Registry
	// Opts are extra solve options applied to the sample stage — the
	// carve-out point for per-shard budgets (solve.WithBudget), clocks,
	// and seed overrides.
	Opts []solve.Option
}

// BuildStage constructs the CQM for the instance ("qlrb.build" span).
func (p *Pipeline) BuildStage(in *lrp.Instance) (*Encoded, error) {
	span := p.Obs.StartSpan("qlrb.build")
	enc, err := Build(in, p.Build)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, err
	}
	ms := enc.Model.Stats()
	span.Set("qubits", ms.Vars).Set("constraints", ms.Constraints).End()
	return enc, nil
}

// WarmStarts encodes the pipeline's warm-start plans (identity plus
// WarmPlans, unless NoWarmStart) into sample vectors for the encoding.
// Plans over the migration cap are projected onto it first; plans the
// encoding cannot express are skipped.
func (p *Pipeline) WarmStarts(enc *Encoded) [][]bool {
	if p.NoWarmStart {
		return nil
	}
	in := enc.in
	candidates := append([]*lrp.Plan{lrp.NewPlan(in)}, p.WarmPlans...)
	var warm [][]bool
	for _, c := range candidates {
		q := c.Clone()
		if p.Build.K >= 0 && q.Migrated() > p.Build.K {
			q.CapMigrations(in, p.Build.K)
		}
		if bits, err := enc.EncodePlan(q); err == nil {
			warm = append(warm, bits)
		}
	}
	return warm
}

// solver resolves the sampling backend for enc: warm starts and pair
// moves are folded into a copy of the hybrid options, the Solver
// factory (or hybrid.New) builds the backend, and Wrap decorates it.
func (p *Pipeline) solver(enc *Encoded) solve.Solver {
	var s solve.Solver
	if p.Solver != nil {
		s = p.Solver(enc)
	} else {
		h := p.Hybrid // copy: the caller's options are never mutated
		h.Initials = append(append([][]bool(nil), h.Initials...), p.WarmStarts(enc)...)
		// PairProb == 0 means "default": enable conservation-preserving
		// pair moves where the formulation needs them. A negative value
		// disables pair moves explicitly (used by the tuning ablation).
		if pairs := enc.ConservationPairs(); len(pairs) > 0 && h.PairProb == 0 {
			h.Pairs = pairs
			h.PairProb = 0.4
		}
		if h.PairProb < 0 {
			h.Pairs = nil
			h.PairProb = 0
		}
		s = hybrid.New(h)
	}
	if p.Wrap != nil {
		s = p.Wrap(s)
	}
	return s
}

// SampleStage runs the sampling backend on the encoded model
// ("qlrb.solve" span) under the pipeline's solve options plus any
// extras (per-call budgets, seeds).
func (p *Pipeline) SampleStage(ctx context.Context, enc *Encoded, extra ...solve.Option) (*solve.Result, error) {
	s := p.solver(enc)
	opts := make([]solve.Option, 0, len(p.Opts)+len(extra)+1)
	opts = append(opts, solve.WithObs(p.Obs))
	opts = append(opts, p.Opts...)
	opts = append(opts, extra...)
	span := p.Obs.StartSpan("qlrb.solve")
	res, err := s.Solve(ctx, enc.Model, opts...)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, err
	}
	span.Set("solver", s.Name()).Set("objective", res.Objective).
		Set("feasible", res.Feasible).End()
	return res, nil
}

// DecodeStage decodes the result's best sample into a feasible plan
// ("qlrb.decode" span), repairing conservation and the migration cap
// when the raw sample violates them.
func (p *Pipeline) DecodeStage(enc *Encoded, res *solve.Result) (plan *lrp.Plan, repaired bool, err error) {
	span := p.Obs.StartSpan("qlrb.decode")
	plan, repaired, err = enc.DecodeRepaired(res.Sample)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, false, err
	}
	span.Set("repaired", repaired).End()
	if repaired {
		p.Obs.Counter("qlrb.repairs").Inc()
	}
	return plan, repaired, nil
}

// VerifyStage is the mandatory trust-but-verify gate ("qlrb.verify"
// span): the decoded (and possibly repaired) plan is re-checked from
// scratch against the instance and migration budget by the independent
// verifier before it leaves the pipeline. Decode/Repair are supposed to
// guarantee this — the gate is what turns "supposed to" into "checked
// on every solve". A rejection is an error wrapping verify.ErrRejected.
func (p *Pipeline) VerifyStage(in *lrp.Instance, plan *lrp.Plan) error {
	span := p.Obs.StartSpan("qlrb.verify")
	rep := verify.Plan(in, plan, p.Build.K, p.Verify)
	span.Set("ok", rep.Ok()).Set("checks", rep.Checks).End()
	if !rep.Ok() {
		p.Obs.Counter("qlrb.rejected_plans").Inc()
		p.Obs.Emit("qlrb.reject", map[string]any{"violation": rep.Violations[0].String()})
		return fmt.Errorf("qlrb: decoded plan failed verification: %w", rep.Err())
	}
	return nil
}

// Run composes the four stages end to end: build the CQM, sample it,
// decode the best sample into a repaired plan, and verify the plan
// against the instance. Cancelling ctx stops the sample stage at the
// next sweep boundary; the best sample collected so far is still
// decoded (Stats.Solver.Interrupted reports the cut).
func (p *Pipeline) Run(ctx context.Context, in *lrp.Instance) (*lrp.Plan, SolveStats, error) {
	enc, err := p.BuildStage(in)
	if err != nil {
		return nil, SolveStats{}, err
	}
	res, err := p.SampleStage(ctx, enc)
	if err != nil {
		return nil, SolveStats{}, err
	}
	plan, repaired, err := p.DecodeStage(enc, res)
	if err != nil {
		return nil, SolveStats{}, err
	}
	if err := p.VerifyStage(in, plan); err != nil {
		return nil, SolveStats{}, err
	}
	ms := enc.Model.Stats()
	stats := SolveStats{
		Qubits:          ms.Vars,
		Constraints:     ms.Constraints,
		EqConstraints:   ms.EqConstraints,
		IneqConstraints: ms.IneqConstraints,
		SampleFeasible:  res.Feasible,
		Repaired:        repaired,
		Objective:       res.Objective,
		Solver:          res.Stats,
	}
	return plan, stats, nil
}

package qlrb

import (
	"fmt"
	"math/rand"

	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/quantum"
)

// GateOptions configures the gate-based (QAOA) solver path — the
// extension the paper sketches in Section VI: converting the CQM to a
// QUBO (with penalty-folded constraints) and running it on a gate-model
// device. Here the device is an exact state-vector simulation, so only
// small instances fit (quantum.MaxQubits).
type GateOptions struct {
	// Build selects the formulation and migration cap.
	Build BuildOptions
	// Layers is the QAOA depth p (0 = 2).
	Layers int
	// Shots is the number of measurement samples (0 = 512).
	Shots int
	// Seed drives sampling.
	Seed int64
	// QUBO controls the constraint folding; the zero value selects
	// unbalanced penalization, which adds no slack qubits (the paper
	// cites exactly this motivation for it).
	QUBO cqm.QUBOOptions
	// Optimize tunes the classical parameter search.
	Optimize quantum.OptimizeOptions
}

// GateStats reports the gate-based solve.
type GateStats struct {
	// Qubits is the simulated register width (QUBO variables incl.
	// slacks, if any).
	Qubits int
	// Layers is the QAOA depth used.
	Layers int
	// Expectation is the optimized cost expectation.
	Expectation float64
	// ApproxRatio and GroundProbability are quality diagnostics of the
	// sampled state (see quantum.SampleResult).
	ApproxRatio       float64
	GroundProbability float64
	// OptimizerEvals counts circuit evaluations spent on parameters.
	OptimizerEvals int
	// SampleFeasible reports whether any measured shot satisfied the
	// CQM; when false the returned plan comes from repair.
	SampleFeasible bool
}

// SolveGateBased solves a (small) LRP instance end to end on the
// simulated gate-model path: CQM -> QUBO -> QAOA -> measurement ->
// feasibility filter -> plan decode. It returns an error when the QUBO
// needs more qubits than the simulator supports.
func SolveGateBased(in *lrp.Instance, opt GateOptions) (*lrp.Plan, GateStats, error) {
	if opt.Layers <= 0 {
		opt.Layers = 2
	}
	if opt.Shots <= 0 {
		opt.Shots = 512
	}
	if opt.QUBO.EqPenalty == 0 {
		opt.QUBO = cqm.QUBOOptions{
			Method:       cqm.UnbalancedPenalty,
			EqPenalty:    20,
			UnbalancedL1: 1,
			UnbalancedL2: 20,
		}
	}

	enc, err := Build(in, opt.Build)
	if err != nil {
		return nil, GateStats{}, err
	}
	qubo, err := cqm.ToQUBO(enc.Model, opt.QUBO)
	if err != nil {
		return nil, GateStats{}, fmt.Errorf("qlrb: QUBO conversion: %w", err)
	}
	if qubo.NumVars > quantum.MaxQubits {
		return nil, GateStats{}, fmt.Errorf("qlrb: instance needs %d qubits, gate simulator supports %d",
			qubo.NumVars, quantum.MaxQubits)
	}

	qa, err := quantum.NewQAOA(qubo, opt.Layers)
	if err != nil {
		return nil, GateStats{}, err
	}
	params, err := qa.Optimize(opt.Optimize)
	if err != nil {
		return nil, GateStats{}, err
	}
	state, err := qa.Evolve(params.X)
	if err != nil {
		return nil, GateStats{}, err
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	stats := GateStats{
		Qubits:         qubo.NumVars,
		Layers:         opt.Layers,
		Expectation:    params.F,
		OptimizerEvals: params.Evals,
	}
	// Feasibility filter over the shots: prefer the lowest-QUBO-energy
	// sample whose base assignment satisfies the original CQM.
	var bestFeas, bestAny []bool
	bestFeasE, bestAnyE := 0.0, 0.0
	for _, z := range state.Sample(rng, opt.Shots) {
		bits := quantum.Bits(z, qubo.NumVars)
		e := qubo.Energy(bits)
		base := bits[:qubo.BaseVars]
		if bestAny == nil || e < bestAnyE {
			bestAny, bestAnyE = base, e
		}
		if enc.Model.Feasible(base, 1e-6) && (bestFeas == nil || e < bestFeasE) {
			bestFeas, bestFeasE = base, e
		}
	}
	sample := bestAny
	if bestFeas != nil {
		sample = bestFeas
		stats.SampleFeasible = true
	}
	if sr, err := qa.Sample(params.X, 1, rng); err == nil {
		stats.GroundProbability = sr.GroundProbability
		if qaMax := sr.ApproxRatio; qaMax >= 0 {
			stats.ApproxRatio = qaMax
		}
	}

	plan, _, err := enc.DecodeRepaired(sample)
	if err != nil {
		return nil, stats, err
	}
	return plan, stats, nil
}

package qlrb

import (
	"context"

	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/quantum"
	"repro/internal/solve"
)

// GateOptions configures the gate-based (QAOA) solver path — the
// extension the paper sketches in Section VI: converting the CQM to a
// QUBO (with penalty-folded constraints) and running it on a gate-model
// device. Here the device is an exact state-vector simulation, so only
// small instances fit (quantum.MaxQubits).
type GateOptions struct {
	// Build selects the formulation and migration cap.
	Build BuildOptions
	// Layers is the QAOA depth p (0 = 2).
	Layers int
	// Shots is the number of measurement samples (0 = 512).
	Shots int
	// Seed drives sampling.
	Seed int64
	// QUBO controls the constraint folding; the zero value selects
	// unbalanced penalization, which adds no slack qubits (the paper
	// cites exactly this motivation for it).
	QUBO cqm.QUBOOptions
	// Optimize tunes the classical parameter search.
	Optimize quantum.OptimizeOptions
}

// GateStats reports the gate-based solve.
type GateStats struct {
	// Qubits is the simulated register width (QUBO variables incl.
	// slacks, if any).
	Qubits int
	// Layers is the QAOA depth used.
	Layers int
	// Expectation is the optimized cost expectation.
	Expectation float64
	// ApproxRatio and GroundProbability are quality diagnostics of the
	// sampled state (see quantum.SampleResult).
	ApproxRatio       float64
	GroundProbability float64
	// OptimizerEvals counts circuit evaluations spent on parameters.
	OptimizerEvals int
	// SampleFeasible reports whether any measured shot satisfied the
	// CQM; when false the returned plan comes from repair.
	SampleFeasible bool
}

// SolveGateBased solves a (small) LRP instance end to end on the
// simulated gate-model path: CQM -> QUBO -> QAOA -> measurement ->
// feasibility filter -> plan decode, all delegated to quantum.Engine.
// It returns an error when the QUBO needs more qubits than the
// simulator supports. Cancelling ctx stops the variational parameter
// search; the best parameters found so far are still measured and
// decoded.
func SolveGateBased(ctx context.Context, in *lrp.Instance, opt GateOptions) (*lrp.Plan, GateStats, error) {
	enc, err := Build(in, opt.Build)
	if err != nil {
		return nil, GateStats{}, err
	}
	eng := &quantum.Engine{
		Layers:   opt.Layers,
		Shots:    opt.Shots,
		QUBO:     opt.QUBO,
		Optimize: opt.Optimize,
	}
	res, err := eng.Solve(ctx, enc.Model, solve.WithSeed(opt.Seed))
	if err != nil {
		return nil, GateStats{}, err
	}
	stats := GateStats{
		Qubits:            eng.Last.Qubits,
		Layers:            eng.Last.Layers,
		Expectation:       eng.Last.Expectation,
		ApproxRatio:       eng.Last.ApproxRatio,
		GroundProbability: eng.Last.GroundProbability,
		OptimizerEvals:    res.Stats.Evals,
		SampleFeasible:    res.Feasible,
	}
	plan, _, err := enc.DecodeRepaired(res.Sample)
	if err != nil {
		return nil, stats, err
	}
	return plan, stats, nil
}

package qlrb

import "testing"

// FuzzEncodeDecode asserts the coefficient-set codec never panics and
// round-trips every in-range value for arbitrary n.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(13, 7)
	f.Add(1, 0)
	f.Add(2048, 2047)
	f.Fuzz(func(t *testing.T, n, v int) {
		if n < 1 || n > 1<<20 {
			return
		}
		coefs := Coefficients(n)
		vv := v
		if vv < 0 {
			vv = -vv
		}
		vv %= n + 1
		bits, err := Encode(vv, coefs)
		if err != nil {
			t.Fatalf("Encode(%d) with n=%d: %v", vv, n, err)
		}
		if got := Decode(bits, coefs); got != vv {
			t.Fatalf("round trip %d -> %d (n=%d)", vv, got, n)
		}
		// Out-of-range values are rejected, not mispacked.
		if _, err := Encode(n+1, coefs); err == nil {
			t.Fatalf("Encode(n+1) accepted for n=%d", n)
		}
	})
}

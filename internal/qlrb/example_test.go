package qlrb_test

import (
	"fmt"

	"repro/internal/lrp"
	"repro/internal/qlrb"
)

// The paper's example: n = 13 tasks per process encode with the
// coefficient set {1, 2, 4, 6}, whose members sum to exactly 13.
func ExampleCoefficients() {
	fmt.Println(qlrb.Coefficients(13))
	// Output:
	// [1 2 4 6]
}

// Building Q_CQM2 for 8 processes with 50 tasks each needs
// M^2 (log2 n + 1) = 64*6 = 384 logical qubits (Table I).
func ExampleBuild() {
	in, _ := lrp.UniformInstance(50, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	enc, _ := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM2, K: 60})
	eq, ineq := enc.Model.CountConstraintSenses()
	fmt.Printf("qubits=%d eq=%d ineq=%d\n", enc.NumLogicalQubits(), eq, ineq)
	// Output:
	// qubits=384 eq=8 ineq=9
}

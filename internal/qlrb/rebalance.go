package qlrb

import (
	"context"
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/verify"
)

// SolveOptions configures an end-to-end quantum-hybrid rebalancing solve.
type SolveOptions struct {
	Build  BuildOptions
	Hybrid hybrid.Options
	// NoWarmStart disables seeding the sampler with the identity plan
	// (every task stays home), which is feasible for every K >= 0 and is
	// the natural warm start for a REbalancing problem.
	NoWarmStart bool
	// WarmPlans are additional warm starts, typically the plans of
	// classical algorithms — the paper runs the classical methods first
	// to guide the hybrid experiments, and cloud hybrid solvers likewise
	// seed their samplers classically. Plans exceeding the migration cap
	// are projected onto it before encoding; unencodable plans (e.g.
	// inflow into a pinned process) are skipped.
	WarmPlans []*lrp.Plan
	// Wrap, when non-nil, decorates the hybrid engine built for this
	// solve (after warm starts and pair moves are resolved into it) —
	// the attachment point for resilience middleware
	// (resilient.Policy.Wrap) or any other solve.Solver decorator.
	Wrap func(solve.Solver) solve.Solver
	// Obs, when non-nil, receives the full workflow trace: qlrb.build /
	// qlrb.solve / qlrb.decode spans plus every solver-internal counter
	// (passed down via solve.WithObs). Nil disables instrumentation.
	Obs *obs.Registry
}

// SolveStats reports everything the paper's tables need about one solve.
type SolveStats struct {
	// Qubits is the number of binary variables (logical qubits).
	Qubits int
	// Constraints is the total constraint count.
	Constraints int
	// EqConstraints and IneqConstraints split it by sense.
	EqConstraints, IneqConstraints int
	// SampleFeasible reports whether the raw best sample satisfied the
	// CQM (before any plan-level repair).
	SampleFeasible bool
	// Repaired reports whether plan-level projection was needed.
	Repaired bool
	// Objective is the CQM objective of the returned sample.
	Objective float64
	// Solver carries the engine's timing and work counters.
	Solver solve.Stats
}

// Solve builds the CQM for in, runs the hybrid engine, and decodes the
// best sample into a guaranteed-feasible migration plan. Cancelling ctx
// stops the solve at the next sweep boundary; the best sample collected
// so far is still decoded (Stats.Solver.Interrupted reports the cut).
func Solve(ctx context.Context, in *lrp.Instance, opt SolveOptions) (*lrp.Plan, SolveStats, error) {
	buildSpan := opt.Obs.StartSpan("qlrb.build")
	enc, err := Build(in, opt.Build)
	if err != nil {
		buildSpan.Set("error", err.Error()).End()
		return nil, SolveStats{}, err
	}
	ms0 := enc.Model.Stats()
	buildSpan.Set("qubits", ms0.Vars).Set("constraints", ms0.Constraints).End()
	if !opt.NoWarmStart {
		candidates := append([]*lrp.Plan{lrp.NewPlan(in)}, opt.WarmPlans...)
		for _, p := range candidates {
			q := p.Clone()
			if opt.Build.K >= 0 && q.Migrated() > opt.Build.K {
				q.CapMigrations(in, opt.Build.K)
			}
			if warm, werr := enc.EncodePlan(q); werr == nil {
				opt.Hybrid.Initials = append(opt.Hybrid.Initials, warm)
			}
		}
	}
	// PairProb == 0 means "default": enable conservation-preserving pair
	// moves where the formulation needs them. A negative value disables
	// pair moves explicitly (used by the tuning ablation).
	if pairs := enc.ConservationPairs(); len(pairs) > 0 && opt.Hybrid.PairProb == 0 {
		opt.Hybrid.Pairs = pairs
		opt.Hybrid.PairProb = 0.4
	}
	if opt.Hybrid.PairProb < 0 {
		opt.Hybrid.Pairs = nil
		opt.Hybrid.PairProb = 0
	}
	var solver solve.Solver = hybrid.New(opt.Hybrid)
	if opt.Wrap != nil {
		solver = opt.Wrap(solver)
	}
	solveSpan := opt.Obs.StartSpan("qlrb.solve")
	res, err := solver.Solve(ctx, enc.Model, solve.WithObs(opt.Obs))
	if err != nil {
		solveSpan.Set("error", err.Error()).End()
		return nil, SolveStats{}, err
	}
	solveSpan.Set("solver", solver.Name()).Set("objective", res.Objective).
		Set("feasible", res.Feasible).End()
	decodeSpan := opt.Obs.StartSpan("qlrb.decode")
	plan, repaired, err := enc.DecodeRepaired(res.Sample)
	if err != nil {
		decodeSpan.Set("error", err.Error()).End()
		return nil, SolveStats{}, err
	}
	decodeSpan.Set("repaired", repaired).End()
	if repaired {
		opt.Obs.Counter("qlrb.repairs").Inc()
	}
	// Mandatory trust-but-verify gate: the decoded (and possibly
	// repaired) plan is re-checked from scratch against the instance and
	// migration budget by the independent verifier before it leaves this
	// package. Decode/Repair are supposed to guarantee this — the gate is
	// what turns "supposed to" into "checked on every solve".
	if rep := verify.Plan(in, plan, opt.Build.K, verify.Options{}); !rep.Ok() {
		opt.Obs.Counter("qlrb.rejected_plans").Inc()
		opt.Obs.Emit("qlrb.reject", map[string]any{"violation": rep.Violations[0].String()})
		return nil, SolveStats{}, fmt.Errorf("qlrb: decoded plan failed verification: %w", rep.Err())
	}
	ms := enc.Model.Stats()
	stats := SolveStats{
		Qubits:          ms.Vars,
		Constraints:     ms.Constraints,
		EqConstraints:   ms.EqConstraints,
		IneqConstraints: ms.IneqConstraints,
		SampleFeasible:  res.Feasible,
		Repaired:        repaired,
		Objective:       res.Objective,
		Solver:          res.Stats,
	}
	return plan, stats, nil
}

// Quantum is a reusable rebalancer with fixed options; it satisfies the
// balancer.Rebalancer interface so the experiment harness can treat
// quantum-hybrid and classical methods uniformly.
type Quantum struct {
	// Label is the method name used in tables (e.g. "Q_CQM1_k1").
	Label string
	// Opts configures building and solving.
	Opts SolveOptions
	// LastStats records the most recent solve's statistics.
	LastStats SolveStats
}

// NewQuantum builds a named quantum rebalancer for a formulation, a
// migration cap k, and hybrid solver options.
func NewQuantum(label string, form Formulation, k int, h hybrid.Options) *Quantum {
	return &Quantum{
		Label: label,
		Opts: SolveOptions{
			Build:  BuildOptions{Form: form, K: k},
			Hybrid: h,
		},
	}
}

// Name returns the method label.
func (q *Quantum) Name() string { return q.Label }

// Rebalance solves the instance and returns a feasible migration plan.
func (q *Quantum) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	plan, stats, err := Solve(ctx, in, q.Opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.Label, err)
	}
	q.LastStats = stats
	return plan, nil
}

package qlrb

import (
	"context"
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
)

// SolveOptions configures an end-to-end quantum-hybrid rebalancing solve.
type SolveOptions struct {
	Build  BuildOptions
	Hybrid hybrid.Options
	// NoWarmStart disables seeding the sampler with the identity plan
	// (every task stays home), which is feasible for every K >= 0 and is
	// the natural warm start for a REbalancing problem.
	NoWarmStart bool
	// WarmPlans are additional warm starts, typically the plans of
	// classical algorithms — the paper runs the classical methods first
	// to guide the hybrid experiments, and cloud hybrid solvers likewise
	// seed their samplers classically. Plans exceeding the migration cap
	// are projected onto it before encoding; unencodable plans (e.g.
	// inflow into a pinned process) are skipped.
	WarmPlans []*lrp.Plan
	// Wrap, when non-nil, decorates the hybrid engine built for this
	// solve (after warm starts and pair moves are resolved into it) —
	// the attachment point for resilience middleware
	// (resilient.Policy.Wrap) or any other solve.Solver decorator.
	Wrap func(solve.Solver) solve.Solver
	// Obs, when non-nil, receives the full workflow trace: qlrb.build /
	// qlrb.solve / qlrb.decode spans plus every solver-internal counter
	// (passed down via solve.WithObs). Nil disables instrumentation.
	Obs *obs.Registry
}

// SolveStats reports everything the paper's tables need about one solve.
type SolveStats struct {
	// Qubits is the number of binary variables (logical qubits).
	Qubits int
	// Constraints is the total constraint count.
	Constraints int
	// EqConstraints and IneqConstraints split it by sense.
	EqConstraints, IneqConstraints int
	// SampleFeasible reports whether the raw best sample satisfied the
	// CQM (before any plan-level repair).
	SampleFeasible bool
	// Repaired reports whether plan-level projection was needed.
	Repaired bool
	// Objective is the CQM objective of the returned sample.
	Objective float64
	// Solver carries the engine's timing and work counters.
	Solver solve.Stats
}

// Pipeline returns the staged pipeline equivalent of the options: the
// monolithic Solve path expressed as the shared Pipeline stages.
func (opt SolveOptions) Pipeline() *Pipeline {
	return &Pipeline{
		Build:       opt.Build,
		Hybrid:      opt.Hybrid,
		NoWarmStart: opt.NoWarmStart,
		WarmPlans:   opt.WarmPlans,
		Wrap:        opt.Wrap,
		Obs:         opt.Obs,
	}
}

// Solve builds the CQM for in, runs the hybrid engine, and decodes the
// best sample into a guaranteed-feasible migration plan. Cancelling ctx
// stops the solve at the next sweep boundary; the best sample collected
// so far is still decoded (Stats.Solver.Interrupted reports the cut).
//
// Solve is a thin wrapper over the shared staged Pipeline — the same
// build → sample → decode → verify stages the hedged and sharded paths
// run through.
func Solve(ctx context.Context, in *lrp.Instance, opt SolveOptions) (*lrp.Plan, SolveStats, error) {
	return opt.Pipeline().Run(ctx, in)
}

// Quantum is a reusable rebalancer with fixed options; it satisfies the
// balancer.Rebalancer interface so the experiment harness can treat
// quantum-hybrid and classical methods uniformly.
type Quantum struct {
	// Label is the method name used in tables (e.g. "Q_CQM1_k1").
	Label string
	// Opts configures building and solving.
	Opts SolveOptions
	// LastStats records the most recent solve's statistics.
	LastStats SolveStats
}

// NewQuantum builds a named quantum rebalancer for a formulation, a
// migration cap k, and hybrid solver options.
func NewQuantum(label string, form Formulation, k int, h hybrid.Options) *Quantum {
	return &Quantum{
		Label: label,
		Opts: SolveOptions{
			Build:  BuildOptions{Form: form, K: k},
			Hybrid: h,
		},
	}
}

// Name returns the method label.
func (q *Quantum) Name() string { return q.Label }

// Rebalance solves the instance and returns a feasible migration plan.
func (q *Quantum) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	plan, stats, err := Solve(ctx, in, q.Opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.Label, err)
	}
	q.LastStats = stats
	return plan, nil
}

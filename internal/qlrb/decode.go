package qlrb

import (
	"fmt"

	"repro/internal/cqm"
	"repro/internal/lrp"
)

// Decode converts a solver sample (one bool per model variable) into a
// migration plan. For QCQM1 the retained diagonal counts are inferred as
// n minus the tasks migrated away. The raw decoded matrix may violate
// feasibility when the sample is infeasible; see DecodeRepaired.
func (enc *Encoded) Decode(sample []bool) (*lrp.Plan, error) {
	if len(sample) != enc.Model.NumVars() {
		return nil, fmt.Errorf("qlrb: sample has %d bits, model has %d variables", len(sample), enc.Model.NumVars())
	}
	m := enc.in.NumProcs()
	p := lrp.ZeroPlan(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			base := enc.vars[i][j]
			if base < 0 {
				continue
			}
			count := 0
			for l, c := range enc.coefs {
				if sample[int(base)+l] {
					count += c
				}
			}
			p.X[i][j] = count
		}
	}
	if enc.form == QCQM1 {
		for j := 0; j < m; j++ {
			out := 0
			for i := 0; i < m; i++ {
				if i != j {
					out += p.X[i][j]
				}
			}
			p.X[j][j] = enc.n - out
		}
	}
	return p, nil
}

// DecodeRepaired decodes a sample and projects it onto the feasible set:
// column sums are repaired to conserve tasks and the migration cap K is
// enforced. repaired reports whether any projection was necessary (it is
// false for samples that were already feasible). This guarantees the
// caller always receives a valid plan, mirroring the paper's protocol of
// using only feasible CQM-solver outputs.
func (enc *Encoded) DecodeRepaired(sample []bool) (p *lrp.Plan, repaired bool, err error) {
	p, err = enc.Decode(sample)
	if err != nil {
		return nil, false, err
	}
	if p.Validate(enc.in) != nil {
		repaired = true
		if err := p.Repair(enc.in); err != nil {
			return nil, true, fmt.Errorf("qlrb: sample unrepairable: %w", err)
		}
	}
	if enc.k >= 0 && p.Migrated() > enc.k {
		repaired = true
		p.CapMigrations(enc.in, enc.k)
	}
	return p, repaired, nil
}

// EncodePlan produces the sample bits corresponding to a feasible plan —
// the inverse of Decode. It is used for warm starts and in tests as a
// round-trip property. It returns an error if the plan is invalid for
// the encoded instance or, for pinned formulations, if the plan migrates
// tasks into an eliminated pair.
func (enc *Encoded) EncodePlan(p *lrp.Plan) ([]bool, error) {
	if err := p.Validate(enc.in); err != nil {
		return nil, err
	}
	m := enc.in.NumProcs()
	sample := make([]bool, enc.Model.NumVars())
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			base := enc.vars[i][j]
			if base < 0 {
				if i != j && p.X[i][j] != 0 {
					return nil, fmt.Errorf("qlrb: plan moves %d tasks into eliminated pair (%d,%d)", p.X[i][j], i, j)
				}
				continue
			}
			bits, err := Encode(p.X[i][j], enc.coefs)
			if err != nil {
				return nil, fmt.Errorf("qlrb: pair (%d,%d): %w", i, j, err)
			}
			for l, b := range bits {
				sample[int(base)+l] = b
			}
		}
	}
	return sample, nil
}

// ConservationPairs returns variable pairs whose co-flip preserves the
// column (task-conservation) structure: each off-diagonal bit is paired
// with the same-coefficient diagonal bit of its source process. Only the
// full formulation (QCQM2) has diagonal variables; for QCQM1 the result
// is empty because conservation is handled by inference and single flips
// already preserve it.
func (enc *Encoded) ConservationPairs() [][2]cqm.VarID {
	if enc.form != QCQM2 {
		return nil
	}
	m := enc.in.NumProcs()
	pairs := make([][2]cqm.VarID, 0, m*(m-1)*len(enc.coefs))
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j || enc.vars[i][j] < 0 || enc.vars[j][j] < 0 {
				continue
			}
			for l := range enc.coefs {
				pairs = append(pairs, [2]cqm.VarID{
					enc.vars[i][j] + cqm.VarID(l),
					enc.vars[j][j] + cqm.VarID(l),
				})
			}
		}
	}
	return pairs
}

package qlrb

import (
	"context"
	"testing"
	"time"

	"repro/internal/lrp"
)

// TestSolveCancelledContextYieldsFeasiblePlan pins the plan-level
// cancellation contract at its extreme point: a context cancelled before
// the solve starts must still produce a plan that validates against the
// instance (the decoder repairs the best partial sample), never a
// constraint-violating plan.
func TestSolveCancelledContextYieldsFeasiblePlan(t *testing.T) {
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, form := range []Formulation{QCQM1, QCQM2} {
		plan, stats, err := Solve(ctx, in, SolveOptions{
			Build:  BuildOptions{Form: form, K: -1},
			Hybrid: fastHybrid(3),
		})
		if err != nil {
			t.Fatalf("%v: cancelled solve errored: %v", form, err)
		}
		if err := plan.Validate(in); err != nil {
			t.Fatalf("%v: cancelled solve produced an invalid plan: %v", form, err)
		}
		if !stats.Solver.Interrupted {
			t.Errorf("%v: interruption not reported", form)
		}
	}
}

// TestSolveCancellationAtArbitraryPointsProperty is the property test of
// the ISSUE's cancellation contract: whenever the context is cancelled —
// before the solve, between sweeps, or never quite in time — the result
// is either an error or a plan that validates against the instance.
// Cancellation points are exercised with a spread of real-time deadlines
// racing a deliberately slow solve.
func TestSolveCancellationAtArbitraryPointsProperty(t *testing.T) {
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	delays := []time.Duration{
		0, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	}
	for trial, d := range delays {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		h := fastHybrid(int64(trial + 1))
		h.Reads = 4
		h.Sweeps = 2000
		plan, _, err := Solve(ctx, in, SolveOptions{
			Build:  BuildOptions{Form: QCQM2, K: -1},
			Hybrid: h,
		})
		cancel()
		if err != nil {
			continue // an explicit error is within the contract
		}
		if verr := plan.Validate(in); verr != nil {
			t.Fatalf("delay %v: invalid plan after cancellation: %v", d, verr)
		}
	}
}

// TestQuantumRebalancerCancelled checks the Rebalancer-level contract:
// a cancelled quantum rebalance returns a feasible plan or an error,
// never a constraint-violating plan.
func TestQuantumRebalancerCancelled(t *testing.T) {
	in := lrp.MustInstance([]int{8, 8, 8, 8}, []float64{1, 1, 1, 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := NewQuantum("Q_CQM1", QCQM1, 4, fastHybrid(9))
	plan, err := q.Rebalance(ctx, in)
	if err != nil {
		return
	}
	if verr := plan.Validate(in); verr != nil {
		t.Fatalf("cancelled rebalance produced an invalid plan: %v", verr)
	}
	if plan.Migrated() > 4 {
		t.Fatalf("cancelled rebalance broke the migration cap: %d > 4", plan.Migrated())
	}
}

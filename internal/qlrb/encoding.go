// Package qlrb implements the paper's primary contribution: the
// transformation of the Load Rebalancing Problem into constrained
// quadratic models solvable by a hybrid classical-quantum solver
// (Section IV), in the two variants the paper evaluates:
//
//   - Q_CQM1 — the reduced formulation: diagonal (retained-task)
//     variables are eliminated by inference, leaving only inequality
//     constraints;
//   - Q_CQM2 — the full formulation: variables for every (destination,
//     source) pair, with M equality and M+1 inequality constraints.
//
// Task counts are encoded with the paper's non-standard binary
// representation: the coefficient set
//
//	C = {2^0, 2^1, ..., 2^(floor(log2 n)-1)} ∪ {n - 2^floor(log2 n) + 1}
//
// whose members sum exactly to n, so that "all coefficients on" means
// "all n tasks" with no overshoot.
package qlrb

import "fmt"

// Coefficients returns the paper's coefficient set C for a per-process
// task count n, in ascending order with the adjusted top coefficient
// last. The coefficients sum to exactly n and every integer in [0, n] is
// a subset sum (see Encode). It panics if n < 1.
func Coefficients(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("qlrb: Coefficients requires n >= 1, got %d", n))
	}
	k := floorLog2(n)
	coefs := make([]int, 0, k+1)
	for l := 0; l < k; l++ {
		coefs = append(coefs, 1<<l)
	}
	coefs = append(coefs, n-(1<<k)+1)
	return coefs
}

// NumCoefficients returns |C| = floor(log2 n) + 1, the per-pair bit count
// of the formulations (the paper's qubit formulas use this factor).
func NumCoefficients(n int) int { return floorLog2(n) + 1 }

func floorLog2(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

// Encode returns a bit vector over coefs (as returned by Coefficients
// for some n) whose selected coefficients sum to v. It returns an error
// when v is outside [0, sum(coefs)].
//
// The construction: the top (adjusted) coefficient r = n - 2^k + 1
// satisfies r <= 2^k, and the remaining coefficients 1,2,...,2^(k-1)
// represent any value in [0, 2^k - 1] in standard binary. If v >= r we
// take r and represent v - r (<= 2^k - 1) in binary; otherwise v itself
// (<= r - 1 <= 2^k - 1) is represented in binary.
func Encode(v int, coefs []int) ([]bool, error) {
	total := 0
	for _, c := range coefs {
		total += c
	}
	if v < 0 || v > total {
		return nil, fmt.Errorf("qlrb: value %d out of range [0, %d]", v, total)
	}
	bits := make([]bool, len(coefs))
	top := len(coefs) - 1
	rest := v
	if r := coefs[top]; v >= r {
		bits[top] = true
		rest = v - r
	}
	for l := top - 1; l >= 0; l-- {
		if rest >= coefs[l] {
			bits[l] = true
			rest -= coefs[l]
		}
	}
	if rest != 0 {
		return nil, fmt.Errorf("qlrb: internal error encoding %d with %v", v, coefs)
	}
	return bits, nil
}

// Decode returns the sum of the coefficients selected by bits.
func Decode(bits []bool, coefs []int) int {
	v := 0
	for l, b := range bits {
		if b {
			v += coefs[l]
		}
	}
	return v
}

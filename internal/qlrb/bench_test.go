package qlrb

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lrp"
)

func benchInstance(m, n int) *lrp.Instance {
	weights := make([]float64, m)
	for i := range weights {
		weights[i] = float64(1 + i%7)
	}
	in, err := lrp.UniformInstance(n, weights)
	if err != nil {
		panic(err)
	}
	return in
}

func BenchmarkBuild(b *testing.B) {
	for _, shape := range []struct {
		m, n int
		form Formulation
	}{
		{8, 50, QCQM1}, {8, 50, QCQM2},
		{32, 208, QCQM1}, {32, 208, QCQM2},
	} {
		in := benchInstance(shape.m, shape.n)
		b.Run(fmt.Sprintf("%v_M%d_n%d", shape.form, shape.m, shape.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(in, BuildOptions{Form: shape.form, K: 100}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeRepaired(b *testing.B) {
	in := benchInstance(32, 208)
	enc, err := Build(in, BuildOptions{Form: QCQM1, K: 500})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sample := make([]bool, enc.Model.NumVars())
	for i := range sample {
		sample[i] = rng.Intn(8) == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.DecodeRepaired(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePlan(b *testing.B) {
	in := benchInstance(32, 208)
	enc, err := Build(in, BuildOptions{Form: QCQM2, K: -1})
	if err != nil {
		b.Fatal(err)
	}
	plan := lrp.NewPlan(in)
	plan.Move(0, 31, 17)
	plan.Move(5, 31, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodePlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoefficients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Coefficients(2048)
	}
}

package optimize

import (
	"math"
	"testing"
)

func BenchmarkNelderMeadRosenbrock(b *testing.B) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		if _, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxEvals: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSearch2D(b *testing.B) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * math.Cos(x[1]) }
	for i := 0; i < b.N; i++ {
		if _, err := GridSearch(f, []float64{0, 0}, []float64{3, 3}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// Package optimize provides derivative-free optimization of continuous
// functions. It exists for the gate-based solver path (Section VI of the
// paper): QAOA's variational parameters are tuned classically, and
// Nelder-Mead is the standard gradient-free choice for the noisy,
// low-dimensional landscapes QAOA produces.
package optimize

import (
	"fmt"
	"math"
	"sort"
)

// Options configures a Nelder-Mead run.
type Options struct {
	// MaxEvals caps objective evaluations (0 = 500 per dimension).
	MaxEvals int
	// Tol stops the search when the simplex's objective spread falls
	// below it (0 = 1e-8).
	Tol float64
	// Step is the initial simplex edge length (0 = 0.5).
	Step float64
	// Stop, when non-nil, is polled before every simplex step; once it
	// returns true the search winds down and the best vertex found so
	// far is returned with Converged = false (see internal/solve).
	Stop func() bool
}

// Result reports the optimum found.
type Result struct {
	// X is the best parameter vector.
	X []float64
	// F is the objective at X.
	F float64
	// Evals counts objective evaluations used.
	Evals int
	// Converged reports whether the tolerance was met before the
	// evaluation budget ran out.
	Converged bool
}

// NelderMead minimizes f starting from x0 using the standard
// reflection/expansion/contraction/shrink simplex method with adaptive
// coefficients. It returns an error for an empty starting point.
func NelderMead(f func([]float64) float64, x0 []float64, opt Options) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("optimize: empty starting point")
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 500 * n
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.Step <= 0 {
		opt.Step = 0.5
	}
	// Adaptive coefficients (Gao & Han) behave better in d > 2.
	nd := float64(n)
	alpha := 1.0
	beta := 1.0 + 2.0/nd
	gamma := 0.75 - 1.0/(2.0*nd)
	delta := 1.0 - 1.0/nd

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), eval(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += opt.Step
		simplex[i+1] = vertex{x, eval(x)}
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	converged := false
	for evals < opt.MaxEvals {
		if opt.Stop != nil && opt.Stop() {
			break // interrupted: keep the best vertex found so far
		}
		sort.SliceStable(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		if math.Abs(simplex[n].f-simplex[0].f) < opt.Tol {
			converged = true
			break
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j] / nd
			}
		}
		worst := &simplex[n]
		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(trial)
		switch {
		case fr < simplex[0].f:
			// Expansion.
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = centroid[j] + beta*(trial[j]-centroid[j])
			}
			fe := eval(exp)
			if fe < fr {
				worst.x, worst.f = exp, fe
			} else {
				worst.x, worst.f = append([]float64(nil), trial...), fr
			}
		case fr < simplex[n-1].f:
			worst.x, worst.f = append([]float64(nil), trial...), fr
		default:
			// Contraction (outside if the reflected point improved on
			// the worst, inside otherwise).
			con := make([]float64, n)
			if fr < worst.f {
				for j := range con {
					con[j] = centroid[j] + gamma*(trial[j]-centroid[j])
				}
			} else {
				for j := range con {
					con[j] = centroid[j] - gamma*(centroid[j]-worst.x[j])
				}
			}
			fc := eval(con)
			if fc < math.Min(fr, worst.f) {
				worst.x, worst.f = con, fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + delta*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
					if evals >= opt.MaxEvals {
						break
					}
				}
			}
		}
	}
	sort.SliceStable(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{
		X:         append([]float64(nil), simplex[0].x...),
		F:         simplex[0].f,
		Evals:     evals,
		Converged: converged,
	}, nil
}

// GridSearch evaluates f on a regular grid over the box [lo,hi]^dims
// with points samples per axis and returns the best point; it is the
// robust (if expensive) initializer for QAOA's periodic, multi-modal
// parameter landscape, typically followed by NelderMead refinement.
func GridSearch(f func([]float64) float64, lo, hi []float64, samples int) (Result, error) {
	dims := len(lo)
	if dims == 0 || dims != len(hi) {
		return Result{}, fmt.Errorf("optimize: bad grid bounds (%d vs %d dims)", dims, len(hi))
	}
	if samples < 2 {
		return Result{}, fmt.Errorf("optimize: need at least 2 samples per axis, got %d", samples)
	}
	x := make([]float64, dims)
	idx := make([]int, dims)
	best := Result{F: math.Inf(1)}
	for {
		for d := 0; d < dims; d++ {
			x[d] = lo[d] + (hi[d]-lo[d])*float64(idx[d])/float64(samples-1)
		}
		v := f(x)
		best.Evals++
		if v < best.F {
			best.F = v
			best.X = append(best.X[:0], x...)
		}
		// Advance the mixed-radix counter.
		d := 0
		for ; d < dims; d++ {
			idx[d]++
			if idx[d] < samples {
				break
			}
			idx[d] = 0
		}
		if d == dims {
			break
		}
	}
	if best.X == nil {
		// Every cell scored +Inf (possible when a cancelled callback
		// short-circuits evaluation): fall back to the first grid point
		// so callers always receive valid coordinates.
		best.X = append([]float64(nil), lo...)
	}
	best.Converged = true
	return best, nil
}

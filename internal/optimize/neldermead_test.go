package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// min (x-3)^2 + (y+1)^2.
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Fatalf("X = %v, want (3,-1)", res.X)
	}
	if res.F > 1e-6 {
		t.Fatalf("F = %v", res.F)
	}
	if !res.Converged || res.Evals == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxEvals: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Fatalf("Rosenbrock min at %v, want (1,1)", res.X)
	}
}

func TestNelderMeadOneDimension(t *testing.T) {
	f := func(x []float64) float64 { return math.Cos(x[0]) }
	res, err := NelderMead(f, []float64{2.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum of cos near pi.
	if math.Abs(res.X[0]-math.Pi) > 1e-3 {
		t.Fatalf("X = %v, want pi", res.X)
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Fatal("accepted empty start")
	}
}

func TestNelderMeadBudget(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := NelderMead(f, []float64{100}, Options{MaxEvals: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 6 { // initial simplex + a step may slightly overshoot
		t.Fatalf("Evals = %d, budget 5", res.Evals)
	}
	if res.Converged {
		t.Fatal("claimed convergence on a tiny budget far from optimum")
	}
}

func TestNelderMeadNeverWorseThanStartProperty(t *testing.T) {
	f := func(seedX, seedY int16) bool {
		x0 := []float64{float64(seedX) / 100, float64(seedY) / 100}
		obj := func(x []float64) float64 {
			return math.Abs(x[0]-1) + (x[1]-2)*(x[1]-2) + math.Sin(x[0]*3)*0.1
		}
		res, err := NelderMead(obj, x0, Options{MaxEvals: 400})
		if err != nil {
			return false
		}
		return res.F <= obj(x0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGridSearchFindsBasin(t *testing.T) {
	f := func(x []float64) float64 {
		return -math.Exp(-((x[0]-0.7)*(x[0]-0.7) + (x[1]-0.2)*(x[1]-0.2)))
	}
	res, err := GridSearch(f, []float64{0, 0}, []float64{1, 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.7) > 0.1 || math.Abs(res.X[1]-0.2) > 0.1 {
		t.Fatalf("grid best %v, want near (0.7,0.2)", res.X)
	}
	if res.Evals != 121 {
		t.Fatalf("Evals = %d, want 121", res.Evals)
	}
}

func TestGridSearchValidation(t *testing.T) {
	f := func([]float64) float64 { return 0 }
	if _, err := GridSearch(f, nil, nil, 3); err == nil {
		t.Fatal("accepted empty bounds")
	}
	if _, err := GridSearch(f, []float64{0}, []float64{1, 2}, 3); err == nil {
		t.Fatal("accepted mismatched bounds")
	}
	if _, err := GridSearch(f, []float64{0}, []float64{1}, 1); err == nil {
		t.Fatal("accepted single sample")
	}
}

func TestGridThenNelderMeadPipeline(t *testing.T) {
	// The intended QAOA usage: coarse grid, then refine.
	f := func(x []float64) float64 {
		return math.Sin(5*x[0])*math.Cos(3*x[1]) + 0.1*x[0]*x[0] + 0.1*x[1]*x[1]
	}
	g, err := GridSearch(f, []float64{-2, -2}, []float64{2, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NelderMead(f, g.X, Options{Step: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > g.F+1e-12 {
		t.Fatalf("refinement made things worse: %v -> %v", g.F, res.F)
	}
}

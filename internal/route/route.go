// Package route is the failure-aware backend-routing layer of the
// serving path: a load-factor-weighted balancer over the repository's
// solver backends (sa, tabu, exact, hybrid, quantum — anything
// implementing solve.Solver), in the spirit of client-side weighted
// round-robin cluster balancers. Each backend is a weighted endpoint;
// the weight is continuously recomputed from what the router actually
// observes — per-solve latency, errors, recovered panics, and
// verification rejects — plus the external health signals the rest of
// the stack already produces (hedge.Tallies mirrored into internal/obs,
// and the resilient circuit breaker's state).
//
// Design rules:
//
//   - Trust nothing: every backend runs behind solve.Protected and every
//     reply is re-checked by internal/verify before it counts as a
//     success. A corrupted backend is a failing backend.
//   - Degrade, don't ban: a floor weight guarantees every backend keeps
//     receiving a trickle of probe traffic, so a recovered backend earns
//     its share back instead of being starved forever. Failure history
//     is an EWMA, not a cumulative tally, for the same reason.
//   - Fail over: a solve that fails on the picked backend is retried on
//     the next-weighted one (each backend at most once per solve) before
//     the router gives up.
//   - One source of truth: the router publishes its per-backend tallies
//     and current weights into the obs registry ("route.backend.<name>.*"),
//     the same registry /metrics renders — what the operator sees is what
//     the router acts on.
package route

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cqm"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/solve"
	"repro/internal/verify"
)

// ErrNoBackends marks a router constructed without backends.
var ErrNoBackends = errors.New("route: no backends")

// ErrAllFailed marks a solve that failed on every backend the failover
// budget allowed. Match with errors.Is; the error joins the per-backend
// causes.
var ErrAllFailed = errors.New("route: all routed backends failed")

// ErrTooLarge marks a model rejected by a Gated size guard before the
// inner backend ran. It is a routing failure (the backend's weight
// drops), not a caller error: other backends can still serve the solve.
var ErrTooLarge = errors.New("route: model exceeds backend size limit")

// Defaults of Options.
const (
	// DefaultFloor is the minimum share of traffic every backend keeps
	// receiving as probes, however degraded it looks.
	DefaultFloor = 0.05
	// DefaultAlpha is the EWMA step for failure-rate and latency
	// estimates: one observation moves the estimate 25% of the way.
	DefaultAlpha = 0.25
)

// breakerHolder is the optional interface a resilient-wrapped backend
// exposes; the router uses it to read circuit-breaker state directly
// (an open breaker pins the backend to its floor weight).
type breakerHolder interface{ Policy() *resilient.Policy }

// Options tunes a Router.
type Options struct {
	// Floor is the minimum normalized weight per backend
	// (DefaultFloor when 0; values are clamped to [0, 1/len(backends)]).
	Floor float64
	// Alpha is the EWMA step for the failure-rate and latency estimates
	// (DefaultAlpha when 0).
	Alpha float64
	// Failover caps how many distinct backends one Solve may try
	// (default: all of them; 1 disables failover).
	Failover int
	// Verify tunes the independent verification every routed reply must
	// pass before it counts as a success.
	Verify verify.Options
	// Obs, when non-nil, receives the router's per-backend tallies and
	// weights in addition to any per-solve registry: weights are
	// published after every recompute, so /metrics always shows the
	// live routing table. The router also reads hedge.backend.<name>.*
	// counters from it — tallies a hedged race recorded against the
	// same backend names feed the routing weights.
	Obs *obs.Registry
	// Name overrides the solver name ("route" when empty).
	Name string
}

// endpoint is one backend plus its routing state.
type endpoint struct {
	name   string
	solver solve.Solver // Protected
	raw    solve.Solver // as registered (breaker introspection)

	// EWMA estimates, guarded by the router mutex.
	failEWMA float64 // in [0,1]: 0 = always verified-ok, 1 = always failing
	latEWMA  float64 // milliseconds; 0 = no observation yet
	weight   float64 // last computed normalized weight
	current  float64 // smooth weighted round-robin accumulator

	// Cumulative tallies (reporting).
	picks, ok, errs, rejects, panics int64

	// Last-seen external counter values (delta tracking for Sync).
	extSeen map[string]int64
}

// Tally is one backend's cumulative routing record, plus its live
// weight and health estimates.
type Tally struct {
	// Backend is the backend's Name().
	Backend string
	// Picks counts solves routed to the backend (failover attempts
	// included).
	Picks int64
	// OK counts verified successful solves.
	OK int64
	// Errors counts failed attempts (panics included).
	Errors int64
	// Rejects counts replies discarded by independent verification.
	Rejects int64
	// Panics counts recovered panics (a subset of Errors).
	Panics int64
	// FailRate is the current failure-rate EWMA in [0, 1].
	FailRate float64
	// LatencyMs is the current latency EWMA in milliseconds (0 before
	// the first observation).
	LatencyMs float64
	// Weight is the backend's current normalized routing weight.
	Weight float64
}

// Router is a weighted, failure-aware balancer over solver backends.
// It implements solve.Solver, so it drops into any pipeline slot a
// single backend fits (qlrb.Pipeline.Solver, dlb, the serve layer).
// Safe for concurrent use.
type Router struct {
	opt Options

	mu    sync.Mutex
	eps   []*endpoint
	picks int64
}

// New builds a router over the given backends. Backend names must be
// unique (they key the obs metrics and the external tally sync). Every
// backend is wrapped in solve.Protected: a panicking backend loses
// weight instead of crashing the process.
func New(opt Options, backends ...solve.Solver) (*Router, error) {
	if len(backends) == 0 {
		return nil, ErrNoBackends
	}
	if opt.Floor <= 0 {
		opt.Floor = DefaultFloor
	}
	if max := 1 / float64(len(backends)); opt.Floor > max {
		opt.Floor = max
	}
	if opt.Alpha <= 0 || opt.Alpha > 1 {
		opt.Alpha = DefaultAlpha
	}
	if opt.Failover <= 0 || opt.Failover > len(backends) {
		opt.Failover = len(backends)
	}
	if opt.Name == "" {
		opt.Name = "route"
	}
	r := &Router{opt: opt}
	seen := make(map[string]bool, len(backends))
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("route: backend %d is nil", i)
		}
		name := b.Name()
		if seen[name] {
			return nil, fmt.Errorf("route: duplicate backend name %q", name)
		}
		seen[name] = true
		r.eps = append(r.eps, &endpoint{
			name:    name,
			solver:  solve.Protected(b),
			raw:     b,
			weight:  1 / float64(len(backends)),
			extSeen: make(map[string]int64),
		})
	}
	return r, nil
}

// Name implements solve.Solver.
func (r *Router) Name() string { return r.opt.Name }

// Tallies returns a snapshot of every backend's routing record, in
// registration order.
func (r *Router) Tallies() []Tally {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recomputeLocked()
	out := make([]Tally, len(r.eps))
	for i, e := range r.eps {
		out[i] = Tally{
			Backend: e.name, Picks: e.picks, OK: e.ok, Errors: e.errs,
			Rejects: e.rejects, Panics: e.panics,
			FailRate: e.failEWMA, LatencyMs: e.latEWMA, Weight: e.weight,
		}
	}
	return out
}

// Weights returns the current normalized weight per backend name.
func (r *Router) Weights() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range r.Tallies() {
		out[t.Backend] = t.Weight
	}
	return out
}

// breakerOpen reports whether the endpoint's backend sits behind an
// open resilient circuit breaker right now.
func breakerOpen(e *endpoint) bool {
	h, ok := e.raw.(breakerHolder)
	if !ok {
		return false
	}
	p := h.Policy()
	return p != nil && p.Breaker().State() == resilient.Open
}

// syncExternalLocked folds tallies other layers recorded against the
// same backend names into the failure EWMAs. The hedged solver mirrors
// its per-backend race record into the obs registry as
// "hedge.backend.<name>.{wins,rejects,errors,panics}" counters; the
// router treats each new win as a success observation and each new
// reject/error/panic as a failure observation, so a backend that only
// ever loses hedged races arrives at the router pre-downweighted.
func (r *Router) syncExternalLocked() {
	reg := r.opt.Obs
	if reg == nil {
		return
	}
	for _, e := range r.eps {
		var good, bad int64
		for _, m := range [...]struct {
			metric string
			bad    bool
		}{
			{"wins", false}, {"rejects", true}, {"errors", true}, {"panics", true},
		} {
			name := "hedge.backend." + e.name + "." + m.metric
			v := reg.Counter(name).Value()
			d := v - e.extSeen[name]
			e.extSeen[name] = v
			if d <= 0 {
				continue
			}
			if m.bad {
				bad += d
			} else {
				good += d
			}
		}
		if good+bad == 0 {
			continue
		}
		// One batched EWMA step toward the batch's failure fraction,
		// with strength proportional to the batch size (capped at a
		// full step so a flood cannot overshoot).
		target := float64(bad) / float64(good+bad)
		step := r.opt.Alpha * float64(good+bad)
		if step > 1 {
			step = 1
		}
		e.failEWMA += step * (target - e.failEWMA)
	}
}

// latencyEpsilonMs deadbands the latency factor: latencies are compared
// after adding this epsilon, so sub-millisecond jitter between equally
// fast backends does not move weights, while a genuinely slow backend
// (tens of ms against ms) is still penalized proportionally.
const latencyEpsilonMs = 1.0

// recomputeLocked refreshes every endpoint's normalized weight:
//
//	raw_b  = (1 - fail_b) * min(1, (ref+ε)/(lat_b+ε))   (ref = fastest EWMA)
//	raw_b  = 0 when b's circuit breaker is open
//	w_b    = max(Floor, raw_b / Σ raw)                  then renormalized
//
// so a healthy fast backend takes most of the traffic, a failing or
// slow one decays toward the floor, an open breaker pins to the floor,
// and the floor keeps probe traffic flowing to everyone.
func (r *Router) recomputeLocked() {
	r.syncExternalLocked()
	ref := 0.0
	for _, e := range r.eps {
		if e.latEWMA > 0 && (ref == 0 || e.latEWMA < ref) {
			ref = e.latEWMA
		}
	}
	raws := make([]float64, len(r.eps))
	sum := 0.0
	for i, e := range r.eps {
		raw := 1 - e.failEWMA
		if raw < 0 {
			raw = 0
		}
		if ref > 0 && e.latEWMA > ref {
			raw *= (ref + latencyEpsilonMs) / (e.latEWMA + latencyEpsilonMs)
		}
		if breakerOpen(e) {
			raw = 0
		}
		raws[i] = raw
		sum += raw
	}
	if sum <= 0 {
		// Everything looks dead: route uniformly (pure probing).
		for _, e := range r.eps {
			e.weight = 1 / float64(len(r.eps))
		}
	} else {
		total := 0.0
		for i, e := range r.eps {
			w := raws[i] / sum
			if w < r.opt.Floor {
				w = r.opt.Floor
			}
			e.weight = w
			total += w
		}
		for _, e := range r.eps {
			e.weight /= total
		}
	}
	for _, e := range r.eps {
		r.opt.Obs.Gauge("route.backend." + e.name + ".weight").Set(e.weight)
		r.opt.Obs.Gauge("route.backend." + e.name + ".fail_ewma").Set(e.failEWMA)
		r.opt.Obs.Gauge("route.backend." + e.name + ".latency_ewma_ms").Set(e.latEWMA)
	}
}

// pick selects the next endpoint by smooth weighted round-robin over
// the current weights, skipping endpoints in tried. The smooth variant
// spreads picks evenly through time (no bursts to one backend), and is
// deterministic — tests can pin exact shares.
func (r *Router) pick(tried map[*endpoint]bool) *endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recomputeLocked()
	var best *endpoint
	total := 0.0
	for _, e := range r.eps {
		if tried[e] {
			continue
		}
		e.current += e.weight
		total += e.weight
		if best == nil || e.current > best.current {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	best.current -= total
	best.picks++
	r.picks++
	return best
}

// observe records one routed attempt's outcome into the endpoint's
// EWMAs, tallies, and the obs registries (the router's own and the
// per-solve one, when different).
func (r *Router) observe(e *endpoint, lat time.Duration, outcome string, solveObs *obs.Registry) {
	r.mu.Lock()
	a := r.opt.Alpha
	ms := float64(lat) / float64(time.Millisecond)
	if e.latEWMA == 0 {
		e.latEWMA = ms
	} else {
		e.latEWMA += a * (ms - e.latEWMA)
	}
	fail := 1.0
	switch outcome {
	case "ok":
		fail = 0
		e.ok++
	case "reject":
		e.rejects++
	case "panic":
		e.panics++
		e.errs++
	default: // "error"
		e.errs++
	}
	e.failEWMA += a * (fail - e.failEWMA)
	r.mu.Unlock()

	for _, reg := range []*obs.Registry{r.opt.Obs, solveObs} {
		if reg == nil {
			continue
		}
		reg.Counter("route.backend." + e.name + ".picks").Inc()
		reg.Counter("route.backend." + e.name + "." + outcome).Inc()
		reg.Histogram("route.backend." + e.name + ".latency_ms").Observe(float64(lat) / float64(time.Millisecond))
		if solveObs == r.opt.Obs {
			break // same registry passed twice: record once
		}
	}
}

// Solve implements solve.Solver: pick the highest-credit backend, run
// it behind panic isolation, verify the reply independently, and fail
// over to the next backend (up to Options.Failover distinct ones) on
// error, panic, or verification reject. A verified-but-infeasible
// reply is honest work — it is returned (downstream repair/decode
// handles infeasibility), and counts as a success for routing.
func (r *Router) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("route: nil model")
	}
	cfg := solve.NewConfig(opts...)
	clk := cfg.Clock
	tried := make(map[*endpoint]bool, r.opt.Failover)
	var causes []error
	for len(tried) < r.opt.Failover {
		if ctx != nil && ctx.Err() != nil {
			causes = append(causes, ctx.Err())
			break
		}
		e := r.pick(tried)
		if e == nil {
			break
		}
		tried[e] = true
		start := clk.Now()
		res, err := e.solver.Solve(ctx, m, opts...)
		lat := clk.Since(start)
		if err != nil {
			outcome := "error"
			if errors.Is(err, solve.ErrPanic) {
				outcome = "panic"
			}
			r.observe(e, lat, outcome, cfg.Obs)
			causes = append(causes, fmt.Errorf("%s: %w", e.name, err))
			continue
		}
		if rep := verify.Sample(m, res, r.opt.Verify); !rep.Ok() {
			r.observe(e, lat, "reject", cfg.Obs)
			if cfg.Obs != nil {
				cfg.Obs.Emit("route.reject", map[string]any{
					"backend": e.name, "violation": rep.Violations[0].String(),
				})
			}
			causes = append(causes, fmt.Errorf("%s: %w", e.name, rep.Err()))
			continue
		}
		r.observe(e, lat, "ok", cfg.Obs)
		return res, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrAllFailed, errors.Join(causes...))
}

// gated is the Solver wrapper produced by Gated.
type gated struct {
	inner   solve.Solver
	maxVars int
}

// Gated bounds the model size a backend accepts: models with more than
// maxVars binary variables are rejected with ErrTooLarge before the
// inner solver runs. The natural use is the quantum state-vector
// backend, whose memory is exponential in the qubit count — behind a
// router, an out-of-range model simply fails over to a classical
// backend and the quantum endpoint's weight decays for that traffic
// mix, while small models keep reaching it.
func Gated(inner solve.Solver, maxVars int) solve.Solver {
	return &gated{inner: inner, maxVars: maxVars}
}

// Name implements solve.Solver, delegating to the wrapped backend.
func (g *gated) Name() string { return g.inner.Name() }

// Solve implements solve.Solver.
func (g *gated) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m != nil && g.maxVars > 0 && m.NumVars() > g.maxVars {
		return nil, fmt.Errorf("%w: %d vars > limit %d (%s)", ErrTooLarge, m.NumVars(), g.maxVars, g.inner.Name())
	}
	return g.inner.Solve(ctx, m, opts...)
}

// serialized is the Solver wrapper produced by Serialized.
type serialized struct {
	mu    sync.Mutex
	inner solve.Solver
}

// Serialized guards a backend that is not safe for concurrent use
// (e.g. quantum.Engine, which records per-solve diagnostics on itself)
// with a mutex, so it can sit behind a router serving concurrent
// workers.
func Serialized(inner solve.Solver) solve.Solver {
	return &serialized{inner: inner}
}

// Name implements solve.Solver, delegating to the wrapped backend.
func (s *serialized) Name() string { return s.inner.Name() }

// Solve implements solve.Solver.
func (s *serialized) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Solve(ctx, m, opts...)
}

package route

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/solve"
)

func model() *cqm.Model {
	m := cqm.New()
	v := m.AddBinary("x")
	m.AddObjectiveLinear(v, 1)
	return m
}

// honest returns a correctly attested result for x.
func honest(m *cqm.Model, x []bool) *solve.Result {
	return &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}
}

// stub is a controllable backend: while degraded it errors (or panics,
// or returns corrupted replies); healthy it answers honestly.
type stub struct {
	name string

	mu       sync.Mutex
	degraded bool
	corrupt  bool
	panics   bool
	solves   int
}

func (s *stub) Name() string { return s.name }

func (s *stub) setDegraded(v bool) {
	s.mu.Lock()
	s.degraded = v
	s.mu.Unlock()
}

func (s *stub) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	s.mu.Lock()
	s.solves++
	degraded, corrupt, panics := s.degraded, s.corrupt, s.panics
	s.mu.Unlock()
	if degraded {
		if panics {
			panic("stub backend crash")
		}
		if corrupt {
			// A reply whose claims do not match its sample: caught only
			// by independent verification.
			return &solve.Result{Sample: []bool{true}, Objective: -5, Feasible: true}, nil
		}
		return nil, errors.New("stub backend unavailable")
	}
	return honest(m, []bool{false}), nil
}

// TestUniformSplitWhenHealthy pins the smooth weighted round-robin on
// equal weights: two healthy backends split traffic evenly.
func TestUniformSplitWhenHealthy(t *testing.T) {
	m := model()
	a, b := &stub{name: "a"}, &stub{name: "b"}
	r, err := New(Options{Failover: 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := r.Solve(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	for _, tl := range r.Tallies() {
		if tl.Picks < n/2-1 || tl.Picks > n/2+1 {
			t.Fatalf("backend %s picks = %d, want ~%d of %d", tl.Backend, tl.Picks, n/2, n)
		}
		if tl.OK != tl.Picks {
			t.Fatalf("backend %s ok = %d, want %d", tl.Backend, tl.OK, tl.Picks)
		}
	}
}

// TestDegradedBackendShedsTrafficThenRecovers is the acceptance
// criterion for failure-aware routing: a backend with a high fault rate
// drops below its fair share while still receiving floor-weight probes,
// then earns its share back once the faults stop.
func TestDegradedBackendShedsTrafficThenRecovers(t *testing.T) {
	m := model()
	good := &stub{name: "good"}
	bad := &stub{name: "bad"}
	bad.setDegraded(true)
	r, err := New(Options{Failover: 1}, good, bad)
	if err != nil {
		t.Fatal(err)
	}

	solveN := func(n int) {
		for i := 0; i < n; i++ {
			// Degraded-phase solves routed to bad fail (Failover: 1
			// isolates the share measurement); that is the point.
			r.Solve(context.Background(), m) //nolint:errcheck
		}
	}

	const degradedN = 300
	solveN(degradedN)
	tallies := func() map[string]Tally {
		out := make(map[string]Tally)
		for _, tl := range r.Tallies() {
			out[tl.Backend] = tl
		}
		return out
	}
	ts := tallies()
	fair := int64(degradedN / 2)
	if ts["bad"].Picks >= fair {
		t.Fatalf("degraded backend kept %d/%d picks, want below fair share %d", ts["bad"].Picks, int64(degradedN), fair)
	}
	if ts["bad"].Picks < 5 {
		t.Fatalf("degraded backend got %d probes, want floor-weight probe traffic", ts["bad"].Picks)
	}
	if w := ts["bad"].Weight; w > 2*DefaultFloor+1e-9 {
		t.Fatalf("degraded backend weight = %g, want pinned near floor %g", w, DefaultFloor)
	}

	// Recovery: faults stop; floor probes succeed, the failure EWMA
	// decays, and the backend's share climbs back.
	bad.setDegraded(false)
	before := ts["bad"].Picks
	const healedN = 500
	solveN(healedN)
	ts = tallies()
	healedPicks := ts["bad"].Picks - before
	if healedPicks < healedN/4 {
		t.Fatalf("recovered backend served %d of %d healed solves, want at least %d", healedPicks, healedN, healedN/4)
	}
	if w := ts["bad"].Weight; w < 0.4 {
		t.Fatalf("recovered backend weight = %g, want >= 0.4", w)
	}
}

// TestFailoverServesFromSecondBackend: a solve that fails on the picked
// backend is retried on the next one and still succeeds.
func TestFailoverServesFromSecondBackend(t *testing.T) {
	m := model()
	bad := &stub{name: "bad"}
	bad.setDegraded(true)
	good := &stub{name: "good"}
	r, err := New(Options{}, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 0 {
		t.Fatalf("failover result = %+v", res)
	}
}

// TestCorruptReplyRejectedAndPanicsContained: verification rejects a
// corrupted reply and panic isolation converts a crash into a loss;
// both are tallied and both fail over.
func TestCorruptReplyRejectedAndPanicsContained(t *testing.T) {
	m := model()
	corrupt := &stub{name: "corrupt", corrupt: true}
	corrupt.setDegraded(true)
	crashing := &stub{name: "crashing", panics: true}
	crashing.setDegraded(true)
	good := &stub{name: "good"}
	r, err := New(Options{}, corrupt, crashing, good)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		res, err := r.Solve(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("result = %+v", res)
		}
	}
	ts := map[string]Tally{}
	for _, tl := range r.Tallies() {
		ts[tl.Backend] = tl
	}
	if ts["corrupt"].Rejects == 0 {
		t.Fatalf("corrupt backend rejects = 0, want > 0 (tallies %+v)", ts)
	}
	if ts["crashing"].Panics == 0 || ts["crashing"].Errors == 0 {
		t.Fatalf("crashing backend panics/errors = %d/%d, want > 0", ts["crashing"].Panics, ts["crashing"].Errors)
	}
	if ts["good"].OK != 6 {
		t.Fatalf("good backend ok = %d, want 6", ts["good"].OK)
	}
}

// TestAllBackendsFailing surfaces ErrAllFailed with joined causes.
func TestAllBackendsFailing(t *testing.T) {
	m := model()
	bad := &stub{name: "bad"}
	bad.setDegraded(true)
	r, err := New(Options{}, bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Solve(context.Background(), m)
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}

// TestOpenBreakerPinsWeightToFloor: a resilient-wrapped backend whose
// circuit breaker is open holds only its floor weight.
func TestOpenBreakerPinsWeightToFloor(t *testing.T) {
	flaky := &stub{name: "flaky"}
	flaky.setDegraded(true)
	rs := resilient.New(flaky, resilient.Options{
		MaxAttempts: 1,
		Breaker:     resilient.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
	})
	good := &stub{name: "good"}
	r, err := New(Options{Failover: 2}, rs, good)
	if err != nil {
		t.Fatal(err)
	}
	// One routed failure trips the breaker (threshold 1)... but a stub
	// error is not retryable, so it surfaces without a breaker record.
	// Drive the breaker directly instead: that is the signal the router
	// reads.
	rs.Policy().Breaker().Record(false, time.Now())
	if got := rs.Policy().Breaker().State(); got != resilient.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	ws := r.Weights()
	if w := ws[rs.Name()]; w > 0.1 {
		t.Fatalf("open-breaker backend weight = %g, want near floor", w)
	}
	if w := ws["good"]; w < 0.8 {
		t.Fatalf("healthy backend weight = %g, want bulk of traffic", w)
	}
}

// TestGatedRejectsOversizedModels: the size guard fails fast with
// ErrTooLarge and passes small models through.
func TestGatedRejectsOversizedModels(t *testing.T) {
	m := model() // 1 variable
	inner := &stub{name: "quantum"}
	g := Gated(inner, 0) // 0 = no limit
	if _, err := g.Solve(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	big := cqm.New()
	for i := 0; i < 4; i++ {
		big.AddBinary("x")
	}
	g = Gated(inner, 3)
	_, err := g.Solve(context.Background(), big)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := g.Solve(context.Background(), m); err != nil {
		t.Fatalf("small model through gate: %v", err)
	}
}

// TestRouterPublishesWeightsToObs: the routing table is visible in the
// registry the router was built with.
func TestRouterPublishesWeightsToObs(t *testing.T) {
	m := model()
	reg := obs.NewRegistry()
	a, b := &stub{name: "a"}, &stub{name: "b"}
	r, err := New(Options{Obs: reg}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Solve(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("route.backend.a.weight").Value() + reg.Gauge("route.backend.b.weight").Value(); v < 0.99 || v > 1.01 {
		t.Fatalf("published weights sum to %g, want ~1", v)
	}
	if reg.Counter("route.backend.a.picks").Value()+reg.Counter("route.backend.b.picks").Value() != 1 {
		t.Fatal("exactly one pick counter should have incremented")
	}
}

// TestSyncFoldsHedgeTallies: hedge race records written into the shared
// registry downweight a backend the router itself has not yet tried.
func TestSyncFoldsHedgeTallies(t *testing.T) {
	reg := obs.NewRegistry()
	a, b := &stub{name: "a"}, &stub{name: "b"}
	r, err := New(Options{Obs: reg}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Backend a lost 20 hedged races to verification; b won 20.
	reg.Counter("hedge.backend.a.rejects").Add(20)
	reg.Counter("hedge.backend.b.wins").Add(20)
	ws := r.Weights()
	if ws["a"] >= ws["b"] {
		t.Fatalf("weights after hedge sync: a=%g b=%g, want a < b", ws["a"], ws["b"])
	}
	// Deltas are consumed once: a second sync without new tallies keeps
	// the estimates stable instead of double-counting.
	before := r.Weights()["a"]
	after := r.Weights()["a"]
	if before != after {
		t.Fatalf("weight drifted without new observations: %g -> %g", before, after)
	}
}

// TestSerializedGuardsConcurrentUse just exercises the wrapper under
// the race detector.
func TestSerializedGuardsConcurrentUse(t *testing.T) {
	m := model()
	s := Serialized(&stub{name: "nt"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), m); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/qlrb"
)

func TestRunScaling(t *testing.T) {
	points, err := RunScaling(qlrb.QCQM1, []int{4, 8, 16}, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, p := range points {
		if p.Qubits <= 0 || p.SolveMs <= 0 || p.FlipsPerSec <= 0 {
			t.Fatalf("point %d not measured: %+v", i, p)
		}
		// Qubit counts follow the Table I formula for 100 tasks/node.
		want := qlrb.VariableCount(p.Procs, 100, qlrb.QCQM1, false)
		if p.Qubits != want {
			t.Fatalf("M=%d qubits %d, want %d", p.Procs, p.Qubits, want)
		}
	}
	// Qubits grow quadratically with M.
	if points[2].Qubits <= points[0].Qubits*4 {
		t.Fatalf("qubit growth too slow: %d vs %d", points[2].Qubits, points[0].Qubits)
	}
	out := ScalingTable("scaling", points).Render()
	if !strings.Contains(out, "flips/s") {
		t.Fatal("table missing throughput column")
	}
}

func TestRunScalingDefaultSweeps(t *testing.T) {
	points, err := RunScaling(qlrb.QCQM2, []int{4}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Qubits != 4*4*7 { // M^2 |C|, n=100 -> |C|=7
		t.Fatalf("qubits %d", points[0].Qubits)
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/mxm"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/sa"
)

// ScalingPoint measures the classical sampling cost of one formulation
// at one machine scale — the systems companion to Table I's logical-
// qubit counts: how solver wall time grows with the qubit count when the
// per-read budget (sweeps) is fixed.
type ScalingPoint struct {
	// Procs is the machine size M.
	Procs int
	// Qubits is the formulation's variable count.
	Qubits int
	// BuildMs and SolveMs time model construction and one annealing
	// read.
	BuildMs, SolveMs float64
	// FlipsPerSec is the sampler's throughput on this model.
	FlipsPerSec float64
}

// RunScaling builds the formulation for growing machine sizes (100
// uniform tasks per process, as in the paper's V-B.2 group) and times a
// single fixed-budget annealing read on each.
func RunScaling(form qlrb.Formulation, scales []int, sweeps int, seed int64) ([]ScalingPoint, error) {
	if sweeps <= 0 {
		sweeps = 200
	}
	out := make([]ScalingPoint, 0, len(scales))
	for _, procs := range scales {
		c := mxm.VaryProcsCase(procs, mxm.DefaultCostModel(), seed)

		start := time.Now()
		enc, err := qlrb.Build(c.Instance, qlrb.BuildOptions{Form: form, K: -1})
		if err != nil {
			return nil, fmt.Errorf("%w: scaling M=%d: %w", ErrMethod, procs, err)
		}
		buildMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		res := sa.Anneal(enc.Model, sa.Options{Sweeps: sweeps, Seed: seed, Penalty: 5, PenaltyGrowth: 4})
		solve := time.Since(start)

		pt := ScalingPoint{
			Procs:   procs,
			Qubits:  enc.NumLogicalQubits(),
			BuildMs: buildMs,
			SolveMs: float64(solve.Microseconds()) / 1000,
		}
		if secs := solve.Seconds(); secs > 0 {
			pt.FlipsPerSec = float64(res.Flips) / secs
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScalingTable renders the study.
func ScalingTable(title string, points []ScalingPoint) *report.Table {
	t := report.NewTable(title, "M", "Logical qubits", "Build (ms)", "1 read (ms)", "flips/s")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Procs),
			fmt.Sprintf("%d", p.Qubits),
			fmt.Sprintf("%.1f", p.BuildMs),
			fmt.Sprintf("%.1f", p.SolveMs),
			fmt.Sprintf("%.2e", p.FlipsPerSec))
	}
	return t
}

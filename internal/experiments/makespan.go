package experiments

import (
	"fmt"

	"repro/internal/chameleon"
	"repro/internal/lrp"
	"repro/internal/report"
)

// MakespanResult is one method's end-to-end execution outcome: the
// paper evaluates plans by load metrics only; this experiment executes
// them on the runtime simulator, exposing the migration overhead that
// motivates the k constraint (Section II: "migrating too many tasks can
// negatively impact performance").
type MakespanResult struct {
	// Method is the method label.
	Method string
	// MakespanMs is the first BSP iteration's wall time including
	// in-flight migration delays.
	MakespanMs float64
	// SettledMs is the second iteration's wall time (migrations done).
	SettledMs float64
	// CommMs is the total migration communication time.
	CommMs float64
	// Migrated counts moved tasks.
	Migrated int
	// Speedup is baseline makespan / first-iteration makespan.
	Speedup float64
}

// RunMakespan executes every method's plan from a finished case on the
// runtime simulator.
func RunMakespan(in *lrp.Instance, cr CaseResult, rc chameleon.Config) ([]MakespanResult, error) {
	base, err := chameleon.New(rc, in)
	if err != nil {
		return nil, err
	}
	baseStats := base.RunIteration()
	out := []MakespanResult{{
		Method:     "Baseline",
		MakespanMs: baseStats.MakespanMs,
		SettledMs:  baseStats.MakespanMs,
		Speedup:    1,
	}}
	for _, name := range MethodOrder {
		mr := cr.Method(name)
		if mr == nil || mr.Plan == nil {
			continue
		}
		rt, err := chameleon.New(rc, in)
		if err != nil {
			return nil, err
		}
		mig, err := rt.ApplyPlan(mr.Plan)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %w", ErrMethod, name, err)
		}
		iters := rt.Run(2)
		res := MakespanResult{
			Method:     name,
			MakespanMs: iters[0].MakespanMs,
			SettledMs:  iters[1].MakespanMs,
			CommMs:     mig.CommTimeMs,
			Migrated:   mig.Tasks,
		}
		if res.MakespanMs > 0 {
			res.Speedup = baseStats.MakespanMs / res.MakespanMs
		}
		out = append(out, res)
	}
	return out, nil
}

// MakespanTable renders the execution results.
func MakespanTable(title string, results []MakespanResult) *report.Table {
	t := report.NewTable(title,
		"Algorithm", "makespan (ms)", "settled (ms)", "speedup", "# mig. tasks", "comm (ms)")
	for _, r := range results {
		t.AddRow(r.Method,
			fmt.Sprintf("%.3f", r.MakespanMs),
			fmt.Sprintf("%.3f", r.SettledMs),
			report.Fmt(r.Speedup),
			fmt.Sprintf("%d", r.Migrated),
			fmt.Sprintf("%.3f", r.CommMs))
	}
	return t
}

package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunFormulationComparison(t *testing.T) {
	in := smallInstance() // 4 procs x 10 tasks
	rows, err := RunFormulationComparison(context.Background(), in, 10, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Qubit economy: count-encoded formulations need far fewer
	// variables than the per-task model (the general one needs
	// N*M = 40*4 = 160; Q_CQM2 needs 16*|C| = 64).
	general := rows[2]
	if general.Qubits != 160 {
		t.Fatalf("general qubits %d, want 160", general.Qubits)
	}
	for _, r := range rows[:2] {
		if r.Qubits >= general.Qubits {
			t.Errorf("%s uses %d qubits, not fewer than general %d", r.Label, r.Qubits, general.Qubits)
		}
		if r.Migrated > 10 {
			t.Errorf("%s exceeded budget: %d", r.Label, r.Migrated)
		}
	}
	if general.Migrated > 10 {
		t.Errorf("general exceeded budget: %d", general.Migrated)
	}
	out := FormulationTable("formulations", rows).Render()
	if !strings.Contains(out, "per-task (general)") {
		t.Fatalf("table:\n%s", out)
	}
}

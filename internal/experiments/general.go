package experiments

import (
	"context"
	"fmt"

	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/solve"
)

// FormulationComparison contrasts the paper's count-encoded CQM with the
// general per-task formulation on the same uniform instance — the
// ablation quantifying what the paper's non-standard binary encoding
// buys (Section IV's qubit economy) and what it costs (the uniform-load
// assumption).
type FormulationComparison struct {
	// Label names the formulation.
	Label string
	// Qubits is the binary-variable count.
	Qubits int
	// Imbalance and Migrated are the solved plan's metrics.
	Imbalance float64
	Migrated  int
}

// RunFormulationComparison solves one uniform instance with Q_CQM1,
// Q_CQM2 and the general per-task model under the same budget k.
func RunFormulationComparison(ctx context.Context, in *lrp.Instance, k int, cfg Config) ([]FormulationComparison, error) {
	var out []FormulationComparison
	for _, form := range []qlrb.Formulation{qlrb.QCQM1, qlrb.QCQM2} {
		mr, err := runQuantum(ctx, form.String(), form, k, in, cfg, int64(form)+40, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, FormulationComparison{
			Label:     form.String() + " (count-encoded)",
			Qubits:    mr.Qubits,
			Imbalance: mr.Metrics.Imbalance,
			Migrated:  mr.Metrics.Migrated,
		})
	}

	tasks := lrp.ExpandTasks(in)
	res, err := qlrb.SolveGeneral(ctx, tasks, qlrb.GeneralBuildOptions{Procs: in.NumProcs(), K: k},
		cfg.hybridOptions(cfg.Seed*101), solve.WithObs(cfg.Obs))
	if err != nil {
		return nil, err
	}
	out = append(out, FormulationComparison{
		Label:     "per-task (general)",
		Qubits:    res.Qubits,
		Imbalance: lrp.Imbalance(res.Loads),
		Migrated:  res.Migrated,
	})
	return out, nil
}

// FormulationTable renders the comparison.
func FormulationTable(title string, rows []FormulationComparison) *report.Table {
	t := report.NewTable(title, "Formulation", "Logical qubits", "R_imb", "# mig. tasks")
	for _, r := range rows {
		t.AddRow(r.Label, fmt.Sprintf("%d", r.Qubits), report.Fmt(r.Imbalance), fmt.Sprintf("%d", r.Migrated))
	}
	return t
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/lrp"
	"repro/internal/mxm"
	"repro/internal/samoa"
)

// GroupResult is a sequence of cases sharing the same method set — one
// experiment group of Section V-B.
type GroupResult struct {
	// Name identifies the group ("vary imbalance", ...).
	Name string
	// Cases holds per-case results in x-axis order.
	Cases []CaseResult
}

// RunVaryImbalance reproduces group V-B.1 (Figure 3 / Table II): five
// imbalance levels on 8 processes x 50 tasks.
func RunVaryImbalance(ctx context.Context, cfg Config) (GroupResult, error) {
	g := GroupResult{Name: "vary imbalance"}
	for _, c := range mxm.VaryImbalanceCases(mxm.DefaultCostModel()) {
		cr, err := RunCase(ctx, c.Name, c.Instance, cfg)
		if err != nil {
			return g, fmt.Errorf("%w: %s: %w", ErrMethod, c.Name, err)
		}
		g.Cases = append(g.Cases, cr)
	}
	return g, nil
}

// RunVaryProcs reproduces group V-B.2 (Figure 4 / Table III) for the
// given node counts (mxm.ProcScales() for the paper's full sweep).
func RunVaryProcs(ctx context.Context, cfg Config, scales []int) (GroupResult, error) {
	g := GroupResult{Name: "vary processes"}
	for i, procs := range scales {
		c := mxm.VaryProcsCase(procs, mxm.DefaultCostModel(), cfg.Seed+int64(i))
		cr, err := RunCase(ctx, c.Name, c.Instance, cfg)
		if err != nil {
			return g, fmt.Errorf("%w: %s: %w", ErrMethod, c.Name, err)
		}
		g.Cases = append(g.Cases, cr)
	}
	return g, nil
}

// RunVaryTasks reproduces group V-B.3 (Figure 5 / Table IV) for the
// given tasks-per-node counts (mxm.TaskScales() for the full sweep).
func RunVaryTasks(ctx context.Context, cfg Config, scales []int) (GroupResult, error) {
	g := GroupResult{Name: "vary tasks"}
	for i, n := range scales {
		c := mxm.VaryTasksCase(n, mxm.DefaultCostModel(), cfg.Seed+int64(i))
		cr, err := RunCase(ctx, c.Name, c.Instance, cfg)
		if err != nil {
			return g, fmt.Errorf("%w: %s: %w", ErrMethod, c.Name, err)
		}
		g.Cases = append(g.Cases, cr)
	}
	return g, nil
}

// SamoaParams configures the realistic use case of Section V-C.
type SamoaParams struct {
	// Procs and TasksPerProc shape the LRP input (paper: 32 x 208).
	Procs, TasksPerProc int
	// MeshDepth is the initial uniform refinement depth; it must give
	// at least Procs*TasksPerProc cells.
	MeshDepth int
	// WarmupSteps advances the simulation before sampling costs, so the
	// wet/dry front and AMR have developed.
	WarmupSteps int
	// TargetImbalance calibrates the baseline R_imb (paper: 4.1994);
	// <= 0 disables calibration.
	TargetImbalance float64
}

// DefaultSamoaParams reproduces the paper's configuration: 32 nodes, 208
// tasks per node, baseline R_imb = 4.1994.
func DefaultSamoaParams() SamoaParams {
	return SamoaParams{
		Procs:           32,
		TasksPerProc:    208,
		MeshDepth:       12,
		WarmupSteps:     10,
		TargetImbalance: 4.1994,
	}
}

// SamoaInput runs the oscillating-lake simulation and extracts the
// paper's LRP input.
func SamoaInput(p SamoaParams) (*lrp.Instance, error) {
	cfg := samoa.DefaultConfig()
	cfg.MaxDepth = p.MeshDepth + 2
	sim := samoa.NewOscillatingLake(cfg, p.MeshDepth)
	for i := 0; i < p.WarmupSteps; i++ {
		sim.Step()
	}
	in, err := samoa.ImbalanceInput(sim.Mesh, p.Procs, p.TasksPerProc, samoa.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	if p.TargetImbalance > 0 {
		in = samoa.CalibrateImbalance(in, p.TargetImbalance)
	}
	return in, nil
}

// RunSamoa reproduces the realistic use case (Table V).
func RunSamoa(ctx context.Context, cfg Config, p SamoaParams) (CaseResult, error) {
	in, err := SamoaInput(p)
	if err != nil {
		return CaseResult{}, fmt.Errorf("%w: samoa input: %w", ErrMethod, err)
	}
	return RunCase(ctx, "sam(oa)2 oscillating lake", in, cfg)
}

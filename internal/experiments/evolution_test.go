package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/balancer"
)

func TestRunEvolution(t *testing.T) {
	p := EvolutionParams{Procs: 4, TasksPerProc: 8, MeshDepth: 7, Steps: 12, RebalanceEvery: 3}
	points, err := RunEvolution(context.Background(), p, balancer.ProactLB{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("%d points", len(points))
	}
	rawSum, rebSum := 0.0, 0.0
	migrations := 0
	for i, pt := range points {
		if pt.Step != i || pt.Cells <= 0 {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
		rawSum += pt.RawImbalance
		rebSum += pt.RebalancedImbalance
		migrations += pt.Migrated
		if i%3 != 0 && pt.Migrated != 0 {
			t.Fatalf("migration outside rebalancing step: %+v", pt)
		}
	}
	if migrations == 0 {
		t.Fatal("rebalancer never moved anything")
	}
	// Periodic rebalancing keeps the time-averaged imbalance below the
	// static partition's.
	if rebSum >= rawSum {
		t.Fatalf("rebalanced average %v not below static %v", rebSum/12, rawSum/12)
	}
	fig := EvolutionFigure(points, "evolution")
	out := fig.Table().Render()
	for _, want := range []string{"static partition", "rebalanced", "t11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q", want)
		}
	}
}

func TestRunEvolutionNoRebalancing(t *testing.T) {
	p := EvolutionParams{Procs: 4, TasksPerProc: 8, MeshDepth: 7, Steps: 4, RebalanceEvery: 0}
	points, err := RunEvolution(context.Background(), p, balancer.ProactLB{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Migrated != 0 {
			t.Fatal("migrations with rebalancing disabled")
		}
		if pt.RebalancedImbalance != pt.RawImbalance {
			t.Fatal("series diverged without any plan")
		}
	}
}

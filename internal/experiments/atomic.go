package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a result artifact so that readers never see a
// truncated file: the content is produced into a temporary file in the
// destination's directory and renamed over the target only after a
// successful write+sync. A run killed mid-write (SIGINT/SIGTERM land
// between any two syscalls) leaves either the previous version or
// nothing — never a half-written CSV/JSON under results/.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = write(tmp)
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteStringAtomic is WriteFileAtomic for in-memory content.
func WriteStringAtomic(path, content string) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
}

package experiments

import (
	"fmt"

	"repro/internal/qlrb"
	"repro/internal/report"
)

// caseLabels returns the x-axis labels of a group.
func (g *GroupResult) caseLabels() []string {
	labels := make([]string, len(g.Cases))
	for i := range g.Cases {
		labels[i] = g.Cases[i].Case
	}
	return labels
}

// metricSeries collects one metric for one method across the cases.
func (g *GroupResult) metricSeries(method string, metric func(*MethodResult) float64) []float64 {
	out := make([]float64, len(g.Cases))
	for i := range g.Cases {
		if mr := g.Cases[i].Method(method); mr != nil {
			out[i] = metric(mr)
		}
	}
	return out
}

// ImbalanceFigure renders the group's left sub-figure (R_imb per method
// per case), as in Figures 3-5.
func (g *GroupResult) ImbalanceFigure(title string) *report.Figure {
	f := report.NewFigure(title, "case", "R_imb", g.caseLabels())
	for _, m := range MethodOrder {
		f.Add(m, g.metricSeries(m, func(r *MethodResult) float64 { return r.Metrics.Imbalance }))
	}
	return f
}

// SpeedupFigure renders the group's right sub-figure (speedup per method
// per case).
func (g *GroupResult) SpeedupFigure(title string) *report.Figure {
	f := report.NewFigure(title, "case", "speedup", g.caseLabels())
	for _, m := range MethodOrder {
		f.Add(m, g.metricSeries(m, func(r *MethodResult) float64 { return r.Metrics.Speedup }))
	}
	return f
}

// MigrationTable renders the group's migrated-task table (Tables III and
// IV): one row per method, one column per case.
func (g *GroupResult) MigrationTable(title string) *report.Table {
	headers := append([]string{"Algorithm"}, g.caseLabels()...)
	t := report.NewTable(title, headers...)
	for _, m := range MethodOrder {
		cells := []string{m}
		for i := range g.Cases {
			if mr := g.Cases[i].Method(m); mr != nil {
				cells = append(cells, fmt.Sprintf("%d", mr.Metrics.Migrated))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// AveragesTable renders Table II: per-method averages of total migrated
// tasks, migrated tasks per process, and runtime across the group's
// cases. As in the paper, the Q_CQM1/Q_CQM2 pairs are additionally
// reported combined as Q_CQM*_k1 and Q_CQM*_k2.
func (g *GroupResult) AveragesTable(title string) *report.Table {
	t := report.NewTable(title,
		"Algorithm", "# total mig. tasks (avg)", "# mig. tasks per process (avg)", "Runtime (ms)")
	avg := func(methods ...string) (mig, migPer, rt float64, n int) {
		for _, m := range methods {
			for i := range g.Cases {
				if mr := g.Cases[i].Method(m); mr != nil {
					mig += float64(mr.Metrics.Migrated)
					migPer += mr.Metrics.MigratedPerProc
					rt += mr.RuntimeMs
					n++
				}
			}
		}
		if n > 0 {
			mig /= float64(n)
			migPer /= float64(n)
			rt /= float64(n)
		}
		return
	}
	addRow := func(label string, methods ...string) {
		mig, migPer, rt, n := avg(methods...)
		if n == 0 {
			return
		}
		t.AddRow(label, report.Fmt(mig), report.Fmt(migPer), fmt.Sprintf("%.4f", rt))
	}
	addRow("Greedy", "Greedy")
	addRow("KK", "KK")
	addRow("ProactLB", "ProactLB")
	addRow("Q_CQM*_k1", "Q_CQM1_k1", "Q_CQM2_k1")
	addRow("Q_CQM*_k2", "Q_CQM1_k2", "Q_CQM2_k2")
	return t
}

// SamoaTable renders Table V from the realistic use case result.
func SamoaTable(c CaseResult) *report.Table {
	t := report.NewTable("Table V — sam(oa)2 oscillating lake",
		"Algorithm", "R_imb", "Speedup", "# mig. tasks", "CPU (ms)", "QPU (ms)")
	t.AddRow("Baseline", report.Fmt(c.BaselineImb), "1.0", "", "", "")
	for _, m := range MethodOrder {
		mr := c.Method(m)
		if mr == nil {
			continue
		}
		qpu := ""
		if mr.QPUMs > 0 {
			qpu = fmt.Sprintf("%.1f", mr.QPUMs)
		}
		t.AddRow(m,
			report.Fmt(mr.Metrics.Imbalance),
			report.Fmt(mr.Metrics.Speedup),
			fmt.Sprintf("%d", mr.Metrics.Migrated),
			fmt.Sprintf("%.2f", mr.RuntimeMs),
			qpu)
	}
	return t
}

// TableI renders the paper's complexity / logical-qubit overview for a
// given machine shape. Classical complexities are cited strings; qubit
// counts are computed from the formulation formulas and cross-checked in
// tests against actually-built models.
func TableI(mProcs, tasksPerProc int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table I — complexity and logical qubits (M=%d, n=%d)", mProcs, tasksPerProc),
		"Algorithm", "Complexity", "Logical Qubits")
	t.AddRow("Greedy", "O(N log N) - O(2^N)", "")
	t.AddRow("KK", "O(N log N) - O(2^N)", "")
	t.AddRow("ProactLB", "O(M^2 K)", "")
	t.AddRow("Q_CQM1_k1, _k2", "",
		fmt.Sprintf("%d  ((M-1)^2(log2 n+1); diagonal-only reduction: %d)",
			qlrb.PaperVariableCount(mProcs, tasksPerProc, qlrb.QCQM1),
			qlrb.VariableCount(mProcs, tasksPerProc, qlrb.QCQM1, false)))
	t.AddRow("Q_CQM2_k1, _k2", "",
		fmt.Sprintf("%d  (M^2(log2 n+1))",
			qlrb.PaperVariableCount(mProcs, tasksPerProc, qlrb.QCQM2)))
	return t
}

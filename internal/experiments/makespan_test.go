package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/chameleon"
)

func TestRunMakespanExecutesAllMethods(t *testing.T) {
	in := smallInstance()
	cr, err := RunCase(context.Background(), "exec", in, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1}
	results, err := RunMakespan(in, cr, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(MethodOrder)+1 { // + baseline
		t.Fatalf("%d results, want %d", len(results), len(MethodOrder)+1)
	}
	if results[0].Method != "Baseline" || results[0].Speedup != 1 {
		t.Fatalf("baseline row: %+v", results[0])
	}
	base := results[0].MakespanMs
	for _, r := range results[1:] {
		if r.MakespanMs <= 0 || r.SettledMs <= 0 {
			t.Fatalf("%s: empty timings %+v", r.Method, r)
		}
		// The settled iteration never exceeds the migration-delayed one.
		if r.SettledMs > r.MakespanMs+1e-9 {
			t.Fatalf("%s: settled %v > first %v", r.Method, r.SettledMs, r.MakespanMs)
		}
	}
	// On this strongly imbalanced input, ProactLB must beat the baseline
	// end to end despite paying communication.
	for _, r := range results {
		if r.Method == "ProactLB" && r.MakespanMs >= base {
			t.Fatalf("ProactLB end-to-end %v >= baseline %v", r.MakespanMs, base)
		}
	}
	out := MakespanTable("exec", results).Render()
	for _, want := range []string{"Baseline", "Q_CQM1_k1", "comm (ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

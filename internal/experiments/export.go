package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/csvio"
	"repro/internal/lrp"
)

// ExportCaseArtifacts persists one case the way the paper's artifact
// repository is laid out: the imbalance input under input_lrp/ and each
// method's migration plan under output_lrp/ (Appendix B's structure).
// Returns the list of files written.
func ExportCaseArtifacts(dir string, in *lrp.Instance, cr CaseResult) ([]string, error) {
	slug := sanitizeSlug(cr.Case)
	inputDir := filepath.Join(dir, "input_lrp")
	outputDir := filepath.Join(dir, "output_lrp")
	for _, d := range []string{inputDir, outputDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	var written []string

	inputPath := filepath.Join(inputDir, slug+".csv")
	if err := WriteFileAtomic(inputPath, func(w io.Writer) error {
		return csvio.WriteInput(w, in)
	}); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrExport, err)
	}
	written = append(written, inputPath)

	for _, mr := range cr.Methods {
		if mr.Plan == nil {
			continue
		}
		plan := mr.Plan
		outPath := filepath.Join(outputDir, slug+"_"+sanitizeSlug(mr.Method)+".csv")
		if err := WriteFileAtomic(outPath, func(w io.Writer) error {
			return csvio.WriteOutput(w, in, plan)
		}); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrExport, err)
		}
		written = append(written, outPath)
	}
	return written, nil
}

// sanitizeSlug turns a case or method label into a safe file-name stem.
func sanitizeSlug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '.', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return strings.Trim(string(out), "_")
}

package experiments

import (
	"context"
	"testing"
)

// TestRunBatchCacheReducesSubmissions is the acceptance bar of the
// batching+caching front: a repetitive trace must cost at least 5x
// fewer hybrid cloud submissions than it has requests, with every
// served plan verified (RunBatchCache fails on any unverified plan).
func TestRunBatchCacheReducesSubmissions(t *testing.T) {
	cfg := FastConfig()
	res, err := RunBatchCache(context.Background(), cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 16 {
		t.Fatalf("Requests = %d, want 16", res.Requests)
	}
	if res.Submissions == 0 {
		t.Fatal("no submissions at all — round 0 must miss")
	}
	if res.Ratio < 5 {
		t.Fatalf("requests/submissions = %.1f, want >= 5 (submissions %d)", res.Ratio, res.Submissions)
	}
	// Rounds after the first are rotations of round 0's shapes: all hits.
	for _, p := range res.Rounds[1:] {
		if p.CacheHits != p.Requests {
			t.Fatalf("round %d: %d/%d cache hits, want all (rotation must share the canonical fingerprint)",
				p.Round, p.CacheHits, p.Requests)
		}
		if p.Submissions != 0 {
			t.Fatalf("round %d: %d submissions on a fully-cached round", p.Round, p.Submissions)
		}
	}
	if res.Cache.Rejects != 0 || res.Cache.PutRejects != 0 {
		t.Fatalf("clean replay rejected cache entries: %+v", res.Cache)
	}
	tbl := BatchCacheTable("t", res)
	if tbl.NumRows() < len(res.Rounds)+4 {
		t.Fatalf("table rows %d", tbl.NumRows())
	}
}

package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/report"
)

// Variability quantifies the run-to-run spread of a hybrid method — the
// paper's Appendix notes the CQM solver "is not deterministic ... while
// there is some variation from run to run, the results are not
// significantly skewed", which this study makes measurable.
type Variability struct {
	// Method labels the studied configuration.
	Method string
	// Runs is the number of independent repetitions.
	Runs int
	// ImbMin, ImbMedian, ImbMax summarize R_imb across runs.
	ImbMin, ImbMedian, ImbMax float64
	// MigMin, MigMedian, MigMax summarize migration counts.
	MigMin, MigMedian, MigMax int
	// FeasibleRuns counts runs whose raw sample was CQM-feasible.
	FeasibleRuns int
}

// MeasureVariability solves the instance runs times with different seeds
// and reports the distribution of outcomes.
func MeasureVariability(ctx context.Context, in *lrp.Instance, form qlrb.Formulation, k int, runs int, cfg Config) (Variability, error) {
	if runs < 1 {
		runs = 1
	}
	proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		return Variability{}, err
	}
	greedy, err := balancer.Greedy{}.Rebalance(ctx, in)
	if err != nil {
		return Variability{}, err
	}

	v := Variability{
		Method: fmt.Sprintf("%v_k%d", form, k),
		Runs:   runs,
		ImbMin: math.Inf(1), ImbMax: math.Inf(-1),
	}
	imbs := make([]float64, 0, runs)
	migs := make([]int, 0, runs)
	for r := 0; r < runs; r++ {
		plan, stats, err := qlrb.Solve(ctx, in, qlrb.SolveOptions{
			Build:     qlrb.BuildOptions{Form: form, K: k},
			Hybrid:    cfg.hybridOptions(cfg.Seed*7919 + int64(r)),
			WarmPlans: []*lrp.Plan{proact, greedy},
			Obs:       cfg.Obs,
		})
		if err != nil {
			return v, err
		}
		m := lrp.Evaluate(in, plan)
		imbs = append(imbs, m.Imbalance)
		migs = append(migs, m.Migrated)
		if stats.SampleFeasible {
			v.FeasibleRuns++
		}
	}
	sort.Float64s(imbs)
	sort.Ints(migs)
	v.ImbMin, v.ImbMedian, v.ImbMax = imbs[0], imbs[len(imbs)/2], imbs[len(imbs)-1]
	v.MigMin, v.MigMedian, v.MigMax = migs[0], migs[len(migs)/2], migs[len(migs)-1]
	return v, nil
}

// VariabilityTable renders several variability studies as one table.
func VariabilityTable(title string, studies []Variability) *report.Table {
	t := report.NewTable(title,
		"Method", "Runs", "Feasible", "R_imb min", "R_imb median", "R_imb max", "mig min", "mig median", "mig max")
	for _, v := range studies {
		t.AddRow(v.Method,
			fmt.Sprintf("%d", v.Runs),
			fmt.Sprintf("%d", v.FeasibleRuns),
			report.Fmt(v.ImbMin), report.Fmt(v.ImbMedian), report.Fmt(v.ImbMax),
			fmt.Sprintf("%d", v.MigMin), fmt.Sprintf("%d", v.MigMedian), fmt.Sprintf("%d", v.MigMax))
	}
	return t
}

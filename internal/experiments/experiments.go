// Package experiments reproduces the paper's evaluation (Section V):
// each runner regenerates the rows/series of one table or figure from
// the workload generators, the classical baselines, and the
// quantum-hybrid CQM methods, following the paper's protocol:
//
//   - classical algorithms run first; k1 is ProactLB's migration count
//     and k2 is Greedy's (Section V-B: "k1 corresponds to the tasks
//     migrated using ProactLB, while k2 reflects the count from Greedy
//     and KK");
//   - each hybrid solve is repeated Config.Reps times and the best
//     result is kept ("we ran each experiment with the CQM solver at
//     least three times ... we select the best results");
//   - R_imb and speedup are computed from the rebalancing solution, as
//     in the paper.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/balancer"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
)

// Sentinel errors: runner failures wrap one of these plus the
// underlying cause (both reachable via errors.Is), so the harness can
// tell a failed method apart from a failed artifact write.
var (
	// ErrMethod marks a rebalancing-method failure inside a runner.
	ErrMethod = errors.New("experiments: method failed")
	// ErrExport marks an artifact-persistence failure.
	ErrExport = errors.New("experiments: export failed")
)

// Config tunes experiment cost and reproducibility.
type Config struct {
	// Seed drives every random choice.
	Seed int64
	// Reps is the number of hybrid repetitions per method (best kept).
	Reps int
	// Reads and Sweeps budget each hybrid solve.
	Reads, Sweeps int
	// Workers caps solver parallelism (0 = GOMAXPROCS).
	Workers int
	// Timing is the simulated cloud/QPU timing model.
	Timing hybrid.TimingModel
	// Obs, when non-nil, collects the full observability trace of every
	// hybrid solve the runners perform (workflow spans, solver counters);
	// the harness exports it next to the tables. Nil disables tracing.
	Obs *obs.Registry
}

// DefaultConfig matches the paper's protocol (best of 3 repetitions)
// with a solver budget sized for the full experiment scales.
func DefaultConfig() Config {
	return Config{
		Seed:   2024,
		Reps:   3,
		Reads:  8,
		Sweeps: 600,
		Timing: hybrid.DefaultTimingModel(),
	}
}

// FastConfig is a reduced budget for tests and quick runs.
func FastConfig() Config {
	return Config{
		Seed:   7,
		Reps:   1,
		Reads:  4,
		Sweeps: 250,
		Timing: hybrid.DefaultTimingModel(),
	}
}

func (cfg Config) hybridOptions(seed int64) hybrid.Options {
	return hybrid.Options{
		Reads:         cfg.Reads,
		Sweeps:        cfg.Sweeps,
		Workers:       cfg.Workers,
		Seed:          seed,
		Presolve:      true,
		Penalty:       5,
		PenaltyGrowth: 4,
		Timing:        cfg.Timing,
	}
}

// MethodResult is one method's outcome on one case — one cell group of
// the paper's tables.
type MethodResult struct {
	// Method is the paper's method label (e.g. "Q_CQM1_k1").
	Method string
	// Metrics carries R_imb, speedup, and migration counts.
	Metrics lrp.Metrics
	// RuntimeMs is the method's runtime overhead: wall time for
	// classical algorithms, simulated CPU time (solver + cloud latency)
	// for hybrid methods.
	RuntimeMs float64
	// QPUMs is the simulated quantum access time (0 for classical).
	QPUMs float64
	// Qubits is the CQM variable count (0 for classical).
	Qubits int
	// Plan is the migration plan the metrics were computed from.
	Plan *lrp.Plan
}

// CaseResult is every method's outcome on one imbalance case.
type CaseResult struct {
	// Case is the case label (e.g. "Imb.2", "32 nodes").
	Case string
	// BaselineImb and BaselineMax describe the uncorrected input.
	BaselineImb float64
	BaselineMax float64
	// K1 and K2 are the migration budgets derived from ProactLB and
	// Greedy respectively.
	K1, K2 int
	// Methods holds results in the paper's method order.
	Methods []MethodResult
}

// Method returns the named method's result, or nil.
func (c *CaseResult) Method(name string) *MethodResult {
	for i := range c.Methods {
		if c.Methods[i].Method == name {
			return &c.Methods[i]
		}
	}
	return nil
}

// MethodOrder is the paper's method ordering in tables and figures.
var MethodOrder = []string{
	"Greedy", "KK", "ProactLB",
	"Q_CQM1_k1", "Q_CQM1_k2", "Q_CQM2_k1", "Q_CQM2_k2",
}

// timeClassical measures a classical rebalancer, returning the plan and
// the average runtime over a few repetitions (their runtimes sit near
// timer resolution).
func timeClassical(ctx context.Context, r balancer.Rebalancer, in *lrp.Instance) (*lrp.Plan, float64, error) {
	const runs = 3
	var plan *lrp.Plan
	var err error
	start := time.Now()
	for i := 0; i < runs; i++ {
		plan, err = r.Rebalance(ctx, in)
		if err != nil {
			return nil, 0, err
		}
	}
	elapsed := time.Since(start)
	return plan, float64(elapsed.Microseconds()) / 1000 / runs, nil
}

// runQuantum runs one hybrid method cfg.Reps times and keeps the best
// plan (lexicographically smallest (R_imb, migrated)). warm carries the
// classical plans the paper computes first; they seed the sampler.
func runQuantum(ctx context.Context, label string, form qlrb.Formulation, k int, in *lrp.Instance, cfg Config, methodSalt int64, warm []*lrp.Plan) (MethodResult, error) {
	var best MethodResult
	for rep := 0; rep < max(1, cfg.Reps); rep++ {
		seed := cfg.Seed*1_000_003 + methodSalt*8191 + int64(rep)
		plan, stats, err := qlrb.Solve(ctx, in, qlrb.SolveOptions{
			Build:     qlrb.BuildOptions{Form: form, K: k},
			Hybrid:    cfg.hybridOptions(seed),
			WarmPlans: warm,
			Obs:       cfg.Obs,
		})
		if err != nil {
			return MethodResult{}, fmt.Errorf("%w: %s: %w", ErrMethod, label, err)
		}
		m := lrp.Evaluate(in, plan)
		res := MethodResult{
			Method:    label,
			Metrics:   m,
			RuntimeMs: float64(stats.Solver.SimulatedCPU.Microseconds()) / 1000,
			QPUMs:     float64(stats.Solver.SimulatedQPU.Microseconds()) / 1000,
			Qubits:    stats.Qubits,
			Plan:      plan,
		}
		if rep == 0 || betterMetrics(res.Metrics, best.Metrics) {
			// Keep the latest runtime figures but the best plan.
			res.RuntimeMs = (res.RuntimeMs + best.RuntimeMs*float64(rep)) / float64(rep+1)
			best = res
		} else {
			best.RuntimeMs = (best.RuntimeMs*float64(rep) + res.RuntimeMs) / float64(rep+1)
		}
	}
	return best, nil
}

func betterMetrics(a, b lrp.Metrics) bool {
	if a.Imbalance != b.Imbalance {
		return a.Imbalance < b.Imbalance
	}
	return a.Migrated < b.Migrated
}

// RunCase applies every method of the paper to one instance.
func RunCase(ctx context.Context, name string, in *lrp.Instance, cfg Config) (CaseResult, error) {
	res := CaseResult{
		Case:        name,
		BaselineImb: in.Imbalance(),
		BaselineMax: in.MaxLoad(),
	}

	greedyPlan, greedyMs, err := timeClassical(ctx, balancer.Greedy{}, in)
	if err != nil {
		return res, err
	}
	kkPlan, kkMs, err := timeClassical(ctx, balancer.KK{}, in)
	if err != nil {
		return res, err
	}
	proactPlan, proactMs, err := timeClassical(ctx, balancer.ProactLB{}, in)
	if err != nil {
		return res, err
	}
	res.K1 = proactPlan.Migrated()
	res.K2 = greedyPlan.Migrated()

	res.Methods = append(res.Methods,
		MethodResult{Method: "Greedy", Metrics: lrp.Evaluate(in, greedyPlan), RuntimeMs: greedyMs, Plan: greedyPlan},
		MethodResult{Method: "KK", Metrics: lrp.Evaluate(in, kkPlan), RuntimeMs: kkMs, Plan: kkPlan},
		MethodResult{Method: "ProactLB", Metrics: lrp.Evaluate(in, proactPlan), RuntimeMs: proactMs, Plan: proactPlan},
	)

	quantum := []struct {
		label string
		form  qlrb.Formulation
		k     int
	}{
		{"Q_CQM1_k1", qlrb.QCQM1, res.K1},
		{"Q_CQM1_k2", qlrb.QCQM1, res.K2},
		{"Q_CQM2_k1", qlrb.QCQM2, res.K1},
		{"Q_CQM2_k2", qlrb.QCQM2, res.K2},
	}
	for i, q := range quantum {
		// Seed each method with the classical plan whose migration count
		// matches its budget first (k1 <- ProactLB, k2 <- Greedy); with
		// few reads only the leading warm starts are used.
		warm := []*lrp.Plan{proactPlan, greedyPlan}
		if q.k == res.K2 {
			warm = []*lrp.Plan{greedyPlan, proactPlan}
		}
		mr, err := runQuantum(ctx, q.label, q.form, q.k, in, cfg, int64(i+1), warm)
		if err != nil {
			return res, err
		}
		res.Methods = append(res.Methods, mr)
	}
	return res, nil
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/qlrb"
)

func TestRunSolverTuning(t *testing.T) {
	in := smallInstance()
	points, err := RunSolverTuning(context.Background(), in, qlrb.QCQM2, 12, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 6 {
		t.Fatalf("%d variants", len(points))
	}
	byLabel := map[string]TuningPoint{}
	for _, p := range points {
		byLabel[p.Label] = p
		if p.Migrated > 12 {
			t.Errorf("%s exceeded budget: %d", p.Label, p.Migrated)
		}
	}
	def, ok := byLabel["default"]
	if !ok {
		t.Fatal("no default variant")
	}
	// Warm-started default must reach a good solution on this easy case.
	if def.Imbalance > in.Imbalance()/2 {
		t.Errorf("default variant imbalance %v", def.Imbalance)
	}
	// Cold start on QCQM2 is the known-hard configuration (the paper's
	// Q_CQM2 instability): it must never beat the warm default.
	if cold, ok := byLabel["cold-start"]; ok && cold.Imbalance < def.Imbalance-1e-9 {
		t.Errorf("cold start (%v) beat warm default (%v)?", cold.Imbalance, def.Imbalance)
	}
	out := TuningTable("tuning", points).Render()
	for _, want := range []string{"default", "no-pair-moves", "tabu-augmented"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

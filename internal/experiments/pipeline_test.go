package experiments

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/csvio"
	"repro/internal/lrp"
)

// TestArtifactPipelineEndToEnd mirrors the paper's artifact flow
// (Appendix B/C): run the application under the runtime, capture the
// execution log (cham_logs/), parse it into the imbalance input
// (input_lrp/), rebalance, write the output table (output_lrp/), read
// it back, and re-execute to confirm the improvement.
func TestArtifactPipelineEndToEnd(t *testing.T) {
	// 1. The "application run": a samoa-derived imbalanced instance
	// executed on the Chameleon-style runtime with tracing.
	p := SamoaParams{Procs: 4, TasksPerProc: 12, MeshDepth: 7, WarmupSteps: 5, TargetImbalance: 2.5}
	appInput, err := SamoaInput(p)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := chameleon.New(chameleon.Config{Workers: 2}, appInput)
	if err != nil {
		t.Fatal(err)
	}
	var events []chameleon.TraceEvent
	rt.SetTracer(func(e chameleon.TraceEvent) { events = append(events, e) })
	rt.RunIteration()

	// 2. cham_logs/: persist and re-parse the execution log.
	var logBuf bytes.Buffer
	if err := chameleon.WriteTraceLog(&logBuf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := chameleon.ParseTraceLog(&logBuf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. input_lrp/: synthesize the LRP input from the log and write it
	// in the Appendix-B CSV format.
	in, err := chameleon.InstanceFromTrace(parsed, 0, p.Procs)
	if err != nil {
		t.Fatal(err)
	}
	var inputCSV bytes.Buffer
	if err := csvio.WriteInput(&inputCSV, in); err != nil {
		t.Fatal(err)
	}
	inBack, err := csvio.ReadInput(&inputCSV)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inBack.Imbalance()-appInput.Imbalance()) > 1e-6 {
		t.Fatalf("log-derived imbalance %v, app %v", inBack.Imbalance(), appInput.Imbalance())
	}

	// 4. Rebalance and write output_lrp/.
	plan, err := balancer.ProactLB{}.Rebalance(context.Background(), inBack)
	if err != nil {
		t.Fatal(err)
	}
	var outputCSV bytes.Buffer
	if err := csvio.WriteOutput(&outputCSV, inBack, plan); err != nil {
		t.Fatal(err)
	}
	planBack, err := csvio.ReadOutput(&outputCSV, inBack)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Re-execute with the plan applied: the busy-time imbalance must
	// improve over the baseline run.
	rt2, err := chameleon.New(chameleon.Config{Workers: 2, LatencyMs: 0.01, PerTaskMs: 0.005}, inBack)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.ApplyPlan(planBack); err != nil {
		t.Fatal(err)
	}
	after := rt2.RunIteration()
	if after.Imbalance >= inBack.Imbalance() {
		t.Fatalf("pipeline did not improve imbalance: %v >= %v", after.Imbalance, inBack.Imbalance())
	}
	m := lrp.Evaluate(inBack, planBack)
	if m.Speedup <= 1 {
		t.Fatalf("speedup %v", m.Speedup)
	}
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/report"
	"repro/internal/samoa"
)

// EvolutionPoint is one time step of the imbalance-evolution study: the
// motivating story of the paper's Figure 1 played out on the live AMR
// workload. As the wet/dry front moves, section costs drift; without
// rebalancing the imbalance accumulates, with periodic rebalancing it is
// repeatedly pulled back down.
type EvolutionPoint struct {
	// Step is the simulation time-step index.
	Step int
	// Cells is the current mesh size.
	Cells int
	// RawImbalance is R_imb of the drifting workload with the original
	// (static) partition.
	RawImbalance float64
	// RebalancedImbalance is R_imb right after this step's rebalancing
	// (only set on rebalancing steps; otherwise it carries the raw
	// value of the current assignment under the last plan).
	RebalancedImbalance float64
	// Migrated counts tasks moved at this step (0 between rebalances).
	Migrated int
}

// EvolutionParams shapes the study.
type EvolutionParams struct {
	// Procs and TasksPerProc shape the LRP inputs.
	Procs, TasksPerProc int
	// MeshDepth is the initial uniform refinement.
	MeshDepth int
	// Steps is the number of simulation steps to run.
	Steps int
	// RebalanceEvery applies the rebalancer every this many steps
	// (<= 0 disables rebalancing).
	RebalanceEvery int
}

// RunEvolution advances the oscillating-lake simulation and tracks the
// imbalance of the section-cost workload over time, applying method
// periodically. The rebalanced series evaluates each step's true costs
// under the most recent migration plan.
func RunEvolution(ctx context.Context, p EvolutionParams, method balancer.Rebalancer) ([]EvolutionPoint, error) {
	cfg := samoa.DefaultConfig()
	cfg.MaxDepth = p.MeshDepth + 2
	sim := samoa.NewOscillatingLake(cfg, p.MeshDepth)
	cm := samoa.DefaultCostModel()

	var plan *lrp.Plan
	out := make([]EvolutionPoint, 0, p.Steps)
	for step := 0; step < p.Steps; step++ {
		st := sim.Step()
		in, err := samoa.ImbalanceInput(sim.Mesh, p.Procs, p.TasksPerProc, cm)
		if err != nil {
			return nil, fmt.Errorf("%w: evolution step %d: %w", ErrMethod, step, err)
		}
		pt := EvolutionPoint{Step: step, Cells: st.Cells, RawImbalance: in.Imbalance()}

		if p.RebalanceEvery > 0 && step%p.RebalanceEvery == 0 {
			plan, err = method.Rebalance(ctx, in)
			if err != nil {
				return nil, fmt.Errorf("%w: evolution step %d: %w", ErrMethod, step, err)
			}
			pt.Migrated = plan.Migrated()
		}
		if plan != nil && plan.NumProcs() == in.NumProcs() {
			// Evaluate the current costs under the last plan; a stale
			// plan degrades as the workload drifts — exactly the drift
			// the paper's runtime rebalancing addresses.
			pt.RebalancedImbalance = lrp.Imbalance(plan.Loads(in))
		} else {
			pt.RebalancedImbalance = pt.RawImbalance
		}
		out = append(out, pt)
	}
	return out, nil
}

// EvolutionFigure renders the two imbalance series over time.
func EvolutionFigure(points []EvolutionPoint, title string) *report.Figure {
	labels := make([]string, len(points))
	raw := make([]float64, len(points))
	reb := make([]float64, len(points))
	for i, p := range points {
		labels[i] = fmt.Sprintf("t%d", p.Step)
		raw[i] = p.RawImbalance
		reb[i] = p.RebalancedImbalance
	}
	f := report.NewFigure(title, "time step", "R_imb", labels)
	f.Add("static partition", raw)
	f.Add("rebalanced", reb)
	return f
}

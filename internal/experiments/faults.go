package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/dlb"
	"repro/internal/faults"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/resilient"
	"repro/internal/sa"
	"repro/internal/solve"
)

// tickingWorkload advances a fake clock by step before every round
// after the first, modelling the BSP compute phase that elapses between
// rebalances. Driving the resilience layer off the same fake clock
// makes backoff and breaker-cooldown behaviour identical on any
// machine, however fast the underlying solves run.
type tickingWorkload struct {
	inner dlb.Workload
	clk   *solve.Fake
	step  time.Duration
}

// Iteration implements dlb.Workload.
func (w tickingWorkload) Iteration(it int) (*lrp.Instance, error) {
	if it > 0 {
		w.clk.Advance(w.step)
	}
	return w.inner.Iteration(it)
}

// FaultPoint is one point of the quality-vs-fault-rate degradation
// curve: a full drifting-workload dlb run of the resilient cloud path
// at one injected fault rate.
type FaultPoint struct {
	// Rate is the total per-attempt fault probability injected.
	Rate float64
	// Rounds is the number of BSP iterations completed (the resilience
	// claim is that this equals the configured iteration count at every
	// rate).
	Rounds int
	// DegradedRounds counts rounds that fell back to a stale plan (0
	// when the classical fallback serves every outage).
	DegradedRounds int
	// AvgImbalance is the mean post-plan R_imb across rounds.
	AvgImbalance float64
	// Speedup and Migrated summarise the run as usual.
	Speedup  float64
	Migrated int
	// Totals are the resilience policy's cumulative counters.
	Totals resilient.Totals
	// Injected is the number of faults the injector actually fired.
	Injected int
	// BreakerTrips counts circuit-breaker openings during the run.
	BreakerTrips int
}

// DefaultFaultRates is the sweep grid of the degradation experiment.
func DefaultFaultRates() []float64 { return []float64{0, 0.1, 0.2, 0.3} }

// faultSweepBase is the drifting hot-spot workload the sweep runs on.
func faultSweepBase() (*lrp.Instance, error) {
	return lrp.NewInstance([]int{12, 12, 12, 12}, []float64{1, 1, 1, 5})
}

// RunFaultSweep drives the resilient quantum-hybrid rebalancer through
// a drifting dlb run at each injected fault rate and reports the
// degradation curve: the same seeded workload and solver budget per
// point, with only the fault rate varying. Identical cfg.Seed yields an
// identical schedule, retry counts, and final plans — the sweep is
// fully reproducible.
//
// Faults follow the faults.Uniform split (40% transient, 20% timeout,
// 20% throttle, 20% corrupt); the resilience policy retries up to 3
// times with millisecond-scale backoff, trips its breaker after 4
// consecutive failures, and degrades to a local simulated-annealing
// solve, so every round completes and returns a feasible plan.
func RunFaultSweep(ctx context.Context, cfg Config, rates []float64, iterations int) ([]FaultPoint, error) {
	if len(rates) == 0 {
		rates = DefaultFaultRates()
	}
	if iterations <= 0 {
		iterations = 6
	}
	base, err := faultSweepBase()
	if err != nil {
		return nil, err
	}
	// The paper's protocol: k1 is ProactLB's migration count.
	proact, err := balancer.ProactLB{}.Rebalance(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("%w: proactlb: %w", ErrMethod, err)
	}
	k1 := proact.Migrated()

	points := make([]FaultPoint, 0, len(rates))
	for i, rate := range rates {
		seed := cfg.Seed*7_919 + int64(i)*101
		clk := solve.NewFake(time.Unix(0, 0))
		injector := faults.NewInjector(faults.Uniform(seed, rate))
		fallback := &sa.Engine{Base: sa.Options{
			Sweeps:        cfg.Sweeps,
			Penalty:       5,
			PenaltyGrowth: 4,
			Seed:          seed + 1,
		}}
		policy := resilient.NewPolicy(resilient.Options{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.2,
			Seed:        seed,
			Breaker:     resilient.BreakerConfig{Threshold: 4, Cooldown: 10 * time.Millisecond},
			Fallback:    fallback,
			Clock:       clk,
		})
		h := cfg.hybridOptions(seed)
		h.Faults = injector
		method := &qlrb.Quantum{
			Label: "Q_CQM1_res",
			Opts: qlrb.SolveOptions{
				Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: k1},
				Hybrid: h,
				Wrap:   policy.Wrap,
				Obs:    cfg.Obs,
			},
		}
		workload := tickingWorkload{
			inner: dlb.DriftingWorkload{Base: base, Drift: 1},
			clk:   clk,
			step:  5 * time.Millisecond,
		}
		run, err := dlb.Run(ctx, workload, method, dlb.Config{
			Runtime:    chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1},
			Iterations: iterations,
			Obs:        cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: fault rate %.2f: %w", ErrMethod, rate, err)
		}
		p := FaultPoint{
			Rate:           rate,
			Rounds:         len(run.Iterations),
			DegradedRounds: run.DegradedRounds,
			Speedup:        run.Speedup,
			Migrated:       run.TotalMigrated,
			Totals:         policy.Totals(),
			Injected:       injector.Injected(),
			BreakerTrips:   policy.Breaker().Trips(),
		}
		for _, ir := range run.Iterations {
			p.AvgImbalance += ir.Imbalance
		}
		if len(run.Iterations) > 0 {
			p.AvgImbalance /= float64(len(run.Iterations))
		}
		points = append(points, p)
	}
	return points, nil
}

// FaultTable renders the degradation curve: solution quality and
// resilience counters against the injected fault rate.
func FaultTable(title string, points []FaultPoint) *report.Table {
	t := report.NewTable(title,
		"fault rate", "rounds", "degraded", "injected",
		"attempts", "retries", "fallbacks", "brk skips", "brk trips",
		"R_imb avg", "speedup", "migrated")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", p.Rate*100),
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%d", p.DegradedRounds),
			fmt.Sprintf("%d", p.Injected),
			fmt.Sprintf("%d", p.Totals.Attempts),
			fmt.Sprintf("%d", p.Totals.Retries),
			fmt.Sprintf("%d", p.Totals.Fallbacks),
			fmt.Sprintf("%d", p.Totals.BreakerSkips),
			fmt.Sprintf("%d", p.BreakerTrips),
			report.Fmt(p.AvgImbalance),
			report.Fmt(p.Speedup),
			fmt.Sprintf("%d", p.Migrated),
		)
	}
	return t
}

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/balancer"
	"repro/internal/batch"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/plancache"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/solve"
	"repro/internal/verify"
)

// BatchCacheRound records one replayed round of the batching+caching
// trace: how many requests arrived, how many were served straight from
// the verified plan cache, and how many cloud submissions the round
// actually cost.
type BatchCacheRound struct {
	Round       int
	Requests    int
	CacheHits   int
	Submissions int
}

// BatchCacheResult aggregates the replay: total requests vs total
// hybrid cloud submissions (the ratio the batching+caching front is
// for), plus the cache's own accounting.
type BatchCacheResult struct {
	Rounds []BatchCacheRound
	// Requests is the total number of solve requests replayed.
	Requests int
	// Submissions is the number of jobs the hybrid client actually saw
	// (counted on the client itself, not by the batcher).
	Submissions int
	// Ratio is Requests / Submissions.
	Ratio float64
	// Cache is the plan cache's final accounting (hits, misses,
	// rejects, evictions) — rejects/evictions stay visible even when
	// zero, so a poisoned cache cannot hide.
	Cache plancache.Stats
	// BatchedPerFlush is Submissions' worth of context: average
	// instances merged per cloud submission across the replay.
	BatchedPerFlush float64
}

// RunBatchCache replays a repetitive multi-round rebalancing trace —
// the access pattern a periodic BSP workload produces — against the
// batching coalescer and the verified plan cache stacked in front of
// the hybrid cloud client:
//
//   - each round fires `concurrency` solve requests at once (distinct
//     load shapes, as distinct tenants would);
//   - between rounds every shape's weight vector rotates, the way a
//     drifting hot spot moves around the machine, so later rounds
//     repeat earlier rounds' shapes only up to process permutation.
//
// Round 0 is all misses: its concurrent requests coalesce into a
// handful of cloud submissions. Every later round is served from the
// cache — the permutation-canonical fingerprint recognizes the rotated
// instances — and costs no submissions at all. Every plan handed back
// (cached or fresh) is independently re-verified here with verify.Plan;
// a single unverifiable plan fails the experiment.
func RunBatchCache(ctx context.Context, cfg Config, rounds, concurrency int) (*BatchCacheResult, error) {
	if rounds <= 0 {
		rounds = 6
	}
	if concurrency <= 0 {
		concurrency = 8
	}

	// Distinct base shapes: m=6 processes, 10 tasks each, one hot spot
	// whose height depends on the shape index. Rotating the weight
	// vector between rounds keeps the multiset (and the canonical
	// fingerprint) while changing the positional instance.
	const m, tasksPerProc = 6, 10
	bases := make([]*lrp.Instance, concurrency)
	ks := make([]int, concurrency)
	for i := range bases {
		tasks := make([]int, m)
		weights := make([]float64, m)
		for j := 0; j < m; j++ {
			tasks[j] = tasksPerProc
			weights[j] = 1
		}
		weights[0] = float64(3 + i%4)
		in, err := lrp.NewInstance(tasks, weights)
		if err != nil {
			return nil, fmt.Errorf("%w: shape %d: %w", ErrMethod, i, err)
		}
		bases[i] = in
		// The paper's protocol: k is the classical method's migration
		// count. It depends only on the weight multiset, so one k per
		// shape serves every rotation.
		proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("%w: proactlb shape %d: %w", ErrMethod, i, err)
		}
		ks[i] = proact.Migrated()
	}
	rotate := func(in *lrp.Instance, by int) (*lrp.Instance, error) {
		w := make([]float64, m)
		for j := 0; j < m; j++ {
			w[j] = in.Weight[(j+by)%m]
		}
		return lrp.NewInstance(in.Tasks, w)
	}

	client := hybrid.NewClient(cfg.hybridOptions(cfg.Seed * 31))
	defer client.Close()
	co := batch.New(batch.Config{
		Client:   client,
		MaxBatch: concurrency,
		MaxWait:  50 * time.Millisecond,
		Obs:      cfg.Obs,
	})
	defer co.Close()
	cache := plancache.New(plancache.Config{Obs: cfg.Obs})

	res := &BatchCacheResult{}
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := client.Jobs()
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			hits   int
			firstE error
		)
		fail := func(err error) {
			mu.Lock()
			if firstE == nil {
				firstE = err
			}
			mu.Unlock()
		}
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				in, err := rotate(bases[i], r%m)
				if err != nil {
					fail(err)
					return
				}
				params := plancache.Params{K: ks[i], Form: int(qlrb.QCQM1)}
				plan, hit := cache.Get(in, params)
				if !hit {
					plan, _, err = qlrb.Solve(ctx, in, qlrb.SolveOptions{
						Build: qlrb.BuildOptions{Form: qlrb.QCQM1, K: ks[i]},
						// The coalescer replaces the per-solve hybrid
						// engine: every miss rides the shared batch.
						Wrap: func(solve.Solver) solve.Solver { return co },
						Obs:  cfg.Obs,
					})
					if err != nil {
						fail(fmt.Errorf("round %d shape %d: %w", r, i, err))
						return
					}
					if err := cache.Put(in, params, plan); err != nil {
						fail(fmt.Errorf("round %d shape %d: cache put: %w", r, i, err))
						return
					}
				}
				// Independent re-verification of every served plan —
				// the acceptance bar: cached or fresh, nothing
				// unverified leaves the experiment.
				if rep := verify.Plan(in, plan, ks[i], verify.Options{}); !rep.Ok() {
					fail(fmt.Errorf("round %d shape %d: served plan fails verification (hit=%v): %w", r, i, hit, rep.Err()))
					return
				}
				if hit {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		if firstE != nil {
			return nil, fmt.Errorf("%w: %w", ErrMethod, firstE)
		}
		res.Rounds = append(res.Rounds, BatchCacheRound{
			Round:       r,
			Requests:    concurrency,
			CacheHits:   hits,
			Submissions: client.Jobs() - before,
		})
		res.Requests += concurrency
	}
	res.Submissions = client.Jobs()
	if res.Submissions > 0 {
		res.Ratio = float64(res.Requests) / float64(res.Submissions)
		batched := res.Requests - int(cache.Stats().Hits)
		res.BatchedPerFlush = float64(batched) / float64(res.Submissions)
	}
	res.Cache = cache.Stats()
	return res, nil
}

// BatchCacheTable renders the replay: per-round requests vs cloud
// submissions, then the totals and the cache's own ledger.
func BatchCacheTable(title string, r *BatchCacheResult) *report.Table {
	t := report.NewTable(title, "round", "requests", "cache hits", "submissions")
	for _, p := range r.Rounds {
		t.AddRow(
			fmt.Sprintf("%d", p.Round),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%d", p.CacheHits),
			fmt.Sprintf("%d", p.Submissions),
		)
	}
	t.AddRow("total", fmt.Sprintf("%d", r.Requests), fmt.Sprintf("%d", r.Cache.Hits), fmt.Sprintf("%d", r.Submissions))
	t.AddRow("ratio", fmt.Sprintf("%.1fx fewer submissions", r.Ratio), "", "")
	t.AddRow("avg batch", fmt.Sprintf("%.1f instances/submission", r.BatchedPerFlush), "", "")
	t.AddRow("cache", fmt.Sprintf("hits %d", r.Cache.Hits), fmt.Sprintf("misses %d", r.Cache.Misses),
		fmt.Sprintf("rejects %d / evictions %d", r.Cache.Rejects, r.Cache.Evictions))
	return t
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/mxm"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/shard"
)

// ShardComparison is one instance's monolithic-vs-sharded head-to-head:
// same formulation, same migration budget, same solver settings — the
// only difference is whether the CQM is solved whole or hierarchically.
// The quality loss column is what sharding pays for its qubit savings.
type ShardComparison struct {
	// Case labels the instance (e.g. "8 nodes").
	Case string
	// BaselineImb is the uncorrected R_imb.
	BaselineImb float64
	// K is the shared migration budget (ProactLB's count, the paper's k1).
	K int
	// MonoQubits and MaxShardQubits compare model sizes: the monolithic
	// CQM vs the largest sub-CQM the hierarchy built.
	MonoQubits, MaxShardQubits int
	// Mono and Shard carry each path's metrics.
	Mono, Shard MethodResult
	// Groups and Levels describe the hierarchy used.
	Groups, Levels int
}

// RunShardQuality runs the monolithic and sharded Q_CQM1 paths on
// paper-sized instances (the V-B.2 varying-nodes generator) under the
// same migration budget and reports both, quantifying the quality lost
// to decomposition.
func RunShardQuality(ctx context.Context, cfg Config, procScales []int, size int) ([]ShardComparison, error) {
	out := make([]ShardComparison, 0, len(procScales))
	for i, procs := range procScales {
		c := mxm.VaryProcsCase(procs, mxm.DefaultCostModel(), cfg.Seed)
		in := c.Instance
		proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("%w: shard quality %s: %w", ErrMethod, c.Name, err)
		}
		k := proact.Migrated()

		mono, err := runQuantum(ctx, "Q_CQM1_mono", qlrb.QCQM1, k, in, cfg, int64(100+i), []*lrp.Plan{proact})
		if err != nil {
			return nil, err
		}

		sharded, st, err := runSharded(ctx, fmt.Sprintf("Shard_s%d", size), in, k, size, 0, cfg, int64(200+i))
		if err != nil {
			return nil, err
		}

		n, _ := in.Uniform()
		out = append(out, ShardComparison{
			Case:           c.Name,
			BaselineImb:    in.Imbalance(),
			K:              k,
			MonoQubits:     qlrb.VariableCount(procs, n, qlrb.QCQM1, false),
			MaxShardQubits: st.MaxShardQubits,
			Mono:           mono,
			Shard:          sharded,
			Groups:         st.Groups,
			Levels:         st.Levels,
		})
	}
	return out, nil
}

// runSharded runs the hierarchical solver cfg.Reps times and keeps the
// best plan, mirroring runQuantum's best-of-reps protocol.
func runSharded(ctx context.Context, label string, in *lrp.Instance, k, size int, budget time.Duration, cfg Config, salt int64) (MethodResult, shard.Stats, error) {
	var best MethodResult
	var bestStats shard.Stats
	for rep := 0; rep < max(1, cfg.Reps); rep++ {
		seed := cfg.Seed*1_000_003 + salt*8191 + int64(rep)
		plan, st, err := shard.Solve(ctx, in, shard.Options{
			Size:   size,
			Budget: budget,
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: k},
			Hybrid: cfg.hybridOptions(seed),
			Obs:    cfg.Obs,
		})
		if err != nil {
			return MethodResult{}, shard.Stats{}, fmt.Errorf("%w: %s: %w", ErrMethod, label, err)
		}
		res := MethodResult{
			Method:    label,
			Metrics:   lrp.Evaluate(in, plan),
			RuntimeMs: float64(st.Wall.Microseconds()) / 1000,
			Qubits:    st.MaxShardQubits,
			Plan:      plan,
		}
		if rep == 0 || betterMetrics(res.Metrics, best.Metrics) {
			best, bestStats = res, st
		}
	}
	return best, bestStats, nil
}

// ShardQualityTable renders the head-to-head.
func ShardQualityTable(title string, rows []ShardComparison) *report.Table {
	t := report.NewTable(title,
		"Case", "k", "Mono qubits", "Max shard qubits", "Groups",
		"R_imb base", "R_imb mono", "R_imb shard",
		"Speedup mono", "Speedup shard", "Migr mono", "Migr shard", "Quality loss %")
	for _, r := range rows {
		loss := 0.0
		if r.Mono.Metrics.Speedup > 0 {
			loss = (r.Mono.Metrics.Speedup - r.Shard.Metrics.Speedup) / r.Mono.Metrics.Speedup * 100
		}
		t.AddRow(
			r.Case,
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.MonoQubits),
			fmt.Sprintf("%d", r.MaxShardQubits),
			fmt.Sprintf("%d", r.Groups),
			fmt.Sprintf("%.4f", r.BaselineImb),
			fmt.Sprintf("%.4f", r.Mono.Metrics.Imbalance),
			fmt.Sprintf("%.4f", r.Shard.Metrics.Imbalance),
			fmt.Sprintf("%.4f", r.Mono.Metrics.Speedup),
			fmt.Sprintf("%.4f", r.Shard.Metrics.Speedup),
			fmt.Sprintf("%d", r.Mono.Metrics.Migrated),
			fmt.Sprintf("%d", r.Shard.Metrics.Migrated),
			fmt.Sprintf("%.1f", loss))
	}
	return t
}

// ShardScalePoint is one machine scale of the wall-clock scaling sweep:
// instances far beyond the monolithic regime, solved hierarchically
// under a fixed clock budget.
type ShardScalePoint struct {
	// Procs and Tasks describe the instance (Tasks = total task count).
	Procs, Tasks int
	// MonoQubits is what the monolithic QCQM1 model would need;
	// MaxShardQubits is the largest sub-CQM actually built.
	MonoQubits, MaxShardQubits int
	// Groups, Levels and SubSolves describe the hierarchy.
	Groups, Levels, SubSolves int
	// WallMs is the end-to-end wall clock.
	WallMs float64
	// ImbBefore and ImbAfter are R_imb around the solve.
	ImbBefore, ImbAfter float64
	// Migrated is the plan's migration count.
	Migrated int
}

// scaleInstance builds a deterministic uniform instance with scattered
// hot spots — the shape of the shard package's million-task scale test.
func scaleInstance(procs, tasksPerProc int, seed int64) *lrp.Instance {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]int, procs)
	weight := make([]float64, procs)
	for j := range tasks {
		tasks[j] = tasksPerProc
		weight[j] = 1 + float64(rng.Intn(7))
		if j%97 == 0 {
			weight[j] = 12
		}
	}
	return lrp.MustInstance(tasks, weight)
}

// RunShardScale measures hierarchical wall-clock scaling: one sharded
// solve per machine scale, migration-unconstrained, each under the same
// clock budget. Monolithic solves are impossible at these scales (the
// MonoQubits column says why); the point of the sweep is that wall
// clock stays budget-bounded while the instance grows to M=1024
// processes and a million tasks.
func RunShardScale(ctx context.Context, cfg Config, scales []int, tasksPerProc int, budget time.Duration, size int) ([]ShardScalePoint, error) {
	out := make([]ShardScalePoint, 0, len(scales))
	for i, procs := range scales {
		in := scaleInstance(procs, tasksPerProc, cfg.Seed+int64(i))
		h := cfg.hybridOptions(cfg.Seed + int64(1000+i))
		// Parallelism comes from the shards, and the annealing schedule
		// must complete inside the per-shard budget carve-out (an
		// interrupted anneal is still in its hot phase and returns the
		// warm start) — so one read with few sweeps per shard, with the
		// clock budget as the backstop.
		h.Reads = 1
		if h.Sweeps > 64 {
			h.Sweeps = 64
		}
		plan, st, err := shard.Solve(ctx, in, shard.Options{
			Size:   size,
			Budget: budget,
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: -1},
			Hybrid: h,
			Obs:    cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: shard scale M=%d: %w", ErrMethod, procs, err)
		}
		out = append(out, ShardScalePoint{
			Procs:          procs,
			Tasks:          in.NumTasks(),
			MonoQubits:     qlrb.VariableCount(procs, tasksPerProc, qlrb.QCQM1, false),
			MaxShardQubits: st.MaxShardQubits,
			Groups:         st.Groups,
			Levels:         st.Levels,
			SubSolves:      st.SubSolves,
			WallMs:         float64(st.Wall.Microseconds()) / 1000,
			ImbBefore:      in.Imbalance(),
			ImbAfter:       lrp.Evaluate(in, plan).Imbalance,
			Migrated:       plan.Migrated(),
		})
	}
	return out, nil
}

// ShardScaleTable renders the sweep.
func ShardScaleTable(title string, points []ShardScalePoint) *report.Table {
	t := report.NewTable(title,
		"M", "Tasks", "Mono qubits", "Max shard qubits",
		"Groups", "Levels", "Sub-solves", "Wall (ms)", "R_imb before", "R_imb after", "Migrated")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Procs),
			fmt.Sprintf("%d", p.Tasks),
			fmt.Sprintf("%d", p.MonoQubits),
			fmt.Sprintf("%d", p.MaxShardQubits),
			fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%d", p.Levels),
			fmt.Sprintf("%d", p.SubSolves),
			fmt.Sprintf("%.0f", p.WallMs),
			fmt.Sprintf("%.4f", p.ImbBefore),
			fmt.Sprintf("%.4f", p.ImbAfter),
			fmt.Sprintf("%d", p.Migrated))
	}
	return t
}

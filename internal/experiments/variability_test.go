package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/qlrb"
)

func TestMeasureVariability(t *testing.T) {
	in := smallInstance()
	v, err := MeasureVariability(context.Background(), in, qlrb.QCQM1, 12, 5, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v.Runs != 5 {
		t.Fatalf("Runs = %d", v.Runs)
	}
	if v.ImbMin > v.ImbMedian || v.ImbMedian > v.ImbMax {
		t.Fatalf("imbalance ordering broken: %v %v %v", v.ImbMin, v.ImbMedian, v.ImbMax)
	}
	if v.MigMin > v.MigMedian || v.MigMedian > v.MigMax {
		t.Fatalf("migration ordering broken: %v %v %v", v.MigMin, v.MigMedian, v.MigMax)
	}
	if v.MigMax > 12 {
		t.Fatalf("a run exceeded the budget: %d", v.MigMax)
	}
	// The paper's claim: variation exists but is not significantly
	// skewed — with warm starts the spread stays within the baseline.
	if v.ImbMax > in.Imbalance() {
		t.Fatalf("a run worsened imbalance: %v", v.ImbMax)
	}
	if !strings.Contains(v.Method, "Q_CQM1") {
		t.Fatalf("method label %q", v.Method)
	}
}

func TestMeasureVariabilityClampsRuns(t *testing.T) {
	v, err := MeasureVariability(context.Background(), smallInstance(), qlrb.QCQM2, 5, 0, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v.Runs != 1 {
		t.Fatalf("Runs = %d, want clamp to 1", v.Runs)
	}
}

func TestVariabilityTable(t *testing.T) {
	studies := []Variability{{Method: "Q_CQM1_k5", Runs: 3, ImbMedian: 0.1, MigMedian: 5}}
	out := VariabilityTable("stability", studies).Render()
	for _, want := range []string{"Q_CQM1_k5", "R_imb median", "stability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestBetterMetricsOrdering(t *testing.T) {
	a := smallMetrics(0.1, 2, 5)
	b := smallMetrics(0.2, 2, 3)
	if !betterMetrics(a, b) {
		t.Fatal("lower imbalance should win")
	}
	c := smallMetrics(0.1, 2, 3)
	if !betterMetrics(c, a) {
		t.Fatal("equal imbalance: fewer migrations should win")
	}
	if betterMetrics(a, c) {
		t.Fatal("ordering not antisymmetric")
	}
}

func TestDefaultSamoaParamsMatchPaper(t *testing.T) {
	p := DefaultSamoaParams()
	if p.Procs != 32 || p.TasksPerProc != 208 {
		t.Fatalf("machine shape %dx%d, paper uses 32x208", p.Procs, p.TasksPerProc)
	}
	if p.TargetImbalance < 4.19 || p.TargetImbalance > 4.21 {
		t.Fatalf("target %v, paper baseline is 4.1994", p.TargetImbalance)
	}
	// The mesh must be able to host 32*208 sections.
	if cells := 2 << p.MeshDepth; cells < p.Procs*p.TasksPerProc {
		t.Fatalf("depth %d gives %d cells < %d sections", p.MeshDepth, cells, p.Procs*p.TasksPerProc)
	}
}

func TestRunSamoaSmallMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("samoa case in -short mode")
	}
	cr, err := RunSamoa(context.Background(), FastConfig(), SamoaParams{
		Procs: 4, TasksPerProc: 8, MeshDepth: 6, WarmupSteps: 4, TargetImbalance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Methods) != len(MethodOrder) {
		t.Fatalf("%d methods", len(cr.Methods))
	}
	if cr.BaselineImb < 1.8 || cr.BaselineImb > 2.2 {
		t.Fatalf("calibrated baseline %v, want ~2", cr.BaselineImb)
	}
}

package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/report"
)

// KSweepPoint is one point of the k parameter study the paper proposes
// as future work ("a parameter study could be conducted by testing
// multiple values of k, as it is a discrete, bounded parameter").
type KSweepPoint struct {
	// K is the migration budget.
	K int
	// Metrics are the usual plan metrics at this budget.
	Metrics lrp.Metrics
	// SampleFeasible reports whether the solver's raw sample satisfied
	// the CQM (tighter k makes the feasible region thinner).
	SampleFeasible bool
}

// DefaultKGrid derives a k grid from the classical reference points:
// 0, k1/2, k1, 2k1, k2/2, k2 (deduplicated and sorted), where k1 and k2
// follow the paper's protocol.
func DefaultKGrid(ctx context.Context, in *lrp.Instance) ([]int, error) {
	proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	greedy, err := balancer.Greedy{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	k1, k2 := proact.Migrated(), greedy.Migrated()
	seen := map[int]bool{}
	var ks []int
	for _, k := range []int{0, k1 / 2, k1, 2 * k1, k2 / 2, k2} {
		if k >= 0 && !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)
	return ks, nil
}

// RunKSweep solves the instance at every budget in ks with the given
// formulation, seeding the sampler with classical plans as in the main
// experiments.
func RunKSweep(ctx context.Context, in *lrp.Instance, form qlrb.Formulation, ks []int, cfg Config) ([]KSweepPoint, error) {
	proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	greedy, err := balancer.Greedy{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	points := make([]KSweepPoint, 0, len(ks))
	for i, k := range ks {
		// Lead with the classical plan that fits the budget best; with
		// few reads only the leading warm starts are sampled.
		warm := []*lrp.Plan{proact, greedy}
		if k >= greedy.Migrated() {
			warm = []*lrp.Plan{greedy, proact}
		}
		var best KSweepPoint
		for rep := 0; rep < max(1, cfg.Reps); rep++ {
			seed := cfg.Seed*99_991 + int64(i)*257 + int64(rep)
			plan, stats, err := qlrb.Solve(ctx, in, qlrb.SolveOptions{
				Build:     qlrb.BuildOptions{Form: form, K: k},
				Hybrid:    cfg.hybridOptions(seed),
				WarmPlans: warm,
				Obs:       cfg.Obs,
			})
			if err != nil {
				return nil, fmt.Errorf("%w: k=%d: %w", ErrMethod, k, err)
			}
			p := KSweepPoint{K: k, Metrics: lrp.Evaluate(in, plan), SampleFeasible: stats.SampleFeasible}
			if rep == 0 || betterMetrics(p.Metrics, best.Metrics) {
				best = p
			}
		}
		points = append(points, best)
	}
	return points, nil
}

// KSweepFigure renders imbalance and speedup against the migration
// budget.
func KSweepFigure(points []KSweepPoint, title string) *report.Figure {
	labels := make([]string, len(points))
	imb := make([]float64, len(points))
	spd := make([]float64, len(points))
	mig := make([]float64, len(points))
	for i, p := range points {
		labels[i] = fmt.Sprintf("k=%d", p.K)
		imb[i] = p.Metrics.Imbalance
		spd[i] = p.Metrics.Speedup
		mig[i] = float64(p.Metrics.Migrated)
	}
	f := report.NewFigure(title, "migration budget", "value", labels)
	f.Add("R_imb", imb)
	f.Add("speedup", spd)
	f.Add("migrated", mig)
	return f
}

package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/csvio"
)

func TestExportCaseArtifacts(t *testing.T) {
	in := smallInstance()
	cr, err := RunCase(context.Background(), "Imb.X test", in, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := ExportCaseArtifacts(dir, in, cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1+len(cr.Methods) {
		t.Fatalf("wrote %d files, want %d", len(files), 1+len(cr.Methods))
	}
	// The input round-trips.
	f, err := os.Open(filepath.Join(dir, "input_lrp", "imb.x_test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := csvio.ReadInput(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumProcs() != in.NumProcs() {
		t.Fatal("exported input mismatched")
	}
	// Every method's output parses and validates against the input.
	for _, mr := range cr.Methods {
		path := filepath.Join(dir, "output_lrp", "imb.x_test_"+sanitizeSlug(mr.Method)+".csv")
		of, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", mr.Method, err)
		}
		plan, err := csvio.ReadOutput(of, in)
		of.Close()
		if err != nil {
			t.Fatalf("%s: %v", mr.Method, err)
		}
		if plan.Migrated() != mr.Metrics.Migrated {
			t.Fatalf("%s: exported plan migrates %d, result says %d", mr.Method, plan.Migrated(), mr.Metrics.Migrated)
		}
	}
}

func TestSanitizeSlug(t *testing.T) {
	cases := map[string]string{
		"Imb.3":             "imb.3",
		"32 nodes":          "32_nodes",
		"sam(oa)2 / lake!!": "sam_oa_2___lake",
		"Q_CQM1_k1":         "q_cqm1_k1",
	}
	for in, want := range cases {
		if got := sanitizeSlug(in); got != want {
			t.Errorf("sanitizeSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/lrp"
)

// smallInstance is a quick 4x10 instance with strong imbalance.
func smallInstance() *lrp.Instance {
	return lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 6})
}

func TestRunCaseShapeAndProtocol(t *testing.T) {
	cfg := FastConfig()
	cr, err := RunCase(context.Background(), "small", smallInstance(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Methods) != len(MethodOrder) {
		t.Fatalf("got %d methods, want %d", len(cr.Methods), len(MethodOrder))
	}
	for i, m := range MethodOrder {
		if cr.Methods[i].Method != m {
			t.Fatalf("method %d is %q, want %q", i, cr.Methods[i].Method, m)
		}
	}
	// k protocol: k1 = ProactLB migrations, k2 = Greedy migrations.
	if cr.K1 != cr.Method("ProactLB").Metrics.Migrated {
		t.Errorf("K1 = %d, ProactLB migrated %d", cr.K1, cr.Method("ProactLB").Metrics.Migrated)
	}
	if cr.K2 != cr.Method("Greedy").Metrics.Migrated {
		t.Errorf("K2 = %d, Greedy migrated %d", cr.K2, cr.Method("Greedy").Metrics.Migrated)
	}
	// Quantum methods respect their k budget.
	for _, m := range []string{"Q_CQM1_k1", "Q_CQM2_k1"} {
		if got := cr.Method(m).Metrics.Migrated; got > cr.K1 {
			t.Errorf("%s migrated %d > k1=%d", m, got, cr.K1)
		}
	}
	for _, m := range []string{"Q_CQM1_k2", "Q_CQM2_k2"} {
		if got := cr.Method(m).Metrics.Migrated; got > cr.K2 {
			t.Errorf("%s migrated %d > k2=%d", m, got, cr.K2)
		}
	}
	// All plans valid; all methods reduce the imbalance.
	in := smallInstance()
	for _, mr := range cr.Methods {
		if err := mr.Plan.Validate(in); err != nil {
			t.Errorf("%s: invalid plan: %v", mr.Method, err)
		}
		if mr.Metrics.Imbalance >= cr.BaselineImb {
			t.Errorf("%s: imbalance %v not reduced from %v", mr.Method, mr.Metrics.Imbalance, cr.BaselineImb)
		}
		if mr.Metrics.Speedup < 1 {
			t.Errorf("%s: speedup %v < 1", mr.Method, mr.Metrics.Speedup)
		}
	}
	// Hybrid methods carry timing and qubit metadata.
	q := cr.Method("Q_CQM1_k1")
	if q.Qubits == 0 || q.QPUMs <= 0 || q.RuntimeMs <= 0 {
		t.Errorf("hybrid metadata missing: %+v", q)
	}
	// Hybrid runtime dwarfs classical runtime (Table II / V shape).
	if q.RuntimeMs <= cr.Method("Greedy").RuntimeMs {
		t.Errorf("hybrid runtime %v not larger than classical %v", q.RuntimeMs, cr.Method("Greedy").RuntimeMs)
	}
}

func TestProactLBMigratesFarLessThanGreedy(t *testing.T) {
	cr, err := RunCase(context.Background(), "contrast", smallInstance(), FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cr.K1*2 >= cr.K2 {
		t.Fatalf("expected k1 << k2, got k1=%d k2=%d", cr.K1, cr.K2)
	}
}

func TestRunVaryImbalanceGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("full group run in -short mode")
	}
	g, err := RunVaryImbalance(context.Background(), FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cases) != 5 {
		t.Fatalf("got %d cases, want 5", len(g.Cases))
	}
	// Imb.0 is balanced: ProactLB and the k1 methods keep migrations at 0.
	imb0 := g.Cases[0]
	if imb0.BaselineImb > 1e-9 {
		t.Fatalf("Imb.0 baseline %v", imb0.BaselineImb)
	}
	if got := imb0.Method("ProactLB").Metrics.Migrated; got != 0 {
		t.Errorf("ProactLB migrated %d on balanced input", got)
	}
	for _, m := range []string{"Q_CQM1_k1", "Q_CQM2_k1"} {
		if got := imb0.Method(m).Metrics.Migrated; got != 0 {
			t.Errorf("%s migrated %d on balanced input (k1=0)", m, got)
		}
	}
	// All methods bring every imbalanced case close to balance.
	for _, c := range g.Cases[1:] {
		for _, mr := range c.Methods {
			if mr.Metrics.Imbalance > c.BaselineImb*0.5 {
				t.Errorf("%s/%s: imbalance %v vs baseline %v", c.Case, mr.Method, mr.Metrics.Imbalance, c.BaselineImb)
			}
		}
	}
	// Renderers produce complete artifacts.
	fig := g.ImbalanceFigure("Fig. 3 (left)")
	if len(fig.Series) != len(MethodOrder) || len(fig.X) != 5 {
		t.Fatalf("figure shape: %d series, %d x", len(fig.Series), len(fig.X))
	}
	sp := g.SpeedupFigure("Fig. 3 (right)")
	if len(sp.Series) != len(MethodOrder) {
		t.Fatal("speedup figure incomplete")
	}
	tab := g.AveragesTable("Table II")
	if tab.NumRows() != 5 { // Greedy, KK, ProactLB, Q_CQM*_k1, Q_CQM*_k2
		t.Fatalf("Table II has %d rows", tab.NumRows())
	}
	out := tab.Render()
	for _, want := range []string{"Q_CQM*_k1", "Q_CQM*_k2", "ProactLB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	mt := g.MigrationTable("migrations")
	if mt.NumRows() != len(MethodOrder) {
		t.Fatalf("migration table rows = %d", mt.NumRows())
	}
}

func TestRunVaryProcsSmallScales(t *testing.T) {
	if testing.Short() {
		t.Skip("group run in -short mode")
	}
	g, err := RunVaryProcs(context.Background(), FastConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cases) != 2 {
		t.Fatalf("cases = %d", len(g.Cases))
	}
	// Migrated tasks grow with scale for the partitioners (Table III
	// shape) and k1 methods stay at ProactLB level.
	if g.Cases[1].K2 <= g.Cases[0].K2 {
		t.Errorf("Greedy migrations did not grow with node count: %d -> %d", g.Cases[0].K2, g.Cases[1].K2)
	}
	for _, c := range g.Cases {
		if got := c.Method("Q_CQM1_k1").Metrics.Migrated; got > c.K1 {
			t.Errorf("%s: Q_CQM1_k1 migrated %d > k1 %d", c.Case, got, c.K1)
		}
	}
}

func TestRunVaryTasksSmallScales(t *testing.T) {
	if testing.Short() {
		t.Skip("group run in -short mode")
	}
	g, err := RunVaryTasks(context.Background(), FastConfig(), []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy moves ~ N(M-1)/M = 7/8 of tasks (Table IV row shape).
	for i, n := range []int{8, 16} {
		total := 8 * n
		want := total * 7 / 8
		got := g.Cases[i].Method("Greedy").Metrics.Migrated
		if got < want-n || got > total {
			t.Errorf("case %d: Greedy migrated %d, expected near %d", i, got, want)
		}
	}
}

func TestSamoaSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("samoa run in -short mode")
	}
	p := SamoaParams{Procs: 8, TasksPerProc: 16, MeshDepth: 8, WarmupSteps: 6, TargetImbalance: 4.1994}
	in, err := SamoaInput(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Imbalance(); got < 3.9 || got > 4.5 {
		t.Fatalf("calibrated samoa imbalance = %v, want ~4.2", got)
	}
	cr, err := RunCase(context.Background(), "samoa-small", in, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The headline: k1 methods reach balance with ~k1 migrations where
	// Greedy needs k2 >> k1.
	q := cr.Method("Q_CQM1_k1")
	if q.Metrics.Migrated > cr.K1 {
		t.Errorf("Q_CQM1_k1 migrated %d > k1 %d", q.Metrics.Migrated, cr.K1)
	}
	if 2*q.Metrics.Migrated >= cr.K2 {
		t.Errorf("expected quantum k1 migrations (%d) to be far below Greedy's (%d)", q.Metrics.Migrated, cr.K2)
	}
	// The k1 methods match or beat ProactLB, which donated their budget
	// (the paper: "equal and even slightly better than the classical
	// methods"). Greedy's speedup is not the yardstick here: on this
	// deliberately coarse instance k1 is too tight to reach it.
	if q.Metrics.Speedup < 0.95*cr.Method("ProactLB").Metrics.Speedup {
		t.Errorf("Q_CQM1_k1 speedup %v below ProactLB %v", q.Metrics.Speedup, cr.Method("ProactLB").Metrics.Speedup)
	}
	k2q := cr.Method("Q_CQM1_k2")
	if k2q.Metrics.Speedup < 0.9*cr.Method("Greedy").Metrics.Speedup {
		t.Errorf("Q_CQM1_k2 speedup %v far below Greedy %v", k2q.Metrics.Speedup, cr.Method("Greedy").Metrics.Speedup)
	}
	tab := SamoaTable(cr)
	out := tab.Render()
	for _, want := range []string{"Baseline", "Q_CQM2_k2", "QPU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q:\n%s", want, out)
		}
	}
}

func TestTableIRendersFormulas(t *testing.T) {
	tab := TableI(8, 50)
	out := tab.Render()
	// (8-1)^2 * (floor(log2 50)+1) = 49*6 = 294; 8^2*6 = 384.
	for _, want := range []string{"294", "384", "Greedy", "ProactLB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Reps < 3 {
		t.Errorf("DefaultConfig reps = %d; the paper runs at least 3", d.Reps)
	}
	f := FastConfig()
	if f.Reps < 1 || f.Sweeps <= 0 {
		t.Errorf("FastConfig invalid: %+v", f)
	}
}

func TestMethodLookupMissing(t *testing.T) {
	c := CaseResult{}
	if c.Method("nope") != nil {
		t.Fatal("Method on empty case should be nil")
	}
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/balancer"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/report"
)

// TuningPoint is one solver configuration's outcome in the design-choice
// ablation (DESIGN.md's "ablation benches for the design choices").
type TuningPoint struct {
	// Label names the configuration.
	Label string
	// Imbalance and Migrated are the usual plan metrics.
	Imbalance float64
	Migrated  int
	// SampleFeasible reports raw-sample feasibility.
	SampleFeasible bool
	// WallMs is the real classical solve time.
	WallMs float64
}

// RunSolverTuning solves one instance under a panel of solver
// configurations that each toggle one design choice of the hybrid
// pipeline: warm starts, pair moves, penalty schedule, tempering, and
// tabu augmentation.
func RunSolverTuning(ctx context.Context, in *lrp.Instance, form qlrb.Formulation, k int, cfg Config) ([]TuningPoint, error) {
	proact, err := balancer.ProactLB{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	greedy, err := balancer.Greedy{}.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	warm := []*lrp.Plan{proact, greedy}

	type variant struct {
		label  string
		mut    func(*hybrid.Options)
		noWarm bool
	}
	variants := []variant{
		{label: "default", mut: func(*hybrid.Options) {}},
		{label: "cold-start", mut: func(*hybrid.Options) {}, noWarm: true},
		{label: "no-pair-moves", mut: func(h *hybrid.Options) { h.PairProb = -1 }},
		{label: "flat-penalty", mut: func(h *hybrid.Options) { h.Penalty = 1; h.PenaltyGrowth = 1 }},
		{label: "high-penalty", mut: func(h *hybrid.Options) { h.Penalty = 25 }},
		{label: "tempering", mut: func(h *hybrid.Options) { h.Tempering = true }},
		{label: "tabu-augmented", mut: func(h *hybrid.Options) { h.TabuReads = 2 }},
		{label: "no-presolve", mut: func(h *hybrid.Options) { h.Presolve = false }},
	}

	out := make([]TuningPoint, 0, len(variants))
	for i, v := range variants {
		h := cfg.hybridOptions(cfg.Seed*31 + int64(i))
		v.mut(&h)
		opts := qlrb.SolveOptions{
			Build:  qlrb.BuildOptions{Form: form, K: k},
			Hybrid: h,
			Obs:    cfg.Obs,
		}
		if v.noWarm {
			opts.NoWarmStart = true
		} else {
			opts.WarmPlans = warm
		}
		start := time.Now()
		plan, stats, err := qlrb.Solve(ctx, in, opts)
		if err != nil {
			return nil, fmt.Errorf("%w: tuning %s: %w", ErrMethod, v.label, err)
		}
		m := lrp.Evaluate(in, plan)
		out = append(out, TuningPoint{
			Label:          v.label,
			Imbalance:      m.Imbalance,
			Migrated:       m.Migrated,
			SampleFeasible: stats.SampleFeasible,
			WallMs:         float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	return out, nil
}

// TuningTable renders the ablation panel.
func TuningTable(title string, points []TuningPoint) *report.Table {
	t := report.NewTable(title, "Configuration", "R_imb", "# mig. tasks", "Feasible sample", "Solve (ms)")
	for _, p := range points {
		t.AddRow(p.Label, report.Fmt(p.Imbalance), fmt.Sprintf("%d", p.Migrated),
			fmt.Sprintf("%v", p.SampleFeasible), fmt.Sprintf("%.1f", p.WallMs))
	}
	return t
}

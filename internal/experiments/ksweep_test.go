package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/lrp"
	"repro/internal/qlrb"
)

func TestDefaultKGrid(t *testing.T) {
	in := smallInstance()
	ks, err := DefaultKGrid(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) < 3 {
		t.Fatalf("grid too small: %v", ks)
	}
	if ks[0] != 0 {
		t.Fatalf("grid should start at 0: %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("grid not strictly increasing: %v", ks)
		}
	}
}

func TestRunKSweepMonotonicity(t *testing.T) {
	in := smallInstance()
	ks, err := DefaultKGrid(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	points, err := RunKSweep(context.Background(), in, qlrb.QCQM1, ks, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ks) {
		t.Fatalf("%d points for %d budgets", len(points), len(ks))
	}
	// k=0 keeps the baseline imbalance; the largest budget reaches
	// near-balance; migrations never exceed the budget.
	if points[0].Metrics.Migrated != 0 {
		t.Errorf("k=0 migrated %d tasks", points[0].Metrics.Migrated)
	}
	if points[0].Metrics.Imbalance < in.Imbalance()-1e-9 {
		t.Errorf("k=0 improved imbalance?!")
	}
	last := points[len(points)-1]
	if last.Metrics.Imbalance > in.Imbalance()/4 {
		t.Errorf("largest budget left imbalance %v", last.Metrics.Imbalance)
	}
	for _, p := range points {
		if p.Metrics.Migrated > p.K {
			t.Errorf("k=%d migrated %d", p.K, p.Metrics.Migrated)
		}
	}
	// The budget-quality frontier is monotone: more budget never hurts
	// (the solver is seeded with the capped classical plans, so each
	// larger budget dominates).
	for i := 1; i < len(points); i++ {
		if points[i].Metrics.Imbalance > points[i-1].Metrics.Imbalance+0.05 {
			t.Errorf("imbalance rose from %v (k=%d) to %v (k=%d)",
				points[i-1].Metrics.Imbalance, points[i-1].K,
				points[i].Metrics.Imbalance, points[i].K)
		}
	}
}

func TestKSweepFigure(t *testing.T) {
	points := []KSweepPoint{
		{K: 0, Metrics: smallMetrics(0.5, 1, 0)},
		{K: 5, Metrics: smallMetrics(0.1, 2, 5)},
	}
	f := KSweepFigure(points, "k study")
	if len(f.Series) != 3 || len(f.X) != 2 {
		t.Fatalf("figure shape: %d series, %d x", len(f.Series), len(f.X))
	}
	out := f.Table().Render()
	for _, want := range []string{"k=0", "k=5", "R_imb", "speedup", "migrated"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// smallMetrics builds a metrics literal for rendering tests.
func smallMetrics(imb, speedup float64, migrated int) lrp.Metrics {
	return lrp.Metrics{Imbalance: imb, Speedup: speedup, Migrated: migrated}
}

package experiments

import (
	"context"
	"strings"
	"testing"
)

func faultTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Reads = 2
	cfg.Sweeps = 60
	return cfg
}

func TestRunFaultSweepCompletesEveryRound(t *testing.T) {
	cfg := faultTestConfig()
	const iters = 3
	points, err := RunFaultSweep(context.Background(), cfg, []float64{0, 0.3}, iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		// The resilience claim: every BSP round completes at every
		// injected fault rate, degraded or not.
		if p.Rounds != iters {
			t.Fatalf("rate %.0f%%: %d of %d rounds completed", p.Rate*100, p.Rounds, iters)
		}
		if p.Totals.Solves != iters {
			t.Fatalf("rate %.0f%%: policy served %d solves", p.Rate*100, p.Totals.Solves)
		}
		if p.AvgImbalance < 0 || p.Speedup <= 0 {
			t.Fatalf("rate %.0f%%: degenerate metrics %+v", p.Rate*100, p)
		}
	}
	clean, faulty := points[0], points[1]
	if clean.Injected != 0 || clean.Totals.Retries != 0 || clean.Totals.Fallbacks != 0 {
		t.Fatalf("faults at rate 0: %+v", clean)
	}
	if faulty.Injected == 0 {
		t.Fatal("rate 0.3 injected nothing over the run")
	}
	// Every injected fault was absorbed somewhere: retried successfully
	// or served by the fallback.
	if faulty.Totals.Retries == 0 && faulty.Totals.Fallbacks == 0 {
		t.Fatalf("faults injected but no resilience action recorded: %+v", faulty.Totals)
	}
}

func TestRunFaultSweepDeterministic(t *testing.T) {
	cfg := faultTestConfig()
	rates := []float64{0.2}
	a, err := RunFaultSweep(context.Background(), cfg, rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultSweep(context.Background(), cfg, rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("sweep not reproducible:\n%+v\n%+v", a[0], b[0])
	}
}

func TestRunFaultSweepDefaults(t *testing.T) {
	cfg := faultTestConfig()
	points, err := RunFaultSweep(context.Background(), cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultFaultRates()) {
		t.Fatalf("%d points, want %d", len(points), len(DefaultFaultRates()))
	}
}

func TestFaultTableRenders(t *testing.T) {
	points := []FaultPoint{{Rate: 0.3, Rounds: 6, DegradedRounds: 1, AvgImbalance: 0.25, Speedup: 1.5, Migrated: 30}}
	tab := FaultTable("degradation", points)
	s := tab.Render()
	for _, want := range []string{"degradation", "30%", "fault rate", "fallbacks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

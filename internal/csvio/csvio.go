// Package csvio reads and writes the paper's Appendix-B CSV formats:
// the imbalance input table (per-process task counts, per-task load w,
// and total load L) and the rebalancing output table (the migration
// matrix with num_total/num_local/num_remote cross-checks and the new
// total loads).
//
// In both tables rows are destination processes and columns P1..PM are
// source processes, so the matrix cells correspond directly to
// lrp.Plan.X[i][j].
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/lrp"
)

func procName(i int) string { return fmt.Sprintf("P%d", i+1) }

// WriteInput renders an instance in the Appendix-B input format
// (Table VI): a diagonal task-count matrix plus w and L columns.
func WriteInput(w io.Writer, in *lrp.Instance) error {
	cw := csv.NewWriter(w)
	m := in.NumProcs()
	header := make([]string, 0, m+3)
	header = append(header, "Process")
	for j := 0; j < m; j++ {
		header = append(header, procName(j))
	}
	header = append(header, "w", "L")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		row := make([]string, 0, m+3)
		row = append(row, procName(i))
		for j := 0; j < m; j++ {
			c := 0
			if i == j {
				c = in.Tasks[i]
			}
			row = append(row, strconv.Itoa(c))
		}
		row = append(row,
			strconv.FormatFloat(in.Weight[i], 'g', -1, 64),
			strconv.FormatFloat(in.Load(i), 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInput parses the Appendix-B input format back into an instance.
// It validates the header shape, requires off-diagonal counts to be
// zero (an input has no migrations yet), and cross-checks L against
// count*w.
func ReadInput(r io.Reader) (*lrp.Instance, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("csvio: input table needs a header and at least one row")
	}
	header := rows[0]
	m := len(rows) - 1
	if len(header) != m+3 {
		return nil, fmt.Errorf("csvio: header has %d columns for %d processes, want %d", len(header), m, m+3)
	}
	if header[0] != "Process" || header[m+1] != "w" || header[m+2] != "L" {
		return nil, fmt.Errorf("csvio: unexpected header %v", header)
	}
	tasks := make([]int, m)
	weights := make([]float64, m)
	for i, row := range rows[1:] {
		if len(row) != m+3 {
			return nil, fmt.Errorf("csvio: row %d has %d columns, want %d", i+1, len(row), m+3)
		}
		if row[0] != procName(i) {
			return nil, fmt.Errorf("csvio: row %d labelled %q, want %q", i+1, row[0], procName(i))
		}
		for j := 0; j < m; j++ {
			c, err := strconv.Atoi(row[j+1])
			if err != nil {
				return nil, fmt.Errorf("csvio: row %d col %d: %w", i+1, j+1, err)
			}
			switch {
			case i == j:
				tasks[i] = c
			case c != 0:
				return nil, fmt.Errorf("csvio: input table has off-diagonal count %d at (%d,%d)", c, i, j)
			}
		}
		if weights[i], err = strconv.ParseFloat(row[m+1], 64); err != nil {
			return nil, fmt.Errorf("csvio: row %d weight: %w", i+1, err)
		}
		l, err := strconv.ParseFloat(row[m+2], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: row %d load: %w", i+1, err)
		}
		if want := float64(tasks[i]) * weights[i]; diff(l, want) > 1e-6*(1+want) {
			return nil, fmt.Errorf("csvio: row %d load %v inconsistent with %d*%v", i+1, l, tasks[i], weights[i])
		}
	}
	return lrp.NewInstance(tasks, weights)
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// WriteOutput renders a plan in the Appendix-B output format
// (Table VII): the migration matrix plus num_total, num_local,
// num_remote and the post-rebalancing loads.
func WriteOutput(w io.Writer, in *lrp.Instance, p *lrp.Plan) error {
	if err := p.Validate(in); err != nil {
		return fmt.Errorf("csvio: refusing to write invalid plan: %w", err)
	}
	cw := csv.NewWriter(w)
	m := in.NumProcs()
	header := make([]string, 0, m+5)
	header = append(header, "Process")
	for j := 0; j < m; j++ {
		header = append(header, procName(j))
	}
	header = append(header, "num_total", "num_local", "num_remote", "L")
	if err := cw.Write(header); err != nil {
		return err
	}
	loads := p.Loads(in)
	for i := 0; i < m; i++ {
		row := make([]string, 0, m+5)
		row = append(row, procName(i))
		total := 0
		for j := 0; j < m; j++ {
			row = append(row, strconv.Itoa(p.X[i][j]))
			total += p.X[i][j]
		}
		local := p.X[i][i]
		row = append(row,
			strconv.Itoa(total),
			strconv.Itoa(local),
			strconv.Itoa(total-local),
			strconv.FormatFloat(loads[i], 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadOutput parses the Appendix-B output format into a plan and
// validates it against the instance, including the num_* cross-check
// columns.
func ReadOutput(r io.Reader, in *lrp.Instance) (*lrp.Plan, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	m := in.NumProcs()
	if len(rows) != m+1 {
		return nil, fmt.Errorf("csvio: output table has %d rows, want %d", len(rows), m+1)
	}
	p := lrp.ZeroPlan(m)
	for i, row := range rows[1:] {
		if len(row) != m+5 {
			return nil, fmt.Errorf("csvio: row %d has %d columns, want %d", i+1, len(row), m+5)
		}
		total := 0
		for j := 0; j < m; j++ {
			c, err := strconv.Atoi(row[j+1])
			if err != nil {
				return nil, fmt.Errorf("csvio: row %d col %d: %w", i+1, j+1, err)
			}
			p.X[i][j] = c
			total += c
		}
		wantTotal, err1 := strconv.Atoi(row[m+1])
		wantLocal, err2 := strconv.Atoi(row[m+2])
		wantRemote, err3 := strconv.Atoi(row[m+3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("csvio: row %d has non-integer cross-check columns", i+1)
		}
		if total != wantTotal || p.X[i][i] != wantLocal || total-p.X[i][i] != wantRemote {
			return nil, fmt.Errorf("csvio: row %d cross-check mismatch", i+1)
		}
	}
	if err := p.Validate(in); err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	return p, nil
}

package csvio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lrp"
)

// tableVIInstance is the paper's Table VI example: 4 processes, 100
// tasks each, the exact weights shown in the appendix.
func tableVIInstance() *lrp.Instance {
	return lrp.MustInstance(
		[]int{100, 100, 100, 100},
		[]float64{1.87, 1.97, 14.86, 103.23},
	)
}

func TestWriteInputMatchesTableVIShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInput(&buf, tableVIInstance()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if lines[0] != "Process,P1,P2,P3,P4,w,L" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "P1,100,0,0,0,1.87,187") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[4], "P4,0,0,0,100,103.23,10323") {
		t.Fatalf("row 4 = %q", lines[4])
	}
}

func TestInputRoundTrip(t *testing.T) {
	in := tableVIInstance()
	var buf bytes.Buffer
	if err := WriteInput(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInput(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumProcs() != in.NumProcs() {
		t.Fatalf("procs %d != %d", back.NumProcs(), in.NumProcs())
	}
	for j := range in.Tasks {
		if back.Tasks[j] != in.Tasks[j] || back.Weight[j] != in.Weight[j] {
			t.Fatalf("proc %d mismatch: (%d,%v) vs (%d,%v)",
				j, back.Tasks[j], back.Weight[j], in.Tasks[j], in.Weight[j])
		}
	}
}

func TestInputRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		tasks := make([]int, m)
		weights := make([]float64, m)
		for j := range tasks {
			tasks[j] = rng.Intn(500)
			weights[j] = float64(rng.Intn(100000)) / 100 // exact decimals
		}
		in := lrp.MustInstance(tasks, weights)
		var buf bytes.Buffer
		if err := WriteInput(&buf, in); err != nil {
			return false
		}
		back, err := ReadInput(&buf)
		if err != nil {
			return false
		}
		for j := range tasks {
			if back.Tasks[j] != tasks[j] || back.Weight[j] != weights[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadInputRejectsCorruption(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := WriteInput(&buf, tableVIInstance()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := map[string]string{
		"empty":            "",
		"header only":      "Process,P1,w,L\n",
		"off-diagonal":     strings.Replace(good, "P2,0,100", "P2,3,100", 1),
		"bad count":        strings.Replace(good, "P1,100", "P1,abc", 1),
		"bad weight":       strings.Replace(good, "1.87", "x", 1),
		"inconsistent L":   strings.Replace(good, "187.ysuffix", "", 1) + "", // placeholder replaced below
		"wrong row label":  strings.Replace(good, "\nP2,", "\nPX,", 1),
		"truncated header": strings.Replace(good, "w,L", "w", 1),
	}
	cases["inconsistent L"] = strings.Replace(good, "187.00000000000003", "999", 1)
	for name, data := range cases {
		if name == "inconsistent L" && !strings.Contains(good, "187.00000000000003") {
			// Formatting may differ; rebuild the corruption from parts.
			data = strings.Replace(good, ",187", ",9999187", 1)
		}
		if _, err := ReadInput(strings.NewReader(data)); err == nil {
			t.Errorf("case %q: corrupted input accepted", name)
		}
	}
}

func TestOutputRoundTrip(t *testing.T) {
	in := tableVIInstance()
	p := lrp.NewPlan(in)
	// The Table VII scenario: P1 keeps 25 and sends 25 to each other
	// process — expressed destination-major on our matrix.
	p.Move(1, 0, 25)
	p.Move(2, 0, 25)
	p.Move(3, 0, 25)
	p.Move(0, 3, 10)
	var buf bytes.Buffer
	if err := WriteOutput(&buf, in, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "num_total,num_local,num_remote") {
		t.Fatalf("missing cross-check columns: %q", out)
	}
	back, err := ReadOutput(strings.NewReader(out), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.X {
		for j := range p.X[i] {
			if back.X[i][j] != p.X[i][j] {
				t.Fatalf("cell (%d,%d): %d != %d", i, j, back.X[i][j], p.X[i][j])
			}
		}
	}
}

func TestWriteOutputRejectsInvalidPlan(t *testing.T) {
	in := tableVIInstance()
	p := lrp.ZeroPlan(4) // loses all tasks
	var buf bytes.Buffer
	if err := WriteOutput(&buf, in, p); err == nil {
		t.Fatal("invalid plan written")
	}
}

func TestReadOutputRejectsCorruption(t *testing.T) {
	in := tableVIInstance()
	p := lrp.NewPlan(in)
	p.Move(1, 0, 25)
	var buf bytes.Buffer
	if err := WriteOutput(&buf, in, p); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Cross-check mismatch: change one matrix cell without fixing the
	// totals.
	bad := strings.Replace(good, "P2,25,100", "P2,24,100", 1)
	if bad == good {
		t.Fatalf("test setup: pattern not found in %q", good)
	}
	if _, err := ReadOutput(strings.NewReader(bad), in); err == nil {
		t.Error("cross-check mismatch accepted")
	}
	// Wrong row count for instance.
	small := lrp.MustInstance([]int{1, 1}, []float64{1, 1})
	if _, err := ReadOutput(strings.NewReader(good), small); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := ReadOutput(strings.NewReader(""), in); err == nil {
		t.Error("empty output accepted")
	}
}

func TestOutputRoundTripProperty(t *testing.T) {
	in := lrp.MustInstance([]int{9, 9, 9}, []float64{1, 2, 3})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := lrp.NewPlan(in)
		for j := 0; j < 3; j++ {
			avail := in.Tasks[j]
			for i := 0; i < 3; i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		var buf bytes.Buffer
		if err := WriteOutput(&buf, in, p); err != nil {
			return false
		}
		back, err := ReadOutput(&buf, in)
		if err != nil {
			return false
		}
		for i := range p.X {
			for j := range p.X[i] {
				if back.X[i][j] != p.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

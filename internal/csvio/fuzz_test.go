package csvio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lrp"
)

// FuzzReadInput asserts the Appendix-B input parser never panics and
// that accepted inputs are valid instances that round-trip.
func FuzzReadInput(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteInput(&buf, lrp.MustInstance([]int{3, 4}, []float64{1.5, 2})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("Process,P1,w,L\nP1,5,2,10\n")
	f.Add("not,a,table\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		in, err := ReadInput(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("parser accepted invalid instance: %v", err)
		}
		var out bytes.Buffer
		if err := WriteInput(&out, in); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		if _, err := ReadInput(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// Package refeval is the frozen reference evaluator used by the
// differential and golden trajectory tests of the solver packages
// (internal/sa, internal/tabu).
//
// It is a verbatim port of the pre-CSR cqm.Evaluator — slice-of-slices
// adjacency, []bool assignment, per-sense penalty switch — rebuilt on
// top of the model's public accessors. The hot-path rewrite
// (internal/cqm's flat layout and packed bitset) claims bit-identical
// arithmetic: every float operation happens in the same order with the
// same values. The golden tests hold the rewritten solvers to that claim
// by replaying the exact historical inner loops against this evaluator
// and requiring identical trajectories at fixed seeds.
//
// Nothing outside _test.go files may import this package; it preserves
// old code for comparison, not for use.
package refeval

import "repro/internal/cqm"

// Eval is the pre-rewrite incremental evaluator: O(degree) flip deltas
// over per-variable adjacency slices and a byte-per-variable assignment.
type Eval struct {
	x []bool

	penalty []float64

	sqVal  []float64
	conVal []float64

	linCoef []float64
	quadAdj [][]cqm.Term
	varSq   [][]ref
	varCon  [][]ref

	objLinear float64
	objQuad   float64
	energy    float64

	linear  []cqm.Term
	quad    []cqm.QuadTerm
	squares []cqm.LinExpr
	offset  float64
	cons    []cqm.Constraint
}

type ref struct {
	idx  int
	coef float64
}

// New builds the reference evaluator with every variable false and a
// uniform penalty weight, exactly as the old cqm.NewEvaluator did.
func New(m *cqm.Model, penalty float64) *Eval {
	n := m.NumVars()
	linear, quad, squares, offset := m.ObjectiveParts()
	ev := &Eval{
		x:       make([]bool, n),
		penalty: make([]float64, m.NumConstraints()),
		sqVal:   make([]float64, len(squares)),
		conVal:  make([]float64, m.NumConstraints()),
		linCoef: make([]float64, n),
		quadAdj: make([][]cqm.Term, n),
		varSq:   make([][]ref, n),
		varCon:  make([][]ref, n),
		linear:  linear,
		quad:    quad,
		squares: squares,
		offset:  offset,
		cons:    m.Constraints(),
	}
	for i := range ev.penalty {
		ev.penalty[i] = penalty
	}
	for _, t := range linear {
		ev.linCoef[t.Var] += t.Coef
	}
	for _, q := range quad {
		ev.quadAdj[q.A] = append(ev.quadAdj[q.A], cqm.Term{Var: q.B, Coef: q.Coef})
		ev.quadAdj[q.B] = append(ev.quadAdj[q.B], cqm.Term{Var: q.A, Coef: q.Coef})
	}
	for si := range squares {
		for _, t := range squares[si].Terms {
			ev.varSq[t.Var] = append(ev.varSq[t.Var], ref{si, t.Coef})
		}
	}
	for ci := range ev.cons {
		for _, t := range ev.cons[ci].Expr.Terms {
			ev.varCon[t.Var] = append(ev.varCon[t.Var], ref{ci, t.Coef})
		}
	}
	ev.Reset(nil)
	return ev
}

// ScalePenalties multiplies all penalty weights by factor.
func (ev *Eval) ScalePenalties(factor float64) {
	for i := range ev.penalty {
		ev.penalty[i] *= factor
	}
	ev.recomputeEnergy()
}

// Reset sets the assignment (nil means all-false) and recomputes all
// cached values from scratch.
func (ev *Eval) Reset(x []bool) {
	if x == nil {
		for i := range ev.x {
			ev.x[i] = false
		}
	} else {
		copy(ev.x, x)
	}
	ev.objLinear = ev.offset
	for _, t := range ev.linear {
		if ev.x[t.Var] {
			ev.objLinear += t.Coef
		}
	}
	ev.objQuad = 0
	for _, q := range ev.quad {
		if ev.x[q.A] && ev.x[q.B] {
			ev.objQuad += q.Coef
		}
	}
	for si := range ev.squares {
		ev.sqVal[si] = ev.squares[si].Value(ev.x)
	}
	for ci := range ev.cons {
		ev.conVal[ci] = ev.cons[ci].Expr.Value(ev.x)
	}
	ev.recomputeEnergy()
}

func (ev *Eval) recomputeEnergy() {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	for ci, lhs := range ev.conVal {
		e += ev.penalty[ci] * ev.penaltyTerm(ci, lhs)
	}
	ev.energy = e
}

func (ev *Eval) penaltyTerm(ci int, lhs float64) float64 {
	c := &ev.cons[ci]
	var gap float64
	switch c.Sense {
	case cqm.Eq:
		gap = lhs - c.RHS
	case cqm.Le:
		if lhs > c.RHS {
			gap = lhs - c.RHS
		}
	case cqm.Ge:
		if lhs < c.RHS {
			gap = c.RHS - lhs
		}
	}
	return gap * gap
}

// Energy returns the current penalized energy.
func (ev *Eval) Energy() float64 { return ev.energy }

// ObjectiveValue returns the unpenalized objective.
func (ev *Eval) ObjectiveValue() float64 {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	return e
}

// Feasible reports whether the current assignment satisfies every
// constraint within tol.
func (ev *Eval) Feasible(tol float64) bool {
	for ci, lhs := range ev.conVal {
		c := &ev.cons[ci]
		var gap float64
		switch c.Sense {
		case cqm.Eq:
			gap = lhs - c.RHS
			if gap < 0 {
				gap = -gap
			}
		case cqm.Le:
			gap = lhs - c.RHS
		case cqm.Ge:
			gap = c.RHS - lhs
		}
		if gap > tol {
			return false
		}
	}
	return true
}

// Assignment returns a copy of the current assignment.
func (ev *Eval) Assignment() []bool { return append([]bool(nil), ev.x...) }

// FlipDelta returns the energy change a flip of v would cause.
func (ev *Eval) FlipDelta(v cqm.VarID) float64 {
	d := 1.0
	if ev.x[v] {
		d = -1.0
	}
	delta := d * ev.linCoef[v]
	for _, t := range ev.quadAdj[v] {
		if ev.x[t.Var] {
			delta += d * t.Coef
		}
	}
	for _, r := range ev.varSq[v] {
		old := ev.sqVal[r.idx]
		nv := old + d*r.coef
		delta += nv*nv - old*old
	}
	for _, r := range ev.varCon[v] {
		old := ev.conVal[r.idx]
		nv := old + d*r.coef
		delta += ev.penalty[r.idx] * (ev.penaltyTerm(r.idx, nv) - ev.penaltyTerm(r.idx, old))
	}
	return delta
}

// Flip commits a flip of v and returns the energy change.
func (ev *Eval) Flip(v cqm.VarID) float64 {
	d := 1.0
	if ev.x[v] {
		d = -1.0
	}
	delta := d * ev.linCoef[v]
	ev.objLinear += d * ev.linCoef[v]
	for _, t := range ev.quadAdj[v] {
		if ev.x[t.Var] {
			delta += d * t.Coef
			ev.objQuad += d * t.Coef
		}
	}
	for _, r := range ev.varSq[v] {
		old := ev.sqVal[r.idx]
		nv := old + d*r.coef
		ev.sqVal[r.idx] = nv
		delta += nv*nv - old*old
	}
	for _, r := range ev.varCon[v] {
		old := ev.conVal[r.idx]
		nv := old + d*r.coef
		ev.conVal[r.idx] = nv
		delta += ev.penalty[r.idx] * (ev.penaltyTerm(r.idx, nv) - ev.penaltyTerm(r.idx, old))
	}
	ev.x[v] = !ev.x[v]
	ev.energy += delta
	return delta
}

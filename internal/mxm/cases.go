package mxm

import (
	"fmt"
	"math/rand"

	"repro/internal/lrp"
)

// Case is one imbalance test case: a uniform LRP instance plus the
// per-process matrix sizes that produced it.
type Case struct {
	// Name labels the case in tables and figures (e.g. "Imb.2").
	Name string
	// ProcSizes[j] is the matrix size of every task on process j.
	ProcSizes []int
	// Instance is the resulting uniform LRP input.
	Instance *lrp.Instance
}

// buildCase assembles a Case from per-process sizes and a cost model.
func buildCase(name string, tasksPerProc int, procSizes []int, cm CostModel) Case {
	weights := make([]float64, len(procSizes))
	for j, s := range procSizes {
		weights[j] = cm.Cost(s)
	}
	in, err := lrp.UniformInstance(tasksPerProc, weights)
	if err != nil {
		panic(err) // sizes and counts are generator-controlled
	}
	return Case{Name: name, ProcSizes: append([]int(nil), procSizes...), Instance: in}
}

// VaryImbalanceCases reproduces experiment group V-B.1: five cases
// Imb.0..Imb.4 of increasing imbalance on 8 processes with 50 uniform
// tasks each, using matrix sizes from the paper's {128..512} set.
// Imb.0 is perfectly balanced (it assesses whether methods migrate
// needlessly); the spread of sizes — and with the cubic cost model, the
// imbalance ratio — grows monotonically through Imb.4.
func VaryImbalanceCases(cm CostModel) []Case {
	profiles := [][]int{
		{320, 320, 320, 320, 320, 320, 320, 320}, // Imb.0: balanced
		{256, 256, 320, 320, 320, 320, 384, 384}, // Imb.1
		{192, 256, 256, 320, 320, 384, 384, 448}, // Imb.2
		{128, 192, 256, 320, 320, 384, 448, 512}, // Imb.3
		{128, 128, 128, 192, 192, 256, 320, 512}, // Imb.4
	}
	cases := make([]Case, len(profiles))
	for i, sizes := range profiles {
		cases[i] = buildCase(fmt.Sprintf("Imb.%d", i), 50, sizes, cm)
	}
	return cases
}

// VaryProcsCase reproduces one point of experiment group V-B.2: procs
// processes, 100 uniform tasks each, sizes drawn deterministically from
// the paper's size set so that the instance is imbalanced.
func VaryProcsCase(procs int, cm CostModel, seed int64) Case {
	return randomCase(fmt.Sprintf("%d nodes", procs), procs, 100, cm, seed)
}

// VaryTasksCase reproduces one point of experiment group V-B.3: 8
// processes with tasksPerProc uniform tasks each.
func VaryTasksCase(tasksPerProc int, cm CostModel, seed int64) Case {
	return randomCase(fmt.Sprintf("%d tasks", tasksPerProc), 8, tasksPerProc, cm, seed)
}

// randomCase draws one size per process from the size set, re-drawing
// until the case is imbalanced (all-equal draws would make the
// experiment degenerate).
func randomCase(name string, procs, tasksPerProc int, cm CostModel, seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	sizes := Sizes()
	procSizes := make([]int, procs)
	for {
		for j := range procSizes {
			procSizes[j] = sizes[rng.Intn(len(sizes))]
		}
		first := procSizes[0]
		for _, s := range procSizes[1:] {
			if s != first {
				return buildCase(name, tasksPerProc, procSizes, cm)
			}
		}
	}
}

// ProcScales returns the node counts of experiment group V-B.2.
func ProcScales() []int { return []int{4, 8, 16, 32, 64} }

// TaskScales returns the tasks-per-node counts of experiment group V-B.3.
func TaskScales() []int { return []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} }

package mxm

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/solve"
)

func TestMultiplyIdentity(t *testing.T) {
	n := 16
	b := NewRandomMatrix(n, 1)
	id := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		id.Data[i*n+i] = 1
	}
	got := Multiply(b, id)
	for i := range b.Data {
		if math.Abs(got.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatalf("B x I != B at %d: %v vs %v", i, got.Data[i], b.Data[i])
		}
	}
	got = Multiply(id, b)
	for i := range b.Data {
		if math.Abs(got.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatalf("I x B != B at %d", i)
		}
	}
}

func TestMultiplyKnownProduct(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
	b := &Matrix{N: 2, Data: []float64{1, 2, 3, 4}}
	c := &Matrix{N: 2, Data: []float64{5, 6, 7, 8}}
	a := Multiply(b, c)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("product = %v, want %v", a.Data, want)
		}
	}
	if a.At(1, 0) != 43 {
		t.Fatalf("At(1,0) = %v", a.At(1, 0))
	}
}

func TestMultiplyDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Multiply(NewRandomMatrix(2, 1), NewRandomMatrix(3, 1))
}

func TestMultiplyAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) within floating-point tolerance.
	f := func(seed int64) bool {
		n := 8
		a := NewRandomMatrix(n, seed)
		b := NewRandomMatrix(n, seed+1)
		c := NewRandomMatrix(n, seed+2)
		l := Multiply(Multiply(a, b), c)
		r := Multiply(a, Multiply(b, c))
		for i := range l.Data {
			if math.Abs(l.Data[i]-r.Data[i]) > 1e-9*math.Max(1, math.Abs(l.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelCubic(t *testing.T) {
	cm := DefaultCostModel()
	// Doubling the size multiplies the cost by 8.
	if got := cm.Cost(256) / cm.Cost(128); math.Abs(got-8) > 1e-9 {
		t.Fatalf("cost(256)/cost(128) = %v, want 8", got)
	}
	if cm.Cost(128) <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestCalibrateProducesPositiveModel(t *testing.T) {
	cm := Calibrate(64)
	if cm.CoefMsPerOp < 0 {
		t.Fatalf("negative coefficient %v", cm.CoefMsPerOp)
	}
}

func TestSizesMatchPaper(t *testing.T) {
	s := Sizes()
	if s[0] != 128 || s[len(s)-1] != 512 {
		t.Fatalf("Sizes = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i]-s[i-1] != 64 {
			t.Fatalf("Sizes not in steps of 64: %v", s)
		}
	}
}

func TestVaryImbalanceCasesShape(t *testing.T) {
	cases := VaryImbalanceCases(DefaultCostModel())
	if len(cases) != 5 {
		t.Fatalf("got %d cases, want 5 (Imb.0..Imb.4)", len(cases))
	}
	prev := -1.0
	for i, c := range cases {
		if c.Name != "Imb."+string(rune('0'+i)) {
			t.Errorf("case %d name = %q", i, c.Name)
		}
		if c.Instance.NumProcs() != 8 {
			t.Errorf("%s: %d procs, want 8", c.Name, c.Instance.NumProcs())
		}
		if n, ok := c.Instance.Uniform(); !ok || n != 50 {
			t.Errorf("%s: not uniform 50 tasks/proc", c.Name)
		}
		imb := c.Instance.Imbalance()
		if i == 0 && imb > 1e-12 {
			t.Errorf("Imb.0 has imbalance %v", imb)
		}
		if imb < prev {
			t.Errorf("imbalance not monotone at %s: %v < %v", c.Name, imb, prev)
		}
		prev = imb
		for _, s := range c.ProcSizes {
			if s < 128 || s > 512 || s%64 != 0 {
				t.Errorf("%s: size %d outside the paper's set", c.Name, s)
			}
		}
	}
}

func TestVaryProcsCase(t *testing.T) {
	for _, procs := range ProcScales() {
		c := VaryProcsCase(procs, DefaultCostModel(), 42)
		if c.Instance.NumProcs() != procs {
			t.Fatalf("procs = %d, want %d", c.Instance.NumProcs(), procs)
		}
		if n, ok := c.Instance.Uniform(); !ok || n != 100 {
			t.Fatalf("%s: not uniform 100 tasks", c.Name)
		}
		if c.Instance.Imbalance() <= 0 {
			t.Fatalf("%s: balanced case generated", c.Name)
		}
	}
}

func TestVaryTasksCase(t *testing.T) {
	for _, n := range TaskScales() {
		c := VaryTasksCase(n, DefaultCostModel(), 7)
		if got, ok := c.Instance.Uniform(); !ok || got != n {
			t.Fatalf("tasks = %d, want %d", got, n)
		}
		if c.Instance.NumProcs() != 8 {
			t.Fatalf("%s: %d procs, want 8", c.Name, c.Instance.NumProcs())
		}
	}
}

func TestCasesDeterministic(t *testing.T) {
	a := VaryProcsCase(16, DefaultCostModel(), 5)
	b := VaryProcsCase(16, DefaultCostModel(), 5)
	for j := range a.ProcSizes {
		if a.ProcSizes[j] != b.ProcSizes[j] {
			t.Fatal("generator nondeterministic for fixed seed")
		}
	}
	c := VaryProcsCase(16, DefaultCostModel(), 6)
	same := true
	for j := range a.ProcSizes {
		if a.ProcSizes[j] != c.ProcSizes[j] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical cases")
	}
}

// scriptedClock reports a fixed elapsed duration for any measurement —
// the harness for pinning clock injection without depending on how fast
// this machine multiplies matrices.
type scriptedClock struct{ elapsed time.Duration }

func (s scriptedClock) Now() time.Time                             { return time.Unix(0, 0) }
func (s scriptedClock) Since(time.Time) time.Duration              { return s.elapsed }
func (s scriptedClock) Sleep(context.Context, time.Duration) error { return nil }

// TestCalibrateUsesInjectedClock pins the injected-clock contract:
// Calibrate's elapsed time must come from the supplied solve.Clock, so
// a scripted 500ms sweep yields exactly 500/(2·64³) ms per op — and a
// fake clock that never advances yields a zero coefficient rather than
// leaking real wall time into the model.
func TestCalibrateUsesInjectedClock(t *testing.T) {
	cm := CalibrateOn(scriptedClock{elapsed: 500 * time.Millisecond}, 64)
	want := 500.0 / (2 * 64 * 64 * 64)
	if cm.CoefMsPerOp != want {
		t.Fatalf("CoefMsPerOp = %v, want %v (clock not injected)", cm.CoefMsPerOp, want)
	}
	if cm := CalibrateOn(solve.NewFake(time.Unix(0, 0)), 64); cm.CoefMsPerOp != 0 {
		t.Fatalf("fake clock leaked real time into the model: %v", cm.CoefMsPerOp)
	}
}

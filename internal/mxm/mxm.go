// Package mxm implements the paper's synthetic matrix-multiplication
// workload: a task is one A = B x C kernel, and the matrix size controls
// the task's execution time ("we can vary the task lengths by varying
// matrix sizes", Section V-A). The package provides a real multiply
// kernel, a calibrated cubic cost model, and deterministic generators for
// the three MxM experiment groups of Section V-B.
package mxm

import (
	"fmt"
	"math/rand"

	"repro/internal/solve"
)

// Sizes returns the matrix sizes used by the paper's experiments:
// {128, 192, 256, ..., 512}.
func Sizes() []int {
	return []int{128, 192, 256, 320, 384, 448, 512}
}

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewRandomMatrix returns an n x n matrix with deterministic pseudo-random
// entries in [0, 1).
func NewRandomMatrix(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.N+c] }

// Multiply computes a = b x c with a cache-friendly ikj loop order; it is
// the compute kernel of an MxM task. It panics on dimension mismatch.
func Multiply(b, c *Matrix) *Matrix {
	if b.N != c.N {
		panic(fmt.Sprintf("mxm: dimension mismatch %d vs %d", b.N, c.N))
	}
	n := b.N
	a := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			bik := b.Data[i*n+k]
			if bik == 0 {
				continue
			}
			crow := c.Data[k*n : (k+1)*n]
			for j, cv := range crow {
				arow[j] += bik * cv
			}
		}
	}
	return a
}

// CostModel maps a matrix size to a task load value (milliseconds).
// The naive multiply kernel performs 2 n^3 floating-point operations, so
// the model is cost(n) = CoefMsPerOp * 2 n^3.
type CostModel struct {
	// CoefMsPerOp is the per-flop cost in milliseconds.
	CoefMsPerOp float64
}

// DefaultCostModel assumes ~1 GFLOP/s effective throughput, the right
// order for a naive Go kernel on one Haswell-class core (the paper's
// CoolMUC2 nodes).
func DefaultCostModel() CostModel {
	return CostModel{CoefMsPerOp: 1e-6 / 2} // 2n^3 ops * 0.5e-6 ms = 1e-6 n^3 ms
}

// Cost returns the modelled execution time in milliseconds of one task
// multiplying two size x size matrices.
func (c CostModel) Cost(size int) float64 {
	s := float64(size)
	return c.CoefMsPerOp * 2 * s * s * s
}

// Calibrate measures the real multiply kernel at the given size and
// returns a cost model fitted to this machine. Generators use the
// default model so experiments stay deterministic; Calibrate exists for
// examples that execute real kernels. It measures on the real clock;
// use CalibrateOn to supply an injected solve.Clock (the repo-wide
// contract — a fake-clock harness must see the sweep's wall time on
// its own clock, not the system's).
func Calibrate(size int) CostModel {
	return CalibrateOn(solve.Real(), size)
}

// CalibrateOn is Calibrate timed on the given clock.
func CalibrateOn(clock solve.Clock, size int) CostModel {
	b := NewRandomMatrix(size, 1)
	c := NewRandomMatrix(size, 2)
	start := clock.Now()
	Multiply(b, c)
	elapsed := clock.Since(start)
	ops := 2 * float64(size) * float64(size) * float64(size)
	return CostModel{CoefMsPerOp: float64(elapsed.Milliseconds()) / ops}
}

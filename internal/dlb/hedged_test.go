package dlb

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hedge"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/solve"
	"repro/internal/verify"
)

// TestHedgedVerifiedRunUnderChaos is the end-to-end acceptance test of
// the trust-but-verify stack: every backend of a hedged quantum
// rebalancer is wired to a seeded chaos injector that corrupts replies
// and crashes the solver at a combined 30% rate, and the driven run
// must still complete every BSP round with only verified-feasible plans
// applied. The primary backend's fault sequence is fully deterministic
// (it is launched exactly once per round), so the test provably
// exercises both corruption and panics.
func TestHedgedVerifiedRunUnderChaos(t *testing.T) {
	const (
		iterations = 8
		budget     = 6
	)
	// Seed 12's 8-draw chaos schedule injects 2 corrupt and 2 panic
	// faults (rounds 1, 3, 4, 7); see faults.Config.Schedule.
	primaryInj := faults.NewInjector(faults.Chaos(12, 0.3))
	backupInj := [2]*faults.Injector{
		faults.NewInjector(faults.Chaos(100, 0.3)),
		faults.NewInjector(faults.Chaos(200, 0.3)),
	}
	backupOpts := func(inj *faults.Injector, seed int64) hybrid.Options {
		return hybrid.Options{Reads: 2, Sweeps: 40, Seed: seed, Faults: inj}
	}

	method := qlrb.NewQuantum("Q_hedged", qlrb.QCQM1, budget,
		hybrid.Options{Reads: 2, Sweeps: 40, Seed: 7, Faults: primaryInj})
	method.Opts.Wrap = func(inner solve.Solver) solve.Solver {
		s, err := hedge.New(hedge.Options{Delay: 20 * time.Millisecond},
			inner,
			hybrid.New(backupOpts(backupInj[0], 8)),
			hybrid.New(backupOpts(backupInj[1], 9)),
		)
		if err != nil {
			t.Fatalf("hedge.New: %v", err)
		}
		return s
	}

	reg := obs.NewRegistry()
	res, err := Run(context.Background(),
		StaticWorkload{In: testInstance()}, method,
		Config{Runtime: runtimeCfg(), Iterations: iterations, MigrationBudget: budget, Obs: reg})
	if err != nil {
		t.Fatalf("chaos run aborted: %v", err)
	}
	if len(res.Iterations) != iterations {
		t.Fatalf("completed %d/%d rounds", len(res.Iterations), iterations)
	}
	if got := reg.Counter("dlb.rounds").Value(); got != iterations {
		t.Fatalf("dlb.rounds = %d, want %d", got, iterations)
	}

	// Every applied plan passed verification, so no round may exceed the
	// migration budget (degraded rounds reapply an already-verified plan
	// or the identity, which never migrates more).
	for i, ir := range res.Iterations {
		if ir.Migrated > budget {
			t.Fatalf("round %d migrated %d tasks past budget %d", i, ir.Migrated, budget)
		}
		if ir.Degraded && ir.Err == nil {
			t.Fatalf("round %d degraded without recording the cause", i)
		}
	}

	// The primary hedge backend is launched exactly once per round, so
	// its draws replay seed 12's schedule verbatim: the run demonstrably
	// survived injected corruption AND injected panics.
	if got := primaryInj.Attempts(); got != iterations {
		t.Fatalf("primary backend drew %d faults, want one per round (%d)", got, iterations)
	}
	counts := primaryInj.Counts()
	if counts[faults.Corrupt] != 2 || counts[faults.Panic] != 2 {
		t.Fatalf("primary fault mix = %v, want 2 corrupt + 2 panic", counts)
	}
}

// dishonest returns a hand-built plan violating the named invariant —
// the kind of reply a buggy or compromised solver could produce.
type dishonest struct{ mode string }

func (d dishonest) Name() string { return "dishonest-" + d.mode }

func (d dishonest) Rebalance(_ context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	p := lrp.NewPlan(in)
	switch d.mode {
	case "overbudget":
		// Legal plan shape, but migrates every task off process 0.
		p.Move(0, 1, in.Tasks[0])
	case "conservation":
		p.X[0][0]++ // column 0 now sums to Tasks[0]+1
	case "negative":
		p.X[1][0]-- // off-diagonal entry below zero...
		p.X[0][0]++ // ...hidden behind an intact column sum
	}
	return p, nil
}

// TestRunRejectsUnverifiablePlans proves the driver's verify gate: a
// method handing back a constraint-violating plan degrades the round
// with an errors.Is-able ErrVerify naming the broken constraint, and
// the corrupt plan never reaches the runtime.
func TestRunRejectsUnverifiablePlans(t *testing.T) {
	cases := []struct {
		mode   string
		budget int
	}{
		{"overbudget", 3},
		{"conservation", 0},
		{"negative", 0},
	}
	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			reg := obs.NewRegistry()
			res, err := Run(context.Background(),
				StaticWorkload{In: testInstance()}, dishonest{mode: tc.mode},
				Config{Runtime: runtimeCfg(), Iterations: 2, MigrationBudget: tc.budget, Obs: reg})
			if err != nil {
				t.Fatalf("non-strict run aborted: %v", err)
			}
			if res.DegradedRounds != 2 {
				t.Fatalf("DegradedRounds = %d, want every round rejected", res.DegradedRounds)
			}
			if res.TotalMigrated != 0 {
				t.Fatalf("rejected plans still migrated %d tasks", res.TotalMigrated)
			}
			for i, ir := range res.Iterations {
				if !errors.Is(ir.Err, ErrVerify) || !errors.Is(ir.Err, verify.ErrRejected) {
					t.Fatalf("round %d: Err = %v, want ErrVerify/verify.ErrRejected", i, ir.Err)
				}
			}
			if got := reg.Counter("dlb.rejected_plans").Value(); got != 2 {
				t.Fatalf("dlb.rejected_plans = %d, want 2", got)
			}

			// Strict mode surfaces the same rejection as a hard failure.
			_, err = Run(context.Background(),
				StaticWorkload{In: testInstance()}, dishonest{mode: tc.mode},
				Config{Runtime: runtimeCfg(), Iterations: 1, MigrationBudget: tc.budget, Strict: true})
			if !errors.Is(err, ErrRebalance) || !errors.Is(err, ErrVerify) {
				t.Fatalf("strict err = %v, want ErrRebalance wrapping ErrVerify", err)
			}
		})
	}
}

// TestRunVerifyNamesBrokenConstraint pins the verifier's report to the
// constraint vocabulary: a conservation-breaking plan is rejected with
// the "conserve[j]" check named in the error text.
func TestRunVerifyNamesBrokenConstraint(t *testing.T) {
	res, err := Run(context.Background(),
		StaticWorkload{In: testInstance()}, dishonest{mode: "conservation"},
		Config{Runtime: runtimeCfg(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Iterations[0].Err; got == nil || !errors.Is(got, ErrVerify) {
		t.Fatalf("Err = %v, want ErrVerify", got)
	} else if want := "conserve[0]"; !strings.Contains(got.Error(), want) {
		t.Fatalf("rejection %q does not name %s", got.Error(), want)
	}
}

package dlb

import (
	"context"
	"testing"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/plancache"
)

// countingRebalancer wraps a method and counts how often the driver
// actually invokes it — cache hits must not reach the method at all.
type countingRebalancer struct {
	inner balancer.Rebalancer
	calls int
}

func (c *countingRebalancer) Name() string { return c.inner.Name() }

func (c *countingRebalancer) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	c.calls++
	return c.inner.Rebalance(ctx, in)
}

// TestRunCacheShortCircuitsStaticWorkload: a static workload repeats
// one instance, so after the first round every plan comes from the
// cache and the method is never called again.
func TestRunCacheShortCircuitsStaticWorkload(t *testing.T) {
	const iters = 6
	method := &countingRebalancer{inner: balancer.ProactLB{}}
	reg := obs.NewRegistry()
	cfg := Config{
		Runtime:    runtimeCfg(),
		Iterations: iters,
		Cache:      plancache.New(plancache.Config{}),
		Obs:        reg,
	}
	res, err := Run(context.Background(), StaticWorkload{In: testInstance()}, method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if method.calls != 1 {
		t.Fatalf("method invoked %d times, want 1 (cache must absorb repeats)", method.calls)
	}
	if res.CacheHits != iters-1 {
		t.Fatalf("CacheHits = %d, want %d", res.CacheHits, iters-1)
	}
	if v := reg.Counter("dlb.cache_hits").Value(); v != int64(iters-1) {
		t.Fatalf("dlb.cache_hits = %d, want %d", v, iters-1)
	}
	if res.Iterations[0].CacheHit {
		t.Fatal("first round cannot be a cache hit")
	}
	for i := 1; i < iters; i++ {
		ir := res.Iterations[i]
		if !ir.CacheHit || ir.Degraded {
			t.Fatalf("iteration %d: CacheHit=%v Degraded=%v", i, ir.CacheHit, ir.Degraded)
		}
		// A cached round must match the solved round's quality exactly:
		// same instance, same (byte-identical) plan.
		if ir.Imbalance != res.Iterations[0].Imbalance {
			t.Fatalf("iteration %d: imbalance %v != first round's %v", i, ir.Imbalance, res.Iterations[0].Imbalance)
		}
	}
	if res.DegradedRounds != 0 {
		t.Fatalf("DegradedRounds = %d", res.DegradedRounds)
	}
}

// TestRunCacheHitsPermutedDrift: a drifting workload rotates the weight
// vector every round. The instances differ positionally but share the
// canonical fingerprint, so rounds 1..m-1 are served permuted replays
// of round 0's plan — the rebalancer runs exactly once per distinct
// load shape, not once per round.
func TestRunCacheHitsPermutedDrift(t *testing.T) {
	const iters = 8 // two full rotations of the m=4 hot spot
	method := &countingRebalancer{inner: balancer.ProactLB{}}
	cfg := Config{
		Runtime:    runtimeCfg(),
		Iterations: iters,
		Cache:      plancache.New(plancache.Config{}),
	}
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	res, err := Run(context.Background(), w, method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if method.calls != 1 {
		t.Fatalf("method invoked %d times, want 1 (rotations share one canonical shape)", method.calls)
	}
	if res.CacheHits != iters-1 {
		t.Fatalf("CacheHits = %d, want %d", res.CacheHits, iters-1)
	}
	// Cached permuted plans must not cost quality: the run still beats
	// the baseline on the drifting hot spot.
	if res.Speedup <= 1 {
		t.Fatalf("speedup %v with cached plans, want > 1", res.Speedup)
	}
	if res.DegradedRounds != 0 {
		t.Fatalf("DegradedRounds = %d", res.DegradedRounds)
	}
}

// TestRunCacheKeyedByBudget: entries are keyed by the migration budget,
// so a run with a different budget never reuses a plan cached under a
// looser one.
func TestRunCacheKeyedByBudget(t *testing.T) {
	cache := plancache.New(plancache.Config{})
	w := StaticWorkload{In: testInstance()}

	loose := &countingRebalancer{inner: balancer.ProactLB{}}
	if _, err := Run(context.Background(), w, loose, Config{
		Runtime: runtimeCfg(), Iterations: 2, Cache: cache,
	}); err != nil {
		t.Fatal(err)
	}
	tight := &countingRebalancer{inner: balancer.ProactLB{}}
	res, err := Run(context.Background(), w, tight, Config{
		Runtime: runtimeCfg(), Iterations: 2, Cache: cache, MigrationBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.calls == 0 {
		t.Fatal("budgeted run reused a plan cached under no budget")
	}
	for _, ir := range res.Iterations {
		if ir.Migrated > 3 && !ir.Degraded {
			t.Fatalf("budget violated: migrated %d", ir.Migrated)
		}
	}
}

package dlb

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/balancer"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/wal"
)

// countingMethod counts Rebalance invocations — the expensive calls a
// resumed run must not repeat. Run is single-goroutine, so a plain int
// is race-free.
type countingMethod struct {
	inner balancer.Rebalancer
	calls int
}

func (m *countingMethod) Name() string { return m.inner.Name() }

func (m *countingMethod) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	m.calls++
	return m.inner.Rebalance(ctx, in)
}

// memRoundJournal collects records in memory.
type memRoundJournal struct{ recs [][]byte }

func (j *memRoundJournal) Append(b []byte) error {
	j.recs = append(j.recs, append([]byte(nil), b...))
	return nil
}

type failJournal struct{}

func (failJournal) Append([]byte) error { return errors.New("disk full") }

// sameNumbers asserts two results agree on everything a resumed run
// must reproduce: per-round numbers and flags (except Replayed, which
// is the point of the resume) and the aggregate totals.
func sameNumbers(t *testing.T, got, want Result) {
	t.Helper()
	if len(got.Iterations) != len(want.Iterations) {
		t.Fatalf("iterations = %d, want %d", len(got.Iterations), len(want.Iterations))
	}
	for i := range want.Iterations {
		g, w := got.Iterations[i], want.Iterations[i]
		g.Replayed, w.Replayed = false, false
		g.Err, w.Err = nil, nil
		if g != w {
			t.Fatalf("iteration %d = %+v, want %+v", i, g, w)
		}
	}
	if got.TotalMakespanMs != want.TotalMakespanMs ||
		got.TotalBaselineMs != want.TotalBaselineMs ||
		got.TotalMigrated != want.TotalMigrated ||
		got.DegradedRounds != want.DegradedRounds ||
		got.Speedup != want.Speedup {
		t.Fatalf("totals = %+v, want %+v", got, want)
	}
}

func driftCfg(iters int) Config {
	return Config{Runtime: runtimeCfg(), Iterations: iters}
}

func TestResumeSkipsCompletedRounds(t *testing.T) {
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	const iters = 6

	// The reference: an uninterrupted run.
	ref := &countingMethod{inner: balancer.Greedy{}}
	want, err := Run(context.Background(), w, ref, driftCfg(iters))
	if err != nil {
		t.Fatal(err)
	}
	if ref.calls != iters {
		t.Fatalf("reference method calls = %d, want %d", ref.calls, iters)
	}

	// The interrupted run: 4 of 6 rounds complete, then the crash.
	j := &memRoundJournal{}
	cfg := driftCfg(4)
	cfg.Journal = j
	if _, err := Run(context.Background(), w, &countingMethod{inner: balancer.Greedy{}}, cfg); err != nil {
		t.Fatal(err)
	}
	if len(j.recs) != 4 {
		t.Fatalf("journaled %d rounds, want 4", len(j.recs))
	}

	// The resumed run replays the 4 journaled rounds and solves only
	// the last 2 live.
	m := &countingMethod{inner: balancer.Greedy{}}
	reg := obs.NewRegistry()
	cfg = driftCfg(iters)
	cfg.Journal = j
	cfg.Resume = j.recs
	cfg.Obs = reg
	got, err := Run(context.Background(), w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls != 2 {
		t.Fatalf("method calls after resume = %d, want 2", m.calls)
	}
	if got.ReplayedRounds != 4 {
		t.Fatalf("ReplayedRounds = %d, want 4", got.ReplayedRounds)
	}
	for i, ir := range got.Iterations {
		if ir.Replayed != (i < 4) {
			t.Fatalf("iteration %d Replayed = %v", i, ir.Replayed)
		}
	}
	sameNumbers(t, got, want)
	if v := reg.Counter("dlb.replayed_rounds").Value(); v != 4 {
		t.Fatalf("dlb.replayed_rounds = %d, want 4", v)
	}
	// The live tail was journaled too: a second crash after round 5
	// would resume all 6.
	if len(j.recs) != iters {
		t.Fatalf("journal holds %d rounds after resume, want %d", len(j.recs), iters)
	}
}

func TestResumeRejectsDivergedJournal(t *testing.T) {
	// Journal a run on one workload, then resume against a workload of
	// a different shape: every record must fail re-verification and the
	// whole trace must run live — journaled numbers are never trusted
	// against an instance they don't describe.
	j := &memRoundJournal{}
	cfg := driftCfg(3)
	cfg.Journal = j
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	if _, err := Run(context.Background(), w, balancer.Greedy{}, cfg); err != nil {
		t.Fatal(err)
	}

	other := StaticWorkload{In: lrp.MustInstance([]int{6, 6, 6}, []float64{1, 2, 3})}
	want, err := Run(context.Background(), other, balancer.Greedy{}, driftCfg(3))
	if err != nil {
		t.Fatal(err)
	}

	m := &countingMethod{inner: balancer.Greedy{}}
	reg := obs.NewRegistry()
	cfg = driftCfg(3)
	cfg.Resume = j.recs
	cfg.Obs = reg
	got, err := Run(context.Background(), other, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls != 3 || got.ReplayedRounds != 0 {
		t.Fatalf("calls = %d, ReplayedRounds = %d; want 3, 0", m.calls, got.ReplayedRounds)
	}
	sameNumbers(t, got, want)
	if reg.Counter("dlb.resume_rejects").Value() == 0 {
		t.Fatal("dlb.resume_rejects not counted")
	}
}

func TestResumeDropsMalformedAndGappedRecords(t *testing.T) {
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	j := &memRoundJournal{}
	cfg := driftCfg(5)
	cfg.Journal = j
	want, err := Run(context.Background(), w, balancer.Greedy{}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the journal: garbage bytes, a wrong-version record, and a
	// gap (round 2 missing). Only rounds 0–1 — the contiguous verified
	// prefix — may replay.
	recs := [][]byte{
		j.recs[0],
		j.recs[1],
		[]byte("{torn frame"),
		[]byte(`{"v":99,"it":2,"plan":[[1]]}`),
		j.recs[3],
		j.recs[4],
	}
	m := &countingMethod{inner: balancer.Greedy{}}
	reg := obs.NewRegistry()
	cfg = driftCfg(5)
	cfg.Resume = recs
	cfg.Obs = reg
	got, err := Run(context.Background(), w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReplayedRounds != 2 || m.calls != 3 {
		t.Fatalf("ReplayedRounds = %d, calls = %d; want 2, 3", got.ReplayedRounds, m.calls)
	}
	sameNumbers(t, got, want)
	if reg.Counter("dlb.resume_rejects").Value() != 4 {
		t.Fatalf("dlb.resume_rejects = %d, want 4 (2 malformed + 2 orphaned)",
			reg.Counter("dlb.resume_rejects").Value())
	}
}

func TestJournalFailureDoesNotAbortRun(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := driftCfg(3)
	cfg.Journal = failJournal{}
	cfg.Obs = reg
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	res, err := Run(context.Background(), w, balancer.Greedy{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("run truncated to %d rounds", len(res.Iterations))
	}
	if v := reg.Counter("dlb.journal_errors").Value(); v != 3 {
		t.Fatalf("dlb.journal_errors = %d, want 3", v)
	}
}

// TestResumeThroughWAL is the end-to-end shape: the round journal
// lives in a real CRC-framed WAL, the "crash" is a reopen, and the
// resumed run completes the trace without re-invoking the method for
// finished rounds.
func TestResumeThroughWAL(t *testing.T) {
	dir := t.TempDir()
	clk := solve.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	open := func() (*wal.Log, [][]byte) {
		t.Helper()
		log, recs, err := wal.Open(wal.Options{Dir: dir, Name: "dlb", Policy: wal.SyncAlways, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		return log, recs
	}
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	const iters = 5

	want, err := Run(context.Background(), w, balancer.Greedy{}, driftCfg(iters))
	if err != nil {
		t.Fatal(err)
	}

	log1, recs := open()
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	cfg := driftCfg(3)
	cfg.Journal = log1
	if _, err := Run(context.Background(), w, balancer.Greedy{}, cfg); err != nil {
		t.Fatal(err)
	}
	log1.Close() //nolint:errcheck — crash boundary

	log2, recs := open()
	defer log2.Close()
	m := &countingMethod{inner: balancer.Greedy{}}
	cfg = driftCfg(iters)
	cfg.Journal = log2
	cfg.Resume = recs
	got, err := Run(context.Background(), w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReplayedRounds != 3 || m.calls != 2 {
		t.Fatalf("ReplayedRounds = %d, calls = %d; want 3, 2", got.ReplayedRounds, m.calls)
	}
	sameNumbers(t, got, want)
}

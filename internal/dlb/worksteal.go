package dlb

import (
	"container/heap"
	"fmt"

	"repro/internal/lrp"
)

// WorkStealing simulates the classic dynamic-LB alternative the paper's
// related work discusses (Blumofe & Leiserson; delayed in HPC per Li et
// al.): during an iteration, a process that runs out of work steals a
// queued task from the currently busiest process, paying StealLatencyMs
// per steal. Unlike the LRP methods it needs no load model, but every
// steal happens on the critical path.
type WorkStealing struct {
	// Workers per process.
	Workers int
	// StealLatencyMs is the delay between requesting and receiving a
	// stolen task.
	StealLatencyMs float64
}

// StealResult reports a simulated work-stealing iteration.
type StealResult struct {
	// MakespanMs is the iteration wall time.
	MakespanMs float64
	// Steals counts successful steals.
	Steals int
	// StolenPlan records where tasks ended up, as a migration plan
	// (evaluable with lrp.Evaluate like any other method's output).
	StolenPlan *lrp.Plan
}

// procState tracks one process during the stealing simulation.
type procState struct {
	idx     int
	queued  int     // tasks not yet started
	w       float64 // per-task load
	busyTil []float64
}

// Simulate runs one iteration with work stealing. Each process executes
// its own queue on Workers workers; when a process would idle and some
// other process still has queued tasks, it steals one from the process
// with the most remaining queued work.
func (ws WorkStealing) Simulate(in *lrp.Instance) (StealResult, error) {
	if ws.Workers <= 0 {
		return StealResult{}, fmt.Errorf("%w: work stealing needs positive Workers", ErrConfig)
	}
	m := in.NumProcs()
	procs := make([]procState, m)
	for j := 0; j < m; j++ {
		procs[j] = procState{idx: j, queued: in.Tasks[j], w: in.Weight[j], busyTil: make([]float64, ws.Workers)}
	}
	plan := lrp.NewPlan(in)
	res := StealResult{}

	// Event-free greedy simulation: repeatedly take the globally
	// earliest-free worker and give it a task — local if its process
	// has one queued, stolen from the max-remaining-work process
	// otherwise.
	h := &workerHeap{}
	for j := range procs {
		for s := range procs[j].busyTil {
			heap.Push(h, workerRef{j, s, 0})
		}
	}
	remainingWork := func(j int) float64 { return float64(procs[j].queued) * procs[j].w }
	totalQueued := in.NumTasks()
	for totalQueued > 0 {
		wr := heap.Pop(h).(workerRef)
		p := &procs[wr.proc]
		start := wr.free
		var load float64
		if p.queued > 0 {
			p.queued--
			load = p.w
		} else {
			// Steal from the busiest queue.
			victim := -1
			for j := range procs {
				if procs[j].queued > 0 && (victim < 0 || remainingWork(j) > remainingWork(victim)) {
					victim = j
				}
			}
			if victim < 0 {
				continue // nothing left anywhere; worker retires
			}
			procs[victim].queued--
			load = procs[victim].w
			start += ws.StealLatencyMs
			plan.Move(wr.proc, victim, 1)
			res.Steals++
		}
		totalQueued--
		end := start + load
		if end > res.MakespanMs {
			res.MakespanMs = end
		}
		heap.Push(h, workerRef{wr.proc, wr.slot, end})
	}
	res.StolenPlan = plan
	return res, nil
}

// workerRef is one worker slot in the global earliest-free heap.
type workerRef struct {
	proc, slot int
	free       float64
}

type workerHeap []workerRef

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i].free < h[j].free }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(workerRef)) }
func (h *workerHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

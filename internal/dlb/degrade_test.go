package dlb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/balancer"
	"repro/internal/lrp"
)

// flaky fails Rebalance on the listed rounds and otherwise delegates to
// an inner method.
type flaky struct {
	inner balancer.Rebalancer
	fail  map[int]bool
	calls int
}

var errCloudDown = errors.New("cloud down")

func (f *flaky) Name() string { return "flaky(" + f.inner.Name() + ")" }

func (f *flaky) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	call := f.calls
	f.calls++
	if f.fail[call] {
		return nil, fmt.Errorf("round %d: %w", call, errCloudDown)
	}
	return f.inner.Rebalance(ctx, in)
}

func TestRunDegradesToPreviousPlan(t *testing.T) {
	method := &flaky{inner: balancer.ProactLB{}, fail: map[int]bool{1: true, 3: true}}
	w := StaticWorkload{In: testInstance()}
	res, err := Run(context.Background(), w, method, Config{Runtime: runtimeCfg(), Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 5 {
		t.Fatalf("only %d iterations completed", len(res.Iterations))
	}
	if res.DegradedRounds != 2 {
		t.Fatalf("DegradedRounds = %d, want 2", res.DegradedRounds)
	}
	for i, ir := range res.Iterations {
		wantDegraded := i == 1 || i == 3
		if ir.Degraded != wantDegraded {
			t.Fatalf("iteration %d: Degraded = %v", i, ir.Degraded)
		}
		if wantDegraded {
			if !errors.Is(ir.Err, ErrRebalance) || !errors.Is(ir.Err, errCloudDown) {
				t.Fatalf("iteration %d: Err = %v", i, ir.Err)
			}
			// The previous good plan stands in: on a static workload it
			// yields the same balance as the round before.
			if math.Abs(ir.Imbalance-res.Iterations[i-1].Imbalance) > 1e-9 {
				t.Fatalf("iteration %d: stale plan gave R_imb %v, previous round %v",
					i, ir.Imbalance, res.Iterations[i-1].Imbalance)
			}
		} else if ir.Err != nil {
			t.Fatalf("iteration %d: unexpected Err %v", i, ir.Err)
		}
	}
}

func TestRunDegradesToIdentityWhenNoPlanYet(t *testing.T) {
	method := &flaky{inner: balancer.ProactLB{}, fail: map[int]bool{0: true, 1: true, 2: true}}
	w := StaticWorkload{In: testInstance()}
	res, err := Run(context.Background(), w, method, Config{Runtime: runtimeCfg(), Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedRounds != 3 {
		t.Fatalf("DegradedRounds = %d, want 3", res.DegradedRounds)
	}
	if res.TotalMigrated != 0 {
		t.Fatalf("identity fallback migrated %d tasks", res.TotalMigrated)
	}
	for i, ir := range res.Iterations {
		if math.Abs(ir.MakespanMs-ir.BaselineMakespanMs) > 1e-9 {
			t.Fatalf("iteration %d: identity plan changed the makespan: %v vs %v",
				i, ir.MakespanMs, ir.BaselineMakespanMs)
		}
	}
	if math.Abs(res.Speedup-1) > 1e-9 {
		t.Fatalf("speedup %v, want 1 on identity-only rounds", res.Speedup)
	}
}

func TestRunStrictAbortsOnRebalanceFailure(t *testing.T) {
	method := &flaky{inner: balancer.ProactLB{}, fail: map[int]bool{1: true}}
	w := StaticWorkload{In: testInstance()}
	_, err := Run(context.Background(), w, method, Config{Runtime: runtimeCfg(), Iterations: 4, Strict: true})
	if !errors.Is(err, ErrRebalance) {
		t.Fatalf("err = %v, want ErrRebalance", err)
	}
	if !errors.Is(err, errCloudDown) {
		t.Fatalf("err = %v, want the cause wrapped", err)
	}
}

func TestRunWorkloadErrorWrapped(t *testing.T) {
	bad := DriftingWorkload{Base: &lrp.Instance{}}
	_, err := Run(context.Background(), bad, balancer.Greedy{}, Config{Runtime: runtimeCfg(), Iterations: 1})
	if !errors.Is(err, ErrWorkload) {
		t.Fatalf("err = %v, want ErrWorkload", err)
	}
}

func TestRunCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, StaticWorkload{In: testInstance()}, balancer.Greedy{}, Config{Runtime: runtimeCfg(), Iterations: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Iterations) != 0 {
		t.Fatalf("%d iterations ran under a cancelled context", len(res.Iterations))
	}
}

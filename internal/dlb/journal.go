package dlb

// Round journal: crash-safe resume for long driven traces.
//
// When Config.Journal is set, Run appends one compact JSON record per
// completed round — the plan that was actually applied plus the flags
// needed to reproduce the round's accounting. When Config.Resume holds
// the records of an interrupted run (e.g. the replay slice a
// wal.Open returns), Run replays the journaled prefix instead of
// re-solving it: each record's plan is re-verified against the
// workload's regenerated instance for that iteration and re-executed
// on the runtime simulator, so the makespan numbers are recomputed,
// never trusted from disk. The rebalancing method — the expensive
// part of a round, possibly a cloud round trip — is only invoked from
// the first unjournaled iteration onward.
//
// A record that no longer matches the live run (different workload,
// tighter migration budget, corrupt plan) stops the replay at that
// round: the remainder of the trace re-runs live and journals fresh
// records. Replay resolves duplicate round indices last-record-wins,
// so a journal that diverged once self-heals on the next resume.

import (
	"encoding/json"
	"errors"

	"repro/internal/chameleon"
	"repro/internal/lrp"
	"repro/internal/verify"
)

// journalVersion is bumped when roundRecord changes incompatibly;
// records with a different version are dropped on resume, not guessed
// at.
const journalVersion = 1

// Journal receives one durable record per completed round. *wal.Log
// satisfies it; so does anything else with an append-only Append.
type Journal interface {
	Append(record []byte) error
}

// roundRecord is the wire form of one completed round.
type roundRecord struct {
	V        int     `json:"v"`
	It       int     `json:"it"`
	Plan     [][]int `json:"plan"`
	Degraded bool    `json:"degraded,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// decodeResume parses recovered journal records into the contiguous
// replayable prefix of rounds starting at iteration 0. Malformed
// records, wrong-version records and rounds beyond the first gap are
// dropped (counted on dlb.resume_rejects); duplicate indices resolve
// last-record-wins so a post-divergence journal replays its corrected
// tail.
func decodeResume(cfg Config) []roundRecord {
	if len(cfg.Resume) == 0 {
		return nil
	}
	byIt := make(map[int]roundRecord, len(cfg.Resume))
	dropped := 0
	for _, b := range cfg.Resume {
		var rec roundRecord
		if err := json.Unmarshal(b, &rec); err != nil ||
			rec.V != journalVersion || rec.It < 0 || len(rec.Plan) == 0 {
			dropped++
			continue
		}
		byIt[rec.It] = rec
	}
	prefix := make([]roundRecord, 0, len(byIt))
	for {
		rec, ok := byIt[len(prefix)]
		if !ok {
			break
		}
		prefix = append(prefix, rec)
	}
	if orphans := len(byIt) - len(prefix); orphans+dropped > 0 {
		cfg.Obs.Counter("dlb.resume_rejects").Add(int64(orphans + dropped))
	}
	return prefix
}

// replayRound re-executes one journaled round against the live
// workload: the recorded plan must pass the independent verifier (a
// degraded round's plan is exempt from the migration budget, exactly
// as the degrade ladder was when it first applied) and must apply to
// a fresh runtime. Any mismatch reports ok=false and the caller falls
// back to running the round live.
func (cfg Config) replayRound(in *lrp.Instance, rec roundRecord) (rt *chameleon.Runtime, mig chameleon.MigrationStats, plan *lrp.Plan, ok bool) {
	cand := &lrp.Plan{X: rec.Plan}
	budget := -1
	if !rec.Degraded && cfg.MigrationBudget > 0 {
		budget = cfg.MigrationBudget
	}
	if verify.Plan(in, cand, budget, verify.Options{}).Err() != nil {
		return nil, chameleon.MigrationStats{}, nil, false
	}
	rt, err := chameleon.New(cfg.Runtime, in)
	if err != nil {
		return nil, chameleon.MigrationStats{}, nil, false
	}
	if mig, err = rt.ApplyPlan(cand); err != nil {
		return nil, chameleon.MigrationStats{}, nil, false
	}
	return rt, mig, cand, true
}

// replayErr rebuilds the per-round error of a journaled degraded
// round from its recorded text.
func replayErr(rec roundRecord) error {
	if !rec.Degraded {
		return nil
	}
	if rec.Err == "" {
		return errors.New("replayed degraded round")
	}
	return errors.New(rec.Err)
}

// journalRound persists one completed round. Journal failures never
// fail the run — durability degrades, the trace does not — they are
// counted on dlb.journal_errors for the operator.
func (cfg Config) journalRound(it int, plan *lrp.Plan, ir IterationResult) {
	if cfg.Journal == nil {
		return
	}
	rec := roundRecord{
		V: journalVersion, It: it, Plan: plan.X,
		Degraded: ir.Degraded, CacheHit: ir.CacheHit,
	}
	if ir.Err != nil {
		rec.Err = ir.Err.Error()
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = cfg.Journal.Append(b)
	}
	if err != nil {
		cfg.Obs.Counter("dlb.journal_errors").Inc()
	}
}

package dlb

import (
	"context"
	"testing"

	"repro/internal/chameleon"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/shard"
)

// TestShardedRebalancerDrivenRun proves the sharded hierarchy is a
// first-class dlb backend: a driven BSP run over an instance too wide
// for the paper's monolithic regime (48 processes ≈ 48·47·|C| qubits)
// completes with every round's plan passing the driver's verification
// gate and no degraded rounds.
func TestShardedRebalancerDrivenRun(t *testing.T) {
	tasks := make([]int, 48)
	weight := make([]float64, 48)
	for j := range tasks {
		tasks[j] = 8
		weight[j] = 1
		if j%8 == 0 {
			weight[j] = 6
		}
	}
	in := lrp.MustInstance(tasks, weight)

	reg := obs.NewRegistry()
	method := shard.New("Shard_s8", shard.Options{
		Size:   8,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 64},
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 100, Seed: 31},
		Obs:    reg,
	})
	res, err := Run(context.Background(), StaticWorkload{In: in}, method, Config{
		Runtime:         chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1},
		Iterations:      3,
		MigrationBudget: 64,
		Obs:             reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DegradedRounds != 0 {
		t.Fatalf("%d degraded rounds; sharded plans should pass the driver's gate", res.DegradedRounds)
	}
	if res.TotalMigrated == 0 {
		t.Fatal("sharded rebalancer migrated nothing across the run")
	}
	if method.LastStats.Groups != 6 {
		t.Fatalf("LastStats.Groups = %d, want 6", method.LastStats.Groups)
	}
	if got := reg.Counter("dlb.rounds").Value(); got != 3 {
		t.Fatalf("dlb.rounds = %d, want 3", got)
	}
}

package dlb

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/lrp"
)

func testInstance() *lrp.Instance {
	return lrp.MustInstance([]int{12, 12, 12, 12}, []float64{1, 1, 1, 5})
}

func runtimeCfg() chameleon.Config {
	return chameleon.Config{Workers: 2, LatencyMs: 0.2, PerTaskMs: 0.1}
}

func TestStaticWorkload(t *testing.T) {
	w := StaticWorkload{In: testInstance()}
	a, err := w.Iteration(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Iteration(5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Weight {
		if a.Weight[j] != b.Weight[j] {
			t.Fatal("static workload drifted")
		}
	}
}

func TestDriftingWorkloadRotates(t *testing.T) {
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	in0, err := w.Iteration(0)
	if err != nil {
		t.Fatal(err)
	}
	in1, err := w.Iteration(1)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation preserves the weight multiset but moves the hot spot.
	if in0.Weight[3] != 5 {
		t.Fatalf("iteration 0 weights %v", in0.Weight)
	}
	hot := -1
	for j, wgt := range in1.Weight {
		if wgt == 5 {
			hot = j
		}
	}
	if hot == 3 {
		t.Fatal("drift did not move the hot process")
	}
	if in1.Imbalance() != in0.Imbalance() {
		t.Fatal("rotation changed the imbalance level")
	}
	// Empty base errors.
	bad := DriftingWorkload{Base: &lrp.Instance{}}
	if _, err := bad.Iteration(0); err == nil {
		t.Fatal("empty base accepted")
	}
}

func TestRunImprovesDriftingWorkload(t *testing.T) {
	w := DriftingWorkload{Base: testInstance(), Drift: 1}
	cfg := Config{Runtime: runtimeCfg(), Iterations: 4}
	res, err := Run(context.Background(), w, balancer.ProactLB{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 4 {
		t.Fatalf("%d iterations", len(res.Iterations))
	}
	if res.Speedup <= 1 {
		t.Fatalf("rebalancing should beat baseline on a drifting hot spot, speedup %v", res.Speedup)
	}
	if res.TotalMigrated == 0 {
		t.Fatal("no migrations on an imbalanced workload")
	}
	for i, ir := range res.Iterations {
		if ir.MakespanMs <= 0 || ir.BaselineMakespanMs <= 0 {
			t.Fatalf("iteration %d: %+v", i, ir)
		}
	}
}

func TestRunBaselineMethodIsNeutral(t *testing.T) {
	w := StaticWorkload{In: testInstance()}
	res, err := Run(context.Background(), w, balancer.Baseline{}, Config{Runtime: runtimeCfg(), Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Speedup-1) > 1e-9 {
		t.Fatalf("baseline method speedup %v, want 1", res.Speedup)
	}
	if res.TotalMigrated != 0 {
		t.Fatal("baseline migrated tasks")
	}
}

func TestRunDefaultsToOneIteration(t *testing.T) {
	res, err := Run(context.Background(), StaticWorkload{In: testInstance()}, balancer.Greedy{}, Config{Runtime: runtimeCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("%d iterations, want 1", len(res.Iterations))
	}
}

func TestWorkStealingBalancesAndCounts(t *testing.T) {
	in := testInstance()
	ws := WorkStealing{Workers: 2, StealLatencyMs: 0.1}
	res, err := ws.Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals on an imbalanced input")
	}
	if err := res.StolenPlan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := res.StolenPlan.Migrated(); got != res.Steals {
		t.Fatalf("plan migrations %d != steals %d", got, res.Steals)
	}
	// Stealing beats the no-stealing makespan: hot proc alone would
	// take 12*5/2 = 30.
	if res.MakespanMs >= 30 {
		t.Fatalf("makespan %v, stealing should beat 30", res.MakespanMs)
	}
	// And cannot beat the theoretical optimum total/(m*workers).
	lower := in.TotalLoad() / 8
	if res.MakespanMs < lower-1e-9 {
		t.Fatalf("makespan %v below the physical bound %v", res.MakespanMs, lower)
	}
}

func TestWorkStealingBalancedInputNoSteals(t *testing.T) {
	in := lrp.MustInstance([]int{10, 10}, []float64{2, 2})
	res, err := WorkStealing{Workers: 2}.Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals != 0 {
		t.Fatalf("%d steals on a balanced input", res.Steals)
	}
	if math.Abs(res.MakespanMs-10) > 1e-9 {
		t.Fatalf("makespan %v, want 10", res.MakespanMs)
	}
}

func TestWorkStealingValidation(t *testing.T) {
	if _, err := (WorkStealing{}).Simulate(testInstance()); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestWorkStealingLatencySlowdownProperty(t *testing.T) {
	// Higher steal latency never improves the makespan.
	f := func(l1Raw, l2Raw uint8) bool {
		l1 := float64(l1Raw) / 16
		l2 := float64(l2Raw) / 16
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		in := testInstance()
		a, err := WorkStealing{Workers: 2, StealLatencyMs: l1}.Simulate(in)
		if err != nil {
			return false
		}
		b, err := WorkStealing{Workers: 2, StealLatencyMs: l2}.Simulate(in)
		if err != nil {
			return false
		}
		return a.MakespanMs <= b.MakespanMs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkStealingConservesTasksProperty(t *testing.T) {
	f := func(seed int64) bool {
		base := testInstance()
		w := DriftingWorkload{Base: base, Drift: int(seed%4) + 1}
		in, err := w.Iteration(int(seed % 7))
		if err != nil {
			return false
		}
		res, err := WorkStealing{Workers: 3, StealLatencyMs: 0.05}.Simulate(in)
		if err != nil {
			return false
		}
		return res.StolenPlan.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

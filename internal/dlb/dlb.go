// Package dlb closes the loop the paper's introduction draws (Figure 1):
// a bulk-synchronous application iterates, load drifts, and a
// rebalancing method migrates tasks between iterations. The driver runs
// any balancer.Rebalancer (classical or quantum-hybrid) inside a
// multi-iteration simulated execution and accounts both the balance
// achieved and the migration overhead paid — the trade-off the paper's
// k constraint is about.
//
// It also provides a distributed work-stealing baseline (Section III's
// related work): idle processes steal queued tasks from busy ones at
// runtime, paying per-steal latency. Work stealing needs no load model
// at all but pays for every stolen task during the iteration.
package dlb

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/verify"
)

// Sentinel errors: every failure Run returns wraps one of these (plus
// the underlying cause, both reachable via errors.Is/As), so callers
// can distinguish the layer that failed.
var (
	// ErrConfig marks an invalid driver configuration.
	ErrConfig = errors.New("dlb: invalid config")
	// ErrWorkload marks a failure producing an iteration's input.
	ErrWorkload = errors.New("dlb: workload error")
	// ErrRuntime marks a runtime-simulator failure.
	ErrRuntime = errors.New("dlb: runtime error")
	// ErrRebalance marks a rebalancing-method failure. Run only returns
	// it in strict mode (or when the method's plan cannot be applied
	// and no previous plan can stand in); otherwise the round degrades
	// to the previous plan and the error is recorded per iteration.
	ErrRebalance = errors.New("dlb: rebalance error")
	// ErrVerify marks a plan rejected by the independent verifier
	// before application. It is treated exactly like a failed rebalance
	// round (degrade to previous/identity, DegradedRounds++) and is
	// reachable via errors.Is on IterationResult.Err, wrapped in
	// ErrRebalance.
	ErrVerify = errors.New("dlb: plan failed verification")
)

// Workload produces the (possibly drifting) imbalance input of each BSP
// iteration: given the iteration index it returns the per-process
// uniform task model the application would report.
type Workload interface {
	// Iteration returns the LRP instance describing iteration it.
	Iteration(it int) (*lrp.Instance, error)
}

// StaticWorkload repeats one instance every iteration.
type StaticWorkload struct{ In *lrp.Instance }

// Iteration implements Workload.
func (w StaticWorkload) Iteration(int) (*lrp.Instance, error) { return w.In, nil }

// DriftingWorkload perturbs a base instance's weights multiplicatively
// each iteration, modelling a cost field that evolves (as AMR does).
type DriftingWorkload struct {
	Base *lrp.Instance
	// Drift is the per-iteration multiplicative rotation of hot spots:
	// weights are cyclically shifted by Drift processes each iteration.
	Drift int
}

// Iteration implements Workload: the weight vector is rotated so the
// hot process moves around the machine.
func (w DriftingWorkload) Iteration(it int) (*lrp.Instance, error) {
	m := w.Base.NumProcs()
	if m == 0 {
		return nil, fmt.Errorf("%w: empty base instance", ErrWorkload)
	}
	shift := ((it*w.Drift)%m + m) % m // Go's % keeps the dividend's sign
	weights := make([]float64, m)
	for j := 0; j < m; j++ {
		weights[j] = w.Base.Weight[(j+shift)%m]
	}
	return lrp.NewInstance(w.Base.Tasks, weights)
}

// Config shapes the simulated machine and the migration cost model.
type Config struct {
	// Runtime is the per-process machine model.
	Runtime chameleon.Config
	// Iterations is the number of BSP iterations to run.
	Iterations int
	// Strict restores the fail-fast behaviour: abort the run on the
	// first rebalance failure instead of degrading the round to the
	// previous plan (identity when no round has succeeded yet).
	Strict bool
	// MigrationBudget, when > 0, is the per-round migration cap the
	// verifier enforces on fresh method plans: a plan moving more tasks
	// is rejected (ErrVerify) exactly like a failed rebalance. Zero
	// disables the budget check. The cap applies only to the method's
	// own plan — the degrade candidates (previous plan, identity) are
	// verified for integrity but not against the budget, since applying
	// the plan the machine already has migrates nothing.
	MigrationBudget int
	// Cache, when non-nil, is consulted before each round's rebalance
	// call: an instance whose fingerprint matches a previously verified
	// plan is served from the cache and the method is not invoked at
	// all — the common case under slowly-drifting or periodic workloads
	// where many rounds see the same (or a permuted) load vector. A hit
	// still walks the full verify-then-apply candidate ladder below, so
	// a cached plan is held to exactly the same standard as a fresh one
	// (including the migration budget). Clean fresh plans are stored
	// back after they apply. Hits are flagged per iteration, summed in
	// Result.CacheHits and counted on the dlb.cache_hits counter.
	Cache *plancache.Cache
	// Journal, when non-nil, receives one durable record per completed
	// round (the applied plan plus the round's accounting flags), so an
	// interrupted trace can resume without re-solving finished rounds.
	// *wal.Log satisfies it. Append failures never abort the run; they
	// are counted on dlb.journal_errors.
	Journal Journal
	// Resume holds journal records recovered from a previous run of the
	// same workload and configuration (e.g. the replay slice wal.Open
	// returns). Run replays the longest verifiable prefix of journaled
	// rounds — re-verifying and re-executing each recorded plan, never
	// trusting numbers from disk — and invokes the rebalancing method
	// only from the first unjournaled round onward. Records that no
	// longer match the live run stop the replay and the rest of the
	// trace runs live.
	Resume [][]byte
	// Obs, when non-nil, receives one "dlb.round" span per iteration
	// (tagged with the method, migration count and degradation flag) and
	// the counters dlb.rounds / dlb.degraded_rounds /
	// dlb.rejected_plans / dlb.cache_hits / dlb.replayed_rounds /
	// dlb.resume_rejects / dlb.journal_errors.
	Obs *obs.Registry
}

// cacheParams keys the plan cache for this driver: the migration budget
// is part of the key (a plan cached under a looser budget may move more
// tasks than a tighter run allows), and the Form slot is pinned to -1
// so driver entries never alias the server's formulation-keyed entries
// when a cache is shared.
func (cfg Config) cacheParams() plancache.Params {
	k := -1
	if cfg.MigrationBudget > 0 {
		k = cfg.MigrationBudget
	}
	return plancache.Params{K: k, Form: -1}
}

// IterationResult records one iteration of the driven run.
type IterationResult struct {
	// BaselineMakespanMs is the makespan without rebalancing.
	BaselineMakespanMs float64
	// MakespanMs is the makespan with the method's plan applied
	// (including in-flight migration delays).
	MakespanMs float64
	// Migrated is the number of tasks the method moved.
	Migrated int
	// CommMs is the communication time spent on migrations.
	CommMs float64
	// Imbalance is R_imb of the plan's load vector.
	Imbalance float64
	// Degraded reports that the rebalancing method failed this round
	// and the previous plan (or the identity plan) was applied instead.
	Degraded bool
	// CacheHit reports that the round's plan came from the plan cache
	// and the rebalancing method was never invoked.
	CacheHit bool
	// Replayed reports that the round was reconstructed from the
	// journal of an interrupted run: the recorded plan was re-verified
	// and re-executed, and the rebalancing method was not invoked.
	Replayed bool
	// Err is the rebalance error the round survived (nil unless
	// Degraded).
	Err error
}

// Result aggregates a full run.
type Result struct {
	Iterations []IterationResult
	// TotalMakespanMs and TotalBaselineMs sum the per-iteration times.
	TotalMakespanMs, TotalBaselineMs float64
	// TotalMigrated sums migrations across iterations.
	TotalMigrated int
	// DegradedRounds counts iterations that survived a rebalance
	// failure on a stale or identity plan.
	DegradedRounds int
	// CacheHits counts iterations served from the plan cache without
	// invoking the rebalancing method.
	CacheHits int
	// ReplayedRounds counts iterations reconstructed from the journal
	// of an interrupted run instead of being solved again.
	ReplayedRounds int
	// Speedup is TotalBaselineMs / TotalMakespanMs.
	Speedup float64
}

// Run drives a rebalancer through cfg.Iterations BSP iterations of the
// workload: each iteration the method sees the current imbalance input,
// produces a plan, the plan is executed on the runtime simulator
// (paying migration costs), and the iteration's makespan is recorded.
// Cancelling ctx stops the run at the next iteration boundary with the
// partial result and the context's error.
//
// A rebalance failure does not abort the run (unless cfg.Strict): the
// BSP application must take its next step with or without a fresh plan,
// so the round degrades to the previous iteration's plan — the load
// distribution the machine already has — or the identity plan when no
// round has succeeded yet (or the stale plan no longer fits the
// workload's shape). Degraded rounds are flagged per iteration and
// counted in Result.DegradedRounds.
func Run(ctx context.Context, w Workload, method balancer.Rebalancer, cfg Config) (Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	resume := decodeResume(cfg)
	var res Result
	var prev *lrp.Plan // last plan that applied cleanly
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		round := cfg.Obs.StartSpan("dlb.round")
		round.Set("iteration", it).Set("method", method.Name())
		in, err := w.Iteration(it)
		if err != nil {
			return res, fmt.Errorf("%w: iteration %d: %w", ErrWorkload, it, err)
		}
		base, err := chameleon.New(cfg.Runtime, in)
		if err != nil {
			return res, fmt.Errorf("%w: iteration %d: %w", ErrRuntime, it, err)
		}
		baseStats := base.RunIteration()

		var rt *chameleon.Runtime
		var mig chameleon.MigrationStats
		var plan *lrp.Plan
		var rerr error
		cacheHit, replayed, degraded, applied := false, false, false, false

		// A journaled round from an interrupted run is replayed instead
		// of re-solved: the recorded plan is re-verified and re-applied,
		// the makespan recomputed. A record that no longer fits the live
		// run stops the replay; this and all later rounds run live (and
		// re-journal, last-record-wins on the next resume).
		if it < len(resume) {
			if rt, mig, plan, applied = cfg.replayRound(in, resume[it]); applied {
				replayed = true
				cacheHit = resume[it].CacheHit
				rerr = replayErr(resume[it])
				degraded = rerr != nil
				cfg.Obs.Counter("dlb.replayed_rounds").Inc()
			} else {
				cfg.Obs.Counter("dlb.resume_rejects").Inc()
				resume = resume[:it]
			}
		}

		if !applied {
			if plan, cacheHit = cfg.Cache.Get(in, cfg.cacheParams()); cacheHit {
				cfg.Obs.Counter("dlb.cache_hits").Inc()
			} else {
				plan, rerr = method.Rebalance(ctx, in)
				if rerr != nil {
					if cfg.Strict || ctx.Err() != nil {
						return res, fmt.Errorf("%w: iteration %d: %s: %w", ErrRebalance, it, method.Name(), rerr)
					}
					plan = nil // degrade below
				}
			}

			// Apply the plan; on failure degrade progressively: method plan
			// -> previous good plan -> identity. The identity plan applies
			// to any instance, so a round never aborts on plan trouble.
			//
			// No unverified plan ever reaches the runtime: every candidate —
			// the method's plan included — passes through the independent
			// verifier first. A candidate failing verification is treated
			// exactly like a failed rebalance (skip to the next degrade
			// step); only the fresh method plan is additionally held to the
			// migration budget.
			degraded = rerr != nil
			for ci, cand := range [...]*lrp.Plan{plan, prev, lrp.NewPlan(in)} {
				if cand == nil {
					continue
				}
				fresh := ci == 0 && plan != nil
				budget := -1
				if fresh && cfg.MigrationBudget > 0 {
					budget = cfg.MigrationBudget
				}
				cerr := verify.Plan(in, cand, budget, verify.Options{}).Err()
				if cerr != nil {
					cerr = fmt.Errorf("%w: %w", ErrVerify, cerr)
					cfg.Obs.Counter("dlb.rejected_plans").Inc()
				} else {
					if rt, err = chameleon.New(cfg.Runtime, in); err != nil {
						return res, fmt.Errorf("%w: iteration %d: %w", ErrRuntime, it, err)
					}
					if mig, cerr = rt.ApplyPlan(cand); cerr == nil {
						plan = cand
						applied = true
						break
					}
				}
				if fresh {
					if cfg.Strict {
						return res, fmt.Errorf("%w: iteration %d: %s: %w", ErrRebalance, it, method.Name(), cerr)
					}
					degraded = true
					if rerr == nil {
						rerr = cerr
					}
				}
			}
		}
		if !applied {
			// Even the identity plan failed: the runtime itself is broken.
			return res, fmt.Errorf("%w: iteration %d: identity plan not applicable", ErrRuntime, it)
		}
		st := rt.RunIteration()

		ir := IterationResult{
			BaselineMakespanMs: baseStats.MakespanMs,
			MakespanMs:         st.MakespanMs,
			Migrated:           mig.Tasks,
			CommMs:             mig.CommTimeMs,
			Imbalance:          lrp.Evaluate(in, plan).Imbalance,
			Degraded:           degraded,
			CacheHit:           cacheHit && !degraded,
			Replayed:           replayed,
		}
		if degraded {
			ir.Err = fmt.Errorf("%w: iteration %d: %s: %w", ErrRebalance, it, method.Name(), rerr)
			res.DegradedRounds++
			cfg.Obs.Counter("dlb.degraded_rounds").Inc()
		} else {
			prev = plan
			if ir.CacheHit {
				res.CacheHits++
			} else {
				// Store the freshly-verified, freshly-applied plan for
				// the rounds that will see this load shape again. Put
				// re-verifies; a failure only means no caching.
				_ = cfg.Cache.Put(in, cfg.cacheParams(), plan)
			}
		}
		if replayed {
			res.ReplayedRounds++
		} else {
			// A replayed round is already on disk; only live rounds
			// append a fresh record.
			cfg.journalRound(it, plan, ir)
		}
		cfg.Obs.Counter("dlb.rounds").Inc()
		round.Set("migrated", ir.Migrated).Set("makespan_ms", ir.MakespanMs).
			Set("degraded", degraded).Set("replayed", replayed).End()
		res.Iterations = append(res.Iterations, ir)
		res.TotalBaselineMs += ir.BaselineMakespanMs
		res.TotalMakespanMs += ir.MakespanMs
		res.TotalMigrated += ir.Migrated
	}
	if res.TotalMakespanMs > 0 {
		res.Speedup = res.TotalBaselineMs / res.TotalMakespanMs
	}
	return res, nil
}

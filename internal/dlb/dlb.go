// Package dlb closes the loop the paper's introduction draws (Figure 1):
// a bulk-synchronous application iterates, load drifts, and a
// rebalancing method migrates tasks between iterations. The driver runs
// any balancer.Rebalancer (classical or quantum-hybrid) inside a
// multi-iteration simulated execution and accounts both the balance
// achieved and the migration overhead paid — the trade-off the paper's
// k constraint is about.
//
// It also provides a distributed work-stealing baseline (Section III's
// related work): idle processes steal queued tasks from busy ones at
// runtime, paying per-steal latency. Work stealing needs no load model
// at all but pays for every stolen task during the iteration.
package dlb

import (
	"context"
	"fmt"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/lrp"
)

// Workload produces the (possibly drifting) imbalance input of each BSP
// iteration: given the iteration index it returns the per-process
// uniform task model the application would report.
type Workload interface {
	// Iteration returns the LRP instance describing iteration it.
	Iteration(it int) (*lrp.Instance, error)
}

// StaticWorkload repeats one instance every iteration.
type StaticWorkload struct{ In *lrp.Instance }

// Iteration implements Workload.
func (w StaticWorkload) Iteration(int) (*lrp.Instance, error) { return w.In, nil }

// DriftingWorkload perturbs a base instance's weights multiplicatively
// each iteration, modelling a cost field that evolves (as AMR does).
type DriftingWorkload struct {
	Base *lrp.Instance
	// Drift is the per-iteration multiplicative rotation of hot spots:
	// weights are cyclically shifted by Drift processes each iteration.
	Drift int
}

// Iteration implements Workload: the weight vector is rotated so the
// hot process moves around the machine.
func (w DriftingWorkload) Iteration(it int) (*lrp.Instance, error) {
	m := w.Base.NumProcs()
	if m == 0 {
		return nil, fmt.Errorf("dlb: empty base instance")
	}
	shift := ((it*w.Drift)%m + m) % m // Go's % keeps the dividend's sign
	weights := make([]float64, m)
	for j := 0; j < m; j++ {
		weights[j] = w.Base.Weight[(j+shift)%m]
	}
	return lrp.NewInstance(w.Base.Tasks, weights)
}

// Config shapes the simulated machine and the migration cost model.
type Config struct {
	// Runtime is the per-process machine model.
	Runtime chameleon.Config
	// Iterations is the number of BSP iterations to run.
	Iterations int
}

// IterationResult records one iteration of the driven run.
type IterationResult struct {
	// BaselineMakespanMs is the makespan without rebalancing.
	BaselineMakespanMs float64
	// MakespanMs is the makespan with the method's plan applied
	// (including in-flight migration delays).
	MakespanMs float64
	// Migrated is the number of tasks the method moved.
	Migrated int
	// CommMs is the communication time spent on migrations.
	CommMs float64
	// Imbalance is R_imb of the plan's load vector.
	Imbalance float64
}

// Result aggregates a full run.
type Result struct {
	Iterations []IterationResult
	// TotalMakespanMs and TotalBaselineMs sum the per-iteration times.
	TotalMakespanMs, TotalBaselineMs float64
	// TotalMigrated sums migrations across iterations.
	TotalMigrated int
	// Speedup is TotalBaselineMs / TotalMakespanMs.
	Speedup float64
}

// Run drives a rebalancer through cfg.Iterations BSP iterations of the
// workload: each iteration the method sees the current imbalance input,
// produces a plan, the plan is executed on the runtime simulator
// (paying migration costs), and the iteration's makespan is recorded.
// Cancelling ctx stops the run at the next iteration boundary with the
// partial result and the context's error.
func Run(ctx context.Context, w Workload, method balancer.Rebalancer, cfg Config) (Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	var res Result
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		in, err := w.Iteration(it)
		if err != nil {
			return res, err
		}
		base, err := chameleon.New(cfg.Runtime, in)
		if err != nil {
			return res, err
		}
		baseStats := base.RunIteration()

		plan, err := method.Rebalance(ctx, in)
		if err != nil {
			return res, fmt.Errorf("dlb: iteration %d: %w", it, err)
		}
		rt, err := chameleon.New(cfg.Runtime, in)
		if err != nil {
			return res, err
		}
		mig, err := rt.ApplyPlan(plan)
		if err != nil {
			return res, fmt.Errorf("dlb: iteration %d: %w", it, err)
		}
		st := rt.RunIteration()

		ir := IterationResult{
			BaselineMakespanMs: baseStats.MakespanMs,
			MakespanMs:         st.MakespanMs,
			Migrated:           mig.Tasks,
			CommMs:             mig.CommTimeMs,
			Imbalance:          lrp.Evaluate(in, plan).Imbalance,
		}
		res.Iterations = append(res.Iterations, ir)
		res.TotalBaselineMs += ir.BaselineMakespanMs
		res.TotalMakespanMs += ir.MakespanMs
		res.TotalMigrated += ir.Migrated
	}
	if res.TotalMakespanMs > 0 {
		res.Speedup = res.TotalBaselineMs / res.TotalMakespanMs
	}
	return res, nil
}

package balancer

import (
	"context"
	"errors"
	"sort"

	"repro/internal/lrp"
	"repro/internal/obs"
)

// Optimal is an exact multiway number partitioner: branch-and-bound over
// task-to-partition assignments minimizing the maximum load. It is the
// "optimal algorithm" endpoint of the paper's complexity table (Greedy
// and KK are approximations whose worst case is O(2^N); the optimal
// search *is* O(2^N) but prunes with the standard bounds). Only viable
// for small N; the node budget guards against explosion.
//
// Like Greedy/KK it is placement-agnostic, but its output is relabelled
// with the Hungarian assignment so the migration count is the minimum
// over partition labelings.
type Optimal struct {
	// MaxNodes bounds the search (0 = 20 million). ErrBudget is
	// returned when exceeded.
	MaxNodes int64
	// Obs, when non-nil, receives a "balancer.optimal" span per solve
	// and the counters balancer.optimal.{nodes,bound_prunes,
	// dominance_prunes}. Nil disables instrumentation.
	Obs *obs.Registry
}

// ErrBudget reports that the exact search exceeded its node budget
// before an optimal assignment was proven. Callers should treat it as
// "instance too hard for exact search" and degrade to a heuristic
// (Greedy or KK), not as a failure of the instance itself.
var ErrBudget = errors.New("balancer: optimal search budget exhausted")

// Name returns "Optimal".
func (Optimal) Name() string { return "Optimal" }

type optSearch struct {
	loads       []float64
	suffix      []float64 // suffix[i] = sum of task loads from i on
	tasks       []lrp.Task
	assign      []int
	best        []int
	bestMax     float64
	lb          float64 // constant lower bound: total load / partitions
	nodes       int64
	maxNodes    int64
	boundPrunes int64
	domPrunes   int64
	overrun     bool
	ctx         context.Context
	stopped     bool
}

// stopEvery is how many node expansions pass between cancellation polls.
const stopEvery = 4096

func (s *optSearch) dfs(i int, curMax float64) {
	if s.overrun || s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.overrun = true
		return
	}
	if s.nodes%stopEvery == 0 && s.ctx.Err() != nil {
		s.stopped = true
		return
	}
	if curMax >= s.bestMax {
		s.boundPrunes++
		return
	}
	m := len(s.loads)
	if i == len(s.tasks) {
		s.bestMax = curMax
		copy(s.best, s.assign)
		return
	}
	// Lower bound: the final max can never drop below the perfectly
	// balanced average. Assigned + remaining load is the (constant) total,
	// so the bound itself is constant; it only starts pruning once the
	// incumbent reaches it, at which point the whole search is over.
	if s.lb >= s.bestMax {
		s.boundPrunes++
		return
	}
	// Dominance over equal-load tasks: tasks are sorted by load, so a run
	// of equal loads is contiguous. Within a run, any assignment is
	// equivalent under permuting the run's tasks, so only the variant
	// whose partition indices are non-decreasing is explored: task i may
	// not go to a partition below its equal-load predecessor's. This is
	// what collapses the m^k blowup on uniform instances (all tasks equal)
	// to the multiset choice C(k+m-1, m-1).
	//
	// Soundness, jointly with the duplicate-load skip below: among all
	// optimal assignments, consider the lexicographically smallest
	// per-task index sequence A*. If A* violated this rule, swapping the
	// two equal-load tasks' partitions would be lex-smaller; if A*[i] had
	// an earlier partition q with the same load, relabeling q<->p for
	// tasks i.. would be lex-smaller. So A* satisfies both rules and the
	// pruned search still reaches an optimum.
	minP := 0
	if i > 0 && s.tasks[i].Load == s.tasks[i-1].Load {
		minP = s.assign[i-1]
		if minP > 0 {
			s.domPrunes++
		}
	}
	// Branch over partitions, skipping duplicate empty partitions
	// (symmetry breaking) and identical loads.
	usedEmpty := false
	for p := minP; p < m; p++ {
		if s.loads[p] == 0 {
			if usedEmpty {
				continue
			}
			usedEmpty = true
		}
		// Skip partitions with a load equal to an earlier one: the
		// subtree is identical up to relabeling.
		dup := false
		for q := 0; q < p; q++ {
			if s.loads[q] == s.loads[p] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.loads[p] += s.tasks[i].Load
		s.assign[i] = p
		newMax := curMax
		if s.loads[p] > newMax {
			newMax = s.loads[p]
		}
		s.dfs(i+1, newMax)
		s.loads[p] -= s.tasks[i].Load
	}
}

// Rebalance computes the optimal multiway partition and returns it as a
// minimally-relabelled migration plan. Cancelling ctx aborts the search
// with the context's error (the incumbent is only a bound seed, not a
// usable assignment).
func (o Optimal) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	maxNodes := o.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 20_000_000
	}
	tasks := lrp.ExpandTasks(in)
	sort.SliceStable(tasks, func(a, b int) bool {
		if tasks[a].Load != tasks[b].Load {
			return tasks[a].Load > tasks[b].Load
		}
		return tasks[a].ID < tasks[b].ID
	})
	m := in.NumProcs()
	s := &optSearch{
		loads:    make([]float64, m),
		suffix:   make([]float64, len(tasks)+1),
		tasks:    tasks,
		assign:   make([]int, len(tasks)),
		best:     make([]int, len(tasks)),
		bestMax:  in.TotalLoad() + 1,
		maxNodes: maxNodes,
		ctx:      ctx,
	}
	for i := len(tasks) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + tasks[i].Load
	}
	s.lb = s.suffix[0] / float64(m)
	// Seed the incumbent with Greedy so pruning bites immediately.
	if gp, err := (Greedy{}).Rebalance(ctx, in); err == nil {
		s.bestMax = lrp.MaxLoad(gp.Loads(in)) + 1e-9
	}
	span := o.Obs.StartSpan("balancer.optimal")
	s.dfs(0, 0)
	o.Obs.Counter("balancer.optimal.nodes").Add(s.nodes)
	o.Obs.Counter("balancer.optimal.bound_prunes").Add(s.boundPrunes)
	o.Obs.Counter("balancer.optimal.dominance_prunes").Add(s.domPrunes)
	span.Set("tasks", len(tasks)).Set("procs", m).Set("nodes", s.nodes).
		Set("overrun", s.overrun).Set("makespan", s.bestMax).End()
	if s.stopped {
		return nil, ctx.Err()
	}
	if s.overrun {
		return nil, ErrBudget
	}

	// Convert the assignment ordered by sorted tasks back to task IDs.
	assignByID := make([]int, len(tasks))
	orderedTasks := lrp.ExpandTasks(in)
	for i, task := range tasks {
		assignByID[task.ID] = s.best[i]
	}
	plan, err := lrp.PlanFromAssignment(in, orderedTasks, assignByID)
	if err != nil {
		return nil, err
	}
	return RelabelMinMigrations(plan), nil
}

package balancer

import (
	"context"
	"errors"
	"sort"

	"repro/internal/lrp"
)

// Optimal is an exact multiway number partitioner: branch-and-bound over
// task-to-partition assignments minimizing the maximum load. It is the
// "optimal algorithm" endpoint of the paper's complexity table (Greedy
// and KK are approximations whose worst case is O(2^N); the optimal
// search *is* O(2^N) but prunes with the standard bounds). Only viable
// for small N; the node budget guards against explosion.
//
// Like Greedy/KK it is placement-agnostic, but its output is relabelled
// with the Hungarian assignment so the migration count is the minimum
// over partition labelings.
type Optimal struct {
	// MaxNodes bounds the search (0 = 20 million). ErrBudget is
	// returned when exceeded.
	MaxNodes int64
}

// ErrBudget reports that the exact search exceeded its node budget.
var ErrBudget = errors.New("balancer: optimal search budget exhausted")

// Name returns "Optimal".
func (Optimal) Name() string { return "Optimal" }

type optSearch struct {
	loads    []float64
	suffix   []float64 // suffix[i] = sum of task loads from i on
	tasks    []lrp.Task
	assign   []int
	best     []int
	bestMax  float64
	nodes    int64
	maxNodes int64
	overrun  bool
	ctx      context.Context
	stopped  bool
}

// stopEvery is how many node expansions pass between cancellation polls.
const stopEvery = 4096

func (s *optSearch) dfs(i int, curMax float64) {
	if s.overrun || s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.overrun = true
		return
	}
	if s.nodes%stopEvery == 0 && s.ctx.Err() != nil {
		s.stopped = true
		return
	}
	if curMax >= s.bestMax {
		return
	}
	m := len(s.loads)
	if i == len(s.tasks) {
		s.bestMax = curMax
		copy(s.best, s.assign)
		return
	}
	// Lower bound: remaining work spread perfectly over all partitions
	// cannot bring the final max below (current total + remaining)/m,
	// nor below the current max.
	total := 0.0
	for _, l := range s.loads {
		total += l
	}
	lb := (total + s.suffix[i]) / float64(m)
	if lb >= s.bestMax {
		return
	}
	// Branch over partitions, skipping duplicate empty partitions
	// (symmetry breaking) and identical loads.
	usedEmpty := false
	for p := 0; p < m; p++ {
		if s.loads[p] == 0 {
			if usedEmpty {
				continue
			}
			usedEmpty = true
		}
		// Skip partitions with a load equal to an earlier one: the
		// subtree is identical up to relabeling.
		dup := false
		for q := 0; q < p; q++ {
			if s.loads[q] == s.loads[p] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.loads[p] += s.tasks[i].Load
		s.assign[i] = p
		newMax := curMax
		if s.loads[p] > newMax {
			newMax = s.loads[p]
		}
		s.dfs(i+1, newMax)
		s.loads[p] -= s.tasks[i].Load
	}
}

// Rebalance computes the optimal multiway partition and returns it as a
// minimally-relabelled migration plan. Cancelling ctx aborts the search
// with the context's error (the incumbent is only a bound seed, not a
// usable assignment).
func (o Optimal) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	maxNodes := o.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 20_000_000
	}
	tasks := lrp.ExpandTasks(in)
	sort.SliceStable(tasks, func(a, b int) bool {
		if tasks[a].Load != tasks[b].Load {
			return tasks[a].Load > tasks[b].Load
		}
		return tasks[a].ID < tasks[b].ID
	})
	m := in.NumProcs()
	s := &optSearch{
		loads:    make([]float64, m),
		suffix:   make([]float64, len(tasks)+1),
		tasks:    tasks,
		assign:   make([]int, len(tasks)),
		best:     make([]int, len(tasks)),
		bestMax:  in.TotalLoad() + 1,
		maxNodes: maxNodes,
		ctx:      ctx,
	}
	for i := len(tasks) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + tasks[i].Load
	}
	// Seed the incumbent with Greedy so pruning bites immediately.
	if gp, err := (Greedy{}).Rebalance(ctx, in); err == nil {
		s.bestMax = lrp.MaxLoad(gp.Loads(in)) + 1e-9
	}
	s.dfs(0, 0)
	if s.stopped {
		return nil, ctx.Err()
	}
	if s.overrun {
		return nil, ErrBudget
	}

	// Convert the assignment ordered by sorted tasks back to task IDs.
	assignByID := make([]int, len(tasks))
	orderedTasks := lrp.ExpandTasks(in)
	for i, task := range tasks {
		assignByID[task.ID] = s.best[i]
	}
	plan, err := lrp.PlanFromAssignment(in, orderedTasks, assignByID)
	if err != nil {
		return nil, err
	}
	return RelabelMinMigrations(plan), nil
}

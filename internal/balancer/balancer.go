// Package balancer implements the classical load-rebalancing baselines
// the paper compares against (Section III / V):
//
//   - Greedy — Graham's LPT list scheduling, treating the LRP as pure
//     multiway number partitioning;
//   - KK — the Karmarkar-Karp differencing method in Korf's multiway
//     variant, also placement-agnostic;
//   - ProactLB — the proactive rebalancer of Chung et al., which takes
//     the distributed view: it moves only the overload excess, keeping
//     migration counts low;
//   - Baseline — no rebalancing at all.
//
// All methods produce lrp.Plan migration matrices so the experiment
// harness can evaluate classical and quantum methods identically.
package balancer

import (
	"context"

	"repro/internal/lrp"
)

// Rebalancer is the common interface of every rebalancing method in this
// repository (classical here, quantum-hybrid in internal/qlrb).
type Rebalancer interface {
	// Name returns the method label used in result tables.
	Name() string
	// Rebalance computes a migration plan for the instance. Cancelling
	// ctx makes iterative methods stop early: they return either a
	// feasible (possibly lower-quality) plan or an error — never a plan
	// that violates the instance's constraints. The cheap one-shot
	// heuristics ignore ctx.
	Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error)
}

// Baseline performs no rebalancing; it reports the uncorrected
// imbalance, the denominator of the paper's speedup metric.
type Baseline struct{}

// Name returns "Baseline".
func (Baseline) Name() string { return "Baseline" }

// Rebalance returns the identity plan.
func (Baseline) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	return lrp.NewPlan(in), nil
}

// Refined composes any rebalancer with the budget-respecting local
// search: the inner method proposes a plan, ImprovePlan polishes it
// using up to Slack extra migrations. It lets cheap heuristics recover
// quality on coarse-granularity instances without changing their
// migration profile materially.
type Refined struct {
	// Inner produces the initial plan.
	Inner Rebalancer
	// Slack is how many migrations beyond the inner plan's count the
	// polish step may spend.
	Slack int
}

// Name returns "<inner>+LS".
func (r Refined) Name() string { return r.Inner.Name() + "+LS" }

// Rebalance runs the inner method and polishes its plan. When ctx is
// cancelled the inner plan is returned unpolished (it is feasible on
// its own).
func (r Refined) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	plan, err := r.Inner.Rebalance(ctx, in)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return plan, nil
	}
	return ImprovePlan(in, plan, plan.Migrated()+r.Slack), nil
}

package balancer

import (
	"container/heap"
	"context"
	"sort"

	"repro/internal/lrp"
)

// Greedy is Graham's Longest-Processing-Time list scheduling applied as a
// multiway number partitioner: tasks are sorted by decreasing load and
// each is placed on the currently least-loaded process. Like the paper's
// Greedy it is placement-agnostic — it ignores where tasks currently
// live, so most tasks count as migrated even when the input is balanced.
type Greedy struct{}

// Name returns "Greedy".
func (Greedy) Name() string { return "Greedy" }

// binHeap is a min-heap of partitions ordered by load (ties by index for
// determinism).
type binHeap []bin

type bin struct {
	load float64
	idx  int
}

func (h binHeap) Len() int { return len(h) }
func (h binHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].idx < h[j].idx
}
func (h binHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *binHeap) Push(x any)        { *h = append(*h, x.(bin)) }
func (h *binHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h binHeap) Peek() bin          { return h[0] }
func (h *binHeap) Replace(b bin) bin { old := (*h)[0]; (*h)[0] = b; heap.Fix(h, 0); return old }

// Rebalance partitions the expanded task list LPT-style.
func (Greedy) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	tasks := lrp.ExpandTasks(in)
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if ta.Load != tb.Load {
			return ta.Load > tb.Load
		}
		return ta.ID < tb.ID
	})

	h := make(binHeap, in.NumProcs())
	for i := range h {
		h[i] = bin{0, i}
	}
	heap.Init(&h)

	assign := make([]int, len(tasks))
	for _, ti := range order {
		b := h.Peek()
		assign[tasks[ti].ID] = b.idx
		b.load += tasks[ti].Load
		h.Replace(b)
	}
	return lrp.PlanFromAssignment(in, tasks, assign)
}

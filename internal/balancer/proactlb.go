package balancer

import (
	"context"
	"sort"

	"repro/internal/lrp"
)

// ProactLB implements the proactive load balancer of Chung et al.
// ("From reactive to proactive load balancing for task-based parallel
// applications in distributed memory machines"), as used by the paper:
// processes are sorted by total load, and overloaded processes offload
// just enough tasks to underloaded ones to approach the average load.
// Unlike Greedy/KK it starts from the current placement, so its
// migration count is bounded by the overload excess — this is what makes
// it the donor of the paper's k1 migration budget.
type ProactLB struct {
	// K caps how many tasks a single process may give away in one
	// rebalancing round (the "search space" parameter of the paper's
	// complexity table). Zero means unlimited.
	K int
}

// Name returns "ProactLB".
func (ProactLB) Name() string { return "ProactLB" }

// Rebalance moves excess tasks from overloaded to underloaded processes.
func (p ProactLB) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	m := in.NumProcs()
	plan := lrp.NewPlan(in)
	loads := in.Loads()
	lavg := in.AvgLoad()

	type procState struct {
		idx  int
		load float64
	}
	over := make([]procState, 0, m)
	under := make([]procState, 0, m)
	for i := 0; i < m; i++ {
		switch {
		case loads[i] > lavg:
			over = append(over, procState{i, loads[i]})
		case loads[i] < lavg:
			under = append(under, procState{i, loads[i]})
		}
	}
	// Most overloaded donors first; most underloaded receivers first.
	sort.SliceStable(over, func(a, b int) bool { return over[a].load > over[b].load })
	sort.SliceStable(under, func(a, b int) bool { return under[a].load < under[b].load })

	for oi := range over {
		donor := &over[oi]
		w := in.Weight[donor.idx]
		if w <= 0 {
			continue
		}
		// Tasks this donor should shed to reach the average.
		give := int((donor.load-lavg)/w + 0.5)
		if give > in.Tasks[donor.idx] {
			give = in.Tasks[donor.idx]
		}
		if p.K > 0 && give > p.K {
			give = p.K
		}
		for ui := range under {
			if give <= 0 {
				break
			}
			recv := &under[ui]
			// Fill the receiver to the average (rounded); a receiver
			// ends at most w/2 above it, and only donors at least w/2
			// above the average shed tasks, so L_max never increases.
			c := int((lavg-recv.load)/w + 0.5)
			if c == 0 && recv.load+w <= donor.load-w {
				// Task granularity too coarse to fill exactly; a single
				// task still strictly improves the pair.
				c = 1
			}
			if c > give {
				c = give
			}
			if c <= 0 {
				continue
			}
			plan.Move(recv.idx, donor.idx, c)
			moved := float64(c) * w
			recv.load += moved
			donor.load -= moved
			give -= c
		}
	}
	if err := plan.Validate(in); err != nil {
		return nil, err
	}
	return plan, nil
}

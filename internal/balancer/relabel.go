package balancer

import "repro/internal/lrp"

// RelabelMinMigrations permutes the destination labels of a plan so that
// the number of migrated tasks is minimized while the multiset of
// resulting partition loads — and therefore L_max, R_imb and speedup —
// is unchanged. It solves the partition-to-process assignment problem
// exactly with the Hungarian algorithm (O(M^3)).
//
// This is an extension beyond the paper: its Greedy/KK count a task as
// migrated whenever its partition label differs from its origin, without
// optimizing the labeling. Relabeling quantifies how much of their
// migration overhead is an artifact of arbitrary labels; the ablation
// benchmark BenchmarkAblationRelabel reports the effect.
func RelabelMinMigrations(p *lrp.Plan) *lrp.Plan {
	m := p.NumProcs()
	// weight[r][c]: tasks retained if partition row r is assigned to
	// process c, i.e. X[r][c].
	weight := make([][]float64, m)
	for r := 0; r < m; r++ {
		weight[r] = make([]float64, m)
		for c := 0; c < m; c++ {
			weight[r][c] = float64(p.X[r][c])
		}
	}
	assign := maxAssignment(weight)
	q := lrp.ZeroPlan(m)
	for r := 0; r < m; r++ {
		copy(q.X[assign[r]], p.X[r])
	}
	return q
}

// maxAssignment solves the maximum-weight perfect assignment on a square
// weight matrix, returning assign[row] = column. It runs the Hungarian
// algorithm (Jonker-Volgenant potentials formulation) on negated weights.
func maxAssignment(weight [][]float64) []int {
	n := len(weight)
	const inf = 1e18
	// cost with 1-based padding, minimization of -weight.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	way := make([]int, n+1)
	matchCol := make([]int, n+1) // matchCol[col] = row matched to col

	cost := func(r, c int) float64 { return -weight[r-1][c-1] }

	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if matchCol[j] > 0 {
			assign[matchCol[j]-1] = j - 1
		}
	}
	return assign
}

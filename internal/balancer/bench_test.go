package balancer

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/lrp"
)

func benchInstance(m, n int) *lrp.Instance {
	weights := make([]float64, m)
	for i := range weights {
		weights[i] = float64(1 + i%7)
	}
	in, err := lrp.UniformInstance(n, weights)
	if err != nil {
		panic(err)
	}
	return in
}

func benchRebalancer(b *testing.B, r Rebalancer) {
	for _, shape := range []struct{ m, n int }{{8, 100}, {32, 208}, {8, 2048}} {
		in := benchInstance(shape.m, shape.n)
		b.Run(fmt.Sprintf("M%d_n%d", shape.m, shape.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Rebalance(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B)   { benchRebalancer(b, Greedy{}) }
func BenchmarkKK(b *testing.B)       { benchRebalancer(b, KK{}) }
func BenchmarkProactLB(b *testing.B) { benchRebalancer(b, ProactLB{}) }

func BenchmarkRelabelHungarian(b *testing.B) {
	in := benchInstance(64, 100)
	plan, err := Greedy{}.Rebalance(context.Background(), in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelabelMinMigrations(plan)
	}
}

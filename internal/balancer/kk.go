package balancer

import (
	"container/heap"
	"context"
	"sort"

	"repro/internal/lrp"
)

// KK is the Karmarkar-Karp differencing method in Korf's multiway
// variant (CKK's polynomial first descent): every task starts as its own
// M-way tuple, and the two tuples with the largest spread are repeatedly
// combined largest-against-smallest until one tuple remains. Like
// Greedy, it is placement-agnostic multiway number partitioning.
type KK struct{}

// Name returns "KK".
func (KK) Name() string { return "KK" }

// origCount counts tasks of one origin inside a partition slot.
type origCount struct {
	origin, count int
}

// kkTuple is a partial M-way partition: per-slot loads (sorted
// descending) and per-slot origin counts. The heap orders tuples by
// spread = loads[0] - loads[M-1].
type kkTuple struct {
	loads []float64
	slots [][]origCount
	seq   int // insertion order, for deterministic tie-breaking
}

func (t *kkTuple) spread() float64 { return t.loads[0] - t.loads[len(t.loads)-1] }

type kkHeap []*kkTuple

func (h kkHeap) Len() int { return len(h) }
func (h kkHeap) Less(i, j int) bool {
	si, sj := h[i].spread(), h[j].spread()
	if si != sj {
		return si > sj // max-heap on spread
	}
	for k := range h[i].loads {
		if h[i].loads[k] != h[j].loads[k] {
			return h[i].loads[k] > h[j].loads[k]
		}
	}
	return h[i].seq < h[j].seq
}
func (h kkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *kkHeap) Push(x any)   { *h = append(*h, x.(*kkTuple)) }
func (h *kkHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeCounts merges two origin-count lists sorted by origin.
func mergeCounts(a, b []origCount) []origCount {
	out := make([]origCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].origin < b[j].origin:
			out = append(out, a[i])
			i++
		case a[i].origin > b[j].origin:
			out = append(out, b[j])
			j++
		default:
			out = append(out, origCount{a[i].origin, a[i].count + b[j].count})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Rebalance runs multiway KK over the expanded task list and converts
// the final tuple into a migration plan (slot p of the final tuple is
// assigned to process p).
func (KK) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	m := in.NumProcs()
	tasks := lrp.ExpandTasks(in)
	if len(tasks) == 0 {
		return lrp.NewPlan(in), nil
	}

	h := make(kkHeap, 0, len(tasks))
	for i, task := range tasks {
		t := &kkTuple{
			loads: make([]float64, m),
			slots: make([][]origCount, m),
			seq:   i,
		}
		t.loads[0] = task.Load
		t.slots[0] = []origCount{{task.Origin, 1}}
		h = append(h, t)
	}
	heap.Init(&h)

	seq := len(tasks)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*kkTuple)
		b := heap.Pop(&h).(*kkTuple)
		// Combine largest-against-smallest: slot i of a pairs with slot
		// m-1-i of b, then re-sort slots by load descending.
		c := &kkTuple{loads: make([]float64, m), slots: make([][]origCount, m), seq: seq}
		seq++
		for i := 0; i < m; i++ {
			c.loads[i] = a.loads[i] + b.loads[m-1-i]
			c.slots[i] = mergeCounts(a.slots[i], b.slots[m-1-i])
		}
		idx := make([]int, m)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return c.loads[idx[x]] > c.loads[idx[y]] })
		loads := make([]float64, m)
		slots := make([][]origCount, m)
		for i, k := range idx {
			loads[i], slots[i] = c.loads[k], c.slots[k]
		}
		c.loads, c.slots = loads, slots
		heap.Push(&h, c)
	}

	final := h[0]
	plan := lrp.ZeroPlan(m)
	for p := 0; p < m; p++ {
		for _, oc := range final.slots[p] {
			plan.X[p][oc.origin] = oc.count
		}
	}
	if err := plan.Validate(in); err != nil {
		return nil, err
	}
	return plan, nil
}

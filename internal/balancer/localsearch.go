package balancer

import "repro/internal/lrp"

// ImprovePlan hill-climbs a migration plan under a migration budget:
// it repeatedly applies the best single-task move (from the currently
// most loaded process to the one where it helps most) or budget-neutral
// exchange that strictly reduces the maximum load, until no such step
// exists or the budget is exhausted. The input plan is not modified.
//
// This is the classical "polish" step a production rebalancer would run
// on any heuristic's output; the experiments use it to quantify how
// close ProactLB-style plans are to their budget's local optimum.
func ImprovePlan(in *lrp.Instance, plan *lrp.Plan, k int) *lrp.Plan {
	p := plan.Clone()
	m := in.NumProcs()
	loads := p.Loads(in)

	// available[j] = tasks currently residing on j, by origin.
	for {
		migrated := p.Migrated()
		// Find the most loaded process.
		hot := 0
		for i := 1; i < m; i++ {
			if loads[i] > loads[hot] {
				hot = i
			}
		}
		type move struct {
			src, dst, origin int
			newMax           float64
		}
		bestMove := move{newMax: loads[hot]}
		found := false
		// Single-task moves off the hot process. Moving a task of
		// origin o from hot to dst changes the migration count by +1
		// if hot != o (we cancel a "stay") ... precisely: the plan
		// entry X[hot][o] decreases, X[dst][o] increases. Migration
		// delta: -1 if hot == o? No: X[hot][o] with hot==o is a retained
		// task; moving it away adds a migration. If hot != o the task
		// was already migrated; rerouting keeps the count unless dst ==
		// o (returning home, count -1).
		for o := 0; o < m; o++ {
			if p.X[hot][o] == 0 {
				continue
			}
			w := in.Weight[o]
			if w <= 0 {
				continue
			}
			for dst := 0; dst < m; dst++ {
				if dst == hot {
					continue
				}
				delta := 0
				if hot == o {
					delta = 1
				} else if dst == o {
					delta = -1
				}
				if k >= 0 && migrated+delta > k {
					continue
				}
				newDst := loads[dst] + w
				if newDst >= loads[hot] {
					continue // would just shift the peak
				}
				// New max after the move: the hot process sheds w; some
				// other process may now be the peak.
				newMax := loads[hot] - w
				for i := 0; i < m; i++ {
					li := loads[i]
					if i == dst {
						li = newDst
					}
					if i != hot && li > newMax {
						newMax = li
					}
				}
				if newMax < bestMove.newMax-1e-12 {
					bestMove = move{src: hot, dst: dst, origin: o, newMax: newMax}
					found = true
				}
			}
		}
		if !found {
			return p
		}
		p.X[bestMove.src][bestMove.origin]--
		p.X[bestMove.dst][bestMove.origin]++
		loads[bestMove.src] -= in.Weight[bestMove.origin]
		loads[bestMove.dst] += in.Weight[bestMove.origin]
	}
}

package balancer

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lrp"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// paperStyleInstance builds a uniform instance with per-process weights.
func paperStyleInstance(n int, weights ...float64) *lrp.Instance {
	in, err := lrp.UniformInstance(n, weights)
	if err != nil {
		panic(err)
	}
	return in
}

func TestBaselineIdentity(t *testing.T) {
	in := paperStyleInstance(5, 1.87, 1.97, 3.12, 2.81)
	plan, err := Baseline{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() != 0 {
		t.Fatalf("Baseline migrated %d tasks", plan.Migrated())
	}
	m := lrp.Evaluate(in, plan)
	if !almostEqual(m.Speedup, 1) {
		t.Fatalf("Baseline speedup %v", m.Speedup)
	}
	if (Baseline{}).Name() != "Baseline" {
		t.Fatal("name")
	}
}

func TestGreedyBalancesPerfectlyDivisibleCase(t *testing.T) {
	// 2 procs, weights 1 and 3, 4 tasks each: total 16, perfect split 8
	// exists (proc of 3s splits 2/2, 1s split 2/2: 3+3+1+1 = 8).
	in := paperStyleInstance(4, 1, 3)
	plan, err := Greedy{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	m := lrp.Evaluate(in, plan)
	if !almostEqual(m.MaxLoad, 8) {
		t.Fatalf("Greedy MaxLoad = %v, want 8", m.MaxLoad)
	}
	if !almostEqual(m.Imbalance, 0) {
		t.Fatalf("Greedy imbalance = %v", m.Imbalance)
	}
}

func TestGreedyMigrationCountShape(t *testing.T) {
	// The paper's Tables III/IV: with M procs x n uniform tasks,
	// placement-agnostic Greedy migrates ~ N(M-1)/M tasks. Check the 8
	// nodes x 8 tasks case from Table IV: 56 of 64.
	weights := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5}
	in := paperStyleInstance(8, weights...)
	plan, err := Greedy{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	mig := plan.Migrated()
	if mig < 48 || mig > 64 {
		t.Fatalf("Greedy migrated %d tasks; expected ~56 (N(M-1)/M)", mig)
	}
}

func TestGreedyLPTBound(t *testing.T) {
	// Property: LPT's makespan is within 4/3 - 1/(3M) of the lower
	// bound max(total/M, max task).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()*9.5
		}
		n := 1 + rng.Intn(20)
		in := paperStyleInstance(n, weights...)
		plan, err := Greedy{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Greedy: %v", seed, n, weights, err)
			return false
		}
		res := lrp.Evaluate(in, plan)
		// Graham's list-scheduling guarantee (valid for any list
		// order, hence for LPT): makespan <= total/m + (1-1/m)*w_max.
		maxTask := 0.0
		for j, w := range weights {
			if in.Tasks[j] > 0 && w > maxTask {
				maxTask = w
			}
		}
		bound := in.TotalLoad()/float64(m) + (1-1/float64(m))*maxTask
		if res.MaxLoad > bound+1e-9 {
			t.Errorf("seed %d: n=%d weights=%v: makespan %v exceeds Graham bound %v", seed, n, weights, res.MaxLoad, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKKBalancesPerfectlyDivisibleCase(t *testing.T) {
	in := paperStyleInstance(4, 1, 3)
	plan, err := KK{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	m := lrp.Evaluate(in, plan)
	if !almostEqual(m.MaxLoad, 8) {
		t.Fatalf("KK MaxLoad = %v, want 8", m.MaxLoad)
	}
}

func TestKKClassicTwoWayExample(t *testing.T) {
	// The classic KK demonstration {8,7,6,5,4} two-way: KK reaches the
	// optimal difference 0 (8+7 vs 6+5+4). Model as 5 procs of 1 task
	// is not uniform-per-proc friendly; instead use 1 task per proc.
	in := lrp.MustInstance([]int{1, 1, 1, 1, 1, 1}, []float64{8, 7, 6, 5, 4, 0})
	// Two-way partition: squeeze into 2 "processes" is not expressible
	// here (M fixed by instance); use the 6-proc instance and just
	// check validity + determinism instead.
	p1, err := KK{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := KK{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.X {
		for j := range p1.X[i] {
			if p1.X[i][j] != p2.X[i][j] {
				t.Fatal("KK nondeterministic")
			}
		}
	}
}

func TestKKComparableToGreedy(t *testing.T) {
	// On a fixed corpus of random uniform instances KK's makespan is
	// within 5% of Greedy's (they are both near-optimal heuristics; the
	// paper reports them as practically identical). The RNG is pinned:
	// this is an empirical observation, not a theorem, so the corpus
	// must stay fixed.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1+rng.Intn(16)) * 0.25
		}
		n := 4 + rng.Intn(60)
		in := paperStyleInstance(n, weights...)
		pg, err := Greedy{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Greedy: %v", seed, n, weights, err)
			return false
		}
		pk, err := KK{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: KK: %v", seed, n, weights, err)
			return false
		}
		mg, mk := lrp.Evaluate(in, pg), lrp.Evaluate(in, pk)
		if mk.MaxLoad > mg.MaxLoad*1.05+1e-9 {
			t.Errorf("seed %d: n=%d weights=%v: KK makespan %v > 1.05x Greedy %v", seed, n, weights, mk.MaxLoad, mg.MaxLoad)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestKKEmptyInstance(t *testing.T) {
	in := lrp.MustInstance([]int{0, 0}, []float64{1, 1})
	plan, err := KK{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() != 0 {
		t.Fatal("empty instance migrated tasks")
	}
}

func TestProactLBMovesOnlyExcess(t *testing.T) {
	// Loads 10,10,10,50 with w=5 on the hot proc: excess = 50-20 = 30
	// -> 6 tasks leave, nothing else moves.
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	plan, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	mig := plan.MigratedPerProc()
	if mig[0] != 0 || mig[1] != 0 || mig[2] != 0 {
		t.Fatalf("ProactLB moved tasks from non-overloaded procs: %v", mig)
	}
	if mig[3] == 0 {
		t.Fatal("ProactLB did not offload the hot process")
	}
	m := lrp.Evaluate(in, plan)
	if m.Imbalance >= in.Imbalance() {
		t.Fatalf("imbalance not improved: %v >= %v", m.Imbalance, in.Imbalance())
	}
	// Far fewer migrations than Greedy (the paper's key contrast).
	pg, _ := Greedy{}.Rebalance(context.Background(), in)
	if plan.Migrated() >= pg.Migrated() {
		t.Fatalf("ProactLB migrated %d >= Greedy %d", plan.Migrated(), pg.Migrated())
	}
}

func TestProactLBBalancedInputNoMigration(t *testing.T) {
	// Imb.0: a balanced instance must trigger zero migrations (this is
	// what Figure 3's Imb.0 case assesses).
	in := paperStyleInstance(50, 2, 2, 2, 2)
	plan, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() != 0 {
		t.Fatalf("ProactLB migrated %d tasks on balanced input", plan.Migrated())
	}
}

func TestProactLBRespectsK(t *testing.T) {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	plan, err := ProactLB{K: 2}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.MigratedPerProc() {
		if c > 2 {
			t.Fatalf("per-proc migration %d exceeds K=2", c)
		}
	}
}

func TestProactLBZeroWeightDonor(t *testing.T) {
	// A process with zero weight but nonzero count cannot donate load;
	// the algorithm must not divide by zero.
	in := lrp.MustInstance([]int{5, 5}, []float64{0, 2})
	plan, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestProactLBNeverIncreasesImbalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1+rng.Intn(20)) * 0.5
		}
		n := 1 + rng.Intn(50)
		in := paperStyleInstance(n, weights...)
		plan, err := ProactLB{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: ProactLB: %v", seed, n, weights, err)
			return false
		}
		if verr := plan.Validate(in); verr != nil {
			t.Errorf("seed %d: n=%d weights=%v: invalid plan: %v", seed, n, weights, verr)
			return false
		}
		res := lrp.Evaluate(in, plan)
		if res.MaxLoad > in.MaxLoad()+1e-9 {
			t.Errorf("seed %d: n=%d weights=%v: max load rose %v -> %v", seed, n, weights, in.MaxLoad(), res.MaxLoad)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestAllRebalancersProduceValidPlans(t *testing.T) {
	methods := []Rebalancer{Baseline{}, Greedy{}, KK{}, ProactLB{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = rng.Float64() * 10
		}
		n := rng.Intn(40)
		in := paperStyleInstance(n, weights...)
		for _, method := range methods {
			plan, err := method.Rebalance(context.Background(), in)
			if err != nil {
				t.Errorf("seed %d: n=%d weights=%v: %s: %v", seed, n, weights, method.Name(), err)
				return false
			}
			if verr := plan.Validate(in); verr != nil {
				t.Errorf("seed %d: n=%d weights=%v: %s produced invalid plan: %v", seed, n, weights, method.Name(), verr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelReducesGreedyMigrations(t *testing.T) {
	// On a balanced instance Greedy shuffles labels arbitrarily;
	// relabeling should recover most tasks without changing loads.
	in := paperStyleInstance(12, 3, 3, 3, 3)
	plan, err := Greedy{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	relabeled := RelabelMinMigrations(plan)
	if err := relabeled.Validate(in); err != nil {
		t.Fatal(err)
	}
	if relabeled.Migrated() > plan.Migrated() {
		t.Fatalf("relabeling increased migrations: %d -> %d", plan.Migrated(), relabeled.Migrated())
	}
	// Load multiset unchanged -> same max load.
	mb, ma := lrp.Evaluate(in, plan), lrp.Evaluate(in, relabeled)
	if !almostEqual(mb.MaxLoad, ma.MaxLoad) {
		t.Fatalf("relabeling changed MaxLoad: %v -> %v", mb.MaxLoad, ma.MaxLoad)
	}
}

func TestRelabelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = rng.Float64() * 5
		}
		n := 3 + rng.Intn(20)
		in := paperStyleInstance(n, weights...)
		plan, err := Greedy{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Greedy: %v", seed, n, weights, err)
			return false
		}
		rel := RelabelMinMigrations(plan)
		if verr := rel.Validate(in); verr != nil {
			t.Errorf("seed %d: n=%d weights=%v: relabeled plan invalid: %v", seed, n, weights, verr)
			return false
		}
		if rel.Migrated() > plan.Migrated() {
			t.Errorf("seed %d: n=%d weights=%v: relabeling raised migrations %d -> %d",
				seed, n, weights, plan.Migrated(), rel.Migrated())
			return false
		}
		if !almostEqual(lrp.MaxLoad(rel.Loads(in)), lrp.MaxLoad(plan.Loads(in))) {
			t.Errorf("seed %d: n=%d weights=%v: relabeling changed max load %v -> %v",
				seed, n, weights, lrp.MaxLoad(plan.Loads(in)), lrp.MaxLoad(rel.Loads(in)))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAssignmentExact(t *testing.T) {
	// Brute-force cross-check of the Hungarian implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(50))
			}
		}
		assign := maxAssignment(w)
		got := 0.0
		seen := make(map[int]bool)
		for r, c := range assign {
			if seen[c] {
				return false // not a permutation
			}
			seen[c] = true
			got += w[r][c]
		}
		// Brute force permutations.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := 0.0
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				s := 0.0
				for r, c := range perm {
					s += w[r][c]
				}
				if s > best {
					best = s
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		return almostEqual(got, best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	if (Greedy{}).Name() != "Greedy" || (KK{}).Name() != "KK" || (ProactLB{}).Name() != "ProactLB" {
		t.Fatal("method names changed; tables depend on them")
	}
}

package balancer

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lrp"
	"repro/internal/obs"
)

// bruteForceMakespan exhaustively minimizes L_max over all assignments.
func bruteForceMakespan(in *lrp.Instance) float64 {
	tasks := lrp.ExpandTasks(in)
	m := in.NumProcs()
	n := len(tasks)
	best := math.Inf(1)
	assign := make([]int, n)
	var rec func(i int)
	loads := make([]float64, m)
	rec = func(i int) {
		if i == n {
			mx := 0.0
			for _, l := range loads {
				if l > mx {
					mx = l
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		for p := 0; p < m; p++ {
			loads[p] += tasks[i].Load
			rec(i + 1)
			loads[p] -= tasks[i].Load
		}
	}
	_ = assign
	rec(0)
	return best
}

// describeOptimalErr renders a Rebalance error for a test report,
// distinguishing the budget sentinel (an instance the search could not
// afford) from genuine failures so the property report says which it was.
func describeOptimalErr(err error) string {
	if errors.Is(err, ErrBudget) {
		return "ErrBudget (node budget exhausted — search blew up)"
	}
	return "unexpected error: " + err.Error()
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(9))
		}
		tasks := make([]int, m)
		total := 0
		for i := range tasks {
			tasks[i] = rng.Intn(4)
			total += tasks[i]
		}
		if total == 0 || total > 9 {
			return true // keep brute force tractable
		}
		in := lrp.MustInstance(tasks, weights)
		plan, err := Optimal{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: tasks=%v weights=%v: Optimal: %s", seed, tasks, weights, describeOptimalErr(err))
			return false
		}
		if verr := plan.Validate(in); verr != nil {
			t.Errorf("seed %d: tasks=%v weights=%v: invalid plan: %v", seed, tasks, weights, verr)
			return false
		}
		want := bruteForceMakespan(in)
		got := lrp.MaxLoad(plan.Loads(in))
		if math.Abs(got-want) >= 1e-9 {
			t.Errorf("seed %d: tasks=%v weights=%v: makespan %v, brute force %v", seed, tasks, weights, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	if err := quick.Check(optimalNeverWorse(t), &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalNeverWorseThanHeuristicsKnownBadSeed replays the seed that
// used to blow the node budget: a uniform instance whose equal-load
// tasks made the un-pruned search explore all m^n permutations. The
// dominance rule must keep it affordable.
func TestOptimalNeverWorseThanHeuristicsKnownBadSeed(t *testing.T) {
	if !optimalNeverWorse(t)(8426459183504355874) {
		t.Fatal("property failed on the historical blowup seed")
	}
}

// optimalNeverWorse is the property behind the two tests above: on
// small uniform instances the exact search must succeed within budget
// and never lose to the heuristics it bounds.
func optimalNeverWorse(t *testing.T) func(seed int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1+rng.Intn(12)) * 0.5
		}
		n := 1 + rng.Intn(4)
		in, err := lrp.UniformInstance(n, weights)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: UniformInstance: %v", seed, n, weights, err)
			return false
		}
		opt, err := Optimal{}.Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Optimal: %s", seed, n, weights, describeOptimalErr(err))
			return false
		}
		for _, h := range []Rebalancer{Greedy{}, KK{}} {
			hp, err := h.Rebalance(context.Background(), in)
			if err != nil {
				t.Errorf("seed %d: n=%d weights=%v: %s: %v", seed, n, weights, h.Name(), err)
				return false
			}
			if lrp.MaxLoad(opt.Loads(in)) > lrp.MaxLoad(hp.Loads(in))+1e-9 {
				t.Errorf("seed %d: n=%d weights=%v: Optimal makespan %v worse than %s %v",
					seed, n, weights, lrp.MaxLoad(opt.Loads(in)), h.Name(), lrp.MaxLoad(hp.Loads(in)))
				return false
			}
		}
		return true
	}
}

// TestOptimalUniformRegression pins the exact instance derived from the
// historical blowup seed (5 procs x 4 tasks, one proc slightly heavier):
// the search must find the true optimum and must do it in a small node
// count, not by luckily squeaking under a 20M budget.
func TestOptimalUniformRegression(t *testing.T) {
	tasks := []int{4, 4, 4, 4, 4}
	weights := []float64{2.5, 2.5, 2.5, 3, 2.5}
	in := lrp.MustInstance(tasks, weights)

	reg := obs.NewRegistry()
	plan, err := (Optimal{Obs: reg}).Rebalance(context.Background(), in)
	if err != nil {
		t.Fatalf("tasks=%v weights=%v: Optimal: %s", tasks, weights, describeOptimalErr(err))
	}
	if verr := plan.Validate(in); verr != nil {
		t.Fatalf("invalid plan: %v", verr)
	}

	// Optimum by counting: 16 tasks of 2.5 and 4 of 3 over 5 partitions,
	// total 52. A makespan of 10.5 is achievable (4 partitions of
	// 3x2.5+3 = 10.5, one of 4x2.5 = 10) and every load is a multiple of
	// 0.5 plus assigned 3s, so nothing between 52/5 = 10.4 and 10.5
	// exists: 10.5 is optimal. Cross-check against the count-based brute
	// force rather than hardcoding blindly.
	want := bruteForceUniformMakespan(t, []int{16, 4}, []float64{2.5, 3}, 5)
	if math.Abs(want-10.5) > 1e-9 {
		t.Fatalf("brute force says optimum %v, analysis says 10.5", want)
	}
	if got := lrp.MaxLoad(plan.Loads(in)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", got, want)
	}

	// The dominance rule is what makes this instance affordable: without
	// it the search exceeded 20M nodes. Leave generous slack under 100k
	// so the ceiling catches a regression, not noise.
	snap := reg.Snapshot()
	var nodes int64
	for _, c := range snap.Counters {
		if c.Name == "balancer.optimal.nodes" {
			nodes = c.Value
		}
	}
	if nodes == 0 {
		t.Fatal("balancer.optimal.nodes counter not recorded")
	}
	if nodes > 100_000 {
		t.Fatalf("search took %d nodes, ceiling 100000", nodes)
	}
}

// bruteForceUniformMakespan minimizes the makespan over count vectors:
// counts[k] tasks of size sizes[k] spread over m partitions. Exhaustive
// over per-partition multiset splits, feasible because the state is
// (partition, remaining counts).
func bruteForceUniformMakespan(t *testing.T, counts []int, sizes []float64, m int) float64 {
	t.Helper()
	best := math.Inf(1)
	loads := make([]float64, m)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == len(counts) {
			mx := 0.0
			for _, l := range loads {
				if l > mx {
					mx = l
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		// Distribute counts[k] identical tasks over partitions from..m-1
		// (non-decreasing partition order per size class kills the
		// permutation blowup, mirroring the solver's dominance rule).
		var place func(remaining, p int)
		place = func(remaining, p int) {
			if remaining == 0 {
				rec(k+1, 0)
				return
			}
			if p == m {
				return
			}
			for c := remaining; c >= 0; c-- {
				loads[p] += float64(c) * sizes[k]
				place(remaining-c, p+1)
				loads[p] -= float64(c) * sizes[k]
			}
		}
		place(counts[k], 0)
	}
	rec(0, 0)
	return best
}

// TestOptimalUniformShapesProperty sweeps UniformInstance shapes —
// all-equal task loads are exactly where the dominance rule matters —
// asserting every shape solves within a modest node budget and beats or
// ties Greedy.
func TestOptimalUniformShapesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(5)
		n := 1 + rng.Intn(6)
		// Draw from a tiny value set so many procs share a weight:
		// worst case for symmetry, best case for catching blowups.
		vals := []float64{1, 2, 2.5, 3}
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = vals[rng.Intn(len(vals))]
		}
		in, err := lrp.UniformInstance(n, weights)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: UniformInstance: %v", seed, n, weights, err)
			return false
		}
		plan, err := (Optimal{MaxNodes: 2_000_000}).Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Optimal within 2M nodes: %s", seed, n, weights, describeOptimalErr(err))
			return false
		}
		if verr := plan.Validate(in); verr != nil {
			t.Errorf("seed %d: n=%d weights=%v: invalid plan: %v", seed, n, weights, verr)
			return false
		}
		gp, err := (Greedy{}).Rebalance(context.Background(), in)
		if err != nil {
			t.Errorf("seed %d: n=%d weights=%v: Greedy: %v", seed, n, weights, err)
			return false
		}
		if lrp.MaxLoad(plan.Loads(in)) > lrp.MaxLoad(gp.Loads(in))+1e-9 {
			t.Errorf("seed %d: n=%d weights=%v: Optimal %v worse than Greedy %v",
				seed, n, weights, lrp.MaxLoad(plan.Loads(in)), lrp.MaxLoad(gp.Loads(in)))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBudget(t *testing.T) {
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = float64(i*7%13 + 1)
	}
	in, err := lrp.UniformInstance(6, weights) // 48 tasks: hopeless in 10 nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Optimal{MaxNodes: 10}).Rebalance(context.Background(), in); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOptimalRelabelsForFewMigrations(t *testing.T) {
	// Balanced input: the optimal partition equals the current one, and
	// relabeling should recognize that with (near) zero migrations.
	in := lrp.MustInstance([]int{3, 3, 3}, []float64{2, 2, 2})
	plan, err := Optimal{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Migrated(); got != 0 {
		t.Fatalf("balanced optimal migrated %d tasks", got)
	}
}

func TestOptimalName(t *testing.T) {
	if (Optimal{}).Name() != "Optimal" {
		t.Fatal("name")
	}
}

func TestImprovePlanReducesHotLoad(t *testing.T) {
	// ProactLB leaves residual imbalance on coarse instances; the local
	// search must close some of the gap within the same budget + slack.
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	base, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	k := base.Migrated() + 2
	improved := ImprovePlan(in, base, k)
	if err := improved.Validate(in); err != nil {
		t.Fatal(err)
	}
	if improved.Migrated() > k {
		t.Fatalf("budget exceeded: %d > %d", improved.Migrated(), k)
	}
	before := lrp.MaxLoad(base.Loads(in))
	after := lrp.MaxLoad(improved.Loads(in))
	if after > before+1e-9 {
		t.Fatalf("local search worsened max load: %v -> %v", before, after)
	}
}

func TestImprovePlanDoesNotMutateInput(t *testing.T) {
	in := lrp.MustInstance([]int{4, 4}, []float64{1, 5})
	plan := lrp.NewPlan(in)
	_ = ImprovePlan(in, plan, 10)
	if plan.Migrated() != 0 {
		t.Fatal("input plan mutated")
	}
}

func TestImprovePlanProperty(t *testing.T) {
	// For any feasible random plan and budget, the result is valid,
	// within budget, and no worse in max load.
	in := lrp.MustInstance([]int{6, 6, 6}, []float64{1, 2, 4})
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := lrp.NewPlan(in)
		for j := 0; j < 3; j++ {
			avail := in.Tasks[j]
			for i := 0; i < 3; i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		k := int(kRaw%20) + p.Migrated() // budget at least current usage
		q := ImprovePlan(in, p, k)
		if verr := q.Validate(in); verr != nil {
			t.Errorf("seed %d k=%d: invalid plan: %v", seed, k, verr)
			return false
		}
		if q.Migrated() > k {
			t.Errorf("seed %d k=%d: budget exceeded: migrated %d", seed, k, q.Migrated())
			return false
		}
		if lrp.MaxLoad(q.Loads(in)) > lrp.MaxLoad(p.Loads(in))+1e-9 {
			t.Errorf("seed %d k=%d: local search worsened max load %v -> %v",
				seed, k, lrp.MaxLoad(p.Loads(in)), lrp.MaxLoad(q.Loads(in)))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinedComposition(t *testing.T) {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	base, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	r := Refined{Inner: ProactLB{}, Slack: 3}
	if r.Name() != "ProactLB+LS" {
		t.Fatalf("name %q", r.Name())
	}
	plan, err := r.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() > base.Migrated()+3 {
		t.Fatalf("slack exceeded: %d > %d", plan.Migrated(), base.Migrated()+3)
	}
	if lrp.MaxLoad(plan.Loads(in)) > lrp.MaxLoad(base.Loads(in))+1e-9 {
		t.Fatal("refinement worsened max load")
	}
}

package balancer

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lrp"
)

// bruteForceMakespan exhaustively minimizes L_max over all assignments.
func bruteForceMakespan(in *lrp.Instance) float64 {
	tasks := lrp.ExpandTasks(in)
	m := in.NumProcs()
	n := len(tasks)
	best := math.Inf(1)
	assign := make([]int, n)
	var rec func(i int)
	loads := make([]float64, m)
	rec = func(i int) {
		if i == n {
			mx := 0.0
			for _, l := range loads {
				if l > mx {
					mx = l
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		for p := 0; p < m; p++ {
			loads[p] += tasks[i].Load
			rec(i + 1)
			loads[p] -= tasks[i].Load
		}
	}
	_ = assign
	rec(0)
	return best
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(9))
		}
		tasks := make([]int, m)
		total := 0
		for i := range tasks {
			tasks[i] = rng.Intn(4)
			total += tasks[i]
		}
		if total == 0 || total > 9 {
			return true // keep brute force tractable
		}
		in := lrp.MustInstance(tasks, weights)
		plan, err := Optimal{}.Rebalance(context.Background(), in)
		if err != nil {
			return false
		}
		if plan.Validate(in) != nil {
			return false
		}
		want := bruteForceMakespan(in)
		got := lrp.MaxLoad(plan.Loads(in))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(1+rng.Intn(12)) * 0.5
		}
		in, err := lrp.UniformInstance(1+rng.Intn(4), weights)
		if err != nil {
			return false
		}
		opt, err := Optimal{}.Rebalance(context.Background(), in)
		if err != nil {
			return false
		}
		for _, h := range []Rebalancer{Greedy{}, KK{}} {
			hp, err := h.Rebalance(context.Background(), in)
			if err != nil {
				return false
			}
			if lrp.MaxLoad(opt.Loads(in)) > lrp.MaxLoad(hp.Loads(in))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBudget(t *testing.T) {
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = float64(i*7%13 + 1)
	}
	in, err := lrp.UniformInstance(6, weights) // 48 tasks: hopeless in 10 nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Optimal{MaxNodes: 10}).Rebalance(context.Background(), in); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOptimalRelabelsForFewMigrations(t *testing.T) {
	// Balanced input: the optimal partition equals the current one, and
	// relabeling should recognize that with (near) zero migrations.
	in := lrp.MustInstance([]int{3, 3, 3}, []float64{2, 2, 2})
	plan, err := Optimal{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Migrated(); got != 0 {
		t.Fatalf("balanced optimal migrated %d tasks", got)
	}
}

func TestOptimalName(t *testing.T) {
	if (Optimal{}).Name() != "Optimal" {
		t.Fatal("name")
	}
}

func TestImprovePlanReducesHotLoad(t *testing.T) {
	// ProactLB leaves residual imbalance on coarse instances; the local
	// search must close some of the gap within the same budget + slack.
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	base, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	k := base.Migrated() + 2
	improved := ImprovePlan(in, base, k)
	if err := improved.Validate(in); err != nil {
		t.Fatal(err)
	}
	if improved.Migrated() > k {
		t.Fatalf("budget exceeded: %d > %d", improved.Migrated(), k)
	}
	before := lrp.MaxLoad(base.Loads(in))
	after := lrp.MaxLoad(improved.Loads(in))
	if after > before+1e-9 {
		t.Fatalf("local search worsened max load: %v -> %v", before, after)
	}
}

func TestImprovePlanDoesNotMutateInput(t *testing.T) {
	in := lrp.MustInstance([]int{4, 4}, []float64{1, 5})
	plan := lrp.NewPlan(in)
	_ = ImprovePlan(in, plan, 10)
	if plan.Migrated() != 0 {
		t.Fatal("input plan mutated")
	}
}

func TestImprovePlanProperty(t *testing.T) {
	// For any feasible random plan and budget, the result is valid,
	// within budget, and no worse in max load.
	in := lrp.MustInstance([]int{6, 6, 6}, []float64{1, 2, 4})
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := lrp.NewPlan(in)
		for j := 0; j < 3; j++ {
			avail := in.Tasks[j]
			for i := 0; i < 3; i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		k := int(kRaw%20) + p.Migrated() // budget at least current usage
		q := ImprovePlan(in, p, k)
		if q.Validate(in) != nil || q.Migrated() > k {
			return false
		}
		return lrp.MaxLoad(q.Loads(in)) <= lrp.MaxLoad(p.Loads(in))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinedComposition(t *testing.T) {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	base, err := ProactLB{}.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	r := Refined{Inner: ProactLB{}, Slack: 3}
	if r.Name() != "ProactLB+LS" {
		t.Fatalf("name %q", r.Name())
	}
	plan, err := r.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatal(err)
	}
	if plan.Migrated() > base.Migrated()+3 {
		t.Fatalf("slack exceeded: %d > %d", plan.Migrated(), base.Migrated()+3)
	}
	if lrp.MaxLoad(plan.Loads(in)) > lrp.MaxLoad(base.Loads(in))+1e-9 {
		t.Fatal("refinement worsened max load")
	}
}

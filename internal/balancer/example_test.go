package balancer_test

import (
	"context"
	"fmt"

	"repro/internal/balancer"
	"repro/internal/lrp"
)

// ProactLB moves only the overload excess: the hot process sheds six
// tasks and nothing else moves.
func ExampleProactLB() {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	plan, _ := balancer.ProactLB{}.Rebalance(context.Background(), in)
	m := lrp.Evaluate(in, plan)
	fmt.Printf("migrated=%d\n", m.Migrated)
	// Output:
	// migrated=6
}

// Greedy ignores the current placement, so it reaches perfect balance
// but moves far more tasks than ProactLB on the same input.
func ExampleGreedy() {
	in := lrp.MustInstance([]int{10, 10, 10, 10}, []float64{1, 1, 1, 5})
	plan, _ := balancer.Greedy{}.Rebalance(context.Background(), in)
	m := lrp.Evaluate(in, plan)
	fmt.Printf("imbalance=%.2f migrated>%d\n", m.Imbalance, 20)
	// Output:
	// imbalance=0.00 migrated>20
}

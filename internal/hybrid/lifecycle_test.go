package hybrid

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// slowModel is big enough that a solve spans many milliseconds, giving
// the lifecycle tests a window to act while a job is Running.
func slowModel() []float64 {
	values := make([]float64, 400)
	for i := range values {
		values[i] = float64(i % 17)
	}
	return values
}

// waitForStatus polls until the job reaches want or the deadline hits.
func waitForStatus(t *testing.T, c *Client, id JobID, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d never reached %v", id, want)
}

// TestClientSubmitCloseRace hammers Submit from many goroutines while
// Close runs concurrently. Before Submit held the client mutex across
// the channel send, this raced Close's close(queue) and panicked with
// "send on closed channel"; run under -race it also guards the closed
// flag. Every Submit must either succeed or report ErrClientClosed.
func TestClientSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		c := NewClientN(Options{Reads: 1, Sweeps: 10}, 2)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					if _, err := c.Submit(knapsackModel([]float64{2, 1}, 1)); err != nil {
						if !errors.Is(err, ErrClientClosed) {
							t.Errorf("Submit: %v", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestClientCloseNowCancelsInFlight(t *testing.T) {
	c := NewClientN(Options{Reads: 4, Sweeps: 50_000}, 1)
	running, err := c.Submit(knapsackModel(slowModel(), 10))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(knapsackModel([]float64{2, 1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, c, running, Running)

	done := make(chan struct{})
	go func() {
		c.CloseNow()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("CloseNow did not return; in-flight solve was not recalled")
	}

	// The in-flight job was interrupted, not errored: the cancellation
	// contract returns the best partial sample.
	res, err := c.Wait(context.Background(), running)
	if err != nil {
		t.Fatalf("interrupted job errored: %v", err)
	}
	if !res.Stats.Interrupted {
		t.Error("in-flight job not flagged Interrupted")
	}
	// The queued job was withdrawn.
	if _, err := c.Wait(context.Background(), queued); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued job Wait = %v, want ErrCancelled", err)
	}
	st, _ := c.Status(queued)
	if st != Cancelled {
		t.Fatalf("queued job status %v", st)
	}
	// Closed for business afterwards; further CloseNow/Close are no-ops.
	if _, err := c.Submit(knapsackModel([]float64{1}, 1)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Submit after CloseNow: %v", err)
	}
	c.CloseNow()
	c.Close()
}

// TestClientLifecycleInterleaved exercises Submit/Wait/Cancel/Status
// racing a mid-stream CloseNow: no deadlocks, no panics, and every Wait
// resolves to a result, a cancellation, or a client shutdown.
func TestClientLifecycleInterleaved(t *testing.T) {
	c := NewClientN(Options{Reads: 1, Sweeps: 200}, 3)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				id, err := c.Submit(knapsackModel([]float64{4, 3, 2, 1}, 2))
				if err != nil {
					if !errors.Is(err, ErrClientClosed) {
						t.Errorf("Submit: %v", err)
					}
					return
				}
				if g%2 == 0 {
					if _, err := c.Cancel(id); err != nil {
						t.Errorf("Cancel: %v", err)
						return
					}
				}
				if _, err := c.Status(id); err != nil {
					t.Errorf("Status: %v", err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, err = c.Wait(ctx, id)
				cancel()
				if err != nil && !errors.Is(err, ErrCancelled) && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("Wait: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	c.CloseNow()
	wg.Wait()
}

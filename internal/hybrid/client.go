package hybrid

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// Client is an asynchronous job interface mimicking a cloud hybrid-solver
// service: callers submit CQMs and later collect results by job id. A
// configurable pool of dispatcher goroutines drains the queue (a shared
// cloud solver runs many jobs concurrently); jobs are picked up in
// submission order.
//
// Close the client to release the dispatchers.
type Client struct {
	opts Options

	// ctx is the client-level context every dispatched solve runs
	// under; CloseNow cancels it to recall in-flight solves.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[JobID]*job
	nextID int
	queue  chan *job
	done   chan struct{}
	closed bool
}

// JobID identifies a submitted job.
type JobID int

// JobStatus describes a job's lifecycle state.
type JobStatus int

const (
	// Queued jobs wait for a dispatcher.
	Queued JobStatus = iota
	// Running jobs occupy a dispatcher.
	Running
	// Done jobs have a result (or were cancelled; see Wait's error).
	Done
	// Cancelled jobs were withdrawn before a dispatcher picked them up.
	Cancelled
)

// String names the status.
func (s JobStatus) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("JobStatus(%d)", int(s))
}

type job struct {
	id     JobID
	model  *cqm.Model
	seed   int64
	result *solve.Result
	err    error
	ready  chan struct{}

	mu     sync.Mutex
	status JobStatus
}

func (j *job) setStatus(s JobStatus) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == Cancelled || j.status == Done {
		return false
	}
	j.status = s
	return true
}

// ErrClientClosed is returned by Submit after Close.
var ErrClientClosed = errors.New("hybrid: client closed")

// ErrUnknownJob is returned by Wait for an id the client never issued.
var ErrUnknownJob = errors.New("hybrid: unknown job")

// ErrCancelled is returned by Wait for a job cancelled before running.
var ErrCancelled = errors.New("hybrid: job cancelled")

// NewClient starts a client processing jobs with the given solver
// options on a single dispatcher; see NewClientN for a concurrent pool.
// Each job derives its own seed from opts.Seed and the job id.
func NewClient(opts Options) *Client { return NewClientN(opts, 1) }

// NewClientN starts a client with `workers` concurrent dispatchers.
func NewClientN(opts Options, workers int) *Client {
	if workers < 1 {
		workers = 1
	}
	c := &Client{
		opts:  opts,
		jobs:  make(map[JobID]*job),
		queue: make(chan *job, 64),
		done:  make(chan struct{}),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.dispatch()
		}()
	}
	go func() {
		wg.Wait()
		close(c.done)
	}()
	return c
}

func (c *Client) dispatch() {
	for j := range c.queue {
		if !j.setStatus(Running) {
			continue // cancelled while queued
		}
		// Solves run under the client-level context so CloseNow can
		// recall them; an interrupted solve still yields its best
		// partial result (Stats.Interrupted), never an error.
		j.result, j.err = New(c.opts).Solve(c.ctx, j.model, solve.WithSeed(j.seed))
		j.setStatus(Done)
		close(j.ready)
	}
}

// Submit enqueues a model and returns its job id immediately.
//
// The enqueue happens while the client mutex is held: releasing it
// before the channel send would let a concurrent Close slip in between
// the closed check and the send and close the queue under us ("send on
// closed channel"). Dispatchers never take the mutex, so a send that
// blocks on a full queue still drains.
func (c *Client) Submit(m *cqm.Model) (JobID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClientClosed
	}
	c.nextID++
	j := &job{
		id:    JobID(c.nextID),
		model: m,
		seed:  c.opts.Seed*65_537 + int64(c.nextID),
		ready: make(chan struct{}),
	}
	c.jobs[j.id] = j
	c.queue <- j
	return j.id, nil
}

// Jobs returns the number of jobs ever submitted — the independent
// "how many cloud round-trips did we actually pay for" counter the
// batching layer and its experiments are judged against.
func (c *Client) Jobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextID
}

// Wait blocks until the job completes or ctx is cancelled.
func (c *Client) Wait(ctx context.Context, id JobID) (*solve.Result, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	select {
	case <-j.ready:
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st == Cancelled {
			return nil, fmt.Errorf("%w: %d", ErrCancelled, id)
		}
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Status reports a job's current lifecycle state.
func (c *Client) Status(id JobID) (JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, nil
}

// Cancel withdraws a job that has not started running. It reports
// whether the cancellation took effect (false when the job already ran
// or finished — the cloud analogy: a solve in progress cannot be
// recalled).
func (c *Client) Cancel(id JobID) (bool, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != Queued {
		return false, nil
	}
	j.status = Cancelled
	close(j.ready)
	return true, nil
}

// Close stops accepting jobs and waits for queued jobs to finish.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.queue)
	<-c.done
	c.cancel()
}

// CloseNow stops accepting jobs, withdraws still-queued jobs, and
// cancels in-flight solves via the client-level context. In-flight jobs
// complete with their best partial result (Stats.Interrupted set);
// withdrawn jobs report Cancelled from Wait. CloseNow returns once the
// dispatchers have drained; it is idempotent and safe to combine with
// Close.
func (c *Client) CloseNow() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	jobs := make([]*job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	// Recall in-flight solves first, then withdraw what is still
	// queued; dispatchers skip withdrawn jobs while draining.
	c.cancel()
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == Queued {
			j.status = Cancelled
			close(j.ready)
		}
		j.mu.Unlock()
	}
	if !already {
		close(c.queue)
	}
	<-c.done
}

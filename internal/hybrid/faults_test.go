package hybrid

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/solve"
)

func TestEngineInjectsTransportFaults(t *testing.T) {
	m := knapsackModel([]float64{3, 2, 1}, 2)
	cases := []struct {
		kind faults.Kind
		want error
	}{
		{faults.Transient, faults.ErrTransient},
		{faults.Timeout, faults.ErrTimeout},
		{faults.Throttle, faults.ErrThrottled},
	}
	for _, tc := range cases {
		cfg := faults.Config{Seed: 1}
		switch tc.kind {
		case faults.Transient:
			cfg.Transient = 1
		case faults.Timeout:
			cfg.Timeout = 1
		case faults.Throttle:
			cfg.Throttle = 1
		}
		e := New(Options{Reads: 1, Sweeps: 10, Faults: faults.NewInjector(cfg)})
		_, err := e.Solve(context.Background(), m)
		if !errors.Is(err, tc.want) {
			t.Errorf("%v fault: err = %v, want %v", tc.kind, err, tc.want)
		}
	}
}

func TestEngineTimeoutFaultConsumesClock(t *testing.T) {
	m := knapsackModel([]float64{2, 1}, 1)
	clk := solve.NewFake(time.Unix(0, 0))
	inj := faults.NewInjector(faults.Config{Seed: 2, Timeout: 1, TimeoutDelay: 40 * time.Millisecond})
	e := New(Options{Reads: 1, Sweeps: 10, Faults: inj})
	_, err := e.Solve(context.Background(), m, solve.WithClock(clk))
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if got := clk.Since(time.Unix(0, 0)); got != 40*time.Millisecond {
		t.Fatalf("timeout consumed %v of clock, want 40ms", got)
	}
}

func TestEngineCorruptFaultDamagesSampleOnly(t *testing.T) {
	// Distinct power-of-two values make every bit observable in the
	// objective, so corruption is always detectable as a mismatch
	// between the reported objective and the returned sample.
	values := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	m := knapsackModel(values, 4)
	opt := Options{Reads: 2, Sweeps: 100, Seed: 3, Penalty: 2, PenaltyGrowth: 4}

	clean, err := New(opt).Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}

	opt.Faults = faults.NewInjector(faults.Config{Seed: 3, Corrupt: 1})
	res, err := New(opt).Solve(context.Background(), m)
	if err != nil {
		t.Fatalf("corrupt fault must not error, got %v", err)
	}
	// Reported metadata is the pre-corruption truth...
	if res.Objective != clean.Objective || res.Feasible != clean.Feasible {
		t.Fatalf("reported metadata changed: %v/%v vs clean %v/%v",
			res.Objective, res.Feasible, clean.Objective, clean.Feasible)
	}
	// ...while the sample no longer backs it up.
	if got := m.Objective(res.Sample); math.Abs(got-res.Objective) < 1e-9 {
		t.Fatalf("corrupted sample still evaluates to the reported objective %v", got)
	}
}

func TestEngineCleanScheduleUnaffected(t *testing.T) {
	m := knapsackModel([]float64{3, 2, 1}, 2)
	inj := faults.NewInjector(faults.Uniform(4, 0)) // rate 0: all clean
	withHook := mustSolve(t, m, Options{Reads: 2, Sweeps: 60, Seed: 5, Faults: inj})
	without := mustSolve(t, m, Options{Reads: 2, Sweeps: 60, Seed: 5})
	if withHook.Objective != without.Objective || withHook.Feasible != without.Feasible {
		t.Fatalf("clean injector changed the solve: %v vs %v", withHook.Objective, without.Objective)
	}
	if inj.Attempts() != 1 || inj.Injected() != 0 {
		t.Fatalf("injector saw %d attempts, %d injected", inj.Attempts(), inj.Injected())
	}
}

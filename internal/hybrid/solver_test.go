package hybrid

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/exact"
	"repro/internal/solve"
)

// knapsackModel builds a small constrained model: maximize value (minimize
// negative value) subject to a cardinality cap.
func knapsackModel(values []float64, cap int) *cqm.Model {
	m := cqm.New()
	var sum cqm.LinExpr
	for _, v := range values {
		id := m.AddBinary("x")
		m.AddObjectiveLinear(id, -v)
		sum.Add(id, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, float64(cap))
	return m
}

// mustSolve runs the engine with the given options, failing the test on
// error. It keeps the table-style tests below compact.
func mustSolve(t *testing.T, m *cqm.Model, opt Options) *solve.Result {
	t.Helper()
	res, err := New(opt).Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveMatchesExactOnSmallModels(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := knapsackModel([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
		want, err := exact.Solve(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := mustSolve(t, m, Options{Reads: 6, Sweeps: 300, Seed: seed, Presolve: true, Penalty: 2, PenaltyGrowth: 4})
		if !got.Feasible {
			t.Fatalf("seed %d: hybrid found no feasible sample", seed)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("seed %d: hybrid objective %v, exact %v", seed, got.Objective, want.Objective)
		}
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	m := knapsackModel([]float64{3, 2, 1}, 2)
	res := mustSolve(t, m, Options{Reads: 4, Sweeps: 100, Seed: 1, Timing: DefaultTimingModel()})
	s := res.Stats
	if s.Reads != 4 {
		t.Errorf("Reads = %d, want 4", s.Reads)
	}
	if s.Flips == 0 {
		t.Error("Flips not counted")
	}
	if s.SimulatedQPU != 32*time.Millisecond {
		t.Errorf("SimulatedQPU = %v", s.SimulatedQPU)
	}
	if s.SimulatedCPU < 5*time.Second {
		t.Errorf("SimulatedCPU = %v, want >= hybrid floor", s.SimulatedCPU)
	}
	if s.Wall <= 0 || s.Wall > time.Minute {
		t.Errorf("Wall = %v", s.Wall)
	}
	if s.FeasibleReads == 0 {
		t.Error("no feasible reads on a trivial model")
	}
}

func TestSolvePresolveShrinksSearch(t *testing.T) {
	// Force two variables via constraints; presolve should fix them.
	m := cqm.New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	m.AddObjectiveLinear(c, -1)
	m.AddConstraint("a0", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Le, 0)
	m.AddConstraint("b1", cqm.LinExpr{Terms: []cqm.Term{{Var: b, Coef: 1}}}, cqm.Ge, 1)
	res := mustSolve(t, m, Options{Reads: 2, Sweeps: 50, Seed: 1, Presolve: true})
	if res.Stats.PresolveFixed != 2 {
		t.Errorf("PresolveFixed = %d, want 2", res.Stats.PresolveFixed)
	}
	if !res.Feasible || res.Sample[0] || !res.Sample[1] || !res.Sample[2] {
		t.Errorf("unexpected sample %v (feasible=%v)", res.Sample, res.Feasible)
	}
}

func TestSolveTemperingPath(t *testing.T) {
	m := knapsackModel([]float64{8, 6, 4, 2, 1}, 2)
	res := mustSolve(t, m, Options{Reads: 4, Sweeps: 200, Seed: 3, Tempering: true, Penalty: 2, PenaltyGrowth: 4})
	if !res.Feasible {
		t.Fatal("tempering found no feasible sample")
	}
	if res.Objective != -14 {
		t.Fatalf("tempering objective = %v, want -14", res.Objective)
	}
}

func TestSolveDeterministicPerSeed(t *testing.T) {
	m := knapsackModel([]float64{5, 4, 3, 2, 1}, 2)
	a := mustSolve(t, m, Options{Reads: 3, Sweeps: 80, Seed: 7})
	b := mustSolve(t, m, Options{Reads: 3, Sweeps: 80, Seed: 7})
	if a.Objective != b.Objective || a.Feasible != b.Feasible {
		t.Fatalf("nondeterministic: %v vs %v", a.Objective, b.Objective)
	}
}

func TestSolveReportsInfeasibleModel(t *testing.T) {
	m := cqm.New()
	a := m.AddBinary("a")
	m.AddConstraint("lo", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Ge, 1)
	m.AddConstraint("hi", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Le, 0)
	res := mustSolve(t, m, Options{Reads: 2, Sweeps: 30, Seed: 1, Presolve: true})
	if res.Feasible {
		t.Fatal("infeasible model reported feasible")
	}
}

func TestClientSubmitWait(t *testing.T) {
	c := NewClient(Options{Reads: 2, Sweeps: 60, Seed: 5, Penalty: 2, PenaltyGrowth: 4})
	defer c.Close()
	var ids []JobID
	for i := 0; i < 3; i++ {
		id, err := c.Submit(knapsackModel([]float64{4, 3, 2, 1}, 2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		res, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible || res.Objective != -7 {
			t.Fatalf("job %d: %+v", id, res)
		}
	}
}

func TestClientUnknownAndClosed(t *testing.T) {
	c := NewClient(Options{Reads: 1, Sweeps: 10})
	if _, err := c.Wait(context.Background(), 999); err == nil {
		t.Fatal("Wait on unknown job succeeded")
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.Submit(cqm.New()); err != ErrClientClosed {
		t.Fatalf("Submit after close: %v", err)
	}
}

func TestClientWaitContextCancelled(t *testing.T) {
	c := NewClient(Options{Reads: 4, Sweeps: 4000})
	defer c.Close()
	// Big model keeps the dispatcher busy long enough to cancel.
	values := make([]float64, 400)
	for i := range values {
		values[i] = float64(i % 17)
	}
	id, err := c.Submit(knapsackModel(values, 10))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Wait(ctx, id); err != context.Canceled {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
}

func TestTimingModelOverhead(t *testing.T) {
	tm := DefaultTimingModel()
	if tm.CloudOverhead() != tm.Submission+tm.HybridFloor {
		t.Fatal("CloudOverhead mismatch")
	}
}

func TestSolveWithTabuReads(t *testing.T) {
	m := knapsackModel([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
	res := mustSolve(t, m, Options{Reads: 2, TabuReads: 3, Sweeps: 100, Seed: 4, Presolve: true, Penalty: 2, PenaltyGrowth: 4})
	if !res.Feasible {
		t.Fatal("no feasible sample with tabu portfolio")
	}
	if res.Objective != -21 {
		t.Fatalf("objective %v, want -21", res.Objective)
	}
	if res.Stats.Reads != 5 {
		t.Fatalf("Reads stat = %d, want 5 (2 SA + 3 tabu)", res.Stats.Reads)
	}
}

func TestSolveTabuOnly(t *testing.T) {
	// A portfolio of only tabu members still works (Reads=1 minimum SA
	// read is forced by the default, so use Reads explicitly).
	m := knapsackModel([]float64{5, 4, 3}, 1)
	res := mustSolve(t, m, Options{Reads: 1, TabuReads: 2, Sweeps: 50, Seed: 2, Penalty: 2})
	if !res.Feasible || res.Objective != -5 {
		t.Fatalf("tabu-augmented solve: %+v", res)
	}
}

func TestClientConcurrentWorkers(t *testing.T) {
	c := NewClientN(Options{Reads: 2, Sweeps: 60, Seed: 9, Penalty: 2, PenaltyGrowth: 4}, 3)
	defer c.Close()
	var ids []JobID
	for i := 0; i < 6; i++ {
		id, err := c.Submit(knapsackModel([]float64{4, 3, 2, 1}, 2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, id := range ids {
		res, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible || res.Objective != -7 {
			t.Fatalf("job %d: %+v", id, res)
		}
		st, err := c.Status(id)
		if err != nil || st != Done {
			t.Fatalf("job %d status %v (%v)", id, st, err)
		}
	}
}

func TestClientCancelQueuedJob(t *testing.T) {
	// One slow worker; the second job sits queued and can be cancelled.
	big := make([]float64, 300)
	for i := range big {
		big[i] = float64(i % 13)
	}
	c := NewClientN(Options{Reads: 2, Sweeps: 3000}, 1)
	defer c.Close()
	if _, err := c.Submit(knapsackModel(big, 10)); err != nil {
		t.Fatal(err)
	}
	id2, err := c.Submit(knapsackModel([]float64{1, 2}, 1))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Cancel(id2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		if _, err := c.Wait(context.Background(), id2); err == nil {
			t.Fatal("cancelled job returned a result")
		}
		st, _ := c.Status(id2)
		if st != Cancelled {
			t.Fatalf("status %v, want Cancelled", st)
		}
	}
	// Unknown job ids error.
	if _, err := c.Cancel(12345); err == nil {
		t.Fatal("Cancel on unknown id succeeded")
	}
	if _, err := c.Status(12345); err == nil {
		t.Fatal("Status on unknown id succeeded")
	}
}

func TestJobStatusString(t *testing.T) {
	if Queued.String() != "queued" || Running.String() != "running" ||
		Done.String() != "done" || Cancelled.String() != "cancelled" {
		t.Fatal("status names")
	}
	if JobStatus(9).String() == "" {
		t.Fatal("unknown status empty")
	}
}

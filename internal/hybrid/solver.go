// Package hybrid implements a hybrid classical-quantum solver workflow
// modelled on D-Wave's Leap hybrid CQM solver, which the paper uses to
// solve its LRP formulations. Since no quantum hardware is available in
// this environment, the quantum sampling stage is substituted by the
// simulated-annealing engine (internal/sa) — see DESIGN.md for why this
// preserves the behaviour the paper evaluates.
//
// The workflow mirrors the hybrid solver pipeline:
//
//  1. classical presolve (bound-based variable fixing),
//  2. a portfolio of annealing trajectories (multi-restart or parallel
//     tempering) run concurrently on a goroutine pool,
//  3. feasibility filtering and best-feasible selection.
//
// A timing model accounts simulated cloud latency and QPU access time so
// the experiments can report the CPU/QPU runtime split of Table V without
// actually sleeping.
package hybrid

import (
	"time"

	"repro/internal/cqm"
	"repro/internal/sa"
	"repro/internal/tabu"
)

// Options configures a hybrid solve.
type Options struct {
	// Reads is the number of independent annealing trajectories
	// (restarts); the best feasible sample across reads is returned.
	Reads int
	// TabuReads adds deterministic tabu-search trajectories to the
	// portfolio (cloud hybrid solvers run exactly such heterogeneous
	// heuristic portfolios).
	TabuReads int
	// Sweeps is the annealing sweep budget per read.
	Sweeps int
	// Workers bounds solver concurrency (0 = GOMAXPROCS).
	Workers int
	// Seed makes the solve reproducible.
	Seed int64
	// Presolve enables the classical variable-fixing pass.
	Presolve bool
	// Tempering switches the sampling stage from independent restarts
	// to parallel tempering (better mixing on large rugged models).
	Tempering bool
	// Penalty and PenaltyGrowth tune constraint handling (see sa.Options).
	Penalty       float64
	PenaltyGrowth float64
	// Initial is an optional warm-start assignment (e.g. the encoding of
	// a known-feasible plan); alternate reads start from it, mirroring
	// the classical warm start of cloud hybrid solvers.
	Initial []bool
	// Initials are additional warm starts distributed across reads.
	Initials [][]bool
	// Cancel, when non-nil, aborts sampling at the next sweep boundary
	// of each read; partial results are still collected.
	Cancel <-chan struct{}
	// Pairs and PairProb enable equality-preserving pair moves in the
	// sampler (see sa.Options).
	Pairs    [][2]cqm.VarID
	PairProb float64
	// Timing is the simulated cloud/QPU timing model.
	Timing TimingModel
}

// DefaultOptions returns settings that solve the paper's LRP models
// reliably.
func DefaultOptions() Options {
	return Options{
		Reads:         8,
		Sweeps:        600,
		Presolve:      true,
		Penalty:       1,
		PenaltyGrowth: 4,
		Timing:        DefaultTimingModel(),
	}
}

// Stats describes the work performed by a hybrid solve.
type Stats struct {
	// WallTime is the real time spent in the classical sampling engine.
	WallTime time.Duration
	// SimulatedCPU is what the paper's "CPU" runtime column reports:
	// real solver time plus simulated cloud submission latency.
	SimulatedCPU time.Duration
	// SimulatedQPU is the simulated quantum-processor access time (the
	// paper's "QPU" column, ~32 ms per call in Table V).
	SimulatedQPU time.Duration
	// Reads is the number of annealing trajectories executed.
	Reads int
	// PresolveFixed counts variables fixed by the classical presolve.
	PresolveFixed int
	// FeasibleReads counts reads whose best sample was feasible.
	FeasibleReads int
	// Flips counts total proposed moves across reads.
	Flips int64
}

// Result is a hybrid solve outcome.
type Result struct {
	// Sample is the best assignment found (feasible when Feasible).
	Sample []bool
	// Objective is the CQM objective of Sample.
	Objective float64
	// Feasible reports whether Sample satisfies every constraint.
	Feasible bool
	Stats    Stats
}

// Solve runs the hybrid workflow on m.
func Solve(m *cqm.Model, opt Options) Result {
	if opt.Reads <= 0 {
		opt.Reads = DefaultOptions().Reads
	}
	if opt.Sweeps <= 0 {
		opt.Sweeps = DefaultOptions().Sweeps
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	start := time.Now()

	var frozen map[cqm.VarID]bool
	if opt.Presolve {
		fixed, err := cqm.Presolve(m)
		if err == nil {
			frozen = fixed
		}
		// A presolve infeasibility proof still lets the sampler run;
		// the result will simply be reported infeasible.
	}

	base := sa.Options{
		Sweeps:        opt.Sweeps,
		Penalty:       opt.Penalty,
		PenaltyGrowth: opt.PenaltyGrowth,
		Seed:          opt.Seed,
		Frozen:        frozen,
		Initial:       opt.Initial,
		Pairs:         opt.Pairs,
		PairProb:      opt.PairProb,
		Cancel:        opt.Cancel,
	}

	var best sa.Result
	var all []sa.Result
	if opt.Tempering {
		best = sa.ParallelTempering(m, sa.PTOptions{Base: base, Replicas: maxInt(2, opt.Reads)})
		all = []sa.Result{best}
	} else {
		best, all = sa.Portfolio(m, sa.PortfolioOptions{
			Base:     base,
			Restarts: opt.Reads,
			Workers:  opt.Workers,
			Initials: opt.Initials,
		})
	}
	// Tabu members of the portfolio: one per TabuRead, alternating
	// between the provided warm starts and random initial states.
	initials := opt.Initials
	if opt.Initial != nil {
		initials = append(append([][]bool(nil), initials...), opt.Initial)
	}
	for r := 0; r < opt.TabuReads; r++ {
		topt := tabu.Options{
			Penalty: opt.Penalty * 16, // final-scale penalties: tabu has no growth phase
			Seed:    opt.Seed*524_287 + int64(r),
			Frozen:  frozen,
		}
		if len(initials) > 0 && r%2 == 0 {
			topt.Initial = initials[(r/2)%len(initials)]
		}
		tr := tabu.Search(m, topt)
		conv := sa.Result{Best: tr.Best, BestObjective: tr.BestObjective, BestFeasible: tr.BestFeasible, Flips: tr.Moves}
		all = append(all, conv)
		if sa.Better(conv, best) {
			best = conv
		}
	}
	wall := time.Since(start)

	stats := Stats{
		WallTime:      wall,
		SimulatedCPU:  wall + opt.Timing.CloudOverhead(),
		SimulatedQPU:  opt.Timing.QPUAccess,
		Reads:         len(all),
		PresolveFixed: len(frozen),
	}
	for _, r := range all {
		stats.Flips += r.Flips
		if r.BestFeasible {
			stats.FeasibleReads++
		}
	}
	return Result{
		Sample:    best.Best,
		Objective: best.BestObjective,
		Feasible:  best.BestFeasible,
		Stats:     stats,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package hybrid implements a hybrid classical-quantum solver workflow
// modelled on D-Wave's Leap hybrid CQM solver, which the paper uses to
// solve its LRP formulations. Since no quantum hardware is available in
// this environment, the quantum sampling stage is substituted by the
// simulated-annealing engine (internal/sa) — see DESIGN.md for why this
// preserves the behaviour the paper evaluates.
//
// The workflow mirrors the hybrid solver pipeline:
//
//  1. classical presolve (bound-based variable fixing),
//  2. a portfolio of annealing trajectories (multi-restart or parallel
//     tempering) run concurrently on a goroutine pool, optionally
//     joined by deterministic tabu trajectories,
//  3. feasibility filtering and best-feasible selection.
//
// A timing model accounts simulated cloud latency and QPU access time so
// the experiments can report the CPU/QPU runtime split of Table V without
// actually sleeping.
package hybrid

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cqm"
	"repro/internal/faults"
	"repro/internal/sa"
	"repro/internal/solve"
	"repro/internal/tabu"
	"repro/internal/verify"
)

// Options configures a hybrid solve.
type Options struct {
	// Reads is the number of independent annealing trajectories
	// (restarts); the best feasible sample across reads is returned.
	Reads int
	// TabuReads adds deterministic tabu-search trajectories to the
	// portfolio (cloud hybrid solvers run exactly such heterogeneous
	// heuristic portfolios).
	TabuReads int
	// Sweeps is the annealing sweep budget per read.
	Sweeps int
	// Workers bounds solver concurrency (0 = GOMAXPROCS).
	Workers int
	// Seed makes the solve reproducible.
	Seed int64
	// Presolve enables the classical variable-fixing pass.
	Presolve bool
	// Tempering switches the sampling stage from independent restarts
	// to parallel tempering (better mixing on large rugged models).
	Tempering bool
	// Penalty and PenaltyGrowth tune constraint handling (see sa.Options).
	Penalty       float64
	PenaltyGrowth float64
	// Initial is an optional warm-start assignment (e.g. the encoding of
	// a known-feasible plan); alternate reads start from it, mirroring
	// the classical warm start of cloud hybrid solvers.
	Initial []bool
	// Initials are additional warm starts distributed across reads.
	Initials [][]bool
	// Pairs and PairProb enable equality-preserving pair moves in the
	// sampler (see sa.Options).
	Pairs    [][2]cqm.VarID
	PairProb float64
	// Timing is the simulated cloud/QPU timing model.
	Timing TimingModel
	// Faults, when non-nil, is consulted once per Solve call: the
	// simulated cloud path surfaces the injected fault — a transport
	// error (transient/timeout/throttle) instead of a result, or a
	// corrupted sample on an otherwise clean solve. A nil hook models a
	// perfectly reliable cloud. Pair with internal/resilient to recover.
	Faults faults.Hook
}

// DefaultOptions returns settings that solve the paper's LRP models
// reliably.
func DefaultOptions() Options {
	return Options{
		Reads:         8,
		Sweeps:        600,
		Presolve:      true,
		Penalty:       1,
		PenaltyGrowth: 4,
		Timing:        DefaultTimingModel(),
	}
}

// Engine runs the hybrid workflow behind the solve.Solver interface.
// Cancellation and deadlines stop every portfolio member at its next
// sweep (or tabu iteration) boundary and skip members not yet started;
// the best sample collected so far is still selected and returned with
// Stats.Interrupted set — an interrupted solve never returns an error.
type Engine struct {
	// Base holds the problem-independent configuration. Seed, Reads,
	// Sweeps and Workers act as defaults that the per-solve options
	// (solve.WithSeed etc.) override.
	Base Options
}

// New returns an engine with the given base configuration; zero fields
// fall back to DefaultOptions at solve time.
func New(opt Options) *Engine { return &Engine{Base: opt} }

// NewEngine returns an engine with the library defaults.
func NewEngine() *Engine { return New(DefaultOptions()) }

// Name implements solve.Solver.
func (e *Engine) Name() string { return "hybrid" }

// Solve implements solve.Solver.
func (e *Engine) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("hybrid: nil model")
	}
	cfg := solve.NewConfig(opts...)
	stop := cfg.NewStop(ctx)
	start := cfg.Clock.Now()

	opt := e.Base
	if cfg.HasSeed {
		opt.Seed = cfg.Seed
	}
	if cfg.Reads > 0 {
		opt.Reads = cfg.Reads
	}
	if cfg.Sweeps > 0 {
		opt.Sweeps = cfg.Sweeps
	}
	if cfg.Workers > 0 {
		opt.Workers = cfg.Workers
	}
	if opt.Reads <= 0 {
		opt.Reads = DefaultOptions().Reads
	}
	if opt.Sweeps <= 0 {
		opt.Sweeps = DefaultOptions().Sweeps
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	progress := solve.SerialProgress(cfg.Progress)

	// Fault injection point: the simulated cloud decides this attempt's
	// fate before any sampling happens. Transport faults surface as
	// errors (the one case where Solve errors on well-formed input, by
	// design — they model the network, not the solver); a Corrupt fault
	// damages the returned sample after the solve below.
	var fault faults.Fault
	if opt.Faults != nil {
		fault = opt.Faults.Next()
		if ferr := fault.Kind.Err(); ferr != nil {
			if fault.Delay > 0 {
				// A timeout burns simulated time before surfacing.
				if cerr := cfg.Clock.Sleep(ctx, fault.Delay); cerr != nil {
					return nil, fmt.Errorf("hybrid: job %d: %w", fault.Seq, cerr)
				}
			}
			return nil, fmt.Errorf("hybrid: job %d: %w", fault.Seq, ferr)
		}
		if fault.Kind == faults.Panic {
			// A crashing worker takes the goroutine down mid-solve; only
			// the isolation layer (solve.Protected, as used by the hedge
			// and resilient wrappers) keeps it from taking the process.
			panic(fmt.Sprintf("hybrid: job %d: injected solver crash", fault.Seq))
		}
	}

	var frozen map[cqm.VarID]bool
	if opt.Presolve {
		sp := cfg.Obs.StartSpan("hybrid.presolve")
		fixed, err := cqm.Presolve(m)
		if err == nil {
			frozen = fixed
		}
		// A presolve infeasibility proof still lets the sampler run;
		// the result will simply be reported infeasible.
		sp.Set("fixed", len(frozen)).End()
	}

	base := sa.Options{
		Sweeps:        opt.Sweeps,
		Penalty:       opt.Penalty,
		PenaltyGrowth: opt.PenaltyGrowth,
		Seed:          opt.Seed,
		Frozen:        frozen,
		Initial:       opt.Initial,
		Pairs:         opt.Pairs,
		PairProb:      opt.PairProb,
		Stop:          stop.Func(),
	}

	var best sa.Result
	var all []sa.Result
	portfolioSpan := cfg.Obs.StartSpan("hybrid.portfolio")
	portfolioSpan.Set("reads", opt.Reads).Set("tempering", opt.Tempering)
	if opt.Tempering {
		if progress != nil {
			base.Progress = func(sweep int, bestObj float64, feas bool) {
				progress(solve.Event{Sweep: sweep, BestObjective: bestObj, Feasible: feas})
			}
		}
		best = sa.ParallelTempering(m, sa.PTOptions{Base: base, Replicas: max(2, opt.Reads)})
		all = []sa.Result{best}
	} else {
		popt := sa.PortfolioOptions{
			Base:     base,
			Restarts: opt.Reads,
			Workers:  opt.Workers,
			Initials: opt.Initials,
		}
		if progress != nil {
			popt.Progress = func(restart, sweep int, bestObj float64, feas bool) {
				progress(solve.Event{Restart: restart, Sweep: sweep, BestObjective: bestObj, Feasible: feas})
			}
		}
		best, all = sa.Portfolio(m, popt)
	}
	portfolioSpan.End()
	// Tabu members of the portfolio: one per TabuRead, alternating
	// between the provided warm starts and random initial states. Reads
	// not yet started when the solve is interrupted are skipped.
	initials := opt.Initials
	if opt.Initial != nil {
		initials = append(append([][]bool(nil), initials...), opt.Initial)
	}
	for r := 0; r < opt.TabuReads && !stop.Stopped(); r++ {
		topt := tabu.Options{
			Penalty: opt.Penalty * 16, // final-scale penalties: tabu has no growth phase
			Seed:    opt.Seed*524_287 + int64(r),
			Frozen:  frozen,
			Stop:    stop.Func(),
		}
		if len(initials) > 0 && r%2 == 0 {
			topt.Initial = initials[(r/2)%len(initials)]
		}
		if progress != nil {
			restart := opt.Reads + r
			topt.Progress = func(iter int, bestObj float64, feas bool) {
				progress(solve.Event{Restart: restart, Sweep: iter, BestObjective: bestObj, Feasible: feas})
			}
		}
		tr := tabu.Search(m, topt)
		conv := sa.Result{Best: tr.Best, BestObjective: tr.BestObjective, BestFeasible: tr.BestFeasible, Flips: tr.Moves}
		all = append(all, conv)
		if sa.Better(conv, best) {
			best = conv
		}
	}
	wall := cfg.Clock.Since(start)

	res := &solve.Result{
		Sample:    best.Best,
		Objective: best.BestObjective,
		Feasible:  best.BestFeasible,
		Stats: solve.Stats{
			Wall:          wall,
			SimulatedCPU:  wall + opt.Timing.CloudOverhead(),
			SimulatedQPU:  opt.Timing.QPUAccess,
			Reads:         len(all),
			PresolveFixed: len(frozen),
			Interrupted:   stop.Interrupted(),
		},
	}
	for _, r := range all {
		res.Stats.Sweeps += r.Sweeps
		res.Stats.Flips += r.Flips
		res.Stats.Accepted += r.Accepted
		res.Stats.PenaltyRescales += r.PenaltyRescales
		res.Stats.TemperingSwaps += r.Swaps
		if r.BestFeasible {
			res.Stats.FeasibleReads++
		}
	}
	// Attest the reply before it leaves the engine: objective and
	// feasibility are recomputed from the sample itself, so an
	// incremental-evaluator drift or selection bug can never ship
	// metadata the sample does not back. Adjustments are counted — a
	// non-zero rate is an engine bug worth investigating.
	if verify.Attest(m, res, verify.Options{}) && cfg.Obs != nil {
		cfg.Obs.Counter("solver.hybrid.attest_fixes").Inc()
	}
	if fault.Kind == faults.Corrupt {
		// Corruption happens after attestation, on a copy: the reported
		// objective/feasibility intentionally keep their pre-corruption
		// values. The damage is exactly that the reply no longer matches
		// its own metadata, which is what independent verification
		// (internal/verify, resilient's validation, the hedge race)
		// detects downstream.
		res.Sample = append([]bool(nil), res.Sample...)
		fault.CorruptSample(res.Sample)
	}
	cfg.Observe(e.Name(), res.Stats)
	return res, nil
}

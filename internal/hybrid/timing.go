package hybrid

import "time"

// TimingModel captures the latency structure of a cloud-hosted hybrid
// solver. The paper's Table V shows the shape this model reproduces: a
// multi-second "CPU" runtime dominated by submission latency and hybrid
// processing ("a portion of this time dedicated to communication with
// D-Wave's Leap quantum cloud service") and a small, roughly constant
// "QPU" access time (~32 ms).
type TimingModel struct {
	// Submission is the simulated round-trip to the cloud service
	// (serialization, network, queueing).
	Submission time.Duration
	// HybridFloor is the minimum time the hybrid service spends on any
	// problem regardless of size (Leap enforces a minimum time limit on
	// the order of seconds).
	HybridFloor time.Duration
	// QPUAccess is the simulated quantum-processor access time per
	// solve.
	QPUAccess time.Duration
}

// DefaultTimingModel reproduces the order of magnitude of the paper's
// measurements: ~5 s end-to-end per hybrid call with ~32 ms of QPU time.
func DefaultTimingModel() TimingModel {
	return TimingModel{
		Submission:  200 * time.Millisecond,
		HybridFloor: 5 * time.Second,
		QPUAccess:   32 * time.Millisecond,
	}
}

// CloudOverhead returns the simulated non-QPU overhead added on top of
// the real classical sampling time.
func (t TimingModel) CloudOverhead() time.Duration {
	return t.Submission + t.HybridFloor
}

package resilient

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Closed: everything passes; failures below the threshold keep it
	// closed, and a success clears the streak.
	for i := 0; i < 2; i++ {
		if !b.Allow(t0) {
			t.Fatal("closed breaker rejected a request")
		}
		b.Record(false, t0)
	}
	b.Record(true, t0)
	if b.State() != Closed || b.Trips() != 0 {
		t.Fatalf("state %v trips %d after streak reset", b.State(), b.Trips())
	}

	// Three consecutive failures open it.
	for i := 0; i < 3; i++ {
		b.Record(false, t0)
	}
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state %v trips %d, want open/1", b.State(), b.Trips())
	}

	// Open: rejected inside the cooldown, half-open probe after.
	if b.Allow(t0.Add(999 * time.Millisecond)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if !b.Allow(t0.Add(time.Second)) {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}

	// Half-open probe failure reopens immediately (no threshold).
	b.Record(false, t0.Add(time.Second))
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("state %v trips %d after probe failure", b.State(), b.Trips())
	}

	// A successful probe closes it again.
	if !b.Allow(t0.Add(3 * time.Second)) {
		t.Fatal("second probe rejected")
	}
	b.Record(true, t0.Add(3*time.Second))
	if b.State() != Closed {
		t.Fatalf("state %v, want closed after probe success", b.State())
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	now := time.Unix(0, 0)
	var nilB *Breaker
	if !nilB.Allow(now) {
		t.Fatal("nil breaker rejected")
	}
	nilB.Record(false, now) // must not panic
	if nilB.State() != Closed || nilB.Trips() != 0 {
		t.Fatal("nil breaker state")
	}

	off := NewBreaker(BreakerConfig{})
	for i := 0; i < 10; i++ {
		off.Record(false, now)
	}
	if !off.Allow(now) || off.State() != Closed {
		t.Fatal("disabled breaker tripped")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state names")
	}
	if BreakerState(9).String() != "unknown" {
		t.Fatal("unknown state name")
	}
}

package resilient

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's lifecycle state.
type BreakerState int

const (
	// Closed passes every request through (normal operation).
	Closed BreakerState = iota
	// Open rejects requests until the cooldown elapses.
	Open
	// HalfOpen admits probe requests after the cooldown; a success
	// closes the breaker again, a failure reopens it immediately.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker; <= 0 disables the breaker entirely (always closed).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe, measured on the caller-supplied clock.
	Cooldown time.Duration
}

// Breaker is a clock-agnostic closed/open/half-open circuit breaker:
// callers pass the current time in, so real and fake clocks drive it
// identically. It is safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	trips    int
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// Allow reports whether a request may proceed at time now. An open
// breaker whose cooldown has elapsed transitions to half-open and
// admits the probe.
func (b *Breaker) Allow(now time.Time) bool {
	if b == nil || b.cfg.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			return true
		}
		return false
	default: // Closed, HalfOpen
		return true
	}
}

// Record reports an attempt's outcome at time now. A success closes the
// breaker and clears the failure streak; a failure extends the streak,
// opening the breaker at the threshold — or immediately when the
// failure was a half-open probe.
func (b *Breaker) Record(success bool, now time.Time) {
	if b == nil || b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = Closed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == HalfOpen || b.fails >= b.cfg.Threshold {
		b.state = Open
		b.openedAt = now
		b.trips++
		b.fails = 0
	}
}

// State returns the current state (an elapsed cooldown is reported as
// Open until the next Allow observes it).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed/half-open -> open transitions so far.
func (b *Breaker) Trips() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Package resilient hardens the cloud solver path against the failures
// internal/faults models (and real services exhibit): it wraps any
// solve.Solver with retry + exponential backoff + jitter, per-attempt
// budgets, response validation, a circuit breaker, and graceful
// degradation to a local classical fallback solver — so a feasible
// (possibly worse) result is always returned and a BSP rebalancing loop
// never dies to a cloud outage.
//
// All timing is driven by the injected solve.Clock: backoff sleeps via
// Clock.Sleep and the breaker's cooldown is measured on Clock.Now, so
// the fake clock makes every schedule deterministic in tests. Jitter is
// drawn from a seeded RNG and is likewise reproducible.
//
// The Policy holds the configuration and the state that must persist
// across solves (breaker, cumulative counters); Wrap binds it to an
// inner solver. Per-solve counters are reported in the result's
// solve.Stats (Attempts/Retries/Fallbacks/BreakerSkips) so experiments
// can plot quality-vs-fault-rate degradation curves.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cqm"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/solve"
	"repro/internal/verify"
)

// Sentinel errors of the resilience layer; call sites wrap them with %w.
var (
	// ErrBreakerOpen marks an attempt skipped because the circuit
	// breaker was open (and no fallback was configured).
	ErrBreakerOpen = errors.New("resilient: circuit breaker open")
	// ErrInvalidResponse marks a response whose sample does not match
	// its reported objective/feasibility (a corrupted cloud reply).
	ErrInvalidResponse = errors.New("resilient: invalid solver response")
	// ErrExhausted marks a solve whose retry budget ran out with no
	// usable result (and no fallback was configured).
	ErrExhausted = errors.New("resilient: attempts exhausted")
)

// Options tunes the resilience policy.
type Options struct {
	// MaxAttempts bounds cloud submissions per solve (default 3).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by a factor in [1-Jitter, 1+Jitter]
	// (default 0.1); the draw is seeded, hence reproducible.
	Jitter float64
	// Seed drives the jitter RNG when the per-solve options carry no
	// seed of their own.
	Seed int64
	// AttemptBudget bounds each cloud attempt's solver time on the
	// injected clock (0 = inherit the caller's budget/deadline only).
	AttemptBudget time.Duration
	// Breaker configures the circuit breaker (zero Threshold disables).
	Breaker BreakerConfig
	// Clock, when non-nil, overrides the per-solve clock for the
	// resilience layer's own timing (backoff sleeps, breaker cooldown,
	// reported Wall). Pass a solve.Fake to make retry and breaker
	// schedules fully deterministic — real time spent inside the inner
	// solver then no longer influences breaker decisions. The inner
	// solver keeps the caller's clock.
	Clock solve.Clock
	// Fallback is the local classical solver (typically sa or tabu)
	// serving the request when the cloud path is exhausted or the
	// breaker is open. Nil means failures surface as errors.
	Fallback solve.Solver
	// NoValidate disables response validation (sample length, objective
	// and feasibility recomputation) — validation is what detects
	// corrupted replies, so leave it on unless the model is huge.
	NoValidate bool
	// OnRetry, when non-nil, observes each backoff: the attempt number
	// just failed (1-based), the wait before the next one, and the
	// failure. Useful for logs and for asserting exact schedules.
	OnRetry func(attempt int, wait time.Duration, err error)
	// OnFallback, when non-nil, observes degradations with the error
	// that caused them.
	OnFallback func(err error)
}

// DefaultOptions returns the retry/breaker settings described in
// DESIGN.md's failure model: 3 attempts, 50ms..2s exponential backoff
// with 10% jitter, breaker opening after 5 consecutive failures for 30s.
func DefaultOptions() Options {
	return Options{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Multiplier:  2,
		Jitter:      0.1,
		Breaker:     BreakerConfig{Threshold: 5, Cooldown: 30 * time.Second},
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = d.MaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = d.BaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = d.MaxBackoff
	}
	if o.Multiplier < 1 {
		o.Multiplier = d.Multiplier
	}
	if o.Jitter < 0 || o.Jitter >= 1 {
		o.Jitter = 0
	}
	return o
}

// Totals are the policy's cumulative counters across every solve it
// served — what a long-running rebalancing loop reports at the end.
type Totals struct {
	// Solves counts Solve calls served by the policy.
	Solves int
	// Attempts counts cloud submissions (including successful ones).
	Attempts int
	// Retries counts re-submissions after a failed attempt.
	Retries int
	// Fallbacks counts solves served by the classical fallback.
	Fallbacks int
	// BreakerSkips counts attempts skipped on an open breaker.
	BreakerSkips int
	// InvalidResponses counts corrupted replies caught by validation.
	InvalidResponses int
	// Panics counts inner-solver panics recovered by the isolation
	// layer (each also counts as a failed, retryable attempt).
	Panics int
}

// Policy holds the resilience configuration plus the state that must
// persist across solves: the circuit breaker and the cumulative
// counters. One policy is shared by every solver it wraps, so a
// rebalancing loop that builds a fresh engine per iteration still
// accumulates breaker history. Policy is safe for concurrent use.
type Policy struct {
	opt     Options
	breaker *Breaker

	mu     sync.Mutex
	totals Totals
}

// NewPolicy resolves opt over defaults and returns a fresh policy.
func NewPolicy(opt Options) *Policy {
	o := opt.withDefaults()
	return &Policy{opt: o, breaker: NewBreaker(o.Breaker)}
}

// Wrap binds the policy to an inner solver. The returned solver shares
// the policy's breaker and counters with every other solver the policy
// wrapped. The inner solver runs behind solve.Protected: a panicking
// backend is recovered into a retryable error instead of crashing the
// process.
func (p *Policy) Wrap(inner solve.Solver) solve.Solver {
	return &Solver{inner: solve.Protected(inner), p: p}
}

// Totals returns the cumulative counters across all served solves.
func (p *Policy) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals
}

// Breaker exposes the shared circuit breaker (for state reporting).
func (p *Policy) Breaker() *Breaker { return p.breaker }

// Solver wraps an inner solve.Solver with a policy. Construct with
// Policy.Wrap, or New for the single-solver case.
type Solver struct {
	inner solve.Solver
	p     *Policy
}

// New wraps inner in a fresh policy resolved from opt. As with Wrap,
// the inner solver runs behind solve.Protected.
func New(inner solve.Solver, opt Options) *Solver {
	return &Solver{inner: solve.Protected(inner), p: NewPolicy(opt)}
}

// Policy returns the solver's policy (breaker state, totals).
func (s *Solver) Policy() *Policy { return s.p }

// Name implements solve.Solver.
func (s *Solver) Name() string { return "resilient(" + s.inner.Name() + ")" }

// backoff returns the wait before retry n (1-based), jittered.
func (o Options) backoff(n int, rng *rand.Rand) time.Duration {
	d := float64(o.BaseBackoff) * math.Pow(o.Multiplier, float64(n-1))
	if d > float64(o.MaxBackoff) {
		d = float64(o.MaxBackoff)
	}
	if o.Jitter > 0 {
		d *= 1 + o.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// retryable classifies failures worth resubmitting: the injectable
// transport faults, corrupted responses, recovered solver panics
// (a crashed worker is just another flaky attempt from the caller's
// point of view), and a hybrid client that has shut down underneath a
// batching layer — a draining cloud queue is an outage the fallback
// solver must absorb, not a caller error. Anything else (malformed
// input, nil model) would fail identically on retry and on the
// fallback, so it surfaces immediately.
func retryable(err error) bool {
	return faults.Retryable(err) || errors.Is(err, ErrInvalidResponse) ||
		errors.Is(err, solve.ErrPanic) || errors.Is(err, hybrid.ErrClientClosed)
}

// validate cross-checks a response against the model it claims to
// solve via the independent verifier (internal/verify): the sample must
// cover every variable and reproduce the reported objective and
// feasibility claim. This is what catches Corrupt faults, which do not
// error. The returned error matches both ErrInvalidResponse and
// verify.ErrRejected under errors.Is and names the broken check.
func validate(m *cqm.Model, res *solve.Result) error {
	rep := verify.Sample(m, res, verify.Options{})
	if rep.Ok() {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInvalidResponse, rep.Err())
}

// Solve implements solve.Solver: it retries the inner solver per the
// policy and degrades to the fallback when the cloud path is
// unavailable. Cancelling ctx mid-retry skips the remaining attempts
// and serves the fallback (which honours the cancellation contract by
// returning its best effort immediately).
func (s *Solver) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	cfg := solve.NewConfig(opts...)
	opt := s.p.opt
	clk := cfg.Clock
	if opt.Clock != nil {
		clk = opt.Clock
	}
	start := clk.Now()

	jitterSeed := opt.Seed
	if cfg.HasSeed {
		jitterSeed = cfg.Seed
	}
	rng := rand.New(rand.NewSource(jitterSeed*1_000_003 + 17))

	var attempts, retries, skips, invalid, panics int
	var fellBack bool
	var lastErr error
	defer func() {
		s.p.mu.Lock()
		s.p.totals.Solves++
		s.p.totals.Attempts += attempts
		s.p.totals.Retries += retries
		s.p.totals.BreakerSkips += skips
		s.p.totals.InvalidResponses += invalid
		s.p.totals.Panics += panics
		if fellBack {
			s.p.totals.Fallbacks++
		}
		s.p.mu.Unlock()
	}()
	// recordBreaker mirrors an outcome into the shared breaker and, when a
	// registry is attached, publishes the resulting state as gauges and a
	// transition event — the raw material for breaker-behaviour plots.
	recordBreaker := func(success bool) {
		before := s.p.breaker.State()
		s.p.breaker.Record(success, clk.Now())
		after := s.p.breaker.State()
		if cfg.Obs != nil {
			cfg.Obs.Gauge("resilient.breaker_state").Set(float64(after))
			cfg.Obs.Gauge("resilient.breaker_trips").Set(float64(s.p.breaker.Trips()))
			if after != before {
				cfg.Obs.Counter("resilient.breaker_transitions").Inc()
				cfg.Obs.Emit("resilient.breaker", map[string]any{"from": before.String(), "to": after.String()})
			}
		}
	}
	finish := func(res *solve.Result) *solve.Result {
		res.Stats.Attempts = attempts
		res.Stats.Retries = retries
		res.Stats.BreakerSkips = skips
		res.Stats.Panics = panics
		if fellBack {
			res.Stats.Fallbacks = 1
		}
		res.Stats.Wall = clk.Since(start)
		cfg.Observe("resilient", res.Stats)
		return res
	}

	attemptOpts := opts
	if opt.AttemptBudget > 0 {
		attemptOpts = append(append([]solve.Option(nil), opts...), solve.WithBudget(opt.AttemptBudget))
	}

	for n := 1; n <= opt.MaxAttempts; n++ {
		if ctx != nil && ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		if !s.p.breaker.Allow(clk.Now()) {
			skips++
			lastErr = ErrBreakerOpen
			break
		}
		attempts++
		res, err := s.inner.Solve(ctx, m, attemptOpts...)
		if err == nil && !opt.NoValidate {
			if verr := validate(m, res); verr != nil {
				err = verr
				invalid++
			}
		}
		if err == nil {
			recordBreaker(true)
			return finish(res), nil
		}
		recordBreaker(false)
		lastErr = err
		if errors.Is(err, solve.ErrPanic) {
			panics++
		}
		if !retryable(err) {
			// Malformed input fails the same way everywhere; no retry,
			// no fallback.
			return nil, err
		}
		if n < opt.MaxAttempts {
			wait := opt.backoff(n, rng)
			retries++
			cfg.Obs.Emit("resilient.retry", map[string]any{
				"attempt": n, "wait_ms": float64(wait) / float64(time.Millisecond), "error": err.Error(),
			})
			if opt.OnRetry != nil {
				opt.OnRetry(n, wait, err)
			}
			if serr := clk.Sleep(ctx, wait); serr != nil {
				lastErr = serr
				break
			}
		}
	}

	if opt.Fallback != nil {
		cfg.Obs.Emit("resilient.fallback", map[string]any{"solver": opt.Fallback.Name(), "error": lastErr.Error()})
		if opt.OnFallback != nil {
			opt.OnFallback(lastErr)
		}
		// The fallback is the last line of defence, so it gets the same
		// panic isolation the cloud path does.
		res, err := solve.Protected(opt.Fallback).Solve(ctx, m, opts...)
		if err != nil {
			return nil, fmt.Errorf("resilient: fallback %s after %w: %w", opt.Fallback.Name(), lastErr, err)
		}
		fellBack = true
		return finish(res), nil
	}
	if errors.Is(lastErr, ErrBreakerOpen) {
		return nil, fmt.Errorf("%w after %d skipped attempts", ErrBreakerOpen, skips)
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempts, lastErr)
}

package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/faults"
	"repro/internal/solve"
)

// testModel is a two-variable unconstrained model: minimize -x0.
func testModel() *cqm.Model {
	m := cqm.New()
	x := m.AddBinary("x")
	m.AddBinary("y")
	m.AddObjectiveLinear(x, -1)
	return m
}

// goodResult builds a self-consistent optimal result for testModel.
func goodResult(m *cqm.Model) *solve.Result {
	sample := make([]bool, m.NumVars())
	sample[0] = true
	return &solve.Result{
		Sample:    sample,
		Objective: m.Objective(sample),
		Feasible:  m.Feasible(sample, 1e-9),
	}
}

// stub is a scripted solve.Solver: fn decides each call's outcome from
// the 0-based call index and the resolved per-solve config.
type stub struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, cfg solve.Config) (*solve.Result, error)
}

func (s *stub) Name() string { return "stub" }

func (s *stub) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	s.mu.Lock()
	call := s.calls
	s.calls++
	s.mu.Unlock()
	return s.fn(call, solve.NewConfig(opts...))
}

func (s *stub) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// failUntil fails the first n calls with err, then succeeds.
func failUntil(m *cqm.Model, n int, err error) *stub {
	return &stub{fn: func(call int, _ solve.Config) (*solve.Result, error) {
		if call < n {
			return nil, fmt.Errorf("attempt %d: %w", call, err)
		}
		return goodResult(m), nil
	}}
}

// alwaysGood succeeds on every call.
func alwaysGood(m *cqm.Model) *stub {
	return &stub{fn: func(int, solve.Config) (*solve.Result, error) { return goodResult(m), nil }}
}

func TestSuccessFirstAttempt(t *testing.T) {
	m := testModel()
	s := New(alwaysGood(m), Options{})
	res, err := s.Solve(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != -1 || !res.Feasible {
		t.Fatalf("result %+v", res)
	}
	st := res.Stats
	if st.Attempts != 1 || st.Retries != 0 || st.Fallbacks != 0 || st.BreakerSkips != 0 {
		t.Fatalf("stats %+v", st)
	}
	tot := s.Policy().Totals()
	if tot.Solves != 1 || tot.Attempts != 1 || tot.Retries != 0 || tot.Fallbacks != 0 {
		t.Fatalf("totals %+v", tot)
	}
}

func TestBackoffScheduleExactOnFakeClock(t *testing.T) {
	m := testModel()
	clk := solve.NewFake(time.Unix(0, 0))
	var waits []time.Duration
	s := New(failUntil(m, 3, faults.ErrTransient), Options{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0, // exact schedule
		OnRetry:     func(_ int, wait time.Duration, _ error) { waits = append(waits, wait) },
	})
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
	// The fake clock advanced by exactly the backoff total, and Wall
	// reports it.
	if got := clk.Since(time.Unix(0, 0)); got != 70*time.Millisecond {
		t.Fatalf("clock advanced %v, want 70ms", got)
	}
	if res.Stats.Wall != 70*time.Millisecond {
		t.Fatalf("Wall = %v, want 70ms", res.Stats.Wall)
	}
	if res.Stats.Attempts != 4 || res.Stats.Retries != 3 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestBackoffCappedAtMax(t *testing.T) {
	m := testModel()
	clk := solve.NewFake(time.Unix(0, 0))
	var waits []time.Duration
	s := New(failUntil(m, 3, faults.ErrThrottled), Options{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Multiplier:  2,
		OnRetry:     func(_ int, wait time.Duration, _ error) { waits = append(waits, wait) },
	})
	if _, err := s.Solve(context.Background(), m, solve.WithClock(clk)); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	m := testModel()
	run := func(seed int64) []time.Duration {
		clk := solve.NewFake(time.Unix(0, 0))
		var waits []time.Duration
		s := New(failUntil(m, 3, faults.ErrTransient), Options{
			MaxAttempts: 4,
			BaseBackoff: 10 * time.Millisecond,
			Jitter:      0.5,
			Seed:        seed,
			OnRetry:     func(_ int, wait time.Duration, _ error) { waits = append(waits, wait) },
		})
		if _, err := s.Solve(context.Background(), m, solve.WithClock(clk)); err != nil {
			t.Fatal(err)
		}
		return waits
	}
	a, b, c := run(1), run(1), run(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("seeds 1 and 2 produced identical jitter %v", a)
	}
	// Jittered waits stay within [1-J, 1+J] of the nominal value.
	for i, w := range a {
		nominal := 10 * time.Millisecond << i
		lo, hi := time.Duration(float64(nominal)*0.5), time.Duration(float64(nominal)*1.5)
		if w < lo || w > hi {
			t.Fatalf("wait %d = %v outside [%v, %v]", i, w, lo, hi)
		}
	}
}

func TestBreakerTripsSkipsAndRecovers(t *testing.T) {
	m := testModel()
	clk := solve.NewFake(time.Unix(0, 0))
	healthy := false
	inner := &stub{fn: func(int, solve.Config) (*solve.Result, error) {
		if healthy {
			return goodResult(m), nil
		}
		return nil, faults.ErrTransient
	}}
	p := NewPolicy(Options{
		MaxAttempts: 2,
		BaseBackoff: 10 * time.Millisecond,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		Fallback:    alwaysGood(m),
	})
	s := p.Wrap(inner)
	ctx := context.Background()

	// Solve 1: both attempts fail, breaker trips, fallback serves.
	res, err := s.Solve(ctx, m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallbacks != 1 || res.Stats.Attempts != 2 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if got := p.Breaker().State(); got != Open {
		t.Fatalf("breaker %v, want open", got)
	}

	// Solve 2, inside the cooldown: skipped entirely, fallback serves.
	res, err = s.Solve(ctx, m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BreakerSkips != 1 || res.Stats.Attempts != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if inner.count() != 2 {
		t.Fatalf("inner called %d times, want 2 (skip must not submit)", inner.count())
	}

	// Cooldown elapses and the service recovers: the half-open probe is
	// admitted, succeeds, and the breaker closes.
	clk.Advance(60 * time.Millisecond)
	healthy = true
	res, err = s.Solve(ctx, m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Attempts != 1 || res.Stats.Fallbacks != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if got := p.Breaker().State(); got != Closed {
		t.Fatalf("breaker %v, want closed after probe success", got)
	}
	tot := p.Totals()
	if tot.Solves != 3 || tot.Attempts != 3 || tot.Retries != 1 ||
		tot.Fallbacks != 2 || tot.BreakerSkips != 1 {
		t.Fatalf("totals %+v", tot)
	}
	if p.Breaker().Trips() != 1 {
		t.Fatalf("trips = %d", p.Breaker().Trips())
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	m := testModel()
	clk := solve.NewFake(time.Unix(0, 0))
	inner := &stub{fn: func(int, solve.Config) (*solve.Result, error) { return nil, faults.ErrTimeout }}
	p := NewPolicy(Options{
		MaxAttempts: 1,
		Breaker:     BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond},
		Fallback:    alwaysGood(m),
	})
	s := p.Wrap(inner)
	if _, err := s.Solve(context.Background(), m, solve.WithClock(clk)); err != nil {
		t.Fatal(err)
	}
	if p.Breaker().State() != Open {
		t.Fatal("breaker should open on first failure with threshold 1")
	}
	clk.Advance(60 * time.Millisecond)
	if _, err := s.Solve(context.Background(), m, solve.WithClock(clk)); err != nil {
		t.Fatal(err)
	}
	if p.Breaker().State() != Open {
		t.Fatal("failed half-open probe must reopen the breaker")
	}
	if p.Breaker().Trips() != 2 {
		t.Fatalf("trips = %d, want 2", p.Breaker().Trips())
	}
}

func TestValidationCatchesCorruptedResponse(t *testing.T) {
	m := testModel()
	lie := func() *solve.Result {
		r := goodResult(m)
		r.Objective = 42 // sample no longer matches the report
		return r
	}
	inner := &stub{fn: func(call int, _ solve.Config) (*solve.Result, error) {
		if call == 0 {
			return lie(), nil
		}
		return goodResult(m), nil
	}}
	clk := solve.NewFake(time.Unix(0, 0))
	s := New(inner, Options{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != -1 {
		t.Fatalf("served the corrupted response: %+v", res)
	}
	if res.Stats.Retries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if tot := s.Policy().Totals(); tot.InvalidResponses != 1 {
		t.Fatalf("totals %+v", tot)
	}

	// NoValidate trusts the reply as-is.
	trusting := New(&stub{fn: func(int, solve.Config) (*solve.Result, error) { return lie(), nil }},
		Options{NoValidate: true})
	res, err = trusting.Solve(context.Background(), m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 42 {
		t.Fatalf("NoValidate still validated: %+v", res)
	}
}

func TestValidationRejectsShortSample(t *testing.T) {
	m := testModel()
	inner := &stub{fn: func(int, solve.Config) (*solve.Result, error) {
		return &solve.Result{Sample: []bool{true}}, nil
	}}
	s := New(inner, Options{MaxAttempts: 1})
	_, err := s.Solve(context.Background(), m, solve.WithClock(solve.NewFake(time.Unix(0, 0))))
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, ErrInvalidResponse) {
		t.Fatalf("err = %v", err)
	}
}

func TestNonRetryableSurfacesImmediately(t *testing.T) {
	m := testModel()
	boom := errors.New("malformed model")
	inner := &stub{fn: func(int, solve.Config) (*solve.Result, error) { return nil, boom }}
	s := New(inner, Options{MaxAttempts: 3, Fallback: alwaysGood(m)})
	_, err := s.Solve(context.Background(), m)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if inner.count() != 1 {
		t.Fatalf("retried a non-retryable error %d times", inner.count())
	}
	if tot := s.Policy().Totals(); tot.Fallbacks != 0 || tot.Solves != 1 {
		t.Fatalf("totals %+v (fallback must not mask bad input)", tot)
	}
}

func TestExhaustedWithoutFallback(t *testing.T) {
	m := testModel()
	inner := &stub{fn: func(int, solve.Config) (*solve.Result, error) { return nil, faults.ErrTransient }}
	s := New(inner, Options{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	_, err := s.Solve(context.Background(), m, solve.WithClock(solve.NewFake(time.Unix(0, 0))))
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v, want the cause wrapped", err)
	}
	if inner.count() != 2 {
		t.Fatalf("attempts = %d", inner.count())
	}
}

func TestCancelledContextServesFallback(t *testing.T) {
	m := testModel()
	inner := alwaysGood(m)
	s := New(inner, Options{MaxAttempts: 3, Fallback: alwaysGood(m)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Solve(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if inner.count() != 0 {
		t.Fatal("cancelled solve still hit the cloud path")
	}
	if res.Stats.Fallbacks != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestAttemptBudgetApplied(t *testing.T) {
	m := testModel()
	var seen []time.Duration
	inner := &stub{fn: func(_ int, cfg solve.Config) (*solve.Result, error) {
		seen = append(seen, cfg.Budget)
		return goodResult(m), nil
	}}
	s := New(inner, Options{AttemptBudget: 5 * time.Millisecond})
	if _, err := s.Solve(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 5*time.Millisecond {
		t.Fatalf("budgets seen: %v", seen)
	}
}

func TestOptionsClockOverrideDrivesBackoff(t *testing.T) {
	m := testModel()
	clk := solve.NewFake(time.Unix(0, 0))
	s := New(failUntil(m, 1, faults.ErrTransient), Options{
		MaxAttempts: 2,
		BaseBackoff: 10 * time.Millisecond,
		Clock:       clk,
	})
	// No WithClock on the call: the policy's own clock must still drive
	// the backoff, leaving real time untouched.
	t0 := time.Now()
	if _, err := s.Solve(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if clk.Since(time.Unix(0, 0)) != 10*time.Millisecond {
		t.Fatalf("fake clock advanced %v", clk.Since(time.Unix(0, 0)))
	}
	if real := time.Since(t0); real > 5*time.Second {
		t.Fatalf("backoff slept on the real clock (%v)", real)
	}
}

func TestPolicySharedAcrossWrappedSolvers(t *testing.T) {
	m := testModel()
	p := NewPolicy(Options{})
	a := p.Wrap(alwaysGood(m))
	b := p.Wrap(alwaysGood(m))
	for _, s := range []solve.Solver{a, b} {
		if _, err := s.Solve(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	if tot := p.Totals(); tot.Solves != 2 || tot.Attempts != 2 {
		t.Fatalf("totals %+v, want both solvers pooled", tot)
	}
}

func TestName(t *testing.T) {
	s := New(alwaysGood(testModel()), Options{})
	if s.Name() != "resilient(stub)" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestFallbackErrorWrapsBoth(t *testing.T) {
	m := testModel()
	failing := &stub{fn: func(int, solve.Config) (*solve.Result, error) { return nil, faults.ErrThrottled }}
	brokenFallback := &stub{fn: func(int, solve.Config) (*solve.Result, error) {
		return nil, errors.New("fallback dead too")
	}}
	s := New(failing, Options{MaxAttempts: 1, Fallback: brokenFallback})
	_, err := s.Solve(context.Background(), m, solve.WithClock(solve.NewFake(time.Unix(0, 0))))
	if err == nil || !errors.Is(err, faults.ErrThrottled) {
		t.Fatalf("err = %v, want the cloud cause preserved", err)
	}
}

package lrp

import (
	"fmt"
)

// Sub-instance extraction and plan merging are the data-model half of
// hierarchical (sharded) solving: a parent instance is restricted to a
// group of processes, the group is solved as an ordinary LRP instance,
// and the group-local plan is embedded back into the parent's M×M
// migration matrix. Because every group plan conserves its own columns,
// a merge of disjoint group plans conserves the parent's columns too —
// the invariant internal/verify re-proves after every merge.

// Extract returns the sub-instance restricted to the given processes,
// in the given order: sub-process s corresponds to parent process
// procs[s]. It returns an error for an empty group, an out-of-range
// index, or a repeated index.
func (in *Instance) Extract(procs []int) (*Instance, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("lrp: cannot extract an empty process group")
	}
	m := in.NumProcs()
	seen := make(map[int]bool, len(procs))
	tasks := make([]int, len(procs))
	weight := make([]float64, len(procs))
	for s, j := range procs {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("lrp: group process %d out of range [0,%d)", j, m)
		}
		if seen[j] {
			return nil, fmt.Errorf("lrp: group repeats process %d", j)
		}
		seen[j] = true
		tasks[s] = in.Tasks[j]
		weight[s] = in.Weight[j]
	}
	return NewInstance(tasks, weight)
}

// EmbedPlan writes a group-local plan into the parent-shaped plan dst:
// sub entry (s, t) lands at parent entry (procs[s], procs[t]). The
// block owned by the group is overwritten; entries outside the block
// are untouched. It returns an error when the sub-plan's dimension does
// not match the group or an index is out of range.
func EmbedPlan(dst *Plan, procs []int, sub *Plan) error {
	if sub.NumProcs() != len(procs) {
		return fmt.Errorf("lrp: sub-plan covers %d processes, group has %d", sub.NumProcs(), len(procs))
	}
	m := dst.NumProcs()
	for _, j := range procs {
		if j < 0 || j >= m {
			return fmt.Errorf("lrp: group process %d out of range [0,%d)", j, m)
		}
	}
	for s := range sub.X {
		for t, c := range sub.X[s] {
			dst.X[procs[s]][procs[t]] = c
		}
	}
	return nil
}

// MergePlans assembles group-local plans into one parent plan: group g's
// plan occupies the block of rows/columns groups[g]. Processes not
// covered by any group retain their tasks (identity diagonal). Groups
// must be disjoint; a nil sub-plan stands for "keep this group's tasks
// home" and merges as the group's identity block. The merged plan is
// validated against the parent instance before it is returned, so a
// caller never receives a merge that lost or invented tasks.
func MergePlans(in *Instance, groups [][]int, subs []*Plan) (*Plan, error) {
	if len(groups) != len(subs) {
		return nil, fmt.Errorf("lrp: %d groups but %d sub-plans", len(groups), len(subs))
	}
	merged := NewPlan(in) // identity: uncovered processes keep their tasks
	covered := make(map[int]bool, in.NumProcs())
	for g, procs := range groups {
		for _, j := range procs {
			if covered[j] {
				return nil, fmt.Errorf("lrp: process %d appears in more than one group", j)
			}
			covered[j] = true
		}
		if subs[g] == nil {
			continue // identity block is already in place
		}
		// Clear the group's identity diagonal before embedding: the
		// sub-plan owns the whole block.
		for _, j := range procs {
			merged.X[j][j] = 0
		}
		if err := EmbedPlan(merged, procs, subs[g]); err != nil {
			return nil, fmt.Errorf("lrp: group %d: %w", g, err)
		}
	}
	if err := merged.Validate(in); err != nil {
		return nil, fmt.Errorf("lrp: merged plan invalid: %w", err)
	}
	return merged, nil
}

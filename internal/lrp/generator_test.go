package lrp

import (
	"testing"
	"testing/quick"
)

func TestGeneratorValidate(t *testing.T) {
	good := Generator{Procs: 4, TasksPerProc: 10, MinWeight: 1, MaxWeight: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Generator{
		{Procs: 0, MaxWeight: 1},
		{Procs: 2, TasksPerProc: -1, MaxWeight: 1},
		{Procs: 2, MinWeight: 5, MaxWeight: 1},
		{Procs: 2, MaxWeight: 1, Skew: 2},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad generator %d accepted", i)
		}
	}
	if _, err := (Generator{}).Generate(1); err == nil {
		t.Error("zero generator produced an instance")
	}
}

func TestGeneratorDeterministicAndBounded(t *testing.T) {
	g := Generator{Procs: 6, TasksPerProc: 20, MinWeight: 1, MaxWeight: 9, Skew: 0.3}
	a, err := g.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Weight {
		if a.Weight[j] != b.Weight[j] {
			t.Fatal("generator nondeterministic")
		}
		if a.Weight[j] < 1 || a.Weight[j] > 9 {
			t.Fatalf("weight %v outside [1,9]", a.Weight[j])
		}
	}
	if n, ok := a.Uniform(); !ok || n != 20 {
		t.Fatal("not uniform")
	}
}

func TestGeneratorProperty(t *testing.T) {
	f := func(seed int64, procsRaw, tasksRaw uint8) bool {
		g := Generator{
			Procs:        int(procsRaw%16) + 1,
			TasksPerProc: int(tasksRaw % 64),
			MinWeight:    0.5,
			MaxWeight:    4.5,
			Skew:         0.25,
		}
		in, err := g.Generate(seed)
		if err != nil {
			return false
		}
		return in.Validate() == nil && in.NumProcs() == g.Procs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWithImbalance(t *testing.T) {
	g := Generator{Procs: 8, TasksPerProc: 50, MinWeight: 1, MaxWeight: 10, Skew: 0.2}
	in, err := g.GenerateWithImbalance(7, 0.5, 3.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if imb := in.Imbalance(); imb < 0.5 || imb > 3.0 {
		t.Fatalf("imbalance %v outside window", imb)
	}
	// Impossible window fails cleanly.
	if _, err := g.GenerateWithImbalance(7, 50, 60, 5); err == nil {
		t.Fatal("impossible window satisfied")
	}
	if _, err := g.GenerateWithImbalance(7, 3, 2, 0); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestBimodalInstance(t *testing.T) {
	in, err := BimodalInstance(8, 50, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, w := range in.Weight {
		if w == 10 {
			hot++
		}
	}
	if hot != 2 {
		t.Fatalf("%d hot processes, want 2", hot)
	}
	if _, err := BimodalInstance(4, 10, 9, 1, 2); err == nil {
		t.Fatal("more hot procs than procs accepted")
	}
}

package lrp

import (
	"errors"
	"fmt"
	"strings"
)

// Plan is a migration plan for a uniform LRP instance: X[i][j] is the
// number of tasks that end up on process i having originated on process j.
// The diagonal X[j][j] counts tasks retained by their original process.
// Column j therefore always sums to the instance's Tasks[j] ("no task is
// lost", the first CQM constraint).
type Plan struct {
	X [][]int
}

// NewPlan returns the identity plan for in: every task stays where it is.
func NewPlan(in *Instance) *Plan {
	m := in.NumProcs()
	p := &Plan{X: make([][]int, m)}
	for i := range p.X {
		p.X[i] = make([]int, m)
		p.X[i][i] = in.Tasks[i]
	}
	return p
}

// ZeroPlan returns an all-zero m×m plan, useful as a builder target.
func ZeroPlan(m int) *Plan {
	p := &Plan{X: make([][]int, m)}
	for i := range p.X {
		p.X[i] = make([]int, m)
	}
	return p
}

// NumProcs returns the number of processes the plan covers.
func (p *Plan) NumProcs() int { return len(p.X) }

// Clone returns a deep copy of the plan.
func (p *Plan) Clone() *Plan {
	q := &Plan{X: make([][]int, len(p.X))}
	for i := range p.X {
		q.X[i] = append([]int(nil), p.X[i]...)
	}
	return q
}

// Move records the migration of count tasks from process j to process i.
// It does not check feasibility; use Validate against the instance.
func (p *Plan) Move(i, j, count int) {
	p.X[i][j] += count
	p.X[j][j] -= count
}

// Migrated returns the total number of migrated tasks,
// sum over i != j of X[i][j].
func (p *Plan) Migrated() int {
	total := 0
	for i := range p.X {
		for j, c := range p.X[i] {
			if i != j {
				total += c
			}
		}
	}
	return total
}

// MigratedPerProc returns, for each source process j, how many of its
// tasks were migrated away.
func (p *Plan) MigratedPerProc() []int {
	m := len(p.X)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				out[j] += p.X[i][j]
			}
		}
	}
	return out
}

// ColumnSums returns, for each source process j, the total number of its
// original tasks accounted for by the plan (retained + migrated).
func (p *Plan) ColumnSums() []int {
	m := len(p.X)
	sums := make([]int, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			sums[j] += p.X[i][j]
		}
	}
	return sums
}

// RowCounts returns, for each destination process i, the total number of
// tasks it holds after rebalancing (num_total in the Appendix-B output
// format).
func (p *Plan) RowCounts() []int {
	counts := make([]int, len(p.X))
	for i := range p.X {
		for _, c := range p.X[i] {
			counts[i] += c
		}
	}
	return counts
}

// Loads returns the post-rebalancing load vector for in:
// L'_i = sum_j Weight[j] * X[i][j].
func (p *Plan) Loads(in *Instance) []float64 {
	m := len(p.X)
	loads := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			loads[i] += in.Weight[j] * float64(p.X[i][j])
		}
	}
	return loads
}

// Validate checks that the plan is feasible for in: the matrix is square
// with the instance's dimension, all entries are non-negative, and each
// column sums to the source process's original task count.
func (p *Plan) Validate(in *Instance) error {
	m := in.NumProcs()
	if len(p.X) != m {
		return fmt.Errorf("lrp: plan has %d rows, instance has %d processes", len(p.X), m)
	}
	for i := range p.X {
		if len(p.X[i]) != m {
			return fmt.Errorf("lrp: plan row %d has %d columns, want %d", i, len(p.X[i]), m)
		}
		for j, c := range p.X[i] {
			if c < 0 {
				return fmt.Errorf("lrp: plan entry X[%d][%d] = %d is negative", i, j, c)
			}
		}
	}
	for j, sum := range p.ColumnSums() {
		if sum != in.Tasks[j] {
			return fmt.Errorf("lrp: column %d sums to %d, want %d (tasks lost or invented)", j, sum, in.Tasks[j])
		}
	}
	return nil
}

// String renders the migration matrix.
func (p *Plan) String() string {
	var b strings.Builder
	for i := range p.X {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j, c := range p.X[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", c)
		}
	}
	return b.String()
}

// Metrics summarises the quality of a plan for an instance; these are the
// columns of the paper's result tables.
type Metrics struct {
	// MaxLoad is L_max after rebalancing.
	MaxLoad float64
	// AvgLoad is L_avg (invariant under rebalancing up to rounding).
	AvgLoad float64
	// Imbalance is R_imb = (L_max - L_avg) / L_avg after rebalancing.
	Imbalance float64
	// Speedup is baseline L_max divided by post-rebalancing L_max
	// (Section V-A: "speedup calculated by the fraction of the maximum
	// load values between baseline (no rebalancing) and rebalancing").
	Speedup float64
	// Migrated is the total number of migrated tasks.
	Migrated int
	// MigratedPerProc is Migrated divided by the number of processes.
	MigratedPerProc float64
}

// Evaluate computes the paper's metrics for plan p applied to in.
func Evaluate(in *Instance, p *Plan) Metrics {
	loads := p.Loads(in)
	maxAfter := MaxLoad(loads)
	maxBefore := in.MaxLoad()
	m := Metrics{
		MaxLoad:   maxAfter,
		AvgLoad:   AvgLoad(loads),
		Imbalance: Imbalance(loads),
		Migrated:  p.Migrated(),
	}
	if maxAfter > 0 {
		m.Speedup = maxBefore / maxAfter
	}
	if n := in.NumProcs(); n > 0 {
		m.MigratedPerProc = float64(m.Migrated) / float64(n)
	}
	return m
}

// ErrInfeasible is returned by repair helpers when a proposed plan cannot
// be projected onto the feasible set.
var ErrInfeasible = errors.New("lrp: infeasible plan")

// Repair projects a possibly-invalid non-negative matrix onto the feasible
// set by fixing each column sum to the instance's task count. Excess tasks
// are removed from migrations first (largest entries first) and then from
// the diagonal; deficits are added to the diagonal (tasks stay home).
// Entries are clamped at zero. Repair never increases the number of
// migrated tasks for a column that was over-subscribed.
func (p *Plan) Repair(in *Instance) error {
	m := in.NumProcs()
	if len(p.X) != m {
		return fmt.Errorf("lrp: cannot repair plan with %d rows for %d processes", len(p.X), m)
	}
	for i := range p.X {
		if len(p.X[i]) != m {
			return fmt.Errorf("lrp: cannot repair plan row %d with %d columns", i, len(p.X[i]))
		}
		for j := range p.X[i] {
			if p.X[i][j] < 0 {
				p.X[i][j] = 0
			}
		}
	}
	for j := 0; j < m; j++ {
		sum := 0
		for i := 0; i < m; i++ {
			sum += p.X[i][j]
		}
		switch {
		case sum < in.Tasks[j]:
			// Deficit: unaccounted tasks stay on their origin.
			p.X[j][j] += in.Tasks[j] - sum
		case sum > in.Tasks[j]:
			excess := sum - in.Tasks[j]
			// Shed excess from off-diagonal entries, largest first,
			// to cancel the most speculative migrations.
			for excess > 0 {
				best, bestCount := -1, 0
				for i := 0; i < m; i++ {
					if i != j && p.X[i][j] > bestCount {
						best, bestCount = i, p.X[i][j]
					}
				}
				if best < 0 {
					break
				}
				take := excess
				if take > bestCount {
					take = bestCount
				}
				p.X[best][j] -= take
				excess -= take
			}
			if excess > 0 {
				if p.X[j][j] < excess {
					return ErrInfeasible
				}
				p.X[j][j] -= excess
			}
		}
	}
	return p.Validate(in)
}

// CapMigrations reduces the plan's migration count to at most k by
// cancelling migrations (returning tasks to their origin), cheapest-impact
// first: migrations whose cancellation least increases the resulting
// maximum load are undone first. It is a greedy projection used to enforce
// the paper's "no more than k tasks moved" constraint on decoded solver
// output.
func (p *Plan) CapMigrations(in *Instance, k int) {
	if k < 0 {
		k = 0
	}
	for p.Migrated() > k {
		m := len(p.X)
		// Undo one task from the migration whose destination currently
		// has the highest load: returning a task from the most loaded
		// destination is the least damaging single undo.
		loads := p.Loads(in)
		bestI, bestJ := -1, -1
		bestLoad := -1.0
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j && p.X[i][j] > 0 && loads[i] > bestLoad {
					bestI, bestJ, bestLoad = i, j, loads[i]
				}
			}
		}
		if bestI < 0 {
			return
		}
		over := p.Migrated() - k
		undo := p.X[bestI][bestJ]
		if undo > over {
			undo = over
		}
		p.X[bestI][bestJ] -= undo
		p.X[bestJ][bestJ] += undo
	}
}

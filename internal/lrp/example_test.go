package lrp_test

import (
	"fmt"

	"repro/internal/lrp"
)

// The Appendix-A illustration: four processes with five uniform tasks
// each; P3 holds the longest tasks and delays every BSP iteration.
func ExampleEvaluate() {
	in := lrp.MustInstance([]int{5, 5, 5, 5}, []float64{1.87, 1.97, 3.12, 2.81})
	plan := lrp.NewPlan(in)
	plan.Move(0, 2, 1) // one task from P3 (index 2) to P1 (index 0)
	m := lrp.Evaluate(in, plan)
	fmt.Printf("migrated=%d speedup=%.4f\n", m.Migrated, m.Speedup)
	// Output:
	// migrated=1 speedup=1.1103
}

func ExampleInstance_Imbalance() {
	in := lrp.MustInstance([]int{10, 10}, []float64{1, 3})
	fmt.Printf("%.2f\n", in.Imbalance())
	// Output:
	// 0.50
}

func ExamplePlan_Validate() {
	in := lrp.MustInstance([]int{2, 2}, []float64{1, 1})
	p := lrp.ZeroPlan(2) // loses all four tasks
	fmt.Println(p.Validate(in) != nil)
	// Output:
	// true
}

package lrp

import (
	"fmt"
	"math/rand"
)

// Generator produces random uniform LRP instances with controlled
// imbalance characteristics. The experiment harness uses the MxM and
// samoa workloads for the paper's cases; Generator exists for library
// users and stress tests that need arbitrary families of instances.
type Generator struct {
	// Procs is the machine size M (>= 1).
	Procs int
	// TasksPerProc is the uniform per-process task count n (>= 0).
	TasksPerProc int
	// MinWeight and MaxWeight bound the per-task weights drawn for
	// each process.
	MinWeight, MaxWeight float64
	// Skew, when > 0, raises the weight distribution's upper tail:
	// a fraction Skew of processes draw from the top decile of the
	// weight range (hot spots).
	Skew float64
}

// Validate checks the generator's parameters.
func (g Generator) Validate() error {
	if g.Procs < 1 {
		return fmt.Errorf("lrp: generator needs at least one process, got %d", g.Procs)
	}
	if g.TasksPerProc < 0 {
		return fmt.Errorf("lrp: negative tasks per process %d", g.TasksPerProc)
	}
	if g.MinWeight < 0 || g.MaxWeight < g.MinWeight {
		return fmt.Errorf("lrp: weight range [%v, %v] invalid", g.MinWeight, g.MaxWeight)
	}
	if g.Skew < 0 || g.Skew > 1 {
		return fmt.Errorf("lrp: skew %v outside [0,1]", g.Skew)
	}
	return nil
}

// Generate draws one instance. It is deterministic per seed.
func (g Generator) Generate(seed int64) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, g.Procs)
	span := g.MaxWeight - g.MinWeight
	for j := range weights {
		if g.Skew > 0 && rng.Float64() < g.Skew {
			// Hot process: top decile of the range.
			weights[j] = g.MaxWeight - span*0.1*rng.Float64()
		} else {
			weights[j] = g.MinWeight + span*rng.Float64()
		}
	}
	return UniformInstance(g.TasksPerProc, weights)
}

// GenerateWithImbalance repeatedly draws until the instance's R_imb
// falls within [minImb, maxImb], giving up after tries attempts (0 means
// 1000).
func (g Generator) GenerateWithImbalance(seed int64, minImb, maxImb float64, tries int) (*Instance, error) {
	if tries <= 0 {
		tries = 1000
	}
	if minImb > maxImb {
		return nil, fmt.Errorf("lrp: imbalance window [%v, %v] empty", minImb, maxImb)
	}
	for attempt := 0; attempt < tries; attempt++ {
		in, err := g.Generate(seed + int64(attempt)*7919)
		if err != nil {
			return nil, err
		}
		if imb := in.Imbalance(); imb >= minImb && imb <= maxImb {
			return in, nil
		}
	}
	return nil, fmt.Errorf("lrp: no instance with R_imb in [%v, %v] after %d tries", minImb, maxImb, tries)
}

// BimodalInstance builds a deterministic two-population instance: hot
// processes carry hotWeight per task, the rest coldWeight — the cleanest
// shape for studying budget/balance trade-offs analytically.
func BimodalInstance(procs, tasksPerProc, hotProcs int, coldWeight, hotWeight float64) (*Instance, error) {
	if hotProcs < 0 || hotProcs > procs {
		return nil, fmt.Errorf("lrp: %d hot processes out of %d", hotProcs, procs)
	}
	weights := make([]float64, procs)
	for j := range weights {
		if j >= procs-hotProcs {
			weights[j] = hotWeight
		} else {
			weights[j] = coldWeight
		}
	}
	return UniformInstance(tasksPerProc, weights)
}

package lrp

import (
	"strings"
	"testing"
)

func TestExtract(t *testing.T) {
	parent := MustInstance([]int{10, 10, 10, 10}, []float64{1, 2, 3, 4})
	uniformLoads := MustInstance([]int{5, 5, 5}, []float64{2, 2, 2})
	cases := []struct {
		name       string
		in         *Instance
		procs      []int
		wantErr    string
		wantTasks  []int
		wantWeight []float64
	}{
		{
			name:    "empty group",
			in:      parent,
			procs:   nil,
			wantErr: "empty process group",
		},
		{
			name:       "singleton group",
			in:         parent,
			procs:      []int{2},
			wantTasks:  []int{10},
			wantWeight: []float64{3},
		},
		{
			name:       "pair preserves order",
			in:         parent,
			procs:      []int{3, 1},
			wantTasks:  []int{10, 10},
			wantWeight: []float64{4, 2},
		},
		{
			name:       "uniform loads (PR 3 regression shape)",
			in:         uniformLoads,
			procs:      []int{0, 1, 2},
			wantTasks:  []int{5, 5, 5},
			wantWeight: []float64{2, 2, 2},
		},
		{
			name:    "out of range",
			in:      parent,
			procs:   []int{0, 4},
			wantErr: "out of range",
		},
		{
			name:    "negative index",
			in:      parent,
			procs:   []int{-1},
			wantErr: "out of range",
		},
		{
			name:    "repeated process",
			in:      parent,
			procs:   []int{1, 1},
			wantErr: "repeats process",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub, err := tc.in.Extract(tc.procs)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Extract(%v) err = %v, want substring %q", tc.procs, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Extract(%v): %v", tc.procs, err)
			}
			if len(sub.Tasks) != len(tc.wantTasks) {
				t.Fatalf("sub has %d processes, want %d", len(sub.Tasks), len(tc.wantTasks))
			}
			for s := range tc.wantTasks {
				if sub.Tasks[s] != tc.wantTasks[s] || sub.Weight[s] != tc.wantWeight[s] {
					t.Fatalf("sub process %d = (%d, %g), want (%d, %g)",
						s, sub.Tasks[s], sub.Weight[s], tc.wantTasks[s], tc.wantWeight[s])
				}
			}
			// Extraction must preserve the group's total load exactly.
			want := 0.0
			for _, j := range tc.procs {
				want += tc.in.Load(j)
			}
			if got := sub.TotalLoad(); got != want {
				t.Fatalf("sub total load %g, want %g", got, want)
			}
		})
	}
}

func TestEmbedPlanErrors(t *testing.T) {
	in := MustInstance([]int{4, 4, 4}, []float64{1, 1, 1})
	dst := NewPlan(in)
	if err := EmbedPlan(dst, []int{0, 1}, ZeroPlan(3)); err == nil {
		t.Fatal("EmbedPlan accepted a sub-plan larger than its group")
	}
	if err := EmbedPlan(dst, []int{0, 7}, ZeroPlan(2)); err == nil {
		t.Fatal("EmbedPlan accepted an out-of-range group index")
	}
}

func TestMergePlans(t *testing.T) {
	parent := MustInstance([]int{6, 6, 6, 6}, []float64{1, 5, 2, 2})

	// balanced2 moves 2 tasks from sub-process 1 to sub-process 0 in a
	// two-process group.
	balanced2 := func(in *Instance) *Plan {
		p := NewPlan(in)
		p.Move(0, 1, 2)
		return p
	}

	cases := []struct {
		name     string
		groups   [][]int
		subs     func() []*Plan
		wantErr  string
		wantMigr int
	}{
		{
			name:     "no groups is the identity",
			groups:   nil,
			subs:     func() []*Plan { return nil },
			wantMigr: 0,
		},
		{
			name:   "two disjoint pairs",
			groups: [][]int{{0, 1}, {2, 3}},
			subs: func() []*Plan {
				s0, _ := parent.Extract([]int{0, 1})
				s1, _ := parent.Extract([]int{2, 3})
				return []*Plan{balanced2(s0), balanced2(s1)}
			},
			wantMigr: 4,
		},
		{
			name:   "singleton groups merge as identity blocks",
			groups: [][]int{{0}, {1}, {2}, {3}},
			subs: func() []*Plan {
				subs := make([]*Plan, 4)
				for g := 0; g < 4; g++ {
					s, _ := parent.Extract([]int{g})
					subs[g] = NewPlan(s)
				}
				return subs
			},
			wantMigr: 0,
		},
		{
			name:   "nil sub-plan keeps the group's tasks home",
			groups: [][]int{{0, 1}, {2, 3}},
			subs: func() []*Plan {
				s0, _ := parent.Extract([]int{0, 1})
				return []*Plan{balanced2(s0), nil}
			},
			wantMigr: 2,
		},
		{
			name:   "uniform-load group (equal weights) round-trips",
			groups: [][]int{{2, 3}},
			subs: func() []*Plan {
				s, _ := parent.Extract([]int{2, 3})
				return []*Plan{balanced2(s)}
			},
			wantMigr: 2,
		},
		{
			name:   "overlapping groups rejected",
			groups: [][]int{{0, 1}, {1, 2}},
			subs: func() []*Plan {
				return []*Plan{nil, nil}
			},
			wantErr: "more than one group",
		},
		{
			name:    "group/sub count mismatch",
			groups:  [][]int{{0, 1}},
			subs:    func() []*Plan { return nil },
			wantErr: "1 groups but 0 sub-plans",
		},
		{
			name:   "conservation-breaking sub-plan rejected",
			groups: [][]int{{0, 1}},
			subs: func() []*Plan {
				s, _ := parent.Extract([]int{0, 1})
				p := NewPlan(s)
				p.X[0][0]++ // column 0 now over-subscribed
				return []*Plan{p}
			},
			wantErr: "merged plan invalid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			merged, err := MergePlans(parent, tc.groups, tc.subs())
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("MergePlans err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("MergePlans: %v", err)
			}
			if err := merged.Validate(parent); err != nil {
				t.Fatalf("merged plan invalid: %v", err)
			}
			if got := merged.Migrated(); got != tc.wantMigr {
				t.Fatalf("merged plan migrates %d tasks, want %d", got, tc.wantMigr)
			}
		})
	}
}

// TestExtractMergeRoundTrip proves the extraction/merge pair is lossless
// for plans confined to group blocks: solving each group's extraction
// and merging preserves per-process loads computed group-locally.
func TestExtractMergeRoundTrip(t *testing.T) {
	parent := MustInstance([]int{8, 8, 8, 8, 8, 8}, []float64{1, 1, 4, 4, 2, 2})
	groups := [][]int{{0, 2, 4}, {1, 3, 5}}
	subs := make([]*Plan, len(groups))
	wantLoads := make([]float64, parent.NumProcs())
	for g, procs := range groups {
		sub, err := parent.Extract(procs)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPlan(sub)
		p.Move(0, 1, 3) // arbitrary in-group migration
		subs[g] = p
		loads := p.Loads(sub)
		for s, j := range procs {
			wantLoads[j] = loads[s]
		}
	}
	merged, err := MergePlans(parent, groups, subs)
	if err != nil {
		t.Fatal(err)
	}
	got := merged.Loads(parent)
	for j := range got {
		if got[j] != wantLoads[j] {
			t.Fatalf("process %d load %g after merge, want %g (group-local)", j, got[j], wantLoads[j])
		}
	}
}

package lrp

import "testing"

func BenchmarkEvaluate(b *testing.B) {
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = float64(1 + i%9)
	}
	in, err := UniformInstance(100, weights)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlan(in)
	for j := 0; j < 32; j++ {
		p.Move(j+32, j, 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(in, p)
	}
}

func BenchmarkRepair(b *testing.B) {
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(1 + i%9)
	}
	in, err := UniformInstance(100, weights)
	if err != nil {
		b.Fatal(err)
	}
	broken := ZeroPlan(32)
	for i := range broken.X {
		for j := range broken.X[i] {
			broken.X[i][j] = (i*7 + j*3) % 12
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := broken.Clone()
		if err := p.Repair(in); err != nil {
			b.Fatal(err)
		}
	}
}

package lrp

import "fmt"

// Task is an individual task in the expanded (per-task) view of an
// instance. Classical partitioning algorithms (Greedy, KK) operate on
// individual tasks rather than on the aggregate migration matrix.
type Task struct {
	// ID is a stable identifier, unique within the expanded task list.
	ID int
	// Origin is the process the task was originally assigned to.
	Origin int
	// Load is the task's execution-time load value.
	Load float64
}

// ExpandTasks flattens a uniform instance into its individual tasks, in
// process order. Task IDs are assigned sequentially from zero.
func ExpandTasks(in *Instance) []Task {
	tasks := make([]Task, 0, in.NumTasks())
	id := 0
	for j := range in.Tasks {
		for t := 0; t < in.Tasks[j]; t++ {
			tasks = append(tasks, Task{ID: id, Origin: j, Load: in.Weight[j]})
			id++
		}
	}
	return tasks
}

// PlanFromAssignment converts a per-task assignment (assign[t] is the
// destination process of tasks[t]) into a migration-matrix plan for in.
// It returns an error when an assignment index is out of range or the
// task list does not cover the instance.
func PlanFromAssignment(in *Instance, tasks []Task, assign []int) (*Plan, error) {
	if len(tasks) != len(assign) {
		return nil, fmt.Errorf("lrp: %d tasks but %d assignments", len(tasks), len(assign))
	}
	m := in.NumProcs()
	p := ZeroPlan(m)
	for t, task := range tasks {
		dst := assign[t]
		if dst < 0 || dst >= m {
			return nil, fmt.Errorf("lrp: task %d assigned to invalid process %d", task.ID, dst)
		}
		if task.Origin < 0 || task.Origin >= m {
			return nil, fmt.Errorf("lrp: task %d has invalid origin %d", task.ID, task.Origin)
		}
		p.X[dst][task.Origin]++
	}
	if err := p.Validate(in); err != nil {
		return nil, err
	}
	return p, nil
}

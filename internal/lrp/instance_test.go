package lrp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name   string
		tasks  []int
		weight []float64
		ok     bool
	}{
		{"valid", []int{5, 5}, []float64{1, 2}, true},
		{"empty", nil, nil, false},
		{"mismatch", []int{5}, []float64{1, 2}, false},
		{"negative tasks", []int{-1, 5}, []float64{1, 2}, false},
		{"negative weight", []int{1, 5}, []float64{-1, 2}, false},
		{"nan weight", []int{1, 5}, []float64{math.NaN(), 2}, false},
		{"inf weight", []int{1, 5}, []float64{math.Inf(1), 2}, false},
		{"zero weight ok", []int{1, 5}, []float64{0, 2}, true},
		{"zero tasks ok", []int{0, 5}, []float64{1, 2}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInstance(c.tasks, c.weight)
			if (err == nil) != c.ok {
				t.Fatalf("NewInstance(%v,%v) err=%v, want ok=%v", c.tasks, c.weight, err, c.ok)
			}
		})
	}
}

func TestMustInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstance on invalid input did not panic")
		}
	}()
	MustInstance([]int{1}, []float64{1, 2})
}

func TestInstanceBasicMetrics(t *testing.T) {
	// The Appendix-A example: 4 processes, 5 tasks each, weights
	// 1.87, 1.97, 3.12, 2.81 -> loads 9.35, 9.85, 15.6, 14.05.
	in := MustInstance([]int{5, 5, 5, 5}, []float64{1.87, 1.97, 3.12, 2.81})
	if got := in.NumProcs(); got != 4 {
		t.Fatalf("NumProcs = %d, want 4", got)
	}
	if got := in.NumTasks(); got != 20 {
		t.Fatalf("NumTasks = %d, want 20", got)
	}
	if n, ok := in.Uniform(); !ok || n != 5 {
		t.Fatalf("Uniform = (%d,%v), want (5,true)", n, ok)
	}
	wantLoads := []float64{9.35, 9.85, 15.6, 14.05}
	for j, want := range wantLoads {
		if got := in.Load(j); !almostEqual(got, want) {
			t.Errorf("Load(%d) = %v, want %v", j, got, want)
		}
	}
	if got := in.MaxLoad(); !almostEqual(got, 15.6) {
		t.Errorf("MaxLoad = %v, want 15.6", got)
	}
	wantAvg := (9.35 + 9.85 + 15.6 + 14.05) / 4
	if got := in.AvgLoad(); !almostEqual(got, wantAvg) {
		t.Errorf("AvgLoad = %v, want %v", got, wantAvg)
	}
	wantImb := (15.6 - wantAvg) / wantAvg
	if got := in.Imbalance(); !almostEqual(got, wantImb) {
		t.Errorf("Imbalance = %v, want %v", got, wantImb)
	}
}

func TestUniformInstance(t *testing.T) {
	in, err := UniformInstance(50, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.NumTasks(); got != 150 {
		t.Fatalf("NumTasks = %d, want 150", got)
	}
	if n, ok := in.Uniform(); !ok || n != 50 {
		t.Fatalf("Uniform = (%d,%v), want (50,true)", n, ok)
	}
}

func TestNonUniformDetected(t *testing.T) {
	in := MustInstance([]int{5, 6}, []float64{1, 1})
	if _, ok := in.Uniform(); ok {
		t.Fatal("Uniform reported true for non-uniform instance")
	}
}

func TestCloneIndependence(t *testing.T) {
	in := MustInstance([]int{5, 5}, []float64{1, 2})
	cp := in.Clone()
	cp.Tasks[0] = 99
	cp.Weight[1] = 99
	if in.Tasks[0] == 99 || in.Weight[1] == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestImbalanceZeroCases(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Errorf("Imbalance(nil) = %v, want 0", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Errorf("Imbalance(zeros) = %v, want 0", got)
	}
	if got := Imbalance([]float64{3, 3, 3}); !almostEqual(got, 0) {
		t.Errorf("Imbalance(balanced) = %v, want 0", got)
	}
}

func TestImbalanceProperties(t *testing.T) {
	// R_imb is scale-invariant and non-negative.
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		s := 1 + float64(scale)
		for i, r := range raw {
			loads[i] = float64(r)
			scaled[i] = float64(r) * s
		}
		r1, r2 := Imbalance(loads), Imbalance(scaled)
		if r1 < 0 {
			return false
		}
		return almostEqual(r1, r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceString(t *testing.T) {
	in := MustInstance([]int{2, 2}, []float64{1, 3})
	s := in.String()
	for _, want := range []string{"M=2", "N=4", "Rimb="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestValidateRoundTrip(t *testing.T) {
	in := MustInstance([]int{3, 4}, []float64{1, 2})
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate on good instance: %v", err)
	}
	in.Tasks[0] = -1
	if err := in.Validate(); err == nil {
		t.Fatal("Validate accepted negative task count")
	}
}

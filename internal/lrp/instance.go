// Package lrp defines the Load Rebalancing Problem (LRP) data model used
// throughout this repository: problem instances, migration plans, and the
// metrics the paper evaluates (maximum load, imbalance ratio, speedup, and
// migration counts).
//
// The model follows Section II of the paper: N tasks in a task-based
// parallel application are assigned to M processes. In the uniform model
// each process P_j initially holds n_j tasks of identical load w_j; the
// total load of a process is L_j = n_j * w_j. Rebalancing produces a
// migration plan X where X[i][j] counts tasks moved to process i from
// process j (the diagonal counts retained tasks).
package lrp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Instance is a uniform-load LRP instance: every task originally assigned
// to process j has load Weight[j], and process j holds Tasks[j] of them.
// This is exactly the input model of the paper's CQM formulations
// (Section IV) and of the Appendix-B CSV format.
type Instance struct {
	// Tasks[j] is the number of tasks originally assigned to process j.
	Tasks []int
	// Weight[j] is the (uniform) load of one task on process j, in
	// arbitrary load units (the paper uses milliseconds of execution
	// time).
	Weight []float64
}

// NewInstance builds a uniform instance from per-process task counts and
// per-task weights. It returns an error if the slices disagree in length,
// are empty, or contain negative values.
func NewInstance(tasks []int, weight []float64) (*Instance, error) {
	if len(tasks) == 0 {
		return nil, errors.New("lrp: instance must have at least one process")
	}
	if len(tasks) != len(weight) {
		return nil, fmt.Errorf("lrp: %d task counts but %d weights", len(tasks), len(weight))
	}
	for j, n := range tasks {
		if n < 0 {
			return nil, fmt.Errorf("lrp: process %d has negative task count %d", j, n)
		}
		if weight[j] < 0 || math.IsNaN(weight[j]) || math.IsInf(weight[j], 0) {
			return nil, fmt.Errorf("lrp: process %d has invalid weight %v", j, weight[j])
		}
	}
	in := &Instance{
		Tasks:  append([]int(nil), tasks...),
		Weight: append([]float64(nil), weight...),
	}
	return in, nil
}

// MustInstance is NewInstance that panics on error; intended for tests and
// examples with literal inputs.
func MustInstance(tasks []int, weight []float64) *Instance {
	in, err := NewInstance(tasks, weight)
	if err != nil {
		panic(err)
	}
	return in
}

// UniformInstance builds an instance where every process holds n tasks and
// process j's per-task weight is weight[j]. This matches the paper's
// experimental setup ("each process is assigned an equal amount of n
// tasks").
func UniformInstance(n int, weight []float64) (*Instance, error) {
	tasks := make([]int, len(weight))
	for j := range tasks {
		tasks[j] = n
	}
	return NewInstance(tasks, weight)
}

// NumProcs returns M, the number of processes.
func (in *Instance) NumProcs() int { return len(in.Tasks) }

// NumTasks returns N, the total number of tasks across all processes.
func (in *Instance) NumTasks() int {
	total := 0
	for _, n := range in.Tasks {
		total += n
	}
	return total
}

// Uniform reports whether every process holds the same number of tasks,
// and returns that count when true. The CQM formulations of Section IV
// assume a uniform instance.
func (in *Instance) Uniform() (n int, ok bool) {
	if len(in.Tasks) == 0 {
		return 0, false
	}
	n = in.Tasks[0]
	for _, c := range in.Tasks[1:] {
		if c != n {
			return 0, false
		}
	}
	return n, true
}

// Load returns the initial total load L_j of process j.
func (in *Instance) Load(j int) float64 {
	return float64(in.Tasks[j]) * in.Weight[j]
}

// Loads returns the initial per-process load vector.
func (in *Instance) Loads() []float64 {
	loads := make([]float64, len(in.Tasks))
	for j := range loads {
		loads[j] = in.Load(j)
	}
	return loads
}

// TotalLoad returns the sum of all process loads.
func (in *Instance) TotalLoad() float64 {
	total := 0.0
	for j := range in.Tasks {
		total += in.Load(j)
	}
	return total
}

// MaxLoad returns L_max, the largest initial process load.
func (in *Instance) MaxLoad() float64 { return MaxLoad(in.Loads()) }

// AvgLoad returns L_avg, the mean initial process load.
func (in *Instance) AvgLoad() float64 { return in.TotalLoad() / float64(len(in.Tasks)) }

// Imbalance returns the initial imbalance ratio
// R_imb = (L_max - L_avg) / L_avg (Menon & Kalé).
func (in *Instance) Imbalance() float64 { return Imbalance(in.Loads()) }

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{
		Tasks:  append([]int(nil), in.Tasks...),
		Weight: append([]float64(nil), in.Weight...),
	}
}

// Validate checks internal consistency; it mirrors NewInstance for
// instances built by hand.
func (in *Instance) Validate() error {
	_, err := NewInstance(in.Tasks, in.Weight)
	return err
}

// String renders a short human-readable summary.
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LRP{M=%d N=%d Rimb=%.4f loads=[", in.NumProcs(), in.NumTasks(), in.Imbalance())
	for j := range in.Tasks {
		if j > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", in.Load(j))
	}
	b.WriteString("]}")
	return b.String()
}

// MaxLoad returns the maximum of a load vector, or 0 for an empty vector.
func MaxLoad(loads []float64) float64 {
	max := 0.0
	for i, l := range loads {
		if i == 0 || l > max {
			max = l
		}
	}
	return max
}

// AvgLoad returns the mean of a load vector, or 0 for an empty vector.
func AvgLoad(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	return total / float64(len(loads))
}

// Imbalance returns R_imb = (L_max - L_avg) / L_avg for a load vector.
// It returns 0 when the average load is zero (an empty machine is
// trivially balanced).
func Imbalance(loads []float64) float64 {
	avg := AvgLoad(loads)
	if avg == 0 {
		return 0
	}
	return (MaxLoad(loads) - avg) / avg
}

package lrp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityPlan(t *testing.T) {
	in := MustInstance([]int{5, 5, 5, 5}, []float64{1.87, 1.97, 3.12, 2.81})
	p := NewPlan(in)
	if err := p.Validate(in); err != nil {
		t.Fatalf("identity plan invalid: %v", err)
	}
	if got := p.Migrated(); got != 0 {
		t.Fatalf("identity plan migrated %d tasks, want 0", got)
	}
	m := Evaluate(in, p)
	if !almostEqual(m.Speedup, 1) {
		t.Errorf("identity speedup = %v, want 1", m.Speedup)
	}
	if !almostEqual(m.MaxLoad, in.MaxLoad()) {
		t.Errorf("identity MaxLoad = %v, want %v", m.MaxLoad, in.MaxLoad())
	}
	if !almostEqual(m.Imbalance, in.Imbalance()) {
		t.Errorf("identity Imbalance = %v, want %v", m.Imbalance, in.Imbalance())
	}
}

func TestMoveAndMetrics(t *testing.T) {
	// Two processes, 4 tasks each, weights 1 and 3. Loads 4 and 12.
	in := MustInstance([]int{4, 4}, []float64{1, 3})
	p := NewPlan(in)
	// Move one heavy task from P1 to P0: loads become 4+3=7 and 9.
	p.Move(0, 1, 1)
	if err := p.Validate(in); err != nil {
		t.Fatalf("plan invalid after Move: %v", err)
	}
	m := Evaluate(in, p)
	if m.Migrated != 1 {
		t.Errorf("Migrated = %d, want 1", m.Migrated)
	}
	loads := p.Loads(in)
	if !almostEqual(loads[0], 7) || !almostEqual(loads[1], 9) {
		t.Errorf("loads = %v, want [7 9]", loads)
	}
	if !almostEqual(m.Speedup, 12.0/9.0) {
		t.Errorf("Speedup = %v, want %v", m.Speedup, 12.0/9.0)
	}
	if !almostEqual(m.MigratedPerProc, 0.5) {
		t.Errorf("MigratedPerProc = %v, want 0.5", m.MigratedPerProc)
	}
}

func TestValidateCatchesColumnLoss(t *testing.T) {
	in := MustInstance([]int{4, 4}, []float64{1, 3})
	p := NewPlan(in)
	p.X[0][0]-- // lose a task
	if err := p.Validate(in); err == nil {
		t.Fatal("Validate accepted a plan that loses a task")
	}
	p = NewPlan(in)
	p.X[1][0]++ // invent a task
	if err := p.Validate(in); err == nil {
		t.Fatal("Validate accepted a plan that invents a task")
	}
	p = NewPlan(in)
	p.X[0][1] = -1
	if err := p.Validate(in); err == nil {
		t.Fatal("Validate accepted a negative entry")
	}
	wrong := ZeroPlan(3)
	if err := wrong.Validate(in); err == nil {
		t.Fatal("Validate accepted a plan of the wrong dimension")
	}
}

func TestColumnAndRowHelpers(t *testing.T) {
	in := MustInstance([]int{3, 5}, []float64{1, 1})
	p := NewPlan(in)
	p.Move(0, 1, 2)
	cols := p.ColumnSums()
	if cols[0] != 3 || cols[1] != 5 {
		t.Errorf("ColumnSums = %v, want [3 5]", cols)
	}
	rows := p.RowCounts()
	if rows[0] != 5 || rows[1] != 3 {
		t.Errorf("RowCounts = %v, want [5 3]", rows)
	}
	per := p.MigratedPerProc()
	if per[0] != 0 || per[1] != 2 {
		t.Errorf("MigratedPerProc = %v, want [0 2]", per)
	}
}

func TestRepairDeficitAndExcess(t *testing.T) {
	in := MustInstance([]int{10, 10, 10}, []float64{1, 2, 3})
	// Deficit: a plan that dropped 4 tasks from column 0.
	p := ZeroPlan(3)
	p.X[0][0] = 6
	p.X[1][1] = 10
	p.X[2][2] = 10
	if err := p.Repair(in); err != nil {
		t.Fatalf("Repair(deficit): %v", err)
	}
	if p.X[0][0] != 10 {
		t.Errorf("deficit repair put X[0][0]=%d, want 10", p.X[0][0])
	}

	// Excess: column 1 over-subscribed by 5 via migrations.
	p = NewPlan(in)
	p.X[0][1] = 3
	p.X[2][1] = 2 // column 1 now sums to 15
	if err := p.Repair(in); err != nil {
		t.Fatalf("Repair(excess): %v", err)
	}
	if err := p.Validate(in); err != nil {
		t.Fatalf("plan invalid after excess repair: %v", err)
	}

	// Negative entries are clamped before repair.
	p = NewPlan(in)
	p.X[0][1] = -7
	if err := p.Repair(in); err != nil {
		t.Fatalf("Repair(negative): %v", err)
	}
	if err := p.Validate(in); err != nil {
		t.Fatalf("plan invalid after negative repair: %v", err)
	}
}

func TestRepairProperty(t *testing.T) {
	// Any non-negative random matrix repairs to a valid plan.
	in := MustInstance([]int{7, 13, 5, 20}, []float64{1, 2, 3, 4})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ZeroPlan(4)
		for i := range p.X {
			for j := range p.X[i] {
				p.X[i][j] = rng.Intn(25) - 3 // includes negatives
			}
		}
		if err := p.Repair(in); err != nil {
			return false
		}
		return p.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapMigrations(t *testing.T) {
	in := MustInstance([]int{10, 10}, []float64{1, 5})
	p := NewPlan(in)
	p.Move(0, 1, 4) // 4 migrations
	p.CapMigrations(in, 2)
	if got := p.Migrated(); got != 2 {
		t.Fatalf("CapMigrations left %d migrations, want 2", got)
	}
	if err := p.Validate(in); err != nil {
		t.Fatalf("plan invalid after cap: %v", err)
	}
	// Capping below zero clamps to zero migrations.
	p.CapMigrations(in, -5)
	if got := p.Migrated(); got != 0 {
		t.Fatalf("CapMigrations(-5) left %d migrations, want 0", got)
	}
}

func TestCapMigrationsProperty(t *testing.T) {
	in := MustInstance([]int{8, 8, 8}, []float64{1, 2, 3})
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPlan(in)
		// Random feasible migrations.
		for j := 0; j < 3; j++ {
			avail := in.Tasks[j]
			for i := 0; i < 3; i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		k := int(kRaw % 30)
		p.CapMigrations(in, k)
		return p.Migrated() <= k && p.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCloneAndString(t *testing.T) {
	in := MustInstance([]int{2, 2}, []float64{1, 1})
	p := NewPlan(in)
	q := p.Clone()
	q.Move(0, 1, 1)
	if p.Migrated() != 0 {
		t.Fatal("Clone shares storage")
	}
	if s := p.String(); s != "2 0\n0 2" {
		t.Errorf("String() = %q", s)
	}
}

func TestExpandTasksAndAssignment(t *testing.T) {
	in := MustInstance([]int{2, 3}, []float64{1.5, 2.5})
	tasks := ExpandTasks(in)
	if len(tasks) != 5 {
		t.Fatalf("ExpandTasks returned %d tasks, want 5", len(tasks))
	}
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
	}
	if tasks[0].Origin != 0 || tasks[4].Origin != 1 {
		t.Errorf("unexpected origins: %+v", tasks)
	}
	if !almostEqual(tasks[2].Load, 2.5) {
		t.Errorf("task 2 load = %v, want 2.5", tasks[2].Load)
	}

	// Assignment that swaps everything to the other process.
	assign := []int{1, 1, 0, 0, 0}
	p, err := PlanFromAssignment(in, tasks, assign)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Migrated(); got != 5 {
		t.Errorf("Migrated = %d, want 5", got)
	}

	// Invalid destination.
	if _, err := PlanFromAssignment(in, tasks, []int{0, 0, 0, 0, 9}); err == nil {
		t.Fatal("PlanFromAssignment accepted out-of-range destination")
	}
	// Length mismatch.
	if _, err := PlanFromAssignment(in, tasks, []int{0}); err == nil {
		t.Fatal("PlanFromAssignment accepted mismatched lengths")
	}
}

func TestPlanFromAssignmentProperty(t *testing.T) {
	in := MustInstance([]int{4, 4, 4}, []float64{1, 2, 3})
	tasks := ExpandTasks(in)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assign := make([]int, len(tasks))
		for i := range assign {
			assign[i] = rng.Intn(3)
		}
		p, err := PlanFromAssignment(in, tasks, assign)
		if err != nil {
			return false
		}
		// Migration count equals the number of tasks whose destination
		// differs from origin.
		want := 0
		for i, task := range tasks {
			if assign[i] != task.Origin {
				want++
			}
		}
		return p.Migrated() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

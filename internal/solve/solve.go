// Package solve is the common engine layer shared by every solver
// backend in this repository (sa, tabu, exact, quantum, hybrid). It
// defines the Solver interface a request-serving layer can multiplex —
// context-aware, deadline-respecting, clock-injectable — plus the shared
// Result/Stats shape and a Progress hook for metrics and tracing.
//
// Design rules every backend follows:
//
//   - Solve never blocks past cancellation: ctx cancellation and
//     clock-based deadlines are polled at natural loop boundaries
//     (sweeps, tabu iterations, branch-and-bound node expansions, QAOA
//     optimizer steps, portfolio branches).
//   - Cancellation is not an error: an interrupted solve returns the
//     best partial result found so far with Stats.Interrupted = true,
//     never an invalid sample. Errors are reserved for malformed input.
//   - Time is injected: backends read the Clock from the config instead
//     of calling time.Now directly, so timing-sensitive behaviour (stats,
//     deadlines) is fully deterministic under the fake clock in tests.
package solve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cqm"
	"repro/internal/obs"
)

// Solver is the common interface of every solver backend. Solve runs
// until completion, ctx cancellation, or the configured deadline/budget,
// whichever comes first, and returns the best assignment found.
//
// Implementations must honour the cancellation contract: an interrupted
// solve still returns its best partial result (Stats.Interrupted = true)
// rather than an error, and the returned sample is always a complete
// assignment over the model's variables (feasibility is reported, not
// guaranteed).
type Solver interface {
	// Name labels the backend in logs and result tables.
	Name() string
	// Solve runs the backend on m under the given options.
	Solve(ctx context.Context, m *cqm.Model, opts ...Option) (*Result, error)
}

// Result is the shared outcome shape of every backend.
type Result struct {
	// Sample is the best assignment found (feasible when Feasible).
	Sample []bool
	// Objective is the model objective of Sample.
	Objective float64
	// Feasible reports whether Sample satisfies every constraint.
	Feasible bool
	// Stats describes the work performed.
	Stats Stats
}

// Stats describes the work a solve performed. It is a union shape: each
// backend fills the counters that apply to it and leaves the rest zero.
type Stats struct {
	// Wall is the solver time measured on the injected Clock.
	Wall time.Duration
	// SimulatedCPU is Wall plus the simulated cloud overhead (hybrid
	// backend; the paper's "CPU" runtime column).
	SimulatedCPU time.Duration
	// SimulatedQPU is the simulated quantum-processor access time
	// (hybrid backend; the paper's "QPU" column).
	SimulatedQPU time.Duration
	// Reads is the number of portfolio branches / restarts executed.
	Reads int
	// FeasibleReads counts branches whose best sample was feasible.
	FeasibleReads int
	// PresolveFixed counts variables fixed by classical presolve.
	PresolveFixed int
	// Sweeps counts annealing sweeps (or tabu iterations) performed.
	Sweeps int
	// Flips counts proposed moves across branches.
	Flips int64
	// Accepted counts accepted moves.
	Accepted int64
	// Nodes counts branch-and-bound nodes (exact backend).
	Nodes int64
	// BoundPrunes counts subtrees cut by the objective bound (exact
	// backend).
	BoundPrunes int64
	// InfeasiblePrunes counts subtrees cut by constraint propagation
	// (exact backend).
	InfeasiblePrunes int64
	// PenaltyRescales counts constraint-penalty growth events (sa-based
	// backends).
	PenaltyRescales int
	// TemperingSwaps counts accepted replica exchanges (parallel
	// tempering in the hybrid backend).
	TemperingSwaps int64
	// Evals counts objective/circuit evaluations (quantum backend).
	Evals int
	// Attempts counts cloud solve attempts made by the resilient
	// wrapper (internal/resilient), including the successful one.
	Attempts int
	// Retries counts re-submissions after a failed attempt (Attempts-1
	// when the solve eventually succeeded on the cloud path).
	Retries int
	// Fallbacks is 1 when the result was served by the classical
	// fallback solver after the cloud path was exhausted or the circuit
	// breaker was open.
	Fallbacks int
	// BreakerSkips counts attempts skipped because the circuit breaker
	// was open.
	BreakerSkips int
	// Panics counts solver panics recovered by the isolation layer
	// (Protected / the hedge and resilient wrappers).
	Panics int
	// Hedged counts hedge backends launched beyond the primary
	// (internal/hedge).
	Hedged int
	// HedgeRejects counts hedge-race candidates discarded because they
	// failed independent verification (internal/hedge).
	HedgeRejects int
	// Interrupted reports that the solve stopped early on cancellation,
	// deadline, or budget exhaustion; the result is the best found so
	// far.
	Interrupted bool
	// Proven reports that the result was proven optimal (exact backend
	// completing its search).
	Proven bool
}

// Event is one progress notification. Backends emit events at their
// natural cadence (per sweep, per restart, per node batch); the hook is
// the attachment point for metrics, tracing, and cooperative pacing in
// tests (a fake clock can be advanced from the hook).
type Event struct {
	// Restart is the portfolio branch / restart index (0-based).
	Restart int
	// Sweep is the sweep or iteration count within the restart.
	Sweep int
	// Nodes is the explored node count (exact backend).
	Nodes int64
	// BestObjective is the best objective seen so far in this branch.
	BestObjective float64
	// Feasible reports whether that best assignment is feasible.
	Feasible bool
}

// Progress receives solve events. Hooks must be fast and are called
// from solver goroutines; engines serialize invocations, so a hook
// never runs concurrently with itself.
type Progress func(Event)

// Config is the resolved generic solver configuration. Backend-specific
// knobs (penalties, schedules, circuit depth, ...) live on the backend
// engines; Config carries only what the engine layer owns.
type Config struct {
	// Seed drives the run's RNGs; meaningful only when HasSeed is set
	// (0 is a valid seed).
	Seed    int64
	HasSeed bool
	// Reads overrides the backend's portfolio width when > 0.
	Reads int
	// Sweeps overrides the backend's per-read budget when > 0.
	Sweeps int
	// Workers caps solver concurrency when > 0.
	Workers int
	// Budget bounds solver time relative to the clock's now (0 = none).
	Budget time.Duration
	// Deadline bounds solver time absolutely (zero = none).
	Deadline time.Time
	// Clock is the time source (never nil after NewConfig).
	Clock Clock
	// Progress, when non-nil, receives solve events.
	Progress Progress
	// Obs, when non-nil, is the metrics registry every backend emits
	// into (see Observe); nil disables observability at zero cost.
	Obs *obs.Registry
}

// Option mutates a Config; see the With* constructors.
type Option func(*Config)

// NewConfig resolves opts over defaults (real clock, no deadline).
func NewConfig(opts ...Option) Config {
	cfg := Config{Clock: Real()}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = Real()
	}
	return cfg
}

// WithSeed fixes the run's random seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed, c.HasSeed = seed, true }
}

// WithReads sets the portfolio width (restarts / replicas / shots scale,
// backend-dependent).
func WithReads(n int) Option { return func(c *Config) { c.Reads = n } }

// WithSweeps sets the per-read sweep or iteration budget.
func WithSweeps(n int) Option { return func(c *Config) { c.Sweeps = n } }

// WithWorkers caps solver concurrency.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithBudget bounds solver time relative to the clock's now.
func WithBudget(d time.Duration) Option { return func(c *Config) { c.Budget = d } }

// WithDeadline bounds solver time absolutely (measured on the Clock).
func WithDeadline(t time.Time) Option { return func(c *Config) { c.Deadline = t } }

// WithClock injects the time source (use NewFake in tests).
func WithClock(cl Clock) Option { return func(c *Config) { c.Clock = cl } }

// WithProgress attaches a progress hook.
func WithProgress(p Progress) Option { return func(c *Config) { c.Progress = p } }

// WithObs attaches the metrics registry the solve reports into.
func WithObs(r *obs.Registry) Option { return func(c *Config) { c.Obs = r } }

// Observe records a completed solve's stats into the config's obs
// registry under "solver.<name>.*": one counter per non-zero work
// counter, a wall-time histogram, and an acceptance-rate gauge. Every
// backend calls it once per Solve; with a nil registry it is free.
func (cfg Config) Observe(name string, st Stats) {
	r := cfg.Obs
	if r == nil {
		return
	}
	p := "solver." + name + "."
	r.Counter(p + "solves").Inc()
	add := func(metric string, v int64) {
		if v != 0 {
			r.Counter(p + metric).Add(v)
		}
	}
	add("reads", int64(st.Reads))
	add("feasible_reads", int64(st.FeasibleReads))
	add("presolve_fixed", int64(st.PresolveFixed))
	add("sweeps", int64(st.Sweeps))
	add("flips", st.Flips)
	add("accepted", st.Accepted)
	add("nodes", st.Nodes)
	add("bound_prunes", st.BoundPrunes)
	add("infeasible_prunes", st.InfeasiblePrunes)
	add("penalty_rescales", int64(st.PenaltyRescales))
	add("tempering_swaps", st.TemperingSwaps)
	add("evals", int64(st.Evals))
	add("attempts", int64(st.Attempts))
	add("retries", int64(st.Retries))
	add("fallbacks", int64(st.Fallbacks))
	add("breaker_skips", int64(st.BreakerSkips))
	add("panics", int64(st.Panics))
	add("hedged", int64(st.Hedged))
	add("hedge_rejects", int64(st.HedgeRejects))
	if st.Interrupted {
		r.Counter(p + "interrupted").Inc()
	}
	if st.Proven {
		r.Counter(p + "proven").Inc()
	}
	r.Histogram(p + "wall_ms").Observe(float64(st.Wall) / float64(time.Millisecond))
	if st.Flips > 0 {
		r.Gauge(p + "acceptance_rate").Set(float64(st.Accepted) / float64(st.Flips))
	}
}

// Stop coalesces context cancellation and the clock-based
// deadline/budget into one polled predicate. It is safe for concurrent
// use by portfolio goroutines, and latches: once stopped, always
// stopped.
type Stop struct {
	done     <-chan struct{}
	clock    Clock
	deadline time.Time
	tripped  atomic.Bool
}

// NewStop derives the solve's stop condition from ctx and the config's
// deadline/budget. A nil receiver is valid and never stops.
func (cfg Config) NewStop(ctx context.Context) *Stop {
	s := &Stop{clock: cfg.Clock}
	if ctx != nil {
		s.done = ctx.Done()
	}
	s.deadline = cfg.Deadline
	if cfg.Budget > 0 {
		b := cfg.Clock.Now().Add(cfg.Budget)
		if s.deadline.IsZero() || b.Before(s.deadline) {
			s.deadline = b
		}
	}
	return s
}

// Stopped reports whether the solve should wind down now. Backends poll
// it at loop boundaries.
func (s *Stop) Stopped() bool {
	if s == nil {
		return false
	}
	if s.tripped.Load() {
		return true
	}
	select {
	case <-s.done:
		s.tripped.Store(true)
		return true
	default:
	}
	if !s.deadline.IsZero() && !s.clock.Now().Before(s.deadline) {
		s.tripped.Store(true)
		return true
	}
	return false
}

// Interrupted reports whether the stop ever tripped — the value engines
// put into Stats.Interrupted.
func (s *Stop) Interrupted() bool { return s != nil && s.tripped.Load() }

// Func returns the predicate in the shape backend option structs carry
// (nil for a nil Stop, so "no stop" costs nothing in hot loops).
func (s *Stop) Func() func() bool {
	if s == nil {
		return nil
	}
	return s.Stopped
}

// SerialProgress wraps a Progress hook with a mutex so concurrent
// portfolio branches can share it, per the Progress contract. A nil hook
// yields nil.
func SerialProgress(p Progress) Progress {
	if p == nil {
		return nil
	}
	var mu sync.Mutex
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		p(e)
	}
}

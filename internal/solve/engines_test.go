package solve_test

// Cross-backend conformance tests: every solver backend in the
// repository must implement solve.Solver and honour the engine layer's
// cancellation contract — cancellation and clock deadlines stop the
// solve at the next loop boundary, the best partial result comes back
// with Stats.Interrupted set (never an error, never an incomplete
// sample), and the Feasible flag always matches the model's own
// feasibility check of the returned sample.

import (
	"context"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/exact"
	"repro/internal/hybrid"
	"repro/internal/quantum"
	"repro/internal/sa"
	"repro/internal/solve"
	"repro/internal/tabu"
)

// Compile-time checks: all five backends implement solve.Solver.
var (
	_ solve.Solver = (*sa.Engine)(nil)
	_ solve.Solver = (*tabu.Engine)(nil)
	_ solve.Solver = (*exact.Engine)(nil)
	_ solve.Solver = (*hybrid.Engine)(nil)
	_ solve.Solver = (*quantum.Engine)(nil)
)

// knapsack builds the usual small constrained model: minimize negative
// value under a cardinality cap. Optimum for ([9 7 5 4 3 2 1], 3) = -21.
func knapsack(values []float64, cap int) *cqm.Model {
	m := cqm.New()
	var sum cqm.LinExpr
	for _, v := range values {
		id := m.AddBinary("x")
		m.AddObjectiveLinear(id, -v)
		sum.Add(id, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, float64(cap))
	return m
}

// hardPartition builds an unconstrained n-variable number-partition
// model with no perfect split, so branch-and-bound explores far more
// than one stop-poll interval of nodes (~931k at n=20).
func hardPartition(n int) *cqm.Model {
	m := cqm.New()
	var expr cqm.LinExpr
	total := 0.0
	for i := 0; i < n; i++ {
		v := m.AddBinary("w")
		w := float64(i*i%97 + 1)
		expr.Add(v, w)
		total += w
	}
	expr.Offset = -total/2 - 0.3
	m.AddObjectiveSquared(expr)
	return m
}

// checkResult asserts the invariants every backend result must satisfy.
func checkResult(t *testing.T, name string, m *cqm.Model, res *solve.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: unexpected error: %v", name, err)
	}
	if res == nil {
		t.Fatalf("%s: nil result", name)
	}
	if len(res.Sample) != m.NumVars() {
		t.Fatalf("%s: sample has %d vars, model %d", name, len(res.Sample), m.NumVars())
	}
	if got := m.Feasible(res.Sample, 1e-6); got != res.Feasible {
		t.Fatalf("%s: Feasible=%v but model says %v", name, res.Feasible, got)
	}
}

func TestBackendNames(t *testing.T) {
	want := map[solve.Solver]string{
		sa.NewEngine():      "sa",
		tabu.NewEngine():    "tabu",
		exact.NewEngine():   "exact",
		hybrid.NewEngine():  "hybrid",
		quantum.NewEngine(): "quantum",
	}
	for s, name := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestHeuristicBackendsReachOptimum(t *testing.T) {
	// sa, tabu and hybrid must all match the exact optimum on the small
	// knapsack; quantum (QAOA on a simulator) only has to return a
	// complete, consistently-labelled sample.
	m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
	want, err := exact.NewEngine().Solve(context.Background(), m)
	checkResult(t, "exact", m, want, err)
	if !want.Stats.Proven || want.Objective != -21 {
		t.Fatalf("exact: objective %v proven %v", want.Objective, want.Stats.Proven)
	}

	for _, s := range []solve.Solver{
		sa.NewEngine(),
		&tabu.Engine{Base: tabu.Options{Penalty: 16}},
		hybrid.New(hybrid.Options{Penalty: 2, PenaltyGrowth: 4}),
	} {
		res, err := s.Solve(context.Background(), m,
			solve.WithSeed(3), solve.WithReads(8), solve.WithSweeps(1200))
		checkResult(t, s.Name(), m, res, err)
		if !res.Feasible || res.Objective != want.Objective {
			t.Errorf("%s: objective %v feasible %v, want %v", s.Name(), res.Objective, res.Feasible, want.Objective)
		}
		if res.Stats.Interrupted {
			t.Errorf("%s: uninterrupted solve reports Interrupted", s.Name())
		}
	}

	res, err := quantum.NewEngine().Solve(context.Background(), m, solve.WithSeed(3))
	checkResult(t, "quantum", m, res, err)
}

func TestCancelledContextStillReturnsResult(t *testing.T) {
	// A context cancelled before Solve is the extreme point of the
	// contract: the polling backends must notice immediately and still
	// return a complete result, not an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
	for _, s := range []solve.Solver{
		sa.NewEngine(), tabu.NewEngine(),
		hybrid.New(hybrid.Options{Penalty: 2, PenaltyGrowth: 4}),
		quantum.NewEngine(),
	} {
		res, err := s.Solve(ctx, m, solve.WithSeed(1), solve.WithReads(4), solve.WithSweeps(5000))
		checkResult(t, s.Name(), m, res, err)
		if !res.Stats.Interrupted {
			t.Errorf("%s: cancelled solve not marked Interrupted", s.Name())
		}
	}

	// exact on a large search: cancellation lands at a node-poll
	// boundary, long before the ~931k-node full search.
	m2 := hardPartition(20)
	res, err := exact.NewEngine().Solve(ctx, m2, solve.WithSeed(1))
	checkResult(t, "exact", m2, res, err)
	if !res.Stats.Interrupted || res.Stats.Proven {
		t.Fatalf("exact: Interrupted=%v Proven=%v after cancellation", res.Stats.Interrupted, res.Stats.Proven)
	}
	if res.Stats.Nodes > 100_000 {
		t.Fatalf("exact: explored %d nodes after pre-cancelled context", res.Stats.Nodes)
	}
}

// TestFakeClockDeadlinePerBackend drives every backend against a
// deadline measured purely on the injected fake clock: time "passes"
// only when the progress hook advances it, so the interruption point is
// deterministic and the test never sleeps.
func TestFakeClockDeadlinePerBackend(t *testing.T) {
	t.Run("sa", func(t *testing.T) {
		m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
		fake := solve.NewFake(time.Unix(0, 0))
		res, err := sa.NewEngine().Solve(context.Background(), m,
			solve.WithSeed(1), solve.WithReads(2), solve.WithSweeps(100_000),
			solve.WithClock(fake), solve.WithBudget(5*time.Millisecond),
			solve.WithProgress(func(solve.Event) { fake.Advance(time.Millisecond) }))
		checkResult(t, "sa", m, res, err)
		if !res.Stats.Interrupted {
			t.Fatal("deadline did not interrupt the annealer")
		}
		if res.Stats.Sweeps >= 2*100_000 {
			t.Fatalf("annealer ran the full budget (%d sweeps) despite the deadline", res.Stats.Sweeps)
		}
		if res.Stats.Wall != fake.Since(time.Unix(0, 0)) {
			t.Fatalf("Wall %v not measured on the fake clock", res.Stats.Wall)
		}
	})

	t.Run("tabu", func(t *testing.T) {
		m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
		fake := solve.NewFake(time.Unix(0, 0))
		res, err := tabu.NewEngine().Solve(context.Background(), m,
			solve.WithSeed(1), solve.WithReads(4), solve.WithSweeps(100_000),
			solve.WithClock(fake), solve.WithBudget(5*time.Millisecond),
			solve.WithProgress(func(solve.Event) { fake.Advance(time.Millisecond) }))
		checkResult(t, "tabu", m, res, err)
		if !res.Stats.Interrupted {
			t.Fatal("deadline did not interrupt tabu search")
		}
		if res.Stats.Reads >= 4 {
			t.Fatalf("all %d trajectories ran despite the deadline", res.Stats.Reads)
		}
	})

	t.Run("exact", func(t *testing.T) {
		m := hardPartition(20)
		fake := solve.NewFake(time.Unix(0, 0))
		// The node-poll progress cadence advances the clock 1ms per
		// batch; a 1ms budget trips the stop at the first poll.
		res, err := exact.NewEngine().Solve(context.Background(), m,
			solve.WithClock(fake), solve.WithBudget(time.Millisecond),
			solve.WithProgress(func(solve.Event) { fake.Advance(time.Millisecond) }))
		checkResult(t, "exact", m, res, err)
		if !res.Stats.Interrupted || res.Stats.Proven {
			t.Fatalf("Interrupted=%v Proven=%v, want interrupted unproven", res.Stats.Interrupted, res.Stats.Proven)
		}
		if res.Stats.Nodes > 20_000 {
			t.Fatalf("explored %d nodes past the 1ms fake deadline", res.Stats.Nodes)
		}
	})

	t.Run("quantum", func(t *testing.T) {
		m := knapsack([]float64{5, 3, 2}, 1)
		start := time.Unix(0, 0)
		fake := solve.NewFake(start)
		// Deadline == now: the parameter search aborts at its first
		// optimizer poll, but measurement of the initial parameters
		// still yields a complete sample.
		res, err := quantum.NewEngine().Solve(context.Background(), m,
			solve.WithSeed(1), solve.WithClock(fake), solve.WithDeadline(start))
		checkResult(t, "quantum", m, res, err)
		if !res.Stats.Interrupted {
			t.Fatal("expired deadline did not interrupt the parameter search")
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		// The acceptance scenario: a deadline lands mid-portfolio. The
		// already-running annealing reads stop at their next sweep, the
		// tabu reads never start, and the warm-started best sample is
		// still returned feasible with Interrupted set.
		m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
		warm := []bool{true, true, true, false, false, false, false} // feasible, objective -21
		eng := hybrid.New(hybrid.Options{
			Reads: 4, TabuReads: 2, Sweeps: 100_000, Workers: 1,
			Penalty: 2, PenaltyGrowth: 4, Initial: warm,
			Timing: hybrid.DefaultTimingModel(),
		})
		start := time.Unix(0, 0)
		fake := solve.NewFake(start)
		res, err := eng.Solve(context.Background(), m,
			solve.WithSeed(1), solve.WithClock(fake), solve.WithBudget(3*time.Millisecond),
			solve.WithProgress(func(solve.Event) { fake.Advance(time.Millisecond) }))
		checkResult(t, "hybrid", m, res, err)
		if !res.Stats.Interrupted {
			t.Fatal("mid-portfolio deadline not reported")
		}
		if !res.Feasible || res.Objective > -21 {
			t.Fatalf("interrupted solve lost the warm start: objective %v feasible %v", res.Objective, res.Feasible)
		}
		if res.Stats.Reads != 4 {
			t.Fatalf("Reads = %d, want 4 (tabu reads must be skipped after the stop)", res.Stats.Reads)
		}
		if res.Stats.Sweeps >= 4*100_000 {
			t.Fatalf("portfolio ran its full budget (%d sweeps)", res.Stats.Sweeps)
		}
		wall := fake.Since(start)
		if res.Stats.Wall != wall {
			t.Fatalf("Wall = %v, want fake-clock elapsed %v", res.Stats.Wall, wall)
		}
		tm := hybrid.DefaultTimingModel()
		if res.Stats.SimulatedCPU != wall+tm.CloudOverhead() {
			t.Fatalf("SimulatedCPU = %v, want wall %v + overhead %v", res.Stats.SimulatedCPU, wall, tm.CloudOverhead())
		}
		if res.Stats.SimulatedQPU != tm.QPUAccess {
			t.Fatalf("SimulatedQPU = %v", res.Stats.SimulatedQPU)
		}
	})
}

// TestCancellationAtArbitraryPoints is the property test of the
// cancellation contract: no matter after how many progress events the
// context is cancelled, the solve returns a complete sample whose
// Feasible flag is truthful — never an error, never a half-written
// assignment.
func TestCancellationAtArbitraryPoints(t *testing.T) {
	m := knapsack([]float64{9, 7, 5, 4, 3, 2, 1}, 3)
	mk := []func() solve.Solver{
		func() solve.Solver { return sa.NewEngine() },
		func() solve.Solver { return tabu.NewEngine() },
		func() solve.Solver { return hybrid.New(hybrid.Options{Penalty: 2, PenaltyGrowth: 4, Workers: 1}) },
	}
	for _, newSolver := range mk {
		for _, after := range []int{0, 1, 2, 3, 5, 8, 13, 34} {
			s := newSolver()
			ctx, cancel := context.WithCancel(context.Background())
			events := 0
			res, err := s.Solve(ctx, m,
				solve.WithSeed(int64(after)), solve.WithReads(3), solve.WithSweeps(200),
				solve.WithProgress(func(solve.Event) {
					events++
					if events == after {
						cancel()
					}
				}))
			checkResult(t, s.Name(), m, res, err)
			cancel()
		}
	}
}

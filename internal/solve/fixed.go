package solve

import "repro/internal/cqm"

// FixedAssignment reports whether the model has no free variables left
// once frozen is applied — zero variables, or every variable pinned —
// and, if so, returns the single reachable assignment. Heuristic
// engines use it as a fast path: with an empty move set there is
// nothing to search, so the unique assignment is returned immediately
// (and is trivially the optimum over the reachable space) instead of
// spinning sweeps until the deadline.
func FixedAssignment(m *cqm.Model, frozen map[cqm.VarID]bool) ([]bool, bool) {
	if m == nil {
		return nil, false
	}
	n := m.NumVars()
	if n > 0 && len(frozen) < n {
		return nil, false
	}
	x := make([]bool, n)
	for i := 0; i < n; i++ {
		v, ok := frozen[cqm.VarID(i)]
		if !ok {
			return nil, false
		}
		x[i] = v
	}
	return x, true
}

package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/cqm"
)

// ErrPanic marks a solve that panicked and was recovered by the
// isolation layer. Match with errors.Is; the concrete *PanicError
// carries the backend name, the panic value and the goroutine stack.
var ErrPanic = errors.New("solve: solver panicked")

// PanicError is the recovered form of a solver panic.
type PanicError struct {
	// Backend is the Name() of the solver that panicked.
	Backend string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error. The stack is kept off the one-line message;
// callers that want it read the field.
func (e *PanicError) Error() string {
	return fmt.Sprintf("solve: solver %q panicked: %v", e.Backend, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) work.
func (e *PanicError) Unwrap() error { return ErrPanic }

// protected is the Solver wrapper produced by Protected.
type protected struct {
	inner Solver
}

// Protected wraps a solver so that a panic during Solve is recovered
// and converted into a *PanicError instead of unwinding into the caller
// — the isolation boundary that lets a crashing backend merely lose a
// hedged race or burn a resilient retry rather than kill the process.
// Recovered panics are counted under "solver.<name>.panics" in the
// configured obs registry. Wrapping is idempotent, and a nil solver is
// returned unchanged.
func Protected(s Solver) Solver {
	if s == nil {
		return nil
	}
	if _, ok := s.(*protected); ok {
		return s
	}
	return &protected{inner: s}
}

// Name implements Solver, delegating to the wrapped backend.
func (p *protected) Name() string { return p.inner.Name() }

// Solve implements Solver. A recovered panic yields (nil, *PanicError);
// otherwise the inner result and error pass through untouched.
func (p *protected) Solve(ctx context.Context, m *cqm.Model, opts ...Option) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Backend: p.inner.Name(), Value: r, Stack: debug.Stack()}
			res, err = nil, pe
			cfg := NewConfig(opts...)
			if cfg.Obs != nil {
				cfg.Obs.Counter("solver." + p.inner.Name() + ".panics").Inc()
				cfg.Obs.Emit("solver.panic", map[string]any{
					"backend": p.inner.Name(),
					"value":   fmt.Sprint(r),
				})
			}
		}
	}()
	return p.inner.Solve(ctx, m, opts...)
}

package solve

import (
	"context"
	"testing"
	"time"
)

func TestNewConfigDefaults(t *testing.T) {
	cfg := NewConfig()
	if cfg.Clock == nil {
		t.Fatal("default config has nil clock")
	}
	if cfg.HasSeed {
		t.Error("HasSeed set without WithSeed")
	}
	if cfg.Reads != 0 || cfg.Sweeps != 0 || cfg.Workers != 0 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Budget != 0 || !cfg.Deadline.IsZero() {
		t.Errorf("time bounds set by default: %+v", cfg)
	}
}

func TestOptionsApply(t *testing.T) {
	fake := NewFake(time.Unix(100, 0))
	deadline := time.Unix(200, 0)
	var events []Event
	cfg := NewConfig(
		WithSeed(0), // 0 is a valid seed and must set HasSeed
		WithReads(7),
		WithSweeps(42),
		WithWorkers(3),
		WithBudget(time.Second),
		WithDeadline(deadline),
		WithClock(fake),
		WithProgress(func(e Event) { events = append(events, e) }),
		nil, // nil options are ignored
	)
	if !cfg.HasSeed || cfg.Seed != 0 {
		t.Errorf("WithSeed(0): Seed=%d HasSeed=%v", cfg.Seed, cfg.HasSeed)
	}
	if cfg.Reads != 7 || cfg.Sweeps != 42 || cfg.Workers != 3 {
		t.Errorf("knobs not applied: %+v", cfg)
	}
	if cfg.Budget != time.Second || !cfg.Deadline.Equal(deadline) {
		t.Errorf("time bounds not applied: %+v", cfg)
	}
	if cfg.Clock != fake {
		t.Error("clock not injected")
	}
	cfg.Progress(Event{Restart: 5})
	if len(events) != 1 || events[0].Restart != 5 {
		t.Errorf("progress hook not wired: %v", events)
	}
}

func TestNilClockOptionFallsBackToReal(t *testing.T) {
	cfg := NewConfig(WithClock(nil))
	if cfg.Clock == nil {
		t.Fatal("nil clock survived NewConfig")
	}
}

func TestStopNilNeverStops(t *testing.T) {
	var s *Stop
	if s.Stopped() {
		t.Error("nil Stop reported stopped")
	}
	if s.Interrupted() {
		t.Error("nil Stop reported interrupted")
	}
	if s.Func() != nil {
		t.Error("nil Stop should yield a nil predicate")
	}
}

func TestStopContextCancellationLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewConfig().NewStop(ctx)
	if s.Stopped() {
		t.Fatal("stopped before cancellation")
	}
	if s.Interrupted() {
		t.Fatal("interrupted before cancellation")
	}
	cancel()
	if !s.Stopped() {
		t.Fatal("not stopped after cancellation")
	}
	// Latched: stays stopped, and Interrupted reports the trip.
	if !s.Stopped() || !s.Interrupted() {
		t.Fatal("stop did not latch")
	}
}

func TestStopBudgetOnFakeClock(t *testing.T) {
	fake := NewFake(time.Unix(0, 0))
	cfg := NewConfig(WithClock(fake), WithBudget(10*time.Millisecond))
	s := cfg.NewStop(context.Background())
	if s.Stopped() {
		t.Fatal("stopped before the budget elapsed")
	}
	fake.Advance(9 * time.Millisecond)
	if s.Stopped() {
		t.Fatal("stopped 1ms before the budget elapsed")
	}
	fake.Advance(time.Millisecond)
	if !s.Stopped() || !s.Interrupted() {
		t.Fatal("budget exhaustion did not stop the solve")
	}
}

func TestStopDeadlineMergesWithBudget(t *testing.T) {
	start := time.Unix(1000, 0)
	fake := NewFake(start)
	// Budget of 1s is tighter than the 10s deadline: it wins.
	cfg := NewConfig(WithClock(fake),
		WithBudget(time.Second),
		WithDeadline(start.Add(10*time.Second)))
	s := cfg.NewStop(context.Background())
	fake.Advance(time.Second)
	if !s.Stopped() {
		t.Fatal("tighter budget ignored")
	}

	// An earlier absolute deadline beats a generous budget.
	fake2 := NewFake(start)
	cfg2 := NewConfig(WithClock(fake2),
		WithBudget(time.Hour),
		WithDeadline(start.Add(time.Second)))
	s2 := cfg2.NewStop(context.Background())
	fake2.Advance(time.Second)
	if !s2.Stopped() {
		t.Fatal("earlier deadline ignored")
	}
}

func TestStopFuncSharedAcrossGoroutines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewConfig().NewStop(ctx)
	f := s.Func()
	cancel()
	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- f() }()
	}
	for i := 0; i < 4; i++ {
		if !<-done {
			t.Fatal("shared predicate missed the cancellation")
		}
	}
}

func TestSerialProgress(t *testing.T) {
	if SerialProgress(nil) != nil {
		t.Fatal("nil hook should stay nil")
	}
	// The wrapper must serialize concurrent emitters; run with -race to
	// catch violations.
	count := 0
	p := SerialProgress(func(Event) { count++ })
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				p(Event{Sweep: j})
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if count != 800 {
		t.Fatalf("count = %d, want 800", count)
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Unix(500, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatal("fake clock not frozen at start")
	}
	f.Advance(3 * time.Second)
	if got := f.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
	if got := f.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now = %v", got)
	}
}

func TestRealClock(t *testing.T) {
	c := Real()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("real clock ran backwards")
	}
}

package solve

import (
	"context"
	"sync"
	"time"
)

// Clock is the injected time source of the engine layer. Backends and
// engines read time exclusively through it, so tests can drive deadlines
// and timing stats deterministically with a fake.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep pauses for d or until ctx is cancelled, returning ctx's
	// error in the latter case. The fake clock advances itself instead
	// of blocking, which makes retry backoff schedules deterministic in
	// tests.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-t.C:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

// Fake is a manually advanced clock for tests. It is safe for
// concurrent use; a common pattern is advancing it from a Progress hook
// so that "time passes" exactly once per sweep.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a fake clock frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake-elapsed time since t.
func (f *Fake) Since(t time.Time) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now.Sub(t)
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Sleep advances the fake clock by d without blocking (fake time passes
// instantly), unless ctx is already cancelled.
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if d > 0 {
		f.Advance(d)
	}
	return nil
}

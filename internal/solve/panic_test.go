package solve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/cqm"
	"repro/internal/obs"
)

// panicky is a Solver that panics on Solve until armed attempts run
// out, then succeeds.
type panicky struct {
	mu         sync.Mutex
	panicsLeft int
}

func (p *panicky) Name() string { return "panicky" }

func (p *panicky) Solve(ctx context.Context, m *cqm.Model, opts ...Option) (*Result, error) {
	p.mu.Lock()
	boom := p.panicsLeft > 0
	if boom {
		p.panicsLeft--
	}
	p.mu.Unlock()
	if boom {
		panic("injected crash")
	}
	x := make([]bool, m.NumVars())
	return &Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}, nil
}

func TestProtectedRecoversPanic(t *testing.T) {
	m := cqm.New()
	m.AddBinary("x")
	reg := obs.NewRegistry()
	s := Protected(&panicky{panicsLeft: 1})
	res, err := s.Solve(context.Background(), m, WithObs(reg))
	if res != nil {
		t.Fatal("panicked solve returned a result")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T does not unwrap to *PanicError", err)
	}
	if pe.Backend != "panicky" {
		t.Fatalf("Backend = %q, want panicky", pe.Backend)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "Solve") {
		t.Fatal("PanicError carries no useful stack")
	}
	if got := reg.Counter("solver.panicky.panics").Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The wrapper passes clean solves through untouched.
	res, err = s.Solve(context.Background(), m)
	if err != nil || res == nil {
		t.Fatalf("clean solve through Protected = (%v, %v)", res, err)
	}
}

func TestProtectedIsIdempotent(t *testing.T) {
	inner := &panicky{}
	once := Protected(inner)
	if twice := Protected(once); twice != once {
		t.Fatal("double wrapping allocated a second layer")
	}
	if Protected(nil) != nil {
		t.Fatal("Protected(nil) != nil")
	}
	if once.Name() != "panicky" {
		t.Fatalf("Name() = %q, want delegation", once.Name())
	}
}

// TestProtectedConcurrentLifecycle is the -race lifecycle test of the
// panic-isolation path: many goroutines share one Protected solver
// whose backend crashes on some attempts, and every panic must be
// contained, classified, and leave the process healthy.
func TestProtectedConcurrentLifecycle(t *testing.T) {
	m := cqm.New()
	v := m.AddBinary("x")
	m.AddObjectiveLinear(v, 1)
	reg := obs.NewRegistry()
	s := Protected(&panicky{panicsLeft: 16})

	const workers = 8
	const solvesPerWorker = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	panics, successes := 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solvesPerWorker; i++ {
				res, err := s.Solve(context.Background(), m, WithObs(reg))
				mu.Lock()
				switch {
				case errors.Is(err, ErrPanic):
					panics++
				case err == nil && res != nil:
					successes++
				default:
					t.Errorf("unexpected outcome (%v, %v)", res, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if panics != 16 {
		t.Fatalf("recovered panics = %d, want 16", panics)
	}
	if successes != workers*solvesPerWorker-16 {
		t.Fatalf("successes = %d, want %d", successes, workers*solvesPerWorker-16)
	}
	if got := reg.Counter("solver.panicky.panics").Value(); got != 16 {
		t.Fatalf("panics counter = %d, want 16", got)
	}
}

func TestFixedAssignment(t *testing.T) {
	empty := cqm.New()
	if x, ok := FixedAssignment(empty, nil); !ok || len(x) != 0 {
		t.Fatalf("empty model: (%v, %v), want ([], true)", x, ok)
	}

	m := cqm.New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	if _, ok := FixedAssignment(m, map[cqm.VarID]bool{a: true}); ok {
		t.Fatal("partially frozen model reported fixed")
	}
	x, ok := FixedAssignment(m, map[cqm.VarID]bool{a: true, b: false})
	if !ok || !x[0] || x[1] {
		t.Fatalf("fully frozen model: (%v, %v)", x, ok)
	}
	if _, ok := FixedAssignment(nil, nil); ok {
		t.Fatal("nil model reported fixed")
	}
}

// Package obs is the repository's stdlib-only observability layer:
// counters, gauges, and histograms in a concurrency-safe registry, plus
// span-based tracing of the hybrid workflow phases (presolve →
// portfolio → repair → feasibility filter → selection) and of dlb
// rounds.
//
// Every solver backend emits into one registry through the engine layer
// (solve.WithObs); the registry renders snapshots as aligned text and
// CSV via internal/report and as a structured JSON event log, so one
// `qulrb -metrics` run or one cmd/experiments manifest shows where the
// work went — per-phase wall time, branch-and-bound node counts,
// annealer acceptance rates, resilient retries and breaker transitions.
//
// Design rules:
//
//   - Nil-safety end to end: a nil *Registry (and the nil metric
//     handles it returns) no-ops, so call sites instrument
//     unconditionally and pay nothing when observability is off.
//   - Time is injected: SetNow replaces the registry's time source, so
//     span durations are deterministic under the fake clock in tests.
//   - Bounded memory: the span and event logs cap out and count what
//     they dropped instead of growing without limit in long dlb runs.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil receiver no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (breaker state, acceptance
// rate). The zero value is ready to use; a nil receiver no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates a distribution: count, sum, min, max, and
// counts per bucket (bucket i counts observations <= Bounds[i]; one
// implicit overflow bucket catches the rest). A nil receiver no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// DefBuckets are the default histogram bounds: exponential from 0.25 to
// 16384, sized for millisecond-scale phase durations.
var DefBuckets = []float64{0.25, 1, 4, 16, 64, 256, 1024, 4096, 16384}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) snapshot() (count int64, sum, min, max float64, bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max,
		append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...)
}

// maxSpans bounds the per-registry span log; older spans survive (they
// are usually the interesting setup phases) and later ones are counted
// as dropped.
const maxSpans = 8192

// maxEvents bounds the ad-hoc event log the same way.
const maxEvents = 8192

// Registry is a concurrency-safe collection of named metrics and
// completed spans. All methods are safe for concurrent use; a nil
// registry no-ops everywhere, so instrumented code never branches on
// "is observability on".
type Registry struct {
	mu       sync.RWMutex
	now      func() time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	dropped  int64
	events   []Event
	evDrop   int64
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		now:      time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetNow injects the registry's time source (pass a solve.Clock's Now
// in tests to make span durations deterministic). A nil fn restores the
// wall clock.
func (r *Registry) SetNow(fn func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		fn = time.Now
	}
	r.now = fn
}

func (r *Registry) clock() func() time.Time {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.now
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (DefBuckets when empty; later calls reuse
// the first bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

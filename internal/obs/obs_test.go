package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	sp := r.StartSpan("phase")
	sp.Set("k", 1)
	sp.End()
	r.Emit("e", map[string]any{"x": 1})
	r.SetNow(nil)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Fatal("nil registry produced data")
	}
	if got := s.Text(); !strings.Contains(got, "metrics") {
		t.Fatalf("empty snapshot still renders: %q", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solver.sa.sweeps")
	c.Add(40)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	if c.Value() != 41 {
		t.Fatalf("counter = %d, want 41", c.Value())
	}
	if r.Counter("solver.sa.sweeps") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("rate")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("wall_ms", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 4 || hs.Sum != 555.5 || hs.Min != 0.5 || hs.Max != 500 {
		t.Fatalf("hist snap = %+v", hs)
	}
	// 4 observations, one per bucket incl. overflow.
	for i, c := range hs.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count = %d, want 1 (%v)", i, c, hs.Counts)
		}
	}
}

func TestSpansDeterministicUnderInjectedNow(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetNow(func() time.Time { return now })
	sp := r.StartSpan("phase.portfolio")
	sp.Set("reads", 8)
	now = now.Add(250 * time.Millisecond)
	sp.End()
	sp.End() // double End is a no-op

	s := r.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("spans = %d", len(s.Spans))
	}
	if d := s.Spans[0].Duration(); d != 250*time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
	if len(s.Spans[0].Attrs) != 1 || s.Spans[0].Attrs[0] != (Attr{Key: "reads", Value: "8"}) {
		t.Fatalf("attrs = %+v", s.Spans[0].Attrs)
	}
	// End also feeds the aggregate histogram.
	found := false
	for _, h := range s.Histograms {
		if h.Name == "span.phase.portfolio.ms" {
			found = true
			if h.Count != 1 || h.Sum != 250 {
				t.Fatalf("span histogram = %+v", h)
			}
		}
	}
	if !found {
		t.Fatal("span duration histogram missing")
	}
	groups := s.SpanGroups()
	if len(groups) != 1 || groups[0].Count != 1 || groups[0].Total != 250*time.Millisecond {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestSpanLogBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpans+10; i++ {
		r.StartSpan("s").End()
	}
	s := r.Snapshot()
	if len(s.Spans) != maxSpans || s.DroppedSpans != 10 {
		t.Fatalf("spans = %d dropped = %d", len(s.Spans), s.DroppedSpans)
	}
	// The histogram keeps the full count even after the log overflows.
	for _, h := range s.Histograms {
		if h.Name == "span.s.ms" && h.Count != int64(maxSpans+10) {
			t.Fatalf("histogram count = %d", h.Count)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i))
				sp := r.StartSpan("work")
				sp.Set("worker", w)
				sp.End()
				r.Emit("tick", map[string]any{"i": i})
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters[0].Value; got != 1600 {
		t.Fatalf("counter = %d", got)
	}
	if len(s.Spans)+int(s.DroppedSpans) != 1600 {
		t.Fatalf("spans %d + dropped %d != 1600", len(s.Spans), s.DroppedSpans)
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver.exact.nodes").Add(123)
	r.Gauge("solver.sa.acceptance_rate").Set(0.4)
	r.Histogram("solver.sa.wall_ms").Observe(12)
	r.StartSpan("phase.presolve").End()
	s := r.Snapshot()
	text := s.Text()
	for _, want := range []string{"solver.exact.nodes", "123", "acceptance_rate", "phase.presolve"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
	csv := s.CSV()
	if !strings.Contains(csv, "counter,solver.exact.nodes,123") {
		t.Fatalf("csv missing counter row:\n%s", csv)
	}
	if !strings.Contains(csv, "span,span.phase.presolve.ms") && !strings.Contains(csv, "span,phase.presolve") {
		t.Fatalf("csv missing span row:\n%s", csv)
	}
}

func TestWriteEventsIsValidJSONLines(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1700000000, 0)
	r.SetNow(func() time.Time { return now })
	sp := r.StartSpan("dlb.round")
	sp.Set("iteration", 0)
	now = now.Add(3 * time.Millisecond)
	sp.End()
	r.Emit("breaker", map[string]any{"state": "open", "trips": 1})
	r.Counter("rounds").Inc()
	r.Gauge("imbalance").Set(1.5)
	r.Histogram("h").Observe(2)

	var b strings.Builder
	if err := r.Snapshot().WriteEvents(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	kinds := map[string]int{}
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		kinds[e["kind"].(string)]++
	}
	// "histogram" is 2: the explicit one plus the span-duration one
	// End() feeds automatically.
	want := map[string]int{"span": 1, "event": 1, "counter": 1, "gauge": 1, "histogram": 2}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("kind %q count = %d, want %d (%v)", k, kinds[k], n, kinds)
		}
	}
	// Event attrs are sorted by key for deterministic output.
	if !strings.Contains(b.String(), `"attrs":[{"key":"state","value":"open"},{"key":"trips","value":"1"}]`) {
		t.Fatalf("event attrs not sorted:\n%s", b.String())
	}
}

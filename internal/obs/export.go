package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/report"
)

// CounterSnap is one counter's value in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's value in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnap is one histogram's aggregate view in a snapshot.
type HistSnap struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// SpanGroup aggregates the completed spans sharing one name.
type SpanGroup struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot is a consistent point-in-time view of a registry, sorted by
// name so its renderings are deterministic.
type Snapshot struct {
	Counters      []CounterSnap `json:"counters"`
	Gauges        []GaugeSnap   `json:"gauges"`
	Histograms    []HistSnap    `json:"histograms"`
	Spans         []SpanRecord  `json:"spans"`
	DroppedSpans  int64         `json:"dropped_spans,omitempty"`
	Events        []Event       `json:"events,omitempty"`
	DroppedEvents int64         `json:"dropped_events,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	s.Spans = append(s.Spans, r.spans...)
	s.DroppedSpans = r.dropped
	s.Events = append(s.Events, r.events...)
	s.DroppedEvents = r.evDrop
	r.mu.RUnlock()

	for name, h := range hists {
		count, sum, min, max, bounds, counts := h.snapshot()
		s.Histograms = append(s.Histograms, HistSnap{
			Name: name, Count: count, Sum: sum, Min: min, Max: max,
			Bounds: bounds, Counts: counts,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// SpanGroups aggregates the snapshot's spans by name, sorted by name.
func (s Snapshot) SpanGroups() []SpanGroup {
	byName := make(map[string]*SpanGroup)
	for _, sp := range s.Spans {
		d := sp.Duration()
		g := byName[sp.Name]
		if g == nil {
			g = &SpanGroup{Name: sp.Name, Min: d, Max: d}
			byName[sp.Name] = g
		}
		g.Count++
		g.Total += d
		if d < g.Min {
			g.Min = d
		}
		if d > g.Max {
			g.Max = d
		}
	}
	out := make([]SpanGroup, 0, len(byName))
	for _, g := range byName {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return report.Fmt(float64(d) / float64(time.Millisecond))
}

// MetricsTable renders every counter, gauge, and histogram as one
// metrics table (type, name, value columns; histograms show
// count/mean/min/max).
func (s Snapshot) MetricsTable() *report.Table {
	t := report.NewTable("metrics", "type", "name", "value", "count", "mean", "min", "max")
	for _, c := range s.Counters {
		t.AddRow("counter", c.Name, fmt.Sprintf("%d", c.Value))
	}
	for _, g := range s.Gauges {
		t.AddRow("gauge", g.Name, report.Fmt(g.Value))
	}
	for _, h := range s.Histograms {
		t.AddRow("histogram", h.Name, report.Fmt(h.Sum),
			fmt.Sprintf("%d", h.Count), report.Fmt(h.Mean()),
			report.Fmt(h.Min), report.Fmt(h.Max))
	}
	return t
}

// SpansTable renders the snapshot's spans aggregated by name.
func (s Snapshot) SpansTable() *report.Table {
	t := report.NewTable("spans", "name", "count", "total ms", "min ms", "max ms", "avg ms")
	for _, g := range s.SpanGroups() {
		avg := time.Duration(0)
		if g.Count > 0 {
			avg = g.Total / time.Duration(g.Count)
		}
		t.AddRow(g.Name, fmt.Sprintf("%d", g.Count), ms(g.Total), ms(g.Min), ms(g.Max), ms(avg))
	}
	if s.DroppedSpans > 0 {
		t.AddRow("(dropped)", fmt.Sprintf("%d", s.DroppedSpans))
	}
	return t
}

// Text renders the snapshot as aligned text: the metrics table followed
// by the span table.
func (s Snapshot) Text() string {
	return s.MetricsTable().Render() + "\n" + s.SpansTable().Render()
}

// CSV renders the snapshot's metrics and span aggregates as one CSV
// stream (a "kind" column distinguishes rows).
func (s Snapshot) CSV() string {
	t := report.NewTable("", "kind", "name", "value", "count", "mean", "min", "max")
	for _, c := range s.Counters {
		t.AddRow("counter", c.Name, fmt.Sprintf("%d", c.Value))
	}
	for _, g := range s.Gauges {
		t.AddRow("gauge", g.Name, report.Fmt(g.Value))
	}
	for _, h := range s.Histograms {
		t.AddRow("histogram", h.Name, report.Fmt(h.Sum),
			fmt.Sprintf("%d", h.Count), report.Fmt(h.Mean()),
			report.Fmt(h.Min), report.Fmt(h.Max))
	}
	for _, g := range s.SpanGroups() {
		t.AddRow("span", g.Name, ms(g.Total), fmt.Sprintf("%d", g.Count), "",
			ms(g.Min), ms(g.Max))
	}
	return t.CSV()
}

// jsonEvent is one line of the structured event log.
type jsonEvent struct {
	Kind  string  `json:"kind"`
	Time  string  `json:"time,omitempty"`
	Name  string  `json:"name"`
	Value any     `json:"value,omitempty"`
	DurMs float64 `json:"dur_ms,omitempty"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// WriteEvents writes the snapshot as a structured JSON event log: one
// JSON object per line — every completed span (kind "span", in start
// order), every emitted event (kind "event"), then the final metric
// values (kinds "counter", "gauge", "histogram").
func (s Snapshot) WriteEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	ts := func(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }
	for _, sp := range s.Spans {
		e := jsonEvent{Kind: "span", Time: ts(sp.Start), Name: sp.Name,
			DurMs: float64(sp.Duration()) / float64(time.Millisecond), Attrs: sp.Attrs}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	for _, ev := range s.Events {
		if err := enc.Encode(jsonEvent{Kind: "event", Time: ts(ev.Time), Name: ev.Name, Attrs: ev.Attrs}); err != nil {
			return err
		}
	}
	for _, c := range s.Counters {
		if err := enc.Encode(jsonEvent{Kind: "counter", Name: c.Name, Value: c.Value}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := enc.Encode(jsonEvent{Kind: "gauge", Name: g.Name, Value: g.Value}); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		e := jsonEvent{Kind: "histogram", Name: h.Name, Value: map[string]any{
			"count": h.Count, "sum": h.Sum, "min": h.Min, "max": h.Max, "mean": h.Mean(),
		}}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"fmt"
	"sort"
	"time"
)

// Attr is one span or event attribute. Values are stringified at
// attachment time so records are immutable and JSON-safe.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// attr renders a value compactly: integers without exponent, floats via
// %g, everything else via %v.
func attr(key string, value any) Attr {
	switch v := value.(type) {
	case float64:
		return Attr{Key: key, Value: fmt.Sprintf("%g", v)}
	case float32:
		return Attr{Key: key, Value: fmt.Sprintf("%g", v)}
	case string:
		return Attr{Key: key, Value: v}
	default:
		return Attr{Key: key, Value: fmt.Sprintf("%v", v)}
	}
}

// SpanRecord is one completed span in the registry's trace log.
type SpanRecord struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Duration is the span's wall time on the registry's time source.
func (s SpanRecord) Duration() time.Duration { return s.End.Sub(s.Start) }

// Span is an in-flight trace span: a named phase of the hybrid workflow
// (or a dlb round) between StartSpan and End. Spans are single-owner:
// one goroutine starts, annotates, and ends a span. A nil span no-ops.
type Span struct {
	r     *Registry
	name  string
	start time.Time
	attrs []Attr
	done  bool
}

// StartSpan opens a span at the registry's current time. A nil registry
// returns a nil (no-op) span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: r.clock()()}
}

// Set attaches an attribute to the span (stringified immediately) and
// returns the span for chaining.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr(key, value))
	return s
}

// End closes the span and appends it to the registry's trace log; calls
// after the first are ignored. The histogram "span.<name>.ms" receives
// the duration, so aggregate phase timings survive even when the raw
// span log overflows.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	end := s.r.clock()()
	rec := SpanRecord{Name: s.name, Start: s.start, End: end, Attrs: s.attrs}
	s.r.Histogram("span." + s.name + ".ms").Observe(float64(end.Sub(s.start)) / float64(time.Millisecond))
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if len(s.r.spans) >= maxSpans {
		s.r.dropped++
		return
	}
	s.r.spans = append(s.r.spans, rec)
}

// Event is one ad-hoc structured record in the registry's event log
// (e.g. a breaker transition or a budget exhaustion).
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Emit appends an event with the given fields (sorted by key for
// deterministic output). A nil registry no-ops.
func (r *Registry) Emit(name string, fields map[string]any) {
	if r == nil {
		return
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(keys))
	for _, k := range keys {
		attrs = append(attrs, attr(k, fields[k]))
	}
	ev := Event{Time: r.clock()(), Name: name, Attrs: attrs}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= maxEvents {
		r.evDrop++
		return
	}
	r.events = append(r.events, ev)
}

package chameleon

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTraceLog asserts the trace parser never panics and accepted
// traces round-trip through WriteTraceLog.
func FuzzParseTraceLog(f *testing.F) {
	f.Add("task iter=0 proc=1 worker=2 origin=1 start=0.5 end=2.25\n")
	f.Add("# comment\n\ntask iter=3 proc=0 worker=0 origin=0 start=0 end=0\n")
	f.Add("task iter=x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		events, err := ParseTraceLog(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTraceLog(&buf, events); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ParseTraceLog(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(back), len(events))
		}
	})
}

package chameleon

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lrp"
)

// TraceEvent records one executed task, mirroring the per-task entries
// of Chameleon's execution logs (the paper's artifact extracts its
// imbalance inputs from exactly such logs with a parser script).
type TraceEvent struct {
	// Iter is the BSP iteration index.
	Iter int
	// Proc and Worker locate the execution.
	Proc, Worker int
	// Origin is the process the task was originally assigned to.
	Origin int
	// StartMs and EndMs bound the execution in simulation time.
	StartMs, EndMs float64
}

// Load returns the task's execution time.
func (e TraceEvent) Load() float64 { return e.EndMs - e.StartMs }

// WriteTraceLog writes events in the textual execution-log format:
//
//	task iter=<i> proc=<p> worker=<w> origin=<o> start=<ms> end=<ms>
func WriteTraceLog(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "task iter=%d proc=%d worker=%d origin=%d start=%s end=%s\n",
			e.Iter, e.Proc, e.Worker, e.Origin,
			strconv.FormatFloat(e.StartMs, 'g', -1, 64),
			strconv.FormatFloat(e.EndMs, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTraceLog parses the format written by WriteTraceLog, ignoring
// blank lines and lines starting with '#'.
func ParseTraceLog(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var events []TraceEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 7 || fields[0] != "task" {
			return nil, fmt.Errorf("chameleon: trace line %d: unrecognized record %q", lineNo, line)
		}
		var e TraceEvent
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("chameleon: trace line %d: bad field %q", lineNo, f)
			}
			var err error
			switch key {
			case "iter":
				e.Iter, err = strconv.Atoi(val)
			case "proc":
				e.Proc, err = strconv.Atoi(val)
			case "worker":
				e.Worker, err = strconv.Atoi(val)
			case "origin":
				e.Origin, err = strconv.Atoi(val)
			case "start":
				e.StartMs, err = strconv.ParseFloat(val, 64)
			case "end":
				e.EndMs, err = strconv.ParseFloat(val, 64)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("chameleon: trace line %d: %v", lineNo, err)
			}
		}
		if e.EndMs < e.StartMs {
			return nil, fmt.Errorf("chameleon: trace line %d: end before start", lineNo)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("chameleon: %w", err)
	}
	return events, nil
}

// InstanceFromTrace synthesizes the LRP imbalance input of one iteration
// from an execution trace, exactly as the paper's log parser does: each
// process's task count and mean task load become the uniform per-process
// model. Processes never seen in the trace are not representable; the
// caller chooses numProcs to fix the machine size (processes without
// events get zero tasks).
func InstanceFromTrace(events []TraceEvent, iter, numProcs int) (*lrp.Instance, error) {
	if numProcs <= 0 {
		return nil, fmt.Errorf("chameleon: numProcs must be positive")
	}
	counts := make([]int, numProcs)
	sums := make([]float64, numProcs)
	seen := 0
	for _, e := range events {
		if e.Iter != iter {
			continue
		}
		if e.Proc < 0 || e.Proc >= numProcs {
			return nil, fmt.Errorf("chameleon: trace mentions proc %d outside machine of %d", e.Proc, numProcs)
		}
		counts[e.Proc]++
		sums[e.Proc] += e.Load()
		seen++
	}
	if seen == 0 {
		return nil, fmt.Errorf("chameleon: no events for iteration %d", iter)
	}
	weights := make([]float64, numProcs)
	for p := range weights {
		if counts[p] > 0 {
			weights[p] = sums[p] / float64(counts[p])
		}
	}
	return lrp.NewInstance(counts, weights)
}

// Iterations lists the distinct iteration indices present in a trace,
// ascending.
func Iterations(events []TraceEvent) []int {
	set := map[int]bool{}
	for _, e := range events {
		set[e.Iter] = true
	}
	out := make([]int, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Ints(out)
	return out
}

package chameleon

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/lrp"
)

// tracedRun executes one iteration with tracing enabled.
func tracedRun(t *testing.T, in *lrp.Instance, workers int) []TraceEvent {
	t.Helper()
	r, err := New(Config{Workers: workers}, in)
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	r.SetTracer(func(e TraceEvent) { events = append(events, e) })
	r.RunIteration()
	return events
}

func TestTracerRecordsEveryTask(t *testing.T) {
	in := lrp.MustInstance([]int{3, 5}, []float64{2, 1})
	events := tracedRun(t, in, 2)
	if len(events) != 8 {
		t.Fatalf("%d events, want 8", len(events))
	}
	perProc := map[int]int{}
	for _, e := range events {
		perProc[e.Proc]++
		if e.Origin != e.Proc {
			t.Fatalf("unmigrated task with origin %d on proc %d", e.Origin, e.Proc)
		}
		if e.Worker < 0 || e.Worker >= 2 {
			t.Fatalf("bad worker %d", e.Worker)
		}
		wantLoad := in.Weight[e.Proc]
		if math.Abs(e.Load()-wantLoad) > 1e-12 {
			t.Fatalf("event load %v, want %v", e.Load(), wantLoad)
		}
	}
	if perProc[0] != 3 || perProc[1] != 5 {
		t.Fatalf("per-proc counts %v", perProc)
	}
}

func TestTracerIterationCounter(t *testing.T) {
	in := lrp.MustInstance([]int{2}, []float64{1})
	r, err := New(Config{Workers: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	r.SetTracer(func(e TraceEvent) { events = append(events, e) })
	r.Run(3)
	iters := Iterations(events)
	if len(iters) != 3 || iters[0] != 0 || iters[2] != 2 {
		t.Fatalf("iterations %v", iters)
	}
}

func TestTraceLogRoundTrip(t *testing.T) {
	in := lrp.MustInstance([]int{4, 2, 6}, []float64{1.25, 3.5, 0.5})
	events := tracedRun(t, in, 3)
	var buf bytes.Buffer
	if err := WriteTraceLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTraceLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestParseTraceLogRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"garbage":          "hello world\n",
		"bad key":          "task iter=0 proc=0 worker=0 origin=0 start=0 finish=1\n",
		"bad value":        "task iter=x proc=0 worker=0 origin=0 start=0 end=1\n",
		"missing field":    "task iter=0 proc=0 worker=0 origin=0 start=0\n",
		"end before start": "task iter=0 proc=0 worker=0 origin=0 start=5 end=1\n",
		"no equals":        "task iter=0 proc=0 worker=0 origin=0 start=0 end\n",
	}
	for name, data := range cases {
		if _, err := ParseTraceLog(strings.NewReader(data)); err == nil {
			t.Errorf("case %q accepted", name)
		}
	}
	// Comments and blanks are fine.
	ok := "# header\n\ntask iter=0 proc=0 worker=0 origin=0 start=0 end=1\n"
	events, err := ParseTraceLog(strings.NewReader(ok))
	if err != nil || len(events) != 1 {
		t.Fatalf("comment handling: %v, %d events", err, len(events))
	}
}

func TestInstanceFromTraceRecoversInput(t *testing.T) {
	// The paper's pipeline: run the app, parse the log, synthesize the
	// LRP input. For an untouched run the synthesized instance must
	// equal the original.
	in := lrp.MustInstance([]int{5, 3, 7}, []float64{1.5, 4.25, 0.75})
	events := tracedRun(t, in, 2)
	got, err := InstanceFromTrace(events, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := range in.Tasks {
		if got.Tasks[p] != in.Tasks[p] {
			t.Fatalf("proc %d count %d, want %d", p, got.Tasks[p], in.Tasks[p])
		}
		if math.Abs(got.Weight[p]-in.Weight[p]) > 1e-12 {
			t.Fatalf("proc %d weight %v, want %v", p, got.Weight[p], in.Weight[p])
		}
	}
}

func TestInstanceFromTraceValidation(t *testing.T) {
	events := []TraceEvent{{Iter: 0, Proc: 5, StartMs: 0, EndMs: 1}}
	if _, err := InstanceFromTrace(events, 0, 2); err == nil {
		t.Error("out-of-range proc accepted")
	}
	if _, err := InstanceFromTrace(events, 9, 8); err == nil {
		t.Error("empty iteration accepted")
	}
	if _, err := InstanceFromTrace(events, 0, 0); err == nil {
		t.Error("zero procs accepted")
	}
	// Idle processes get zero tasks.
	got, err := InstanceFromTrace(events, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tasks[5] != 1 || got.Tasks[0] != 0 {
		t.Fatalf("counts %v", got.Tasks)
	}
}

func TestTraceAfterMigrationKeepsOrigins(t *testing.T) {
	in := lrp.MustInstance([]int{6, 0}, []float64{2, 1})
	r, err := New(Config{Workers: 1, LatencyMs: 0.5, PerTaskMs: 0.1}, in)
	if err != nil {
		t.Fatal(err)
	}
	p := lrp.NewPlan(in)
	p.Move(1, 0, 3)
	if _, err := r.ApplyPlan(p); err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	r.SetTracer(func(e TraceEvent) { events = append(events, e) })
	r.RunIteration()
	migrated := 0
	for _, e := range events {
		if e.Proc == 1 {
			if e.Origin != 0 {
				t.Fatalf("migrated task lost origin: %+v", e)
			}
			migrated++
			if e.StartMs < 0.5 {
				t.Fatalf("migrated task started before arrival: %+v", e)
			}
		}
	}
	if migrated != 3 {
		t.Fatalf("%d migrated executions, want 3", migrated)
	}
}

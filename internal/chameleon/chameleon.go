// Package chameleon is a deterministic simulator of the task-based
// MPI+OpenMP runtime the paper builds on (Klinkenberg et al.'s
// Chameleon): each process runs a set of compute workers plus one
// dedicated communication thread, applications execute in bulk-
// synchronous iterations, and task migration overlaps computation but
// costs communication time (latency + per-task transfer time).
//
// The experiments use it to evaluate migration plans end to end: the
// paper's R_imb/speedup metrics are computed from load values alone, but
// the runtime simulator additionally exposes the migration overhead that
// motivates the paper's ≤ k migration constraint (ablation A3 in
// DESIGN.md).
package chameleon

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/lrp"
)

// Config describes the simulated machine.
type Config struct {
	// Workers is the number of compute threads per process (the comm
	// thread is additional and implicit).
	Workers int
	// LatencyMs is the fixed cost of one migration message.
	LatencyMs float64
	// PerTaskMs is the added transfer cost per migrated task.
	PerTaskMs float64
	// LPT makes workers execute the longest available task first
	// (priority scheduling) instead of queue order; real task runtimes
	// approximate this to avoid a long task landing last on a worker.
	LPT bool
	// WorkersPerProc overrides Workers per process (heterogeneous
	// machines); empty means all processes use Workers.
	WorkersPerProc []int
}

// workersOf returns the worker count of process p.
func (c Config) workersOf(p int) int {
	if p < len(c.WorkersPerProc) && c.WorkersPerProc[p] > 0 {
		return c.WorkersPerProc[p]
	}
	return c.Workers
}

// DefaultConfig models a commodity cluster interconnect: 28-way nodes
// with one comm thread (27 workers, as on the paper's CoolMUC2 nodes),
// 100 us message latency, 50 us per migrated task.
func DefaultConfig() Config {
	return Config{Workers: 27, LatencyMs: 0.1, PerTaskMs: 0.05}
}

// Task is one unit of work owned by a process queue.
type Task struct {
	// Load is the execution time in milliseconds.
	Load float64
	// Origin is the process the task was originally assigned to.
	Origin int
	// Available is the simulation time at which the task may start
	// (non-zero for freshly migrated tasks still in flight).
	Available float64
}

// Runtime is one simulated application run: per-process task queues plus
// machine configuration.
type Runtime struct {
	cfg    Config
	queues [][]Task
	iter   int
	tracer func(TraceEvent)
}

// SetTracer installs a callback receiving one TraceEvent per executed
// task (nil disables tracing). Use WriteTraceLog to persist events in
// the textual execution-log format.
func (r *Runtime) SetTracer(fn func(TraceEvent)) { r.tracer = fn }

// New builds a runtime holding the instance's tasks in their original
// placement.
func New(cfg Config, in *lrp.Instance) (*Runtime, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("chameleon: Workers must be positive, got %d", cfg.Workers)
	}
	if cfg.LatencyMs < 0 || cfg.PerTaskMs < 0 {
		return nil, fmt.Errorf("chameleon: negative communication costs")
	}
	r := &Runtime{cfg: cfg, queues: make([][]Task, in.NumProcs())}
	for j := range r.queues {
		q := make([]Task, in.Tasks[j])
		for t := range q {
			q[t] = Task{Load: in.Weight[j], Origin: j}
		}
		r.queues[j] = q
	}
	return r, nil
}

// MigrationStats summarises the communication work of one ApplyPlan.
type MigrationStats struct {
	// Messages is the number of point-to-point migration messages.
	Messages int
	// Tasks is the total number of migrated tasks.
	Tasks int
	// CommTimeMs is the total communication time across all senders.
	CommTimeMs float64
	// LastArrivalMs is when the final migrated task became available.
	LastArrivalMs float64
}

// ApplyPlan executes a migration plan: for every off-diagonal entry
// X[i][j] > 0 one message carries that many tasks from j to i. Each
// sender's dedicated comm thread serializes its outgoing messages;
// arrival time is send-completion plus latency, and migrated tasks only
// become available at the destination from then on (computation
// overlaps communication, as in Chameleon). It returns an error if the
// plan is invalid for the current queues.
func (r *Runtime) ApplyPlan(p *lrp.Plan) (MigrationStats, error) {
	m := len(r.queues)
	if p.NumProcs() != m {
		return MigrationStats{}, fmt.Errorf("chameleon: plan covers %d procs, runtime has %d", p.NumProcs(), m)
	}
	var stats MigrationStats
	for j := 0; j < m; j++ {
		out := 0
		for i := 0; i < m; i++ {
			if i != j {
				out += p.X[i][j]
			}
		}
		if out > len(r.queues[j]) {
			return stats, fmt.Errorf("chameleon: plan moves %d tasks from proc %d holding %d", out, j, len(r.queues[j]))
		}
		sendClock := 0.0
		// Deterministic destination order.
		for i := 0; i < m; i++ {
			c := p.X[i][j]
			if i == j || c == 0 {
				continue
			}
			sendClock += r.cfg.LatencyMs + float64(c)*r.cfg.PerTaskMs
			arrival := sendClock
			// Detach the last c tasks from j and append to i.
			q := r.queues[j]
			moved := q[len(q)-c:]
			r.queues[j] = q[:len(q)-c]
			for _, t := range moved {
				t.Available = arrival
				r.queues[i] = append(r.queues[i], t)
			}
			stats.Messages++
			stats.Tasks += c
			if arrival > stats.LastArrivalMs {
				stats.LastArrivalMs = arrival
			}
		}
		stats.CommTimeMs += sendClock
	}
	return stats, nil
}

// IterStats reports the outcome of one BSP iteration.
type IterStats struct {
	// MakespanMs is the iteration's wall time: the slowest process
	// finish (every process waits at the synchronization point).
	MakespanMs float64
	// Finish[i] is process i's local finish time.
	Finish []float64
	// Busy[i] is the total compute time process i's workers performed.
	Busy []float64
	// IdleMs is the total worker idle time summed over processes
	// (waiting at the barrier or for migrated tasks).
	IdleMs float64
	// Imbalance is R_imb computed over per-process busy times.
	Imbalance float64
}

// workerSlot is one compute thread in the per-process scheduling heap.
type workerSlot struct {
	free float64
	id   int
}

type workerHeap []workerSlot

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h workerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)   { *h = append(*h, x.(workerSlot)) }
func (h *workerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// RunIteration simulates one computation phase: each process's workers
// greedily execute available tasks (list scheduling in availability
// order). Afterwards all tasks are considered local (Available reset),
// modelling the BSP synchronization point.
func (r *Runtime) RunIteration() IterStats {
	m := len(r.queues)
	stats := IterStats{Finish: make([]float64, m), Busy: make([]float64, m)}
	for p := 0; p < m; p++ {
		q := append([]Task(nil), r.queues[p]...)
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].Available != q[b].Available {
				return q[a].Available < q[b].Available
			}
			return r.cfg.LPT && q[a].Load > q[b].Load
		})
		h := make(workerHeap, r.cfg.workersOf(p))
		for w := range h {
			h[w] = workerSlot{id: w}
		}
		heap.Init(&h)
		finish := 0.0
		for _, t := range q {
			start := h[0].free
			if t.Available > start {
				start = t.Available
			}
			end := start + t.Load
			if r.tracer != nil {
				r.tracer(TraceEvent{
					Iter: r.iter, Proc: p, Worker: h[0].id,
					Origin: t.Origin, StartMs: start, EndMs: end,
				})
			}
			h[0].free = end
			heap.Fix(&h, 0)
			if end > finish {
				finish = end
			}
			stats.Busy[p] += t.Load
		}
		stats.Finish[p] = finish
		if finish > stats.MakespanMs {
			stats.MakespanMs = finish
		}
		// Mark tasks local for subsequent iterations.
		for i := range r.queues[p] {
			r.queues[p][i].Available = 0
		}
	}
	for p := 0; p < m; p++ {
		stats.IdleMs += float64(r.cfg.workersOf(p))*stats.MakespanMs - stats.Busy[p]
	}
	stats.Imbalance = lrp.Imbalance(stats.Busy)
	r.iter++
	return stats
}

// Run executes several BSP iterations and returns per-iteration stats.
// Migration effects (Available offsets) only apply to the first
// iteration; later iterations run on settled queues.
func (r *Runtime) Run(iterations int) []IterStats {
	out := make([]IterStats, 0, iterations)
	for i := 0; i < iterations; i++ {
		out = append(out, r.RunIteration())
	}
	return out
}

// QueueLengths returns the current number of tasks held by each process.
func (r *Runtime) QueueLengths() []int {
	out := make([]int, len(r.queues))
	for i, q := range r.queues {
		out[i] = len(q)
	}
	return out
}

// TotalLoad returns the summed load of all queued tasks.
func (r *Runtime) TotalLoad() float64 {
	total := 0.0
	for _, q := range r.queues {
		for _, t := range q {
			total += t.Load
		}
	}
	return total
}

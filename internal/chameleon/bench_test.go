package chameleon

import (
	"testing"

	"repro/internal/lrp"
)

func BenchmarkRunIteration(b *testing.B) {
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(1 + i%5)
	}
	in, err := lrp.UniformInstance(208, weights)
	if err != nil {
		b.Fatal(err)
	}
	r, err := New(DefaultConfig(), in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunIteration()
	}
}

func BenchmarkApplyPlan(b *testing.B) {
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = float64(1 + i%5)
	}
	in, err := lrp.UniformInstance(100, weights)
	if err != nil {
		b.Fatal(err)
	}
	plan := lrp.NewPlan(in)
	for j := 0; j < 8; j++ {
		plan.Move(j+8, j, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := New(DefaultConfig(), in)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := r.ApplyPlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

package chameleon_test

import (
	"fmt"

	"repro/internal/chameleon"
	"repro/internal/lrp"
)

// Two processes with very different loads: migrating half of the heavy
// queue overlaps computation with communication and cuts the makespan.
func ExampleRuntime() {
	in := lrp.MustInstance([]int{8, 0}, []float64{10, 1})
	cfg := chameleon.Config{Workers: 1, LatencyMs: 1, PerTaskMs: 0.5}

	baseline, _ := chameleon.New(cfg, in)
	before := baseline.RunIteration()

	rt, _ := chameleon.New(cfg, in)
	plan := lrp.NewPlan(in)
	plan.Move(1, 0, 4)
	rt.ApplyPlan(plan)
	after := rt.RunIteration()

	fmt.Printf("%.0f -> %.0f ms\n", before.MakespanMs, after.MakespanMs)
	// Output:
	// 80 -> 43 ms
}

package chameleon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lrp"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	in := lrp.MustInstance([]int{2, 2}, []float64{1, 1})
	if _, err := New(Config{Workers: 0}, in); err == nil {
		t.Fatal("accepted zero workers")
	}
	if _, err := New(Config{Workers: 1, LatencyMs: -1}, in); err == nil {
		t.Fatal("accepted negative latency")
	}
	r, err := New(Config{Workers: 2}, in)
	if err != nil {
		t.Fatal(err)
	}
	lens := r.QueueLengths()
	if lens[0] != 2 || lens[1] != 2 {
		t.Fatalf("QueueLengths = %v", lens)
	}
	if !almostEqual(r.TotalLoad(), 4) {
		t.Fatalf("TotalLoad = %v", r.TotalLoad())
	}
}

func TestSingleWorkerMakespanIsSumOfLoads(t *testing.T) {
	in := lrp.MustInstance([]int{3, 1}, []float64{2, 5})
	r, err := New(Config{Workers: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	st := r.RunIteration()
	if !almostEqual(st.Finish[0], 6) || !almostEqual(st.Finish[1], 5) {
		t.Fatalf("Finish = %v", st.Finish)
	}
	if !almostEqual(st.MakespanMs, 6) {
		t.Fatalf("Makespan = %v", st.MakespanMs)
	}
	if !almostEqual(st.Busy[0], 6) || !almostEqual(st.Busy[1], 5) {
		t.Fatalf("Busy = %v", st.Busy)
	}
	// Idle: proc 0 idles 0, proc 1 idles 1.
	if !almostEqual(st.IdleMs, 1) {
		t.Fatalf("Idle = %v", st.IdleMs)
	}
}

func TestMultiWorkerParallelism(t *testing.T) {
	// 4 equal tasks on 2 workers: makespan = 2 task lengths.
	in := lrp.MustInstance([]int{4}, []float64{3})
	r, err := New(Config{Workers: 2}, in)
	if err != nil {
		t.Fatal(err)
	}
	st := r.RunIteration()
	if !almostEqual(st.MakespanMs, 6) {
		t.Fatalf("Makespan = %v, want 6", st.MakespanMs)
	}
}

func TestApplyPlanMovesTasksAndCostsComm(t *testing.T) {
	in := lrp.MustInstance([]int{4, 0}, []float64{2, 1})
	r, err := New(Config{Workers: 1, LatencyMs: 1, PerTaskMs: 0.5}, in)
	if err != nil {
		t.Fatal(err)
	}
	p := lrp.NewPlan(in)
	p.Move(1, 0, 2)
	ms, err := r.ApplyPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Messages != 1 || ms.Tasks != 2 {
		t.Fatalf("stats = %+v", ms)
	}
	// One message with 2 tasks: arrival = 1 + 2*0.5 = 2.
	if !almostEqual(ms.LastArrivalMs, 2) {
		t.Fatalf("LastArrival = %v, want 2", ms.LastArrivalMs)
	}
	lens := r.QueueLengths()
	if lens[0] != 2 || lens[1] != 2 {
		t.Fatalf("queues after plan: %v", lens)
	}
	st := r.RunIteration()
	// Proc 0: two tasks of 2 -> 4. Proc 1: waits until 2, then 2 tasks
	// of load 2 (origin loads travel with the task) -> 6.
	if !almostEqual(st.Finish[0], 4) {
		t.Fatalf("Finish[0] = %v, want 4", st.Finish[0])
	}
	if !almostEqual(st.Finish[1], 6) {
		t.Fatalf("Finish[1] = %v, want 6 (2 arrival + 4 work)", st.Finish[1])
	}
}

func TestApplyPlanRejectsOverdraw(t *testing.T) {
	in := lrp.MustInstance([]int{1, 1}, []float64{1, 1})
	r, _ := New(Config{Workers: 1}, in)
	p := lrp.ZeroPlan(2)
	p.X[1][0] = 5 // more than proc 0 holds
	if _, err := r.ApplyPlan(p); err == nil {
		t.Fatal("accepted overdraw")
	}
	if _, err := r.ApplyPlan(lrp.ZeroPlan(3)); err == nil {
		t.Fatal("accepted wrong dimension")
	}
}

func TestMigrationImprovesImbalancedRun(t *testing.T) {
	// Loads 80 vs 0: moving half the tasks should improve makespan even
	// with communication overhead.
	in := lrp.MustInstance([]int{8, 0}, []float64{10, 1})
	cfg := Config{Workers: 1, LatencyMs: 0.1, PerTaskMs: 0.05}
	baseline, _ := New(cfg, in)
	base := baseline.RunIteration()

	r, _ := New(cfg, in)
	p := lrp.NewPlan(in)
	p.Move(1, 0, 4)
	if _, err := r.ApplyPlan(p); err != nil {
		t.Fatal(err)
	}
	st := r.RunIteration()
	if st.MakespanMs >= base.MakespanMs {
		t.Fatalf("migration did not help: %v >= %v", st.MakespanMs, base.MakespanMs)
	}
}

func TestExcessiveMigrationHurts(t *testing.T) {
	// Balanced input: any migration only adds overhead (the paper's
	// motivation for bounding k).
	in := lrp.MustInstance([]int{10, 10}, []float64{1, 1})
	baseline, _ := New(Config{Workers: 1, LatencyMs: 5, PerTaskMs: 1}, in)
	base := baseline.RunIteration()

	r, _ := New(Config{Workers: 1, LatencyMs: 5, PerTaskMs: 1}, in)
	p := lrp.NewPlan(in)
	p.Move(0, 1, 5)
	p.Move(1, 0, 5)
	if _, err := r.ApplyPlan(p); err != nil {
		t.Fatal(err)
	}
	st := r.RunIteration()
	if st.MakespanMs <= base.MakespanMs {
		t.Fatalf("gratuitous migration should hurt: %v <= %v", st.MakespanMs, base.MakespanMs)
	}
}

func TestSecondIterationSettles(t *testing.T) {
	in := lrp.MustInstance([]int{6, 0}, []float64{2, 1})
	r, _ := New(Config{Workers: 1, LatencyMs: 3, PerTaskMs: 1}, in)
	p := lrp.NewPlan(in)
	p.Move(1, 0, 3)
	if _, err := r.ApplyPlan(p); err != nil {
		t.Fatal(err)
	}
	stats := r.Run(2)
	// Iteration 2 has no in-flight tasks, so it can only be faster or
	// equal.
	if stats[1].MakespanMs > stats[0].MakespanMs+1e-9 {
		t.Fatalf("settled iteration slower: %v > %v", stats[1].MakespanMs, stats[0].MakespanMs)
	}
	if stats[1].Imbalance > 1e-9 {
		t.Fatalf("3/3 split of equal tasks should be balanced, got %v", stats[1].Imbalance)
	}
}

func TestMakespanLowerBoundProperty(t *testing.T) {
	// Property: makespan >= max(total load / (procs*workers), longest
	// task) and makespan >= per-proc busy / workers.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		tasks := make([]int, m)
		weights := make([]float64, m)
		for j := range tasks {
			tasks[j] = rng.Intn(12)
			weights[j] = 0.5 + rng.Float64()*4
		}
		in := lrp.MustInstance(tasks, weights)
		w := 1 + rng.Intn(4)
		r, err := New(Config{Workers: w}, in)
		if err != nil {
			return false
		}
		st := r.RunIteration()
		for p := 0; p < m; p++ {
			if st.Finish[p] < st.Busy[p]/float64(w)-1e-9 {
				return false
			}
		}
		longest := 0.0
		for j, n := range tasks {
			if n > 0 && weights[j] > longest {
				longest = weights[j]
			}
		}
		return st.MakespanMs >= longest-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConservationUnderRandomPlans(t *testing.T) {
	// Property: ApplyPlan conserves tasks and total load exactly.
	in := lrp.MustInstance([]int{5, 7, 3}, []float64{1, 2, 3})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := New(DefaultConfig(), in)
		if err != nil {
			return false
		}
		totalBefore := r.TotalLoad()
		p := lrp.NewPlan(in)
		for j := 0; j < 3; j++ {
			avail := in.Tasks[j]
			for i := 0; i < 3; i++ {
				if i == j || avail == 0 {
					continue
				}
				c := rng.Intn(avail + 1)
				p.Move(i, j, c)
				avail -= c
			}
		}
		if _, err := r.ApplyPlan(p); err != nil {
			return false
		}
		sum := 0
		for _, l := range r.QueueLengths() {
			sum += l
		}
		return sum == in.NumTasks() && almostEqual(r.TotalLoad(), totalBefore)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTSchedulingBeatsQueueOrder(t *testing.T) {
	// One long task buried behind short ones: queue order ends at
	// 9*1/3 + ... with the long task last; LPT runs it first.
	in := lrp.MustInstance([]int{10}, []float64{1})
	mk := func(lpt bool) float64 {
		r, err := New(Config{Workers: 3, LPT: lpt}, in)
		if err != nil {
			t.Fatal(err)
		}
		// Hand-craft a heterogeneous queue: 9 short + 1 long at the end.
		for i := range r.queues[0] {
			r.queues[0][i].Load = 1
		}
		r.queues[0][9].Load = 6
		return r.RunIteration().MakespanMs
	}
	fifo, lpt := mk(false), mk(true)
	if lpt >= fifo {
		t.Fatalf("LPT %v not better than FIFO %v", lpt, fifo)
	}
	if !almostEqual(lpt, 6) { // long runs in parallel with the 9 shorts
		t.Fatalf("LPT makespan %v, want 6", lpt)
	}
	if !almostEqual(fifo, 9) { // long waits behind 3 waves of shorts
		t.Fatalf("FIFO makespan %v, want 9", fifo)
	}
}

func TestHeterogeneousWorkers(t *testing.T) {
	// Proc 0 has 4 workers, proc 1 only 1: same queues, different
	// finish times.
	in := lrp.MustInstance([]int{4, 4}, []float64{3, 3})
	r, err := New(Config{Workers: 1, WorkersPerProc: []int{4, 1}}, in)
	if err != nil {
		t.Fatal(err)
	}
	st := r.RunIteration()
	if !almostEqual(st.Finish[0], 3) {
		t.Fatalf("4-worker proc finished at %v, want 3", st.Finish[0])
	}
	if !almostEqual(st.Finish[1], 12) {
		t.Fatalf("1-worker proc finished at %v, want 12", st.Finish[1])
	}
}

// Package benchfmt parses the text output of `go test -bench` into a
// machine-readable structure. The Go toolchain prints one line per
// benchmark — name, iteration count, then (value, unit) pairs — with
// pkg:/goos:/cpu: context lines interleaved when several packages run
// in one invocation. Custom metrics reported via b.ReportMetric (such
// as the simulated annealer's flips/s) appear as extra pairs and are
// kept verbatim under their unit name.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Pkg is the import path from the most recent pkg: context line
	// (empty if the stream had none).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with the -N GOMAXPROCS suffix
	// stripped; Procs carries the suffix (1 when absent).
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the
	// line: ns/op always, plus B/op, allocs/op, and any custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is a parsed benchmark stream.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// ReadJSON reads a Report previously serialized to JSON (a BENCH_*.json
// artifact written by cmd/benchjson). Unknown fields are rejected so a
// mangled or wrong-schema file fails loudly instead of diffing as empty.
func ReadJSON(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	rep := &Report{}
	if err := dec.Decode(rep); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return rep, nil
}

// Parse reads a `go test -bench` text stream. Non-benchmark lines
// (PASS, ok, test log output) are skipped; a line that starts like a
// benchmark but does not parse is an error, so silent corruption of a
// metrics pipeline cannot pass for an empty run.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: line %d: %w", ln, err)
			}
			res.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return rep, nil
}

func parseLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, fmt.Errorf("truncated benchmark line %q", line)
	}
	name, procs := splitProcs(f[0])
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	res := Result{
		Name:       name,
		Procs:      procs,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q in %q: %w", rest[i], line, err)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, nil
}

// splitProcs strips the trailing -N GOMAXPROCS suffix the bench runner
// appends when GOMAXPROCS > 1. A trailing -N that is part of the
// benchmark's own name (e.g. a sub-benchmark "/n-4") is inseparable
// from the suffix in text form; like benchstat, the last -N wins.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

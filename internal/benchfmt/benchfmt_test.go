package benchfmt

import (
	"strings"
	"testing"
)

// canned output from `go test -bench=. -benchtime=1x ./internal/sa
// ./internal/cqm` — two packages, one custom metric, mixed noise lines.
const twoPackages = `goos: linux
goarch: amd64
pkg: repro/internal/sa
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnnealSweeps      	       1	   1160323 ns/op	  11040841 flips/s
BenchmarkPortfolio4        	       1	   8773088 ns/op
PASS
ok  	repro/internal/sa	0.028s
goos: linux
goarch: amd64
pkg: repro/internal/cqm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvaluatorFlipDelta   	       1	       808.0 ns/op
ok  	repro/internal/cqm	0.057s
`

func TestParseTwoPackages(t *testing.T) {
	rep, err := Parse(strings.NewReader(twoPackages))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("context = %q/%q, want linux/amd64", rep.GoOS, rep.GoArch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	anneal := rep.Benchmarks[0]
	if anneal.Pkg != "repro/internal/sa" || anneal.Name != "BenchmarkAnnealSweeps" {
		t.Fatalf("first result = %+v", anneal)
	}
	if anneal.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", anneal.Iterations)
	}
	if got := anneal.Metrics["ns/op"]; got != 1160323 {
		t.Fatalf("ns/op = %g", got)
	}
	if got := anneal.Metrics["flips/s"]; got != 11040841 {
		t.Fatalf("flips/s = %g — custom metric lost", got)
	}
	// pkg context must switch with the second package's pkg: line
	if last := rep.Benchmarks[2]; last.Pkg != "repro/internal/cqm" {
		t.Fatalf("last result pkg = %q, want repro/internal/cqm", last.Pkg)
	}
	if got := rep.Benchmarks[2].Metrics["ns/op"]; got != 808.0 {
		t.Fatalf("fractional ns/op = %g, want 808.0", got)
	}
}

func TestParseProcsSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkSolve-8 	 4	 250 ns/op\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := rep.Benchmarks[0]
	if r.Name != "BenchmarkSolve" || r.Procs != 8 {
		t.Fatalf("got name %q procs %d, want BenchmarkSolve / 8", r.Name, r.Procs)
	}
	if r.Iterations != 4 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
}

func TestParseNoSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBuild 	 1	 99 ns/op\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r := rep.Benchmarks[0]; r.Name != "BenchmarkBuild" || r.Procs != 1 {
		t.Fatalf("got %+v, want BenchmarkBuild / procs 1", r)
	}
}

func TestParseAllocMetrics(t *testing.T) {
	rep, err := Parse(strings.NewReader(
		"BenchmarkX-2 	 10	 5.5 ns/op	 128 B/op	 3 allocs/op\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := rep.Benchmarks[0].Metrics
	if m["B/op"] != 128 || m["allocs/op"] != 3 {
		t.Fatalf("alloc metrics = %v", m)
	}
}

func TestParseRejectsCorruptLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkHalf\n",                // no iteration count
		"BenchmarkOdd 	 1	 42\n",         // value without unit
		"BenchmarkNaN 	 one	 42 ns/op\n", // non-numeric iterations
		"BenchmarkVal 	 1	 fast ns/op\n", // non-numeric value
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("Parse accepted corrupt line %q", bad)
		}
	}
}

func TestParseEmptyStream(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok  	repro	0.01s\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v, want none", rep.Benchmarks)
	}
	if rep.Benchmarks == nil {
		t.Fatal("Benchmarks must be non-nil so JSON renders [] not null")
	}
}

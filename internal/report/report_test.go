package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Demo", "Algorithm", "Value")
	tb.AddRow("Greedy", "351.8")
	tb.AddRow("Q_CQM1_k1", "60.4")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Algorithm") {
		t.Fatalf("header %q", lines[1])
	}
	// Columns aligned: "Value" starts at the same offset in all rows.
	off := strings.Index(lines[1], "Value")
	if !strings.HasPrefix(lines[3][off:], "351.8") || !strings.HasPrefix(lines[4][off:], "60.4") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRowAndPanicOnLong(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	if !strings.Contains(tb.Render(), "only") {
		t.Fatal("short row lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("long row did not panic")
		}
	}()
	tb.AddRow("1", "2", "3")
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("CSV = %q", csv)
	}
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Fatalf("CSV header = %q", csv)
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5:       "5",
		5.19905: "5.199", // 5 significant digits, trailing zeros trimmed
		0.00007: "7e-05",
		6447:    "6447",
	}
	for v, want := range cases {
		if got := Fmt(v); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFigureTableAndChart(t *testing.T) {
	f := NewFigure("Fig. 3 (left)", "imbalance case", "R_imb", []string{"Imb.0", "Imb.1", "Imb.2"})
	f.Add("Greedy", []float64{0, 0.1, 0.2})
	f.Add("Q_CQM1_k1", []float64{0, 0.15, 0.05})
	tb := f.Table()
	if tb.NumRows() != 2 {
		t.Fatalf("figure table rows = %d", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"Imb.0", "Greedy", "0.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure table missing %q:\n%s", want, out)
		}
	}
	chart := f.Chart(8)
	for _, want := range []string{"Fig. 3 (left)", "*", "o", "Greedy", "Q_CQM1_k1"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("chart missing %q:\n%s", want, chart)
		}
	}
	// Same number of grid rows as requested height.
	gridLines := 0
	for _, line := range strings.Split(chart, "\n") {
		if strings.Contains(line, "|") {
			gridLines++
		}
	}
	if gridLines != 8 {
		t.Fatalf("chart has %d grid lines, want 8:\n%s", gridLines, chart)
	}
}

func TestFigureChartDegenerate(t *testing.T) {
	f := NewFigure("Empty", "x", "y", nil)
	if !strings.Contains(f.Chart(5), "no data") {
		t.Fatal("empty figure should render a placeholder")
	}
	// Constant series must not divide by zero.
	g := NewFigure("Const", "x", "y", []string{"a", "b"})
	g.Add("flat", []float64{3, 3})
	if out := g.Chart(5); !strings.Contains(out, "flat") {
		t.Fatalf("constant chart broken:\n%s", out)
	}
}

func TestFigureAddPanicsOnLengthMismatch(t *testing.T) {
	f := NewFigure("t", "x", "y", []string{"a"})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched series")
		}
	}()
	f.Add("bad", []float64{1, 2})
}

func TestTruncate(t *testing.T) {
	if truncate("abcdef", 4) != "abc…" {
		t.Fatalf("truncate = %q", truncate("abcdef", 4))
	}
	if truncate("ab", 4) != "ab" {
		t.Fatal("short string modified")
	}
	if truncate("abc", 1) != "a" {
		t.Fatal("n=1 broken")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Caption", "A", "B")
	tb.AddRow("x|y", "2")
	md := tb.Markdown()
	for _, want := range []string{"**Caption**", "| A | B |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// Package report renders experiment results as aligned text tables, CSV,
// and ASCII charts — the forms in which this repository regenerates the
// paper's tables and figures.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled table with a fixed header.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error surfaced at render time via a panic (tables are
// programmer-constructed).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// CSV returns the table in CSV form (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Fmt formats a float compactly for table cells: up to 5 significant
// digits, trimming trailing zeros.
func Fmt(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// Series is one named line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure holds the data of one paper figure: categorical x labels and
// one series per method.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string, x []string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel, X: append([]string(nil), x...)}
}

// Add appends a series; it panics if the length disagrees with the
// x-axis (figures are programmer-constructed).
func (f *Figure) Add(name string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("report: series %q has %d points, figure has %d x values", name, len(y), len(f.X)))
	}
	f.Series = append(f.Series, Series{Name: name, Y: append([]float64(nil), y...)})
}

// Table renders the figure's data as a table with one row per series —
// the numeric form of the figure.
func (f *Figure) Table() *Table {
	headers := append([]string{f.YLabel + " \\ " + f.XLabel}, f.X...)
	t := NewTable(f.Title, headers...)
	for _, s := range f.Series {
		cells := make([]string, 0, len(s.Y)+1)
		cells = append(cells, s.Name)
		for _, v := range s.Y {
			cells = append(cells, Fmt(v))
		}
		t.AddRow(cells...)
	}
	return t
}

// seriesMarks are the glyphs used to draw series in ASCII charts.
var seriesMarks = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Chart renders an ASCII line chart of the figure, height rows tall
// (minimum 4). Each series uses a distinct glyph; a legend follows.
func (f *Figure) Chart(height int) string {
	if height < 4 {
		height = 4
	}
	if len(f.Series) == 0 || len(f.X) == 0 {
		return f.Title + "\n(no data)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	colW := 6
	width := colW * len(f.X)
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, v := range s.Y {
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			col := xi*colW + colW/2
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else if grid[row][col] != mark {
				grid[row][col] = '?'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%s vs %s)\n", f.Title, f.YLabel, f.XLabel)
	for r, line := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10s |%s\n", Fmt(yVal), string(line))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", 12))
	for _, x := range f.X {
		fmt.Fprintf(&b, "%-*s", colW, truncate(x, colW-1))
	}
	b.WriteByte('\n')
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s", seriesMarks[si%len(seriesMarks)], s.Name)
		if si != len(f.Series)-1 {
			b.WriteString("   ")
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// Markdown renders the table as a GitHub-flavored Markdown table (the
// format EXPERIMENTS.md uses), with the title as a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = "---"
	}
	row(rule)
	for _, r := range t.rows {
		row(r)
	}
	return b.String()
}

package hedge

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/obs"
	"repro/internal/solve"
)

func model() *cqm.Model {
	m := cqm.New()
	v := m.AddBinary("x")
	m.AddObjectiveLinear(v, 1)
	return m
}

// honest returns a correctly attested result for x.
func honest(m *cqm.Model, x []bool) *solve.Result {
	return &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}
}

// blocking waits for ctx cancellation, then reports it on cancelled.
type blocking struct {
	name      string
	cancelled chan struct{}
}

func newBlocking(name string) *blocking {
	return &blocking{name: name, cancelled: make(chan struct{})}
}

func (b *blocking) Name() string { return b.name }

func (b *blocking) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	<-ctx.Done()
	close(b.cancelled)
	return nil, ctx.Err()
}

// instant returns a fixed (result, error) immediately.
type instant struct {
	name string
	res  *solve.Result
	err  error
}

func (s *instant) Name() string { return s.name }

func (s *instant) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	r := *s.res
	return &r, nil
}

// crashing panics on every solve.
type crashing struct{ name string }

func (s *crashing) Name() string { return s.name }

func (s *crashing) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	panic("worker crash")
}

// waiting polls ready() before returning its result — used to pin the
// order in which the race processes outcomes (the winner only reports
// once the loser's fate is on record).
type waiting struct {
	name  string
	ready func() bool
	res   *solve.Result
}

func (s *waiting) Name() string { return s.name }

func (s *waiting) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	for !s.ready() {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	r := *s.res
	return &r, nil
}

// TestStaggeredStartsAndLoserCancellation pins the hedge schedule on
// the fake clock: launches at exactly 0, Delay, 2*Delay, the winner's
// result is returned, and both blocked losers observe cancellation.
func TestStaggeredStartsAndLoserCancellation(t *testing.T) {
	m := model()
	clk := solve.NewFake(time.Unix(0, 0))
	b0 := newBlocking("slow0")
	b1 := newBlocking("slow1")
	win := &instant{name: "fast", res: honest(m, []bool{false})}
	const delay = 40 * time.Millisecond
	s, err := New(Options{Delay: delay}, b0, b1, win)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 0 {
		t.Fatalf("winner result = %+v", res)
	}
	if res.Stats.Hedged != 2 {
		t.Fatalf("Stats.Hedged = %d, want 2", res.Stats.Hedged)
	}

	starts := s.LastStarts()
	want := []time.Duration{0, delay, 2 * delay}
	if len(starts) != len(want) {
		t.Fatalf("LastStarts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("launch %d at %v, want %v (all: %v)", i, starts[i], want[i], starts)
		}
	}

	// Losers are cancelled, not leaked: both blocked backends must see
	// ctx.Done.
	for _, b := range []*blocking{b0, b1} {
		select {
		case <-b.cancelled:
		case <-time.After(5 * time.Second):
			t.Fatalf("loser %s never saw cancellation", b.name)
		}
	}

	tallies := s.Tallies()
	if tallies[2].Wins != 1 || tallies[2].Starts != 1 {
		t.Fatalf("winner tally = %+v", tallies[2])
	}
	if tallies[0].Starts != 1 || tallies[1].Starts != 1 {
		t.Fatalf("loser tallies = %+v %+v", tallies[0], tallies[1])
	}
}

// TestRejectedReplyLosesRace proves a corrupted (claim-inconsistent)
// reply cannot win: the primary's reply flunks verification and the
// hedge serves the honest result instead.
func TestRejectedReplyLosesRace(t *testing.T) {
	m := model()
	corrupt := &instant{name: "corrupt", res: &solve.Result{
		Sample: []bool{true}, Objective: -99, Feasible: true, // lies about the objective
	}}
	var s *Solver
	good := &waiting{name: "good", res: honest(m, []bool{false}),
		ready: func() bool { return s.Tallies()[0].Rejects == 1 }}
	reg := obs.NewRegistry()
	s, err := New(Options{Delay: time.Millisecond}, corrupt, good)
	if err != nil {
		t.Fatal(err)
	}
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk), solve.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 || !res.Feasible {
		t.Fatalf("wrong winner: %+v", res)
	}
	if res.Stats.HedgeRejects != 1 {
		t.Fatalf("Stats.HedgeRejects = %d, want 1", res.Stats.HedgeRejects)
	}
	tallies := s.Tallies()
	if tallies[0].Rejects != 1 {
		t.Fatalf("corrupt backend tally = %+v", tallies[0])
	}
	if tallies[1].Wins != 1 {
		t.Fatalf("good backend tally = %+v", tallies[1])
	}
	if got := reg.Counter("hedge.backend.corrupt.rejects").Value(); got != 1 {
		t.Fatalf("rejects counter = %d, want 1", got)
	}
}

// TestPanickingBackendLosesRace proves a crashing backend merely loses.
func TestPanickingBackendLosesRace(t *testing.T) {
	m := model()
	var s *Solver
	good := &waiting{name: "good", res: honest(m, []bool{false}),
		ready: func() bool { return s.Tallies()[0].Panics == 1 }}
	s, err := New(Options{Delay: time.Millisecond}, &crashing{name: "boom"}, good)
	if err != nil {
		t.Fatal(err)
	}
	clk := solve.NewFake(time.Unix(0, 0))
	reg := obs.NewRegistry()
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk), solve.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("winner not feasible: %+v", res)
	}
	if res.Stats.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", res.Stats.Panics)
	}
	tallies := s.Tallies()
	if tallies[0].Panics != 1 || tallies[0].Errors != 1 {
		t.Fatalf("crashing backend tally = %+v", tallies[0])
	}
	// The same tallies are published as stable counters — the one
	// source of truth the router and /metrics read.
	if got := reg.Counter("hedge.backend.boom.errors").Value(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
	if got := reg.Counter("hedge.backend.boom.panics").Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}

// TestAllFailed proves the race surfaces a joined, errors.Is-able error
// when nothing usable comes back.
func TestAllFailed(t *testing.T) {
	m := model()
	s, err := New(Options{Delay: time.Millisecond},
		&instant{name: "broken", err: errors.New("cloud down")},
		&crashing{name: "boom"},
	)
	if err != nil {
		t.Fatal(err)
	}
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk))
	if res != nil {
		t.Fatalf("got a result from an all-failed race: %+v", res)
	}
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
	if !errors.Is(err, solve.ErrPanic) {
		t.Fatalf("joined error lost the panic cause: %v", err)
	}
}

// TestInfeasibleFallback: when every backend is honest but infeasible,
// the best verified result is still returned rather than an error.
func TestInfeasibleFallback(t *testing.T) {
	m := model()
	var e cqm.LinExpr
	e.Offset = 1
	m.AddConstraint("impossible", e, cqm.Eq, 2) // 1 == 2: never satisfiable
	worse := &instant{name: "worse", res: honest(m, []bool{true})}
	better := &instant{name: "better", res: honest(m, []bool{false})}
	s, err := New(Options{Delay: time.Millisecond}, worse, better)
	if err != nil {
		t.Fatal(err)
	}
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := s.Solve(context.Background(), m, solve.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("impossible model reported feasible")
	}
	if res.Objective != 0 {
		t.Fatalf("fallback picked objective %v, want the better (0)", res.Objective)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
	if _, err := New(Options{}, nil); err == nil {
		t.Fatal("New with a nil backend succeeded")
	}
	s, err := New(Options{Name: "custom"}, &crashing{name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "custom" {
		t.Fatalf("Name() = %q", s.Name())
	}
	if _, err := s.Solve(context.Background(), nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

// Package hedge races multiple solver backends against each other with
// staggered starts — the tail-latency hedging pattern applied to the
// rebalancing pipeline's solve step. The primary backend is launched
// immediately; each additional hedge fires after a configurable delay
// on the injected solve.Clock, or immediately once an earlier backend
// fails, panics, or returns a reply that flunks independent
// verification. The first verified-feasible result wins the race and
// every loser is cancelled; verified-but-infeasible results are held as
// a fallback in case nobody does better.
//
// The race trusts nothing: every backend runs behind solve.Protected
// (a panicking backend merely loses), and every candidate reply is
// re-checked by internal/verify before it can win. A corrupted or
// dishonest reply is therefore indistinguishable, from the caller's
// point of view, from a slow one — it just loses.
//
// Per-backend win/loss/reject/panic tallies accumulate across solves
// and are mirrored into the obs registry under "hedge.*", so a fleet
// operator can see which backend actually serves the traffic and which
// one only burns cycles.
package hedge

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cqm"
	"repro/internal/solve"
	"repro/internal/verify"
)

// ErrAllFailed marks a race in which every backend errored out or was
// rejected by verification; no usable result exists. Match with
// errors.Is — the returned error joins the per-backend causes.
var ErrAllFailed = errors.New("hedge: all backends failed or were rejected")

// DefaultDelay is the stagger between backend launches when Options
// leaves Delay zero.
const DefaultDelay = 50 * time.Millisecond

// Options shapes a hedged race.
type Options struct {
	// Delay is the stagger between consecutive backend launches,
	// measured on the injected Clock (DefaultDelay when <= 0). A
	// backend failure launches the next hedge immediately regardless.
	Delay time.Duration
	// Verify tunes the independent verification every candidate reply
	// must pass before it can win the race.
	Verify verify.Options
	// Name overrides the solver name ("hedge" when empty).
	Name string
}

// Tally is one backend's cumulative race record.
type Tally struct {
	// Backend is the backend's Name().
	Backend string
	// Starts counts races in which the backend was launched.
	Starts int
	// Wins counts races the backend's verified result won.
	Wins int
	// Rejects counts replies discarded by independent verification.
	Rejects int
	// Errors counts failed attempts (panics included).
	Errors int
	// Panics counts recovered panics (a subset of Errors).
	Panics int
}

// Solver races its backends and implements solve.Solver. Safe for
// concurrent use; tallies aggregate across solves.
type Solver struct {
	name     string
	delay    time.Duration
	vopt     verify.Options
	backends []solve.Solver

	mu      sync.Mutex
	tallies []Tally
	starts  []time.Duration // launch offsets of the most recent race
}

// New builds a hedged solver over the given backends, in launch order
// (the first is the primary). Every backend is wrapped in
// solve.Protected, so a panic loses the race instead of crashing the
// process. At least one backend is required.
func New(opt Options, backends ...solve.Solver) (*Solver, error) {
	if len(backends) == 0 {
		return nil, errors.New("hedge: no backends")
	}
	s := &Solver{
		name:     opt.Name,
		delay:    opt.Delay,
		vopt:     opt.Verify,
		backends: make([]solve.Solver, len(backends)),
		tallies:  make([]Tally, len(backends)),
	}
	if s.name == "" {
		s.name = "hedge"
	}
	if s.delay <= 0 {
		s.delay = DefaultDelay
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("hedge: backend %d is nil", i)
		}
		s.backends[i] = solve.Protected(b)
		s.tallies[i].Backend = b.Name()
	}
	return s, nil
}

// Name implements solve.Solver.
func (s *Solver) Name() string { return s.name }

// Tallies returns a copy of the cumulative per-backend race records.
func (s *Solver) Tallies() []Tally {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Tally, len(s.tallies))
	copy(out, s.tallies)
	return out
}

// LastStarts returns the launch offsets (relative to the race start, on
// the injected Clock) of the backends launched in the most recent
// Solve, in launch order. Tests use it to pin the stagger schedule.
func (s *Solver) LastStarts() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, len(s.starts))
	copy(out, s.starts)
	return out
}

// outcome is one backend's race result.
type outcome struct {
	idx int
	res *solve.Result
	err error
}

// Solve implements solve.Solver: it races the backends and returns the
// first verified-feasible result, falling back to the best
// verified-infeasible one, or ErrAllFailed when every backend erred or
// was rejected. Losers are cancelled as soon as a winner is decided.
func (s *Solver) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("hedge: nil model")
	}
	cfg := solve.NewConfig(opts...)
	clk := cfg.Clock
	start := clk.Now()

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every still-running loser on return

	// Buffered so losers finishing after the race is decided can post
	// their outcome and exit without a reader — no goroutine leaks.
	outcomes := make(chan outcome, len(s.backends))
	// timer signals that the current stagger delay elapsed. Under the
	// fake clock Sleep advances time instantly, so launch offsets are
	// exactly 0, Delay, 2*Delay, ... — deterministic in tests.
	timer := make(chan struct{}, 1)
	armTimer := func() {
		go func() {
			if clk.Sleep(raceCtx, s.delay) == nil {
				select {
				case timer <- struct{}{}:
				default:
				}
			}
		}()
	}

	launched := 0
	offsets := make([]time.Duration, 0, len(s.backends))
	launch := func() {
		idx := launched
		launched++
		off := clk.Since(start)
		offsets = append(offsets, off)
		s.mu.Lock()
		s.tallies[idx].Starts++
		s.mu.Unlock()
		if cfg.Obs != nil {
			cfg.Obs.Counter("hedge.backend." + s.backends[idx].Name() + ".starts").Inc()
			cfg.Obs.Emit("hedge.launch", map[string]any{
				"backend":   s.backends[idx].Name(),
				"offset_ms": float64(off) / float64(time.Millisecond),
			})
		}
		go func() {
			res, err := s.backends[idx].Solve(raceCtx, m, opts...)
			outcomes <- outcome{idx: idx, res: res, err: err}
		}()
		if launched < len(s.backends) {
			armTimer()
		}
	}
	launch() // primary starts immediately

	var (
		stats    solve.Stats
		fallback *solve.Result // best verified-but-infeasible result
		causes   []error
		done     int
	)
	finish := func(idx int, res *solve.Result) (*solve.Result, error) {
		s.mu.Lock()
		if idx >= 0 {
			s.tallies[idx].Wins++
		}
		s.starts = offsets
		s.mu.Unlock()
		if res != nil {
			st := res.Stats
			st.Wall = clk.Since(start)
			st.Hedged += launched - 1
			st.HedgeRejects += stats.HedgeRejects
			st.Panics += stats.Panics
			res.Stats = st
			if idx >= 0 && cfg.Obs != nil {
				cfg.Obs.Counter("hedge.backend." + s.backends[idx].Name() + ".wins").Inc()
			}
			cfg.Observe(s.name, res.Stats)
			return res, nil
		}
		stats.Wall = clk.Since(start)
		stats.Hedged = launched - 1
		cfg.Observe(s.name, stats)
		return nil, fmt.Errorf("%w: %w", ErrAllFailed, errors.Join(causes...))
	}

	for {
		select {
		case <-timer:
			if launched < len(s.backends) {
				launch()
			}
			continue
		case o := <-outcomes:
			done++
			name := s.backends[o.idx].Name()
			if o.err != nil {
				s.mu.Lock()
				s.tallies[o.idx].Errors++
				panicked := errors.Is(o.err, solve.ErrPanic)
				if panicked {
					s.tallies[o.idx].Panics++
					stats.Panics++
				}
				s.mu.Unlock()
				// Published under the same stable names the router and
				// /metrics read: hedge.backend.<name>.{errors,panics}.
				if cfg.Obs != nil {
					cfg.Obs.Counter("hedge.backend." + name + ".errors").Inc()
					if panicked {
						cfg.Obs.Counter("hedge.backend." + name + ".panics").Inc()
					}
				}
				causes = append(causes, fmt.Errorf("%s: %w", name, o.err))
			} else {
				rep := verify.Sample(m, o.res, s.vopt)
				switch {
				case !rep.Ok():
					// Corrupted or dishonest reply: it loses, and the
					// violation that sank it goes on record.
					stats.HedgeRejects++
					s.mu.Lock()
					s.tallies[o.idx].Rejects++
					s.mu.Unlock()
					if cfg.Obs != nil {
						cfg.Obs.Counter("hedge.backend." + name + ".rejects").Inc()
						cfg.Obs.Emit("hedge.reject", map[string]any{
							"backend":   name,
							"violation": rep.Violations[0].String(),
						})
					}
					causes = append(causes, fmt.Errorf("%s: %w", name, rep.Err()))
				case rep.Feasible:
					return finish(o.idx, o.res)
				default:
					// Honest but infeasible: hold as a fallback, keep
					// racing for a feasible result.
					if fallback == nil || o.res.Objective < fallback.Objective {
						fallback = o.res
					}
					causes = append(causes, fmt.Errorf("%s: verified but infeasible (objective %g)", name, o.res.Objective))
				}
			}
			if done == len(s.backends) {
				if fallback != nil {
					return finish(-1, fallback)
				}
				return finish(-1, nil)
			}
			// A decided non-winning outcome escalates the race: launch
			// the next hedge now instead of waiting out the stagger.
			if launched < len(s.backends) {
				launch()
			}
		}
	}
}

package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Backend == nil {
		opt.Backend = &instantBackend{}
	}
	if opt.Clock == nil {
		opt.Clock = fakeClock(t)
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// TestHTTPSolveLifecycle: POST /solve → 202 + id, poll /jobs/{id} to
// done, plan and metrics in the payload.
func TestHTTPSolveLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{NoRateLimit: true})
	resp, out := postSolve(t, ts, `{"tasks":[4,4,4],"weights":[8,2,2],"budget_ms":1000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /solve status = %d, want 202 (%v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	r2, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var job Job
	if err := json.NewDecoder(r2.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusDone {
		t.Fatalf("job status = %s (err %q), want done", job.Status, job.Error)
	}
	if len(job.Plan) != 3 || job.Metrics == nil {
		t.Fatalf("job payload incomplete: plan %d rows, metrics %v", len(job.Plan), job.Metrics)
	}
}

// TestHTTPBadRequests: malformed and invalid bodies are 400 with an
// error message; unknown jobs are 404.
func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{NoRateLimit: true})
	for _, body := range []string{
		`{`,                       // truncated
		`{"tasks":[4,4]} trailer`, // trailing garbage
		`{"tasks":[4,4],"bogus":1}`,
		`{"tasks":[4]}`,
		`{"tasks":[4,3]}`, // non-uniform
	} {
		resp, out := postSolve(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q status = %d, want 400", body, resp.StatusCode)
		}
		if out["error"] == "" {
			t.Fatalf("body %q: no error message", body)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPOverloadIs429: token-bucket rejection surfaces as 429.
func TestHTTPOverloadIs429(t *testing.T) {
	_, ts := newTestServer(t, Options{Rate: 0.001, Burst: 1})
	if resp, out := postSolve(t, ts, `{"tasks":[4,4]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first request status = %d (%v)", resp.StatusCode, out)
	}
	resp, out := postSolve(t, ts, `{"tasks":[4,4]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overflow status = %d, want 429 (%v)", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "rate limit") {
		t.Fatalf("429 error = %q, want rate limit cause", msg)
	}
}

// TestHTTPHealthAndMetrics: /healthz flips to 503 on drain; /metrics
// renders a non-empty text snapshot.
func TestHTTPHealthAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{NoRateLimit: true})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	postSolve(t, ts, `{"tasks":[4,4]}`)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "serve.submitted") {
		t.Fatalf("/metrics missing serve counters:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp2.StatusCode)
	}
	resp3, out := postSolve(t, ts, `{"tasks":[4,4]}`)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST status = %d, want 503 (%v)", resp3.StatusCode, out)
	}
}

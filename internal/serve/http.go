package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the daemon's HTTP API over s:
//
//	GET  /healthz   — liveness: 200 {"status":"ok",...} or 503 while draining
//	POST /solve     — submit a Request; 202 {job} on admission,
//	                  400 invalid, 429 overload/rate/budget, 503 draining
//	GET  /jobs/{id} — job snapshot; 404 unknown id, 410 evicted by
//	                  retention (the id existed; its record is gone)
//	GET  /metrics   — plain-text snapshot of the obs registry
//
// Responses are JSON except /metrics. Admission errors carry their
// typed cause in the "error" field so clients can distinguish
// back-off-and-retry (429) from go-away (503).
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("POST /solve", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, s.opt.Limits.withDefaults().MaxBodyBytes)
		req, err := DecodeRequest(body, s.opt.Limits)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, lookupStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(s.Obs().Snapshot().Text())) //nolint:errcheck
	})
	return mux
}

// lookupStatus distinguishes a job the server once held (evicted by
// retention, 410 Gone — the id is real, its record is not coming
// back) from an id it never issued (404). The ErrEvicted check runs
// first: ErrEvicted wraps ErrUnknownJob, so the order matters.
func lookupStatus(err error) int {
	if errors.Is(err, ErrEvicted) {
		return http.StatusGone
	}
	return http.StatusNotFound
}

// statusFor maps typed admission errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/solve"
)

// BenchmarkServeRequests measures end-to-end requests/sec through the
// in-process HTTP handler with the exact backend: POST /solve, wait for
// completion, GET /jobs/{id}. This is the serving-layer overhead figure
// for BENCH_7.json — admission, queueing, pipeline, and verification
// included.
func BenchmarkServeRequests(b *testing.B) {
	s, err := New(Options{
		Backend:     exact.NewEngine(),
		NoRateLimit: true,
		Workers:     4,
		QueueDepth:  256,
		MaxJobs:     1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	}()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client := ts.Client()

	body := `{"tasks":[4,4,4],"weights":[8,2,2],"budget_ms":2000}`
	post := func() string {
		resp, err := client.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("POST /solve status = %d", resp.StatusCode)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		return out.ID
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		id := post()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		j, err := s.Wait(ctx, id)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if j.Status != StatusDone {
			b.Fatalf("job %s status = %s (err %q)", id, j.Status, j.Error)
		}
		resp, err := client.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "req/s")
	}
}

// BenchmarkServeAdmission isolates the admission path — validate,
// rate-limit, enqueue-reject — with a full queue, measuring the cost of
// shedding one request under overload.
func BenchmarkServeAdmission(b *testing.B) {
	bk := newBlocking()
	s, err := New(Options{
		Backend: bk, NoRateLimit: true,
		QueueDepth: 1, Workers: 1, DefaultBudget: time.Hour,
		Clock: solve.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		close(bk.release)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	}()
	// Fill the single queue slot and occupy the worker.
	if _, err := s.Submit(req("bench")); err != nil {
		b.Fatal(err)
	}
	<-bk.started
	if _, err := s.Submit(req("bench")); err != nil {
		b.Fatal(err)
	}

	r := req("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(r); err == nil {
			b.Fatal("expected overload rejection with a full queue")
		}
	}
}

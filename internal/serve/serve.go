// Package serve is the rebalancing-as-a-service layer: a long-running,
// multi-tenant solve server over the repository's solve → verify →
// route stack. Where everything below this package answers one
// invocation, serve answers traffic — and traffic brings the
// production concerns this package owns:
//
//   - Bounded admission: a fixed-depth job queue that rejects with a
//     typed ErrOverload when full instead of queuing unboundedly, so
//     memory and latency stay bounded under any load.
//   - Tenant isolation: per-tenant token-bucket rate limits and
//     cumulative solve-time budgets, both measured on the injected
//     solve.Clock, so one noisy tenant cannot starve the rest and the
//     schedules are deterministic under the fake clock in tests.
//   - Deadlines end to end: every request carries a solve budget that
//     becomes a clock deadline on the solver and a context deadline on
//     the pipeline; a job that expires while still queued fails with a
//     typed context.DeadlineExceeded instead of running late for
//     nobody.
//   - Graceful drain: on shutdown the server finishes in-flight
//     solves, rejects queued and new work with typed errors, and
//     flushes its observability state — the contract a scheduler's
//     SIGTERM expects.
//
// Every served plan passes the mandatory verify.Plan gate inside
// qlrb.Pipeline before it is stored on the job; the server never hands
// out an unverified plan.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/qlrb"
	"repro/internal/solve"
	"repro/internal/verify"
)

// Typed admission errors. ErrOverload is the base class of every
// load-shedding rejection (queue, rate, budget), so one errors.Is
// check maps them all to HTTP 429; the more specific sentinels
// distinguish the cause.
var (
	// ErrOverload marks a request rejected to shed load; the specific
	// rejections below all wrap it.
	ErrOverload = errors.New("serve: overloaded")
	// ErrQueueFull marks a request rejected because the job queue was
	// at capacity.
	ErrQueueFull = fmt.Errorf("%w: job queue full", ErrOverload)
	// ErrRateLimited marks a request rejected by the tenant's token
	// bucket.
	ErrRateLimited = fmt.Errorf("%w: tenant rate limit exceeded", ErrOverload)
	// ErrBudgetExhausted marks a request rejected because the tenant's
	// cumulative solve budget is spent.
	ErrBudgetExhausted = fmt.Errorf("%w: tenant solve budget exhausted", ErrOverload)
	// ErrDraining marks a request rejected because the server is
	// shutting down.
	ErrDraining = errors.New("serve: draining, not accepting work")
	// ErrUnknownJob marks a job lookup for an id the server does not
	// hold (never existed, or evicted by retention).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrEvicted marks a lookup of a job that did exist but was dropped
	// by retention — HTTP 410 Gone, where a never-issued id stays 404.
	// It wraps ErrUnknownJob so existing errors.Is checks keep matching.
	ErrEvicted = fmt.Errorf("%w: evicted by retention", ErrUnknownJob)
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is solving it.
	StatusRunning Status = "running"
	// StatusDone: solved; Plan and Metrics are set and verified.
	StatusDone Status = "done"
	// StatusFailed: the solve errored or the deadline expired.
	StatusFailed Status = "failed"
	// StatusRejected: dropped unstarted by a drain.
	StatusRejected Status = "rejected"
)

// Metrics is the solved job's result summary (the paper's evaluation
// metrics plus solver accounting).
type Metrics struct {
	ImbalanceBefore float64 `json:"imbalance_before"`
	ImbalanceAfter  float64 `json:"imbalance_after"`
	Speedup         float64 `json:"speedup"`
	Migrated        int     `json:"migrated"`
	Objective       float64 `json:"objective"`
	Qubits          int     `json:"qubits"`
	SampleFeasible  bool    `json:"sample_feasible"`
	Repaired        bool    `json:"repaired"`
	WallMs          float64 `json:"wall_ms"`
	// CacheHit marks a plan served from the verified plan cache: no
	// solver ran, but the plan still passed verify.Plan on the way out.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Job is a snapshot of one submitted solve. Snapshots are copies; the
// server's internal state cannot be mutated through them.
type Job struct {
	ID      string   `json:"id"`
	Tenant  string   `json:"tenant"`
	Status  Status   `json:"status"`
	Procs   int      `json:"procs"`
	Plan    [][]int  `json:"plan,omitempty"`
	Metrics *Metrics `json:"metrics,omitempty"`
	Error   string   `json:"error,omitempty"`
	// QueueWaitMs and the deadline are measured on the injected clock.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	// Recovered marks a job that survived a daemon restart: it was
	// rebuilt from the journal, either restored (terminal) or
	// re-enqueued (it was queued or running when the process died).
	Recovered bool `json:"recovered,omitempty"`
}

// job is the server-internal mutable record behind a Job snapshot.
type job struct {
	id     string
	tenant string
	req    *Request
	in     *lrp.Instance

	submitted time.Time
	deadline  time.Time
	budget    time.Duration
	recovered bool

	done chan struct{} // closed on any terminal status

	mu      sync.Mutex
	status  Status
	started time.Time
	plan    *lrp.Plan
	metrics *Metrics
	err     error
}

// snapshot renders the job for callers.
func (j *job) snapshot() *Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := &Job{
		ID: j.id, Tenant: j.tenant, Status: j.status, Procs: j.in.NumProcs(),
		Recovered: j.recovered,
	}
	if j.metrics != nil {
		m := *j.metrics
		out.Metrics = &m
	}
	if j.plan != nil {
		out.Plan = make([][]int, len(j.plan.X))
		for i, row := range j.plan.X {
			out.Plan[i] = append([]int(nil), row...)
		}
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		out.QueueWaitMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	return out
}

// Options configures a Server.
type Options struct {
	// QueueDepth bounds the number of admitted-but-unstarted jobs
	// (default 64). A full queue rejects with ErrQueueFull.
	QueueDepth int
	// Workers is the solve concurrency (default 2).
	Workers int
	// Rate is the per-tenant token-bucket refill in requests/second
	// (default 10; <= 0 after defaulting disables rate limiting).
	Rate float64
	// Burst is the bucket capacity (default 2×Rate, minimum 1).
	Burst float64
	// NoRateLimit disables the token bucket entirely.
	NoRateLimit bool
	// TenantBudget caps a tenant's cumulative solver wall time on the
	// injected clock (0 = unlimited). A tenant over budget is rejected
	// with ErrBudgetExhausted until the operator restarts or raises it.
	TenantBudget time.Duration
	// DefaultBudget is the per-request solve budget when the request
	// does not set one (default 2s).
	DefaultBudget time.Duration
	// MaxBudget caps any requested budget (default 10s).
	MaxBudget time.Duration
	// Limits bounds what a request may ask for (see DecodeRequest).
	Limits Limits
	// MaxJobs bounds the retained job records (default 1024); the
	// oldest finished jobs are evicted first. Lookups of evicted jobs
	// return ErrUnknownJob.
	MaxJobs int
	// Backend is the solver serving every request — typically a
	// route.Router over several engines (required).
	Backend solve.Solver
	// Cache, when non-nil, short-circuits solves whose canonical
	// instance fingerprint holds a verified plan (keyed by form and
	// migration budget); hits still pass verify.Plan before being
	// served, and the plan of every clean miss is stored back. Nil
	// disables caching.
	Cache *plancache.Cache
	// Verify tunes the mandatory plan-verification gate.
	Verify verify.Options
	// Journal, when non-nil, receives one record per job-lifecycle
	// transition (see journal.go). A *wal.Log satisfies it; when the
	// value also implements Compactor the server snapshot-compacts the
	// journal after terminal transitions. Journal failures are counted
	// (serve.journal_errors), never surfaced.
	Journal Journal
	// Recover is the set of journal records replayed from a previous
	// process (typically the second return of wal.Open). New rebuilds
	// job history from them and re-enqueues unfinished work before the
	// first worker starts.
	Recover [][]byte
	// Clock is the time source for admission, budgets, and deadlines
	// (default solve.Real()).
	Clock solve.Clock
	// Obs receives the server's metrics and the full per-solve traces
	// (default: a fresh registry; never nil so /metrics always works).
	Obs *obs.Registry
}

func (o Options) withDefaults() (Options, error) {
	if o.Backend == nil {
		return o, errors.New("serve: Options.Backend is required")
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Rate <= 0 {
		o.Rate = 10
	}
	if o.Burst <= 0 {
		o.Burst = 2 * o.Rate
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.DefaultBudget <= 0 {
		o.DefaultBudget = 2 * time.Second
	}
	if o.MaxBudget <= 0 {
		o.MaxBudget = 10 * time.Second
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	o.Limits = o.Limits.withDefaults()
	if o.Clock == nil {
		o.Clock = solve.Real()
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	return o, nil
}

// tenant is one tenant's admission state.
type tenant struct {
	tokens float64
	last   time.Time
	used   time.Duration // cumulative solver wall time
}

// Server is the multi-tenant solve server. Construct with New; stop
// with Drain. All methods are safe for concurrent use.
type Server struct {
	opt   Options
	clock solve.Clock
	obs   *obs.Registry

	baseCtx    context.Context
	cancelBase context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	// drainStarted closes the moment Drain flips the server into
	// draining — the channel-signaled readiness tests (and any caller
	// sequencing work against the drain barrier) wait on, instead of
	// polling Draining() on real time.
	drainStarted chan struct{}
	tenants      map[string]*tenant
	jobs         map[string]*job
	order        []string // insertion order, for retention eviction
	evicted      map[string]struct{}
	evictOrder   []string // eviction order, to bound the evicted set
	nextID       int64
	inflight     int
}

// New starts a server with opt.Workers solve workers. When
// opt.Recover holds replayed journal records, the pre-crash state is
// rebuilt first — terminal jobs restored, unfinished jobs re-enqueued
// with fresh deadlines — before the first worker starts, so recovered
// work cannot race fresh submissions for queue space.
func New(opt Options) (*Server, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		clock:      opt.Clock,
		obs:        opt.Obs,
		baseCtx:    ctx,
		cancelBase: cancel,
		tenants:    make(map[string]*tenant),
		jobs:       make(map[string]*job),
		evicted:    make(map[string]struct{}),

		drainStarted: make(chan struct{}),
	}
	var requeue []*job
	if len(opt.Recover) > 0 {
		requeue = s.recover(opt.Recover)
	}
	// The queue is sized to hold every recovered job on top of the
	// configured depth: recovery must never be the thing that overflows
	// admission.
	s.queue = make(chan *job, opt.QueueDepth+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	s.obs.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Obs returns the server's metrics registry (for /metrics rendering
// and test assertions).
func (s *Server) Obs() *obs.Registry { return s.obs }

// DrainStarted returns a channel that closes when Drain begins —
// admission is rejecting by the time it fires.
func (s *Server) DrainStarted() <-chan struct{} { return s.drainStarted }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health is the /healthz payload.
type Health struct {
	Status   string `json:"status"` // "ok" | "draining"
	Queued   int    `json:"queued"`
	Inflight int    `json:"inflight"`
	Jobs     int    `json:"jobs"`
}

// Health snapshots the server's liveness state.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Status: "ok", Queued: len(s.queue), Inflight: s.inflight, Jobs: len(s.jobs)}
	if s.draining {
		h.Status = "draining"
	}
	return h
}

// admitTenant applies the token bucket and budget under s.mu.
func (s *Server) admitTenantLocked(name string, now time.Time) error {
	t := s.tenants[name]
	if t == nil {
		t = &tenant{tokens: s.opt.Burst, last: now}
		s.tenants[name] = t
	}
	if s.opt.TenantBudget > 0 && t.used >= s.opt.TenantBudget {
		return ErrBudgetExhausted
	}
	if s.opt.NoRateLimit {
		return nil
	}
	// Refill on the injected clock; deterministic under solve.Fake.
	if el := now.Sub(t.last); el > 0 {
		t.tokens = math.Min(s.opt.Burst, t.tokens+el.Seconds()*s.opt.Rate)
		t.last = now
	}
	if t.tokens < 1 {
		return ErrRateLimited
	}
	t.tokens--
	return nil
}

// Submit validates and admits a request, returning the queued job's
// snapshot. Rejections are typed: ErrQueueFull / ErrRateLimited /
// ErrBudgetExhausted (all errors.Is ErrOverload, HTTP 429) and
// ErrDraining (HTTP 503); validation failures are plain errors (HTTP
// 400).
func (s *Server) Submit(req *Request) (*Job, error) {
	if req == nil {
		return nil, errors.New("serve: nil request")
	}
	if err := req.Validate(s.opt.Limits); err != nil {
		return nil, err
	}
	in, budget, err := s.buildInstance(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	now := s.clock.Now()
	s.obs.Counter("serve.submitted").Inc()
	if s.draining {
		s.mu.Unlock()
		s.obs.Counter("serve.rejected_draining").Inc()
		return nil, ErrDraining
	}
	if err := s.admitTenantLocked(req.Tenant, now); err != nil {
		s.mu.Unlock()
		switch {
		case errors.Is(err, ErrBudgetExhausted):
			s.obs.Counter("serve.rejected_budget").Inc()
		default:
			s.obs.Counter("serve.rejected_rate").Inc()
		}
		return nil, err
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.nextID),
		tenant:    req.Tenant,
		req:       req,
		in:        in,
		submitted: now,
		deadline:  now.Add(budget),
		budget:    budget,
		done:      make(chan struct{}),
		status:    StatusQueued,
	}
	// The accept record is journaled before the job is visible to any
	// worker, so a crash can never leave a terminal record without its
	// accept. The append runs under s.mu: admission order and journal
	// order are the same order.
	s.journal(journalRecord{
		Op: opAccept, ID: j.id, Req: req,
		BudgetMs: int64(budget / time.Millisecond),
	})
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		// The accept is already durable; a terminal record keeps replay
		// from resurrecting a job the client was told we shed.
		s.journal(journalRecord{Op: opReject, ID: j.id, Err: ErrQueueFull.Error()})
		s.obs.Counter("serve.rejected_overload").Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.obs.Counter("serve.accepted").Inc()
	s.obs.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
	s.mu.Unlock()
	return j.snapshot(), nil
}

// buildInstance turns a validated request into its LRP instance and
// clamped solve budget — the one construction path shared by live
// submission and journal recovery.
func (s *Server) buildInstance(req *Request) (*lrp.Instance, time.Duration, error) {
	weights := req.Weights
	if len(weights) == 0 {
		weights = make([]float64, len(req.Tasks))
		for j := range weights {
			weights[j] = 1
		}
	}
	in, err := lrp.NewInstance(req.Tasks, weights)
	if err != nil {
		return nil, 0, err
	}
	budget := s.opt.DefaultBudget
	if req.BudgetMs > 0 {
		budget = time.Duration(req.BudgetMs) * time.Millisecond
	}
	if budget > s.opt.MaxBudget {
		budget = s.opt.MaxBudget
	}
	return in, budget, nil
}

// evictLocked drops the oldest finished jobs over the retention cap.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.opt.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			j.mu.Lock()
			terminal := j.status == StatusDone || j.status == StatusFailed || j.status == StatusRejected
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.rememberEvictedLocked(id)
				s.journal(journalRecord{Op: opEvict, ID: id})
				s.obs.Counter("serve.evicted").Inc()
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live; do not grow-block
		}
	}
}

// Job returns a snapshot of the job with the given id. An id the
// server once held but dropped by retention answers ErrEvicted; an id
// it never issued answers ErrUnknownJob.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	_, ev := s.evicted[id]
	s.mu.Unlock()
	if j == nil {
		if ev {
			return nil, ErrEvicted
		}
		return nil, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Wait blocks until the job reaches a terminal status (or ctx ends)
// and returns its final snapshot.
func (s *Server) Wait(ctx context.Context, id string) (*Job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	_, ev := s.evicted[id]
	s.mu.Unlock()
	if j == nil {
		if ev {
			return nil, ErrEvicted
		}
		return nil, ErrUnknownJob
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// finish moves the job to a terminal state and signals waiters.
func (s *Server) finish(j *job, st Status, plan *lrp.Plan, m *Metrics, err error) {
	j.mu.Lock()
	j.status = st
	j.plan = plan
	j.metrics = m
	j.err = err
	j.mu.Unlock()
	close(j.done)
	switch st {
	case StatusDone:
		s.obs.Counter("serve.done").Inc()
	case StatusRejected:
		s.obs.Counter("serve.rejected_drain_queued").Inc()
	default:
		s.obs.Counter("serve.failed").Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			s.obs.Counter("serve.expired").Inc()
		}
	}
	s.journalTerminal(j, st, plan, m, err)
}

// worker is the solve loop: dequeue, honour drain and deadlines, run
// the full build → sample → decode → verify pipeline, account the
// tenant's budget.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		var j *job
		select {
		case j = <-s.queue:
		case <-s.baseCtx.Done():
			return
		}
		if j == nil {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.obs.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
		s.mu.Unlock()
		if draining {
			// Drain contract: in-flight solves finish, queued jobs are
			// rejected gracefully instead of started late.
			s.finish(j, StatusRejected, nil, nil, ErrDraining)
			continue
		}
		s.run(j)
	}
}

// run executes one job.
func (s *Server) run(j *job) {
	now := s.clock.Now()
	if !now.Before(j.deadline) {
		s.finish(j, StatusFailed, nil, nil,
			fmt.Errorf("serve: deadline expired after %v in queue: %w",
				now.Sub(j.submitted), context.DeadlineExceeded))
		return
	}
	j.mu.Lock()
	j.status = StatusRunning
	j.started = now
	j.mu.Unlock()
	s.journal(journalRecord{Op: opRun, ID: j.id})
	s.mu.Lock()
	s.inflight++
	s.obs.Gauge("serve.inflight").Set(float64(s.inflight))
	s.mu.Unlock()
	s.obs.Histogram("serve.queue_wait_ms").Observe(float64(now.Sub(j.submitted)) / float64(time.Millisecond))

	// The per-request deadline propagates both ways: as a clock
	// deadline the solver polls (exact under the fake clock) and as a
	// context deadline on the pipeline (real time), so a stuck backend
	// is cut off even if it stops polling the clock.
	// The verified plan cache answers before any solver spends cloud or
	// CPU time; the hit has already re-passed verify.Plan inside Get.
	cp := plancache.Params{K: j.req.k(), Form: int(j.req.formulation())}
	if plan, ok := s.opt.Cache.Get(j.in, cp); ok {
		wall := s.clock.Since(now)
		s.settle(j, wall)
		s.obs.Counter("serve.cache_hits").Inc()
		ev := lrp.Evaluate(j.in, plan)
		rep := verify.Plan(j.in, plan, cp.K, s.opt.Verify)
		m := &Metrics{
			ImbalanceBefore: j.in.Imbalance(),
			ImbalanceAfter:  ev.Imbalance,
			Speedup:         ev.Speedup,
			Migrated:        ev.Migrated,
			// No CQM was built for a hit, so there is no sample
			// objective to report; Objective stays zero like Qubits.
			SampleFeasible: rep.Feasible,
			WallMs:         float64(wall) / float64(time.Millisecond),
			CacheHit:       true,
		}
		s.finish(j, StatusDone, plan, m, nil)
		return
	}

	remaining := j.deadline.Sub(now)
	ctx, cancel := context.WithTimeout(s.baseCtx, remaining)
	pl := qlrb.Pipeline{
		Build:  qlrb.BuildOptions{Form: j.req.formulation(), K: j.req.k()},
		Solver: func(*qlrb.Encoded) solve.Solver { return s.opt.Backend },
		Verify: s.opt.Verify,
		Obs:    s.obs,
		Opts: []solve.Option{
			solve.WithClock(s.clock),
			solve.WithDeadline(j.deadline),
			solve.WithSeed(j.req.Seed),
		},
	}
	plan, stats, err := pl.Run(ctx, j.in)
	cancel()
	wall := s.clock.Since(now)
	s.settle(j, wall)

	if err != nil {
		if cerr := ctx.Err(); cerr != nil && !errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("%w (%w)", err, cerr)
		}
		s.finish(j, StatusFailed, nil, nil, err)
		return
	}
	ev := lrp.Evaluate(j.in, plan)
	m := &Metrics{
		ImbalanceBefore: j.in.Imbalance(),
		ImbalanceAfter:  ev.Imbalance,
		Speedup:         ev.Speedup,
		Migrated:        ev.Migrated,
		Objective:       stats.Objective,
		Qubits:          stats.Qubits,
		SampleFeasible:  stats.SampleFeasible,
		Repaired:        stats.Repaired,
		WallMs:          float64(wall) / float64(time.Millisecond),
	}
	// A cleanly solved, verified plan seeds the cache for the next
	// repeat of this round; a rejected Put only bumps
	// plancache.put_rejects.
	_ = s.opt.Cache.Put(j.in, cp, plan)
	s.finish(j, StatusDone, plan, m, nil)
}

// settle lands a finished (or cache-served) job's accounting: inflight
// gauge, tenant budget burn, and the solve-time histogram.
func (s *Server) settle(j *job, wall time.Duration) {
	s.mu.Lock()
	s.inflight--
	s.obs.Gauge("serve.inflight").Set(float64(s.inflight))
	if t := s.tenants[j.tenant]; t != nil {
		t.used += wall
	}
	s.mu.Unlock()
	s.obs.Histogram("serve.solve_ms").Observe(float64(wall) / float64(time.Millisecond))
}

// Drain stops admission, rejects everything still queued, waits for
// in-flight solves to finish (up to ctx's deadline, after which they
// are cancelled and awaited), and flushes the observability state.
// Drain is idempotent; concurrent calls all wait for completion.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue) // workers drain the remaining entries as rejected
		close(s.drainStarted)
		s.obs.Gauge("serve.draining").Set(1)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel in-flight solves (they return best partials
		// per the engine contract) and wait for the workers to land.
		s.cancelBase()
		<-done
		err = fmt.Errorf("serve: drain deadline hit, in-flight solves cancelled: %w", ctx.Err())
	}
	s.cancelBase()
	h := s.Health()
	s.obs.Emit("serve.drain", map[string]any{
		"inflight_at_end": h.Inflight,
		"jobs":            h.Jobs,
		"forced":          err != nil,
	})
	return err
}

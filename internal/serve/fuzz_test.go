package serve

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hardens the /solve JSON decode path: arbitrary
// bodies must either produce a request that passes validation or a
// clean error — never a panic, and never a request that validation
// would have rejected.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"tasks":[4,4,4],"weights":[8,2,2]}`))
	f.Add([]byte(`{"tenant":"t","tasks":[2,2],"form":"qcqm2","k":1,"budget_ms":100,"seed":7}`))
	f.Add([]byte(`{"tasks":[1]}`))
	f.Add([]byte(`{"tasks":[4,4]} {"tasks":[4,4]}`))
	f.Add([]byte(`{"tasks":[-1,2]}`))
	f.Add([]byte(`{"tasks":[4,4],"unknown":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"weights":[1e309]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		lim := Limits{MaxProcs: 16, MaxTasksPerProc: 1 << 10, MaxBodyBytes: 1 << 16}
		req, err := DecodeRequest(bytes.NewReader(body), lim)
		if err != nil {
			return
		}
		// A decoded request must be internally consistent: re-validation
		// passes and the derived build options are well-formed.
		if verr := req.Validate(lim); verr != nil {
			t.Fatalf("decoded request fails re-validation: %v (body %q)", verr, body)
		}
		if req.Tenant == "" {
			t.Fatal("decoded request has empty tenant after validation")
		}
		if k := req.k(); k == 0 {
			t.Fatalf("derived K must never be 0 (unconstrained is -1), got %d", k)
		}
	})
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/sa"
	"repro/internal/verify"
)

// TestChaosConcurrentTenants is the tentpole acceptance test: several
// tenants hammer the server concurrently while one routed backend
// injects 30% faults (corrupted replies and panics). The server must
//
//   - never return an unverified plan: every done job's plan is
//     re-checked here with verify.Plan, independently of the pipeline;
//   - shed overload only with typed errors (ErrOverload family);
//   - drain within its deadline once the burst is over;
//   - leak no goroutines.
func TestChaosConcurrentTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long; skipped in -short")
	}
	before := runtime.NumGoroutine()

	// A chaotic hybrid backend (30% corrupt/panic faults) races a clean
	// annealer behind the failure-aware router. The router's verify
	// gate rejects corrupted replies and fails over.
	chaotic := hybrid.New(hybrid.Options{
		Reads: 1, Sweeps: 60, Seed: 7,
		Faults: faults.NewInjector(faults.Chaos(7, 0.3)),
	})
	clean := &sa.Engine{Base: sa.Options{Sweeps: 60, Penalty: 5, PenaltyGrowth: 4, Seed: 11}}
	reg := obs.NewRegistry()
	router, err := route.New(route.Options{Obs: reg, Name: "chaos-router"}, chaotic, clean)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{
		Backend:    router,
		Obs:        reg,
		Workers:    4,
		QueueDepth: 32,
		Rate:       200, Burst: 50,
		DefaultBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		tenants    = 4
		perTenant  = 12
		totalprocs = 3
	)
	type submitted struct {
		id string
		in *lrp.Instance
	}
	var (
		mu       sync.Mutex
		accepted []submitted
		overload int
	)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				r := &Request{
					Tenant:  fmt.Sprintf("tenant-%d", tn),
					Tasks:   []int{4, 4, 4},
					Weights: []float64{8, 2, float64(2 + i%3)},
					Seed:    int64(tn*100 + i),
				}
				in, err := lrp.NewInstance(r.Tasks, r.Weights)
				if err != nil {
					t.Error(err)
					return
				}
				j, err := s.Submit(r)
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, submitted{j.ID, in})
					mu.Unlock()
				case errors.Is(err, ErrOverload):
					mu.Lock()
					overload++
					mu.Unlock()
				default:
					t.Errorf("untyped rejection: %v", err)
					return
				}
			}
		}(tn)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var done, failed int
	for _, sub := range accepted {
		j, err := s.Wait(ctx, sub.id)
		if err != nil {
			t.Fatalf("wait %s: %v", sub.id, err)
		}
		switch j.Status {
		case StatusDone:
			done++
			if len(j.Plan) != totalprocs {
				t.Fatalf("job %s: plan has %d rows", j.ID, len(j.Plan))
			}
			// Independent re-verification: the server's word is not
			// trusted here.
			rep := verify.Plan(sub.in, &lrp.Plan{X: j.Plan}, -1, verify.Options{})
			if !rep.Ok() {
				t.Fatalf("job %s: served plan fails verification: %v", j.ID, rep.Err())
			}
			if j.Metrics == nil {
				t.Fatalf("job %s: done without metrics", j.ID)
			}
		case StatusFailed:
			failed++
		default:
			t.Fatalf("job %s: unexpected terminal status %s", j.ID, j.Status)
		}
	}
	if done == 0 {
		t.Fatalf("no job succeeded (failed %d, overloaded %d)", failed, overload)
	}
	// With a clean backend behind the router, faults should mostly fail
	// over rather than fail the job.
	if done < len(accepted)/2 {
		t.Fatalf("only %d/%d accepted jobs succeeded under chaos", done, len(accepted))
	}
	t.Logf("chaos: accepted %d (done %d, failed %d), overloaded %d", len(accepted), done, failed, overload)

	// Drain must finish within its deadline.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(&Request{Tasks: []int{4, 4}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}

	// No goroutine leaks: allow the runtime a moment to land exiting
	// goroutines, then require the count back near the baseline. This
	// check is inherently real-time — goroutine exit is scheduled by
	// the runtime, not by any injectable clock — so the bound is set
	// generously wide (30s ≫ the ~ms it takes in practice) to stay
	// flake-free on slow, race-instrumented CI runners; a genuine leak
	// never lands, so the wide bound costs nothing when the code is
	// correct and only delays the failure report when it is not.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

package serve

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/plancache"
	"repro/internal/solve"
)

// blockingBackend is a controllable solver: each Solve announces itself
// on started, then waits for release (or ctx). It returns an honest
// all-zero sample — the identity plan, always decodable and verifiable.
type blockingBackend struct {
	started chan struct{}
	release chan struct{}
}

func newBlocking() *blockingBackend {
	return &blockingBackend{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
	}
	x := make([]bool, m.NumVars())
	return &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}, nil
}

// instantBackend solves immediately with the identity sample.
type instantBackend struct{ advance func() }

func (ib *instantBackend) Name() string { return "instant" }

func (ib *instantBackend) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if ib.advance != nil {
		ib.advance()
	}
	x := make([]bool, m.NumVars())
	return &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}, nil
}

func fakeClock(t *testing.T) *solve.Fake {
	t.Helper()
	return solve.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

func req(tenant string) *Request {
	// Uniform task counts (the formulations require it); the imbalance
	// lives in the per-process weights.
	return &Request{Tenant: tenant, Tasks: []int{4, 4, 4}, Weights: []float64{8, 2, 2}}
}

// TestBurstOverBucketRejected: a burst beyond the token bucket gets a
// typed ErrRateLimited (an ErrOverload), and refill on the fake clock
// re-admits.
func TestBurstOverBucketRejected(t *testing.T) {
	clk := fakeClock(t)
	s, err := New(Options{
		Backend: &instantBackend{}, Clock: clk,
		Rate: 1, Burst: 2, QueueDepth: 16, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(req("t1")); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err = s.Submit(req("t1"))
	if !errors.Is(err, ErrRateLimited) || !errors.Is(err, ErrOverload) {
		t.Fatalf("burst overflow err = %v, want ErrRateLimited wrapping ErrOverload", err)
	}
	// Another tenant has its own bucket.
	if _, err := s.Submit(req("t2")); err != nil {
		t.Fatalf("fresh tenant rejected: %v", err)
	}
	// One second at Rate 1 refills one token.
	clk.Advance(time.Second)
	if _, err := s.Submit(req("t1")); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	if got := s.Obs().Counter("serve.rejected_rate").Value(); got != 1 {
		t.Fatalf("rejected_rate counter = %d, want 1", got)
	}
}

// TestQueueFullRejected: admission beyond QueueDepth is a typed
// ErrQueueFull, not a blocking send.
func TestQueueFullRejected(t *testing.T) {
	bk := newBlocking()
	s, err := New(Options{
		Backend: bk, Clock: fakeClock(t), NoRateLimit: true,
		QueueDepth: 1, Workers: 1, DefaultBudget: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck
	defer close(bk.release)             // LIFO: release before the drain waits

	if _, err := s.Submit(req("t")); err != nil {
		t.Fatal(err)
	}
	<-bk.started // first job is out of the queue and in flight
	if _, err := s.Submit(req("t")); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	_, err = s.Submit(req("t"))
	if !errors.Is(err, ErrQueueFull) || !errors.Is(err, ErrOverload) {
		t.Fatalf("queue overflow err = %v, want ErrQueueFull wrapping ErrOverload", err)
	}
}

// TestDeadlineExpiryMidQueue: a job whose budget elapses while still
// queued fails with a typed context.DeadlineExceeded without ever
// reaching the solver.
func TestDeadlineExpiryMidQueue(t *testing.T) {
	clk := fakeClock(t)
	bk := newBlocking()
	s, err := New(Options{
		Backend: bk, Clock: clk, NoRateLimit: true,
		QueueDepth: 4, Workers: 1, DefaultBudget: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Submit(req("t")); err != nil {
		t.Fatal(err)
	}
	<-bk.started // worker busy on job 1
	r2 := req("t")
	r2.BudgetMs = 100
	j2, err := s.Submit(r2)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(200 * time.Millisecond) // j2's deadline passes in the queue
	close(bk.release)                   // job 1 completes; worker reaches j2

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.Wait(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusFailed {
		t.Fatalf("expired job status = %s, want failed", got.Status)
	}
	s.mu.Lock()
	jerr := s.jobs[j2.ID].err
	s.mu.Unlock()
	if !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("expired job err = %v, want context.DeadlineExceeded", jerr)
	}
	if s.Obs().Counter("serve.expired").Value() == 0 {
		t.Fatal("serve.expired counter not incremented")
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTenantBudgetExhausted: cumulative solver wall time on the fake
// clock exhausts the tenant budget and later submissions are rejected
// with the typed error.
func TestTenantBudgetExhausted(t *testing.T) {
	clk := fakeClock(t)
	ib := &instantBackend{advance: func() { clk.Advance(time.Second) }}
	s, err := New(Options{
		Backend: ib, Clock: clk, NoRateLimit: true,
		QueueDepth: 4, Workers: 1, TenantBudget: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck

	j, err := s.Submit(req("heavy"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(req("heavy"))
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, ErrOverload) {
		t.Fatalf("over-budget err = %v, want ErrBudgetExhausted wrapping ErrOverload", err)
	}
	// Other tenants are unaffected.
	if _, err := s.Submit(req("light")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestDrainRejectsQueuedGracefully: drain finishes the in-flight solve,
// rejects the queued job with ErrDraining, and refuses new work.
func TestDrainRejectsQueuedGracefully(t *testing.T) {
	bk := newBlocking()
	s, err := New(Options{
		Backend: bk, Clock: fakeClock(t), NoRateLimit: true,
		QueueDepth: 4, Workers: 1, DefaultBudget: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	j1, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	<-bk.started
	j2, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Admission closes immediately, before in-flight work lands: wait
	// on the drain barrier's own signal rather than polling real time.
	<-s.DrainStarted()
	if !s.Draining() {
		t.Fatal("DrainStarted fired before Draining() turned true")
	}
	if _, err := s.Submit(req("t")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain err = %v, want ErrDraining", err)
	}
	close(bk.release) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	g1, _ := s.Job(j1.ID)
	if g1.Status != StatusDone {
		t.Fatalf("in-flight job status = %s, want done (err %q)", g1.Status, g1.Error)
	}
	g2, _ := s.Job(j2.ID)
	if g2.Status != StatusRejected {
		t.Fatalf("queued job status = %s, want rejected", g2.Status)
	}
	s.mu.Lock()
	jerr := s.jobs[j2.ID].err
	s.mu.Unlock()
	if !errors.Is(jerr, ErrDraining) {
		t.Fatalf("queued job err = %v, want ErrDraining", jerr)
	}
	if s.Obs().Gauge("serve.draining").Value() != 1 {
		t.Fatal("serve.draining gauge not set")
	}
}

// TestDrainDeadlineCancelsInflight: a drain whose context expires
// cancels the in-flight solve instead of hanging forever.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	bk := newBlocking() // release is never closed: solve waits on ctx
	s, err := New(Options{
		Backend: bk, Clock: fakeClock(t), NoRateLimit: true,
		QueueDepth: 4, Workers: 1, DefaultBudget: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req("t")); err != nil {
		t.Fatal(err)
	}
	<-bk.started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want wrapped DeadlineExceeded", err)
	}
}

// TestSolveProducesVerifiedPlan: the happy path end to end — a solved
// job carries a plan and the paper's metrics.
func TestSolveProducesVerifiedPlan(t *testing.T) {
	s, err := New(Options{Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck

	j, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", got.Status, got.Error)
	}
	if len(got.Plan) != 3 {
		t.Fatalf("plan has %d rows, want 3", len(got.Plan))
	}
	if got.Metrics == nil || got.Metrics.ImbalanceBefore <= 0 {
		t.Fatalf("metrics = %+v, want imbalance_before > 0", got.Metrics)
	}
	if s.Obs().Counter("serve.done").Value() != 1 {
		t.Fatal("serve.done counter not incremented")
	}
}

// TestJobRetentionEvictsOldest: finished jobs beyond MaxJobs are
// evicted oldest-first; live jobs are never evicted.
func TestJobRetentionEvictsOldest(t *testing.T) {
	s, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		MaxJobs: 2, QueueDepth: 8, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(req("t"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, err := s.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job lookup err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Job(ids[3]); err != nil {
		t.Fatalf("newest job lookup: %v", err)
	}
}

// TestUnknownJob: lookups and waits for unknown ids are typed.
func TestUnknownJob(t *testing.T) {
	s, err := New(Options{Backend: &instantBackend{}, Clock: fakeClock(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck
	if _, err := s.Job("j99999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

// TestRequestValidation covers the admission-side request checks.
func TestRequestValidation(t *testing.T) {
	lim := Limits{MaxProcs: 4}
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"valid", Request{Tasks: []int{3, 3}}, true},
		{"one proc", Request{Tasks: []int{3}}, false},
		{"negative tasks", Request{Tasks: []int{3, -1}}, false},
		{"non-uniform tasks", Request{Tasks: []int{3, 1}}, false},
		{"too many procs", Request{Tasks: []int{1, 1, 1, 1, 1}}, false},
		{"weights mismatch", Request{Tasks: []int{3, 3}, Weights: []float64{1}}, false},
		{"negative weight", Request{Tasks: []int{3, 3}, Weights: []float64{1, -2}}, false},
		{"bad form", Request{Tasks: []int{3, 3}, Form: "qubo"}, false},
		{"qcqm2", Request{Tasks: []int{3, 3}, Form: "QCQM2"}, true},
		{"negative k", Request{Tasks: []int{3, 3}, K: -1}, false},
		{"negative budget", Request{Tasks: []int{3, 3}, BudgetMs: -5}, false},
	}
	for _, tc := range cases {
		err := tc.req.Validate(lim)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	r := Request{Tasks: []int{3, 3}}
	if err := r.Validate(lim); err != nil {
		t.Fatal(err)
	}
	if r.Tenant != "default" {
		t.Fatalf("tenant default = %q", r.Tenant)
	}
}

// countingBackend counts Solve calls on top of instant identity solves.
type countingBackend struct {
	instantBackend
	calls atomic.Int64
}

func (cb *countingBackend) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	cb.calls.Add(1)
	return cb.instantBackend.Solve(ctx, m, opts...)
}

// TestCacheHitShortCircuitsBackend: with a plan cache wired in, the
// second submission of an identical instance is served from the cache —
// no backend call, CacheHit marked, serve.cache_hits counted — and the
// served plan equals the first solve's verified plan.
func TestCacheHitShortCircuitsBackend(t *testing.T) {
	cb := &countingBackend{}
	s, err := New(Options{
		Backend: cb, Clock: fakeClock(t),
		Cache:      plancache.New(plancache.Config{}),
		QueueDepth: 8, Workers: 1, NoRateLimit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck

	j1, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s.Wait(context.Background(), j1.ID)
	if err != nil || g1.Status != StatusDone {
		t.Fatalf("first solve: %v status %v", err, g1.Status)
	}
	if g1.Metrics.CacheHit {
		t.Fatal("first solve claims a cache hit")
	}

	j2, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Wait(context.Background(), j2.ID)
	if err != nil || g2.Status != StatusDone {
		t.Fatalf("second solve: %v status %v", err, g2.Status)
	}
	if !g2.Metrics.CacheHit {
		t.Fatal("second identical solve was not served from the cache")
	}
	if got := cb.calls.Load(); got != 1 {
		t.Fatalf("backend solved %d times, want 1", got)
	}
	if !reflect.DeepEqual(g2.Plan, g1.Plan) {
		t.Fatalf("cached plan differs from solved plan:\n%v\n%v", g2.Plan, g1.Plan)
	}
	if v := s.Obs().Counter("serve.cache_hits").Value(); v != 1 {
		t.Fatalf("serve.cache_hits = %d, want 1", v)
	}
	// A different instance must still reach the backend.
	r := req("t")
	r.Weights = []float64{9, 1, 2}
	j3, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	if g3, err := s.Wait(context.Background(), j3.ID); err != nil || g3.Metrics.CacheHit {
		t.Fatalf("distinct instance: err %v, cache_hit %v", err, g3 != nil && g3.Metrics.CacheHit)
	}
	if got := cb.calls.Load(); got != 2 {
		t.Fatalf("backend solved %d times after distinct instance, want 2", got)
	}
}

// Job-lifecycle durability: the server journals every lifecycle
// transition (accept → run → done/failed/rejected, plus retention
// evictions) as one self-contained JSON record through a
// caller-supplied Journal — in production a *wal.Log. On startup the
// daemon replays the journal into Options.Recover and the server
// rebuilds itself:
//
//   - Terminal jobs inside the retention window are restored as
//     queryable history. A restored done-plan is re-verified with
//     verify.Plan before it is trusted; a plan that fails (disk
//     corruption the WAL's CRC could not see, or a config change that
//     invalidates it) demotes the job to unfinished and it re-runs —
//     corrupt state is re-solved, never served.
//   - Accepted-but-unfinished jobs (queued or running at the crash)
//     are re-enqueued with a fresh deadline, idempotently by job id,
//     and marked Recovered in their snapshots. Re-admission respects
//     tenant solve budgets, which are themselves replayed from the
//     wall time of completed work.
//   - Evicted ids are remembered (bounded), so a lookup of a job that
//     existed-but-aged-out keeps answering ErrEvicted (HTTP 410)
//     across restarts instead of decaying to a 404.
//
// Journal failures never fail the serving path: they are counted
// (serve.journal_errors) and the server keeps answering. Durability
// degrades; correctness does not.
package serve

import (
	"encoding/json"
	"errors"
	"strconv"
	"time"

	"repro/internal/lrp"
	"repro/internal/verify"
)

// journalVersion guards the record schema; bump on incompatible change.
const journalVersion = 1

// maxEvictedTracked bounds the remembered-evictions set; beyond it the
// oldest evicted ids decay to plain ErrUnknownJob (404).
const maxEvictedTracked = 4096

// Journal receives one encoded record per lifecycle transition.
// *wal.Log satisfies it. Append must be safe for concurrent use and
// must not call back into the server.
type Journal interface {
	Append(rec []byte) error
}

// Compactor is the optional snapshot-compaction side of a Journal:
// when the configured Journal implements it, the server rewrites the
// journal as a snapshot of its retained state whenever CompactDue
// reports true after a terminal transition. *wal.Log satisfies it.
type Compactor interface {
	CompactDue() bool
	Compact(records [][]byte) error
}

// Journal record ops.
const (
	opAccept = "accept"
	opRun    = "run"
	opDone   = "done"
	opFail   = "fail"
	opReject = "reject"
	opEvict  = "evict"
)

// journalRecord is the on-disk schema. Every record carries the job
// id; accept additionally carries everything needed to re-create the
// job (the validated request and its clamped budget), and terminal
// records carry the outcome.
type journalRecord struct {
	V        int      `json:"v"`
	Op       string   `json:"op"`
	ID       string   `json:"id"`
	Req      *Request `json:"req,omitempty"`
	BudgetMs int64    `json:"budget_ms,omitempty"`
	Plan     [][]int  `json:"plan,omitempty"`
	Metrics  *Metrics `json:"metrics,omitempty"`
	Err      string   `json:"err,omitempty"`
}

// journal appends one record, counting (never surfacing) failures.
func (s *Server) journal(rec journalRecord) {
	if s.opt.Journal == nil {
		return
	}
	rec.V = journalVersion
	b, err := json.Marshal(rec)
	if err != nil {
		s.obs.Counter("serve.journal_errors").Inc()
		return
	}
	if err := s.opt.Journal.Append(b); err != nil {
		s.obs.Counter("serve.journal_errors").Inc()
	}
}

// journalTerminal records a job's terminal transition and gives the
// journal a chance to compact. Called without s.mu held.
func (s *Server) journalTerminal(j *job, st Status, plan *lrp.Plan, m *Metrics, err error) {
	if s.opt.Journal == nil {
		return
	}
	rec := journalRecord{ID: j.id, Metrics: m}
	switch st {
	case StatusDone:
		rec.Op = opDone
		if plan != nil {
			rec.Plan = plan.X
		}
	case StatusRejected:
		rec.Op = opReject
	default:
		rec.Op = opFail
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.journal(rec)
	s.maybeCompactJournal()
}

// maybeCompactJournal rewrites the journal as a snapshot of retained
// state when the journal reports compaction due. Lock order: s.mu,
// then each job's mu — matching evictLocked.
func (s *Server) maybeCompactJournal() {
	comp, ok := s.opt.Journal.(Compactor)
	if !ok || !comp.CompactDue() {
		return
	}
	s.mu.Lock()
	snap := s.snapshotJournalLocked()
	s.mu.Unlock()
	if err := comp.Compact(snap); err != nil {
		s.obs.Counter("serve.journal_errors").Inc()
		return
	}
	s.obs.Counter("serve.journal_compactions").Inc()
}

// snapshotJournalLocked re-encodes the retained state: one accept per
// live job (terminal jobs also get their terminal record) plus the
// remembered evictions. Replaying the snapshot reconstructs the same
// server state the long journal would have.
func (s *Server) snapshotJournalLocked() [][]byte {
	var records [][]byte
	add := func(rec journalRecord) {
		rec.V = journalVersion
		if b, err := json.Marshal(rec); err == nil {
			records = append(records, b)
		}
	}
	for _, id := range s.evictOrder {
		add(journalRecord{Op: opEvict, ID: id})
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		add(journalRecord{
			Op: opAccept, ID: j.id, Req: j.req,
			BudgetMs: int64(j.budget / time.Millisecond),
		})
		j.mu.Lock()
		st, plan, m, jerr := j.status, j.plan, j.metrics, j.err
		j.mu.Unlock()
		rec := journalRecord{ID: j.id, Metrics: m}
		switch st {
		case StatusDone:
			rec.Op = opDone
			if plan != nil {
				rec.Plan = plan.X
			}
		case StatusFailed:
			rec.Op = opFail
		case StatusRejected:
			rec.Op = opReject
		default:
			continue // queued/running: the accept alone re-enqueues it
		}
		if jerr != nil {
			rec.Err = jerr.Error()
		}
		add(rec)
	}
	return records
}

// rememberEvictedLocked adds id to the bounded evicted-ids memory.
func (s *Server) rememberEvictedLocked(id string) {
	if s.evicted == nil {
		s.evicted = make(map[string]struct{})
	}
	if _, ok := s.evicted[id]; ok {
		return
	}
	s.evicted[id] = struct{}{}
	s.evictOrder = append(s.evictOrder, id)
	for len(s.evictOrder) > maxEvictedTracked {
		delete(s.evicted, s.evictOrder[0])
		s.evictOrder = s.evictOrder[1:]
	}
}

// recover rebuilds server state from replayed journal records. Called
// from New before any worker starts, so it runs single-threaded; it
// returns the jobs to re-enqueue (in acceptance order) and leaves
// s.jobs / s.order / s.tenants / s.evicted / s.nextID reflecting the
// pre-crash server. The caller sizes the queue to fit the returned
// jobs before starting workers.
func (s *Server) recover(records [][]byte) []*job {
	accepts := make(map[string]*journalRecord)
	terms := make(map[string]*journalRecord)
	evicted := make(map[string]bool)
	var order []string
	dropped := 0
	for _, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.V != journalVersion || rec.ID == "" {
			dropped++
			continue
		}
		switch rec.Op {
		case opAccept:
			if rec.Req == nil {
				dropped++
				continue
			}
			if accepts[rec.ID] == nil {
				order = append(order, rec.ID)
			}
			r := rec
			accepts[rec.ID] = &r
		case opRun:
			// Presence only: a job running at the crash is unfinished.
		case opDone, opFail, opReject:
			r := rec
			terms[rec.ID] = &r // last terminal record wins
		case opEvict:
			evicted[rec.ID] = true
		default:
			dropped++
		}
		if n, err := strconv.ParseInt(trimJobPrefix(rec.ID), 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
	}

	now := s.clock.Now()
	var requeue []*job
	for _, id := range order {
		if evicted[id] {
			continue // fell out of retention pre-crash; remembered below
		}
		acc := accepts[id]
		j, err := s.rebuildJob(id, acc, now)
		if err != nil {
			dropped++
			continue
		}
		term := terms[id]
		if term != nil && s.restoreTerminal(j, term) {
			s.obs.Counter("serve.recovery_restored").Inc()
		} else {
			if term != nil {
				// A done record whose plan no longer verifies: re-solve
				// rather than serve corrupt state.
				s.obs.Counter("serve.recovery_corrupt").Inc()
			}
			requeue = append(requeue, j)
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	for id := range evicted {
		s.rememberEvictedLocked(id)
	}

	// Re-admission respects the replayed tenant budgets: a tenant whose
	// completed work already exhausted its budget gets its unfinished
	// jobs failed, not silently re-run.
	admitted := requeue[:0]
	for _, j := range requeue {
		t := s.tenants[j.tenant]
		if s.opt.TenantBudget > 0 && t != nil && t.used >= s.opt.TenantBudget {
			s.finish(j, StatusFailed, nil, nil, ErrBudgetExhausted)
			continue
		}
		s.obs.Counter("serve.recovered").Inc()
		admitted = append(admitted, j)
	}
	if dropped > 0 {
		s.obs.Counter("serve.recovery_dropped").Add(int64(dropped))
	}
	return admitted
}

// rebuildJob reconstructs a job record from its accept record. The
// request is re-validated against the *current* limits, so a journal
// from a laxer configuration cannot smuggle in an oversized instance.
func (s *Server) rebuildJob(id string, acc *journalRecord, now time.Time) (*job, error) {
	req := acc.Req
	if err := req.Validate(s.opt.Limits); err != nil {
		return nil, err
	}
	in, budget, err := s.buildInstance(req)
	if err != nil {
		return nil, err
	}
	if acc.BudgetMs > 0 {
		if b := time.Duration(acc.BudgetMs) * time.Millisecond; b <= s.opt.MaxBudget {
			budget = b
		}
	}
	return &job{
		id: id, tenant: req.Tenant, req: req, in: in,
		submitted: now, deadline: now.Add(budget), budget: budget,
		done: make(chan struct{}), status: StatusQueued, recovered: true,
	}, nil
}

// restoreTerminal applies a terminal record to j, reporting whether it
// could be trusted. Done-plans re-pass verify.Plan first; failed and
// rejected outcomes restore as recorded. Restored wall time burns the
// tenant's replayed budget.
func (s *Server) restoreTerminal(j *job, term *journalRecord) bool {
	switch term.Op {
	case opDone:
		m := len(j.in.Tasks)
		if len(term.Plan) != m {
			return false
		}
		for i := range term.Plan {
			if len(term.Plan[i]) != m {
				return false
			}
		}
		plan := &lrp.Plan{X: term.Plan}
		if !verify.Plan(j.in, plan, j.req.k(), s.opt.Verify).Ok() {
			return false
		}
		j.status = StatusDone
		j.plan = plan
		j.metrics = term.Metrics
		if term.Metrics != nil {
			s.burnTenant(j.tenant, time.Duration(term.Metrics.WallMs*float64(time.Millisecond)))
		}
	case opFail:
		j.status = StatusFailed
		j.err = errors.New(term.Err)
		if term.Metrics != nil {
			s.burnTenant(j.tenant, time.Duration(term.Metrics.WallMs*float64(time.Millisecond)))
		}
	case opReject:
		j.status = StatusRejected
		j.err = errors.New(term.Err)
	default:
		return false
	}
	close(j.done)
	return true
}

// burnTenant charges replayed solve time against a tenant's budget.
func (s *Server) burnTenant(name string, wall time.Duration) {
	if wall <= 0 {
		return
	}
	t := s.tenants[name]
	if t == nil {
		t = &tenant{tokens: s.opt.Burst, last: s.clock.Now()}
		s.tenants[name] = t
	}
	t.used += wall
}

// trimJobPrefix strips the job-id prefix for nextID resumption; a
// malformed id simply fails the ParseInt that follows.
func trimJobPrefix(id string) string {
	if len(id) > 1 && id[0] == 'j' {
		return id[1:]
	}
	return id
}

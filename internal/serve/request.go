package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/qlrb"
)

// Limits bounds what a single request may ask of the server. They are
// admission-side validation, applied before any queue or solver
// resource is consumed.
type Limits struct {
	// MaxProcs caps the instance size M (default 64).
	MaxProcs int
	// MaxTasksPerProc caps each entry of the task vector (default 1 << 20).
	MaxTasksPerProc int
	// MaxBodyBytes caps the request body the HTTP layer will read
	// (default 1 MiB).
	MaxBodyBytes int64
}

func (l Limits) withDefaults() Limits {
	if l.MaxProcs <= 0 {
		l.MaxProcs = 64
	}
	if l.MaxTasksPerProc <= 0 {
		l.MaxTasksPerProc = 1 << 20
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 1 << 20
	}
	return l
}

// Request is one rebalancing job submission: the LRP instance plus
// solve parameters. The zero values of the optional fields select the
// server's defaults.
type Request struct {
	// Tenant identifies the submitting tenant for rate limiting and
	// budget accounting (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Tasks[j] is the number of (unit) tasks on process j.
	Tasks []int `json:"tasks"`
	// Weights, when non-empty, gives per-process task weights
	// (len == len(Tasks)); empty means uniform unit weights.
	Weights []float64 `json:"weights,omitempty"`
	// Form selects the CQM formulation: "qcqm1" (default) or "qcqm2".
	Form string `json:"form,omitempty"`
	// K caps total migrations; 0 means unconstrained (encoded as K=-1).
	K int `json:"k,omitempty"`
	// BudgetMs is the solve budget in milliseconds; 0 selects the
	// server's default, and the server's MaxBudget caps it either way.
	BudgetMs int `json:"budget_ms,omitempty"`
	// Seed makes the solve reproducible; 0 selects the server default.
	Seed int64 `json:"seed,omitempty"`
}

// DecodeRequest parses a JSON request body, rejecting unknown fields
// and trailing garbage, and validates it against lim. It is the single
// decode path for the HTTP handler and the fuzz target.
func DecodeRequest(r io.Reader, lim Limits) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: bad request body: %w", err)
	}
	// A second document after the first is a malformed request, not
	// extra work to do.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("serve: trailing data after JSON request")
	}
	if err := req.Validate(lim); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate normalizes defaults and applies lim. It mutates req only to
// fill the Tenant default.
func (req *Request) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if len(req.Tenant) > 128 {
		return errors.New("serve: tenant name too long")
	}
	if len(req.Tasks) < 2 {
		return errors.New("serve: need at least 2 processes")
	}
	if len(req.Tasks) > lim.MaxProcs {
		return fmt.Errorf("serve: %d processes exceeds limit %d", len(req.Tasks), lim.MaxProcs)
	}
	for j, n := range req.Tasks {
		if n < 1 {
			return fmt.Errorf("serve: tasks[%d] = %d, want >= 1", j, n)
		}
		if n > lim.MaxTasksPerProc {
			return fmt.Errorf("serve: tasks[%d] = %d exceeds limit %d", j, n, lim.MaxTasksPerProc)
		}
		// The paper's CQM formulations assume a uniform instance: the
		// same task count everywhere, with imbalance expressed through
		// the per-process weights. Reject at admission (400) rather than
		// failing the job later in the build stage.
		if n != req.Tasks[0] {
			return fmt.Errorf("serve: task counts must be uniform (got %v); encode imbalance via weights", req.Tasks)
		}
	}
	if len(req.Weights) != 0 && len(req.Weights) != len(req.Tasks) {
		return fmt.Errorf("serve: %d weights for %d processes", len(req.Weights), len(req.Tasks))
	}
	for j, w := range req.Weights {
		if w < 0 || w != w { // negative or NaN
			return fmt.Errorf("serve: weights[%d] = %v is invalid", j, w)
		}
	}
	switch strings.ToLower(req.Form) {
	case "", "qcqm1", "qcqm2":
	default:
		return fmt.Errorf("serve: unknown formulation %q (want qcqm1 or qcqm2)", req.Form)
	}
	if req.K < 0 {
		return fmt.Errorf("serve: k = %d is negative (omit for unconstrained)", req.K)
	}
	if req.BudgetMs < 0 {
		return fmt.Errorf("serve: budget_ms = %d is negative", req.BudgetMs)
	}
	return nil
}

// formulation maps the request's form string to the build option.
func (req *Request) formulation() qlrb.Formulation {
	if strings.EqualFold(req.Form, "qcqm2") {
		return qlrb.QCQM2
	}
	return qlrb.QCQM1
}

// k maps the request's migration cap to BuildOptions.K, where the
// request's "0 = unconstrained" becomes the builder's K = -1.
func (req *Request) k() int {
	if req.K <= 0 {
		return -1
	}
	return req.K
}

package serve

// Kill-and-recover acceptance: the full durability stack — server,
// job-lifecycle WAL, hybrid cloud client behind the batch coalescer —
// survives an abrupt process death. The "SIGKILL" is simulated from
// the disk's point of view: the fault injector's crash switch makes
// every subsequent file operation fail, so nothing the dying process
// does after the cut reaches the journal, exactly as if the kernel had
// reaped it mid-flight. (The real kill -9 lives in
// scripts/daemon_smoke.sh.)

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/cqm"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/solve"
	"repro/internal/verify"
	"repro/internal/wal"
)

// crashGate wraps a solver: the first pass solves go straight through,
// later ones block before touching the inner solver — so a "killed"
// job has provably never reached the cloud. Closing abort makes the
// blocked solves die without ever calling through, like goroutines
// reaped by a SIGKILL.
type crashGate struct {
	inner   solve.Solver
	pass    int64
	blocked chan struct{}
	abort   chan struct{}
}

func newCrashGate(inner solve.Solver, pass int64) *crashGate {
	return &crashGate{
		inner: inner, pass: pass,
		blocked: make(chan struct{}, 64), abort: make(chan struct{}),
	}
}

func (g *crashGate) Name() string { return "crash-gate(" + g.inner.Name() + ")" }

func (g *crashGate) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if atomic.AddInt64(&g.pass, -1) < 0 {
		g.blocked <- struct{}{}
		select {
		case <-g.abort:
			return nil, errors.New("process killed mid-solve")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Solve(ctx, m, opts...)
}

// TestKillAndRecoverNoDuplicateCloudSubmissions is the acceptance
// test: a burst of jobs, SIGKILL mid-flight, restart on the same
// state dir. Every accepted job reaches a terminal verified state, and
// the cloud saw each solve exactly once — completed work is not
// re-submitted, killed work is re-submitted exactly once.
func TestKillAndRecoverNoDuplicateCloudSubmissions(t *testing.T) {
	const preDone, killed = 3, 2
	dir := t.TempDir()
	inj := faults.NewInjector(faults.Config{}) // clean until Crash()
	fs := wal.Faulty(wal.OS(), inj)
	open := func() (*wal.Log, [][]byte) {
		t.Helper()
		log, recs, err := wal.Open(wal.Options{
			Dir: dir, Name: "serve", Policy: wal.SyncAlways, FS: fs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return log, recs
	}

	// One shared "cloud": MaxBatch 1 means one cloud job per solve, so
	// client.Jobs() counts solver invocations exactly.
	client := hybrid.NewClientN(hybrid.Options{Reads: 2, Sweeps: 32, Seed: 1}, 2)
	defer client.Close()
	coal := batch.New(batch.Config{Client: client, MaxBatch: 1})
	defer coal.Close()

	gate := newCrashGate(coal, preDone)
	log1, recs := open()
	if len(recs) != 0 {
		t.Fatalf("fresh state dir replayed %d records", len(recs))
	}
	s1, err := New(Options{
		Backend: gate, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 2, QueueDepth: 16, DefaultBudget: time.Hour, Journal: log1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < preDone+killed; i++ {
		j, err := s1.Submit(req("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Exactly preDone solves pass the gate and the rest block inside
	// it — but which ids land where depends on worker scheduling, so
	// wait for the counts and sort the ids out by observed status.
	for i := 0; i < killed; i++ {
		<-gate.blocked
	}
	deadline := time.Now().Add(10 * time.Second)
	for s1.Obs().Counter("serve.done").Value() != preDone {
		if time.Now().After(deadline) {
			t.Fatalf("pre-crash jobs stuck: %d done, want %d",
				s1.Obs().Counter("serve.done").Value(), preDone)
		}
		time.Sleep(time.Millisecond)
	}
	if got := client.Jobs(); got != preDone {
		t.Fatalf("cloud jobs before kill = %d, want %d", got, preDone)
	}

	// SIGKILL: the disk is gone first (no dying gasp reaches the
	// journal), then every goroutine dies without completing.
	inj.Crash()
	close(gate.abort)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	log1.Close() //nolint:errcheck — the crashed disk may refuse the close-path sync

	// Restart on the same state dir with a healthy disk.
	inj.Reset()
	log2, recs := open()
	defer log2.Close()
	s2, err := New(Options{
		Backend: coal, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 2, QueueDepth: 16, DefaultBudget: time.Hour,
		Journal: log2, Recover: recs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background()) //nolint:errcheck

	for i, id := range ids {
		j := waitDone(t, s2, id)
		if j.Status != StatusDone || !j.Recovered {
			t.Fatalf("job %d (%s) = %+v, want done+recovered", i, id, j)
		}
		if j.Plan == nil {
			t.Fatalf("job %d (%s) has no plan", i, id)
		}
		in := lrp.MustInstance(req("t").Tasks, req("t").Weights)
		if rep := verify.Plan(in, &lrp.Plan{X: j.Plan}, -1, verify.Options{}); !rep.Ok() {
			t.Fatalf("job %d (%s) served unverified plan: %v", i, id, rep.Err())
		}
	}
	// The dedup contract: completed jobs were restored (0 extra cloud
	// submissions), killed jobs re-ran exactly once each.
	if got := client.Jobs(); got != preDone+killed {
		t.Fatalf("cloud jobs after recovery = %d, want %d (no duplicates)", got, preDone+killed)
	}
}

// TestKillRecoverUnderDiskFaults hammers the same stack under seeded
// disk-fault schedules: short writes tearing the journal tail,
// read-corruption flipping replayed bytes, and a crash at an arbitrary
// point. The invariant is not "nothing is lost" — a torn tail loses
// its suffix by design — but "nothing wrong is ever served": the
// daemon always restarts, and every queryable job is either terminal
// with a plan that passes verify.Plan, or cleanly absent with a typed
// lookup error.
func TestKillRecoverUnderDiskFaults(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inj := faults.NewInjector(faults.Disk(seed, 0.08))
		fs := wal.Faulty(wal.OS(), inj)
		dir := t.TempDir()

		log1, _, err := wal.Open(wal.Options{Dir: dir, Name: "serve", Policy: wal.SyncAlways, FS: fs})
		if err != nil {
			// The schedule faulted the very bootstrap — an operator-visible
			// open error, not silent corruption. Acceptable; next seed.
			continue
		}
		s1, err := New(Options{
			Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
			Workers: 1, QueueDepth: 32, DefaultBudget: time.Hour, Journal: log1,
		})
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		var ids []string
		for i := 0; i < 12; i++ {
			if j, err := s1.Submit(req("t")); err == nil {
				ids = append(ids, j.ID)
			}
		}
		// Let roughly half the burst land, then cut the power.
		for _, id := range ids[:len(ids)/2] {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			s1.Wait(ctx, id) //nolint:errcheck — under faults some fail; both outcomes are fine
			cancel()
		}
		inj.Crash()
		if err := s1.Drain(context.Background()); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		log1.Close() //nolint:errcheck

		inj.Reset()
		log2, recs, err := wal.Open(wal.Options{Dir: dir, Name: "serve", Policy: wal.SyncAlways, FS: fs})
		if err != nil {
			// The replayed fault schedule hit the recovery rewrite itself:
			// a loud, typed open error. The operator swaps the disk and the
			// same state dir must then open cleanly.
			log2, recs, err = wal.Open(wal.Options{Dir: dir, Name: "serve", Policy: wal.SyncAlways})
			if err != nil {
				t.Fatalf("seed %d: reopen on healthy disk: %v", seed, err)
			}
		}
		s2, err := New(Options{
			Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
			Workers: 1, QueueDepth: 32, DefaultBudget: time.Hour,
			Journal: log2, Recover: recs,
		})
		if err != nil {
			t.Fatalf("seed %d: New after crash: %v", seed, err)
		}
		in := lrp.MustInstance(req("t").Tasks, req("t").Weights)
		for _, id := range ids {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			j, err := s2.Wait(ctx, id)
			cancel()
			if err != nil {
				// Lost to the torn tail or corrupt frame: must be a typed
				// lookup error, never a hang or a half-baked record.
				if !errors.Is(err, ErrUnknownJob) {
					t.Fatalf("seed %d: job %s lookup = %v, want typed ErrUnknownJob", seed, id, err)
				}
				continue
			}
			if j.Status == StatusDone {
				if rep := verify.Plan(in, &lrp.Plan{X: j.Plan}, -1, verify.Options{}); !rep.Ok() {
					t.Fatalf("seed %d: job %s served corrupt plan: %v", seed, id, rep.Err())
				}
			}
		}
		s2.Drain(context.Background()) //nolint:errcheck
		log2.Close()                   //nolint:errcheck
	}
}

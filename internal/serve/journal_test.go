package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/obs"
	"repro/internal/solve"
)

// memJournal is an in-memory Journal with optional compaction. Like
// the real *wal.Log it must tolerate concurrent appends.
type memJournal struct {
	mu         sync.Mutex
	records    [][]byte
	compactDue atomic.Bool
	compacted  atomic.Bool
}

func (j *memJournal) Append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, append([]byte(nil), rec...))
	return nil
}

func (j *memJournal) CompactDue() bool { return j.compactDue.Load() }

func (j *memJournal) Compact(records [][]byte) error {
	j.compactDue.Store(false)
	j.compacted.Store(true)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = nil
	for _, r := range records {
		j.records = append(j.records, append([]byte(nil), r...))
	}
	return nil
}

func (j *memJournal) copy() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([][]byte, len(j.records))
	for i, r := range j.records {
		out[i] = append([]byte(nil), r...)
	}
	return out
}

// gateBackend solves the first n jobs instantly, then blocks —
// announcing each blocked solve on blocked — until release closes.
type gateBackend struct {
	n       int64
	blocked chan struct{}
	release chan struct{}
}

func newGate(n int64) *gateBackend {
	return &gateBackend{n: n, blocked: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateBackend) Name() string { return "gate" }

func (g *gateBackend) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if atomic.AddInt64(&g.n, -1) < 0 {
		g.blocked <- struct{}{}
		select {
		case <-g.release:
		case <-ctx.Done():
		}
	}
	x := make([]bool, m.NumVars())
	return &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, 1e-6)}, nil
}

func waitDone(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return j
}

// TestRecoveryRestoresDoneAndRequeuesUnfinished is the restart
// contract: jobs terminal at the crash come back as queryable history
// (plans intact, Recovered set), jobs queued or running at the crash
// re-run to completion, and new ids never collide with recovered ones.
func TestRecoveryRestoresDoneAndRequeuesUnfinished(t *testing.T) {
	clk := fakeClock(t)
	mem := &memJournal{}
	gate := newGate(3)
	s1, err := New(Options{
		Backend: gate, Clock: clk, NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour, Journal: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s1.Submit(req("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitDone(t, s1, ids[2]) // single worker: 0,1,2 done in order
	<-gate.blocked          // job 3 is mid-solve; job 4 still queued

	// "kill -9": snapshot the journal as the disk would hold it, then
	// tear the old server down out-of-band.
	records := mem.copy()
	close(gate.release)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s2, err := New(Options{
		Backend: &instantBackend{}, Clock: clk, NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		Recover: records, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background()) //nolint:errcheck

	for _, id := range ids[:3] {
		j, err := s2.Job(id)
		if err != nil {
			t.Fatalf("restored job %s: %v", id, err)
		}
		if j.Status != StatusDone || !j.Recovered || j.Plan == nil {
			t.Fatalf("restored job %s = %+v, want done+recovered with plan", id, j)
		}
	}
	for _, id := range ids[3:] {
		j := waitDone(t, s2, id)
		if j.Status != StatusDone || !j.Recovered {
			t.Fatalf("requeued job %s = %+v, want done+recovered", id, j)
		}
	}
	if got := reg.Counter("serve.recovered").Value(); got != 2 {
		t.Fatalf("serve.recovered = %d, want 2", got)
	}
	if got := reg.Counter("serve.recovery_restored").Value(); got != 3 {
		t.Fatalf("serve.recovery_restored = %d, want 3", got)
	}
	// nextID resumed past the recovered ids: a fresh submit gets a new id.
	j, err := s2.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if j.ID == id {
			t.Fatalf("fresh job reused recovered id %s", id)
		}
	}
	if !waitDone(t, s2, j.ID).Recovered == false {
		t.Fatalf("fresh job marked recovered")
	}
}

// TestRecoveryRespectsTenantBudget replays completed wall time into
// the tenant budgets: an exhausted tenant's unfinished jobs fail with
// ErrBudgetExhausted instead of silently re-running.
func TestRecoveryRespectsTenantBudget(t *testing.T) {
	clk := fakeClock(t)
	mem := &memJournal{}
	// Each solve burns 2s of fake wall time, exactly the tenant budget:
	// one completed solve leaves the tenant exhausted.
	s1, err := New(Options{
		Backend: &instantBackend{advance: func() { clk.Advance(2 * time.Second) }},
		Clock:   clk, NoRateLimit: true, Workers: 1, QueueDepth: 16,
		DefaultBudget: time.Hour, TenantBudget: 2 * time.Second, Journal: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s1.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, done.ID)

	// Forge an unfinished accept for the same tenant, as if the daemon
	// died right after admitting it.
	rec, _ := json.Marshal(journalRecord{
		V: journalVersion, Op: opAccept, ID: "j00000099",
		Req: req("t"), BudgetMs: 1000,
	})
	records := append(mem.copy(), rec)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{
		Backend: &instantBackend{}, Clock: clk, NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		TenantBudget: 2 * time.Second, Recover: records,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background()) //nolint:errcheck
	j, err := s2.Job("j00000099")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusFailed {
		t.Fatalf("over-budget recovered job status = %s, want failed", j.Status)
	}
	if !errors.Is(ErrBudgetExhausted, ErrOverload) || j.Error == "" {
		t.Fatalf("recovered job error = %q, want budget exhaustion", j.Error)
	}
	// The tenant stays exhausted for fresh submissions too.
	if _, err := s2.Submit(req("t")); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("fresh submit err = %v, want ErrBudgetExhausted", err)
	}
}

// TestRecoveryReverifiesDonePlans: a done record whose plan no longer
// passes verify.Plan (bit rot below the WAL's CRC, or a stricter
// config) is demoted to unfinished and re-solved — corrupt state is
// never served as history.
func TestRecoveryReverifiesDonePlans(t *testing.T) {
	accept, _ := json.Marshal(journalRecord{
		V: journalVersion, Op: opAccept, ID: "j00000001",
		Req: req("t"), BudgetMs: 1000,
	})
	// Non-conserving plan: cell [0][0] claims 5 of 4 tasks stay.
	done, _ := json.Marshal(journalRecord{
		V: journalVersion, Op: opDone, ID: "j00000001",
		Plan: [][]int{{5, 0, 0}, {0, 4, 0}, {0, 0, 4}},
	})
	garbage := []byte("not json")
	reg := obs.NewRegistry()
	s, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		Recover: [][]byte{accept, done, garbage}, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background()) //nolint:errcheck
	j := waitDone(t, s, "j00000001")
	if j.Status != StatusDone || !j.Recovered {
		t.Fatalf("re-solved job = %+v, want done+recovered", j)
	}
	// The re-solved plan conserves tasks; the corrupt one could not.
	if j.Plan[0][0] == 5 {
		t.Fatal("corrupt journaled plan was served")
	}
	if got := reg.Counter("serve.recovery_corrupt").Value(); got != 1 {
		t.Fatalf("serve.recovery_corrupt = %d, want 1", got)
	}
	if got := reg.Counter("serve.recovery_dropped").Value(); got != 1 {
		t.Fatalf("serve.recovery_dropped = %d, want 1", got)
	}
}

// TestEvictedLookupIs410 pins the eviction contract: an id dropped by
// retention answers ErrEvicted (HTTP 410 Gone, errors.Is
// ErrUnknownJob), a never-issued id stays ErrUnknownJob (404) — and
// the distinction survives a restart through the journal.
func TestEvictedLookupIs410(t *testing.T) {
	mem := &memJournal{}
	s, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		MaxJobs: 1, Journal: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, first.ID)
	second, err := s.Submit(req("t")) // retention cap 1: evicts first
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, second.ID)

	_, err = s.Job(first.ID)
	if !errors.Is(err, ErrEvicted) || !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("evicted lookup err = %v, want ErrEvicted wrapping ErrUnknownJob", err)
	}
	if lookupStatus(err) != 410 {
		t.Fatalf("lookupStatus(evicted) = %d, want 410", lookupStatus(err))
	}
	_, err = s.Job("j99999999")
	if !errors.Is(err, ErrUnknownJob) || errors.Is(err, ErrEvicted) {
		t.Fatalf("unknown lookup err = %v, want plain ErrUnknownJob", err)
	}
	if lookupStatus(err) != 404 {
		t.Fatalf("lookupStatus(unknown) = %d, want 404", lookupStatus(err))
	}

	records := mem.copy()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		MaxJobs: 1, Recover: records,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background()) //nolint:errcheck
	if _, err := s2.Job(first.ID); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted lookup after restart = %v, want ErrEvicted", err)
	}
}

// TestJournalCompactionSnapshot: when the journal reports compaction
// due after a terminal transition, the server rewrites it as a state
// snapshot — and recovering from that snapshot reproduces the same
// jobs and eviction memory.
func TestJournalCompactionSnapshot(t *testing.T) {
	mem := &memJournal{}
	s, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		MaxJobs: 1, Journal: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, first.ID)
	second, err := s.Submit(req("t"))
	if err != nil {
		t.Fatal(err)
	}
	mem.compactDue.Store(true)
	waitDone(t, s, second.ID) // terminal transition triggers compaction
	if !mem.compacted.Load() {
		t.Fatal("journal never compacted")
	}
	records := mem.copy()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{
		Backend: &instantBackend{}, Clock: fakeClock(t), NoRateLimit: true,
		Workers: 1, QueueDepth: 16, DefaultBudget: time.Hour,
		MaxJobs: 1, Recover: records,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background()) //nolint:errcheck
	j, err := s2.Job(second.ID)
	if err != nil || j.Status != StatusDone || !j.Recovered {
		t.Fatalf("snapshot-recovered job = %+v (%v), want done+recovered", j, err)
	}
	if _, err := s2.Job(first.ID); !errors.Is(err, ErrEvicted) {
		t.Fatalf("eviction memory lost in compaction: %v", err)
	}
}

package bits

import (
	"math/rand"
	"testing"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSetGetFlipRoundTrip(t *testing.T) {
	const n = 131 // crosses word boundaries, ends mid-word
	s := New(n)
	ref := make([]bool, n)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 10_000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			v := rng.Intn(2) == 0
			s.Set2(i, v)
			ref[i] = v
		case 1:
			s.Flip(i)
			ref[i] = !ref[i]
		case 2:
			if s.Get(i) != ref[i] {
				t.Fatalf("step %d: Get(%d) = %v, want %v", step, i, s.Get(i), ref[i])
			}
		}
	}
	for i := range ref {
		if s.Get(i) != ref[i] {
			t.Fatalf("final: Get(%d) = %v, want %v", i, s.Get(i), ref[i])
		}
	}
	count := 0
	for _, v := range ref {
		if v {
			count++
		}
	}
	if got := s.Count(); got != count {
		t.Fatalf("Count = %d, want %d", got, count)
	}
}

func TestPackUnpackBools(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 63, 64, 65, 100, 257} {
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		s := FromBools(x)
		back := s.ToBools(n)
		if len(back) != n {
			t.Fatalf("n=%d: ToBools returned %d values", n, len(back))
		}
		for i := range x {
			if back[i] != x[i] {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
		inPlace := make([]bool, n)
		s.UnpackBools(inPlace)
		for i := range x {
			if inPlace[i] != x[i] {
				t.Fatalf("n=%d: UnpackBools bit %d mismatch", n, i)
			}
		}
	}
}

func TestPackBoolsZeroesTailBits(t *testing.T) {
	s := New(70)
	for i := range s {
		s[i] = ^uint64(0)
	}
	x := make([]bool, 70) // all false
	s.PackBools(x)
	for i := 0; i < 70; i++ {
		if s.Get(i) {
			t.Fatalf("bit %d survived PackBools of all-false", i)
		}
	}
	if s[1] != 0 {
		t.Fatalf("tail bits of last word not zeroed: %#x", s[1])
	}
}

func TestCopyEqualClear(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := New(3)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("copied sets reported unequal")
	}
	if !a.Equal(a) {
		t.Fatal("set not equal to itself")
	}
	if a.Equal(New(100)) {
		t.Fatal("different-length sets reported equal")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
}

// Package bits provides the packed uint64 bitset that backs assignment
// state throughout the solve hot path. The annealing and tabu inner
// loops (internal/sa, internal/tabu) read and flip millions of binary
// variables per second; a []bool burns one byte — and one cache line
// per 64 variables — where a bitset word burns one bit, so the whole
// assignment of a paper-sized model fits in a handful of cache lines.
// The independent verifier (internal/verify) uses the same packed form
// to re-scan a sample against every constraint without re-reading a
// byte-per-variable slice once per constraint.
//
// A Set is a plain []uint64 with no length header of its own: callers
// that need the variable count carry it alongside, which keeps the type
// free to alias into pooled scratch buffers.
package bits

import "math/bits"

// Set is a packed bitset: bit i lives in word i/64 at position i%64.
type Set []uint64

// WordsFor returns the number of words needed for n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// New returns a zeroed Set with capacity for n bits.
func New(n int) Set { return make(Set, WordsFor(n)) }

// Get reports whether bit i is set.
func (s Set) Get(i int) bool { return s[uint(i)>>6]>>(uint(i)&63)&1 != 0 }

// Set2 sets bit i to v. (Named to leave the type's own name free; the
// hot paths use SetTrue/SetFalse/Flip directly.)
func (s Set) Set2(i int, v bool) {
	if v {
		s[uint(i)>>6] |= 1 << (uint(i) & 63)
	} else {
		s[uint(i)>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip inverts bit i.
func (s Set) Flip(i int) { s[uint(i)>>6] ^= 1 << (uint(i) & 63) }

// Clear zeroes every word.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// CopyFrom copies t into s. The sets must be the same length.
func (s Set) CopyFrom(t Set) { copy(s, t) }

// Equal reports whether s and t contain identical words.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	total := 0
	for _, w := range s {
		total += bits.OnesCount64(w)
	}
	return total
}

// FromBools packs a []bool into a fresh Set.
func FromBools(x []bool) Set {
	s := New(len(x))
	s.PackBools(x)
	return s
}

// PackBools packs x into s, which must have at least WordsFor(len(x))
// words; words beyond the packed range are left untouched, bits beyond
// len(x) in the last touched word are zeroed.
func (s Set) PackBools(x []bool) {
	nw := WordsFor(len(x))
	for w := 0; w < nw; w++ {
		var word uint64
		base := w << 6
		end := base + 64
		if end > len(x) {
			end = len(x)
		}
		for i := base; i < end; i++ {
			if x[i] {
				word |= 1 << (uint(i) & 63)
			}
		}
		s[w] = word
	}
}

// ToBools decodes the first n bits into a fresh []bool.
func (s Set) ToBools(n int) []bool {
	return s.AppendBools(make([]bool, 0, n), n)
}

// AppendBools appends the first n bits to dst and returns it.
func (s Set) AppendBools(dst []bool, n int) []bool {
	for i := 0; i < n; i++ {
		dst = append(dst, s.Get(i))
	}
	return dst
}

// UnpackBools decodes the first len(x) bits into x in place.
func (s Set) UnpackBools(x []bool) {
	for i := range x {
		x[i] = s.Get(i)
	}
}

package verify

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/solve"
)

// partitionModel builds min (sum w_i x_i - target)^2 with one named
// constraint bounding the selection size.
func partitionModel(weights []float64, target float64, maxPicked float64) *cqm.Model {
	m := cqm.New()
	var e, count cqm.LinExpr
	for _, w := range weights {
		v := m.AddBinary("x")
		e.Add(v, w)
		count.Add(v, 1)
	}
	e.Offset = -target
	m.AddObjectiveSquared(e)
	m.AddConstraint("picklimit", count, cqm.Le, maxPicked)
	return m
}

func instance(t *testing.T, tasks []int, weights []float64) *lrp.Instance {
	t.Helper()
	in, err := lrp.NewInstance(tasks, weights)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSampleAcceptsConsistentResult(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 2)
	x := []bool{true, false, false}
	res := &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: true}
	rep := Sample(m, res, Options{})
	if !rep.Ok() {
		t.Fatalf("consistent result rejected: %v", rep.Violations)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v on passing report", rep.Err())
	}
	if !rep.Feasible || rep.Objective != 0 {
		t.Fatalf("recomputed feasible=%v objective=%v, want true/0", rep.Feasible, rep.Objective)
	}
}

func TestSampleAcceptsHonestInfeasible(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 1)
	x := []bool{false, true, true} // picks 2 > limit 1
	res := &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: false}
	if rep := Sample(m, res, Options{}); !rep.Ok() {
		t.Fatalf("honest infeasible result rejected: %v", rep.Violations)
	}
}

func TestSampleRejectsLyingFeasibilityNamingConstraint(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 1)
	x := []bool{false, true, true}
	res := &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: true}
	rep := Sample(m, res, Options{})
	if rep.Ok() {
		t.Fatal("claim-feasible result with violated constraint passed")
	}
	err := rep.Err()
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Err() = %v, want ErrRejected", err)
	}
	if !strings.Contains(err.Error(), "picklimit") {
		t.Fatalf("rejection does not name the broken constraint: %v", err)
	}
}

func TestSampleRejectsObjectiveMismatch(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 2)
	x := []bool{true, false, false}
	res := &solve.Result{Sample: x, Objective: m.Objective(x) + 10, Feasible: true}
	rep := Sample(m, res, Options{})
	if rep.Ok() || rep.Violations[0].Check != "objective" {
		t.Fatalf("objective mismatch not caught: %+v", rep.Violations)
	}
}

func TestSampleRejectsShapeMismatch(t *testing.T) {
	m := partitionModel([]float64{5, 3}, 5, 2)
	res := &solve.Result{Sample: []bool{true}, Objective: 0, Feasible: true}
	rep := Sample(m, res, Options{})
	if rep.Ok() || rep.Violations[0].Check != "shape" {
		t.Fatalf("shape mismatch not caught: %+v", rep.Violations)
	}
}

func TestSampleRejectsFeasibleClaimedInfeasible(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 2)
	x := []bool{true, false, false}
	res := &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: false}
	rep := Sample(m, res, Options{})
	if rep.Ok() || rep.Violations[0].Check != "feasibility" {
		t.Fatalf("inverse feasibility lie not caught: %+v", rep.Violations)
	}
}

func TestAttestFixesMetadata(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5, 2)
	x := []bool{true, false, false}
	res := &solve.Result{Sample: x, Objective: 99, Feasible: false}
	if !Attest(m, res, Options{}) {
		t.Fatal("Attest did not report a change on inconsistent metadata")
	}
	if res.Objective != 0 || !res.Feasible {
		t.Fatalf("Attest left objective=%v feasible=%v", res.Objective, res.Feasible)
	}
	if Attest(m, res, Options{}) {
		t.Fatal("Attest reported a change on already-consistent metadata")
	}
}

func TestPlanAcceptsIdentity(t *testing.T) {
	in := instance(t, []int{4, 2, 6}, []float64{1, 2, 0.5})
	rep := Plan(in, lrp.NewPlan(in), -1, Options{})
	if !rep.Ok() {
		t.Fatalf("identity plan rejected: %v", rep.Violations)
	}
	if !rep.Feasible {
		t.Fatal("identity plan not reported feasible")
	}
}

func TestPlanRejectsConservationViolation(t *testing.T) {
	in := instance(t, []int{4, 2, 6}, []float64{1, 2, 0.5})
	p := lrp.NewPlan(in)
	p.X[0][1]++ // invent a task out of thin air in column 1
	rep := Plan(in, p, -1, Options{})
	if rep.Ok() {
		t.Fatal("task-inventing plan passed verification")
	}
	if !strings.Contains(rep.Err().Error(), "conserve[1]") {
		t.Fatalf("violation does not name conserve[1]: %v", rep.Err())
	}
	if !errors.Is(rep.Err(), ErrRejected) {
		t.Fatalf("Err() = %v, want ErrRejected", rep.Err())
	}
}

func TestPlanRejectsBudgetOverrun(t *testing.T) {
	in := instance(t, []int{4, 2, 6}, []float64{1, 2, 0.5})
	p := lrp.NewPlan(in)
	p.Move(0, 2, 3) // move 3 tasks from proc 2 to proc 0
	if rep := Plan(in, p, 3, Options{}); !rep.Ok() {
		t.Fatalf("plan within budget rejected: %v", rep.Violations)
	}
	rep := Plan(in, p, 2, Options{})
	if rep.Ok() {
		t.Fatal("budget overrun passed verification")
	}
	if !strings.Contains(rep.Err().Error(), "migcap") {
		t.Fatalf("violation does not name migcap: %v", rep.Err())
	}
}

func TestPlanRejectsNegativeEntry(t *testing.T) {
	in := instance(t, []int{4, 2}, []float64{1, 1})
	p := lrp.NewPlan(in)
	p.X[0][0] -= 1
	p.X[1][0] += 1 // keep the column sum intact; only negativity breaks
	p.X[0][0] -= 4
	p.X[1][0] += 4
	rep := Plan(in, p, -1, Options{})
	if rep.Ok() {
		t.Fatal("negative-entry plan passed verification")
	}
	if !strings.Contains(rep.Err().Error(), "negative[0,0]") {
		t.Fatalf("violation does not name the negative cell: %v", rep.Err())
	}
}

func TestPlanLoadCap(t *testing.T) {
	in := instance(t, []int{4, 4}, []float64{1, 1})
	p := lrp.NewPlan(in)
	p.Move(0, 1, 4) // all of proc 1's tasks onto proc 0: load 8 vs 0
	if rep := Plan(in, p, -1, Options{}); !rep.Ok() {
		t.Fatalf("cap disabled but plan rejected: %v", rep.Violations)
	}
	rep := Plan(in, p, -1, Options{MaxLoad: 6})
	if rep.Ok() {
		t.Fatal("overloaded plan passed the load cap")
	}
	if !strings.Contains(rep.Err().Error(), "loadcap[0]") {
		t.Fatalf("violation does not name loadcap[0]: %v", rep.Err())
	}
}

func TestPlanObjectiveMatchesEvaluate(t *testing.T) {
	in := instance(t, []int{6, 2, 4}, []float64{1, 3, 0.5})
	p := lrp.NewPlan(in)
	p.Move(0, 1, 1)
	rep := Plan(in, p, -1, Options{})
	if !rep.Ok() {
		t.Fatalf("valid plan rejected: %v", rep.Violations)
	}
	// Independent cross-check: sum of squared deviations from average.
	loads := p.Loads(in)
	avg := 0.0
	for _, l := range loads {
		avg += l
	}
	avg /= float64(len(loads))
	want := 0.0
	for _, l := range loads {
		want += (l - avg) * (l - avg)
	}
	if diff := rep.Objective - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Objective = %v, want %v", rep.Objective, want)
	}
}

func TestNilInputs(t *testing.T) {
	if rep := Sample(nil, &solve.Result{}, Options{}); rep.Ok() {
		t.Fatal("nil model passed")
	}
	if rep := Sample(cqm.New(), nil, Options{}); rep.Ok() {
		t.Fatal("nil result passed")
	}
	if rep := Plan(nil, nil, -1, Options{}); rep.Ok() {
		t.Fatal("nil instance passed")
	}
	in := instance(t, []int{1}, []float64{1})
	if rep := Plan(in, nil, -1, Options{}); rep.Ok() {
		t.Fatal("nil plan passed")
	}
}

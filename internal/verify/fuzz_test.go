package verify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/solve"
)

// FuzzPlan drives random plan matrices against random instances: the
// verifier must never panic, and on these small instances its verdict
// must agree with a brute-force re-check built directly from the
// definitions (column sums, negativity, off-diagonal migration count).
func FuzzPlan(f *testing.F) {
	f.Add(int64(1), uint8(3), int8(2), uint8(0))
	f.Add(int64(42), uint8(1), int8(-1), uint8(7))
	f.Add(int64(7), uint8(4), int8(0), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, procs uint8, k int8, noise uint8) {
		m := int(procs%6) + 1
		rng := rand.New(rand.NewSource(seed))
		tasks := make([]int, m)
		weights := make([]float64, m)
		for j := range tasks {
			tasks[j] = rng.Intn(8)
			weights[j] = float64(rng.Intn(40)) / 8
		}
		in, err := lrp.NewInstance(tasks, weights)
		if err != nil {
			t.Skip()
		}
		// Start from the identity and apply random (possibly invalid)
		// edits: conserving moves, column breaks, and negative cells.
		p := lrp.NewPlan(in)
		for e := 0; e < int(noise%12); e++ {
			i, j := rng.Intn(m), rng.Intn(m)
			switch rng.Intn(3) {
			case 0: // conserving move
				if p.X[j][j] > 0 {
					p.Move(i, j, 1)
				}
			case 1: // break conservation
				p.X[i][j] += rng.Intn(3) - 1
			case 2: // force negativity
				p.X[i][j] -= rng.Intn(2)
			}
		}

		rep := Plan(in, p, int(k), Options{})

		// Brute-force re-derivation from the definitions.
		okBrute := true
		migrated := 0
		for j := 0; j < m; j++ {
			sum := 0
			for i := 0; i < m; i++ {
				if p.X[i][j] < 0 {
					okBrute = false
				} else if i != j {
					migrated += p.X[i][j]
				}
				sum += p.X[i][j]
			}
			if sum != in.Tasks[j] {
				okBrute = false
			}
		}
		if k >= 0 && migrated > int(k) {
			okBrute = false
		}
		if rep.Ok() != okBrute {
			t.Fatalf("verifier ok=%v, brute force ok=%v (plan %v, tasks %v, k=%d): %v",
				rep.Ok(), okBrute, p.X, in.Tasks, k, rep.Violations)
		}
		if rep.Ok() && !rep.Feasible {
			t.Fatal("passing report not marked feasible")
		}
	})
}

// FuzzSample drives random samples and claims against random CQMs: the
// verifier must never panic, and its recomputed feasibility must agree
// with the model's own full evaluation.
func FuzzSample(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), 0.0, true, uint8(0))
	f.Add(int64(9), uint8(5), uint8(0), 3.5, false, uint8(31))
	f.Add(int64(123), uint8(0), uint8(4), -1.0, true, uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, vars, cons uint8, claimObj float64, claimFeas bool, bits uint8) {
		if math.IsNaN(claimObj) || math.IsInf(claimObj, 0) {
			t.Skip()
		}
		n := int(vars % 8)
		rng := rand.New(rand.NewSource(seed))
		m := cqm.New()
		var obj cqm.LinExpr
		ids := make([]cqm.VarID, n)
		for i := 0; i < n; i++ {
			ids[i] = m.AddBinary("x")
			obj.Add(ids[i], float64(rng.Intn(9)-4))
		}
		obj.Offset = float64(rng.Intn(5))
		m.AddObjectiveSquared(obj)
		for c := 0; c < int(cons%5) && n > 0; c++ {
			var e cqm.LinExpr
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					e.Add(ids[i], float64(rng.Intn(5)-2))
				}
			}
			m.AddConstraint("c", e, cqm.Sense(rng.Intn(3)), float64(rng.Intn(7)-3))
		}
		x := make([]bool, n)
		for i := range x {
			x[i] = bits&(1<<(i%8)) != 0
		}
		res := &solve.Result{Sample: x, Objective: claimObj, Feasible: claimFeas}

		rep := Sample(m, res, Options{})
		if rep.Feasible != m.Feasible(x, DefaultTol) {
			t.Fatalf("verifier feasible=%v, model says %v", rep.Feasible, m.Feasible(x, DefaultTol))
		}
		// A result whose claims are actually consistent must pass.
		honest := &solve.Result{Sample: x, Objective: m.Objective(x), Feasible: m.Feasible(x, DefaultTol)}
		if hrep := Sample(m, honest, Options{}); !hrep.Ok() {
			t.Fatalf("honest result rejected: %v", hrep.Violations)
		}
	})
}

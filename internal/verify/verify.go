// Package verify is the independent trust-but-verify layer between
// solvers and consumers. Nothing downstream of a solver — resilient
// retries, hedged races, qlrb decoding, the dlb driver — takes a
// solver's word for anything: every response and every decoded plan is
// re-checked from scratch against the model or instance it claims to
// solve before it is allowed to influence a running system.
//
// The verifier is deliberately independent of the solver stack: it
// reuses none of the incremental evaluators (internal/cqm.Evaluator)
// or repair helpers the solvers themselves rely on, so a bug or a
// corrupted reply in that machinery cannot vouch for itself. (It does
// share the low-level internal/bits bitset: Sample packs the byte-per-
// variable sample into uint64 words once, then every constraint scan
// reads the packed form — the whole assignment stays in a few cache
// lines across the model's full constraint sweep.) It is also
// allocation-light — a clean verification allocates one Report plus a
// pooled packed-sample scratch that is reused across calls — so it is
// cheap enough to run on every solve of a BSP rebalancing loop.
//
// Two inputs are covered:
//
//   - Sample re-checks a solve.Result against its cqm.Model: sample
//     shape, the reported objective against a from-scratch
//     recomputation (within tolerance), and the reported feasibility
//     claim against every constraint, with per-constraint violation
//     reports naming the broken constraints.
//   - Plan re-checks a decoded lrp.Plan against its instance: shape,
//     non-negative entries, one-hot assignment per task (every task of
//     every source process lands on exactly one destination — the
//     column-conservation constraints of the CQM formulations), the
//     ≤ k migration budget against the origin assignment, and an
//     optional load cap.
//
// A failed check is a Violation; Report.Err wraps ErrRejected so call
// sites classify rejections with errors.Is and log which constraint
// broke.
package verify

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bits"
	"repro/internal/cqm"
	"repro/internal/lrp"
	"repro/internal/solve"
)

// packedSample is the pooled scratch Sample/Attest pack assignments
// into; pooling keeps repeated verifications allocation-free.
type packedSample struct{ s bits.Set }

var packPool = sync.Pool{New: func() any { return new(packedSample) }}

// getPacked packs x into a pooled bitset. Callers return it with
// packPool.Put when done.
func getPacked(x []bool) *packedSample {
	p := packPool.Get().(*packedSample)
	if need := bits.WordsFor(len(x)); cap(p.s) < need {
		p.s = make(bits.Set, need)
	} else {
		p.s = p.s[:need]
	}
	p.s.PackBools(x)
	return p
}

// packedValue evaluates a sparse linear expression against the packed
// assignment — the verifier's own walker, independent of the solver
// evaluators.
func packedValue(e *cqm.LinExpr, s bits.Set) float64 {
	v := e.Offset
	for _, t := range e.Terms {
		if s.Get(int(t.Var)) {
			v += t.Coef
		}
	}
	return v
}

// packedViolation recomputes one constraint's violation gap from the
// packed assignment: 0 when satisfied, otherwise the absolute gap.
func packedViolation(c *cqm.Constraint, s bits.Set) float64 {
	v := packedValue(&c.Expr, s)
	switch c.Sense {
	case cqm.Eq:
		return math.Abs(v - c.RHS)
	case cqm.Le:
		if v > c.RHS {
			return v - c.RHS
		}
	case cqm.Ge:
		if v < c.RHS {
			return c.RHS - v
		}
	}
	return 0
}

// packedObjective recomputes the model objective from the packed
// assignment via the model's exposed structure.
func packedObjective(m *cqm.Model, s bits.Set) float64 {
	linear, quad, squares, offset := m.ObjectiveParts()
	e := offset
	for _, t := range linear {
		if s.Get(int(t.Var)) {
			e += t.Coef
		}
	}
	for _, q := range quad {
		if s.Get(int(q.A)) && s.Get(int(q.B)) {
			e += q.Coef
		}
	}
	for i := range squares {
		v := packedValue(&squares[i], s)
		e += v * v
	}
	return e
}

// ErrRejected marks a response or plan that failed independent
// verification. Every non-nil Report.Err wraps it.
var ErrRejected = errors.New("verify: rejected")

// DefaultTol is the default feasibility/objective tolerance. All LRP
// data is integral (scaled by L_avg), so a loose absolute tolerance is
// safe; it matches the solvers' own feasTol.
const DefaultTol = 1e-6

// Options tunes a verification.
type Options struct {
	// Tol is the feasibility and relative-objective tolerance
	// (DefaultTol when zero or negative).
	Tol float64
	// MaxLoad, when > 0, additionally checks that no process's
	// post-rebalancing load exceeds it (Plan only) — the CQM's loadcap
	// constraint group. Zero disables the check: decoded plans are
	// repaired for conservation and budget, not for the load cap.
	MaxLoad float64
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return DefaultTol
}

// Violation is one failed check.
type Violation struct {
	// Check names what broke: a constraint name from the model (e.g.
	// "conserve[2]", "migcap"), or one of the verifier's own checks
	// ("shape", "objective", "feasibility", "negative[i,j]").
	Check string
	// Gap quantifies how far off the check was (0 when not meaningful).
	Gap float64
	// Detail is the human-readable explanation.
	Detail string
}

// String renders the violation for logs and errors.
func (v Violation) String() string {
	if v.Gap > 0 {
		return fmt.Sprintf("%s: %s (gap %g)", v.Check, v.Detail, v.Gap)
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// Report is the outcome of one verification.
type Report struct {
	// Violations lists every failed check; empty means verified.
	Violations []Violation
	// Objective is the independently recomputed objective: the model
	// objective of the sample (Sample), or the sum of squared load
	// deviations of the plan (Plan).
	Objective float64
	// Feasible is the independently recomputed feasibility — whether
	// the sample/plan satisfies every constraint, regardless of what
	// the solver claimed.
	Feasible bool
	// Checks counts the checks performed (diagnostics; a shape failure
	// short-circuits the rest).
	Checks int
}

// Ok reports whether the verification passed.
func (r *Report) Ok() bool { return r != nil && len(r.Violations) == 0 }

// Err returns nil for a passing report, otherwise an error wrapping
// ErrRejected that names the first broken check.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	if r == nil {
		return fmt.Errorf("%w: nil report", ErrRejected)
	}
	v := r.Violations[0]
	if len(r.Violations) == 1 {
		return fmt.Errorf("%w: %s", ErrRejected, v)
	}
	return fmt.Errorf("%w: %s (and %d more)", ErrRejected, v, len(r.Violations)-1)
}

func (r *Report) fail(check, detail string, gap float64) {
	r.Violations = append(r.Violations, Violation{Check: check, Gap: gap, Detail: detail})
}

// Sample independently re-checks a solver response against the model it
// claims to solve: the sample must cover every variable, reproduce the
// reported objective within tolerance, and back the reported
// feasibility claim against every constraint. A response that honestly
// reports itself infeasible passes (the claims are consistent); a
// response claiming feasibility while violating constraints is rejected
// with one violation per broken constraint, named after it.
func Sample(m *cqm.Model, res *solve.Result, opt Options) *Report {
	tol := opt.tol()
	rep := &Report{}
	if m == nil {
		rep.fail("model", "nil model", 0)
		return rep
	}
	if res == nil {
		rep.fail("response", "nil result", 0)
		return rep
	}
	rep.Checks++
	if len(res.Sample) != m.NumVars() {
		rep.fail("shape", fmt.Sprintf("sample has %d of %d variables", len(res.Sample), m.NumVars()), math.Abs(float64(len(res.Sample)-m.NumVars())))
		return rep
	}

	packed := getPacked(res.Sample)
	defer packPool.Put(packed)
	obj := packedObjective(m, packed.s)
	rep.Objective = obj
	rep.Checks++
	if gap := math.Abs(obj - res.Objective); gap > tol*(1+math.Abs(obj)) {
		rep.fail("objective", fmt.Sprintf("reported %g, sample evaluates to %g", res.Objective, obj), gap)
	}

	feasible := true
	cs := m.Constraints()
	for i := range cs {
		rep.Checks++
		gap := packedViolation(&cs[i], packed.s)
		if gap > tol {
			feasible = false
			if res.Feasible {
				// The response vouched for feasibility: name every
				// constraint the sample actually breaks.
				rep.fail(cs[i].Name, fmt.Sprintf("%s %v %g violated", cs[i].Name, cs[i].Sense, cs[i].RHS), gap)
			}
		}
	}
	rep.Feasible = feasible
	rep.Checks++
	if !res.Feasible && feasible {
		// The inverse lie: a feasible sample reported infeasible. The
		// metadata no longer matches the payload, so the reply is just
		// as untrustworthy as the claim-feasible case.
		rep.fail("feasibility", "reported infeasible, sample satisfies every constraint", 0)
	}
	return rep
}

// Attest recomputes a result's objective and feasibility directly from
// its sample and overwrites the reported values — how an honest engine
// guarantees its reply is internally consistent before it crosses a
// trust boundary. It reports whether anything had to change (an
// engine-internal accounting bug worth counting). A result whose sample
// does not match the model is left untouched.
func Attest(m *cqm.Model, res *solve.Result, opt Options) bool {
	if m == nil || res == nil || len(res.Sample) != m.NumVars() {
		return false
	}
	tol := opt.tol()
	packed := getPacked(res.Sample)
	defer packPool.Put(packed)
	obj := packedObjective(m, packed.s)
	feas := true
	cs := m.Constraints()
	for i := range cs {
		if packedViolation(&cs[i], packed.s) > tol {
			feas = false
			break
		}
	}
	changed := feas != res.Feasible || math.Abs(obj-res.Objective) > tol*(1+math.Abs(obj))
	res.Objective, res.Feasible = obj, feas
	return changed
}

// loadScratch pools the per-process load vector Plan recomputes, so
// repeated plan verifications (every cache hit, every dlb round) stay
// allocation-free apart from the Report itself.
type loadScratch struct{ loads []float64 }

var loadPool = sync.Pool{New: func() any { return new(loadScratch) }}

// Plan independently re-checks a decoded migration plan against its
// instance and migration budget, recomputing everything from the raw
// matrix:
//
//   - shape: a square M×M matrix for an M-process instance,
//   - non-negative entries,
//   - one-hot assignment per task: every task of source process j lands
//     on exactly one destination, i.e. column j sums to Tasks[j]
//     (violations are named "conserve[j]" like the CQM constraints),
//   - the migration budget: at most k tasks moved off the origin
//     assignment (k < 0 disables; violations are named "migcap"),
//   - optionally, the load cap (Options.MaxLoad; "loadcap[i]").
//
// Report.Objective is the recomputed sum of squared load deviations
// from the average — the paper's objective in unnormalized units.
func Plan(in *lrp.Instance, p *lrp.Plan, k int, opt Options) *Report {
	rep := &Report{}
	PlanInto(rep, in, p, k, opt)
	return rep
}

// PlanInto is Plan writing into a caller-owned Report: rep is reset
// (its Violations capacity is kept) and filled with exactly the checks
// Plan performs — it IS Plan's engine, so a PlanInto pass is a
// verify.Plan pass. A clean verification through a recycled Report
// performs zero heap allocations, which is what lets the plan cache
// re-verify every hit without paying for it on the hot path.
func PlanInto(rep *Report, in *lrp.Instance, p *lrp.Plan, k int, opt Options) {
	tol := opt.tol()
	rep.Violations = rep.Violations[:0]
	rep.Objective, rep.Feasible, rep.Checks = 0, false, 0
	if in == nil {
		rep.fail("instance", "nil instance", 0)
		return
	}
	if p == nil {
		rep.fail("plan", "nil plan", 0)
		return
	}
	m := in.NumProcs()
	rep.Checks++
	if len(p.X) != m {
		rep.fail("shape", fmt.Sprintf("plan has %d rows, instance has %d processes", len(p.X), m), math.Abs(float64(len(p.X)-m)))
		return
	}
	for i := range p.X {
		rep.Checks++
		if len(p.X[i]) != m {
			rep.fail("shape", fmt.Sprintf("row %d has %d columns, want %d", i, len(p.X[i]), m), math.Abs(float64(len(p.X[i])-m)))
			return
		}
	}

	feasible := true
	migrated := 0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			rep.Checks++
			if c := p.X[i][j]; c < 0 {
				feasible = false
				rep.fail(fmt.Sprintf("negative[%d,%d]", i, j), fmt.Sprintf("entry X[%d][%d] = %d is negative", i, j, c), float64(-c))
			} else if i != j {
				migrated += c
			}
		}
	}
	// One-hot per task: column j accounts for each of process j's tasks
	// exactly once across all destinations.
	for j := 0; j < m; j++ {
		rep.Checks++
		sum := 0
		for i := 0; i < m; i++ {
			sum += p.X[i][j]
		}
		if sum != in.Tasks[j] {
			feasible = false
			rep.fail(fmt.Sprintf("conserve[%d]", j), fmt.Sprintf("column sums to %d, want %d tasks (tasks lost or invented)", sum, in.Tasks[j]), math.Abs(float64(sum-in.Tasks[j])))
		}
	}
	rep.Checks++
	if k >= 0 && migrated > k {
		feasible = false
		rep.fail("migcap", fmt.Sprintf("plan migrates %d tasks, budget is %d", migrated, k), float64(migrated-k))
	}

	// Recomputed loads feed the objective and the optional load cap.
	// The vector comes from a pool so a clean re-verification through a
	// recycled Report allocates nothing.
	var sumLoad, sumSq float64
	ls := loadPool.Get().(*loadScratch)
	defer loadPool.Put(ls)
	if cap(ls.loads) < m {
		ls.loads = make([]float64, m)
	}
	loads := ls.loads[:m]
	for i := 0; i < m; i++ {
		l := 0.0
		for j := 0; j < m; j++ {
			if c := p.X[i][j]; c > 0 {
				l += in.Weight[j] * float64(c)
			}
		}
		loads[i] = l
		sumLoad += l
	}
	avg := sumLoad / float64(m)
	for i, l := range loads {
		d := l - avg
		sumSq += d * d
		if opt.MaxLoad > 0 {
			rep.Checks++
			if l > opt.MaxLoad+tol {
				feasible = false
				rep.fail(fmt.Sprintf("loadcap[%d]", i), fmt.Sprintf("process %d carries load %g, cap is %g", i, l, opt.MaxLoad), l-opt.MaxLoad)
			}
		}
	}
	rep.Objective = sumSq
	rep.Feasible = feasible
}

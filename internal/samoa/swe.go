package samoa

import "math"

// Config parameterises the shallow-water simulation.
type Config struct {
	// Gravity is the gravitational constant (m/s^2).
	Gravity float64
	// DryTol is the depth below which a cell counts as dry.
	DryTol float64
	// CFL is the Courant number of the adaptive time step.
	CFL float64
	// MaxDepth caps adaptive refinement.
	MaxDepth int
	// MinDepth floors adaptive coarsening (only meaningful with
	// Coarsen).
	MinDepth int
	// Coarsen enables merging unlimited cells back, keeping the mesh
	// small as the front moves on.
	Coarsen bool
	// LimitThreshold is the water-surface jump (relative to cell size)
	// above which the a-posteriori limiter flags a cell.
	LimitThreshold float64
}

// DefaultConfig returns stable settings for the oscillating-lake
// scenario.
func DefaultConfig() Config {
	return Config{
		Gravity:        9.81,
		DryTol:         1e-4,
		CFL:            0.4,
		MaxDepth:       14,
		LimitThreshold: 0.02,
	}
}

// Bathymetry is a bottom-elevation field with an analytic gradient
// (used for the topography source term).
type Bathymetry interface {
	// Elevation returns b(x,y).
	Elevation(x, y float64) float64
	// Gradient returns (db/dx, db/dy).
	Gradient(x, y float64) (float64, float64)
}

// ParabolicBowl is the Thacker oscillating-lake bathymetry: a paraboloid
// centred in the unit square.
type ParabolicBowl struct {
	// Coef scales the bowl steepness: b = Coef * r^2 with r measured
	// from the centre (0.5, 0.5).
	Coef float64
}

// Elevation implements Bathymetry.
func (p ParabolicBowl) Elevation(x, y float64) float64 {
	dx, dy := x-0.5, y-0.5
	return p.Coef * (dx*dx + dy*dy)
}

// Gradient implements Bathymetry.
func (p ParabolicBowl) Gradient(x, y float64) (float64, float64) {
	return 2 * p.Coef * (x - 0.5), 2 * p.Coef * (y - 0.5)
}

// Sim is a shallow-water simulation on an adaptive mesh.
type Sim struct {
	Mesh *Mesh
	Cfg  Config
	Bath Bathymetry
	// Time is the simulated time.
	Time float64
	// Steps counts completed time steps.
	Steps int
}

// StepStats summarises one time step.
type StepStats struct {
	// Dt is the time step actually taken.
	Dt float64
	// Cells is the leaf count after the step (including refinement).
	Cells int
	// LimitedCells counts cells flagged by the limiter.
	LimitedCells int
	// Refined counts cells refined by the AMR pass.
	Refined int
	// Coarsened counts cells removed by merging in the AMR pass.
	Coarsened int
	// MaxSpeed is the largest wave speed observed.
	MaxSpeed float64
}

// NewOscillatingLake sets up the paper's sam(oa)^2 scenario: a parabolic
// bowl with a tilted initial water surface that sloshes back and forth,
// producing a moving wet/dry front that triggers the limiter and AMR.
func NewOscillatingLake(cfg Config, uniformDepth int) *Sim {
	s := &Sim{
		Mesh: NewMesh(uniformDepth),
		Cfg:  cfg,
		Bath: ParabolicBowl{Coef: 2.0},
	}
	const (
		surface = 0.25 // still-water surface elevation
		tilt    = 0.35 // initial planar tilt of the surface
	)
	for _, c := range s.Mesh.Leaves() {
		x, y := c.Centroid()
		c.B = s.Bath.Elevation(x, y)
		eta := surface + tilt*(x-0.5)
		c.H = math.Max(0, eta-c.B)
		c.HU, c.HV = 0, 0
	}
	return s
}

// rusanov computes the Rusanov (local Lax-Friedrichs) numerical flux of
// the 2-D shallow water equations across an edge with unit normal
// (nx, ny), returning the flux of (h, hu, hv) from left to right.
func rusanov(g, hL, huL, hvL, hR, huR, hvR, nx, ny float64) (fh, fhu, fhv, speed float64) {
	flux1D := func(h, hu, hv float64) (f1, f2, f3, un, c float64) {
		if h <= 0 {
			return 0, 0, 0, 0, 0
		}
		u, v := hu/h, hv/h
		un = u*nx + v*ny
		f1 = h * un
		f2 = hu*un + 0.5*g*h*h*nx
		f3 = hv*un + 0.5*g*h*h*ny
		c = math.Sqrt(g * h)
		return
	}
	f1L, f2L, f3L, unL, cL := flux1D(hL, huL, hvL)
	f1R, f2R, f3R, unR, cR := flux1D(hR, huR, hvR)
	lambda := math.Max(math.Abs(unL)+cL, math.Abs(unR)+cR)
	fh = 0.5*(f1L+f1R) - 0.5*lambda*(hR-hL)
	fhu = 0.5*(f2L+f2R) - 0.5*lambda*(huR-huL)
	fhv = 0.5*(f3L+f3R) - 0.5*lambda*(hvR-hvL)
	return fh, fhu, fhv, lambda
}

// Step advances the simulation by one adaptive time step: flux
// computation, state update with topography source term, limiter
// flagging, and AMR refinement of flagged cells.
func (s *Sim) Step() StepStats {
	leaves := s.Mesh.Leaves()
	g := s.Cfg.Gravity

	// Pass 1: find the stable time step from wave speeds and the
	// smallest incircle diameter.
	maxSpeed := 0.0
	minLen := math.Inf(1)
	for _, c := range leaves {
		if c.H > s.Cfg.DryTol {
			sp := math.Hypot(c.HU/c.H, c.HV/c.H) + math.Sqrt(g*c.H)
			if sp > maxSpeed {
				maxSpeed = sp
			}
		}
		// Shortest edge length ~ leg of the triangle.
		ax, ay := c.V[2].XY()
		bx, by := c.V[0].XY()
		l := math.Hypot(bx-ax, by-ay)
		if l < minLen {
			minLen = l
		}
	}
	dt := 1e-3
	if maxSpeed > 0 {
		dt = s.Cfg.CFL * minLen / maxSpeed
	}

	// Pass 2: accumulate edge fluxes. Visit each edge once via the
	// incidence map; skip dry-dry edges.
	type delta struct{ h, hu, hv float64 }
	acc := make(map[*Cell]*delta, len(leaves))
	getd := func(c *Cell) *delta {
		d := acc[c]
		if d == nil {
			d = &delta{}
			acc[c] = d
		}
		return d
	}
	for e, cells := range s.Mesh.edges {
		a := cells[0]
		ax1, ay1 := e.a.XY()
		bx1, by1 := e.b.XY()
		ex, ey := bx1-ax1, by1-ay1
		elen := math.Hypot(ex, ey)
		if elen == 0 {
			continue
		}
		// Unit normal, oriented from cell a outward.
		nx, ny := ey/elen, -ex/elen
		cx, cy := a.Centroid()
		mx, my := (ax1+bx1)/2, (ay1+by1)/2
		if (mx-cx)*nx+(my-cy)*ny < 0 {
			nx, ny = -nx, -ny
		}
		var b *Cell
		if len(cells) == 2 {
			b = cells[1]
		}
		hL, huL, hvL := a.H, a.HU, a.HV
		var hR, huR, hvR float64
		if b != nil {
			hR, huR, hvR = b.H, b.HU, b.HV
		} else {
			// Reflective wall: mirror the normal velocity.
			un := 0.0
			if hL > 0 {
				un = (huL*nx + hvL*ny)
			}
			hR = hL
			huR = huL - 2*un*nx
			hvR = hvL - 2*un*ny
		}
		if hL <= s.Cfg.DryTol && hR <= s.Cfg.DryTol {
			continue
		}
		fh, fhu, fhv, _ := rusanov(g, hL, huL, hvL, hR, huR, hvR, nx, ny)
		da := getd(a)
		da.h -= fh * elen
		da.hu -= fhu * elen
		da.hv -= fhv * elen
		if b != nil {
			db := getd(b)
			db.h += fh * elen
			db.hu += fhu * elen
			db.hv += fhv * elen
		}
	}

	// Pass 3: update states with the flux divergence and the bathymetry
	// source term; clamp dry cells.
	for _, c := range leaves {
		area := c.Area()
		if d := acc[c]; d != nil {
			c.H += dt * d.h / area
			c.HU += dt * d.hu / area
			c.HV += dt * d.hv / area
		}
		if c.H > s.Cfg.DryTol {
			x, y := c.Centroid()
			gbx, gby := s.Bath.Gradient(x, y)
			c.HU -= dt * g * c.H * gbx
			c.HV -= dt * g * c.H * gby
		}
		if c.H < 0 {
			c.H = 0
		}
		if c.H <= s.Cfg.DryTol {
			c.HU, c.HV = 0, 0
		}
	}

	// Pass 4: a-posteriori limiter — flag cells whose water surface
	// jumps sharply against a neighbour, or that sit on the wet/dry
	// front (where the DG scheme would fall back to FV sub-cells).
	limited := 0
	for _, c := range leaves {
		c.Limited = false
		etaC := c.H + c.B
		wetC := c.H > s.Cfg.DryTol
		for _, e := range c.edges() {
			n := s.Mesh.Neighbor(c, e)
			if n == nil {
				continue
			}
			wetN := n.H > s.Cfg.DryTol
			if wetC != wetN {
				c.Limited = true
				break
			}
			if wetC && math.Abs((n.H+n.B)-etaC) > s.Cfg.LimitThreshold {
				c.Limited = true
				break
			}
		}
		if c.Limited {
			limited++
		}
	}

	// Pass 5: AMR — refine flagged cells below the depth cap, then
	// merge calm cells back toward the floor depth.
	refined := 0
	for _, c := range leaves {
		if c.Limited && c.IsLeaf() && c.Depth < s.Cfg.MaxDepth {
			before := s.Mesh.NumLeaves()
			s.Mesh.Refine(c)
			refined += s.Mesh.NumLeaves() - before
		}
	}
	coarsened := 0
	if s.Cfg.Coarsen {
		coarsened = s.Mesh.CoarsenWhere(func(c *Cell) bool {
			return !c.Limited && c.Depth > s.Cfg.MinDepth
		})
	}

	s.Time += dt
	s.Steps++
	return StepStats{
		Dt:           dt,
		Cells:        s.Mesh.NumLeaves(),
		LimitedCells: limited,
		Refined:      refined,
		Coarsened:    coarsened,
		MaxSpeed:     maxSpeed,
	}
}

// TotalVolume returns the integral of water depth over the domain; it is
// conserved by the flux scheme (up to dry-cell clamping).
func (s *Sim) TotalVolume() float64 {
	total := 0.0
	for _, c := range s.Mesh.Leaves() {
		total += c.H * c.Area()
	}
	return total
}

// LinearBeach is a tsunami-style bathymetry: a flat ocean floor rising
// linearly toward the x = 1 shore from ShoreStart on, with slope Slope.
type LinearBeach struct {
	ShoreStart float64
	Slope      float64
}

// Elevation implements Bathymetry.
func (b LinearBeach) Elevation(x, _ float64) float64 {
	if x <= b.ShoreStart {
		return 0
	}
	return b.Slope * (x - b.ShoreStart)
}

// Gradient implements Bathymetry.
func (b LinearBeach) Gradient(x, _ float64) (float64, float64) {
	if x <= b.ShoreStart {
		return 0, 0
	}
	return b.Slope, 0
}

// NewTsunami sets up a tsunami run-up scenario: still water over a
// LinearBeach bathymetry with a Gaussian surface hump offshore that
// propagates toward the shore, triggering the limiter along the wave
// front and the wet/dry line at the beach.
func NewTsunami(cfg Config, uniformDepth int) *Sim {
	s := &Sim{
		Mesh: NewMesh(uniformDepth),
		Cfg:  cfg,
		Bath: LinearBeach{ShoreStart: 0.55, Slope: 0.8},
	}
	const (
		surface = 0.25 // still-water level
		amp     = 0.12 // hump amplitude
		width   = 0.08 // hump radius parameter
	)
	for _, c := range s.Mesh.Leaves() {
		x, y := c.Centroid()
		c.B = s.Bath.Elevation(x, y)
		dx, dy := x-0.25, y-0.5
		eta := surface + amp*math.Exp(-(dx*dx+dy*dy)/(width*width))
		c.H = math.Max(0, eta-c.B)
		c.HU, c.HV = 0, 0
	}
	return s
}

package samoa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMeshBase(t *testing.T) {
	m := NewMesh(0)
	if m.NumLeaves() != 2 {
		t.Fatalf("base mesh has %d leaves, want 2", m.NumLeaves())
	}
	if err := m.CheckConforming(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range m.Leaves() {
		total += c.Area()
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("base mesh area = %v, want 1", total)
	}
}

func TestUniformRefinementCounts(t *testing.T) {
	for d := 0; d <= 6; d++ {
		m := NewMesh(d)
		want := 2 << d // 2 * 2^d
		if m.NumLeaves() != want {
			t.Fatalf("depth %d: %d leaves, want %d", d, m.NumLeaves(), want)
		}
		if err := m.CheckConforming(); err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		if got := len(m.Leaves()); got != want {
			t.Fatalf("Leaves() returned %d, want %d", got, want)
		}
	}
}

func TestAreaHalvesPerLevel(t *testing.T) {
	m := NewMesh(4)
	for _, c := range m.Leaves() {
		want := 0.5 / math.Pow(2, float64(c.Depth))
		if math.Abs(c.Area()-want) > 1e-12 {
			t.Fatalf("depth %d cell area %v, want %v", c.Depth, c.Area(), want)
		}
	}
}

func TestAdaptiveRefinementStaysConforming(t *testing.T) {
	// Property: randomly refining leaves (with recursive compatibility)
	// never produces hanging nodes and preserves total area.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMesh(2)
		for k := 0; k < 30; k++ {
			leaves := m.Leaves()
			m.Refine(leaves[rng.Intn(len(leaves))])
		}
		if m.CheckConforming() != nil {
			return false
		}
		total := 0.0
		for _, c := range m.Leaves() {
			total += c.Area()
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineNonLeafNoOp(t *testing.T) {
	m := NewMesh(1)
	parent := m.roots[0]
	before := m.NumLeaves()
	m.Refine(parent) // not a leaf
	if m.NumLeaves() != before {
		t.Fatal("refining a non-leaf changed the mesh")
	}
}

func TestSFCOrderIsDepthFirstAndContiguous(t *testing.T) {
	// Consecutive leaves along the Sierpinski curve of a uniform mesh
	// share at least one vertex (curve contiguity).
	m := NewMesh(5)
	leaves := m.Leaves()
	for i := 1; i < len(leaves); i++ {
		shared := 0
		for _, va := range leaves[i-1].V {
			for _, vb := range leaves[i].V {
				if va == vb {
					shared++
				}
			}
		}
		if shared == 0 {
			t.Fatalf("leaves %d and %d share no vertex; SFC order broken", i-1, i)
		}
	}
}

func TestRefinementConservesState(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 4)
	before := sim.TotalVolume()
	for _, c := range sim.Mesh.Leaves() {
		sim.Mesh.Refine(c)
	}
	after := sim.TotalVolume()
	if math.Abs(before-after) > 1e-9*math.Max(1, before) {
		t.Fatalf("refinement changed volume: %v -> %v", before, after)
	}
}

func TestOscillatingLakeInitialState(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 6)
	wet, dry := 0, 0
	for _, c := range sim.Mesh.Leaves() {
		if c.H < 0 {
			t.Fatal("negative depth at init")
		}
		if c.H > sim.Cfg.DryTol {
			wet++
		} else {
			dry++
		}
		if c.HU != 0 || c.HV != 0 {
			t.Fatal("nonzero initial momentum")
		}
	}
	if wet == 0 || dry == 0 {
		t.Fatalf("oscillating lake needs both wet (%d) and dry (%d) cells", wet, dry)
	}
	if sim.TotalVolume() <= 0 {
		t.Fatal("no water in the lake")
	}
}

func TestStepStableAndPlausible(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 6)
	vol0 := sim.TotalVolume()
	for i := 0; i < 20; i++ {
		st := sim.Step()
		if st.Dt <= 0 || math.IsNaN(st.Dt) {
			t.Fatalf("step %d: dt = %v", i, st.Dt)
		}
		if st.Cells != sim.Mesh.NumLeaves() {
			t.Fatalf("step %d: stats cells %d != %d", i, st.Cells, sim.Mesh.NumLeaves())
		}
		for _, c := range sim.Mesh.Leaves() {
			if math.IsNaN(c.H) || c.H < 0 {
				t.Fatalf("step %d: bad depth %v", i, c.H)
			}
		}
	}
	if sim.Steps != 20 {
		t.Fatalf("Steps = %d", sim.Steps)
	}
	if sim.Time <= 0 {
		t.Fatal("time did not advance")
	}
	// The tilted surface must start moving: some momentum appears.
	anyFlow := false
	for _, c := range sim.Mesh.Leaves() {
		if math.Abs(c.HU) > 1e-12 || math.Abs(c.HV) > 1e-12 {
			anyFlow = true
			break
		}
	}
	if !anyFlow {
		t.Fatal("lake never started flowing")
	}
	// Volume is conserved up to wet/dry clamping.
	vol1 := sim.TotalVolume()
	if math.Abs(vol1-vol0) > 0.02*vol0 {
		t.Fatalf("volume drifted: %v -> %v", vol0, vol1)
	}
	if err := sim.Mesh.CheckConforming(); err != nil {
		t.Fatal(err)
	}
}

func TestLimiterFlagsFrontCells(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 6)
	st := sim.Step()
	if st.LimitedCells == 0 {
		t.Fatal("limiter never fired on the wet/dry front")
	}
	if st.LimitedCells >= st.Cells {
		t.Fatalf("limiter flagged everything: %d of %d", st.LimitedCells, st.Cells)
	}
}

func TestAMRRefinesAroundFront(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 10
	sim := NewOscillatingLake(cfg, 6)
	before := sim.Mesh.NumLeaves()
	refined := 0
	for i := 0; i < 5; i++ {
		refined += sim.Step().Refined
	}
	if refined == 0 || sim.Mesh.NumLeaves() <= before {
		t.Fatal("AMR never refined near the front")
	}
	// Depth cap respected.
	for _, c := range sim.Mesh.Leaves() {
		if c.Depth > cfg.MaxDepth+1 {
			t.Fatalf("cell depth %d exceeds cap %d (+1 for compatibility)", c.Depth, cfg.MaxDepth)
		}
	}
}

func TestVolumeConservationFullyWet(t *testing.T) {
	// A deep flat lake with no dry cells: the flux scheme must conserve
	// volume to machine precision (reflective walls, antisymmetric
	// fluxes).
	cfg := DefaultConfig()
	cfg.MaxDepth = 6 // forbid refinement churn
	sim := NewOscillatingLake(cfg, 6)
	for _, c := range sim.Mesh.Leaves() {
		x, _ := c.Centroid()
		c.H = 2.0 + 0.1*x // deep everywhere, gentle slope to drive flow
	}
	vol0 := sim.TotalVolume()
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	vol1 := sim.TotalVolume()
	if math.Abs(vol1-vol0) > 1e-9*vol0 {
		t.Fatalf("wet-lake volume not conserved: %v -> %v", vol0, vol1)
	}
}

func TestSectionCostsValidation(t *testing.T) {
	m := NewMesh(3)
	if _, err := SectionCosts(m, 0, DefaultCostModel()); err == nil {
		t.Fatal("accepted zero sections")
	}
	if _, err := SectionCosts(m, m.NumLeaves()+1, DefaultCostModel()); err == nil {
		t.Fatal("accepted more sections than cells")
	}
	costs, err := SectionCosts(m, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 4 {
		t.Fatalf("got %d costs", len(costs))
	}
	for _, c := range costs {
		if c <= 0 {
			t.Fatalf("non-positive section cost %v", c)
		}
	}
}

func TestSectionCostsSumMatchesCellCosts(t *testing.T) {
	cm := DefaultCostModel()
	sim := NewOscillatingLake(DefaultConfig(), 6)
	for i := 0; i < 3; i++ {
		sim.Step()
	}
	costs, err := SectionCosts(sim.Mesh, 16, cm)
	if err != nil {
		t.Fatal(err)
	}
	sumSections := 0.0
	for _, c := range costs {
		sumSections += c
	}
	want := 0.0
	for _, c := range sim.Mesh.Leaves() {
		if c.Limited {
			want += cm.LimitedCellMs
		} else {
			want += cm.BaseCellMs
		}
	}
	if math.Abs(sumSections-want) > 1e-9*want {
		t.Fatalf("section costs sum %v, cell costs sum %v", sumSections, want)
	}
}

func TestImbalanceInputShape(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 8)
	for i := 0; i < 5; i++ {
		sim.Step()
	}
	in, err := ImbalanceInput(sim.Mesh, 4, 16, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if in.NumProcs() != 4 {
		t.Fatalf("procs = %d", in.NumProcs())
	}
	if n, ok := in.Uniform(); !ok || n != 16 {
		t.Fatalf("tasks = %d uniform=%v", n, ok)
	}
	if in.Imbalance() <= 0 {
		t.Fatal("simulation produced a perfectly balanced input; expected imbalance")
	}
}

func TestCalibrateImbalanceHitsTarget(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 8)
	for i := 0; i < 5; i++ {
		sim.Step()
	}
	in, err := ImbalanceInput(sim.Mesh, 8, 13, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	const target = 4.1994
	cal := CalibrateImbalance(in, target)
	if got := cal.Imbalance(); math.Abs(got-target) > 0.05*target {
		t.Fatalf("calibrated imbalance %v, want ~%v", got, target)
	}
	// Average load preserved (within the flooring tolerance).
	if math.Abs(cal.AvgLoad()-in.AvgLoad()) > 0.05*in.AvgLoad() {
		t.Fatalf("calibration changed avg load %v -> %v", in.AvgLoad(), cal.AvgLoad())
	}
	// Degenerate inputs pass through unchanged.
	flat, _ := ImbalanceInput(sim.Mesh, 1, 8, DefaultCostModel())
	if got := CalibrateImbalance(flat, target); got.Imbalance() != flat.Imbalance() {
		t.Fatal("calibration modified a degenerate input")
	}
}

func TestVertexAndCellHelpers(t *testing.T) {
	v := Vertex{Scale / 2, Scale / 4}
	x, y := v.XY()
	if x != 0.5 || y != 0.25 {
		t.Fatalf("XY = (%v,%v)", x, y)
	}
	m := NewMesh(0)
	c := m.Leaves()[0]
	cx, cy := c.Centroid()
	if cx <= 0 || cx >= 1 || cy <= 0 || cy >= 1 {
		t.Fatalf("centroid (%v,%v) outside domain", cx, cy)
	}
	if !c.IsLeaf() {
		t.Fatal("fresh cell not a leaf")
	}
}

func TestParabolicBowlGradient(t *testing.T) {
	b := ParabolicBowl{Coef: 2}
	// Numeric vs analytic gradient.
	f := func(xr, yr uint8) bool {
		x := float64(xr) / 255
		y := float64(yr) / 255
		gx, gy := b.Gradient(x, y)
		const h = 1e-6
		nx := (b.Elevation(x+h, y) - b.Elevation(x-h, y)) / (2 * h)
		ny := (b.Elevation(x, y+h) - b.Elevation(x, y-h)) / (2 * h)
		return math.Abs(gx-nx) < 1e-4 && math.Abs(gy-ny) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

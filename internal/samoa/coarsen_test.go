package samoa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoarsenRoundTrip(t *testing.T) {
	m := NewMesh(4)
	before := m.NumLeaves()
	// Refine one cell, then coarsen it back.
	target := m.Leaves()[3]
	m.Refine(target)
	refined := m.NumLeaves()
	if refined <= before {
		t.Fatal("refine did nothing")
	}
	// Coarsen everything above the original depth back down.
	for m.NumLeaves() > before {
		if m.CoarsenWhere(func(c *Cell) bool { return c.Depth > 4 }) == 0 {
			break
		}
	}
	if m.NumLeaves() != before {
		t.Fatalf("could not coarsen back: %d vs %d", m.NumLeaves(), before)
	}
	if err := m.CheckConforming(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenRefusesNonLeafChildren(t *testing.T) {
	m := NewMesh(2)
	parent := m.roots[0]
	if m.Coarsen(parent) { // children are interior nodes
		t.Fatal("coarsened a parent with non-leaf children")
	}
	leaf := m.Leaves()[0]
	if m.Coarsen(leaf) { // a leaf has no children
		t.Fatal("coarsened a leaf")
	}
}

func TestCoarsenPreservesConformity(t *testing.T) {
	// Refine a local patch deeply, then greedily coarsen; the mesh must
	// stay conforming and keep total area 1 throughout.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMesh(3)
		for k := 0; k < 20; k++ {
			leaves := m.Leaves()
			m.Refine(leaves[rng.Intn(len(leaves))])
		}
		for round := 0; round < 10; round++ {
			if m.CoarsenWhere(func(c *Cell) bool { return rng.Intn(2) == 0 }) == 0 {
				break
			}
			if m.CheckConforming() != nil {
				return false
			}
		}
		total := 0.0
		for _, c := range m.Leaves() {
			total += c.Area()
		}
		return math.Abs(total-1) < 1e-9 && m.CheckConforming() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenConservesMass(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 5)
	for _, c := range sim.Mesh.Leaves() {
		sim.Mesh.Refine(c)
	}
	vol := sim.TotalVolume()
	merged := sim.Mesh.CoarsenWhere(func(*Cell) bool { return true })
	if merged == 0 {
		t.Fatal("nothing coarsened")
	}
	if math.Abs(sim.TotalVolume()-vol) > 1e-9*math.Max(1, vol) {
		t.Fatalf("coarsening changed volume: %v -> %v", vol, sim.TotalVolume())
	}
}

func TestStepWithCoarseningKeepsMeshBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 10
	cfg.MinDepth = 6
	cfg.Coarsen = true
	sim := NewOscillatingLake(cfg, 6)
	coarsened := 0
	for i := 0; i < 12; i++ {
		st := sim.Step()
		coarsened += st.Coarsened
		if err := sim.Mesh.CheckConforming(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if coarsened == 0 {
		t.Fatal("coarsening never fired over 12 steps")
	}
	for _, c := range sim.Mesh.Leaves() {
		if c.Depth < cfg.MinDepth {
			t.Fatalf("cell coarsened below MinDepth: %d", c.Depth)
		}
	}
}

func TestTsunamiScenario(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 9
	sim := NewTsunami(cfg, 7)
	// The hump must exist: surface elevation is higher offshore-left.
	var maxEta float64
	wet, dry := 0, 0
	for _, c := range sim.Mesh.Leaves() {
		if c.H > cfg.DryTol {
			wet++
			if eta := c.H + c.B; eta > maxEta {
				maxEta = eta
			}
		} else {
			dry++
		}
	}
	if wet == 0 || dry == 0 {
		t.Fatalf("tsunami needs ocean (%d wet) and beach (%d dry)", wet, dry)
	}
	if maxEta <= 0.3 {
		t.Fatalf("no initial hump: max eta %v", maxEta)
	}
	vol0 := sim.TotalVolume()
	for i := 0; i < 15; i++ {
		st := sim.Step()
		if math.IsNaN(st.Dt) || st.Dt <= 0 {
			t.Fatalf("unstable at step %d", i)
		}
	}
	// Wave propagates: momentum appears and the limiter fires.
	anyFlow := false
	for _, c := range sim.Mesh.Leaves() {
		if math.Abs(c.HU) > 1e-9 {
			anyFlow = true
			break
		}
	}
	if !anyFlow {
		t.Fatal("tsunami never moved")
	}
	if v := sim.TotalVolume(); math.Abs(v-vol0) > 0.02*vol0 {
		t.Fatalf("volume drift %v -> %v", vol0, v)
	}
}

func TestLinearBeachGradient(t *testing.T) {
	b := LinearBeach{ShoreStart: 0.55, Slope: 0.8}
	if b.Elevation(0.3, 0.5) != 0 {
		t.Fatal("ocean floor not flat")
	}
	if got := b.Elevation(0.8, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("beach elevation %v", got)
	}
	gx, gy := b.Gradient(0.8, 0.5)
	if gx != 0.8 || gy != 0 {
		t.Fatalf("gradient (%v,%v)", gx, gy)
	}
	gx, _ = b.Gradient(0.2, 0.5)
	if gx != 0 {
		t.Fatal("ocean gradient nonzero")
	}
}

func TestRenderWater(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 6)
	sim.Step()
	out := RenderWater(sim.Mesh, 30, 12)
	lines := 0
	for _, line := range out {
		if line == '\n' {
			lines++
		}
	}
	if lines != 14 { // 12 rows + 2 borders
		t.Fatalf("render has %d lines:\n%s", lines, out)
	}
	// The lake has both water (dense glyphs) and dry land (space).
	hasWater, hasDry := false, false
	for _, r := range out {
		switch r {
		case '@', '%', '#':
			hasWater = true
		case ' ':
			hasDry = true
		}
	}
	if !hasWater || !hasDry {
		t.Fatalf("render lacks contrast (water=%v dry=%v):\n%s", hasWater, hasDry, out)
	}
	// Degenerate sizes fall back to defaults.
	if RenderWater(sim.Mesh, 0, 0) == "" {
		t.Fatal("default-size render empty")
	}
}

func TestSectionTasks(t *testing.T) {
	sim := NewOscillatingLake(DefaultConfig(), 8)
	for i := 0; i < 4; i++ {
		sim.Step()
	}
	tasks, err := SectionTasks(sim.Mesh, 4, 8, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 32 {
		t.Fatalf("%d tasks, want 32", len(tasks))
	}
	// Origins are contiguous along the curve, loads are heterogeneous.
	distinct := map[float64]bool{}
	for i, task := range tasks {
		if task.ID != i || task.Origin != i/8 {
			t.Fatalf("task %d malformed: %+v", i, task)
		}
		if task.Load <= 0 {
			t.Fatalf("task %d non-positive load", i)
		}
		distinct[task.Load] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct loads; expected heterogeneity", len(distinct))
	}
	// Totals agree with the uniformized instance.
	in, err := ImbalanceInput(sim.Mesh, 4, 8, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	perProc := make([]float64, 4)
	for _, task := range tasks {
		perProc[task.Origin] += task.Load
	}
	for p := range perProc {
		if math.Abs(perProc[p]-in.Load(p)) > 1e-9*math.Max(1, in.Load(p)) {
			t.Fatalf("proc %d: task sum %v != instance load %v", p, perProc[p], in.Load(p))
		}
	}
	// Errors propagate.
	if _, err := SectionTasks(sim.Mesh, 0, 8, DefaultCostModel()); err == nil {
		t.Fatal("accepted zero procs")
	}
}

func TestOscillatingLakePeriodMatchesThacker(t *testing.T) {
	// Physics validation: a planar oscillation in the paraboloid
	// b = a*r^2 has angular frequency omega = sqrt(2*g*a) (Thacker
	// 1981), i.e. period T = 2*pi/sqrt(2*9.81*2.0) ~ 1.003 s for this
	// scenario. The solver is first-order and diffusive, so we accept
	// 10% tolerance on the interval between successive center-of-mass
	// turning points.
	cfg := DefaultConfig()
	cfg.MaxDepth = 8
	sim := NewOscillatingLake(cfg, 8)
	com := func() float64 {
		num, den := 0.0, 0.0
		for _, c := range sim.Mesh.Leaves() {
			x, _ := c.Centroid()
			m := c.H * c.Area()
			num += x * m
			den += m
		}
		return num / den
	}
	prev := com()
	dir := 0.0
	var minima []float64
	for i := 0; i < 3000 && sim.Time < 3 && len(minima) < 3; i++ {
		sim.Step()
		cur := com()
		if d := cur - prev; d != 0 {
			if dir < 0 && d > 0 {
				minima = append(minima, sim.Time)
			}
			dir = d
		}
		prev = cur
	}
	if len(minima) < 3 {
		t.Fatalf("found only %d center-of-mass minima in 3 s", len(minima))
	}
	want := 2 * math.Pi / math.Sqrt(2*cfg.Gravity*2.0)
	for i := 1; i < len(minima); i++ {
		period := minima[i] - minima[i-1]
		if math.Abs(period-want) > 0.1*want {
			t.Fatalf("oscillation period %v, Thacker predicts %v", period, want)
		}
	}
}

package samoa

import "testing"

func BenchmarkMeshRefineUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewMesh(8) // 512 leaves, all bisections + edge-map updates
	}
}

func BenchmarkStep(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 8 // freeze AMR so each iteration does equal work
	sim := NewOscillatingLake(cfg, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(sim.Mesh.NumLeaves()), "cells")
}

func BenchmarkStepWithAMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxDepth = 10
		sim := NewOscillatingLake(cfg, 8)
		for s := 0; s < 3; s++ {
			sim.Step()
		}
	}
}

func BenchmarkLeavesTraversal(b *testing.B) {
	m := NewMesh(10) // 2048 leaves
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(m.Leaves()); got != 2048 {
			b.Fatalf("leaves = %d", got)
		}
	}
}

func BenchmarkSectionCosts(b *testing.B) {
	sim := NewOscillatingLake(DefaultConfig(), 10)
	for s := 0; s < 3; s++ {
		sim.Step()
	}
	cm := DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SectionCosts(sim.Mesh, 128, cm); err != nil {
			b.Fatal(err)
		}
	}
}

package samoa

import (
	"math"
	"strings"
)

// waterGlyphs maps increasing water depth to denser glyphs.
var waterGlyphs = []rune(" .:-=+*#%@")

// RenderWater rasterizes the current water depth field into a
// width x height ASCII heat map (deeper water renders denser). Cells
// are splatted at their centroids with depth-weighted averaging per
// character cell; limited cells are overlaid with '!' so the moving
// front is visible. Intended for examples and debugging.
func RenderWater(m *Mesh, width, height int) string {
	if width < 1 {
		width = 40
	}
	if height < 1 {
		height = 20
	}
	sum := make([]float64, width*height)
	cnt := make([]int, width*height)
	limited := make([]bool, width*height)
	maxH := 0.0
	for _, c := range m.Leaves() {
		x, y := c.Centroid()
		col := int(x * float64(width))
		row := int((1 - y) * float64(height))
		if col >= width {
			col = width - 1
		}
		if row >= height {
			row = height - 1
		}
		if col < 0 || row < 0 {
			continue
		}
		idx := row*width + col
		sum[idx] += c.H
		cnt[idx]++
		if c.Limited {
			limited[idx] = true
		}
		if c.H > maxH {
			maxH = c.H
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for row := 0; row < height; row++ {
		b.WriteByte('|')
		for col := 0; col < width; col++ {
			idx := row*width + col
			if cnt[idx] == 0 {
				b.WriteByte(' ')
				continue
			}
			avg := sum[idx] / float64(cnt[idx])
			// The wet/dry front: shallow limited cells render '!' so
			// the moving shoreline is visible; deeper water shows its
			// depth even when limited.
			if limited[idx] && maxH > 0 && avg < 0.2*maxH {
				b.WriteByte('!')
				continue
			}
			g := 0
			if maxH > 0 {
				g = int(math.Round(avg / maxH * float64(len(waterGlyphs)-1)))
			}
			if g >= len(waterGlyphs) {
				g = len(waterGlyphs) - 1
			}
			b.WriteRune(waterGlyphs[g])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return b.String()
}

// Package samoa is a compact stand-in for the sam(oa)^2 framework the
// paper uses as its realistic workload: dynamically adaptive,
// tree-structured triangular meshes whose cells are contiguous along a
// Sierpinski space-filling curve, solving the 2-D shallow water
// equations with an a-posteriori limiter (Section II / V-C).
//
// The mesh is a forest of right isosceles triangles refined by
// newest-vertex bisection with recursive compatibility refinement, so it
// stays conforming (no hanging nodes). Depth-first traversal of the
// refinement tree enumerates the leaves in Sierpinski order; contiguous
// runs of leaves form the "sections" that define tasks.
package samoa

import "fmt"

// Scale is the integer grid resolution of vertex coordinates: the unit
// square [0,1]^2 maps to [0,Scale]^2. Integer coordinates make edge
// hashing exact; midpoints stay integral for ~2*log2(Scale) bisection
// levels, far beyond any practical depth.
const Scale = 1 << 20

// Vertex is an exact grid point.
type Vertex struct {
	X, Y int64
}

// XY returns the vertex position in unit-square coordinates.
func (v Vertex) XY() (float64, float64) {
	return float64(v.X) / Scale, float64(v.Y) / Scale
}

func mid(a, b Vertex) Vertex { return Vertex{(a.X + b.X) / 2, (a.Y + b.Y) / 2} }

// edgeKey canonically identifies an undirected edge.
type edgeKey struct {
	a, b Vertex
}

func keyOf(a, b Vertex) edgeKey {
	if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Cell is one triangle of the refinement forest. V[0]-V[1] is the
// refinement edge (the hypotenuse) and V[2] is the newest vertex.
// Non-leaf cells keep their children in Left/Right; only leaves carry
// evolving state.
type Cell struct {
	V     [3]Vertex
	Depth int
	Left  *Cell
	Right *Cell
	// Parent is the cell this one was bisected from (nil for roots);
	// coarsening uses it to find the compatible partner pair.
	Parent *Cell

	// Shallow-water state (cell averages): water depth and momenta.
	H, HU, HV float64
	// B is the bathymetry elevation at the centroid.
	B float64
	// Limited marks cells flagged by the a-posteriori limiter in the
	// last step; limited cells are costlier (DG -> FV fallback) and are
	// candidates for refinement.
	Limited bool
}

// IsLeaf reports whether the cell is currently a leaf of the forest.
func (c *Cell) IsLeaf() bool { return c.Left == nil }

// Centroid returns the triangle's centroid in unit coordinates.
func (c *Cell) Centroid() (float64, float64) {
	var sx, sy int64
	for _, v := range c.V {
		sx += v.X
		sy += v.Y
	}
	return float64(sx) / (3 * Scale), float64(sy) / (3 * Scale)
}

// Area returns the triangle area in unit-square units.
func (c *Cell) Area() float64 {
	ax, ay := c.V[0].XY()
	bx, by := c.V[1].XY()
	cx, cy := c.V[2].XY()
	cross := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if cross < 0 {
		cross = -cross
	}
	return cross / 2
}

// edges returns the three undirected edges of the cell.
func (c *Cell) edges() [3]edgeKey {
	return [3]edgeKey{
		keyOf(c.V[0], c.V[1]),
		keyOf(c.V[1], c.V[2]),
		keyOf(c.V[2], c.V[0]),
	}
}

// refEdge returns the canonical key of the refinement edge.
func (c *Cell) refEdge() edgeKey { return keyOf(c.V[0], c.V[1]) }

// Mesh is an adaptive triangular mesh over the unit square.
type Mesh struct {
	roots   []*Cell
	edges   map[edgeKey][]*Cell // leaf incidence per edge
	numLeaf int
}

// NewMesh builds the two-triangle base mesh of the unit square and
// uniformly refines it to the given depth.
func NewMesh(uniformDepth int) *Mesh {
	t1 := &Cell{V: [3]Vertex{{0, 0}, {Scale, Scale}, {Scale, 0}}}
	t2 := &Cell{V: [3]Vertex{{Scale, Scale}, {0, 0}, {0, Scale}}}
	m := &Mesh{roots: []*Cell{t1, t2}, edges: make(map[edgeKey][]*Cell), numLeaf: 2}
	for _, r := range m.roots {
		m.addLeaf(r)
	}
	for d := 0; d < uniformDepth; d++ {
		for _, c := range m.Leaves() {
			m.Refine(c)
		}
	}
	return m
}

func (m *Mesh) addLeaf(c *Cell) {
	for _, e := range c.edges() {
		m.edges[e] = append(m.edges[e], c)
	}
}

func (m *Mesh) removeLeaf(c *Cell) {
	for _, e := range c.edges() {
		list := m.edges[e]
		for i, x := range list {
			if x == c {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(m.edges, e)
		} else {
			m.edges[e] = list
		}
	}
}

// NumLeaves returns the current number of leaf cells.
func (m *Mesh) NumLeaves() int { return m.numLeaf }

// Leaves returns the leaf cells in Sierpinski (depth-first) order.
func (m *Mesh) Leaves() []*Cell {
	out := make([]*Cell, 0, m.numLeaf)
	var walk func(c *Cell)
	walk = func(c *Cell) {
		if c.IsLeaf() {
			out = append(out, c)
			return
		}
		walk(c.Left)
		walk(c.Right)
	}
	for _, r := range m.roots {
		walk(r)
	}
	return out
}

// Neighbor returns the leaf sharing edge e with c, or nil for a boundary
// edge.
func (m *Mesh) Neighbor(c *Cell, e edgeKey) *Cell {
	for _, x := range m.edges[e] {
		if x != c {
			return x
		}
	}
	return nil
}

// Refine bisects leaf c, first refining neighbours recursively as needed
// so the mesh stays conforming (newest-vertex bisection with
// compatibility refinement). Refining a non-leaf is a no-op.
func (m *Mesh) Refine(c *Cell) {
	if !c.IsLeaf() {
		return
	}
	for {
		n := m.Neighbor(c, c.refEdge())
		if n == nil {
			break // boundary refinement edge
		}
		if n.refEdge() == c.refEdge() {
			m.bisect(n) // compatible partner: bisect it alongside c
			break
		}
		// Incompatible neighbour: refine it first; afterwards the cell
		// across c's refinement edge is one of n's children whose own
		// refinement edge is the shared edge.
		m.Refine(n)
	}
	m.bisect(c)
}

// bisect splits one leaf into its two children, distributing state.
func (m *Mesh) bisect(c *Cell) {
	if !c.IsLeaf() {
		return
	}
	// The Sierpinski traversal enters a cell at V[0] and exits at V[1];
	// the curve passes V[0] -> V[2] -> V[1], so the first child owns the
	// entry vertex and hands over at the apex V[2].
	mp := mid(c.V[0], c.V[1])
	c.Left = &Cell{
		V:      [3]Vertex{c.V[0], c.V[2], mp},
		Depth:  c.Depth + 1,
		Parent: c,
		H:      c.H, HU: c.HU, HV: c.HV, B: c.B, Limited: c.Limited,
	}
	c.Right = &Cell{
		V:      [3]Vertex{c.V[2], c.V[1], mp},
		Depth:  c.Depth + 1,
		Parent: c,
		H:      c.H, HU: c.HU, HV: c.HV, B: c.B, Limited: c.Limited,
	}
	m.removeLeaf(c)
	m.addLeaf(c.Left)
	m.addLeaf(c.Right)
	m.numLeaf++
}

// CheckConforming verifies the structural invariant that every edge is
// shared by at most two leaves, and that single-leaf edges lie on the
// domain boundary. It returns an error describing the first violation.
func (m *Mesh) CheckConforming() error {
	for e, cells := range m.edges {
		switch len(cells) {
		case 1:
			if !onBoundary(e) {
				return fmt.Errorf("samoa: interior edge %v has a single incident leaf (hanging node)", e)
			}
		case 2:
			// ok
		default:
			return fmt.Errorf("samoa: edge %v has %d incident leaves", e, len(cells))
		}
	}
	return nil
}

func onBoundary(e edgeKey) bool {
	onB := func(v Vertex) bool {
		return v.X == 0 || v.Y == 0 || v.X == Scale || v.Y == Scale
	}
	if !onB(e.a) || !onB(e.b) {
		return false
	}
	// Both endpoints on the boundary and the edge axis-aligned along it.
	return (e.a.X == e.b.X && (e.a.X == 0 || e.a.X == Scale)) ||
		(e.a.Y == e.b.Y && (e.a.Y == 0 || e.a.Y == Scale))
}

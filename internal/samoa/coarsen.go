package samoa

// Coarsen merges the two children of parent back into it, conserving
// mass and momentum (children have equal areas, so the parent state is
// the plain average). It refuses — returning false — when either child
// is not a leaf or when removing the children would leave a hanging
// node (i.e. a neighbour across one of the parent's edges is refined
// more deeply than the parent).
func (m *Mesh) Coarsen(parent *Cell) bool {
	l, r := parent.Left, parent.Right
	if l == nil || r == nil || !l.IsLeaf() || !r.IsLeaf() {
		return false
	}
	// Conformity precheck on the legs: they are full edges of the
	// children themselves, so each interior leg must carry the child
	// plus one same-depth neighbour (count 2); count 1 means the
	// neighbour is refined deeper and merging would hang a node.
	if !m.legsMergeable(parent) {
		return false
	}
	// The refinement edge (hypotenuse) is currently split into the
	// children's half-edges. Its full key held by exactly one leaf means
	// an unrefined neighbour: safe to merge alone. An empty key off the
	// boundary means the neighbour is refined too — the inverse of pair
	// bisection: find the partner parent through the half-edge and merge
	// both together (classic NVB pair coarsening).
	hyp := parent.refEdge()
	if onBoundary(hyp) || len(m.edges[hyp]) == 1 {
		m.merge(parent)
		return true
	}
	partner := m.partnerParent(parent)
	if partner == nil || !m.legsMergeable(partner) {
		return false
	}
	m.merge(parent)
	m.merge(partner)
	return true
}

// legsMergeable checks the leg-edge conformity condition for merging.
func (m *Mesh) legsMergeable(parent *Cell) bool {
	legs := [2]edgeKey{keyOf(parent.V[0], parent.V[2]), keyOf(parent.V[2], parent.V[1])}
	for _, e := range legs {
		if !onBoundary(e) && len(m.edges[e]) != 2 {
			return false
		}
	}
	return true
}

// partnerParent finds the refined neighbour sharing parent's refinement
// edge, by looking across one half-edge of the hypotenuse. It returns
// nil unless the partner is a parent of two leaves with the same
// refinement edge.
func (m *Mesh) partnerParent(parent *Cell) *Cell {
	mp := mid(parent.V[0], parent.V[1])
	half := keyOf(parent.V[0], mp)
	for _, leaf := range m.edges[half] {
		if leaf == parent.Left || leaf == parent.Right {
			continue
		}
		p := leaf.Parent
		if p == nil || p == parent {
			continue
		}
		if p.Left == nil || p.Right == nil || !p.Left.IsLeaf() || !p.Right.IsLeaf() {
			return nil
		}
		if p.refEdge() != parent.refEdge() {
			return nil
		}
		return p
	}
	return nil
}

// merge performs the actual unconditional child merge.
func (m *Mesh) merge(parent *Cell) {
	l, r := parent.Left, parent.Right
	// Conservative restriction: equal child areas -> arithmetic mean.
	parent.H = (l.H + r.H) / 2
	parent.HU = (l.HU + r.HU) / 2
	parent.HV = (l.HV + r.HV) / 2
	parent.Limited = l.Limited || r.Limited
	m.removeLeaf(l)
	m.removeLeaf(r)
	parent.Left, parent.Right = nil, nil
	m.addLeaf(parent)
	m.numLeaf--
}

// CoarsenWhere merges every parent whose two leaf children both satisfy
// keep == false under pred (i.e. pred reports the child is coarsenable)
// and whose merge keeps the mesh conforming. It returns the number of
// merges performed. One pass is bottom-up over current parents; callers
// may iterate for multi-level coarsening.
func (m *Mesh) CoarsenWhere(pred func(c *Cell) bool) int {
	// Collect mergeable parents first: mutating while traversing the
	// leaf list would invalidate it.
	var parents []*Cell
	var walk func(c *Cell)
	walk = func(c *Cell) {
		if c.IsLeaf() {
			return
		}
		l, r := c.Left, c.Right
		if l.IsLeaf() && r.IsLeaf() {
			if pred(l) && pred(r) {
				parents = append(parents, c)
			}
			return
		}
		walk(l)
		walk(r)
	}
	for _, root := range m.roots {
		walk(root)
	}
	merged := 0
	for _, p := range parents {
		if p.Left == nil || !p.Left.IsLeaf() || !p.Right.IsLeaf() {
			continue // already merged as someone's partner
		}
		// Pair merging would also coarsen the compatible partner; only
		// proceed when its children satisfy pred too.
		if hyp := p.refEdge(); !onBoundary(hyp) && len(m.edges[hyp]) == 0 {
			q := m.partnerParent(p)
			if q == nil || !pred(q.Left) || !pred(q.Right) {
				continue
			}
		}
		if m.Coarsen(p) {
			merged++
		}
	}
	return merged
}

package samoa

import (
	"fmt"

	"repro/internal/lrp"
)

// CostModel maps per-cell work to task load values (milliseconds). The
// paper's imbalance stems from exactly this split: the application's
// partitioner predicts cost with a wrong (uniform) model while the real
// cost of a limited cell is much higher (ADER-DG falls back to
// finite-volume sub-cells).
type CostModel struct {
	// BaseCellMs is the cost of an unlimited cell.
	BaseCellMs float64
	// LimitedCellMs is the cost of a limited cell.
	LimitedCellMs float64
}

// DefaultCostModel uses a 25x limiter penalty, enough to produce the
// strong imbalance of the paper's use case.
func DefaultCostModel() CostModel {
	return CostModel{BaseCellMs: 0.02, LimitedCellMs: 0.5}
}

// SectionCosts partitions the leaves (in Sierpinski order) into
// numSections contiguous sections of equal cell count — the wrong
// uniform-cost prediction — and returns each section's true cost under
// the cost model.
func SectionCosts(m *Mesh, numSections int, cm CostModel) ([]float64, error) {
	leaves := m.Leaves()
	if numSections <= 0 {
		return nil, fmt.Errorf("samoa: numSections must be positive, got %d", numSections)
	}
	if len(leaves) < numSections {
		return nil, fmt.Errorf("samoa: %d leaves cannot form %d sections", len(leaves), numSections)
	}
	costs := make([]float64, numSections)
	for i, c := range leaves {
		// Equal cell-count sections: the predictor's uniform split.
		sec := i * numSections / len(leaves)
		if c.Limited {
			costs[sec] += cm.LimitedCellMs
		} else {
			costs[sec] += cm.BaseCellMs
		}
	}
	return costs, nil
}

// ImbalanceInput converts the current simulation state into the paper's
// uniform LRP input: procs processes with tasksPerProc tasks each, where
// a task is a section traversal. Sections are distributed to processes
// contiguously along the space-filling curve (as sam(oa)^2 does), and
// per-process task loads are uniformized to the process mean — matching
// the paper's input model ("the number of tasks on each node is 208 with
// uniform load").
func ImbalanceInput(m *Mesh, procs, tasksPerProc int, cm CostModel) (*lrp.Instance, error) {
	costs, err := SectionCosts(m, procs*tasksPerProc, cm)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, procs)
	for p := 0; p < procs; p++ {
		sum := 0.0
		for t := 0; t < tasksPerProc; t++ {
			sum += costs[p*tasksPerProc+t]
		}
		weights[p] = sum / float64(tasksPerProc)
	}
	return lrp.UniformInstance(tasksPerProc, weights)
}

// CalibrateImbalance rescales per-process weights around the mean so the
// instance's imbalance ratio matches target, preserving the average load
// and the ordering of processes. Weights are floored at a small positive
// fraction of the mean to stay physical. This lets experiments pin the
// baseline at the paper's R_imb = 4.1994 regardless of simulation
// details; the applied scaling is purely affine, so *which* processes
// are hot and by how much relative to each other is still decided by the
// simulation.
func CalibrateImbalance(in *lrp.Instance, target float64) *lrp.Instance {
	out := in.Clone()
	if in.Imbalance() <= 0 || target <= 0 {
		return out
	}
	avg0 := avgWeight(out.Weight)
	// Flooring perturbs the mean, which feeds back into R_imb, so the
	// affine rescaling is iterated to a fixpoint.
	for iter := 0; iter < 64; iter++ {
		cur := out.Imbalance()
		if cur <= 0 {
			break
		}
		if d := cur - target; d < 1e-4*target && d > -1e-4*target {
			break
		}
		s := target / cur
		avg := avgWeight(out.Weight)
		floor := avg * 1e-3
		for j := range out.Weight {
			w := avg + (out.Weight[j]-avg)*s
			if w < floor {
				w = floor
			}
			out.Weight[j] = w
		}
		// Restore the original mean load; R_imb is scale-invariant.
		if cur := avgWeight(out.Weight); cur > 0 {
			f := avg0 / cur
			for j := range out.Weight {
				out.Weight[j] *= f
			}
		}
	}
	return out
}

func avgWeight(w []float64) float64 {
	total := 0.0
	for _, v := range w {
		total += v
	}
	return total / float64(len(w))
}

// SectionTasks returns the per-section workload as individual tasks with
// their TRUE (non-uniformized) costs, sections assigned contiguously to
// processes along the space-filling curve. This feeds the general
// per-task formulation (qlrb.BuildGeneral), which — unlike the paper's
// count-encoded CQMs — does not require uniform per-process loads and so
// loses no cost information.
func SectionTasks(m *Mesh, procs, tasksPerProc int, cm CostModel) ([]lrp.Task, error) {
	costs, err := SectionCosts(m, procs*tasksPerProc, cm)
	if err != nil {
		return nil, err
	}
	tasks := make([]lrp.Task, len(costs))
	for i, c := range costs {
		tasks[i] = lrp.Task{ID: i, Origin: i / tasksPerProc, Load: c}
	}
	return tasks, nil
}

package shutdown

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestContextCancelsOnSIGTERM sends the process a real SIGTERM and
// asserts the derived context observes it. The handler registered by
// Context consumes the signal, so the test binary survives.
func TestContextCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := Context(context.Background())
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// TestContextParentCancellation propagates parent cancellation without
// any signal involved.
func TestContextParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := Context(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation not propagated")
	}
}

// TestSignalsCoversTermAndInt pins the signal set other packages rely
// on (cmd wiring and the daemon's drain path).
func TestSignalsCoversTermAndInt(t *testing.T) {
	got := Signals()
	if len(got) != 2 {
		t.Fatalf("Signals() = %v, want 2 entries", got)
	}
}

// Package shutdown centralizes the repository's termination-signal
// handling. Every long-running entry point — the one-shot CLIs
// (cmd/qulrb, cmd/experiments) and the serving daemon (cmd/qulrbd) —
// must react identically to SIGINT (interactive ^C) and SIGTERM (what
// batch schedulers and container runtimes send before SIGKILL): cancel
// outstanding work, let iterative solvers yield their best partial
// result, and exit cleanly. This package is that one shared definition,
// so a new signal (or a platform quirk) is handled in one place.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// Signals returns the termination signals every entry point listens
// for: SIGINT and SIGTERM.
func Signals() []os.Signal {
	return []os.Signal{os.Interrupt, syscall.SIGTERM}
}

// Context returns a copy of parent that is cancelled on the first
// SIGINT or SIGTERM (or when parent is cancelled). The returned stop
// function unregisters the signal handlers and releases resources;
// call it as soon as the program no longer needs the notification — a
// second signal after stop kills the process with the default
// disposition, which is the conventional "hit ^C twice to force quit"
// escape hatch.
func Context(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, Signals()...)
}

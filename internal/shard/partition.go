package shard

import (
	"sort"

	"repro/internal/lrp"
)

// Partition splits the instance's processes into ceil(M/size) groups of
// near-equal cardinality (sizes differ by at most one, never exceeding
// size) using a serpentine deal by descending load: processes are
// sorted heaviest-first and dealt across the groups in snake order
// (left-to-right, then right-to-left, ...). The deal gives every group
// a comparable mix of heavy and light processes, so
//
//   - intra-group solves have real balancing work to do (a group of
//     uniformly light processes would be a wasted sub-CQM), and
//   - group aggregate loads start near-equal, which keeps the top-level
//     coordination solve small — most of the imbalance is dissolved in
//     parallel inside the groups.
//
// The deal is deterministic: ties in load break by process index.
// size < 2 is treated as 2 (a one-process group has no rebalancing
// problem to solve). When M <= size a single group holding every
// process is returned.
func Partition(in *lrp.Instance, size int) [][]int {
	m := in.NumProcs()
	if size < 2 {
		size = 2
	}
	if m <= size {
		all := make([]int, m)
		for j := range all {
			all[j] = j
		}
		return [][]int{all}
	}
	g := (m + size - 1) / size
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := in.Load(order[a]), in.Load(order[b])
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	groups := make([][]int, g)
	for idx, p := range order {
		col := idx % g
		if (idx/g)%2 == 1 {
			col = g - 1 - col // snake back
		}
		groups[col] = append(groups[col], p)
	}
	// Keep each group's member list in ascending process order: group
	// composition (a set) is what matters, and sorted members make
	// sub-instance extraction and tests deterministic to read.
	for _, grp := range groups {
		sort.Ints(grp)
	}
	return groups
}

// coarseInstance aggregates each group into one pseudo-process: the
// group's task count is the sum of its members' tasks and its per-task
// weight is the group's mean task weight (total load / total tasks), so
// the coarse instance preserves every group's aggregate load exactly.
// Groups with zero tasks get weight 0. This is the "group load
// aggregates" instance the top-level coordination solve runs on.
func coarseInstance(in *lrp.Instance, groups [][]int) (*lrp.Instance, error) {
	tasks := make([]int, len(groups))
	weight := make([]float64, len(groups))
	for g, procs := range groups {
		load := 0.0
		for _, j := range procs {
			tasks[g] += in.Tasks[j]
			load += in.Load(j)
		}
		if tasks[g] > 0 {
			weight[g] = load / float64(tasks[g])
		}
	}
	return lrp.NewInstance(tasks, weight)
}

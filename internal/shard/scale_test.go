package shard

import (
	"context"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/qlrb"
	"repro/internal/verify"
)

// TestScaleMillionTasks drives the hierarchy at the scale the monolithic
// path cannot touch: M=1024 processes with 1024 tasks each (~1M tasks).
// A monolithic QCQM1 model for this instance would need
// 1024·1023·11 ≈ 11.5M logical qubits; the hierarchy caps every
// sub-model at 16 processes (≈ 2640 qubits) and must finish inside a
// bounded wall-clock because every sampler runs under a carved-out
// clock budget and interrupted solves return their best partial sample.
func TestScaleMillionTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task scale test skipped in -short mode")
	}
	const (
		m      = 1024
		n      = 1024
		budget = 2 * time.Second
	)
	tasks := make([]int, m)
	weight := make([]float64, m)
	for j := range tasks {
		tasks[j] = n
		weight[j] = 1 + float64(j%7)
		if j%97 == 0 {
			weight[j] = 12 // scattered hot spots
		}
	}
	in := lrp.MustInstance(tasks, weight)
	if got := in.NumTasks(); got != m*n {
		t.Fatalf("instance has %d tasks, want %d", got, m*n)
	}

	opt := Options{
		Size:   16,
		Budget: budget,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 8192},
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 64, Seed: 1},
	}
	start := time.Now()
	plan, st, err := Solve(context.Background(), in, opt)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// The clock budget bounds sampling; building 64 sub-CQMs and
	// merging a 1024×1024 plan add overhead on top. 90s is a generous
	// ceiling that still proves the wall-clock is bounded, not
	// quadratic in the monolithic model size.
	if elapsed > 90*time.Second {
		t.Fatalf("sharded solve took %v, budget-bounded ceiling is 90s", elapsed)
	}
	if rep := verify.Plan(in, plan, opt.Build.K, verify.Options{}); !rep.Ok() {
		t.Fatalf("merged plan failed verification: %v", rep.Err())
	}
	if got := plan.Migrated(); got > opt.Build.K {
		t.Fatalf("plan migrates %d tasks, cap is %d", got, opt.Build.K)
	}
	met := lrp.Evaluate(in, plan)
	if st.Groups != m/16 {
		t.Fatalf("Groups = %d, want %d", st.Groups, m/16)
	}
	if st.Levels < 2 {
		t.Fatalf("Levels = %d, want >= 2", st.Levels)
	}
	// Every sub-model must stay inside the paper's tractable regime:
	// 16·15·11 = 2640 qubits for the fine level; coarser levels are
	// smaller still in process count (their task counts only raise |C|
	// logarithmically).
	if st.MaxShardQubits > 16*15*17 {
		t.Fatalf("MaxShardQubits = %d — a sub-model escaped the tractable regime", st.MaxShardQubits)
	}
	t.Logf("M=%d n=%d: %v wall, %d groups, %d levels, %d sub-solves, max shard %d qubits, "+
		"L_max %.1f -> %.1f, %d migrated, %d coord moves (%d skipped)",
		m, n, elapsed, st.Groups, st.Levels, st.SubSolves, st.MaxShardQubits,
		in.MaxLoad(), met.MaxLoad, plan.Migrated(), st.CoordMigrated, st.SkippedMoves)
}

package shard

import (
	"context"
	"fmt"

	"repro/internal/lrp"
)

// Rebalancer exposes the hierarchical solve through the
// balancer.Rebalancer interface, so internal/dlb can drive it exactly
// like the classical methods and the monolithic qlrb.Quantum — every
// plan it hands back has already passed the merge verification gate,
// and dlb's own gate re-checks it like any other candidate.
type Rebalancer struct {
	// Label is the method name used in tables (e.g. "Shard_s8_k16").
	Label string
	// Opts configures the hierarchy.
	Opts Options
	// LastStats records the most recent solve's statistics.
	LastStats Stats
}

// New builds a named sharded rebalancer.
func New(label string, opt Options) *Rebalancer {
	return &Rebalancer{Label: label, Opts: opt}
}

// Name returns the method label ("Shard" when unset).
func (r *Rebalancer) Name() string {
	if r.Label == "" {
		return "Shard"
	}
	return r.Label
}

// Rebalance solves the instance hierarchically.
func (r *Rebalancer) Rebalance(ctx context.Context, in *lrp.Instance) (*lrp.Plan, error) {
	plan, stats, err := Solve(ctx, in, r.Opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.Name(), err)
	}
	r.LastStats = stats
	return plan, nil
}

package shard

import (
	"context"
	"fmt"

	"repro/internal/cqm"
	"repro/internal/qlrb"
	"repro/internal/solve"
	"repro/internal/verify"
)

// Solver adapts the hierarchical sharded solve to the solve.Solver
// interface over a prebuilt monolithic encoding, so internal/hedge can
// race "solve it whole" against "solve it sharded" on the same model
// and let the first verified-feasible answer win.
//
// The adapter solves the encoding's instance hierarchically (never
// touching the monolithic model's variables) and re-encodes the merged
// plan into the model's sample space with EncodePlan; verify.Attest
// then stamps the honest objective and feasibility. An encoding the
// merged plan cannot express (e.g. coordination inflow into a pinned
// process) makes the adapter lose the race with an error rather than
// return a dishonest sample.
type Solver struct {
	enc *qlrb.Encoded
	opt Options
}

// NewSolver binds a sharded solver to a monolithic encoding. The
// formulation and migration cap are taken from the encoding so the
// hierarchical solve answers exactly the problem the model poses;
// everything else (Size, Workers, Hybrid, ...) comes from opt.
func NewSolver(enc *qlrb.Encoded, opt Options) *Solver {
	opt.Build.Form = enc.Form()
	opt.Build.K = enc.K()
	return &Solver{enc: enc, opt: opt}
}

// Name returns "shard".
func (s *Solver) Name() string { return "shard" }

// Solve runs the hierarchical solve for the bound encoding's instance
// and returns the merged plan re-encoded as a sample of the monolithic
// model. Budget, seed, clock and observability flow through from the
// solve options, so a hedged race distributes its per-backend budgets
// to the shards unchanged.
func (s *Solver) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m != s.enc.Model {
		return nil, fmt.Errorf("shard: solver is bound to a different model")
	}
	cfg := solve.NewConfig(opts...)
	opt := s.opt
	if cfg.Budget > 0 {
		opt.Budget = cfg.Budget
	}
	if !cfg.Deadline.IsZero() {
		if d := cfg.Deadline.Sub(cfg.Clock.Now()); opt.Budget == 0 || d < opt.Budget {
			opt.Budget = d
		}
	}
	if cfg.HasSeed {
		opt.Hybrid.Seed = cfg.Seed
	}
	if opt.Obs == nil {
		opt.Obs = cfg.Obs
	}
	opt.Clock = cfg.Clock

	plan, st, err := Solve(ctx, s.enc.Instance(), opt)
	if err != nil {
		return nil, err
	}
	sample, err := s.enc.EncodePlan(plan)
	if err != nil {
		return nil, fmt.Errorf("shard: merged plan not encodable: %w", err)
	}
	res := &solve.Result{Sample: sample}
	verify.Attest(m, res, verify.Options{Tol: s.opt.Verify.Tol})
	res.Stats.Wall = st.Wall
	res.Stats.Reads = st.SubSolves
	cfg.Observe("shard", res.Stats)
	return res, nil
}

// Package shard solves large load-rebalancing instances hierarchically.
//
// The paper's CQM formulations scale quadratically in the process count
// (QCQM1 needs M(M-1)·|C| qubits), which caps the tractable monolithic
// regime at tens of processes. Sharding recovers scale by decomposition:
//
//  1. Partition the M processes into size-bounded groups with a
//     load-serpentine deal (Partition), so each sub-CQM stays inside
//     the paper's tractable regime.
//  2. Solve every group's sub-instance concurrently through the shared
//     qlrb.Pipeline stages, each shard under a clock budget carved from
//     the parent's budget and a migration budget carved from K.
//  3. Coordinate across groups with a small top-level solve over the
//     group load aggregates (one pseudo-process per group) — solved
//     recursively through shard.Solve itself when the coarse instance
//     is uniform, classically (ProactLB) otherwise — and translate the
//     coarse inter-group moves into concrete task migrations.
//  4. Repair and verify: re-prove conservation, non-negativity and the
//     migration cap through verify.Plan before the merged plan leaves
//     the package. No unverified shard merge escapes.
//
// A group's aggregate load is invariant under its intra-group moves, so
// stages 2 and 3 are independent and run concurrently in one worker
// pool.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/balancer"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/solve"
	"repro/internal/verify"
)

// DefaultSize is the default maximum group size. Eight processes keep a
// QCQM1 sub-model around 8·7·|C| logical qubits — comfortably inside
// the regime the paper's experiments cover.
const DefaultSize = 8

// Options configures a hierarchical sharded solve.
type Options struct {
	// Size caps how many processes one group (and hence one sub-CQM)
	// may hold. Values below 2 fall back to DefaultSize.
	Size int
	// Workers caps how many group solves run concurrently (the
	// coordination solve shares the same pool). <= 0 means GOMAXPROCS.
	Workers int
	// Budget bounds the whole hierarchical solve on the injected clock
	// (0 = none). Each wave of concurrent sub-solves receives an equal
	// carve-out, so the total respects the parent budget regardless of
	// how many shards the instance splits into. Note the annealer's
	// cooling schedule is calibrated to Hybrid.Sweeps: a budget that
	// interrupts reads mid-schedule leaves them in the hot phase and
	// their best sample near the warm start, so size Hybrid.Sweeps to
	// complete within the per-shard carve-out and let the budget be the
	// backstop, not the pace-setter.
	Budget time.Duration
	// Build configures the per-shard CQM construction. Build.K is the
	// GLOBAL migration cap: half is split across the groups
	// proportionally to their task counts, half funds the coordination
	// level, and the final repair pass re-imposes the global cap.
	Build qlrb.BuildOptions
	// Hybrid configures the per-shard sampling backend. Hybrid.Workers
	// of 0 is forced to 1 for sub-solves: parallelism comes from
	// solving shards concurrently, not from oversubscribing each one.
	// A non-zero Hybrid.Seed is re-derived per shard so sibling solves
	// decorrelate while the whole hierarchy stays reproducible.
	Hybrid hybrid.Options
	// Wrap, when non-nil, decorates every shard's solver — the same
	// middleware attachment point qlrb.Pipeline exposes.
	Wrap func(solve.Solver) solve.Solver
	// Verify tunes the verification gates. MaxLoad, when set, is
	// enforced on the final merged plan only (sub-instances see the
	// tolerance but not the cap: a group may be transiently over the
	// global cap until coordination moves load out of it).
	Verify verify.Options
	// Obs, when non-nil, receives shard.* spans and counters plus every
	// per-shard pipeline trace. Nil disables instrumentation.
	Obs *obs.Registry
	// Clock is the time source budgets are measured on (nil = real).
	Clock solve.Clock
}

func (opt Options) withDefaults() Options {
	if opt.Size < 2 {
		opt.Size = DefaultSize
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Clock == nil {
		opt.Clock = solve.Real()
	}
	return opt
}

// Stats reports what the hierarchy did.
type Stats struct {
	// Procs and Groups describe the top-level decomposition.
	Procs, Groups int
	// Levels is the depth of the solve hierarchy (1 = monolithic base
	// case, 2 = groups + one coordination level, ...).
	Levels int
	// SubSolves counts pipeline (build→sample→decode→verify) runs
	// across all levels.
	SubSolves int
	// MaxShardQubits is the largest sub-CQM any single solve built —
	// the number that must stay inside the tractable regime.
	MaxShardQubits int
	// CoordMigrated counts task-units moved across group boundaries by
	// coordination levels.
	CoordMigrated int
	// SkippedMoves counts coordination task-units dropped by the
	// load-cap guard (no destination could take the task without
	// exceeding the baseline maximum load).
	SkippedMoves int
	// Fallbacks counts shards whose pipeline failed and were solved by
	// the classical fallback instead.
	Fallbacks int
	// Repaired reports whether any merge needed the repair pass
	// (conservation fix-up or global migration-cap projection).
	Repaired bool
	// LoadCapOK reports whether the merged plan keeps every process at
	// or below the instance's baseline maximum load.
	LoadCapOK bool
	// Wall is the end-to-end time on the injected clock.
	Wall time.Duration
}

// Solve rebalances the instance hierarchically and returns a verified
// migration plan. The instance must be uniform (the same task count on
// every process), like the monolithic qlrb.Solve. Cancelling ctx stops
// in-flight sub-solves at their next sweep boundary; their best partial
// samples still merge into a feasible plan.
func Solve(ctx context.Context, in *lrp.Instance, opt Options) (*lrp.Plan, Stats, error) {
	opt = opt.withDefaults()
	if in == nil || in.NumProcs() < 2 {
		return nil, Stats{}, fmt.Errorf("shard: instance must have at least 2 processes")
	}
	if _, ok := in.Uniform(); !ok {
		return nil, Stats{}, fmt.Errorf("shard: instance must be uniform (equal task counts per process)")
	}
	start := opt.Clock.Now()
	span := opt.Obs.StartSpan("shard.solve")
	plan, st, err := solveLevel(ctx, in, opt, opt.Budget)
	st.Procs = in.NumProcs()
	st.Wall = opt.Clock.Since(start)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, st, err
	}
	// The load cap is reported (and only enforced when the caller set
	// Verify.MaxLoad), mirroring the monolithic gate: conservation,
	// non-negativity and the migration cap are the hard invariants.
	cap := verify.Options{Tol: opt.Verify.Tol, MaxLoad: in.MaxLoad()}
	st.LoadCapOK = verify.Plan(in, plan, opt.Build.K, cap).Ok()
	if !st.LoadCapOK {
		opt.Obs.Counter("shard.loadcap_misses").Inc()
	}
	span.Set("procs", st.Procs).Set("groups", st.Groups).Set("levels", st.Levels).
		Set("sub_solves", st.SubSolves).Set("fallbacks", st.Fallbacks).
		Set("coord_migrated", st.CoordMigrated).End()
	return plan, st, nil
}

// solveLevel solves one level of the hierarchy: monolithically when the
// instance fits in a single group, otherwise by partition → concurrent
// group solves + coordination → translate → repair → verify.
func solveLevel(ctx context.Context, in *lrp.Instance, opt Options, budget time.Duration) (*lrp.Plan, Stats, error) {
	m := in.NumProcs()
	if m <= opt.Size {
		return solveBase(ctx, in, opt, budget)
	}

	groups := Partition(in, opt.Size)
	g := len(groups)
	st := Stats{Groups: g}

	// Budget carving: groups and the coordination solve share one pool
	// of opt.Workers, so the level runs in ceil((g+1)/workers) waves;
	// giving each task budget/waves keeps the level inside budget.
	waves := (g + 1 + opt.Workers - 1) / opt.Workers
	var perTask time.Duration
	if budget > 0 {
		perTask = budget / time.Duration(waves)
	}

	// Migration-budget carving: half of K across the groups in
	// proportion to their task counts, half to coordination. The final
	// repair pass re-imposes the global K, so the split is a guide, not
	// the enforcement mechanism.
	k := opt.Build.K
	coordK := k
	intraK := make([]int, g)
	if k < 0 {
		for i := range intraK {
			intraK[i] = -1
		}
	} else {
		coordK = k / 2
		total := in.NumTasks()
		for i, procs := range groups {
			gt := 0
			for _, j := range procs {
				gt += in.Tasks[j]
			}
			if total > 0 {
				intraK[i] = (k - coordK) * gt / total
			}
		}
	}

	subPlans := make([]*lrp.Plan, g)
	results := make([]groupResult, g)
	var coordPlan *lrp.Plan
	var coordStats Stats
	var coordErr error

	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}()
	}
	for gi := range groups {
		gi := gi
		run(func() {
			results[gi] = solveGroup(ctx, in, groups[gi], intraK[gi], perTask, gi, opt)
		})
	}
	// Group aggregate loads are invariant under intra-group moves, so
	// coordination over the aggregates runs concurrently with them.
	run(func() {
		coordPlan, coordStats, coordErr = coordinate(ctx, in, groups, coordK, perTask, opt)
	})
	wg.Wait()

	maxLevels := 1
	for gi, r := range results {
		if r.err != nil {
			return nil, st, fmt.Errorf("shard: group %d: %w", gi, r.err)
		}
		subPlans[gi] = r.plan
		st.SubSolves += r.solves
		if r.fallback {
			st.Fallbacks++
		}
		if r.qubits > st.MaxShardQubits {
			st.MaxShardQubits = r.qubits
		}
	}
	if coordErr != nil {
		return nil, st, fmt.Errorf("shard: coordination: %w", coordErr)
	}
	st.SubSolves += coordStats.SubSolves
	st.Fallbacks += coordStats.Fallbacks
	st.CoordMigrated += coordStats.CoordMigrated
	st.SkippedMoves += coordStats.SkippedMoves
	st.Repaired = st.Repaired || coordStats.Repaired
	if coordStats.MaxShardQubits > st.MaxShardQubits {
		st.MaxShardQubits = coordStats.MaxShardQubits
	}
	if coordStats.Levels+1 > maxLevels {
		maxLevels = coordStats.Levels + 1
	}
	st.Levels = maxLevels

	mspan := opt.Obs.StartSpan("shard.merge")
	merged, err := lrp.MergePlans(in, groups, subPlans)
	if err != nil {
		mspan.Set("error", err.Error()).End()
		return nil, st, fmt.Errorf("shard: %w", err)
	}
	applied, skipped := translate(in, merged, groups, coordPlan)
	st.CoordMigrated += applied
	st.SkippedMoves += skipped
	opt.Obs.Counter("shard.coord_migrations").Add(int64(applied))
	if skipped > 0 {
		opt.Obs.Counter("shard.skipped_moves").Add(int64(skipped))
	}

	// Repair pass: conservation first, then project onto the global
	// migration cap. Both are no-ops on the expected path — translate
	// preserves conservation by construction and the K carve-outs sum
	// to at most K — but the merge must not depend on that being true.
	if err := merged.Validate(in); err != nil {
		if rerr := merged.Repair(in); rerr != nil {
			mspan.Set("error", rerr.Error()).End()
			return nil, st, fmt.Errorf("shard: merged plan unrepairable: %v (after %v)", rerr, err)
		}
		st.Repaired = true
	}
	if k >= 0 && merged.Migrated() > k {
		merged.CapMigrations(in, k)
		st.Repaired = true
	}
	mspan.Set("migrated", merged.Migrated()).Set("repaired", st.Repaired).End()

	// Mandatory gate: re-prove the invariants through the independent
	// verifier before the merge leaves this level.
	vspan := opt.Obs.StartSpan("shard.verify")
	rep := verify.Plan(in, merged, k, verify.Options{Tol: opt.Verify.Tol, MaxLoad: opt.Verify.MaxLoad})
	vspan.Set("ok", rep.Ok()).End()
	if !rep.Ok() {
		opt.Obs.Counter("shard.rejected_plans").Inc()
		return nil, st, fmt.Errorf("shard: merged plan failed verification: %w", rep.Err())
	}
	return merged, st, nil
}

// solveBase is the hierarchy's leaf: a monolithic run through the
// shared qlrb.Pipeline stages.
func solveBase(ctx context.Context, in *lrp.Instance, opt Options, budget time.Duration) (*lrp.Plan, Stats, error) {
	pipe := &qlrb.Pipeline{
		Build:     opt.Build,
		Hybrid:    opt.Hybrid,
		WarmPlans: classicalWarm(ctx, in),
		Wrap:      opt.Wrap,
		Verify:    opt.Verify,
		Obs:       opt.Obs,
		Opts:      levelOpts(opt, budget),
	}
	plan, ps, err := pipe.Run(ctx, in)
	if err != nil {
		return nil, Stats{Groups: 1, Levels: 1}, err
	}
	return plan, Stats{
		Groups:         1,
		Levels:         1,
		SubSolves:      1,
		MaxShardQubits: ps.Qubits,
		Repaired:       ps.Repaired,
	}, nil
}

func levelOpts(opt Options, budget time.Duration) []solve.Option {
	opts := []solve.Option{solve.WithClock(opt.Clock)}
	if budget > 0 {
		opts = append(opts, solve.WithBudget(budget))
	}
	return opts
}

type groupResult struct {
	plan     *lrp.Plan // nil = keep the group's tasks home
	qubits   int
	solves   int
	fallback bool
	err      error
}

// solveGroup extracts one group's sub-instance and runs it through the
// pipeline stages. A failed pipeline degrades to the classical greedy
// fallback projected onto the group's migration budget — one sick shard
// must not sink the whole hierarchy.
func solveGroup(ctx context.Context, in *lrp.Instance, procs []int, k int, budget time.Duration, gi int, opt Options) groupResult {
	if len(procs) < 2 {
		return groupResult{} // singleton: nothing to rebalance, stays home
	}
	span := opt.Obs.StartSpan("shard.subsolve")
	sub, err := in.Extract(procs)
	if err != nil {
		span.Set("error", err.Error()).End()
		return groupResult{err: err}
	}
	build := opt.Build
	build.K = k
	pipe := &qlrb.Pipeline{
		Build:     build,
		Hybrid:    shardHybrid(opt.Hybrid, gi),
		WarmPlans: classicalWarm(ctx, sub),
		Wrap:      opt.Wrap,
		Verify:    verify.Options{Tol: opt.Verify.Tol},
		Obs:       opt.Obs,
		Opts:      levelOpts(opt, budget),
	}
	plan, ps, err := pipe.Run(ctx, sub)
	if err != nil {
		// Classical fallback: greedy LPT on the sub-instance, projected
		// onto the group's migration budget.
		opt.Obs.Counter("shard.fallbacks").Inc()
		span.Set("group", gi).Set("fallback", err.Error())
		fb, ferr := balancer.Greedy{}.Rebalance(ctx, sub)
		if ferr != nil {
			span.End()
			return groupResult{solves: 1, fallback: true} // keep home
		}
		if k >= 0 && fb.Migrated() > k {
			fb.CapMigrations(sub, k)
		}
		span.End()
		return groupResult{plan: fb, solves: 1, fallback: true}
	}
	span.Set("group", gi).Set("procs", len(procs)).Set("qubits", ps.Qubits).End()
	return groupResult{plan: plan, qubits: ps.Qubits, solves: 1}
}

// classicalWarm runs the cheap classical methods on a (sub-)instance
// and returns their plans as sampler warm starts — the paper's hybrid
// protocol ("classical algorithms run first and guide the hybrid
// experiments") applied at every node of the hierarchy. Plans over the
// migration cap are projected by the pipeline's warm-start stage;
// failures just mean fewer warm starts.
func classicalWarm(ctx context.Context, in *lrp.Instance) []*lrp.Plan {
	var warm []*lrp.Plan
	if p, err := (balancer.ProactLB{}).Rebalance(ctx, in); err == nil {
		warm = append(warm, p)
	}
	if p, err := (balancer.Greedy{}).Rebalance(ctx, in); err == nil {
		warm = append(warm, p)
	}
	return warm
}

// shardHybrid derives one shard's sampler options: sibling shards get
// decorrelated seeds (reproducibly, when the caller seeded the solve)
// and single-worker sampling — the hierarchy's parallelism comes from
// solving shards concurrently, not from oversubscribing each shard.
func shardHybrid(h hybrid.Options, gi int) hybrid.Options {
	if h.Seed != 0 {
		h.Seed += int64(gi+1) * 1_000_003
	}
	if h.Workers == 0 {
		h.Workers = 1
	}
	return h
}

// coordinate solves the inter-group problem over the coarse instance
// (one pseudo-process per group). When the coarse instance is itself
// uniform — equal group sizes on a uniform parent — it recurses through
// the sharded solve, giving a true multi-level hierarchy; otherwise it
// falls back to the classical ProactLB, which moves only excess load.
// Either way the coarse plan is verified before it is translated.
func coordinate(ctx context.Context, in *lrp.Instance, groups [][]int, coordK int, budget time.Duration, opt Options) (*lrp.Plan, Stats, error) {
	span := opt.Obs.StartSpan("shard.coordinate")
	coarse, err := coarseInstance(in, groups)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, Stats{}, err
	}
	if _, ok := coarse.Uniform(); ok && coarse.NumProcs() >= 2 {
		copt := opt
		copt.Build.K = coordK
		copt.Hybrid = shardHybrid(opt.Hybrid, len(groups))
		// Coarse pseudo-process loads are whole-group aggregates; a
		// per-process load cap must not gate them.
		copt.Verify.MaxLoad = 0
		plan, cst, err := solveLevel(ctx, coarse, copt, budget)
		if err == nil {
			span.Set("mode", "hierarchical").Set("migrated", plan.Migrated()).End()
			return plan, cst, nil
		}
		// Fall through to the classical path; the error is recorded.
		span.Set("hierarchical_error", err.Error())
	}
	plan, err := balancer.ProactLB{}.Rebalance(ctx, coarse)
	if err != nil {
		span.Set("error", err.Error()).End()
		return nil, Stats{}, err
	}
	if coordK >= 0 && plan.Migrated() > coordK {
		plan.CapMigrations(coarse, coordK)
	}
	if rep := verify.Plan(coarse, plan, coordK, verify.Options{Tol: opt.Verify.Tol}); !rep.Ok() {
		span.Set("error", rep.Err().Error()).End()
		return nil, Stats{}, fmt.Errorf("coarse plan failed verification: %w", rep.Err())
	}
	span.Set("mode", "classical").Set("migrated", plan.Migrated()).End()
	return plan, Stats{Levels: 1}, nil
}

// translate applies the coarse coordination plan to the merged
// fine-grained plan: each coarse task-unit moving from group h to group
// g becomes one concrete task migration from the most loaded process of
// h to the least loaded process of g. The task is chosen to fill the
// receiver toward the average load without overshooting (ProactLB's
// rounding rule), and a move is skipped entirely when no task on the
// donor fits under the baseline maximum load at the destination —
// coordination must never manufacture a new hotspot. Column sums are
// untouched, so conservation is preserved by construction. Returns
// (applied, skipped) task-units.
func translate(in *lrp.Instance, merged *lrp.Plan, groups [][]int, coord *lrp.Plan) (applied, skipped int) {
	if coord == nil {
		return 0, 0
	}
	const tol = 1e-9
	cap := in.MaxLoad()
	lavg := in.AvgLoad()
	loads := merged.Loads(in)
	rows := merged.RowCounts()
	g := len(groups)
	for dst := 0; dst < g; dst++ {
		for src := 0; src < g; src++ {
			if dst == src {
				continue
			}
			units := coord.X[dst][src]
			for u := 0; u < units; u++ {
				if !applyUnit(in, merged, groups[dst], groups[src], loads, rows, lavg, cap+tol) {
					skipped += units - u
					break
				}
				applied++
			}
		}
	}
	return applied, skipped
}

// applyUnit moves one task from the most loaded process of src to the
// least loaded process of dst. Among the donor's tasks that fit under
// the load cap at the receiver, it prefers the heaviest one that leaves
// the receiver within half its own weight of the average load (so the
// receiver fills toward L_avg without becoming the next hotspot),
// falling back to the lightest fitting task when every candidate would
// overshoot. Reports false when no move fits at all.
func applyUnit(in *lrp.Instance, merged *lrp.Plan, dst, src []int, loads []float64, rows []int, lavg, cap float64) bool {
	donor := -1
	for _, i := range src {
		if rows[i] > 0 && (donor < 0 || loads[i] > loads[donor]) {
			donor = i
		}
	}
	if donor < 0 {
		return false
	}
	recv := dst[0]
	for _, i := range dst {
		if loads[i] < loads[recv] {
			recv = i
		}
	}
	origin, lightest := -1, -1
	for j, cnt := range merged.X[donor] {
		if cnt <= 0 {
			continue
		}
		w := in.Weight[j]
		if loads[recv]+w > cap {
			continue
		}
		if lightest < 0 || w < in.Weight[lightest] {
			lightest = j
		}
		if loads[recv]+w <= lavg+w/2 {
			if origin < 0 || w > in.Weight[origin] {
				origin = j
			}
		}
	}
	if origin < 0 {
		origin = lightest
	}
	if origin < 0 {
		return false
	}
	merged.X[donor][origin]--
	merged.X[recv][origin]++
	w := in.Weight[origin]
	loads[donor] -= w
	loads[recv] += w
	rows[donor]--
	rows[recv]++
	return true
}

package shard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/balancer"
	"repro/internal/cqm"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/solve"
	"repro/internal/verify"
)

// hotSpots builds an instance with m processes of n tasks each where
// every (stride)-th process is heavy — plenty of imbalance for both the
// intra-group and the coordination level to dissolve.
func hotSpots(m, n, stride int) *lrp.Instance {
	tasks := make([]int, m)
	weight := make([]float64, m)
	for j := range tasks {
		tasks[j] = n
		weight[j] = 1
		if j%stride == 0 {
			weight[j] = 5
		}
	}
	return lrp.MustInstance(tasks, weight)
}

func TestPartition(t *testing.T) {
	cases := []struct {
		name       string
		m, size    int
		wantGroups int
	}{
		{"fits in one group", 4, 8, 1},
		{"even split", 12, 4, 3},
		{"ragged split", 10, 4, 3},
		{"size floor of two", 5, 1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := hotSpots(tc.m, 4, 3)
			groups := Partition(in, tc.size)
			if len(groups) != tc.wantGroups {
				t.Fatalf("Partition(%d procs, size %d) = %d groups, want %d",
					tc.m, tc.size, len(groups), tc.wantGroups)
			}
			seen := make(map[int]bool)
			lo, hi := tc.m, 0
			for _, grp := range groups {
				if len(grp) < lo {
					lo = len(grp)
				}
				if len(grp) > hi {
					hi = len(grp)
				}
				for _, j := range grp {
					if seen[j] {
						t.Fatalf("process %d dealt twice", j)
					}
					seen[j] = true
				}
			}
			if len(seen) != tc.m {
				t.Fatalf("groups cover %d of %d processes", len(seen), tc.m)
			}
			size := tc.size
			if size < 2 {
				size = 2
			}
			if hi > size {
				t.Fatalf("largest group has %d processes, cap is %d", hi, size)
			}
			if hi-lo > 1 {
				t.Fatalf("group sizes range %d..%d, want near-equal", lo, hi)
			}
		})
	}
}

func TestPartitionDeterministic(t *testing.T) {
	in := hotSpots(17, 4, 3)
	a := Partition(in, 4)
	b := Partition(in, 4)
	for g := range a {
		for s := range a[g] {
			if a[g][s] != b[g][s] {
				t.Fatalf("partition not deterministic at group %d", g)
			}
		}
	}
}

// TestSolveBaseCase pins the degenerate hierarchy: an instance that
// fits in one group must take the exact monolithic pipeline path and
// produce the same plan as qlrb.Solve for the same seed and the same
// classical warm starts.
func TestSolveBaseCase(t *testing.T) {
	in := hotSpots(4, 8, 3)
	h := hybrid.Options{Reads: 2, Sweeps: 120, Seed: 11}
	build := qlrb.BuildOptions{Form: qlrb.QCQM1, K: 8}

	var warm []*lrp.Plan
	if p, err := (balancer.ProactLB{}).Rebalance(context.Background(), in); err == nil {
		warm = append(warm, p)
	}
	if p, err := (balancer.Greedy{}).Rebalance(context.Background(), in); err == nil {
		warm = append(warm, p)
	}
	mono, _, err := qlrb.Solve(context.Background(), in, qlrb.SolveOptions{Build: build, Hybrid: h, WarmPlans: warm})
	if err != nil {
		t.Fatalf("qlrb.Solve: %v", err)
	}
	plan, st, err := Solve(context.Background(), in, Options{Size: 8, Build: build, Hybrid: h})
	if err != nil {
		t.Fatalf("shard.Solve: %v", err)
	}
	if plan.String() != mono.String() {
		t.Fatalf("base case diverged from monolithic solve:\nmono:\n%v\nshard:\n%v", mono, plan)
	}
	if st.Groups != 1 || st.Levels != 1 || st.SubSolves != 1 {
		t.Fatalf("base case stats = %+v, want 1 group / 1 level / 1 sub-solve", st)
	}
}

// TestSolveSharded is the core hierarchy test: a 12-process hot-spot
// instance split into 3 groups must come back verified, within the
// migration cap, and strictly better balanced than doing nothing.
func TestSolveSharded(t *testing.T) {
	in := hotSpots(12, 6, 4) // procs 0,4,8 carry 5× weight: baseline L_max = 30
	opt := Options{
		Size:   4,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 24},
		Hybrid: hybrid.Options{Reads: 2, Sweeps: 200, Seed: 7},
	}
	plan, st, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if rep := verify.Plan(in, plan, opt.Build.K, verify.Options{}); !rep.Ok() {
		t.Fatalf("merged plan failed independent verification: %v", rep.Err())
	}
	if got := plan.Migrated(); got > 24 {
		t.Fatalf("plan migrates %d tasks, global cap is 24", got)
	}
	met := lrp.Evaluate(in, plan)
	if met.MaxLoad >= in.MaxLoad() {
		t.Fatalf("sharded solve did not improve: L_max %g (baseline %g)", met.MaxLoad, in.MaxLoad())
	}
	if st.Groups != 3 {
		t.Fatalf("Groups = %d, want 3", st.Groups)
	}
	if st.Levels < 2 {
		t.Fatalf("Levels = %d, want >= 2 (groups + coordination)", st.Levels)
	}
	if st.SubSolves < 3 {
		t.Fatalf("SubSolves = %d, want >= 3 (one per group)", st.SubSolves)
	}
	if st.MaxShardQubits == 0 {
		t.Fatal("MaxShardQubits not recorded")
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := hotSpots(12, 6, 4)
	opt := Options{
		Size:    4,
		Workers: 3, // concurrency must not leak into the result
		Build:   qlrb.BuildOptions{Form: qlrb.QCQM1, K: 24},
		Hybrid:  hybrid.Options{Reads: 2, Sweeps: 120, Seed: 5},
	}
	a, _, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	b, _, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("seeded solve depends on worker count:\n3 workers:\n%v\n1 worker:\n%v", a, b)
	}
}

func TestSolveGlobalCap(t *testing.T) {
	in := hotSpots(12, 6, 4)
	opt := Options{
		Size:   4,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 4},
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 80, Seed: 3},
	}
	plan, _, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := plan.Migrated(); got > 4 {
		t.Fatalf("plan migrates %d tasks, global cap is 4", got)
	}
}

func TestSolveRejectsBadInstances(t *testing.T) {
	if _, _, err := Solve(context.Background(), lrp.MustInstance([]int{4}, []float64{1}), Options{}); err == nil {
		t.Fatal("accepted a single-process instance")
	}
	nonUniform := lrp.MustInstance([]int{4, 5, 4}, []float64{1, 1, 1})
	if _, _, err := Solve(context.Background(), nonUniform, Options{}); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Fatalf("non-uniform instance: err = %v, want uniformity complaint", err)
	}
}

// failSolver errors on every solve — stands in for a dead sampler.
type failSolver struct{}

func (failSolver) Name() string { return "fail" }
func (failSolver) Solve(context.Context, *cqm.Model, ...solve.Option) (*solve.Result, error) {
	return nil, errors.New("sampler down")
}

// TestSolveFallback proves one sick shard cannot sink the hierarchy:
// with every sampler dead, each group degrades to the classical greedy
// fallback and the merge still comes back verified.
func TestSolveFallback(t *testing.T) {
	in := hotSpots(8, 6, 4)
	reg := obs.NewRegistry()
	opt := Options{
		Size:  4,
		Build: qlrb.BuildOptions{Form: qlrb.QCQM1, K: 16},
		Wrap:  func(solve.Solver) solve.Solver { return failSolver{} },
		Obs:   reg,
	}
	plan, st, err := Solve(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("Solve with dead samplers: %v", err)
	}
	if rep := verify.Plan(in, plan, 16, verify.Options{}); !rep.Ok() {
		t.Fatalf("fallback plan failed verification: %v", rep.Err())
	}
	if st.Fallbacks < 2 {
		t.Fatalf("Fallbacks = %d, want >= 2 (both groups)", st.Fallbacks)
	}
	if got := reg.Counter("shard.fallbacks").Value(); got != int64(st.Fallbacks) {
		t.Fatalf("shard.fallbacks counter = %d, stats say %d", got, st.Fallbacks)
	}
}

// TestSolveObsSpans pins the shard.* span names observability consumers
// rely on.
func TestSolveObsSpans(t *testing.T) {
	in := hotSpots(12, 6, 4)
	reg := obs.NewRegistry()
	opt := Options{
		Size:   4,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 12},
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 60, Seed: 9},
		Obs:    reg,
	}
	if _, _, err := Solve(context.Background(), in, opt); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := map[string]bool{
		"shard.solve": false, "shard.subsolve": false, "shard.coordinate": false,
		"shard.merge": false, "shard.verify": false,
		// per-shard pipelines must trace through the same registry
		"qlrb.build": false, "qlrb.verify": false,
	}
	for _, sp := range reg.Snapshot().Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from hierarchy trace", name)
		}
	}
}

func TestRebalancer(t *testing.T) {
	in := hotSpots(8, 6, 4)
	r := New("Shard_s4_k16", Options{
		Size:   4,
		Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: 16},
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 80, Seed: 2},
	})
	if r.Name() != "Shard_s4_k16" {
		t.Fatalf("Name = %q", r.Name())
	}
	plan, err := r.Rebalance(context.Background(), in)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if r.LastStats.Groups != 2 {
		t.Fatalf("LastStats.Groups = %d, want 2", r.LastStats.Groups)
	}
}

package shard

import (
	"context"
	"testing"

	"repro/internal/hedge"
	"repro/internal/hybrid"
	"repro/internal/qlrb"
	"repro/internal/solve"
)

// TestSolverAdapter proves the solve.Solver adapter round-trips: the
// hierarchical solve's merged plan re-encodes into the monolithic
// model's sample space, decodes back to a feasible plan, and carries an
// honest (attested) feasibility flag.
func TestSolverAdapter(t *testing.T) {
	in := hotSpots(8, 6, 4)
	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSolver(enc, Options{
		Size:   4,
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 80},
	})
	res, err := s.Solve(context.Background(), enc.Model, solve.WithSeed(13))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("attested sample infeasible (objective %g)", res.Objective)
	}
	plan, _, err := enc.DecodeRepaired(res.Sample)
	if err != nil {
		t.Fatalf("DecodeRepaired: %v", err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if res.Stats.Reads == 0 {
		t.Fatal("adapter did not report its sub-solve count")
	}
}

func TestSolverAdapterRejectsForeignModel(t *testing.T) {
	in := hotSpots(8, 6, 4)
	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 16})
	if err != nil {
		t.Fatal(err)
	}
	other, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSolver(enc, Options{Size: 4}).Solve(context.Background(), other.Model); err == nil {
		t.Fatal("adapter accepted a model it was not bound to")
	}
}

// TestSolverInHedge races the monolithic hybrid against the sharded
// adapter on the same model — the first-class-backend wiring the
// hierarchy promises. Whichever backend wins, the hedged result must be
// a verified-feasible sample of the monolithic model.
func TestSolverInHedge(t *testing.T) {
	in := hotSpots(8, 6, 4)
	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: qlrb.QCQM1, K: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mono := hybrid.New(hybrid.Options{Reads: 1, Sweeps: 120, Seed: 21})
	sharded := NewSolver(enc, Options{
		Size:   4,
		Hybrid: hybrid.Options{Reads: 1, Sweeps: 120, Seed: 22},
	})
	h, err := hedge.New(hedge.Options{}, mono, sharded)
	if err != nil {
		t.Fatalf("hedge.New: %v", err)
	}
	res, err := h.Solve(context.Background(), enc.Model, solve.WithSeed(23))
	if err != nil {
		t.Fatalf("hedged solve: %v", err)
	}
	if !res.Feasible {
		t.Fatal("hedged winner infeasible")
	}
	plan, _, err := enc.DecodeRepaired(res.Sample)
	if err != nil {
		t.Fatalf("DecodeRepaired: %v", err)
	}
	if err := plan.Validate(in); err != nil {
		t.Fatalf("hedged plan invalid: %v", err)
	}
}

// Package faults is a seeded, deterministic fault injector for the
// simulated cloud solver path. The paper's workflow submits every
// rebalancing CQM to a cloud hybrid solver from inside an HPC job — a
// network hop that in practice fails, throttles, and times out. The
// injector reproduces those availability gaps on demand so the
// resilience layer (internal/resilient) can be exercised and measured
// deterministically: the full fault schedule is a pure function of the
// configuration's seed, so identical seeds yield identical schedules,
// retry counts, and final plans.
//
// Fault taxonomy:
//
//   - Transient — the submission fails with a retryable network error
//     before the solver runs (connection reset, DNS, 5xx).
//   - Timeout — the solve is accepted but never returns within its
//     deadline; the attempt consumes Config.TimeoutDelay of (injected)
//     clock time before the error surfaces.
//   - Throttle — the service rejects the request up front with a quota
//     error (HTTP 429-class).
//   - Corrupt — the solve "succeeds" but the returned sample was
//     damaged in flight: bits are flipped so the reported objective and
//     feasibility no longer match the sample. Detected by response
//     validation, not by an error.
//   - Panic — the solver goroutine panics mid-solve (crashing worker,
//     poisoned reply tripping a client bug). Contained by the panic
//     isolation layer (solve.Protected), not by retries.
//
// The injection surface is the Hook interface, consulted once per solve
// attempt by the simulated cloud backend (hybrid.Options.Faults).
package faults

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None is a clean attempt.
	None Kind = iota
	// Transient is a retryable network failure before the solve runs.
	Transient
	// Timeout is a per-job solve deadline expiry.
	Timeout
	// Throttle is a quota/rate-limit rejection.
	Throttle
	// Corrupt damages the returned sample instead of erroring.
	Corrupt
	// Panic makes the solver goroutine panic mid-solve, modelling a
	// crashing worker or a poisoned reply that trips a bug in the
	// client. Only the isolation layer (solve.Protected) stands between
	// it and the process.
	Panic
)

const numKinds = int(Panic) + 1

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Timeout:
		return "timeout"
	case Throttle:
		return "throttle"
	case Corrupt:
		return "corrupt"
	case Panic:
		return "panic"
	}
	return "unknown"
}

// Sentinel errors the transport-level faults surface as. They are
// wrapped with %w at the injection site, so callers classify them with
// errors.Is.
var (
	// ErrTransient is a retryable network failure.
	ErrTransient = errors.New("faults: transient network error")
	// ErrTimeout is a per-job cloud solve deadline expiry.
	ErrTimeout = errors.New("faults: cloud solve timed out")
	// ErrThrottled is a quota/rate-limit rejection.
	ErrThrottled = errors.New("faults: request throttled (quota exceeded)")
)

// Err returns the sentinel error a fault of this kind surfaces as. None
// and Corrupt return nil: a corrupted response is returned, not errored
// (that is what makes it dangerous).
func (k Kind) Err() error {
	switch k {
	case Transient:
		return ErrTransient
	case Timeout:
		return ErrTimeout
	case Throttle:
		return ErrThrottled
	}
	return nil
}

// Retryable reports whether err is (or wraps) one of the injectable
// transport faults — the class a resilient client may safely resubmit.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrThrottled)
}

// Config shapes the fault distribution. Each attempt draws one uniform
// variate; the rates carve it up, so they are mutually exclusive per
// attempt and must sum to at most 1.
type Config struct {
	// Seed drives the schedule; the whole schedule is a pure function
	// of (Config, attempt index).
	Seed int64
	// Transient, Timeout, Throttle, Corrupt, Panic are per-attempt
	// injection probabilities of each kind.
	Transient, Timeout, Throttle, Corrupt, Panic float64
	// TimeoutDelay is the simulated time a Timeout fault consumes
	// before surfacing (measured on the injected solve.Clock).
	TimeoutDelay time.Duration
	// MaxFaults caps the total number of injected faults (0 = no cap);
	// useful for demos that should eventually converge.
	MaxFaults int
}

// Uniform splits a total fault rate over the four kinds in fixed
// proportions: 40% transient, 20% timeout, 20% throttle, 20% corrupt.
func Uniform(seed int64, rate float64) Config {
	return Config{
		Seed:      seed,
		Transient: 0.4 * rate,
		Timeout:   0.2 * rate,
		Throttle:  0.2 * rate,
		Corrupt:   0.2 * rate,
	}
}

// Rate returns the total per-attempt fault probability.
func (c Config) Rate() float64 {
	return c.Transient + c.Timeout + c.Throttle + c.Corrupt + c.Panic
}

// Chaos returns a configuration injecting only the two faults no
// transport-level retry can paper over — corrupted replies and solver
// panics — splitting rate evenly between them. It is the adversary the
// trust-but-verify layer (verify + hedge + solve.Protected) is built
// for: Uniform's transient/timeout/throttle faults exercise retries,
// Chaos exercises verification and isolation.
func Chaos(seed int64, rate float64) Config {
	return Config{
		Seed:    seed,
		Corrupt: 0.5 * rate,
		Panic:   0.5 * rate,
	}
}

// mix derives a well-spread 64-bit stream seed from (seed, seq),
// splitmix64-style, so consecutive attempts get decorrelated draws.
func mix(seed, seq int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(seq)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it non-negative for rand.NewSource
}

// at returns the fault decision of attempt seq — a pure function of the
// configuration, the source of the injector's reproducibility.
func (c Config) at(seq int) Fault {
	rng := rand.New(rand.NewSource(mix(c.Seed, int64(seq))))
	u := rng.Float64()
	f := Fault{Seq: seq, rngSeed: rng.Int63()}
	switch t, o, q := c.Transient, c.Timeout, c.Throttle; {
	case u < t:
		f.Kind = Transient
	case u < t+o:
		f.Kind = Timeout
		f.Delay = c.TimeoutDelay
	case u < t+o+q:
		f.Kind = Throttle
	case u < t+o+q+c.Corrupt:
		f.Kind = Corrupt
	case u < t+o+q+c.Corrupt+c.Panic:
		f.Kind = Panic
	}
	return f
}

// Schedule returns the fault kinds of attempts 0..n-1 — exactly what a
// fresh Injector with this config will produce (ignoring MaxFaults).
// Tests and reports use it to assert and display the schedule.
func (c Config) Schedule(n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = c.at(i).Kind
	}
	return out
}

// Fault is one attempt's injection decision.
type Fault struct {
	// Kind is the fault class (None for a clean attempt).
	Kind Kind
	// Seq is the 0-based attempt index the decision belongs to.
	Seq int
	// Delay is the simulated time the fault consumes before surfacing
	// (Timeout faults; zero otherwise).
	Delay time.Duration

	rngSeed int64
}

// CorruptSample deterministically flips a small subset of sample's bits
// in place (between 1 and len/8 of them), modelling a response damaged
// in flight. It is a no-op unless Kind is Corrupt.
func (f Fault) CorruptSample(sample []bool) {
	if f.Kind != Corrupt || len(sample) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(f.rngSeed))
	n := 1 + rng.Intn(max(1, len(sample)/8))
	for i := 0; i < n; i++ {
		j := rng.Intn(len(sample))
		sample[j] = !sample[j]
	}
}

// Hook is the injection surface a simulated cloud component consults
// once per solve attempt. *Injector implements it; a nil Hook means a
// perfectly reliable cloud.
type Hook interface {
	// Next consumes and returns the next attempt's fault decision.
	Next() Fault
}

// Injector hands out the configured schedule attempt by attempt. It is
// safe for concurrent use; under concurrent submitters the assignment
// of schedule slots to attempts follows arrival order.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	seq    int
	counts [numKinds]int
}

// NewInjector returns an injector at the start of cfg's schedule.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Next implements Hook.
func (i *Injector) Next() Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	f := i.cfg.at(i.seq)
	i.seq++
	if f.Kind != None && i.cfg.MaxFaults > 0 && i.injectedLocked() >= i.cfg.MaxFaults {
		f = Fault{Seq: f.Seq} // cap reached: serve clean attempts from here on
	}
	i.counts[f.Kind]++
	return f
}

func (i *Injector) injectedLocked() int {
	n := 0
	for k := 1; k < numKinds; k++ {
		n += i.counts[k]
	}
	return n
}

// Injected returns the total number of faults injected so far.
func (i *Injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injectedLocked()
}

// Attempts returns how many attempts the injector has decided.
func (i *Injector) Attempts() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seq
}

// Counts returns the per-kind injection counts so far (indexable by
// Kind; Counts()[None] counts clean attempts).
func (i *Injector) Counts() [numKinds]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}
